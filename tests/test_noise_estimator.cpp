/**
 * @file
 * The noise estimator must upper-bound the noise actually observed by
 * decryption, while staying within a few orders of magnitude (useful,
 * not vacuous).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/noise_estimator.h"

namespace ufc {
namespace ckks {
namespace {

struct NoiseFixture : public ::testing::Test
{
    NoiseFixture()
        : ctx(CkksParams::testFast()), encoder(&ctx), rng(321),
          keygen(&ctx, rng), encryptor(&ctx, &keygen.secretKey(), rng),
          eval(&ctx), est(&ctx)
    {}

    double
    observedError(const Ciphertext &ct, const std::vector<double> &expect)
    {
        auto dec = encoder.decode(encryptor.decrypt(ct));
        double worst = 0.0;
        for (size_t i = 0; i < expect.size(); ++i)
            worst = std::max(worst,
                             std::abs(dec[i].real() - expect[i]));
        return worst;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Rng rng;
    CkksKeyGenerator keygen;
    CkksEncryptor encryptor;
    CkksEvaluator eval;
    NoiseEstimator est;
};

TEST_F(NoiseFixture, FreshBoundHoldsAndIsTight)
{
    std::vector<double> v(ctx.slots());
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = std::sin(0.01 * i);
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    const double observed = observedError(ct, v);
    const double predicted = est.fresh(ctx.scale());
    EXPECT_GE(predicted, observed);
    EXPECT_LT(predicted, 1e5 * observed + 1e-9); // not vacuous
}

TEST_F(NoiseFixture, MultiplyBoundHolds)
{
    auto relin = keygen.makeRelinKey();
    std::vector<double> a(ctx.slots(), 0.9), b(ctx.slots(), -0.8);
    auto ca = encryptor.encrypt(encoder.encode(a, ctx.levels(),
                                               ctx.scale()));
    auto cb = encryptor.encrypt(encoder.encode(b, ctx.levels(),
                                               ctx.scale()));
    auto prod = eval.rescale(eval.multiply(ca, cb, relin));

    std::vector<double> expect(ctx.slots(), 0.9 * -0.8);
    const double observed = observedError(prod, expect);
    const double predicted = est.afterMultiply(
        est.fresh(ctx.scale()), est.fresh(ctx.scale()), 1.0,
        ctx.levels(), ctx.scale());
    EXPECT_GE(predicted, observed);
}

TEST_F(NoiseFixture, ChainBoundHoldsToLastLevel)
{
    auto relin = keygen.makeRelinKey();
    std::vector<double> v(ctx.slots(), 0.99);
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    std::vector<double> expect = v;

    double predicted = est.fresh(ctx.scale());
    double bound = 1.0;
    while (ct.limbs >= 2) {
        ct = eval.rescale(eval.square(ct, relin));
        predicted = est.afterMultiply(predicted, predicted, bound,
                                      ct.limbs + 1, ctx.scale());
        bound *= bound;
        for (auto &x : expect)
            x *= x;
        EXPECT_GE(predicted, observedError(ct, expect))
            << "at limbs " << ct.limbs;
    }
}

TEST_F(NoiseFixture, SupportedDepthMatchesChainLength)
{
    // The context has levels-1 rescales available; the estimator must
    // report a depth within that budget and at least a couple of
    // multiplications for unit messages.
    const int depth = est.supportedDepth(ctx.levels(), 1.0, 1e-2);
    EXPECT_GE(depth, 2);
    EXPECT_LE(depth, ctx.levels() - 1);
}

TEST_F(NoiseFixture, KeySwitchErrorGrowsWithDigits)
{
    // More active digits (higher limb counts) mean more accumulated key
    // noise.
    const double lo = est.keySwitchError(2, ctx.scale());
    const double hi = est.keySwitchError(ctx.levels(), ctx.scale());
    EXPECT_GE(hi, lo);
}

} // namespace
} // namespace ckks
} // namespace ufc
