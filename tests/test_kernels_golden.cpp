/**
 * @file
 * Golden known-answer tests for the kernel layer.  Every expected value
 * below is a frozen constant, so any change to kernel numerics —
 * twiddle generation, reduction algorithms, Montgomery constants, CKKS
 * encoding — shows up as an explicit diff against recorded history
 * rather than a silent behavior change.
 *
 * Provenance: constants were produced by the pre-existing (reference)
 * kernels and cross-checked against the direct evaluation definitions
 * (NTT output k = a(psi^(2k+1)); reductions against hardware divide).
 */

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "common/rng.h"
#include "math/mod_arith.h"
#include "math/ntt.h"

namespace ufc {
namespace {

// ---------------------------------------------------------------------
// Small fixed NTT vectors: N = 8, q = 257, psi = 2 (2^8 = -1 mod 257).
// ---------------------------------------------------------------------

TEST(KernelGolden, NttForwardFixedVectorN8)
{
    NttTable ntt(8, 257, 2);
    ASSERT_EQ(ntt.psi(), 2u);

    std::vector<u64> a{1, 2, 3, 4, 5, 6, 7, 8};
    ntt.forward(a);
    const std::vector<u64> expect{251, 151, 253, 149, 60, 131, 17, 24};
    EXPECT_EQ(a, expect);

    ntt.inverse(a);
    EXPECT_EQ(a, (std::vector<u64>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(KernelGolden, NttForwardDeltaIsAllOnes)
{
    // The constant polynomial 1 evaluates to 1 everywhere.
    NttTable ntt(8, 257, 2);
    std::vector<u64> delta{1, 0, 0, 0, 0, 0, 0, 0};
    ntt.forward(delta);
    EXPECT_EQ(delta, (std::vector<u64>{1, 1, 1, 1, 1, 1, 1, 1}));
}

TEST(KernelGolden, NttForwardMonomialXIsOddPsiPowers)
{
    // X evaluates to psi^(2k+1) at slot k: the natural-order convention.
    NttTable ntt(8, 257, 2);
    std::vector<u64> x{0, 1, 0, 0, 0, 0, 0, 0};
    ntt.forward(x);
    EXPECT_EQ(x, (std::vector<u64>{2, 8, 32, 128, 255, 249, 225, 129}));
}

// ---------------------------------------------------------------------
// Reduction edge values, q = 2^59 - 55 (widest supported modulus class).
// ---------------------------------------------------------------------

TEST(KernelGolden, BarrettReduce64EdgeValues)
{
    const u64 q = (1ULL << 59) - 55;
    const Modulus mod(q);
    EXPECT_EQ(mod.reduce(u64{0}), 0u);
    EXPECT_EQ(mod.reduce(u64{1}), 1u);
    EXPECT_EQ(mod.reduce(q - 1), q - 1);
    EXPECT_EQ(mod.reduce(q), 0u);
    EXPECT_EQ(mod.reduce(q + 1), 1u);
    EXPECT_EQ(mod.reduce(2 * q - 1), q - 1);
    EXPECT_EQ(mod.reduce(2 * q), 0u);
    EXPECT_EQ(mod.reduce(u64{1} << 63), 880u);
    EXPECT_EQ(mod.reduce(~u64{0}), 1759u);
}

TEST(KernelGolden, BarrettReduce128EdgeValues)
{
    const u64 q = (1ULL << 59) - 55;
    const Modulus mod(q);
    // (q-1)^2 = (-1)^2 = 1 mod q.
    EXPECT_EQ(mod.reduce(static_cast<u128>(q - 1) * (q - 1)), 1u);
    EXPECT_EQ(mod.reduce(~static_cast<u128>(0)), 3097599u);
}

TEST(KernelGolden, ShoupMulEdgeValues)
{
    const u64 q = (1ULL << 59) - 55;
    const Modulus mod(q);
    const u64 w = q - 1;
    const u64 wShoup = mod.shoupPrecompute(w);
    EXPECT_EQ(wShoup, 18446744073709551583ULL);
    // (-1) * (-1): the lazy form returns the q-shifted representative.
    EXPECT_EQ(mod.mulShoupLazy(q - 1, w, wShoup), q + 1);
    EXPECT_EQ(mod.mulShoup(q - 1, w, wShoup), 1u);
    EXPECT_EQ(mod.mulShoup(0, w, wShoup), 0u);
    EXPECT_EQ(mod.mulShoup(1, w, wShoup), q - 1);
}

TEST(KernelGolden, MontgomeryEdgeValues)
{
    const u64 q = (1ULL << 59) - 55;
    const Modulus mod(q);
    ASSERT_TRUE(mod.hasMontgomery());
    // 2^64 mod q.
    EXPECT_EQ(mod.montOne(), 1760u);
    EXPECT_EQ(mod.toMont(1), 1760u);
    EXPECT_EQ(mod.toMont(0), 0u);
    EXPECT_EQ(mod.toMont(q - 1), 576460752303421673ULL);
    EXPECT_EQ(mod.fromMont(mod.toMont(q - 1)), q - 1);
    EXPECT_EQ(mod.fromMont(mod.mulMont(mod.toMont(2), mod.toMont(3))), 6u);
}

// ---------------------------------------------------------------------
// One CKKS encode -> encrypt -> multiply -> rescale -> decode chain with
// fixed inputs and a seeded RNG; locks the numerics of the full pipeline
// (encoder FFT, NTT kernels, key switching, rescale rounding).
// ---------------------------------------------------------------------

TEST(KernelGolden, CkksEncodeMulRescaleChain)
{
    using namespace ckks;
    CkksContext ctx(CkksParams::testFast());
    CkksEncoder encoder(&ctx);
    Rng rng(99);
    CkksKeyGenerator keygen(&ctx, rng);
    CkksEncryptor encryptor(&ctx, &keygen.secretKey(), rng);
    CkksEvaluator eval(&ctx);
    const auto relin = keygen.makeRelinKey();

    std::vector<double> va(ctx.slots()), vb(ctx.slots());
    for (size_t i = 0; i < va.size(); ++i) {
        va[i] = 0.5 + 0.001 * static_cast<double>(i % 97);
        vb[i] = 1.25 - 0.002 * static_cast<double>(i % 89);
    }
    const auto pa = encoder.encode(va, ctx.levels(), ctx.scale());
    const auto pb = encoder.encode(vb, ctx.levels(), ctx.scale());

    // Frozen first coefficients of the limb-0 encoding (eval form).
    const std::vector<u64> expectCoeffs{
        3920001961169507ULL,  5204230729603916ULL,  9141531009869672ULL,
        12562074613624618ULL, 28163077462280370ULL, 35790164201144753ULL};
    for (size_t c = 0; c < expectCoeffs.size(); ++c)
        EXPECT_EQ(pa.poly.limb(0)[c], expectCoeffs[c]) << "coeff " << c;

    auto ca = encryptor.encrypt(pa);
    auto cb = encryptor.encrypt(pb);
    auto prod = eval.rescale(eval.multiply(ca, cb, relin));
    EXPECT_EQ(prod.c0.limbCount(), static_cast<size_t>(ctx.levels()) - 1);

    const auto dec = encoder.decode(encryptor.decrypt(prod));
    // Frozen decoded slots (slot i carries va[i]*vb[i] plus the recorded
    // noise of this exact seeded run).
    const double expectReal[] = {0.624999994779, 0.625247986120,
                                 0.625491997935, 0.625731999964,
                                 0.625968000860, 0.626200000278};
    for (int i = 0; i < 6; ++i) {
        EXPECT_NEAR(dec[i].real(), expectReal[i], 1e-6) << "slot " << i;
        EXPECT_NEAR(dec[i].imag(), 0.0, 1e-6) << "slot " << i;
        // And the chain still computes the right product.
        EXPECT_NEAR(dec[i].real(), va[i] * vb[i], 1e-5) << "slot " << i;
    }
}

} // namespace
} // namespace ufc
