/**
 * @file
 * Tests for the cycle engine, machine models and accelerator comparison
 * shapes (who wins, by roughly what factor — the paper's headline
 * results).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

namespace ufc {
namespace sim {
namespace {

using baselines::SharpPerf;
using baselines::StrixPerf;

TEST(SpadModel, HitMissAndWriteback)
{
    SpadModel spad(1000.0);
    double wb = 0.0;

    isa::BufferRef a{1, 600, false, false};
    EXPECT_DOUBLE_EQ(spad.access(a, wb), 600.0); // cold miss
    EXPECT_DOUBLE_EQ(wb, 0.0);
    EXPECT_DOUBLE_EQ(spad.access(a, wb), 0.0);   // hit

    isa::BufferRef b{2, 600, true, false};
    EXPECT_DOUBLE_EQ(spad.access(b, wb), 0.0);   // write-allocate: no fetch
    EXPECT_DOUBLE_EQ(wb, 0.0);                   // clean victim (a)

    // Re-touch a: must re-fetch (evicted), and evicting dirty b writes
    // back.
    EXPECT_DOUBLE_EQ(spad.access(a, wb), 600.0);
    EXPECT_DOUBLE_EQ(wb, 600.0);
}

TEST(SpadModel, TransientBuffersNeverTouchDram)
{
    SpadModel spad(100.0);
    double wb = 0.0;
    isa::BufferRef t{7, 1000000000ULL, false, true};
    EXPECT_DOUBLE_EQ(spad.access(t, wb), 0.0);
    EXPECT_DOUBLE_EQ(wb, 0.0);
}

TEST(CycleEngine, ComputeBoundStreamSaturatesCompute)
{
    UfcPerf perf{UfcConfig::tableII()};
    CycleEngine engine(&perf);
    // 100 full-width EW ops with no memory traffic; each runs 1000
    // cycles so the fixed pipeline-fill overhead stays small.
    for (int i = 0; i < 100; ++i) {
        isa::HwInst inst;
        inst.op = isa::HwOp::Ewmm;
        inst.words = 16384 * 1000;
        inst.work = 16384 * 1000;
        engine.issue(inst);
    }
    auto stats = engine.finish();
    const double fill = perf.pipelineFillCycles();
    EXPECT_NEAR(stats.totalCycles, 100.0 * (1000.0 + fill), 1.0);
    EXPECT_NEAR(stats.utilization(isa::Resource::VectorAlu),
                1000.0 / (1000.0 + fill), 0.01);
    EXPECT_DOUBLE_EQ(stats.hbmBytes, 0.0);
}

TEST(CycleEngine, MemoryBoundStreamSaturatesHbm)
{
    UfcPerf perf{UfcConfig::tableII()};
    CycleEngine engine(&perf);
    for (int i = 0; i < 100; ++i) {
        isa::HwInst inst;
        inst.op = isa::HwOp::Ewma;
        inst.words = 1024;
        inst.work = 1024;
        isa::BufferRef huge{1000 + static_cast<u64>(i), 1024ULL * 1024,
                            false, false};
        inst.buffers = {huge};
        engine.issue(inst);
    }
    auto stats = engine.finish();
    EXPECT_GT(stats.hbmUtilization(), 0.9);
    EXPECT_LT(stats.utilization(isa::Resource::VectorAlu), 0.1);
    EXPECT_NEAR(stats.hbmBytes, 100.0 * 1024 * 1024, 1.0);
}

TEST(UfcPerf, NttThroughputMatchesTableIV)
{
    // An N=2^16 single-limb NTT at 2 words/coeff: Table IV gives an
    // effective NTTU throughput of 1024 words/cycle.
    UfcPerf perf{UfcConfig::tableII()};
    isa::HwInst inst;
    inst.op = isa::HwOp::Ntt;
    inst.logDegree = 16;
    inst.words = (1ULL << 16);
    inst.work = inst.words * 16 / 2;
    const double cycles = perf.computeCycles(inst);
    EXPECT_NEAR(inst.words / cycles, 1024.0, 1.0);
    EXPECT_NEAR(perf.laneFraction(inst), 1.0, 1e-9);
}

TEST(SharpPerf, NttUtilizationDropsWithDegree)
{
    // Figure 2: 50%-75% utilization for logN = 9..12, full at 16.
    EXPECT_NEAR(SharpPerf::nttUtilization(9, 16), 0.5625, 1e-9);
    EXPECT_NEAR(SharpPerf::nttUtilization(12, 16), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(SharpPerf::nttUtilization(16, 16), 1.0);
}

TEST(StrixPerf, FftUtilizationAndRingLimit)
{
    EXPECT_DOUBLE_EQ(StrixPerf::fftUtilization(10, 10, 14), 1.0);
    EXPECT_NEAR(StrixPerf::fftUtilization(14, 10, 14), 10.0 / 14, 1e-9);
    EXPECT_DOUBLE_EQ(StrixPerf::fftUtilization(16, 10, 14), 0.0);
}

TEST(Workloads, TracesAreNonTrivialAndWellFormed)
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t2();
    for (const auto &tr : workloads::ckksSuite(cp)) {
        EXPECT_GT(tr.ops.size(), 10u) << tr.name;
        EXPECT_EQ(tr.ckksRingDim, cp.ringDim) << tr.name;
        for (const auto &op : tr.ops) {
            EXPECT_GE(op.limbs, 1) << tr.name;
            EXPECT_LE(op.limbs, cp.levels) << tr.name;
        }
    }
    for (const auto &tr : workloads::tfheSuite(tp)) {
        EXPECT_GE(tr.totalOps(), 100u) << tr.name;
        EXPECT_EQ(tr.tfheRingDim, tp.ringDim) << tr.name;
    }
}

TEST(Accelerators, UfcRunsCkksFasterThanSharp)
{
    const auto cp = ckks::CkksParams::c2();
    UfcModel ufcm;
    SharpModel sharp;
    const auto tr = workloads::helr(cp, 4);
    const auto u = ufcm.run(tr);
    const auto s = sharp.run(tr);
    EXPECT_GT(u.seconds, 0.0);
    EXPECT_GT(s.seconds, 0.0);
    // Paper Figure 10(a): UFC ~1.1x faster on CKKS workloads.
    const double speedup = s.seconds / u.seconds;
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 2.0);
}

TEST(Accelerators, UfcRunsTfheMuchFasterThanStrix)
{
    const auto tp = tfhe::TfheParams::t2();
    UfcModel ufcm;
    StrixModel strix;
    const auto tr = workloads::pbsThroughput(tp, 256);
    const auto u = ufcm.run(tr);
    const auto s = strix.run(tr);
    // Paper Figure 10(b): ~6x speedup.
    const double speedup = s.seconds / u.seconds;
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 12.0);
}

TEST(Accelerators, HybridUfcBeatsComposedSystem)
{
    const auto cp = ckks::CkksParams::c2();
    UfcModel ufcm;
    ComposedModel composed;
    {
        // Small parameters (T1): near parity with the pipelined composed
        // system (paper: ~1.04x).
        const auto tr = workloads::hybridKnn(cp, tfhe::TfheParams::t1());
        const auto u = ufcm.run(tr);
        const auto c = composed.run(tr);
        EXPECT_GT(c.seconds / u.seconds, 0.8);
        EXPECT_LT(c.seconds / u.seconds, 1.5);
        EXPECT_GT(c.edap() / u.edap(), 1.5);
    }
    {
        // Large parameters (T4): clear UFC win (paper: 2.8x).
        const auto tr = workloads::hybridKnn(cp, tfhe::TfheParams::t4());
        const auto u = ufcm.run(tr);
        const auto c = composed.run(tr);
        EXPECT_GT(c.seconds / u.seconds, 2.0);
        EXPECT_GT(c.edap() / u.edap(), 4.0);
    }
}

TEST(Accelerators, SharpRejectsTfheTraces)
{
    const auto tp = tfhe::TfheParams::t1();
    SharpModel sharp;
    const auto tr = workloads::pbsThroughput(tp, 16);
    // A scheme/machine mismatch is user input, so it must surface as a
    // recoverable ConfigError rather than a process abort.
    EXPECT_THROW({ sharp.run(tr); }, ConfigError);
}

TEST(CostModel, AreaMatchesPaperTotals)
{
    UfcCostModel cost{UfcConfig::tableII()};
    // Paper Table II: 197.7 mm^2 at 7 nm.
    EXPECT_NEAR(cost.areaMm2(), 197.7, 12.0);
    const auto items = cost.areaBreakdown();
    EXPECT_GE(items.size(), 5u);
    double sum = 0.0;
    for (const auto &item : items)
        sum += item.mm2;
    EXPECT_NEAR(sum, cost.areaMm2(), 1e-9);
}

TEST(CostModel, PowerInPaperRange)
{
    const auto cp = ckks::CkksParams::c2();
    UfcModel ufcm;
    const auto r = ufcm.run(workloads::ckksBootstrapping(cp));
    // Paper Table II: 76.9 W average; allow a generous band.
    EXPECT_GT(r.powerW, 40.0);
    EXPECT_LT(r.powerW, 110.0);
}

} // namespace
} // namespace sim
} // namespace ufc
