/**
 * @file
 * Tests for the advanced CKKS machinery: BSGS linear transforms and
 * homomorphic Chebyshev evaluation — the building blocks of
 * bootstrapping and of the paper's SIMD workloads.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/chebyshev.h"
#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"

namespace ufc {
namespace ckks {
namespace {

struct AdvFixture : public ::testing::Test
{
    AdvFixture()
        : ctx(makeParams()), encoder(&ctx), rng(555), keygen(&ctx, rng),
          encryptor(&ctx, &keygen.secretKey(), rng), eval(&ctx),
          relin(keygen.makeRelinKey()), keys(&keygen)
    {}

    static CkksParams
    makeParams()
    {
        // Deeper chain for polynomial evaluation, small ring for speed.
        CkksParams p;
        p.name = "ADV";
        p.ringDim = 1ULL << 11;
        p.levels = 12;
        p.dnum = 4;
        p.specialLimbs = 3;
        p.firstModBits = 55;
        p.scaleBits = 40;
        p.specialBits = 55;
        return p;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Rng rng;
    CkksKeyGenerator keygen;
    CkksEncryptor encryptor;
    CkksEvaluator eval;
    EvalKey relin;
    RotationKeySet keys;
};

TEST(Chebyshev, InterpolationApproximatesSmoothFunctions)
{
    auto coeffs = chebyshevInterpolate(
        [](double x) { return std::sin(x); }, -3.0, 3.0, 31);
    for (double x = -3.0; x <= 3.0; x += 0.1) {
        const double u = x / 3.0;
        EXPECT_NEAR(chebyshevEval(coeffs, u), std::sin(x), 1e-9);
    }
}

TEST(Chebyshev, DivisionIdentityHolds)
{
    Rng rng(3);
    std::vector<double> p(48);
    for (auto &c : p)
        c = 2.0 * rng.uniformReal() - 1.0;

    for (int m : {4, 8, 16, 32}) {
        auto [q, r] = chebyshevDivide(p, m);
        EXPECT_LT(chebyshevDegree(r), m);
        // p(u) == q(u)*T_m(u) + r(u) pointwise.
        for (double u = -1.0; u <= 1.0; u += 0.05) {
            const double tm = std::cos(m * std::acos(
                std::clamp(u, -1.0, 1.0)));
            EXPECT_NEAR(chebyshevEval(p, u),
                        chebyshevEval(q, u) * tm + chebyshevEval(r, u),
                        1e-9)
                << "m=" << m << " u=" << u;
        }
    }
}

TEST_F(AdvFixture, LinearTransformMatchesPlaintextMatVec)
{
    const size_t n = ctx.slots();
    // A sparse band matrix (5 diagonals) with complex entries.
    std::map<int, std::vector<cplx>> diagonals;
    Rng r(7);
    for (int d : {0, 1, 2, static_cast<int>(n) - 1, 17}) {
        std::vector<cplx> diag(n);
        for (auto &x : diag)
            x = cplx(r.uniformReal() - 0.5, r.uniformReal() - 0.5);
        diagonals.emplace(d, std::move(diag));
    }
    LinearTransform lt(&ctx, &encoder, diagonals, ctx.scale());

    std::vector<cplx> x(n);
    for (auto &v : x)
        v = cplx(r.uniformReal() - 0.5, r.uniformReal() - 0.5);
    auto ct = encryptor.encrypt(encoder.encode(x, 6, ctx.scale()));

    auto out = eval.rescale(lt.apply(eval, ct, keys));
    auto got = encoder.decode(encryptor.decrypt(out));

    for (size_t j = 0; j < n; ++j) {
        cplx expect(0.0, 0.0);
        for (const auto &[d, diag] : diagonals)
            expect += diag[j] * x[(j + d) % n];
        EXPECT_NEAR(std::abs(got[j] - expect), 0.0, 1e-4) << "slot " << j;
    }
}

TEST_F(AdvFixture, DenseLinearTransformFromMatrix)
{
    // Small dense matrix acting on the first 8 slots (identity on rest
    // omitted: matrix rows beyond 8 are zero).
    const size_t n = ctx.slots();
    Rng r(11);
    std::vector<std::vector<cplx>> matrix(n, std::vector<cplx>(n));
    for (size_t j = 0; j < 8; ++j)
        for (size_t l = 0; l < 8; ++l)
            matrix[j][l] = cplx(r.uniformReal() - 0.5, 0.0);

    auto lt = LinearTransform::fromMatrix(&ctx, &encoder, matrix,
                                          ctx.scale());
    std::vector<cplx> x(n, cplx(0.0, 0.0));
    for (size_t l = 0; l < 8; ++l)
        x[l] = cplx(0.25 * (l + 1), 0.0);
    auto ct = encryptor.encrypt(encoder.encode(x, 6, ctx.scale()));
    auto out = eval.rescale(lt.apply(eval, ct, keys));
    auto got = encoder.decode(encryptor.decrypt(out));

    for (size_t j = 0; j < 8; ++j) {
        cplx expect(0.0, 0.0);
        for (size_t l = 0; l < 8; ++l)
            expect += matrix[j][l] * x[l];
        EXPECT_NEAR(std::abs(got[j] - expect), 0.0, 1e-4) << "slot " << j;
    }
}

TEST_F(AdvFixture, HomomorphicChebyshevLowDegree)
{
    // f(u) = T_2(u) combination: p(u) = 0.5 + 0.25 T_1 - 0.125 T_3.
    ChebyshevEvaluator cheb(&ctx, &encoder, &eval, &relin);
    std::vector<double> coeffs = {0.5, 0.25, 0.0, -0.125};

    const size_t n = ctx.slots();
    std::vector<double> u(n);
    Rng r(13);
    for (auto &v : u)
        v = 2.0 * r.uniformReal() - 1.0;
    auto ct = encryptor.encrypt(encoder.encode(u, ctx.levels(),
                                               ctx.scale()));
    auto out = cheb.evaluate(ct, coeffs);
    auto got = encoder.decode(encryptor.decrypt(out));
    for (size_t j = 0; j < n; ++j)
        EXPECT_NEAR(got[j].real(), chebyshevEval(coeffs, u[j]), 1e-3)
            << "slot " << j;
}

TEST_F(AdvFixture, HomomorphicSineDegree31)
{
    // The bootstrapping workhorse: sin over several periods.
    ChebyshevEvaluator cheb(&ctx, &encoder, &eval, &relin);
    const size_t n = ctx.slots();
    std::vector<double> x(n);
    Rng r(17);
    for (auto &v : x)
        v = 6.0 * r.uniformReal() - 3.0;
    auto ct = encryptor.encrypt(encoder.encode(x, ctx.levels(),
                                               ctx.scale()));
    auto out = cheb.evaluateFunction(
        ct, [](double v) { return std::sin(v); }, -3.0, 3.0, 31);
    auto got = encoder.decode(encryptor.decrypt(out));
    double worst = 0.0;
    for (size_t j = 0; j < n; ++j)
        worst = std::max(worst, std::abs(got[j].real() - std::sin(x[j])));
    EXPECT_LT(worst, 5e-3);
}

} // namespace
} // namespace ckks
} // namespace ufc
