/**
 * @file
 * Differential gate for the trace-to-bytecode JIT: the compiled-Program
 * path (compile + execute on sim::BytecodeEngine) must be bit-identical
 * to the legacy trace-IR interpreter (compiler::Lowering feeding
 * sim::CycleEngine) on every observable — cycles, energy, per-opcode
 * attribution, stall causes, timeline slices, and typed-error
 * diagnostics — across the builtin workloads, the malformed/lint
 * fixture corpora, and fuzzed trace text.
 *
 * Comparison discipline: RunResult::toJson() prints doubles with
 * round-trip precision, so JSON string equality is bit equality over
 * the whole result (label, machine, workload, stats, breakdown).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "analysis/analyzer.h"
#include "common/error.h"
#include "common/fault.h"
#include "compiler/bytecode.h"
#include "runner/runner.h"
#include "sim/accelerator.h"
#include "sim/timeline.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace sim {
namespace {

RunOptions
irOptions(const RunOptions &base = RunOptions{})
{
    RunOptions opts = base;
    opts.execMode = ExecMode::TraceIr;
    return opts;
}

/** Both paths on one (model, trace, options) point must agree on the
 *  full serialized result. */
void
expectBitIdentical(const AcceleratorModel &model, const trace::Trace &tr,
                   const RunOptions &opts = RunOptions{})
{
    const RunResult bc = model.run(tr, opts);
    const RunResult ir = model.run(tr, irOptions(opts));
    EXPECT_EQ(bc.toJson(), ir.toJson())
        << model.name() << " on " << tr.name;
}

/** The builtin workload x machine grid the paper sweeps. */
std::vector<trace::Trace>
ckksTraces()
{
    const auto cp = ckks::CkksParams::c1();
    return {workloads::ckksBootstrapping(cp),
            workloads::sorting(cp, 1024),
            workloads::helr(cp, 2)};
}

std::vector<trace::Trace>
tfheTraces()
{
    const auto tp = tfhe::TfheParams::t4();
    return {workloads::pbsThroughput(tp, 64),
            workloads::tfheNn(tp, 2)};
}

trace::Trace
hybridTrace()
{
    return workloads::hybridKnn(ckks::CkksParams::c1(),
                                tfhe::TfheParams::t4(), 256);
}

TEST(BytecodeDifferential, UfcMatchesIrOnAllBuiltins)
{
    const UfcModel model;
    for (const auto &tr : ckksTraces())
        expectBitIdentical(model, tr);
    for (const auto &tr : tfheTraces())
        expectBitIdentical(model, tr);
    expectBitIdentical(model, hybridTrace());
}

TEST(BytecodeDifferential, BaselinesMatchIrOnTheirSchemes)
{
    const SharpModel sharp;
    for (const auto &tr : ckksTraces())
        expectBitIdentical(sharp, tr);
    const StrixModel strix;
    for (const auto &tr : tfheTraces())
        expectBitIdentical(strix, tr);
}

TEST(BytecodeDifferential, ComposedMatchesIrIncludingPartitioning)
{
    const ComposedModel composed;
    expectBitIdentical(composed, hybridTrace());
    // Degenerate partitions: all-CKKS (idle Strix) and all-TFHE (idle
    // SHARP) still agree, including the idle chip's static-energy term.
    expectBitIdentical(composed, ckksTraces().front());
    expectBitIdentical(composed, tfheTraces().front());
}

TEST(BytecodeDifferential, PrefetchWindowSweepMatchesIr)
{
    const UfcModel model;
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c1());
    for (int window : {0, 1, 4, 64}) {
        RunOptions opts;
        opts.prefetchWindow = window;
        expectBitIdentical(model, tr, opts);
    }
}

TEST(BytecodeDifferential, TimelineSlicesMatchIrBitExact)
{
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c1());
    const UfcModel ufc;
    const SharpModel sharp;
    for (const AcceleratorModel *model :
         std::initializer_list<const AcceleratorModel *>{&ufc, &sharp}) {
        Timeline bcTl;
        RunOptions bcOpts;
        bcOpts.timeline = &bcTl;
        const RunResult bc = model->run(tr, bcOpts);

        Timeline irTl;
        RunOptions irOpts;
        irOpts.timeline = &irTl;
        irOpts.execMode = ExecMode::TraceIr;
        const RunResult ir = model->run(tr, irOpts);

        EXPECT_EQ(bc.toJson(), ir.toJson());
        ASSERT_EQ(bcTl.slices().size(), irTl.slices().size())
            << model->name();
        for (size_t i = 0; i < bcTl.slices().size(); ++i) {
            const TimelineSlice &a = bcTl.slices()[i];
            const TimelineSlice &b = irTl.slices()[i];
            EXPECT_EQ(a.track, b.track) << i;
            EXPECT_EQ(a.depth, b.depth) << i;
            EXPECT_EQ(a.name, b.name) << i;
            EXPECT_EQ(a.beginCycle, b.beginCycle) << i;
            EXPECT_EQ(a.endCycle, b.endCycle) << i;
            EXPECT_EQ(a.bytes, b.bytes) << i;
        }
        // Observation changes nothing: with the timeline detached the
        // result is still the same (this also exercises the fused fast
        // path, which only runs without a timeline).
        EXPECT_EQ(model->run(tr).stats.totalCycles, bc.stats.totalCycles);
    }
}

TEST(BytecodeDifferential, MaxCyclesTripsIdenticallyMidProgram)
{
    const UfcModel model;
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c1());
    RunOptions opts;
    opts.maxCycles = 50000; // trips well inside the program

    std::string bcWhat;
    try {
        model.run(tr, opts);
        FAIL() << "bytecode watchdog did not trip";
    } catch (const TimeoutError &e) {
        bcWhat = e.what();
    }
    std::string irWhat;
    try {
        model.run(tr, irOptions(opts));
        FAIL() << "IR watchdog did not trip";
    } catch (const TimeoutError &e) {
        irWhat = e.what();
    }
    // Same instruction, same simulated clock, same message bytes.
    EXPECT_EQ(bcWhat, irWhat);
    EXPECT_NE(bcWhat.find("maxCycles watchdog"), std::string::npos);
}

TEST(BytecodeDifferential, RunOptionsValidationParity)
{
    const UfcModel model;
    const auto tr = workloads::sorting(ckks::CkksParams::c1(), 256);
    RunOptions bad;
    bad.prefetchWindow = -5;
    EXPECT_THROW(model.run(tr, bad), ConfigError);
    EXPECT_THROW(model.run(tr, irOptions(bad)), ConfigError);
    EXPECT_THROW(model.execute(model.compile(tr), bad), ConfigError);
}

TEST(BytecodeDifferential, SchemeRejectionParity)
{
    const auto tfhe = tfheTraces().front();
    const SharpModel sharp;
    EXPECT_THROW(sharp.run(tfhe), ConfigError);
    EXPECT_THROW(sharp.run(tfhe, irOptions()), ConfigError);
    EXPECT_THROW(sharp.compile(tfhe), ConfigError);
}

/** Run both modes on a parsed trace; returns true when the outcomes
 *  (success JSON or typed-error kind+message) are identical.  A
 *  maxCycles net bounds hostile inputs — tripping it identically on
 *  both paths is itself the parity being asserted. */
testing::AssertionResult
outcomesMatch(const AcceleratorModel &model, const trace::Trace &tr)
{
    RunOptions base;
    base.maxCycles = 100000000; // hostile-input safety net
    std::string bcOut;
    std::string irOut;
    auto runOne = [&](const RunOptions &opts, std::string &out) {
        try {
            out = "ok:" + model.run(tr, opts).toJson();
        } catch (const Error &e) {
            out = std::string("error:") + e.kind() + ":" + e.what();
        }
    };
    runOne(base, bcOut);
    runOne(irOptions(base), irOut);
    if (bcOut == irOut)
        return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << "trace '" << tr.name << "' diverged:\n  bytecode: "
           << bcOut.substr(0, 200) << "\n  trace-ir: "
           << irOut.substr(0, 200);
}

/** Trace-level lint gate, as the runner's lintTraces pre-flight: a
 *  trace with Error-severity findings feeds garbage geometry (division
 *  by zero decomposition levels, log2 of a non-power-of-two) into any
 *  lowering, so neither engine path may legally simulate it. */
bool
simulatable(const trace::Trace &tr)
{
    static const analysis::Analyzer linter;
    return linter.analyze(tr).errorCount() == 0;
}

TEST(BytecodeDifferential, FixtureCorporaParity)
{
    const UfcModel model;
    int compared = 0;
    for (const auto &entry : std::filesystem::recursive_directory_iterator(
             UFC_FIXTURE_DIR)) {
        if (entry.path().extension() != ".ufctrace")
            continue;
        trace::Trace tr;
        try {
            tr = trace::loadTrace(entry.path().string());
        } catch (const TraceError &) {
            continue; // unparseable: no simulation on either path
        }
        if (!simulatable(tr))
            continue; // runner pre-flight rejects before either engine
        EXPECT_TRUE(outcomesMatch(model, tr)) << entry.path();
        ++compared;
    }
    // The corpus must actually exercise the comparison (valid_small
    // plus the warning-severity lint fixtures).
    EXPECT_GE(compared, 3);
}

TEST(BytecodeDifferential, FuzzedTracesParity)
{
    std::ostringstream os;
    trace::writeTrace(workloads::sorting(ckks::CkksParams::c1(), 256),
                      os);
    const std::string good = os.str();
    const FaultInjector faults(2026, 0.0);
    const UfcModel model;
    int compared = 0;
    for (u64 salt = 0; salt < 64; ++salt) {
        const std::string hostile = faults.corruptTraceText(good, salt);
        std::stringstream ss(hostile);
        trace::Trace tr;
        try {
            tr = trace::readTrace(ss);
        } catch (const TraceError &) {
            continue; // rejected at parse: no simulation on either path
        }
        if (!simulatable(tr))
            continue;
        EXPECT_TRUE(outcomesMatch(model, tr)) << "salt " << salt;
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

// ---------------------------------------------------------------------
// Compile/execute API surface.

TEST(BytecodeProgram, RunShimEqualsCompileThenExecute)
{
    const UfcModel model;
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c1());
    const compiler::Program program = model.compile(tr);
    EXPECT_EQ(model.run(tr).toJson(), model.execute(program).toJson());
    // A Program is immutable: executing it again gives the same bytes.
    EXPECT_EQ(model.execute(program).toJson(),
              model.execute(program).toJson());
}

TEST(BytecodeProgram, StampsWorkloadMachineAndHash)
{
    const UfcModel model;
    const auto tr = workloads::sorting(ckks::CkksParams::c1(), 512);
    const compiler::Program program = model.compile(tr);
    EXPECT_EQ(program.workload, tr.name);
    EXPECT_EQ(program.machine, model.name());
    EXPECT_EQ(program.traceHash, trace::contentHash(tr));
    EXPECT_FALSE(program.code.empty());
    EXPECT_FALSE(program.composed());
}

TEST(BytecodeProgram, RejectsForeignAndComposedPrograms)
{
    const auto tr = ckksTraces().front();
    const UfcModel ufc;
    const SharpModel sharp;
    // Compiled-for-UFC executed on SHARP: machine mismatch.
    EXPECT_THROW(sharp.execute(ufc.compile(tr)), ConfigError);
    // A composed Program cannot run on a single-chip model...
    const ComposedModel composed;
    const compiler::Program hybrid = composed.compile(hybridTrace());
    EXPECT_TRUE(hybrid.composed());
    EXPECT_THROW(ufc.execute(hybrid), ConfigError);
    // ...and a single-chip Program cannot run on the composed system.
    EXPECT_THROW(composed.execute(ufc.compile(tr)), ConfigError);
}

TEST(BytecodeProgram, ContentHashTracksContent)
{
    const auto cp = ckks::CkksParams::c1();
    auto a = workloads::sorting(cp, 512);
    auto b = workloads::sorting(cp, 512);
    EXPECT_EQ(trace::contentHash(a), trace::contentHash(b));
    b.name = "renamed";
    EXPECT_NE(trace::contentHash(a), trace::contentHash(b));
    auto c = workloads::sorting(cp, 512);
    c.ops.back().count += 1;
    EXPECT_NE(trace::contentHash(a), trace::contentHash(c));
}

TEST(BytecodeProgram, ProgramCacheCompilesOncePerModelTracePair)
{
    runner::ProgramCache cache;
    const auto model = std::make_shared<UfcModel>();
    const auto tr = workloads::sorting(ckks::CkksParams::c1(), 512);

    const auto p1 = cache.get(*model, tr);
    const auto p2 = cache.get(*model, tr);
    EXPECT_EQ(p1.get(), p2.get()); // same shared Program object
    EXPECT_EQ(cache.compiles(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different model instance is a different key even for the same
    // trace (DSE sweeps depend on this: configs must not share code).
    const auto other = std::make_shared<UfcModel>();
    const auto p3 = cache.get(*other, tr);
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(cache.compiles(), 2u);

    // Cached Programs execute identically to a fresh run.
    EXPECT_EQ(model->execute(*p1).toJson(), model->run(tr).toJson());
}

TEST(BytecodeProgram, RunnerBatchMatchesIrBatch)
{
    const auto model = std::make_shared<UfcModel>();
    const auto tr = std::make_shared<const trace::Trace>(
        workloads::ckksBootstrapping(ckks::CkksParams::c1()));
    std::vector<runner::Job> jobs;
    for (int window : {0, 4, 64}) {
        runner::Job job;
        job.label = "bc/w" + std::to_string(window);
        job.model = model;
        job.trace = tr;
        job.options.prefetchWindow = window;
        jobs.push_back(job);
        job.label = "ir/w" + std::to_string(window);
        job.options.execMode = ExecMode::TraceIr;
        jobs.push_back(job);
    }
    const auto batch = runner::ExperimentRunner().runAll(jobs);
    ASSERT_TRUE(batch.allOk());
    for (size_t i = 0; i < jobs.size(); i += 2) {
        auto bc = batch.results[i];
        auto ir = batch.results[i + 1];
        // Normalize the per-job fields that legitimately differ.
        ir.label = bc.label;
        ir.hostSeconds = bc.hostSeconds = 0.0;
        EXPECT_EQ(bc.toJson(), ir.toJson()) << jobs[i].label;
    }
}

// ---------------------------------------------------------------------
// Fusion legality and the bytecode verifier.

TEST(BytecodeFusion, BootstrapProgramContainsLegalFusedRuns)
{
    const UfcModel model;
    const compiler::Program program =
        model.compile(workloads::ckksBootstrapping(ckks::CkksParams::c1()));
    EXPECT_GT(program.fusedRuns, 0u);
    EXPECT_GT(program.fusedInsts, program.fusedRuns);

    analysis::DiagnosticReport rep;
    compiler::verifyProgram(program, rep);
    EXPECT_TRUE(rep.clean()) << rep.toText();

    // Every fused member must be a Stream instruction; at least one run
    // should carry a key-switch classification on a bootstrap workload.
    bool sawKeySwitch = false;
    for (size_t i = 0; i < program.code.size();) {
        const compiler::BcInst &head = program.code[i];
        if (head.runLen > 1) {
            for (u32 k = 0; k < head.runLen; ++k)
                EXPECT_EQ(program.code[i + k].kind,
                          compiler::BcKind::Stream);
            if (head.fuse == compiler::FuseKind::KeySwitch)
                sawKeySwitch = true;
            i += head.runLen;
        } else {
            ++i;
        }
    }
    EXPECT_TRUE(sawKeySwitch);
}

compiler::Program
programWithRun(size_t *headOut)
{
    const UfcModel model;
    compiler::Program program =
        model.compile(workloads::ckksBootstrapping(ckks::CkksParams::c1()));
    for (size_t i = 0; i < program.code.size(); ++i)
        if (program.code[i].runLen > 1) {
            *headOut = i;
            return program;
        }
    ADD_FAILURE() << "no fused run in bootstrap program";
    *headOut = 0;
    return program;
}

TEST(BytecodeFusion, VerifierFlagsRunOverrun)
{
    size_t head = 0;
    compiler::Program program = programWithRun(&head);
    program.code[head].runLen =
        static_cast<u16>(program.code.size() - head + 1);
    analysis::DiagnosticReport rep;
    compiler::verifyProgram(program, rep);
    ASSERT_GT(rep.errorCount(), 0u);
    EXPECT_EQ(rep.firstError()->rule, "bc-fuse-phase-span");
}

TEST(BytecodeFusion, VerifierFlagsCachedOperandInsideRun)
{
    size_t head = 0;
    compiler::Program program = programWithRun(&head);
    program.code[head + 1].kind = compiler::BcKind::Mem;
    analysis::DiagnosticReport rep;
    compiler::verifyProgram(program, rep);
    ASSERT_GT(rep.errorCount(), 0u);
    EXPECT_EQ(rep.firstError()->rule, "bc-fuse-cached-operand");
}

TEST(BytecodeFusion, VerifierFlagsPhaseMarkerInsideRun)
{
    size_t head = 0;
    compiler::Program program = programWithRun(&head);
    program.phaseEvents.push_back(compiler::PhaseEvent{
        static_cast<u64>(head) + 1, compiler::PhaseEvent::kEnd});
    std::sort(program.phaseEvents.begin(), program.phaseEvents.end(),
              [](const compiler::PhaseEvent &a,
                 const compiler::PhaseEvent &b) { return a.inst < b.inst; });
    analysis::DiagnosticReport rep;
    compiler::verifyProgram(program, rep);
    ASSERT_GT(rep.errorCount(), 0u);
    EXPECT_EQ(rep.firstError()->rule, "bc-fuse-phase-span");
}

TEST(BytecodeFusion, LintRulesAreRegistered)
{
    bool sawCached = false;
    bool sawSpan = false;
    for (const auto &rule : analysis::ruleRegistry()) {
        if (std::string_view(rule.id) == "bc-fuse-cached-operand")
            sawCached = true;
        if (std::string_view(rule.id) == "bc-fuse-phase-span")
            sawSpan = true;
    }
    EXPECT_TRUE(sawCached);
    EXPECT_TRUE(sawSpan);
}

TEST(BytecodeFusion, OnePassAnalyzeLoweredStaysCleanOnBuiltins)
{
    // analyzeLowered now verifies through the same one-pass lowering
    // that emits bytecode (VerifyingSink composed with ProgramBuilder),
    // plus the bc-fuse-* program checks; builtin workloads stay clean.
    const analysis::Analyzer analyzer;
    const UfcModel model;
    for (const auto &tr : ckksTraces()) {
        const auto rep =
            analyzer.analyzeLowered(tr, model.loweringOptions());
        EXPECT_TRUE(rep.clean()) << tr.name << "\n" << rep.toText();
    }
}

// ---------------------------------------------------------------------
// Structural repeat folding (Program::loops).

/** A TFHE program whose blind rotate folded into Program loops. */
compiler::Program
foldedTfheProgram(const UfcModel &model)
{
    const compiler::Program program = model.compile(
        workloads::pbsThroughput(tfhe::TfheParams::t4(), 64));
    EXPECT_FALSE(program.loops.empty())
        << "TVLP blind rotate should fold its key-reusing iterations";
    return program;
}

TEST(BytecodeLoops, TfheProgramFoldsAndReplaysExactly)
{
    const UfcModel model;
    const compiler::Program program = foldedTfheProgram(model);
    // Folding must shrink the stored stream without losing executions:
    // the executor steps exactly as many instructions as the IR
    // interpreter issues.
    EXPECT_GT(program.totalInsts(), program.code.size());
    const RunResult run = model.execute(program);
    EXPECT_EQ(run.stats.instCount, program.totalInsts());

    analysis::DiagnosticReport rep;
    compiler::verifyProgram(program, rep);
    EXPECT_TRUE(rep.clean()) << rep.toText();
}

TEST(BytecodeLoops, LoopedProgramMatchesIrAcrossPrefetchWindows)
{
    const UfcModel model;
    const auto tr = workloads::pbsThroughput(tfhe::TfheParams::t4(), 64);
    for (int window : {0, 1, 4, 64}) {
        RunOptions opts;
        opts.prefetchWindow = window;
        expectBitIdentical(model, tr, opts);
    }
}

TEST(BytecodeLoops, LoopedTimelineSlicesMatchIrBitExact)
{
    // Phase markers recorded at a fold's end index must fire once,
    // after the final trip — exactly where the unrolled IR stream puts
    // them — and every replayed body instruction emits its own slices.
    const UfcModel model;
    const auto tr = workloads::pbsThroughput(tfhe::TfheParams::t4(), 16);
    Timeline bcTl;
    RunOptions bcOpts;
    bcOpts.timeline = &bcTl;
    const RunResult bc = model.run(tr, bcOpts);

    Timeline irTl;
    RunOptions irOpts;
    irOpts.timeline = &irTl;
    irOpts.execMode = ExecMode::TraceIr;
    const RunResult ir = model.run(tr, irOpts);

    EXPECT_EQ(bc.toJson(), ir.toJson());
    ASSERT_EQ(bcTl.slices().size(), irTl.slices().size());
    for (size_t i = 0; i < bcTl.slices().size(); ++i) {
        const TimelineSlice &a = bcTl.slices()[i];
        const TimelineSlice &b = irTl.slices()[i];
        EXPECT_EQ(a.track, b.track) << i;
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.beginCycle, b.beginCycle) << i;
        EXPECT_EQ(a.endCycle, b.endCycle) << i;
        EXPECT_EQ(a.bytes, b.bytes) << i;
    }
}

TEST(BytecodeLoops, MaxCyclesTripsIdenticallyInsideLoop)
{
    const UfcModel model;
    const auto tr = workloads::pbsThroughput(tfhe::TfheParams::t4(), 64);
    RunOptions opts;
    opts.maxCycles = 200000; // trips inside the folded blind rotate

    std::string bcWhat;
    try {
        model.run(tr, opts);
        FAIL() << "bytecode watchdog did not trip";
    } catch (const TimeoutError &e) {
        bcWhat = e.what();
    }
    std::string irWhat;
    try {
        model.run(tr, irOptions(opts));
        FAIL() << "IR watchdog did not trip";
    } catch (const TimeoutError &e) {
        irWhat = e.what();
    }
    EXPECT_EQ(bcWhat, irWhat);
}

TEST(BytecodeLoops, VerifierFlagsMalformedLoops)
{
    const UfcModel model;
    const compiler::Program good = foldedTfheProgram(model);
    ASSERT_FALSE(good.loops.empty());

    auto firstRule = [](const compiler::Program &p) -> std::string {
        analysis::DiagnosticReport rep;
        compiler::verifyProgram(p, rep);
        return rep.errorCount() ? rep.firstError()->rule : "";
    };

    compiler::Program degenerate = good;
    degenerate.loops.front().trips = 1;
    EXPECT_EQ(firstRule(degenerate), "bc-loop-invariant");

    compiler::Program oob = good;
    oob.loops.back().end = oob.code.size() + 7;
    EXPECT_EQ(firstRule(oob), "bc-loop-invariant");

    compiler::Program marked = good;
    const compiler::BcLoop &lp = marked.loops.front();
    marked.phaseEvents.push_back(compiler::PhaseEvent{
        lp.end - (lp.bodyLen > 1 ? 1 : 0), compiler::PhaseEvent::kEnd});
    std::sort(marked.phaseEvents.begin(), marked.phaseEvents.end(),
              [](const compiler::PhaseEvent &a,
                 const compiler::PhaseEvent &b) { return a.inst < b.inst; });
    if (lp.bodyLen > 1) {
        EXPECT_EQ(firstRule(marked), "bc-loop-invariant");
    }
}

TEST(BytecodeLoops, EngineRejectsMalformedLoopTable)
{
    // The executor trusts the loop table for control flow, so a
    // mutated Program must be screened out, not walked off the end.
    const UfcModel model;
    compiler::Program program = foldedTfheProgram(model);
    ASSERT_FALSE(program.loops.empty());
    program.loops.front().end = program.code.size() + 1;
    EXPECT_THROW(model.execute(program), ConfigError);
}

TEST(BytecodeLoops, DisassemblyShowsRepeats)
{
    const UfcModel model;
    const compiler::Program program = foldedTfheProgram(model);
    std::ostringstream os;
    compiler::disassemble(program, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("repeat "), std::string::npos);
    EXPECT_NE(text.find("executed="), std::string::npos);
}

TEST(BytecodeLoops, LintRuleRegistered)
{
    bool saw = false;
    for (const auto &rule : analysis::ruleRegistry())
        if (std::string_view(rule.id) == "bc-loop-invariant")
            saw = true;
    EXPECT_TRUE(saw);
}

TEST(BytecodeProgram, DisassemblyListsOpsAndPhases)
{
    const UfcModel model;
    const compiler::Program program =
        model.compile(workloads::ckksBootstrapping(ckks::CkksParams::c1()));
    std::ostringstream os;
    compiler::disassemble(program, os);
    const std::string text = os.str();
    EXPECT_NE(text.find(program.workload), std::string::npos);
    EXPECT_NE(text.find("key_switch"), std::string::npos);
    EXPECT_NE(text.find("fused"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace ufc
