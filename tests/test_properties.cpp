/**
 * @file
 * Parameterized property sweeps across the substrate: gadget
 * decomposition over base/level combinations, encoder precision over
 * scales, CKKS multiplication across dnum configurations, and TFHE
 * external-product noise across gadget settings.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "math/gadget.h"
#include "math/primes.h"
#include "tfhe/rlwe.h"

namespace ufc {
namespace {

// ---------------------------------------------------------------------
// Gadget decomposition sweep.
// ---------------------------------------------------------------------

using GadgetParam = std::tuple<int, int>; // (logBase, levels)

class GadgetSweep : public ::testing::TestWithParam<GadgetParam> {};

TEST_P(GadgetSweep, RecomposeErrorWithinBound)
{
    const auto [logBase, levels] = GetParam();
    const u64 q = findNttPrime(32, 1 << 11);
    Gadget g(q, logBase, levels);
    Rng rng(static_cast<u64>(logBase * 100 + levels));
    std::vector<u64> digits(levels);
    // Error sources: the final gadget granularity plus the accumulated
    // rounding of each g_i (each digit contributes up to |d_i| * 0.5
    // <= B/4 from g_i's rounding).
    const u64 bound = g.g(levels - 1) +
                      static_cast<u64>(levels) * (g.base() / 4) + 1;
    for (int i = 0; i < 500; ++i) {
        const u64 x = rng.uniform(q);
        g.decompose(x, digits.data());
        const u64 back = g.recompose(digits.data());
        const u64 err =
            std::min(subMod(back, x, q), subMod(x, back, q));
        EXPECT_LE(err, bound) << "x=" << x;
        for (u64 d : digits) {
            const u64 mag = std::min(d, q - d);
            EXPECT_LE(mag, g.base() / 2);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    BaseLevelGrid, GadgetSweep,
    ::testing::Values(GadgetParam{2, 8}, GadgetParam{4, 6},
                      GadgetParam{8, 3}, GadgetParam{8, 4},
                      GadgetParam{11, 2}, GadgetParam{16, 2}),
    [](const auto &info) {
        return "B" + std::to_string(std::get<0>(info.param)) + "_l" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Encoder precision across scales.
// ---------------------------------------------------------------------

class EncoderPrecision : public ::testing::TestWithParam<int> {};

TEST_P(EncoderPrecision, RoundTripErrorScalesInversely)
{
    const int scaleBits = GetParam();
    ckks::CkksParams p = ckks::CkksParams::testFast();
    ckks::CkksContext ctx(p);
    ckks::CkksEncoder encoder(&ctx);

    Rng rng(static_cast<u64>(scaleBits));
    std::vector<double> v(ctx.slots());
    for (auto &x : v)
        x = 2.0 * rng.uniformReal() - 1.0;

    const double scale = std::ldexp(1.0, scaleBits);
    auto pt = encoder.encode(v, 2, scale);
    auto back = encoder.decode(pt);
    double worst = 0.0;
    for (size_t i = 0; i < v.size(); ++i)
        worst = std::max(worst, std::abs(back[i].real() - v[i]));
    // Rounding error ~ sqrt(N)/scale; allow two orders of headroom.
    EXPECT_LT(worst, 100.0 * std::sqrt(
                         static_cast<double>(ctx.degree())) / scale)
        << "scaleBits=" << scaleBits;
}

INSTANTIATE_TEST_SUITE_P(Scales, EncoderPrecision,
                         ::testing::Values(30, 35, 40, 45, 50));

// ---------------------------------------------------------------------
// CKKS multiplication across dnum configurations.
// ---------------------------------------------------------------------

class DnumSweep : public ::testing::TestWithParam<int> {};

TEST_P(DnumSweep, MultiplicationCorrectUnderAnyDigitCount)
{
    const int dnum = GetParam();
    ckks::CkksParams p = ckks::CkksParams::testFast();
    p.dnum = dnum;
    p.specialLimbs = (p.levels + dnum - 1) / dnum; // K = alpha
    ckks::CkksContext ctx(p);
    ckks::CkksEncoder encoder(&ctx);
    Rng rng(static_cast<u64>(900 + dnum));
    ckks::CkksKeyGenerator keygen(&ctx, rng);
    ckks::CkksEncryptor enc(&ctx, &keygen.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);
    auto relin = keygen.makeRelinKey();

    std::vector<double> a(ctx.slots()), b(ctx.slots());
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = 0.3 + 0.001 * (i % 100);
        b[i] = -0.7 + 0.002 * (i % 50);
    }
    auto ca = enc.encrypt(encoder.encode(a, p.levels, ctx.scale()));
    auto cb = enc.encrypt(encoder.encode(b, p.levels, ctx.scale()));
    auto prod = eval.rescale(eval.multiply(ca, cb, relin));
    auto dec = encoder.decode(enc.decrypt(prod));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(dec[i].real(), a[i] * b[i], 1e-4)
            << "dnum=" << dnum << " slot " << i;
}

INSTANTIATE_TEST_SUITE_P(DigitCounts, DnumSweep,
                         ::testing::Values(1, 2, 3, 6));

// ---------------------------------------------------------------------
// External-product noise across gadget settings (paper's g_k values).
// ---------------------------------------------------------------------

class ExternalProductSweep
    : public ::testing::TestWithParam<GadgetParam> {};

TEST_P(ExternalProductSweep, NoiseStaysDecodable)
{
    const auto [logBase, levels] = GetParam();
    auto params = tfhe::TfheParams::testFast();
    params.gadgetLogBase = logBase;
    params.gadgetLevels = levels;
    Rng rng(static_cast<u64>(77 + logBase));
    RingContext ring(params.ringDim);
    auto key = tfhe::RlweSecretKey::generate(&ring.table(params.q), rng);
    Gadget g(params.q, logBase, levels);

    Poly bit(key.s.table(), PolyForm::Coeff);
    bit[0] = 1;
    auto rgsw = tfhe::rgswEncrypt(bit, key, g, params.rlweSigma, rng);

    const u64 t = 8;
    Poly msg(key.s.table(), PolyForm::Coeff);
    msg[0] = tfhe::lweEncode(3, params.q, t);
    auto rlwe = tfhe::rlweEncrypt(msg, key, params.rlweSigma, rng);

    // Chain several external products; the message must survive.
    auto acc = rlwe;
    for (int i = 0; i < 4; ++i)
        acc = tfhe::externalProduct(rgsw, acc, g);
    Poly phase = tfhe::rlwePhase(acc, key);
    EXPECT_EQ(tfhe::lweDecode(phase[0], params.q, t), 3u)
        << "B=2^" << logBase << " l=" << levels;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGadgets, ExternalProductSweep,
    ::testing::Values(GadgetParam{11, 2}, GadgetParam{8, 3},
                      GadgetParam{8, 4}, GadgetParam{4, 6}),
    [](const auto &info) {
        return "B" + std::to_string(std::get<0>(info.param)) + "_l" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Prime search properties.
// ---------------------------------------------------------------------

class PrimeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrimeSweep, NttPrimesSupportNegacyclicTransforms)
{
    const int bits = GetParam();
    const u64 n = 1 << 10;
    const u64 q = findNttPrime(bits, 2 * n);
    EXPECT_TRUE(isPrime(q));
    // A full transform round trip works at every prime size.
    NttTable ntt(n, q);
    Rng rng(static_cast<u64>(bits));
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.uniform(q);
    auto b = a;
    ntt.forward(b);
    ntt.inverse(b);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Bits, PrimeSweep,
                         ::testing::Values(25, 32, 40, 48, 55, 59));

} // namespace
} // namespace ufc
