/**
 * @file
 * Chunk-boundary property tests for the streaming trace reader: the
 * chunked TraceReader must be byte-for-byte equivalent to the
 * whole-file readTrace() at *every* chunk size — same rebuilt Trace on
 * valid input, same typed TraceError (same message) on malformed input
 * — and its memory must stay bounded by the chunk size while a trace
 * far larger than that bound flows through compile + execute.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "compiler/bytecode.h"
#include "sim/accelerator.h"
#include "sim/ufc_perf.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using trace::Trace;

/// Every chunk size the satellite demands, plus "whole file" (handled
/// by feeding one chunk of text.size()).
constexpr std::size_t kChunkSizes[] = {1, 2, 3, 7, 64, 4096};

/** Stream-parse `text` feeding the reader `chunk`-byte pieces. */
Trace
readChunked(const std::string &text, std::size_t chunk)
{
    trace::TraceBuildSink sink;
    trace::TraceReader reader(&sink);
    for (std::size_t off = 0; off < text.size() && !reader.done();
         off += chunk)
        reader.feed(text.data() + off,
                    std::min(chunk, text.size() - off));
    reader.finish();
    return sink.take();
}

/** Canonical bytes of a trace (field-exact comparison proxy). */
std::string
canon(const Trace &tr)
{
    std::ostringstream os;
    trace::writeTrace(tr, os);
    return os.str();
}

/** Parse outcome: either the canonical trace bytes or the TraceError
 *  message, tagged so a success can never compare equal to a failure. */
std::string
parseOutcome(const std::string &text, std::size_t chunk)
{
    try {
        return "ok:" + canon(readChunked(text, chunk));
    } catch (const TraceError &e) {
        return "err:" + std::string(e.what());
    }
}

std::string
wholeFileOutcome(const std::string &text)
{
    std::stringstream ss(text);
    try {
        return "ok:" + canon(trace::readTrace(ss));
    } catch (const TraceError &e) {
        return "err:" + std::string(e.what());
    }
}

std::vector<Trace>
builtinTraces()
{
    const auto cp = ckks::CkksParams::c1();
    const auto tp = tfhe::TfheParams::t4();
    return {workloads::helr(cp, 2), workloads::sorting(cp, 256),
            workloads::pbsThroughput(tp, 16),
            workloads::hybridKnn(cp, tp, 64)};
}

TEST(TraceStreaming, ChunkSizeInvarianceOnBuiltins)
{
    for (const Trace &tr : builtinTraces()) {
        const std::string text = canon(tr);
        const u64 wholeHash = trace::contentHash(tr);
        for (const std::size_t chunk : kChunkSizes) {
            const Trace back = readChunked(text, chunk);
            EXPECT_EQ(canon(back), text)
                << tr.name << " at chunk " << chunk;
            EXPECT_EQ(trace::contentHash(back), wholeHash)
                << tr.name << " at chunk " << chunk;
        }
        // Whole-file in one feed, and the readTrace shim itself.
        EXPECT_EQ(canon(readChunked(text, text.size())), text) << tr.name;
        std::stringstream ss(text);
        EXPECT_EQ(canon(trace::readTrace(ss)), text) << tr.name;
    }
}

TEST(TraceStreaming, FixtureCorpusSameOutcomeAtEveryChunkSize)
{
    // Valid fixtures must rebuild identically; malformed ones must
    // throw the *same* TraceError message streamed as whole, at every
    // chunk size down to one byte.
    int seen = 0;
    for (const auto &entry : std::filesystem::recursive_directory_iterator(
             UFC_FIXTURE_DIR)) {
        if (entry.path().extension() != ".ufctrace")
            continue;
        std::ifstream is(entry.path(), std::ios::binary);
        ASSERT_TRUE(is.good()) << entry.path();
        std::ostringstream buf;
        buf << is.rdbuf();
        const std::string text = buf.str();

        const std::string whole = wholeFileOutcome(text);
        for (const std::size_t chunk : kChunkSizes)
            EXPECT_EQ(parseOutcome(text, chunk), whole)
                << entry.path() << " at chunk " << chunk;
        EXPECT_EQ(parseOutcome(text, std::max<std::size_t>(
                                         1, text.size())), whole)
            << entry.path() << " whole-file";
        ++seen;
    }
    EXPECT_GE(seen, 6); // the committed corpus must actually run
}

TEST(TraceStreaming, FuzzedCorpusSameOutcomeStreamedAsWhole)
{
    std::ostringstream os;
    trace::writeTrace(workloads::sorting(ckks::CkksParams::c1(), 256),
                      os);
    const std::string good = os.str();
    const FaultInjector faults(2026, 0.0);
    for (u64 salt = 0; salt < 48; ++salt) {
        const std::string hostile = faults.corruptTraceText(good, salt);
        const std::string whole = wholeFileOutcome(hostile);
        for (const std::size_t chunk : {std::size_t(1), std::size_t(7),
                                        std::size_t(4096)})
            EXPECT_EQ(parseOutcome(hostile, chunk), whole)
                << "salt " << salt << " chunk " << chunk;
    }
}

TEST(TraceStreaming, ReaderMemoryBoundedByChunkSize)
{
    // A trace far larger than the reader bound must flow through
    // compile + execute with the reader never buffering more than one
    // line (<= the chunk size here), and the streamed compile must be
    // observable-identical to the whole-trace path.  Builtins batch
    // their ops into few lines, so build a wide one op-per-line trace.
    Trace big;
    big.name = "streaming_big";
    workloads::setCkksParams(big, ckks::CkksParams::c1());
    big.beginPhase("bulk");
    for (int i = 0; i < 60000; ++i)
        big.push(trace::OpKind::CkksAdd, /*limbs=*/2 + i % 20,
                 /*count=*/1);
    big.endPhase();
    const std::string text = canon(big);
    constexpr std::size_t kChunk = 4096;
    ASSERT_GT(text.size(), 64 * kChunk)
        << "trace too small to exercise the memory bound";

    const sim::UfcModel model;
    sim::UfcPerf perf(sim::UfcConfig{});
    std::size_t peak = 0;
    std::istringstream is(text);
    const compiler::Program streamed = compiler::compileTraceStream(
        is, model.loweringOptions(), perf, model.name(),
        /*lint=*/nullptr, /*opCheck=*/{}, kChunk, &peak);
    EXPECT_LE(peak, kChunk);
    EXPECT_GT(peak, 0u);

    const sim::RunResult viaStream = model.execute(streamed);
    const sim::RunResult viaWhole = model.run(big);
    EXPECT_EQ(viaStream.toJson(), viaWhole.toJson());
}

TEST(TraceStreaming, ModelCompileStreamMatchesCompile)
{
    // Every model's compileStream must produce the same Program its
    // whole-trace compile() does (disassembly is a full structural
    // dump, segments and cache keys included).
    const auto cp = ckks::CkksParams::c1();
    const auto tp = tfhe::TfheParams::t4();
    struct Case
    {
        std::unique_ptr<sim::AcceleratorModel> model;
        Trace tr;
    };
    std::vector<Case> cases;
    cases.push_back({std::make_unique<sim::UfcModel>(),
                     workloads::ckksBootstrapping(cp)});
    cases.push_back({std::make_unique<sim::SharpModel>(),
                     workloads::helr(cp, 2)});
    cases.push_back({std::make_unique<sim::StrixModel>(),
                     workloads::pbsThroughput(tp, 16)});
    cases.push_back({std::make_unique<sim::UfcModel>(),
                     workloads::hybridKnn(cp, tp, 64)});
    for (const Case &c : cases) {
        const std::string text = canon(c.tr);
        std::istringstream is(text);
        std::ostringstream viaStream;
        compiler::disassemble(c.model->compileStream(is), viaStream);
        std::ostringstream viaWhole;
        compiler::disassemble(c.model->compile(c.tr), viaWhole);
        EXPECT_EQ(viaStream.str(), viaWhole.str())
            << c.model->name() << "/" << c.tr.name;
    }
}

TEST(TraceStreaming, SchemeRejectionMatchesWholeTracePath)
{
    // Single-scheme machines reject foreign ops mid-stream with the
    // byte-identical message their whole-trace run() path throws.
    const auto cp = ckks::CkksParams::c1();
    const auto tp = tfhe::TfheParams::t4();
    struct Case
    {
        std::unique_ptr<sim::AcceleratorModel> model;
        Trace tr;
    };
    std::vector<Case> cases;
    cases.push_back({std::make_unique<sim::SharpModel>(),
                     workloads::pbsThroughput(tp, 16)});
    cases.push_back({std::make_unique<sim::StrixModel>(),
                     workloads::helr(cp, 2)});
    for (const Case &c : cases) {
        std::string wholeWhat;
        try {
            c.model->compile(c.tr);
            FAIL() << c.model->name() << " accepted a foreign scheme";
        } catch (const ConfigError &e) {
            wholeWhat = e.what();
        }
        std::istringstream is(canon(c.tr));
        try {
            c.model->compileStream(is);
            FAIL() << c.model->name() << " streamed a foreign scheme";
        } catch (const ConfigError &e) {
            EXPECT_EQ(std::string(e.what()), wholeWhat)
                << c.model->name();
        }
    }
}

} // namespace
} // namespace ufc
