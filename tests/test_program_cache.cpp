/**
 * @file
 * Coverage for the batch ProgramCache gaps called out after PR 6:
 * single-use (model, trace) pairs must release their compiled Program
 * at job end instead of retaining it for the whole batch (asserted via
 * the live-Program instance counter), a concurrent shared_future get()
 * of one pair must compile exactly once, and BcLoop repeat folding at
 * trip-count edge values must execute identically to the unrolled
 * stream.
 */

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/bytecode.h"
#include "runner/runner.h"
#include "sim/accelerator.h"
#include "sim/ufc_perf.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using runner::ExperimentRunner;
using runner::Job;
using runner::ProgramCache;
using runner::RunnerConfig;
using sim::UfcModel;

TEST(ProgramCacheGaps, ConcurrentGetCompilesExactlyOnce)
{
    // Many threads race get() on one (model, trace) pair: the first
    // requester installs a shared future and compiles outside the map
    // lock, the rest must block on it — exactly one compile, one shared
    // instance.  Run under -DUFC_SANITIZE=thread to certify the
    // synchronization, not just the counters.
    const auto model = std::make_shared<UfcModel>();
    const auto tr = std::make_shared<trace::Trace>(
        workloads::ckksBootstrapping(ckks::CkksParams::c1()));

    constexpr int kThreads = 8;
    ProgramCache cache;
    std::vector<std::shared_ptr<const compiler::Program>> got(kThreads);
    {
        std::vector<std::thread> pool;
        pool.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t)
            pool.emplace_back(
                [&, t] { got[t] = cache.get(*model, *tr); });
        for (auto &th : pool)
            th.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[t], nullptr) << t;
        EXPECT_EQ(got[t].get(), got[0].get()) << t;
    }
    EXPECT_EQ(cache.compiles(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<u64>(kThreads - 1));
}

TEST(ProgramCacheGaps, CompileErrorCachedAndRethrownToAll)
{
    // A deterministic compile failure is cached too: every requester
    // gets the same typed error and the compile runs once.
    const auto model = std::make_shared<sim::SharpModel>();
    const auto tr = std::make_shared<trace::Trace>(
        workloads::pbsThroughput(tfhe::TfheParams::t4(), 16));
    ProgramCache cache;
    for (int attempt = 0; attempt < 3; ++attempt)
        EXPECT_THROW((void)cache.get(*model, *tr), ConfigError)
            << attempt;
    EXPECT_EQ(cache.compiles(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(ProgramCacheGaps, SingleUseJobsReleaseTheirPrograms)
{
    // A batch of all-distinct (model, trace) pairs gains nothing from
    // retention: each job must compile, run and free its Program before
    // the batch ends, so the allocator can recycle those pages.  With
    // retention the peak live count would grow by ~one Program per job;
    // single-use jobs must keep it flat (composed models make several
    // Program instances per compile, hence the loose bound).
    const auto cp = ckks::CkksParams::c1();
    const auto tp = tfhe::TfheParams::t4();
    std::vector<Job> jobs;
    const auto add = [&](const trace::Trace &tr) {
        Job job;
        job.label = "single/" + tr.name;
        job.model = std::make_shared<UfcModel>();
        job.trace = std::make_shared<trace::Trace>(tr);
        jobs.push_back(std::move(job));
    };
    add(workloads::helr(cp, 2));
    add(workloads::ckksBootstrapping(cp));
    add(workloads::sorting(cp, 256));
    add(workloads::pbsThroughput(tp, 16));
    add(workloads::hybridKnn(cp, tp, 64));
    add(workloads::resnet20(cp));

    const u64 liveBefore = compiler::livePrograms();
    compiler::resetPeakLivePrograms();
    RunnerConfig cfg;
    cfg.threads = 1; // deterministic peak: one job in flight at a time
    const auto batch = ExperimentRunner(cfg).runAll(jobs);
    EXPECT_TRUE(batch.allOk());

    // Nothing may survive the batch...
    EXPECT_EQ(compiler::livePrograms(), liveBefore);
    // ...and the in-flight peak must stay near one job's worth of
    // Programs, far below the sum a retaining cache would accumulate
    // (each job's compile makes >= 1 Program; retention across these 6
    // jobs would push the peak past liveBefore + 6).
    EXPECT_LE(compiler::peakLivePrograms(), liveBefore + 3);
}

TEST(ProgramCacheGaps, SharedPairsRetainUntilBatchEnd)
{
    // Counter-case: two jobs sharing one (model, trace) pair go through
    // the cache, which holds the Program for the batch; it must still
    // be freed once the batch (and its cache) is gone.
    const auto model = std::make_shared<UfcModel>();
    const auto tr = std::make_shared<trace::Trace>(
        workloads::ckksBootstrapping(ckks::CkksParams::c1()));
    std::vector<Job> jobs(2);
    jobs[0].label = "shared/a";
    jobs[0].model = model;
    jobs[0].trace = tr;
    jobs[1].label = "shared/b";
    jobs[1].model = model;
    jobs[1].trace = tr;
    jobs[1].options.prefetchWindow = 0; // distinct options, same Program

    const u64 liveBefore = compiler::livePrograms();
    RunnerConfig cfg;
    cfg.threads = 2;
    const auto batch = ExperimentRunner(cfg).runAll(jobs);
    EXPECT_TRUE(batch.allOk());
    EXPECT_EQ(compiler::livePrograms(), liveBefore);
    // Shared options must not leak across jobs: window 0 degrades
    // overlap, so the two results must differ.
    EXPECT_NE(batch.results[0].toJson(), batch.results[1].toJson());
}

// ---------------------------------------------------------------------
// BcLoop repeat folding at trip-count edge values.

/** Expand every folded loop of `p` back into a flat stream, shifting
 *  the downstream events/segments like the builder would have emitted
 *  them unrolled. */
compiler::Program
unrolled(const compiler::Program &p)
{
    compiler::Program out = p;
    out.code.clear();
    out.debug.clear();
    out.loops.clear();
    out.phaseEvents.clear();
    out.segments.clear(); // regions shift; recompute is not needed here

    std::size_t li = 0;
    std::size_t ev = 0;
    for (std::size_t i = 0; i <= p.code.size(); ++i) {
        while (ev < p.phaseEvents.size() && p.phaseEvents[ev].inst == i) {
            out.phaseEvents.push_back(
                {out.code.size(), p.phaseEvents[ev].name});
            ++ev;
        }
        if (li < p.loops.size() && p.loops[li].end == i) {
            const auto &lp = p.loops[li];
            const std::size_t bodyBegin = i - lp.bodyLen;
            for (u64 t = 1; t < lp.trips; ++t)
                for (std::size_t k = bodyBegin; k < i; ++k) {
                    out.code.push_back(p.code[k]);
                    out.debug.push_back(p.debug[k]);
                }
            ++li;
        }
        if (i < p.code.size()) {
            out.code.push_back(p.code[i]);
            out.debug.push_back(p.debug[i]);
        }
    }
    return out;
}

TEST(ProgramCacheGaps, FoldedLoopExecutesIdenticallyToUnrolled)
{
    const UfcModel model;
    const compiler::Program folded = model.compile(
        workloads::pbsThroughput(tfhe::TfheParams::t4(), 64));
    ASSERT_FALSE(folded.loops.empty());
    const compiler::Program flat = unrolled(folded);
    ASSERT_GT(flat.code.size(), folded.code.size());
    EXPECT_EQ(flat.totalInsts(), folded.totalInsts());
    EXPECT_EQ(model.execute(flat).toJson(),
              model.execute(folded).toJson());
}

TEST(ProgramCacheGaps, RepeatOfferEdgeTripCounts)
{
    // Drive ProgramBuilder's beginRepeat directly at the edge values:
    // trips < 2 must be refused (the producer then unrolls itself), and
    // an accepted fold at any trip count must execute identically to
    // the same stream emitted flat.
    const sim::UfcPerf perf{sim::UfcConfig::tableII()};
    isa::HwInst inst;
    inst.op = isa::HwOp::Ewma;
    inst.logDegree = 16;
    inst.batch = 1;
    inst.words = 1u << 16;
    inst.work = 1u << 16;
    isa::BufferRef ref;
    ref.id = 1;
    ref.bytes = u64(8) << 16;
    ref.streaming = true; // pure Stream body: foldable
    inst.buffers.push_back(ref);

    const auto build = [&](u64 trips,
                           bool &accepted) -> compiler::Program {
        compiler::Program p;
        compiler::ProgramBuilder builder(&perf, &p);
        accepted = builder.beginRepeat(trips);
        builder.issue(inst);
        if (accepted)
            builder.endRepeat();
        else // refused: the producer must emit every trip itself
            for (u64 t = 1; t < trips; ++t)
                builder.issue(inst);
        builder.finish();
        p.workload = "edge";
        p.machine = "UFC";
        return p;
    };
    const auto flat = [&](u64 trips) -> compiler::Program {
        compiler::Program p;
        compiler::ProgramBuilder builder(&perf, &p);
        for (u64 t = 0; t < trips; ++t)
            builder.issue(inst);
        builder.finish();
        p.workload = "edge";
        p.machine = "UFC";
        return p;
    };

    const UfcModel model;
    bool accepted = false;

    // trips = 0: refused; "repeat zero times" still means the producer
    // emitted the body once up front (the offer wraps the first
    // emission), so it must equal a single flat instruction.
    compiler::Program p0 = build(0, accepted);
    EXPECT_FALSE(accepted);
    EXPECT_TRUE(p0.loops.empty());
    EXPECT_EQ(p0.totalInsts(), 1u);

    // trips = 1: refused, single emission, no loop row.
    compiler::Program p1 = build(1, accepted);
    EXPECT_FALSE(accepted);
    EXPECT_TRUE(p1.loops.empty());
    EXPECT_EQ(model.execute(p1).toJson(),
              model.execute(flat(1)).toJson());

    // trips = 2 (smallest legal fold) and a large trip count near the
    // practical max: folded == unrolled, bit for bit.
    for (const u64 trips : {u64(2), u64(7), u64(100000)}) {
        compiler::Program folded = build(trips, accepted);
        EXPECT_TRUE(accepted) << trips;
        ASSERT_EQ(folded.loops.size(), 1u) << trips;
        EXPECT_EQ(folded.loops[0].trips, trips);
        EXPECT_EQ(folded.totalInsts(), trips);
        EXPECT_EQ(model.execute(folded).toJson(),
                  model.execute(flat(trips)).toJson())
            << trips;
    }
}

} // namespace
} // namespace ufc
