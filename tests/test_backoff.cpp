/**
 * @file
 * Deterministic retry-backoff schedule (common/backoff.h): the jitter
 * draw is a pure hash of (seed, key, attempt), so whole schedules can
 * be asserted bit-exactly — no sleeping, no tolerance windows.
 */

#include <gtest/gtest.h>

#include "common/backoff.h"

using namespace ufc;

TEST(Backoff, SameInputsSameDelayBitExact)
{
    BackoffPolicy p;
    p.seed = 42;
    for (int attempt = 1; attempt <= 8; ++attempt) {
        const double a = backoffDelayMs(p, "fig10a/helr/ufc", attempt);
        const double b = backoffDelayMs(p, "fig10a/helr/ufc", attempt);
        EXPECT_EQ(a, b) << "attempt " << attempt;
    }
}

TEST(Backoff, ZeroJitterIsExactCappedExponential)
{
    BackoffPolicy p;
    p.baseMs = 10.0;
    p.maxMs = 100.0;
    p.multiplier = 2.0;
    p.jitter = 0.0;
    EXPECT_EQ(10.0, backoffDelayMs(p, "k", 1));
    EXPECT_EQ(20.0, backoffDelayMs(p, "k", 2));
    EXPECT_EQ(40.0, backoffDelayMs(p, "k", 3));
    EXPECT_EQ(80.0, backoffDelayMs(p, "k", 4));
    EXPECT_EQ(100.0, backoffDelayMs(p, "k", 5)); // capped
    EXPECT_EQ(100.0, backoffDelayMs(p, "k", 50));
}

TEST(Backoff, JitteredDelayStaysInWindow)
{
    BackoffPolicy p;
    p.baseMs = 16.0;
    p.maxMs = 4096.0;
    p.jitter = 0.5;
    for (u64 seed = 0; seed < 4; ++seed) {
        p.seed = seed;
        double exact = p.baseMs;
        for (int attempt = 1; attempt <= 10; ++attempt) {
            const double d = backoffDelayMs(p, "job", attempt);
            const double hi = std::min(exact, p.maxMs);
            EXPECT_LE(d, hi);
            EXPECT_GE(d, hi * (1.0 - p.jitter));
            exact *= p.multiplier;
        }
    }
}

TEST(Backoff, KeysDecorrelateTheSchedule)
{
    BackoffPolicy p;
    p.seed = 7;
    // With 50% jitter it is overwhelmingly likely that two distinct
    // keys disagree somewhere in an 8-attempt schedule; assert that
    // deterministically observed difference (stable forever, since the
    // hash is pinned).
    bool differs = false;
    for (int attempt = 1; attempt <= 8; ++attempt)
        if (backoffDelayMs(p, "job-a", attempt) !=
            backoffDelayMs(p, "job-b", attempt))
            differs = true;
    EXPECT_TRUE(differs);
}

TEST(Backoff, SeedsDecorrelateTheSchedule)
{
    BackoffPolicy a;
    a.seed = 1;
    BackoffPolicy b = a;
    b.seed = 2;
    bool differs = false;
    for (int attempt = 1; attempt <= 8; ++attempt)
        if (backoffDelayMs(a, "job", attempt) !=
            backoffDelayMs(b, "job", attempt))
            differs = true;
    EXPECT_TRUE(differs);
}

TEST(Backoff, NonPositiveBaseDisables)
{
    BackoffPolicy p;
    p.baseMs = 0.0;
    EXPECT_EQ(0.0, backoffDelayMs(p, "k", 1));
    p.baseMs = -5.0;
    EXPECT_EQ(0.0, backoffDelayMs(p, "k", 3));
}

TEST(Backoff, NonPositiveAttemptIsZero)
{
    BackoffPolicy p;
    EXPECT_EQ(0.0, backoffDelayMs(p, "k", 0));
    EXPECT_EQ(0.0, backoffDelayMs(p, "k", -1));
}
