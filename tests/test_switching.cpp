/**
 * @file
 * Integration tests for scheme switching: CKKS -> LWE extraction, LWE
 * key/dimension/modulus switching, TFHE processing of extracted values,
 * and EvalTrace ring packing.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "math/primes.h"
#include "switching/repack.h"
#include "switching/scheme_switch.h"
#include "tfhe/bootstrap.h"

namespace ufc {
namespace switching {
namespace {

struct SwitchFixture : public ::testing::Test
{
    SwitchFixture()
        : ckksCtx(ckks::CkksParams::testFast()), encoder(&ckksCtx),
          rng(2024), keygen(&ckksCtx, rng),
          encryptor(&ckksCtx, &keygen.secretKey(), rng), eval(&ckksCtx)
    {}

    ckks::CkksContext ckksCtx;
    ckks::CkksEncoder encoder;
    Rng rng;
    ckks::CkksKeyGenerator keygen;
    ckks::CkksEncryptor encryptor;
    ckks::CkksEvaluator eval;
};

TEST_F(SwitchFixture, ExtractionRecoversCoefficients)
{
    // Encode integers in the coefficient domain at scale q0/t.
    const u64 t = 16;
    const double scale =
        static_cast<double>(ckksCtx.qAt(0)) / static_cast<double>(t);
    std::vector<double> coeffs(32);
    for (size_t i = 0; i < coeffs.size(); ++i)
        coeffs[i] = static_cast<double>(i % 7);

    auto pt = encoder.encodeCoefficients(coeffs, 1, scale);
    auto ct = encryptor.encrypt(pt);

    const auto lweKey = ckksKeyAsLwe(ckksCtx, keygen.secretKey());
    for (u64 idx : {u64{0}, u64{3}, u64{31}}) {
        const auto lwe = extractFromCkks(ckksCtx, ct, idx);
        EXPECT_EQ(tfhe::lweDecrypt(lwe, lweKey, t),
                  static_cast<u64>(coeffs[idx]));
    }
}

TEST_F(SwitchFixture, LweSwitchKeyChangesKeyAndDimension)
{
    const u64 q = findNttPrime(32, 1 << 12);
    Rng r(5);
    tfhe::LweSecretKey big = tfhe::LweSecretKey::generate(1024, r);
    tfhe::LweSecretKey small = tfhe::LweSecretKey::generate(256, r);
    LweSwitchKey ks(big, small, q, 4, 6, 3.2, r);

    const u64 t = 16;
    for (u64 m = 0; m < 8; ++m) {
        // Encrypt under the big key directly.
        tfhe::LweCiphertext ct;
        ct.q = q;
        ct.a.resize(1024);
        u64 acc = tfhe::lweEncode(m, q, t);
        for (u32 i = 0; i < 1024; ++i) {
            ct.a[i] = r.uniform(q);
            if (big.s[i])
                acc = addMod(acc, ct.a[i], q);
        }
        ct.b = addMod(acc, r.gaussianMod(3.2, q), q);

        const auto out = ks.apply(ct);
        EXPECT_EQ(out.dim(), 256u);
        EXPECT_EQ(tfhe::lweDecrypt(out, small, t), m);
    }
}

TEST_F(SwitchFixture, CkksToTfheBridgeEndToEnd)
{
    // CKKS-encrypted small integers, converted to TFHE LWEs and decrypted
    // under the TFHE key.
    auto tfheParams = tfhe::TfheParams::testFast();
    Rng r(7);
    auto tfheKey = tfhe::LweSecretKey::generate(tfheParams.lweDim, r);
    CkksToTfheBridge bridge(ckksCtx, keygen.secretKey(), tfheKey,
                            tfheParams, r);

    const u64 t = 16;
    const double scale =
        static_cast<double>(ckksCtx.qAt(0)) / static_cast<double>(t);
    std::vector<double> coeffs = {1, 5, 2, 7, 0, 3};
    auto ct = encryptor.encrypt(encoder.encodeCoefficients(coeffs, 1,
                                                           scale));

    for (size_t i = 0; i < coeffs.size(); ++i) {
        const auto lwe = bridge.convert(ct, i);
        EXPECT_EQ(lwe.dim(), tfheParams.lweDim);
        EXPECT_EQ(tfhe::lweDecrypt(lwe, tfheKey, t),
                  static_cast<u64>(coeffs[i])) << "coeff " << i;
    }
}

TEST_F(SwitchFixture, ExtractedValuesSurviveTfheBootstrap)
{
    // Full hybrid path: CKKS -> extract -> TFHE programmable bootstrap.
    auto tfheParams = tfhe::TfheParams::testFast();
    Rng r(11);
    auto tfheKey = tfhe::LweSecretKey::generate(tfheParams.lweDim, r);
    RingContext ring(tfheParams.ringDim);
    auto ringKey = tfhe::RlweSecretKey::generate(
        &ring.table(tfheParams.q), r);
    tfhe::BootstrapContext bc(tfheParams, tfheKey, ringKey, r);
    CkksToTfheBridge bridge(ckksCtx, keygen.secretKey(), tfheKey,
                            tfheParams, r);

    const u64 t = 8;
    const double scale =
        static_cast<double>(ckksCtx.qAt(0)) / static_cast<double>(t);
    std::vector<double> coeffs = {0, 1, 2, 3};
    auto ct = encryptor.encrypt(encoder.encodeCoefficients(coeffs, 1,
                                                           scale));

    // LUT computes f(m) = (m * 2 + 1) mod 4 on the padded half-domain.
    std::vector<u64> lut(t);
    for (u64 m = 0; m < t; ++m)
        lut[m] = (2 * m + 1) % 4;

    for (size_t i = 0; i < coeffs.size(); ++i) {
        const auto lwe = bridge.convert(ct, i);
        const auto out = bc.programmableBootstrap(lwe, lut, t);
        EXPECT_EQ(tfhe::lweDecrypt(out, tfheKey, t),
                  lut[static_cast<u64>(coeffs[i])]) << "coeff " << i;
    }
}

TEST(RingPacker, PacksLwesIntoRlweCoefficients)
{
    // Small ring, odd plaintext modulus (trace factor N mod t != 0).
    const u64 n = 64;
    const u64 t = 17;
    const u64 q = findNttPrime(32, 8192); // supports rings up to 2^12
    Rng rng(13);
    RingContext ring(n);
    auto ringKey = tfhe::RlweSecretKey::generate(&ring.table(q), rng);
    Gadget gadget(q, 8, 3);
    RingPacker packer(ringKey, gadget, 3.2, rng);

    const auto lweKey = packer.inputLweKey();
    tfhe::TfheParams encParams;
    encParams.q = q;
    encParams.lweSigma = 3.2;

    std::vector<tfhe::LweCiphertext> lwes;
    std::vector<u64> messages = {3, 0, 16, 7, 1, 12};
    for (u64 m : messages) {
        lwes.push_back(tfhe::lweEncrypt(tfhe::lweEncode(m, q, t), lweKey,
                                        encParams, rng));
    }

    const auto packed = packer.pack(lwes);
    const Poly phase = tfhe::rlwePhase(packed, ringKey);

    const u64 factor = packer.traceFactor(t);
    ASSERT_NE(factor % t, 0u);
    const u64 factorInv = invMod(factor, t);
    for (size_t i = 0; i < messages.size(); ++i) {
        const u64 raw = tfhe::lweDecode(phase[i], q, t);
        EXPECT_EQ(mulMod(raw, factorInv, t), messages[i]) << "slot " << i;
    }
    // Coefficients beyond the packed range decode to zero.
    for (size_t i = messages.size(); i < 10; ++i)
        EXPECT_EQ(tfhe::lweDecode(phase[i], q, t), 0u);
}

TEST(RingPacker, TraceZeroesGarbageCoefficients)
{
    // Packing a single LWE must produce an RLWE whose non-constant phase
    // coefficients are (noise-level) zero.
    const u64 n = 32;
    const u64 t = 5;
    const u64 q = findNttPrime(32, 4096);
    Rng rng(17);
    RingContext ring(n);
    auto ringKey = tfhe::RlweSecretKey::generate(&ring.table(q), rng);
    Gadget gadget(q, 8, 3);
    RingPacker packer(ringKey, gadget, 3.2, rng);

    tfhe::TfheParams encParams;
    encParams.q = q;
    encParams.lweSigma = 3.2;
    auto lwe = tfhe::lweEncrypt(tfhe::lweEncode(2, q, t),
                                packer.inputLweKey(), encParams, rng);

    const auto packed = packer.pack({lwe});
    const Poly phase = tfhe::rlwePhase(packed, ringKey);
    for (u64 i = 1; i < n; ++i) {
        const u64 mag = std::min(phase[i], q - phase[i]);
        EXPECT_LT(mag, q / (4 * t)) << "coefficient " << i;
    }
}

} // namespace
} // namespace switching
} // namespace ufc
