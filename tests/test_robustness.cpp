/**
 * @file
 * Fault-tolerance tests: the typed error hierarchy, per-job isolation
 * and retry in the experiment runner, the maxCycles watchdog, the
 * hardened trace parser (malformed-input corpus, inline and on-disk),
 * deterministic fault injection, and the batch report's failures block.
 *
 * The acceptance test for the PR lives here: a sweep containing one
 * corrupt trace, one invalid RunOptions, and one watchdog-tripping job
 * completes all remaining jobs bit-identically to a clean run, reports
 * the three failures in structured output, and makes the batch non-ok.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using runner::BatchResult;
using runner::ExperimentRunner;
using runner::Job;
using runner::JobStatus;
using runner::RunnerConfig;
using trace::OpKind;
using trace::Trace;

/** Small CKKS trace that lowers and simulates in microseconds. */
Trace
smallTrace(const std::string &name, int limbs, int muls)
{
    Trace tr;
    tr.name = name;
    workloads::setCkksParams(tr, ckks::CkksParams::c1());
    tr.beginPhase("body");
    for (int i = 0; i < muls; ++i)
        tr.push(OpKind::CkksMult, limbs, /*count=*/1, /*fanIn=*/2,
                /*keyId=*/1);
    tr.push(OpKind::CkksAdd, limbs, /*count=*/2, /*fanIn=*/2,
            /*keyId=*/0);
    tr.endPhase();
    return tr;
}

std::string
serialized(const Trace &tr)
{
    std::stringstream ss;
    trace::writeTrace(tr, ss);
    return ss.str();
}

std::string
writeTempFile(const std::string &name, const std::string &text)
{
    // Per-process name: ctest runs this binary concurrently.
    const std::string path =
        testing::TempDir() + std::to_string(::getpid()) + "_" + name;
    std::ofstream os(path);
    os << text;
    EXPECT_TRUE(os.good()) << path;
    return path;
}

/** Expect readTrace(text) to throw TraceError whose message contains
 *  `needle`. */
void
expectTraceError(const std::string &text, const std::string &needle)
{
    std::stringstream ss(text);
    try {
        trace::readTrace(ss);
        FAIL() << "expected TraceError containing '" << needle
               << "' for input:\n" << text;
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), "TraceError");
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

/** The simulated (host-independent) fields two runs must share bit-for-
 *  bit. */
void
expectIdenticalSimulated(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
    EXPECT_EQ(a.stats.instCount, b.stats.instCount);
    EXPECT_EQ(a.stats.hbmBytes, b.stats.hbmBytes);
}

// ---------------------------------------------------------------------------
// Typed error hierarchy.

TEST(Robustness, ErrorHierarchyAndKinds)
{
    EXPECT_EQ(TraceError("x").kind(), "TraceError");
    EXPECT_EQ(ConfigError("x").kind(), "ConfigError");
    EXPECT_EQ(SimError("x").kind(), "SimError");
    // TimeoutError is a SimError (the watchdog satellite requires the
    // watchdog to surface as SimError) distinguished by catch type.
    EXPECT_EQ(TimeoutError("x").kind(), "SimError");

    // Every typed error is catchable as ufc::Error and std::exception.
    try {
        UFC_THROW(TraceError, "value " << 42);
        FAIL();
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), "TraceError");
        EXPECT_NE(std::string(e.what()).find("value 42"),
                  std::string::npos);
    }
    EXPECT_THROW(UFC_EXPECT(false, ConfigError, "nope"), ConfigError);
    EXPECT_NO_THROW(UFC_EXPECT(true, ConfigError, "nope"));
}

TEST(Robustness, InvalidRunOptionsThrowConfigError)
{
    sim::RunOptions bad;
    bad.prefetchWindow = -5;
    EXPECT_THROW(sim::validateRunOptions(bad), ConfigError);
    sim::UfcModel m;
    const auto tr = smallTrace("badopts", 4, 1);
    EXPECT_THROW(m.run(tr, bad), ConfigError);
}

// ---------------------------------------------------------------------------
// maxCycles watchdog (satellite c): serial and parallel.

TEST(Robustness, MaxCyclesWatchdogTripsSerially)
{
    sim::UfcModel m;
    const auto tr = smallTrace("watchdog", 16, 8);
    sim::RunOptions opts;
    opts.maxCycles = 10; // any real lowering exceeds 10 cycles
    EXPECT_THROW(m.run(tr, opts), SimError);
    try {
        m.run(tr, opts);
        FAIL();
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("maxCycles watchdog"),
                  std::string::npos)
            << e.what();
    }
    // Unlimited (default) still completes.
    EXPECT_NO_THROW(m.run(tr));
}

TEST(Robustness, MaxCyclesWatchdogTripsInParallelBatch)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto good = std::make_shared<const Trace>(smallTrace("g", 4, 2));
    const auto hung = std::make_shared<const Trace>(smallTrace("h", 16, 8));

    std::vector<Job> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back(Job{"ok" + std::to_string(i), model, good, {}, ""});
    Job watchdog{"watchdog", model, hung, {}, ""};
    watchdog.options.maxCycles = 10;
    jobs.push_back(watchdog);

    RunnerConfig cfg;
    cfg.threads = 2;
    cfg.maxRetries = 3; // must NOT be applied to timeouts
    const auto batch = ExperimentRunner(cfg).runAll(jobs);

    ASSERT_EQ(batch.outcomes.size(), 4u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(batch.outcomes[i].ok()) << batch.outcomes[i].message;
    const auto &oc = batch.outcomes[3];
    EXPECT_EQ(oc.status, JobStatus::TimedOut);
    EXPECT_EQ(oc.errorKind, "SimError");
    EXPECT_EQ(oc.attempts, 1); // timeouts are never retried
    EXPECT_EQ(batch.failureCount(), 1u);
    EXPECT_THROW(batch.throwFirstFailure(), TimeoutError);
}

// ---------------------------------------------------------------------------
// Runner isolation, job validation, retry.

TEST(Robustness, JobMustSetExactlyOneTraceSource)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto tr = std::make_shared<const Trace>(smallTrace("t", 4, 1));

    Job neither{"neither", model, nullptr, {}, ""};
    Job both{"both", model, tr, {}, "/tmp/also-a-file"};
    const auto batch = ExperimentRunner().runAll({neither, both});
    for (const auto &oc : batch.outcomes) {
        EXPECT_EQ(oc.status, JobStatus::Failed);
        EXPECT_EQ(oc.errorKind, "ConfigError");
        EXPECT_NE(oc.message.find("exactly one"), std::string::npos)
            << oc.message;
    }
}

TEST(Robustness, InjectedFaultsRetryDeterministically)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto tr = std::make_shared<const Trace>(smallTrace("t", 4, 1));
    std::vector<Job> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(
            Job{"retry/" + std::to_string(i), model, tr, {}, ""});

    int retriedOk = 0;
    for (u64 seed = 1; seed <= 5; ++seed) {
        const FaultInjector faults(seed, /*jobFailProb=*/0.5);
        RunnerConfig cfg;
        cfg.threads = 2;
        cfg.maxRetries = 8;
        cfg.faults = &faults;
        const ExperimentRunner exec(cfg);
        const auto batch = exec.runAll(jobs);

        for (const auto &oc : batch.outcomes) {
            if (oc.status == JobStatus::RetriedOk) {
                ++retriedOk;
                // The retry diagnostic keeps the last failure.
                EXPECT_EQ(oc.errorKind, "SimError");
                EXPECT_GT(oc.attempts, 1);
            } else if (!oc.ok()) {
                // Only possible by exhausting every attempt on the
                // injected fault.
                EXPECT_EQ(oc.errorKind, "SimError");
                EXPECT_EQ(oc.attempts, 9);
            }
        }

        // Determinism: same seed, same config => same outcome statuses,
        // regardless of thread count.
        RunnerConfig serialCfg = cfg;
        serialCfg.threads = 1;
        const auto again = ExperimentRunner(serialCfg).runAll(jobs);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(batch.outcomes[i].status, again.outcomes[i].status);
            EXPECT_EQ(batch.outcomes[i].attempts,
                      again.outcomes[i].attempts);
        }
    }
    EXPECT_GE(retriedOk, 1) << "fault injection never exercised a retry";
}

// ---------------------------------------------------------------------------
// The PR acceptance test: faulty sweep == clean sweep + 3 contained
// failures, serial and parallel.

TEST(Robustness, FaultySweepMatchesCleanSweepAndReportsFailures)
{
    const auto model = std::make_shared<sim::UfcModel>();
    std::vector<Job> clean;
    for (int i = 0; i < 4; ++i) {
        const auto tr = std::make_shared<const Trace>(
            smallTrace("w" + std::to_string(i), 4 + i, 1 + i));
        clean.push_back(
            Job{"clean/" + std::to_string(i), model, tr, {}, ""});
    }

    // Reference: the clean batch, serial.
    RunnerConfig serialCfg;
    serialCfg.threads = 1;
    const auto reference = ExperimentRunner(serialCfg).runAll(clean);
    ASSERT_TRUE(reference.allOk());

    // The faulty batch: clean jobs plus three poisoned ones.
    std::vector<Job> faulty = clean;

    const std::string corruptPath = writeTempFile(
        "ufc_corrupt.ufctrace",
        "xfctrace 3\n" + serialized(smallTrace("c", 4, 1)).substr(11));
    Job corrupt{"bad/corrupt-trace", model, nullptr, {}, corruptPath};
    faulty.push_back(corrupt);

    Job badOpts{"bad/run-options", model,
                std::make_shared<const Trace>(smallTrace("b", 4, 1)),
                {}, ""};
    badOpts.options.prefetchWindow = -5;
    faulty.push_back(badOpts);

    Job watchdog{"bad/watchdog", model,
                 std::make_shared<const Trace>(smallTrace("wd", 16, 8)),
                 {}, ""};
    watchdog.options.maxCycles = 10;
    faulty.push_back(watchdog);

    for (const int threads : {1, 4}) {
        RunnerConfig cfg;
        cfg.threads = threads;
        const auto batch = ExperimentRunner(cfg).runAll(faulty);

        // The batch completed: every slot has an outcome.
        ASSERT_EQ(batch.outcomes.size(), faulty.size());
        EXPECT_FALSE(batch.allOk());
        EXPECT_EQ(batch.failureCount(), 3u);

        // Every clean job succeeded, bit-identically to the clean run.
        for (std::size_t i = 0; i < clean.size(); ++i) {
            ASSERT_TRUE(batch.outcomes[i].ok())
                << batch.outcomes[i].message;
            expectIdenticalSimulated(batch.results[i],
                                     reference.results[i]);
        }

        // The three failures carry the expected typed kinds.
        const auto &corruptOc = batch.outcomes[clean.size()];
        EXPECT_EQ(corruptOc.status, JobStatus::Failed);
        EXPECT_EQ(corruptOc.errorKind, "TraceError");

        const auto &optsOc = batch.outcomes[clean.size() + 1];
        EXPECT_EQ(optsOc.status, JobStatus::Failed);
        EXPECT_EQ(optsOc.errorKind, "ConfigError");

        const auto &wdOc = batch.outcomes[clean.size() + 2];
        EXPECT_EQ(wdOc.status, JobStatus::TimedOut);
        EXPECT_EQ(wdOc.errorKind, "SimError");

        // Structured report: schema v2 with a 3-entry failures block.
        std::ostringstream json;
        runner::writeJsonReport(batch, json);
        const std::string doc = json.str();
        EXPECT_NE(doc.find("\"schema\":\"ufc.report/v2\""),
                  std::string::npos);
        EXPECT_NE(doc.find("\"failure_count\":3"), std::string::npos);
        EXPECT_NE(doc.find("\"label\":\"bad/corrupt-trace\""),
                  std::string::npos);
        EXPECT_NE(doc.find("\"error_kind\":\"TraceError\""),
                  std::string::npos);
        EXPECT_NE(doc.find("\"status\":\"timed_out\""),
                  std::string::npos);

        std::ostringstream csv;
        runner::writeCsvReport(batch, csv);
        EXPECT_NE(csv.str().find(",status,attempts,error_kind,error"),
                  std::string::npos);
        EXPECT_NE(csv.str().find("timed_out"), std::string::npos);

        // A fail-fast caller still gets a typed error (=> nonzero exit).
        EXPECT_THROW(batch.throwFirstFailure(), Error);
    }
}

// ---------------------------------------------------------------------------
// Batch report / result-set edge cases.

TEST(Robustness, ReportRefusesUnwritablePath)
{
    const std::vector<sim::RunResult> none;
    EXPECT_THROW(
        runner::saveJsonReport(none, "/nonexistent-dir/out.json"),
        ConfigError);
    EXPECT_THROW(runner::saveCsvReport(none, "/nonexistent-dir/out.csv"),
                 ConfigError);
}

TEST(Robustness, ResultSetRejectsDuplicateAndMissingLabels)
{
    sim::RunResult a;
    a.label = "same";
    EXPECT_THROW(runner::ResultSet({a, a}), ConfigError);
    const runner::ResultSet rs({a});
    EXPECT_THROW(rs.at("absent"), ConfigError);
}

TEST(Robustness, EmptyBatchReportIsWellFormed)
{
    const BatchResult empty;
    std::ostringstream json;
    runner::writeJsonReport(empty, json);
    EXPECT_NE(json.str().find("\"failure_count\":0"), std::string::npos);
    EXPECT_NE(json.str().find("\"failures\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Malformed-trace corpus (satellite d), inline for v2 and v3.

std::string
header(int version, const std::string &name = "x")
{
    return "ufctrace " + std::to_string(version) + "\ntrace " + name +
           "\nckks 65536 44 1 3 54\ntfhe 1024 630 2 8 32\nlive 16\n";
}

TEST(TraceCorpus, TruncatedInput)
{
    for (const int v : {2, 3}) {
        expectTraceError(header(v), "missing 'end' marker");
        expectTraceError("ufctrace " + std::to_string(v),
                         "missing 'end' marker");
        // Mid-line truncation of a header field.
        expectTraceError("ufctrace " + std::to_string(v) +
                             "\ntrace x\nckks 65536 44\nend\n",
                         "malformed ckks header line");
    }
    expectTraceError("", "missing 'end' marker");
}

TEST(TraceCorpus, BadMagic)
{
    expectTraceError("xfctrace 3\ntrace x\nend\n", "missing 'ufctrace'");
    expectTraceError("trace legacy\nend\n", "missing 'ufctrace'");
}

TEST(TraceCorpus, WrongVersion)
{
    expectTraceError("ufctrace 1\ntrace x\nend\n",
                     "unsupported trace format version 1");
    expectTraceError("ufctrace 99\ntrace x\nend\n",
                     "unsupported trace format version 99");
    expectTraceError("ufctrace banana\ntrace x\nend\n",
                     "unsupported trace format version");
}

TEST(TraceCorpus, OutOfRangeOpcodeAndFields)
{
    for (const int v : {2, 3}) {
        expectTraceError(header(v) + "op bogus.op 1 1 0 0\nend\n",
                         "unknown trace op");
        expectTraceError(header(v) + "op ckks.add -1 1 0 0\nend\n",
                         "op field out of range");
        expectTraceError(header(v) + "op ckks.add 1 0 0 0\nend\n",
                         "op field out of range");
        expectTraceError(header(v) + "op ckks.add 9999999 1 0 0\nend\n",
                         "op field out of range");
        expectTraceError(header(v) + "op ckks.add 1 1 0\nend\n",
                         "malformed op line");
    }
    expectTraceError(
        "ufctrace 2\ntrace x\nckks 999999999999 44 1 3 54\nend\n",
        "ckks parameter out of range");
    expectTraceError("ufctrace 2\ntrace x\nckks 65536 44 1 3 999\nend\n",
                     "ckks parameter out of range");
}

TEST(TraceCorpus, DuplicateHeaderLines)
{
    expectTraceError("ufctrace 2\ntrace x\ntrace y\nend\n",
                     "duplicate 'trace' header");
    expectTraceError("ufctrace 2\ntrace x\nckks 1024 4 1 3 54\n"
                     "ckks 1024 4 1 3 54\nend\n",
                     "duplicate 'ckks' header");
    expectTraceError("ufctrace 2\ntrace x\nlive 4\nlive 4\nend\n",
                     "duplicate 'live' header");
}

TEST(TraceCorpus, PhaseMarkerCorruption)
{
    // Phase lines are a v3 feature.
    expectTraceError(header(2) + "phase begin 0 boot\nphase end 0\nend\n",
                     "phase markers require trace format v3");
    // Duplicate begin marker.
    expectTraceError(header(3) + "op ckks.add 1 1 0 0\n"
                                 "phase begin 0 boot\n"
                                 "phase begin 0 boot\nphase end 1\n"
                                 "phase end 1\nend\n",
                     "duplicate phase marker");
    // Unbalanced regions, both directions.
    expectTraceError(header(3) + "phase begin 0 boot\nend\n",
                     "unclosed phase region");
    expectTraceError(header(3) + "phase end 0\nend\n",
                     "without an open region");
    // Markers must be non-decreasing in opIndex.
    expectTraceError(header(3) + "op ckks.add 1 1 0 0\n"
                                 "phase begin 1 a\nphase end 1\n"
                                 "phase begin 0 b\nphase end 0\nend\n",
                     "out of order");
    // Marker index past the end of the op stream.
    expectTraceError(header(3) + "phase begin 5 late\nphase end 5\nend\n",
                     "past the end of the op stream");
}

TEST(TraceCorpus, GarbageTagRejected)
{
    expectTraceError(header(2) + "zzz 3 1 4 1 5\nend\n",
                     "unknown trace line tag");
}

TEST(TraceCorpus, ValidV2AndV3StillLoad)
{
    // v2: no phase lines.
    std::stringstream v2(header(2) + "op ckks.mult 8 1 2 1\nend\n");
    const Trace t2 = trace::readTrace(v2);
    EXPECT_EQ(t2.ops.size(), 1u);
    EXPECT_TRUE(t2.phases.empty());

    // v3: interleaved phase lines, including the legal
    // identical-consecutive-end shape emitted by nested regions.
    std::stringstream v3(header(3) +
                         "phase begin 0 outer\nphase begin 0 inner\n"
                         "op ckks.mult 8 1 2 1\nop ckks.add 8 1 2 0\n"
                         "phase end 2\nphase end 2\nend\n");
    const Trace t3 = trace::readTrace(v3);
    EXPECT_EQ(t3.ops.size(), 2u);
    EXPECT_EQ(t3.phases.size(), 4u);

    // Round trip of a generator-built trace (writer emits the current
    // version).
    std::stringstream rt(serialized(smallTrace("rt", 4, 2)));
    EXPECT_NO_THROW(trace::readTrace(rt));
}

// Fixture corpus on disk (satellite d + CLI tests share these files).
TEST(TraceCorpus, FixtureFiles)
{
    const std::string dir = UFC_FIXTURE_DIR;
    EXPECT_NO_THROW(trace::loadTrace(dir + "/valid_small.ufctrace"));
    for (const char *f :
         {"truncated_header", "bad_magic", "bad_version", "bad_opcode",
          "dup_phase"}) {
        EXPECT_THROW(
            trace::loadTrace(dir + "/" + std::string(f) + ".ufctrace"),
            TraceError)
            << f;
    }
    EXPECT_THROW(trace::loadTrace(dir + "/does_not_exist.ufctrace"),
                 TraceError);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.

TEST(FaultInjector, DecisionsAreDeterministicAndSeedDependent)
{
    const FaultInjector a(7, 0.5);
    const FaultInjector b(7, 0.5);
    const FaultInjector c(8, 0.5);
    int aFails = 0, diffs = 0;
    for (int i = 0; i < 64; ++i) {
        const std::string label = "job/" + std::to_string(i);
        for (int attempt = 1; attempt <= 3; ++attempt) {
            const bool fa = a.shouldFailJob(label, attempt);
            EXPECT_EQ(fa, b.shouldFailJob(label, attempt));
            aFails += fa;
            diffs += fa != c.shouldFailJob(label, attempt);
        }
    }
    // p=0.5 over 192 draws: both some failures and some seed-dependent
    // divergence are certain for any sane hash.
    EXPECT_GT(aFails, 0);
    EXPECT_LT(aFails, 192);
    EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, ProbabilityEdges)
{
    const FaultInjector never(1, 0.0);
    const FaultInjector always(1, 1.0);
    for (int i = 0; i < 16; ++i) {
        const std::string label = std::to_string(i);
        EXPECT_FALSE(never.shouldFailJob(label, 1));
        EXPECT_TRUE(always.shouldFailJob(label, 1));
    }
    EXPECT_NO_THROW(never.maybeFailJob("x", 1));
    EXPECT_THROW(always.maybeFailJob("x", 1), SimError);
}

TEST(FaultInjector, CorruptedTracesParseOrThrowNeverAbort)
{
    const std::string good = serialized(smallTrace("fuzz", 6, 3));
    const FaultInjector faults(2026, 0.0);
    int rejected = 0;
    for (u64 salt = 0; salt < 96; ++salt) {
        const std::string hostile = faults.corruptTraceText(good, salt);
        // Determinism: the same (seed, salt) yields the same bytes.
        EXPECT_EQ(hostile, faults.corruptTraceText(good, salt));
        std::stringstream ss(hostile);
        try {
            trace::readTrace(ss); // some corruptions stay parseable
        } catch (const TraceError &) {
            ++rejected; // the only acceptable failure mode
        }
    }
    // The corpus must actually bite: most corruption modes invalidate
    // the file.
    EXPECT_GT(rejected, 32);
}

} // namespace
} // namespace ufc
