/**
 * @file
 * Metrics-layer tests: the process-wide registry (counters, gauges,
 * log2 histograms), the Prometheus / ufc.metrics-v1 expositions, the
 * flight recorder's wrap-around ordering, the ProgramCache eviction
 * bound, prof::writeJson, and the guarantee that turning metrics on
 * changes no simulated result.
 *
 * Run as `ctest -L metrics` (the `metrics_suite` aggregate target); the
 * CI metrics-differential job additionally runs it under TSan, which is
 * what the concurrent snapshot/record tests are for.
 */

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/prof.h"
#include "metrics/flight_recorder.h"
#include "metrics/metrics.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "sim/accelerator.h"
#include "trace/trace.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using metrics::Counter;
using metrics::EventKind;
using metrics::FlightRecorder;
using metrics::Gauge;
using metrics::Histogram;
using sim::RunOptions;
using sim::RunResult;

constexpr u64 kU64Max = ~u64{0};

/** A small hybrid trace exercising both schemes (same as the
 *  observability tests). */
trace::Trace
smallHybridTrace()
{
    return workloads::hybridKnn(ckks::CkksParams::c2(),
                                tfhe::TfheParams::t1(), 256, 16, 4);
}

/**
 * Every test in this file runs with metrics ON and a zeroed registry,
 * and leaves the process with metrics OFF and a zeroed registry so the
 * surrounding tests (which assume the default-off state) are
 * undisturbed.  The registry is process-global, so assertions on
 * metrics that instrumented layers also touch must be delta-based;
 * metrics with test-unique `ufc_test_*` names can assert absolutes.
 */
class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        metrics::setEnabled(true);
        metrics::resetForTest();
    }

    void
    TearDown() override
    {
        metrics::resetForTest();
        metrics::setEnabled(false);
    }
};

// ---------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------

TEST_F(MetricsTest, HistogramBucketMath)
{
    // Bucket 0 is exactly the value 0; bucket i >= 1 covers
    // [2^(i-1), 2^i - 1]; bucket 64 ends at the maximum u64.
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    for (int i = 2; i < 64; ++i) {
        const u64 lo = u64{1} << (i - 1);
        EXPECT_EQ(Histogram::bucketOf(lo), i) << "lower edge of " << i;
        EXPECT_EQ(Histogram::bucketOf(2 * lo - 1), i)
            << "upper edge of " << i;
    }
    EXPECT_EQ(Histogram::bucketOf(kU64Max), 64);

    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
    EXPECT_EQ(Histogram::bucketUpperBound(64), kU64Max);

    // bucketOf and bucketUpperBound agree: every upper bound lands in
    // its own bucket, and the next value lands in the next.
    for (int i = 0; i < 64; ++i) {
        const u64 ub = Histogram::bucketUpperBound(i);
        EXPECT_EQ(Histogram::bucketOf(ub), i);
        EXPECT_EQ(Histogram::bucketOf(ub + 1), i + 1);
    }
}

TEST_F(MetricsTest, HistogramRecordsEdgeValues)
{
    Histogram h("ufc_test_edges", "");
    h.record(0);
    h.record(1);
    h.record(kU64Max);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(64), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST_F(MetricsTest, HistogramSumWrapsModulo64)
{
    Histogram h("ufc_test_wrap", "");
    h.record(kU64Max);
    h.record(2);
    // Documented modular behaviour, not an error: max + 2 == 1 mod 2^64.
    EXPECT_EQ(h.sum(), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST_F(MetricsTest, HistogramPercentilesAreBucketUpperBounds)
{
    Histogram h("ufc_test_pct", "");
    EXPECT_EQ(h.percentile(0.5), 0u); // empty

    // 90 fast samples (value 1) and 10 slow ones (value 1000,
    // bucket 10, upper bound 1023).
    for (int i = 0; i < 90; ++i)
        h.record(1);
    for (int i = 0; i < 10; ++i)
        h.record(1000);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.50), 1u);
    EXPECT_EQ(h.percentile(0.90), 1u);    // rank 90 is the last fast one
    EXPECT_EQ(h.percentile(0.95), 1023u); // conservative upper bound
    EXPECT_EQ(h.percentile(0.99), 1023u);
    EXPECT_EQ(h.percentile(1.0), 1023u);
    // Out-of-range quantiles clamp instead of misbehaving.
    EXPECT_EQ(h.percentile(-0.5), 1u);
    EXPECT_EQ(h.percentile(2.0), 1023u);

    h.zero();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

// ---------------------------------------------------------------------
// Counter / gauge semantics and the enabled() gate
// ---------------------------------------------------------------------

TEST_F(MetricsTest, CounterAndGaugeBasics)
{
    Counter c("ufc_test_ctr", "");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    Gauge g("ufc_test_gauge", "");
    g.set(5);
    EXPECT_EQ(g.value(), 5);
    EXPECT_EQ(g.highWater(), 5);
    g.set(3); // dropping the level keeps the high-water mark
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.highWater(), 5);
    g.add(10);
    EXPECT_EQ(g.value(), 13);
    EXPECT_EQ(g.highWater(), 13);
    g.sub(20);
    EXPECT_EQ(g.value(), -7);
    EXPECT_EQ(g.highWater(), 13);
}

TEST_F(MetricsTest, DisabledRecordingIsNoOp)
{
    Counter c("ufc_test_off_ctr", "");
    Gauge g("ufc_test_off_gauge", "");
    Histogram h("ufc_test_off_hist", "");

    metrics::setEnabled(false);
    c.inc(7);
    g.set(7);
    h.record(7);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.highWater(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);

    metrics::setEnabled(true);
    c.inc(7);
    EXPECT_EQ(c.value(), 7u);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST_F(MetricsTest, RegistryReturnsTheSameInstrumentPerName)
{
    Counter &a = metrics::counter("ufc_test_same_name");
    Counter &b = metrics::counter("ufc_test_same_name");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST_F(MetricsTest, RegistryRejectsCrossTypeNameClash)
{
    metrics::counter("ufc_test_clash");
    EXPECT_THROW(metrics::gauge("ufc_test_clash"), ConfigError);
    EXPECT_THROW(metrics::histogram("ufc_test_clash"), ConfigError);
    // The original registration is unharmed.
    EXPECT_NO_THROW(metrics::counter("ufc_test_clash").inc());
}

// ---------------------------------------------------------------------
// Exposition formats
// ---------------------------------------------------------------------

TEST_F(MetricsTest, PrometheusExposition)
{
    metrics::counter("ufc_test_prom_total", "Test events.").inc(3);
    metrics::gauge("ufc_test_prom_depth", "Test depth.").set(7);
    Histogram &h = metrics::histogram("ufc_test_prom_us", "Test lat.");
    h.record(1);
    h.record(1000);

    std::ostringstream os;
    metrics::writePrometheus(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("# HELP ufc_test_prom_total Test events.\n"),
              std::string::npos) << out;
    EXPECT_NE(out.find("# TYPE ufc_test_prom_total counter\n"),
              std::string::npos) << out;
    EXPECT_NE(out.find("ufc_test_prom_total 3\n"), std::string::npos);

    EXPECT_NE(out.find("# TYPE ufc_test_prom_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(out.find("ufc_test_prom_depth 7\n"), std::string::npos);
    EXPECT_NE(out.find("ufc_test_prom_depth_high_water 7\n"),
              std::string::npos);

    EXPECT_NE(out.find("# TYPE ufc_test_prom_us histogram\n"),
              std::string::npos);
    // Cumulative buckets: the value-1 bucket holds 1, the 1000 sample
    // lands in le="1023", and +Inf carries the total.
    EXPECT_NE(out.find("ufc_test_prom_us_bucket{le=\"1\"} 1\n"),
              std::string::npos) << out;
    EXPECT_NE(out.find("ufc_test_prom_us_bucket{le=\"1023\"} 2\n"),
              std::string::npos) << out;
    EXPECT_NE(out.find("ufc_test_prom_us_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos) << out;
    EXPECT_NE(out.find("ufc_test_prom_us_sum 1001\n"), std::string::npos);
    EXPECT_NE(out.find("ufc_test_prom_us_count 2\n"), std::string::npos);
}

/** Minimal structural JSON check: balanced braces/brackets outside
 *  strings, and no trailing garbage. */
void
expectBalancedJson(const std::string &s)
{
    int depth = 0;
    bool inStr = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"')
            inStr = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0) << s;
        }
    }
    EXPECT_FALSE(inStr) << s;
    EXPECT_EQ(depth, 0) << s;
}

TEST_F(MetricsTest, JsonSnapshotShape)
{
    metrics::counter("ufc_test_json_total").inc(5);
    metrics::gauge("ufc_test_json_depth").set(2);
    Histogram &h = metrics::histogram("ufc_test_json_us");
    h.record(0);
    h.record(9);

    std::ostringstream os;
    metrics::writeJson(os);
    const std::string out = os.str();

    expectBalancedJson(out);
    EXPECT_EQ(out.find("{\"schema\":\"ufc.metrics/v1\""), 0u) << out;
    EXPECT_NE(out.find("\"ufc_test_json_total\":5"), std::string::npos);
    EXPECT_NE(out.find(
                  "\"ufc_test_json_depth\":{\"value\":2,\"high_water\":2}"),
              std::string::npos) << out;
    // Histogram block: count/sum/percentiles plus the non-empty,
    // non-cumulative buckets keyed by inclusive upper bound.
    EXPECT_NE(out.find("\"ufc_test_json_us\":{\"count\":2,\"sum\":9"),
              std::string::npos) << out;
    EXPECT_NE(out.find("\"buckets\":{\"0\":1,\"15\":1}"),
              std::string::npos) << out;
}

// ---------------------------------------------------------------------
// Snapshot-while-recording (the TSan target)
// ---------------------------------------------------------------------

TEST_F(MetricsTest, SnapshotWhileRecordingIsRaceFree)
{
    Counter &c = metrics::counter("ufc_test_hammer_total");
    Histogram &h = metrics::histogram("ufc_test_hammer_us");
    Gauge &g = metrics::gauge("ufc_test_hammer_depth");

    constexpr int kThreads = 4;
    constexpr int kIters = 5000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.record(static_cast<u64>(t * kIters + i));
                g.set(i);
            }
        });
    }
    // Concurrently snapshot both expositions while recorders run.
    std::thread snapshotter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream prom, js;
            metrics::writePrometheus(prom);
            metrics::writeJson(js);
            EXPECT_FALSE(prom.str().empty());
        }
    });
    for (auto &w : workers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();

    // Once the recorders are quiescent the totals are exact.
    EXPECT_EQ(c.value(), u64{kThreads} * kIters);
    EXPECT_EQ(h.count(), u64{kThreads} * kIters);
    EXPECT_EQ(g.highWater(), kIters - 1);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST_F(MetricsTest, FlightRecorderFillsBelowCapacity)
{
    FlightRecorder fr(8);
    fr.record(EventKind::JobStart, "a");
    fr.record(EventKind::CacheHit, "b");
    fr.record(EventKind::JobOk, "c");
    EXPECT_EQ(fr.totalRecorded(), 3u);

    const auto t = fr.tail(8);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].seq, 0u);
    EXPECT_EQ(t[0].label, "a");
    EXPECT_EQ(t[2].seq, 2u);
    EXPECT_EQ(t[2].kind, EventKind::JobOk);
    // A short tail keeps only the newest.
    const auto t1 = fr.tail(1);
    ASSERT_EQ(t1.size(), 1u);
    EXPECT_EQ(t1[0].label, "c");
}

TEST_F(MetricsTest, FlightRecorderWrapAroundKeepsNewestInOrder)
{
    FlightRecorder fr(8);
    for (int i = 0; i < 20; ++i)
        fr.record(EventKind::CacheMiss, "e" + std::to_string(i));
    EXPECT_EQ(fr.totalRecorded(), 20u);

    // Only the last 8 survive the wrap, oldest first, in sequence order.
    const auto t = fr.tail(100);
    ASSERT_EQ(t.size(), 8u);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i].seq, 12 + i);
        EXPECT_EQ(t[i].label, "e" + std::to_string(12 + i));
    }
    // Timestamps are monotone with sequence numbers.
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GE(t[i].nsSinceStart, t[i - 1].nsSinceStart);

    fr.clear();
    EXPECT_EQ(fr.totalRecorded(), 0u);
    EXPECT_TRUE(fr.tail(8).empty());
}

TEST_F(MetricsTest, FlightRecorderDisabledRecordsNothing)
{
    FlightRecorder fr(8);
    metrics::setEnabled(false);
    fr.record(EventKind::JobStart, "ghost");
    EXPECT_EQ(fr.totalRecorded(), 0u);
    EXPECT_TRUE(fr.tail(8).empty());
}

TEST_F(MetricsTest, FlightRecorderEventFormat)
{
    FlightRecorder fr(4);
    fr.record(EventKind::WatchdogTrip, "host_deadline", "cycles=42");
    const auto lines = fr.formatTail(4);
    ASSERT_EQ(lines.size(), 1u);
    // `#<seq> +<ms>ms <kind> <label> <detail>`
    EXPECT_EQ(lines[0].find("#0 +"), 0u) << lines[0];
    EXPECT_NE(lines[0].find("ms watchdog_trip host_deadline cycles=42"),
              std::string::npos) << lines[0];
}

// ---------------------------------------------------------------------
// ProgramCache eviction bound
// ---------------------------------------------------------------------

TEST_F(MetricsTest, ProgramCacheEvictsFifoAtBound)
{
    const auto model = std::make_shared<sim::UfcModel>();
    // Three content-distinct traces => three distinct cache keys.
    const auto t1 = smallHybridTrace();
    const auto t2 = workloads::hybridKnn(ckks::CkksParams::c2(),
                                         tfhe::TfheParams::t1(), 256, 8, 4);
    const auto t3 = workloads::hybridKnn(ckks::CkksParams::c2(),
                                         tfhe::TfheParams::t1(), 256, 16, 2);

    const u64 evictBefore =
        metrics::counter("ufc_program_cache_evictions_total").value();

    runner::ProgramCache cache(2);
    const auto p1 = cache.get(*model, t1);
    const auto p2 = cache.get(*model, t2);
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(cache.compiles(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    // Same key twice is a hit, not an insert — nothing is evicted.
    (void)cache.get(*model, t2);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);

    // A third key exceeds the bound and evicts the oldest (t1).
    (void)cache.get(*model, t3);
    EXPECT_EQ(cache.compiles(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);

    // t1 was evicted: fetching it again re-compiles (deterministically,
    // so the Program is equivalent) rather than hitting.
    const auto p1b = cache.get(*model, t1);
    ASSERT_NE(p1b, nullptr);
    EXPECT_EQ(cache.compiles(), 4u);
    EXPECT_EQ(cache.hits(), 1u);

    // The registry counter moved with the member counter.
    EXPECT_GE(
        metrics::counter("ufc_program_cache_evictions_total").value(),
        evictBefore + 2); // t1 evicted, then t2 evicted by t1's return
}

TEST_F(MetricsTest, ProgramCacheUnboundedNeverEvicts)
{
    const auto model = std::make_shared<sim::UfcModel>();
    runner::ProgramCache cache; // maxEntries = 0: unbounded
    (void)cache.get(*model, smallHybridTrace());
    (void)cache.get(*model,
                    workloads::hybridKnn(ckks::CkksParams::c2(),
                                         tfhe::TfheParams::t1(), 256, 8,
                                         4));
    (void)cache.get(*model, smallHybridTrace());
    EXPECT_EQ(cache.compiles(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
}

// ---------------------------------------------------------------------
// Metrics change nothing (differential)
// ---------------------------------------------------------------------

TEST(MetricsDifferential, ModelRunBitIdenticalOnVsOff)
{
    const auto tr = smallHybridTrace();
    const sim::UfcModel model;

    metrics::setEnabled(false);
    const std::string off = model.run(tr).toJson();

    metrics::setEnabled(true);
    metrics::resetForTest();
    const std::string on = model.run(tr).toJson();
    metrics::resetForTest();
    metrics::setEnabled(false);

    // Every serialized observable — cycles, energy, stalls, attribution
    // — is byte-identical.  (hostSeconds is 0 on both sides: only the
    // runner fills it.)
    EXPECT_EQ(off, on);
}

TEST(MetricsDifferential, RunnerBatchBitIdenticalOnVsOff)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto knn = std::make_shared<trace::Trace>(smallHybridTrace());
    const auto pbs = std::make_shared<trace::Trace>(
        workloads::pbsThroughput(tfhe::TfheParams::t1(), 64));
    std::vector<runner::Job> jobs;
    jobs.push_back({"knn", model, knn, RunOptions{}, ""});
    jobs.push_back({"pbs", model, pbs, RunOptions{}, ""});

    runner::RunnerConfig cfg;
    cfg.threads = 2;
    cfg.measureHostTime = false; // keep host_seconds off the comparison

    metrics::setEnabled(false);
    const auto off = runner::ExperimentRunner(cfg).run(jobs);

    metrics::setEnabled(true);
    metrics::resetForTest();
    const auto on = runner::ExperimentRunner(cfg).run(jobs);
    metrics::resetForTest();
    metrics::setEnabled(false);

    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i].toJson(), on[i].toJson()) << off[i].label;
        EXPECT_EQ(off[i].toCsvRow(), on[i].toCsvRow()) << off[i].label;
    }
}

// ---------------------------------------------------------------------
// Runner integration: report envelope and failure post-mortem
// ---------------------------------------------------------------------

TEST_F(MetricsTest, BatchReportEmbedsMetricsBlockOnlyWhenOn)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto tr = std::make_shared<trace::Trace>(smallHybridTrace());
    // Two jobs sharing one (model, trace) pair: the runner arms the
    // batch ProgramCache only for genuinely shared programs.
    std::vector<runner::Job> jobs;
    jobs.push_back({"knn-a", model, tr, RunOptions{}, ""});
    jobs.push_back({"knn-b", model, tr, RunOptions{}, ""});
    const runner::ExperimentRunner runner;

    // Metrics on: the ufc.report/v2 envelope carries a metrics block
    // with the runner latency histogram and cache counters.
    const auto batchOn = runner.runAll(jobs);
    std::ostringstream on;
    runner::writeJsonReport(batchOn, on, runner::ReportMeta{});
    expectBalancedJson(on.str());
    EXPECT_NE(on.str().find("\"metrics\":{\"schema\":\"ufc.metrics/v1\""),
              std::string::npos) << on.str();
    EXPECT_NE(on.str().find("\"ufc_runner_jobs_total\":2"),
              std::string::npos) << on.str();
    EXPECT_NE(on.str().find("\"ufc_runner_job_duration_us\""),
              std::string::npos) << on.str();
    // One compile, one reuse across the shared pair.
    EXPECT_NE(on.str().find("\"ufc_program_cache_misses_total\":1"),
              std::string::npos) << on.str();
    EXPECT_NE(on.str().find("\"ufc_program_cache_hits_total\":1"),
              std::string::npos) << on.str();

    // Metrics off: byte-stable v2 envelope with no metrics block.
    metrics::setEnabled(false);
    const auto batchOff = runner.runAll(jobs);
    std::ostringstream off;
    runner::writeJsonReport(batchOff, off, runner::ReportMeta{});
    expectBalancedJson(off.str());
    EXPECT_EQ(off.str().find("\"metrics\":"), std::string::npos);
}

TEST_F(MetricsTest, FailedJobCarriesFlightRecorderTail)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto good = std::make_shared<trace::Trace>(smallHybridTrace());
    std::vector<runner::Job> jobs;
    jobs.push_back({"ok-job", model, good, RunOptions{}, ""});
    // traceFile is loaded inside the job's isolation: a missing file
    // fails only this job.
    jobs.push_back(
        {"bad-job", model, nullptr, RunOptions{}, "/nonexistent.ufctrace"});

    runner::RunnerConfig cfg;
    cfg.threads = 1;
    const auto batch = runner::ExperimentRunner(cfg).runAll(jobs);

    ASSERT_EQ(batch.outcomes.size(), 2u);
    EXPECT_TRUE(batch.outcomes[0].ok());
    EXPECT_TRUE(batch.outcomes[0].recentEvents.empty());

    const auto &bad = batch.outcomes[1];
    ASSERT_FALSE(bad.ok());
    ASSERT_FALSE(bad.recentEvents.empty());
    // The tail ends with this job's own failure event and includes the
    // neighbouring job lifecycle for context.
    const std::string &last = bad.recentEvents.back();
    EXPECT_NE(last.find("job_failed bad-job"), std::string::npos) << last;
    bool sawNeighbour = false;
    for (const auto &line : bad.recentEvents)
        if (line.find("ok-job") != std::string::npos)
            sawNeighbour = true;
    EXPECT_TRUE(sawNeighbour);

    // The failure report serializes the tail as "recent_events".
    std::ostringstream os;
    runner::writeJsonReport(batch, os, runner::ReportMeta{});
    expectBalancedJson(os.str());
    EXPECT_NE(os.str().find("\"recent_events\":["), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("job_failed bad-job"), std::string::npos);
}

TEST_F(MetricsTest, FailedJobWithMetricsOffHasNoEvents)
{
    metrics::setEnabled(false);
    const auto model = std::make_shared<sim::UfcModel>();
    std::vector<runner::Job> jobs;
    jobs.push_back(
        {"bad-job", model, nullptr, RunOptions{}, "/nonexistent.ufctrace"});
    const auto batch = runner::ExperimentRunner().runAll(jobs);
    ASSERT_EQ(batch.outcomes.size(), 1u);
    ASSERT_FALSE(batch.outcomes[0].ok());
    EXPECT_TRUE(batch.outcomes[0].recentEvents.empty());
}

// ---------------------------------------------------------------------
// prof::writeJson (satellite 3)
// ---------------------------------------------------------------------

TEST(ProfJson, SchemaAndOrdering)
{
    prof::setEnabled(true);
    prof::reset();
    // Registry-owned, never freed — same idiom as UFC_PROF_SCOPE sites.
    static prof::Counter &fast =
        prof::detail::site(*new prof::Counter("test/json/fast"));
    static prof::Counter &slow =
        prof::detail::site(*new prof::Counter("test/json/slow"));
    fast.add(100);
    fast.add(100);
    slow.add(10000);

    std::ostringstream os;
    prof::writeJson(os);
    prof::setEnabled(false);
    const std::string out = os.str();

    expectBalancedJson(out);
    EXPECT_EQ(out.find("{\"schema\":\"ufc.profile/v1\",\"counters\":["),
              0u) << out;
    EXPECT_NE(
        out.find("{\"name\":\"test/json/slow\",\"calls\":1,"
                 "\"total_ns\":10000,\"mean_ns\":10000}"),
        std::string::npos) << out;
    EXPECT_NE(
        out.find("{\"name\":\"test/json/fast\",\"calls\":2,"
                 "\"total_ns\":200,\"mean_ns\":100}"),
        std::string::npos) << out;
    // Sorted by total time descending: slow before fast.
    EXPECT_LT(out.find("test/json/slow"), out.find("test/json/fast"));
}

TEST(ProfJson, ResetAndConcurrentAddAreRaceFree)
{
    prof::setEnabled(true);
    static prof::Counter &hammered =
        prof::detail::site(*new prof::Counter("test/json/hammered"));

    constexpr int kThreads = 4;
    constexpr int kIters = 5000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < kIters; ++i)
                hammered.add(3);
        });
    // Concurrent snapshots and resets: relaxed atomics, no torn reads.
    std::thread churner([&] {
        for (int i = 0; i < 50; ++i) {
            std::ostringstream os;
            prof::writeJson(os);
            prof::reset();
        }
    });
    for (auto &w : workers)
        w.join();
    churner.join();
    prof::reset();
    prof::setEnabled(false);
    EXPECT_EQ(hammered.calls.load(), 0u);
}

} // namespace
} // namespace ufc
