/**
 * @file
 * Unit and integration tests for the RNS-CKKS scheme.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace ufc {
namespace ckks {
namespace {

double
maxSlotError(const std::vector<cplx> &got, const std::vector<cplx> &expect)
{
    double worst = 0.0;
    for (size_t i = 0; i < expect.size(); ++i)
        worst = std::max(worst, std::abs(got[i] - expect[i]));
    return worst;
}

struct CkksFixture : public ::testing::Test
{
    CkksFixture()
        : ctx(CkksParams::testFast()), encoder(&ctx), rng(99),
          keygen(&ctx, rng), encryptor(&ctx, &keygen.secretKey(), rng),
          eval(&ctx)
    {}

    std::vector<double>
    randomReals(size_t count, double lo = -1.0, double hi = 1.0)
    {
        std::vector<double> v(count);
        for (auto &x : v)
            x = lo + (hi - lo) * rng.uniformReal();
        return v;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Rng rng;
    CkksKeyGenerator keygen;
    CkksEncryptor encryptor;
    CkksEvaluator eval;
};

TEST_F(CkksFixture, EncodeDecodeRoundTrip)
{
    auto values = randomReals(ctx.slots(), -10.0, 10.0);
    auto pt = encoder.encode(values, ctx.levels(), ctx.scale());
    auto decoded = encoder.decode(pt);
    ASSERT_EQ(decoded.size(), ctx.slots());
    for (size_t i = 0; i < values.size(); ++i)
        EXPECT_NEAR(decoded[i].real(), values[i], 1e-7) << "slot " << i;
}

TEST_F(CkksFixture, EncodeDecodeComplexValues)
{
    std::vector<cplx> values(ctx.slots());
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = cplx(std::sin(0.1 * i), std::cos(0.2 * i));
    auto pt = encoder.encode(values, 2, ctx.scale());
    auto decoded = encoder.decode(pt);
    EXPECT_LT(maxSlotError(decoded, values), 1e-7);
}

TEST_F(CkksFixture, EncryptDecryptKeepsPrecision)
{
    auto values = randomReals(ctx.slots());
    auto pt = encoder.encode(values, ctx.levels(), ctx.scale());
    auto ct = encryptor.encrypt(pt);
    auto decoded = encoder.decode(encryptor.decrypt(ct));
    for (size_t i = 0; i < values.size(); ++i)
        EXPECT_NEAR(decoded[i].real(), values[i], 1e-6) << "slot " << i;
}

TEST_F(CkksFixture, HomomorphicAddSub)
{
    auto va = randomReals(ctx.slots());
    auto vb = randomReals(ctx.slots());
    auto ca = encryptor.encrypt(encoder.encode(va, 3, ctx.scale()));
    auto cb = encryptor.encrypt(encoder.encode(vb, 3, ctx.scale()));

    auto sum = eval.add(ca, cb);
    auto diff = eval.sub(ca, cb);
    auto dsum = encoder.decode(encryptor.decrypt(sum));
    auto ddiff = encoder.decode(encryptor.decrypt(diff));
    for (size_t i = 0; i < va.size(); ++i) {
        EXPECT_NEAR(dsum[i].real(), va[i] + vb[i], 1e-6);
        EXPECT_NEAR(ddiff[i].real(), va[i] - vb[i], 1e-6);
    }
}

TEST_F(CkksFixture, PlaintextOperations)
{
    auto va = randomReals(ctx.slots());
    auto vb = randomReals(ctx.slots());
    auto ca = encryptor.encrypt(encoder.encode(va, 3, ctx.scale()));
    auto pb = encoder.encode(vb, 3, ctx.scale());

    auto dsum = encoder.decode(encryptor.decrypt(eval.addPlain(ca, pb)));
    auto prod = eval.rescale(eval.mulPlain(ca, pb));
    auto dprod = encoder.decode(encryptor.decrypt(prod));
    for (size_t i = 0; i < va.size(); ++i) {
        EXPECT_NEAR(dsum[i].real(), va[i] + vb[i], 1e-6);
        EXPECT_NEAR(dprod[i].real(), va[i] * vb[i], 1e-5);
    }
}

TEST_F(CkksFixture, MultiplyRelinearizeRescale)
{
    auto relin = keygen.makeRelinKey();
    auto va = randomReals(ctx.slots());
    auto vb = randomReals(ctx.slots());
    auto ca = encryptor.encrypt(
        encoder.encode(va, ctx.levels(), ctx.scale()));
    auto cb = encryptor.encrypt(
        encoder.encode(vb, ctx.levels(), ctx.scale()));

    auto prod = eval.rescale(eval.multiply(ca, cb, relin));
    EXPECT_EQ(prod.limbs, ctx.levels() - 1);
    auto dprod = encoder.decode(encryptor.decrypt(prod));
    for (size_t i = 0; i < va.size(); ++i)
        EXPECT_NEAR(dprod[i].real(), va[i] * vb[i], 1e-4) << "slot " << i;
}

TEST_F(CkksFixture, MultiplicationChainToLastLevel)
{
    auto relin = keygen.makeRelinKey();
    const size_t n = ctx.slots();
    // Values near 1 so repeated squaring stays inside q0's headroom
    // (|m| * scale must remain below q0 at the last level).
    auto v = randomReals(n, 0.9, 1.1);
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    std::vector<double> expect = v;

    // Square repeatedly until one limb remains.
    while (ct.limbs >= 2) {
        ct = eval.rescale(eval.square(ct, relin));
        for (auto &x : expect)
            x *= x;
        // Keep magnitudes bounded so precision is measurable.
        auto dec = encoder.decode(encryptor.decrypt(ct));
        double worst = 0.0;
        for (size_t i = 0; i < n; ++i)
            worst = std::max(worst, std::abs(dec[i].real() - expect[i]));
        EXPECT_LT(worst, 2e-3) << "limbs=" << ct.limbs;
    }
    EXPECT_EQ(ct.limbs, 1);
}

TEST_F(CkksFixture, RotationMovesSlots)
{
    const size_t n = ctx.slots();
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = static_cast<double>(i % 97) / 97.0;
    auto ct = encryptor.encrypt(encoder.encode(v, 3, ctx.scale()));

    for (int steps : {1, 5, -3, static_cast<int>(n / 2)}) {
        auto gk = keygen.makeRotationKey(steps);
        auto rot = eval.rotate(ct, steps, gk);
        auto dec = encoder.decode(encryptor.decrypt(rot));
        for (size_t i = 0; i < n; ++i) {
            const size_t src = (i + n + static_cast<size_t>(
                (steps % static_cast<int>(n) + static_cast<int>(n)))) % n;
            EXPECT_NEAR(dec[i].real(), v[src], 1e-5)
                << "steps=" << steps << " slot " << i;
        }
    }
}

TEST_F(CkksFixture, ConjugateFlipsImaginaryPart)
{
    std::vector<cplx> v(ctx.slots());
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = cplx(0.3 * (i % 5), 0.2 * (i % 7) - 0.5);
    auto ct = encryptor.encrypt(encoder.encode(v, 2, ctx.scale()));
    auto conj = eval.conjugate(ct, keygen.makeConjugationKey());
    auto dec = encoder.decode(encryptor.decrypt(conj));
    for (size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(dec[i].real(), v[i].real(), 1e-5);
        EXPECT_NEAR(dec[i].imag(), -v[i].imag(), 1e-5);
    }
}

TEST_F(CkksFixture, RotationComposition)
{
    // rot(a, r1) then rot(., r2) == rot(a, r1+r2)
    const size_t n = ctx.slots();
    auto v = randomReals(n);
    auto ct = encryptor.encrypt(encoder.encode(v, 2, ctx.scale()));
    auto g2 = keygen.makeRotationKey(2);
    auto g3 = keygen.makeRotationKey(3);
    auto g5 = keygen.makeRotationKey(5);

    auto lhs = eval.rotate(eval.rotate(ct, 2, g2), 3, g3);
    auto rhs = eval.rotate(ct, 5, g5);
    auto dl = encoder.decode(encryptor.decrypt(lhs));
    auto dr = encoder.decode(encryptor.decrypt(rhs));
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(dl[i].real(), dr[i].real(), 1e-5);
}

TEST_F(CkksFixture, DropToLimbsPreservesMessage)
{
    auto v = randomReals(ctx.slots());
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    auto dropped = eval.dropToLimbs(ct, 2);
    EXPECT_EQ(dropped.limbs, 2);
    auto dec = encoder.decode(encryptor.decrypt(dropped));
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(dec[i].real(), v[i], 1e-6);
}

TEST_F(CkksFixture, HomomorphicPolynomialEvaluation)
{
    // Evaluate f(x) = x^2 - 0.5 x + 0.25 slot-wise.
    auto relin = keygen.makeRelinKey();
    auto v = randomReals(ctx.slots());
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));

    auto x2 = eval.rescale(eval.square(ct, relin));
    // Align x to x2's level and scale before combining.
    auto halfX = eval.rescale(eval.mulPlain(
        ct, encoder.encodeConstant(-0.5, ct.limbs, ctx.scale())));
    auto sum = eval.add(x2, halfX);
    sum = eval.addPlain(sum, encoder.encodeConstant(0.25, sum.limbs,
                                                    sum.scale));
    auto dec = encoder.decode(encryptor.decrypt(sum));
    for (size_t i = 0; i < v.size(); ++i) {
        const double expect = v[i] * v[i] - 0.5 * v[i] + 0.25;
        EXPECT_NEAR(dec[i].real(), expect, 1e-4) << "slot " << i;
    }
}

TEST(CkksParams, TableIIISettings)
{
    const auto c1 = CkksParams::c1();
    const auto c2 = CkksParams::c2();
    const auto c3 = CkksParams::c3();
    EXPECT_EQ(c1.ringDim, 1ULL << 16);
    EXPECT_EQ(c1.dnum, 2);
    EXPECT_EQ(c2.dnum, 3);
    EXPECT_EQ(c3.dnum, 4);
    // logPQ within ~2% of the paper's Table III values.
    EXPECT_NEAR(c1.logPQ(), 1785.0, 40.0);
    EXPECT_NEAR(c2.logPQ(), 1764.0, 40.0);
    EXPECT_NEAR(c3.logPQ(), 1679.0, 40.0);
}

TEST(CkksContext, ChainPrimesAreDistinctNttFriendly)
{
    CkksContext ctx(CkksParams::testFast());
    std::vector<u64> all = ctx.qChain();
    all.insert(all.end(), ctx.pChain().begin(), ctx.pChain().end());
    for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i] % (2 * ctx.degree()), 1u);
        for (size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i], all[j]);
    }
}

TEST(CkksContext, DigitPartitionCoversAllLimbs)
{
    CkksContext ctx(CkksParams::testFast());
    for (int limbs = 1; limbs <= ctx.levels(); ++limbs) {
        const int digits = ctx.digitsForLimbs(limbs);
        int covered = 0;
        for (int d = 0; d < digits; ++d) {
            auto [lo, hi] = ctx.digitRange(d, limbs);
            EXPECT_EQ(lo, covered);
            covered = hi;
        }
        EXPECT_EQ(covered, limbs);
    }
}

} // namespace
} // namespace ckks
} // namespace ufc
