/**
 * @file
 * Tests for the cost models (area/power monotonicity, DSE sanity) and
 * additional cycle-engine properties (prefetch window, write-backs,
 * streaming operands, pipeline fill).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "math/primes.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

namespace ufc {
namespace sim {
namespace {

TEST(CostModel, AreaMonotoneInLanes)
{
    double prev = 0.0;
    for (int lanes : {64, 128, 256, 512}) {
        auto cfg = UfcConfig::tableII();
        cfg.lanesPerPe = lanes;
        cfg.butterfliesPerPe = lanes / 2;
        const double area = UfcCostModel(cfg).areaMm2();
        EXPECT_GT(area, prev) << lanes;
        prev = area;
    }
}

TEST(CostModel, AreaMonotoneInScratchpad)
{
    double prev = 0.0;
    for (double mb : {64.0, 128.0, 256.0, 512.0}) {
        auto cfg = UfcConfig::tableII();
        cfg.scratchpadMb = mb;
        const double area = UfcCostModel(cfg).areaMm2();
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(CostModel, PowerGrowsWithUtilization)
{
    UfcCostModel cost{UfcConfig::tableII()};
    RunStats idle;
    idle.totalCycles = 1e6;
    RunStats busy = idle;
    busy.busyCycles[static_cast<int>(isa::Resource::Butterfly)] = 8e5;
    busy.busyCycles[static_cast<int>(isa::Resource::VectorAlu)] = 8e5;
    busy.busyCycles[static_cast<int>(isa::Resource::Noc)] = 5e5;
    EXPECT_GT(cost.averagePowerW(busy), cost.averagePowerW(idle));
    // Idle power is dominated by static + background scratchpad.
    EXPECT_GT(cost.averagePowerW(idle), 10.0);
}

TEST(CostModel, EnergyEqualsPowerTimesDelay)
{
    UfcCostModel cost{UfcConfig::tableII()};
    RunStats stats;
    stats.totalCycles = 5e6;
    stats.busyCycles[static_cast<int>(isa::Resource::VectorAlu)] = 3e6;
    EXPECT_NEAR(cost.energyJ(stats),
                cost.averagePowerW(stats) * cost.seconds(stats), 1e-12);
}

TEST(CycleEngine, PrefetchWindowBoundsMemoryRunahead)
{
    // With a narrow window, memory for instruction i+W cannot start
    // until instruction i's compute retires, so a mem-heavy prologue
    // stalls a compute-heavy epilogue less than an interleaved stream.
    UfcPerf perf{UfcConfig::tableII()};
    CycleEngine narrow(&perf, /*prefetchWindow=*/1);
    CycleEngine wide(&perf, /*prefetchWindow=*/64);

    for (int i = 0; i < 64; ++i) {
        isa::HwInst inst;
        inst.op = isa::HwOp::Ewmm;
        inst.words = 16384;
        inst.work = 16384;
        isa::BufferRef buf{static_cast<u64>(i), 4ULL << 20, false, false};
        inst.buffers = {buf};
        narrow.issue(inst);
        wide.issue(inst);
    }
    const auto sn = narrow.finish();
    const auto sw = wide.finish();
    EXPECT_GT(sn.totalCycles, sw.totalCycles);
    EXPECT_EQ(sn.hbmBytes, sw.hbmBytes);
}

TEST(CycleEngine, StreamingOperandsChargeEveryUse)
{
    UfcPerf perf{UfcConfig::tableII()};
    CycleEngine engine(&perf);
    isa::HwInst inst;
    inst.op = isa::HwOp::Ewmm;
    inst.words = 1024;
    inst.work = 1024;
    isa::BufferRef key;
    key.id = 42;
    key.bytes = 1 << 20;
    key.streaming = true;
    inst.buffers = {key};
    for (int i = 0; i < 10; ++i)
        engine.issue(inst);
    const auto stats = engine.finish();
    EXPECT_NEAR(stats.hbmBytes, 10.0 * (1 << 20), 1.0);
}

TEST(CycleEngine, CachedOperandsChargeOnce)
{
    UfcPerf perf{UfcConfig::tableII()};
    CycleEngine engine(&perf);
    isa::HwInst inst;
    inst.op = isa::HwOp::Ewmm;
    inst.words = 1024;
    inst.work = 1024;
    isa::BufferRef key;
    key.id = 42;
    key.bytes = 1 << 20;
    inst.buffers = {key};
    for (int i = 0; i < 10; ++i)
        engine.issue(inst);
    const auto stats = engine.finish();
    EXPECT_NEAR(stats.hbmBytes, 1.0 * (1 << 20), 1.0);
}

TEST(Accelerators, StrixRejectsOversizedRings)
{
    // T-parameters with logN = 16 exceed Strix's ring limit.
    tfhe::TfheParams big = tfhe::TfheParams::t4();
    big.ringDim = 1u << 16;
    big.q = findNttPrime(32, 2ULL << 16);
    auto tr = workloads::pbsThroughput(big, 4);
    StrixModel strix;
    // Out-of-range rings are a workload/machine mismatch (user input),
    // so this surfaces as a recoverable ConfigError.
    EXPECT_THROW({ strix.run(tr); }, ConfigError);
}

TEST(Accelerators, ResultsAreDeterministic)
{
    const auto tr = workloads::sorting(ckks::CkksParams::c1(), 1024);
    UfcModel m;
    const auto a = m.run(tr);
    const auto b = m.run(tr);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.stats.instCount, b.stats.instCount);
}

TEST(Accelerators, ScalingLanesImprovesDelay)
{
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c2());
    double prev = 1e9;
    for (int lanes : {64, 128, 256, 512}) {
        auto cfg = UfcConfig::tableII();
        cfg.lanesPerPe = lanes;
        cfg.butterfliesPerPe = lanes / 2;
        cfg.globalNocWordsPerCycle = 64 * lanes * 2;
        const auto r = UfcModel(cfg).run(tr);
        EXPECT_LT(r.seconds, prev) << lanes;
        prev = r.seconds;
    }
}

TEST(Accelerators, SplittingCgNetworkHurtsDelay)
{
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c2());
    double prev = 0.0;
    for (int nets : {1, 2, 4}) {
        auto cfg = UfcConfig::tableII();
        cfg.cgNetworks = nets;
        const auto r = UfcModel(cfg).run(tr);
        EXPECT_GT(r.seconds, prev) << nets;
        prev = r.seconds;
    }
}

TEST(Accelerators, ComposedSystemAreaIsSumOfChips)
{
    ComposedModel composed;
    baselines::SharpConfig sc;
    baselines::StrixConfig xc;
    EXPECT_DOUBLE_EQ(composed.areaMm2(), sc.areaMm2 + xc.areaMm2);
}

TEST(UfcConfigTest, WordGeometry)
{
    const auto cfg = UfcConfig::tableII();
    EXPECT_EQ(cfg.pes(), 64);
    EXPECT_EQ(cfg.totalButterflies(), 8192);
    EXPECT_EQ(cfg.totalLanes(), 16384);
    // 48-bit CKKS limbs need two 32-bit words; TFHE's 32-bit needs one.
    EXPECT_EQ(cfg.wordsPerCoeff(48), 2);
    EXPECT_EQ(cfg.wordsPerCoeff(32), 1);
    EXPECT_DOUBLE_EQ(cfg.bytesPerCoeff(48), 8.0);
}

} // namespace
} // namespace sim
} // namespace ufc
