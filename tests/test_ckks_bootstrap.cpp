/**
 * @file
 * End-to-end test of CKKS bootstrapping: a ciphertext exhausted to the
 * last level is refreshed and remains correct, with enough recovered
 * budget to keep computing.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/bootstrap.h"

namespace ufc {
namespace ckks {
namespace {

CkksParams
bootParams()
{
    // Test-size ring (not a secure parameter set; see README).
    CkksParams p;
    p.name = "BOOT";
    p.ringDim = 1ULL << 11;
    p.levels = 20;
    p.dnum = 5;
    p.specialLimbs = 4;
    // Bootstrapping wants large scale primes (noise headroom through
    // EvalMod) and a q0 well above the scale (sine linearity).
    p.firstModBits = 59;
    p.scaleBits = 50;
    p.specialBits = 59;
    p.secretHamming = 16;
    return p;
}

TEST(CkksBootstrap, RefreshesExhaustedCiphertext)
{
    CkksContext ctx(bootParams());
    CkksEncoder encoder(&ctx);
    Rng rng(20240707);
    CkksKeyGenerator keygen(&ctx, rng);
    CkksEncryptor encryptor(&ctx, &keygen.secretKey(), rng);
    CkksEvaluator eval(&ctx);
    CkksBootstrapper boot(&ctx, &encoder, &eval, &keygen,
                          /*rangeK=*/6, /*sineDegree=*/119);

    const size_t n = ctx.slots();
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i)
        values[i] = 0.8 * std::sin(0.37 * static_cast<double>(i));

    // Encrypt directly at the last level, as if a computation had
    // exhausted the chain.
    auto ct = encryptor.encrypt(encoder.encode(values, 1, ctx.scale()));
    ASSERT_EQ(ct.limbs, 1);

    auto refreshed = boot.bootstrap(ct);
    EXPECT_GE(refreshed.limbs, 6) << "no multiplicative budget recovered";

    auto decoded = encoder.decode(encryptor.decrypt(refreshed));
    double worst = 0.0;
    for (size_t i = 0; i < n; ++i)
        worst = std::max(worst,
                         std::abs(decoded[i].real() - values[i]));
    EXPECT_LT(worst, 1e-4);

    // The refreshed ciphertext must support further computation.
    auto relin = keygen.makeRelinKey();
    auto sq = eval.rescale(eval.square(refreshed, relin));
    auto sqDec = encoder.decode(encryptor.decrypt(sq));
    double sqWorst = 0.0;
    for (size_t i = 0; i < n; ++i)
        sqWorst = std::max(sqWorst, std::abs(sqDec[i].real() -
                                             values[i] * values[i]));
    EXPECT_LT(sqWorst, 1e-3);
}

} // namespace
} // namespace ckks
} // namespace ufc
