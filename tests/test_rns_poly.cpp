/**
 * @file
 * Tests for RNS machinery (bases, base conversion, CRT) and polynomial
 * types (forms, automorphisms, monomial rotation, RNS consistency).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/primes.h"
#include "math/rns.h"
#include "poly/rns_poly.h"

namespace ufc {
namespace {

TEST(RnsBasis, QHatInverseIdentity)
{
    auto primes = generateNttPrimes(45, 1 << 11, 4);
    RnsBasis basis(primes);
    for (size_t i = 0; i < basis.size(); ++i) {
        // qHat_i * qHatInv_i == 1 mod q_i.
        const Modulus qi(basis.value(i));
        u64 hat = 1;
        for (size_t j = 0; j < basis.size(); ++j) {
            if (j != i)
                hat = qi.mul(hat, basis.value(j) % qi.value());
        }
        EXPECT_EQ(qi.mul(hat, basis.qHatInvModQi(i)), 1u);
    }
}

TEST(RnsBasis, BaseConvertReturnsValuePlusSmallQMultiple)
{
    // The fast conversion is approximate by design: it returns x + u*Q
    // for some 0 <= u < L (the CKKS noise analysis absorbs the u*Q term;
    // our hybrid key switching cancels it exactly modulo the current
    // basis).
    auto from = generateNttPrimes(40, 1 << 10, 3);
    auto to = generateNttPrimes(45, 1 << 10, 2);
    RnsBasis fb(from), tb(to);
    u128 bigQ = 1;
    for (u64 q : from)
        bigQ *= q;

    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const u64 x = rng.uniform(1ULL << 50);
        std::vector<u64> residues(from.size());
        for (size_t j = 0; j < from.size(); ++j)
            residues[j] = x % from[j];
        const auto out = baseConvert(residues, fb, tb);
        for (size_t i = 0; i < to.size(); ++i) {
            bool matched = false;
            for (u64 u = 0; u < from.size() && !matched; ++u) {
                matched = out[i] == static_cast<u64>(
                    (x + u * bigQ) % to[i]);
            }
            EXPECT_TRUE(matched) << "trial " << trial << " limb " << i;
        }
    }
}

TEST(RnsBasis, BaseConvertErrorBoundedByQMultiples)
{
    // For arbitrary x the approximate conversion returns x + u*Q with
    // 0 <= u < L; verify via exact CRT.
    auto from = generateNttPrimes(30, 1 << 8, 3);
    auto to = generateNttPrimes(32, 1 << 8, 1);
    RnsBasis fb(from), tb(to);
    u128 bigQ = 1;
    for (u64 q : from)
        bigQ *= q;

    Rng rng(6);
    for (int trial = 0; trial < 500; ++trial) {
        u128 x = ((static_cast<u128>(rng.next()) << 64) | rng.next()) %
                 bigQ;
        std::vector<u64> residues(from.size());
        for (size_t j = 0; j < from.size(); ++j)
            residues[j] = static_cast<u64>(x % from[j]);
        const auto out = baseConvert(residues, fb, tb);
        // out == (x + u*Q) mod p for some 0 <= u < L.
        bool matched = false;
        for (u64 u = 0; u < from.size() && !matched; ++u) {
            const u64 expect =
                static_cast<u64>((x + u * bigQ) % to[0]);
            matched = out[0] == expect;
        }
        EXPECT_TRUE(matched) << "trial " << trial;
    }
}

TEST(RnsBasis, CrtReconstructSignedRoundTrip)
{
    auto primes = generateNttPrimes(40, 1 << 8, 3);
    RnsBasis basis(primes);
    Rng rng(7);
    for (int trial = 0; trial < 300; ++trial) {
        const i64 x = static_cast<i64>(rng.next() >> 12) *
                      ((rng.next() & 1) ? 1 : -1);
        std::vector<u64> residues(basis.size());
        for (size_t j = 0; j < basis.size(); ++j) {
            i64 r = x % static_cast<i64>(primes[j]);
            if (r < 0)
                r += static_cast<i64>(primes[j]);
            residues[j] = static_cast<u64>(r);
        }
        EXPECT_EQ(crtReconstructSigned(residues, basis),
                  static_cast<i128>(x));
    }
}

class PolyAutomorphism : public ::testing::TestWithParam<u64> {};

TEST_P(PolyAutomorphism, EvalAndCoeffFormsAgree)
{
    const u64 n = 128;
    const u64 q = findNttPrime(45, 2 * n);
    RingContext ring(n);
    Rng rng(GetParam());
    Poly a(&ring.table(q), PolyForm::Coeff);
    a.sampleUniform(rng);

    const u64 k = 2 * GetParam() + 1; // odd index

    // Coefficient-form automorphism, then NTT.
    Poly viaCoeff = a.automorphism(k);
    viaCoeff.toEval();

    // NTT, then evaluation-form automorphism.
    Poly viaEval = a;
    viaEval.toEval();
    viaEval = viaEval.automorphism(k);

    EXPECT_EQ(viaCoeff.data(), viaEval.data()) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(OddIndices, PolyAutomorphism,
                         ::testing::Values(1, 2, 7, 31, 63, 100, 127));

TEST(Poly, AutomorphismComposition)
{
    const u64 n = 64;
    const u64 q = findNttPrime(40, 2 * n);
    RingContext ring(n);
    Rng rng(9);
    Poly a(&ring.table(q), PolyForm::Coeff);
    a.sampleUniform(rng);

    // sigma_j(sigma_k(a)) == sigma_{jk mod 2N}(a).
    const u64 j = 5, k = 9;
    Poly lhs = a.automorphism(k).automorphism(j);
    Poly rhs = a.automorphism((j * k) % (2 * n));
    EXPECT_EQ(lhs.data(), rhs.data());
}

TEST(Poly, MonomialRotationMatchesNegacyclicMul)
{
    const u64 n = 64;
    const u64 q = findNttPrime(40, 2 * n);
    RingContext ring(n);
    const NttTable *table = &ring.table(q);
    Rng rng(11);
    Poly a(table, PolyForm::Coeff);
    a.sampleUniform(rng);

    for (i64 r : {i64{1}, i64{5}, i64{63}, i64{64}, i64{100}, i64{-3},
                  i64{-64}, i64{128}}) {
        Poly mono(table, PolyForm::Coeff);
        const i64 twoN = static_cast<i64>(2 * n);
        i64 rr = ((r % twoN) + twoN) % twoN;
        if (rr < static_cast<i64>(n)) {
            mono[rr] = 1;
        } else {
            mono[rr - n] = q - 1; // -X^(r-N)
        }
        Poly expect = negacyclicMul(a, mono);
        expect.toCoeff();
        Poly got = a.mulByMonomial(r);
        EXPECT_EQ(got.data(), expect.data()) << "r=" << r;
    }
}

TEST(Poly, MonomialRotationFullCircleIsIdentity)
{
    const u64 n = 32;
    const u64 q = findNttPrime(35, 2 * n);
    RingContext ring(n);
    Rng rng(13);
    Poly a(&ring.table(q), PolyForm::Coeff);
    a.sampleUniform(rng);

    // X^N negates, X^2N is the identity.
    Poly negated = a.mulByMonomial(static_cast<i64>(n));
    Poly expectNeg = a;
    expectNeg.negInPlace();
    EXPECT_EQ(negated.data(), expectNeg.data());
    EXPECT_EQ(a.mulByMonomial(2 * static_cast<i64>(n)).data(), a.data());
}

TEST(RnsPoly, ExtendBasisPreservesSmallPolynomials)
{
    RingContext ring(64);
    auto qs = generateNttPrimes(40, 128, 2);
    auto ps = generateNttPrimes(45, 128, 2);
    Rng rng(15);

    RnsPoly a(&ring, qs, PolyForm::Coeff);
    // Small signed values representable in all bases.
    for (u64 c = 0; c < 64; ++c) {
        const u64 v = rng.uniform(1000);
        for (size_t l = 0; l < a.limbCount(); ++l)
            a.limb(l)[c] = v;
    }
    RnsPoly b = a;
    b.extendBasis(ps);
    ASSERT_EQ(b.limbCount(), 4u);
    u128 bigQ = static_cast<u128>(qs[0]) * qs[1];
    for (u64 c = 0; c < 64; ++c) {
        const u64 v = a.limb(0)[c];
        // New limbs carry v + u*Q for a small u (fast-BConv contract).
        for (int extra = 0; extra < 2; ++extra) {
            const u64 got = b.limb(2 + extra)[c];
            const u64 p = ps[extra];
            bool matched = false;
            for (u64 u = 0; u < 2 && !matched; ++u)
                matched = got == static_cast<u64>((v + u * bigQ) % p);
            EXPECT_TRUE(matched) << "coeff " << c;
        }
    }
}

TEST(RnsPoly, SampledPolysAreRnsConsistent)
{
    RingContext ring(32);
    auto qs = generateNttPrimes(40, 64, 3);
    Rng rng(17);
    RnsPoly t(&ring, qs, PolyForm::Coeff);
    t.sampleTernary(rng);
    for (u64 c = 0; c < 32; ++c) {
        // All limbs represent the same ternary value.
        const u64 v0 = t.limb(0)[c];
        const bool isNeg = v0 == qs[0] - 1;
        for (size_t l = 1; l < t.limbCount(); ++l) {
            if (isNeg)
                EXPECT_EQ(t.limb(l)[c], qs[l] - 1);
            else
                EXPECT_EQ(t.limb(l)[c], v0);
        }
    }
}

TEST(RingContext, TablesAreCachedPerModulus)
{
    RingContext ring(64);
    const u64 q = findNttPrime(40, 128);
    const NttTable *t1 = &ring.table(q);
    const NttTable *t2 = &ring.table(q);
    EXPECT_EQ(t1, t2);
    const u64 q2 = findNttPrime(40, 128, 1);
    EXPECT_NE(t1, &ring.table(q2));
}

} // namespace
} // namespace ufc
