/**
 * @file
 * Tests for the trace IR (serialization round trips, scheme tagging) and
 * the compiler lowering (instruction-count invariants, optimization
 * effects on the emitted stream).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/lowering.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using trace::OpKind;
using trace::Trace;

/** Instruction sink that records everything. */
struct RecordingSink : public isa::InstSink
{
    void issue(const isa::HwInst &inst) override { insts.push_back(inst); }

    u64
    countOp(isa::HwOp op) const
    {
        u64 c = 0;
        for (const auto &i : insts)
            if (i.op == op)
                ++c;
        return c;
    }

    u64
    totalWork(isa::HwOp op) const
    {
        u64 w = 0;
        for (const auto &i : insts)
            if (i.op == op)
                w += i.work;
        return w;
    }

    double
    keyBytes() const
    {
        double b = 0.0;
        for (const auto &i : insts)
            for (const auto &ref : i.buffers)
                if (ref.id >= (2ULL << 40) && !ref.write)
                    b += static_cast<double>(ref.bytes);
        return b;
    }

    std::vector<isa::HwInst> insts;
};

Trace
minimalCkksTrace(OpKind kind, int limbs, int count = 1)
{
    Trace tr;
    tr.name = "unit";
    workloads::setCkksParams(tr, ckks::CkksParams::c2());
    tr.push(kind, limbs, count);
    return tr;
}

TEST(TraceSerialize, RoundTripPreservesEverything)
{
    const auto original =
        workloads::hybridKnn(ckks::CkksParams::c2(),
                             tfhe::TfheParams::t3());
    std::stringstream ss;
    trace::writeTrace(original, ss);
    const auto restored = trace::readTrace(ss);

    EXPECT_EQ(restored.name, original.name);
    EXPECT_EQ(restored.ckksRingDim, original.ckksRingDim);
    EXPECT_EQ(restored.ckksLevels, original.ckksLevels);
    EXPECT_EQ(restored.ckksDnum, original.ckksDnum);
    EXPECT_EQ(restored.tfheRingDim, original.tfheRingDim);
    EXPECT_EQ(restored.tfheLweDim, original.tfheLweDim);
    EXPECT_EQ(restored.liveCiphertexts, original.liveCiphertexts);
    ASSERT_EQ(restored.ops.size(), original.ops.size());
    for (size_t i = 0; i < original.ops.size(); ++i) {
        EXPECT_EQ(static_cast<int>(restored.ops[i].kind),
                  static_cast<int>(original.ops[i].kind));
        EXPECT_EQ(restored.ops[i].limbs, original.ops[i].limbs);
        EXPECT_EQ(restored.ops[i].count, original.ops[i].count);
        EXPECT_EQ(restored.ops[i].fanIn, original.ops[i].fanIn);
        EXPECT_EQ(restored.ops[i].keyId, original.ops[i].keyId);
    }
}

TEST(TraceSerialize, AllOpKindsHaveUniqueNames)
{
    const OpKind kinds[] = {
        OpKind::CkksAdd, OpKind::CkksAddPlain, OpKind::CkksMult,
        OpKind::CkksMultPlain, OpKind::CkksRescale, OpKind::CkksRotate,
        OpKind::CkksConjugate, OpKind::CkksModRaise, OpKind::TfheLinear,
        OpKind::TfhePbs, OpKind::TfheKeySwitch, OpKind::TfheModSwitch,
        OpKind::SwitchExtract, OpKind::SwitchRepack};
    std::set<std::string> names;
    for (auto k : kinds) {
        const std::string name = trace::opKindName(k);
        EXPECT_TRUE(names.insert(name).second) << name;
        OpKind back;
        ASSERT_TRUE(trace::opKindFromName(name, back));
        EXPECT_EQ(static_cast<int>(back), static_cast<int>(k));
    }
}

TEST(TraceSerialize, RejectsMalformedInput)
{
    std::stringstream ss("ufctrace 2\ntrace x\nop bogus.op 1 1 0 0\nend\n");
    EXPECT_THROW({ trace::readTrace(ss); }, TraceError);
}

TEST(Lowering, KeySwitchNttCountMatchesHybridStructure)
{
    // A multiply at `limbs` emits, inside its key switch:
    //   digits x NTT(limbs+K) for ModUp, plus the ModDown/tensor NTTs.
    const auto params = ckks::CkksParams::c2();
    const int limbs = 20;
    const int alpha = (params.levels + params.dnum - 1) / params.dnum;
    const int digits = (limbs + alpha - 1) / alpha;

    RecordingSink sink;
    compiler::LoweringOptions opts;
    auto tr = minimalCkksTrace(OpKind::CkksMult, limbs);
    compiler::Lowering lowering(&tr, opts, &sink);
    lowering.run();

    // Forward NTTs: one per raised digit (batch limbs+K) plus the final
    // ModDown NTT.
    EXPECT_EQ(sink.countOp(isa::HwOp::Ntt),
              static_cast<u64>(digits) + 1);
    // Inverse NTTs: input + ModDown accumulators.
    EXPECT_EQ(sink.countOp(isa::HwOp::Intt), 2u);
    // BConv MACs: ModUp per digit + inner products per digit + ModDown.
    EXPECT_EQ(sink.countOp(isa::HwOp::BconvMac),
              static_cast<u64>(2 * digits) + 1);
}

TEST(Lowering, RotationCostsDependOnAutoStrategy)
{
    const int limbs = 12;
    auto tr = minimalCkksTrace(OpKind::CkksRotate, limbs);

    RecordingSink viaNtt;
    compiler::LoweringOptions nttOpts;
    nttOpts.autoViaNtt = true;
    compiler::Lowering(&tr, nttOpts, &viaNtt).run();

    RecordingSink viaNoc;
    compiler::LoweringOptions nocOpts;
    nocOpts.autoViaNtt = false;
    compiler::Lowering(&tr, nocOpts, &viaNoc).run();

    // The via-NTT path emits NttAuto work and no shuffles; the NoC path
    // the reverse (Section IV-C2).
    EXPECT_GT(viaNtt.countOp(isa::HwOp::NttAuto), 0u);
    EXPECT_EQ(viaNtt.countOp(isa::HwOp::Shuffle), 0u);
    EXPECT_EQ(viaNoc.countOp(isa::HwOp::NttAuto), 0u);
    EXPECT_GT(viaNoc.countOp(isa::HwOp::Shuffle), 0u);
}

TEST(Lowering, OnTheFlyKeyGenShrinksKeyTraffic)
{
    const int limbs = 18;
    auto tr = minimalCkksTrace(OpKind::CkksMult, limbs, 4);

    RecordingSink with;
    compiler::LoweringOptions onOpts;
    onOpts.onTheFlyKeyGen = true;
    compiler::Lowering(&tr, onOpts, &with).run();

    RecordingSink without;
    compiler::LoweringOptions offOpts;
    offOpts.onTheFlyKeyGen = false;
    compiler::Lowering(&tr, offOpts, &without).run();

    EXPECT_LT(with.keyBytes(), 0.5 * without.keyBytes());
    EXPECT_GT(with.countOp(isa::HwOp::KeyGenOtf), 0u);
    EXPECT_EQ(without.countOp(isa::HwOp::KeyGenOtf), 0u);
}

TEST(Lowering, PbsBatchingFollowsParallelismChoice)
{
    Trace tr;
    tr.name = "pbs";
    workloads::setTfheParams(tr, tfhe::TfheParams::t1());
    tr.push(OpKind::TfhePbs, 0, 64);

    RecordingSink tvlp;
    compiler::LoweringOptions tvOpts;
    tvOpts.parallelism = compiler::Parallelism::TvLP;
    compiler::Lowering(&tr, tvOpts, &tvlp).run();

    RecordingSink colp;
    compiler::LoweringOptions coOpts;
    coOpts.parallelism = compiler::Parallelism::CoLP;
    compiler::Lowering(&tr, coOpts, &colp).run();

    // TvLP packs test vectors: fewer, wider NTT instructions; CoLP emits
    // a layout shuffle per iteration (Section V-B).
    EXPECT_LT(tvlp.countOp(isa::HwOp::Ntt), colp.countOp(isa::HwOp::Ntt));
    EXPECT_EQ(tvlp.countOp(isa::HwOp::Shuffle), 0u);
    EXPECT_GT(colp.countOp(isa::HwOp::Shuffle), 0u);
    // Total butterfly work is schedule-invariant.
    EXPECT_EQ(tvlp.totalWork(isa::HwOp::Ntt),
              colp.totalWork(isa::HwOp::Ntt));
}

TEST(Lowering, PbsWorkScalesLinearlyWithCount)
{
    Trace tr1, tr4;
    tr1.name = tr4.name = "pbs";
    workloads::setTfheParams(tr1, tfhe::TfheParams::t2());
    workloads::setTfheParams(tr4, tfhe::TfheParams::t2());
    tr1.push(OpKind::TfhePbs, 0, 32);
    tr4.push(OpKind::TfhePbs, 0, 128);

    compiler::LoweringOptions opts;
    RecordingSink s1, s4;
    compiler::Lowering(&tr1, opts, &s1).run();
    compiler::Lowering(&tr4, opts, &s4).run();
    EXPECT_EQ(4 * s1.totalWork(isa::HwOp::Ntt),
              s4.totalWork(isa::HwOp::Ntt));
    EXPECT_EQ(4 * s1.totalWork(isa::HwOp::Ewmm),
              s4.totalWork(isa::HwOp::Ewmm));
}

TEST(Lowering, DeeperCiphertextsCostMore)
{
    compiler::LoweringOptions opts;
    u64 prev = 0;
    for (int limbs : {4, 10, 16, 22}) {
        RecordingSink sink;
        auto tr = minimalCkksTrace(OpKind::CkksMult, limbs);
        compiler::Lowering(&tr, opts, &sink).run();
        u64 total = 0;
        for (const auto &i : sink.insts)
            total += i.work;
        EXPECT_GT(total, prev) << "limbs=" << limbs;
        prev = total;
    }
}

TEST(Workloads, LevelTrackingNeverUnderflows)
{
    for (const auto &tr :
         workloads::ckksSuite(ckks::CkksParams::c1())) {
        for (const auto &op : tr.ops) {
            EXPECT_GE(op.limbs, 1) << tr.name;
            EXPECT_LE(op.limbs, 24) << tr.name;
        }
    }
}

TEST(Workloads, GeneratorsAreDeterministic)
{
    const auto a = workloads::resnet20(ckks::CkksParams::c3());
    const auto b = workloads::resnet20(ckks::CkksParams::c3());
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(static_cast<int>(a.ops[i].kind),
                  static_cast<int>(b.ops[i].kind));
        EXPECT_EQ(a.ops[i].count, b.ops[i].count);
    }
}

} // namespace
} // namespace ufc
