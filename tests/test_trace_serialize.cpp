/**
 * @file
 * Tests for the versioned trace serialization format: magic/version
 * header handling and a field-exact round trip for every OpKind.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

/** Expect readTrace(text) to throw TraceError whose message contains
 *  `needle`. */
void
expectTraceError(const std::string &text, const std::string &needle)
{
    std::stringstream ss(text);
    try {
        trace::readTrace(ss);
        FAIL() << "expected TraceError containing '" << needle << "'";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

using trace::OpKind;
using trace::Trace;

constexpr OpKind kAllKinds[] = {
    OpKind::CkksAdd,      OpKind::CkksAddPlain, OpKind::CkksMult,
    OpKind::CkksMultPlain, OpKind::CkksRescale, OpKind::CkksRotate,
    OpKind::CkksConjugate, OpKind::CkksModRaise, OpKind::TfheLinear,
    OpKind::TfhePbs,      OpKind::TfheKeySwitch, OpKind::TfheModSwitch,
    OpKind::SwitchExtract, OpKind::SwitchRepack,
};

TEST(TraceSerialize, HeaderCarriesMagicAndCurrentVersion)
{
    Trace tr;
    tr.name = "header";
    std::stringstream ss;
    trace::writeTrace(tr, ss);

    std::string magic;
    int version = -1;
    ss >> magic >> version;
    EXPECT_EQ(magic, trace::kTraceMagic);
    EXPECT_EQ(version, trace::kTraceFormatVersion);
}

TEST(TraceSerialize, RoundTripEveryOpKind)
{
    // One trace per kind, with distinctive field values, so a mnemonic
    // mix-up or field-order bug in either direction is caught per kind.
    int salt = 1;
    for (const OpKind kind : kAllKinds) {
        Trace tr;
        tr.name = std::string("rt_") + trace::opKindName(kind);
        workloads::setCkksParams(tr, ckks::CkksParams::c2());
        workloads::setTfheParams(tr, tfhe::TfheParams::t2());
        tr.push(kind, /*limbs=*/1 + salt % 20, /*count=*/salt,
                /*fanIn=*/salt % 7, /*keyId=*/salt % 5);
        ++salt;

        std::stringstream ss;
        trace::writeTrace(tr, ss);
        const Trace back = trace::readTrace(ss);

        ASSERT_EQ(back.ops.size(), 1u) << tr.name;
        EXPECT_EQ(static_cast<int>(back.ops[0].kind),
                  static_cast<int>(kind))
            << tr.name;
        EXPECT_EQ(back.ops[0].limbs, tr.ops[0].limbs) << tr.name;
        EXPECT_EQ(back.ops[0].count, tr.ops[0].count) << tr.name;
        EXPECT_EQ(back.ops[0].fanIn, tr.ops[0].fanIn) << tr.name;
        EXPECT_EQ(back.ops[0].keyId, tr.ops[0].keyId) << tr.name;
        EXPECT_EQ(back.name, tr.name);
        EXPECT_EQ(back.ckksRingDim, tr.ckksRingDim);
        EXPECT_EQ(back.tfheRingDim, tr.tfheRingDim);
    }
}

TEST(TraceSerialize, RejectsMissingMagic)
{
    // A headerless (pre-versioning) file must be rejected up front.
    expectTraceError("trace legacy\nend\n", "missing 'ufctrace' magic");
}

TEST(TraceSerialize, RejectsUnknownVersion)
{
    expectTraceError("ufctrace 99\ntrace x\nend\n",
                     "unsupported trace format version 99");
    expectTraceError("ufctrace banana\ntrace x\nend\n",
                     "unsupported trace format version");
}

} // namespace
} // namespace ufc
