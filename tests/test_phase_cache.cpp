/**
 * @file
 * Differential and unit tests for the phase-level result memoization
 * cache (sim/phase_cache.h): cache-on vs cache-off must be bit-identical
 * on every observable — cycles, energy, per-op attribution, stall
 * causes, timeline slices, watchdog error bytes — across builtins, the
 * fixture corpus and fuzzed traces; entry-state keying must prevent
 * wrong replays even under forced content-hash collisions; and repeat
 * runs must actually hit.
 */

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "common/error.h"
#include "common/fault.h"
#include "compiler/bytecode.h"
#include "sim/accelerator.h"
#include "sim/phase_cache.h"
#include "sim/timeline.h"
#include "sim/ufc_perf.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using sim::PhaseCache;
using sim::RunOptions;
using sim::RunResult;
using sim::UfcModel;
using trace::Trace;

std::vector<Trace>
builtinTraces()
{
    const auto cp = ckks::CkksParams::c1();
    const auto tp = tfhe::TfheParams::t4();
    return {workloads::helr(cp, 2),
            workloads::ckksBootstrapping(cp, 2),
            workloads::sorting(cp, 256),
            workloads::pbsThroughput(tp, 16),
            workloads::hybridKnn(cp, tp, 64)};
}

RunResult
runCached(const UfcModel &model, const Trace &tr, PhaseCache &cache,
          RunOptions opts = {})
{
    opts.phaseCache = &cache;
    return model.run(tr, opts);
}

/** Trace-level lint gate matching the runner's pre-flight. */
bool
simulatable(const Trace &tr)
{
    static const analysis::Analyzer linter;
    return linter.analyze(tr).errorCount() == 0;
}

// ---------------------------------------------------------------------
// Differential suite: cache on == cache off, bit for bit.

TEST(PhaseCacheDifferential, BuiltinsBitIdentical)
{
    const UfcModel model;
    for (const Trace &tr : builtinTraces()) {
        const std::string uncached = model.run(tr).toJson();
        PhaseCache cache;
        // Twice through the same cache: the first run populates (all
        // misses), the second replays — both must match the uncached
        // bytes exactly, covering cycles, energy, per-op attribution
        // and stall causes (all part of the RunResult JSON).
        EXPECT_EQ(runCached(model, tr, cache).toJson(), uncached)
            << tr.name << " (populating run)";
        EXPECT_EQ(runCached(model, tr, cache).toJson(), uncached)
            << tr.name << " (replaying run)";
        if (model.compile(tr).segments.empty())
            EXPECT_EQ(cache.lookups(), 0u) << tr.name;
        else
            EXPECT_GT(cache.hits(), 0u) << tr.name;
    }
}

TEST(PhaseCacheDifferential, FixtureCorporaBitIdentical)
{
    const UfcModel model;
    int compared = 0;
    for (const auto &entry : std::filesystem::recursive_directory_iterator(
             UFC_FIXTURE_DIR)) {
        if (entry.path().extension() != ".ufctrace")
            continue;
        Trace tr;
        try {
            tr = trace::loadTrace(entry.path().string());
        } catch (const TraceError &) {
            continue; // unparseable: neither path simulates
        }
        if (!simulatable(tr))
            continue;
        PhaseCache cache;
        EXPECT_EQ(runCached(model, tr, cache).toJson(),
                  model.run(tr).toJson())
            << entry.path();
        ++compared;
    }
    EXPECT_GE(compared, 3);
}

TEST(PhaseCacheDifferential, FuzzedTracesBitIdentical)
{
    std::ostringstream os;
    trace::writeTrace(workloads::sorting(ckks::CkksParams::c1(), 256),
                      os);
    const std::string good = os.str();
    const FaultInjector faults(2026, 0.0);
    const UfcModel model;
    int compared = 0;
    for (u64 salt = 0; salt < 48; ++salt) {
        const std::string hostile = faults.corruptTraceText(good, salt);
        std::stringstream ss(hostile);
        Trace tr;
        try {
            tr = trace::readTrace(ss);
        } catch (const TraceError &) {
            continue;
        }
        if (!simulatable(tr))
            continue;
        PhaseCache cache;
        EXPECT_EQ(runCached(model, tr, cache).toJson(),
                  model.run(tr).toJson())
            << "salt " << salt;
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

TEST(PhaseCacheDifferential, WatchdogErrorBytesIdentical)
{
    // The maxCycles watchdog must trip at the same point with the same
    // message whether or not a cache is armed (maxCycles is part of the
    // cache key, so a watchdog run never replays a full-run snapshot).
    const UfcModel model;
    const Trace tr =
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2);
    RunOptions opts;
    opts.maxCycles = 500000;

    std::string uncachedWhat;
    try {
        model.run(tr, opts);
        FAIL() << "uncached watchdog did not trip";
    } catch (const TimeoutError &e) {
        uncachedWhat = e.what();
    }
    PhaseCache cache;
    for (int attempt = 0; attempt < 2; ++attempt) {
        try {
            runCached(model, tr, cache, opts);
            FAIL() << "cached watchdog did not trip (attempt "
                   << attempt << ")";
        } catch (const TimeoutError &e) {
            EXPECT_EQ(std::string(e.what()), uncachedWhat)
                << "attempt " << attempt;
        }
    }
}

TEST(PhaseCacheDifferential, TimelineRunsBypassAndMatch)
{
    // A timeline-recording run bypasses the cache (slices would be
    // skipped on a replay), and its slices must match an uncached
    // timeline run exactly even with a populated cache armed.
    const UfcModel model;
    const Trace tr =
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2);

    sim::Timeline plain;
    RunOptions plainOpts;
    plainOpts.timeline = &plain;
    model.run(tr, plainOpts);

    PhaseCache cache;
    runCached(model, tr, cache); // populate
    const u64 lookupsBefore = cache.lookups();

    sim::Timeline cached;
    RunOptions cachedOpts;
    cachedOpts.timeline = &cached;
    runCached(model, tr, cache, cachedOpts);
    EXPECT_EQ(cache.lookups(), lookupsBefore)
        << "timeline run consulted the cache";

    ASSERT_EQ(cached.slices().size(), plain.slices().size());
    for (std::size_t i = 0; i < plain.slices().size(); ++i) {
        const auto &a = plain.slices()[i];
        const auto &b = cached.slices()[i];
        EXPECT_EQ(a.track, b.track) << i;
        EXPECT_EQ(a.depth, b.depth) << i;
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.beginCycle, b.beginCycle) << i;
        EXPECT_EQ(a.endCycle, b.endCycle) << i;
        EXPECT_EQ(a.bytes, b.bytes) << i;
    }
}

TEST(PhaseCacheDifferential, PrefetchWindowsShareOneCacheSafely)
{
    // The prefetch window is part of the key base: different windows
    // sharing one cache must each stay bit-identical to their own
    // uncached run (a cross-window replay would corrupt both).
    const UfcModel model;
    const Trace tr =
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2);
    PhaseCache cache;
    for (int window : {0, 1, 4, 64}) {
        RunOptions opts;
        opts.prefetchWindow = window;
        const std::string uncached = model.run(tr, opts).toJson();
        EXPECT_EQ(runCached(model, tr, cache, opts).toJson(), uncached)
            << "window " << window << " (populating)";
        EXPECT_EQ(runCached(model, tr, cache, opts).toJson(), uncached)
            << "window " << window << " (replaying)";
    }
}

TEST(PhaseCacheDifferential, ForcedCollisionDoesNotReplayWrongState)
{
    // A genuine content-hash collision: two top-level phases built from
    // the *same* instruction stream digest identically, yet the engine
    // state entering phase 2 differs from the state entering phase 1
    // (clocks and stats have advanced), so entry-state keying must keep
    // them apart — zero hits on the first run, bit-identical output.
    const sim::UfcPerf perf{sim::UfcConfig::tableII()};
    isa::HwInst inst;
    inst.op = isa::HwOp::Ewma;
    inst.logDegree = 16;
    inst.batch = 1;
    inst.words = 1u << 16;
    inst.work = 1u << 16;
    isa::BufferRef ref;
    ref.id = 1;
    ref.bytes = u64(8) << 16;
    ref.streaming = true;
    inst.buffers.push_back(ref);

    compiler::Program program;
    compiler::ProgramBuilder builder(&perf, &program);
    for (const char *phase : {"twin_a", "twin_b"}) {
        builder.beginPhase(phase);
        for (u64 i = 0; i < compiler::kMinSegmentInsts; ++i)
            builder.issue(inst);
        builder.endPhase();
    }
    builder.finish();
    program.workload = "twin";
    program.machine = "UFC";

    ASSERT_EQ(program.segments.size(), 2u);
    EXPECT_EQ(compiler::segmentContentHash(program,
                                           program.segments[0].begin,
                                           program.segments[0].end),
              compiler::segmentContentHash(program,
                                           program.segments[1].begin,
                                           program.segments[1].end))
        << "twin phases should digest identically";

    const UfcModel model;
    const std::string uncached = model.execute(program).toJson();
    PhaseCache cache;
    RunOptions opts;
    opts.phaseCache = &cache;
    EXPECT_EQ(model.execute(program, opts).toJson(), uncached);
    EXPECT_EQ(cache.hits(), 0u)
        << "colliding phases replayed across different entry states";
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.entries(), 2u);

    // An identical rerun enters each phase in the same state as the
    // populating run did, so now both segments replay.
    EXPECT_EQ(model.execute(program, opts).toJson(), uncached);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(PhaseCacheDifferential, RepeatRunsHitEverySegment)
{
    const UfcModel model;
    const Trace tr =
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2);
    const compiler::Program program = model.compile(tr);
    ASSERT_GE(program.segments.size(), 2u);

    PhaseCache cache;
    RunOptions opts;
    opts.phaseCache = &cache;
    const std::string first = model.execute(program, opts).toJson();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), program.segments.size());

    const std::string second = model.execute(program, opts).toJson();
    EXPECT_EQ(second, first);
    EXPECT_EQ(cache.hits(), program.segments.size())
        << "identical rerun should replay every memoized phase";
}

TEST(PhaseCacheDifferential, SharedAcrossTracesKeepsEachBitIdentical)
{
    // One cache across a mini-batch of distinct traces (the runner's
    // sharing mode): every result must match its own uncached bytes.
    const UfcModel model;
    PhaseCache cache;
    for (const Trace &tr : builtinTraces())
        EXPECT_EQ(runCached(model, tr, cache).toJson(),
                  model.run(tr).toJson())
            << tr.name;
}

// ---------------------------------------------------------------------
// Unit tests for the cache container and the engine's guard rails.

TEST(PhaseCacheUnit, CountsHitsAndMisses)
{
    PhaseCache cache;
    EXPECT_EQ(cache.find(42), nullptr);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    auto state = std::make_shared<sim::PhaseExitState>();
    state->computeClock = 7.0;
    cache.insert(42, state);
    EXPECT_EQ(cache.entries(), 1u);

    const auto hit = cache.find(42);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->computeClock, 7.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.lookups(), 2u);
}

TEST(PhaseCacheUnit, FirstInsertWinsOnRace)
{
    // Two threads may race to insert the same key; both computed the
    // same state (same key == same content + entry state), so keeping
    // the first is correct and the second is dropped, not overwritten.
    PhaseCache cache;
    auto a = std::make_shared<sim::PhaseExitState>();
    a->computeClock = 1.0;
    auto b = std::make_shared<sim::PhaseExitState>();
    b->computeClock = 2.0;
    cache.insert(9, a);
    cache.insert(9, b);
    EXPECT_EQ(cache.entries(), 1u);
    const auto hit = cache.find(9);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->computeClock, 1.0);
}

TEST(PhaseCacheUnit, MalformedSegmentTableRejectedWhenCacheArmed)
{
    // The engine trusts segment bounds for its skip jumps, so a
    // mutated table must be screened out before execution.
    const UfcModel model;
    compiler::Program program = model.compile(
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2));
    ASSERT_FALSE(program.segments.empty());
    program.segments.front().end = program.code.size() + 5;

    // Without a cache the table is inert and the program still runs.
    EXPECT_NO_THROW(model.execute(program));

    PhaseCache cache;
    RunOptions opts;
    opts.phaseCache = &cache;
    EXPECT_THROW(model.execute(program, opts), ConfigError);
}

TEST(PhaseCacheUnit, IrModeIgnoresCache)
{
    // The trace-IR interpreter has no segment stream; a cache handed to
    // it must be ignored, not consulted.
    const UfcModel model;
    const Trace tr =
        workloads::ckksBootstrapping(ckks::CkksParams::c1(), 2);
    PhaseCache cache;
    RunOptions opts;
    opts.execMode = sim::ExecMode::TraceIr;
    opts.phaseCache = &cache;
    const std::string viaIr = model.run(tr, opts).toJson();
    EXPECT_EQ(cache.lookups(), 0u);

    RunOptions plain;
    plain.execMode = sim::ExecMode::TraceIr;
    EXPECT_EQ(viaIr, model.run(tr, plain).toJson());
}

} // namespace
} // namespace ufc
