/**
 * @file
 * Tests for radix-encoded TFHE integers and CKKS approximate comparison.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/compare.h"
#include "tfhe/integer.h"

namespace ufc {
namespace {

struct RadixFixture : public ::testing::Test
{
    RadixFixture()
        : params(tfhe::TfheParams::testFast()), rng(77),
          lweKey(tfhe::LweSecretKey::generate(params.lweDim, rng)),
          ring(params.ringDim),
          ringKey(tfhe::RlweSecretKey::generate(&ring.table(params.q),
                                                rng)),
          bc(params, lweKey, ringKey, rng), radix(&bc, 2)
    {}

    tfhe::TfheParams params;
    Rng rng;
    tfhe::LweSecretKey lweKey;
    RingContext ring;
    tfhe::RlweSecretKey ringKey;
    tfhe::BootstrapContext bc;
    tfhe::RadixArithmetic radix;
};

TEST_F(RadixFixture, EncryptDecryptRoundTrip)
{
    for (u64 v : {u64{0}, u64{1}, u64{42}, u64{255}, u64{170}}) {
        auto ct = radix.encrypt(v, 4, lweKey, params, rng);
        EXPECT_EQ(radix.decrypt(ct, lweKey), v);
    }
}

TEST_F(RadixFixture, AdditionWithCarryPropagation)
{
    // 4 digits x 2 bits = 8-bit integers; pick cases that exercise
    // carries across every digit boundary.
    const u64 cases[][2] = {{3, 1}, {85, 86}, {170, 85}, {127, 127},
                            {255 - 170, 170}};
    for (const auto &c : cases) {
        auto ca = radix.encrypt(c[0], 4, lweKey, params, rng);
        auto cb = radix.encrypt(c[1], 4, lweKey, params, rng);
        auto sum = radix.add(ca, cb);
        EXPECT_EQ(radix.decrypt(sum, lweKey) & 0xff,
                  (c[0] + c[1]) & 0xff)
            << c[0] << " + " << c[1];
    }
}

TEST_F(RadixFixture, ScalarMultiplication)
{
    auto ct = radix.encrypt(37, 4, lweKey, params, rng);
    auto tripled = radix.scalarMul(ct, 3);
    EXPECT_EQ(radix.decrypt(tripled, lweKey) & 0xff, u64{111});
}

TEST_F(RadixFixture, DigitwiseLutActsAsActivation)
{
    // A ReLU-like digit activation: clamp digits above 1 to 1 (a toy
    // nonlinearity evaluated with one PBS per digit, as in the NN
    // workloads).
    std::vector<u64> lut = {0, 1, 1, 1};
    auto ct = radix.encrypt(0b11100100, 4, lweKey, params, rng);
    auto out = radix.mapDigits(ct, lut);
    // digits (LSB first) 0,1,2,3 -> 0,1,1,1.
    EXPECT_EQ(radix.decrypt(out, lweKey), 0b01010100u);
}

struct CompareFixture : public ::testing::Test
{
    CompareFixture()
        : ctx(makeParams()), encoder(&ctx), rng(88), keygen(&ctx, rng),
          encryptor(&ctx, &keygen.secretKey(), rng), eval(&ctx),
          relin(keygen.makeRelinKey()),
          cmp(&ctx, &encoder, &eval, &relin)
    {}

    static ckks::CkksParams
    makeParams()
    {
        ckks::CkksParams p;
        p.name = "CMP";
        p.ringDim = 1ULL << 11;
        p.levels = 20;
        p.dnum = 5;
        p.specialLimbs = 4;
        p.firstModBits = 55;
        p.scaleBits = 40;
        p.specialBits = 55;
        return p;
    }

    ckks::CkksContext ctx;
    ckks::CkksEncoder encoder;
    Rng rng;
    ckks::CkksKeyGenerator keygen;
    ckks::CkksEncryptor encryptor;
    ckks::CkksEvaluator eval;
    ckks::EvalKey relin;
    ckks::CkksComparator cmp;
};

TEST_F(CompareFixture, ApproxSignSeparatesValues)
{
    const size_t n = ctx.slots();
    std::vector<double> v(n);
    Rng r(3);
    for (auto &x : v) {
        // Values bounded away from zero (the sign gap condition: four
        // contraction rounds converge for |x| >= ~0.5).
        const double mag = 0.5 + 0.5 * r.uniformReal();
        x = (r.next() & 1) ? mag : -mag;
    }
    auto ct = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    auto s = cmp.approxSign(ct, 4);
    auto dec = encoder.decode(encryptor.decrypt(s));
    for (size_t i = 0; i < n; ++i) {
        const double expect = v[i] > 0 ? 1.0 : -1.0;
        EXPECT_NEAR(dec[i].real(), expect, 0.05) << "x=" << v[i];
    }
}

TEST_F(CompareFixture, GreaterThanIndicator)
{
    const size_t n = ctx.slots();
    std::vector<double> a(n), b(n);
    Rng r(5);
    for (size_t i = 0; i < n; ++i) {
        // Pairs with a wide gap (|a-b| >= 1) in randomized order, so the
        // halved difference stays inside the sign's convergence region.
        const double hi = 0.2 + 0.8 * r.uniformReal();
        const double lo = hi - 1.0 - 0.2 * r.uniformReal();
        if (r.next() & 1) {
            a[i] = hi;
            b[i] = std::max(lo, -1.0);
        } else {
            a[i] = std::max(lo, -1.0);
            b[i] = hi;
        }
    }
    auto ca = encryptor.encrypt(encoder.encode(a, ctx.levels(),
                                               ctx.scale()));
    auto cb = encryptor.encrypt(encoder.encode(b, ctx.levels(),
                                               ctx.scale()));
    auto ind = cmp.greaterThan(ca, cb, 4);
    auto dec = encoder.decode(encryptor.decrypt(ind));
    for (size_t i = 0; i < n; ++i) {
        const double expect = a[i] > b[i] ? 1.0 : 0.0;
        EXPECT_NEAR(dec[i].real(), expect, 0.05)
            << "a=" << a[i] << " b=" << b[i];
    }
}

} // namespace
} // namespace ufc
