/**
 * @file
 * Tests for the pass-based static verifier (ufc-lint): per-pass positive
 * and negative cases, the instruction-stream VerifyingSink, the committed
 * lint fixture corpus (one file per file-expressible rule id), the
 * builtin-workloads-lint-clean guarantee, and the experiment runner's
 * opt-in pre-flight (RunOptions::lintTraces).
 */

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/verifying_sink.h"
#include "common/error.h"
#include "compiler/lowering.h"
#include "runner/runner.h"
#include "sim/accelerator.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using analysis::Analyzer;
using analysis::Diagnostic;
using analysis::DiagnosticReport;
using analysis::Severity;
using analysis::VerifyingSink;
using trace::OpKind;
using trace::Trace;

/** Shared analyzer: passes are stateless/const, so one instance serves
 *  every test (and documents that sharing is safe). */
const Analyzer &
linter()
{
    static const Analyzer a;
    return a;
}

/** A minimal semantically valid CKKS+TFHE trace to corrupt per test. */
Trace
validTrace()
{
    Trace tr;
    tr.name = "lint_unit";
    workloads::setCkksParams(tr, ckks::CkksParams::c2());
    workloads::setTfheParams(tr, tfhe::TfheParams::t3());
    tr.beginPhase("body");
    tr.push(OpKind::CkksMult, 8);
    tr.push(OpKind::CkksRescale, 8);
    tr.push(OpKind::CkksRotate, 7, 1, 0, 3);
    tr.push(OpKind::TfheLinear, 0, 1, 4);
    tr.push(OpKind::TfhePbs, 0, 2);
    tr.endPhase();
    return tr;
}

/** All rule ids present in a report. */
std::set<std::string>
rulesIn(const DiagnosticReport &rep)
{
    std::set<std::string> out;
    for (const auto &d : rep.diagnostics())
        out.insert(d.rule);
    return out;
}

TEST(Analysis, RuleRegistryHasUniqueIdsAndSeverities)
{
    std::set<std::string> seen;
    for (const auto &rule : analysis::ruleRegistry()) {
        EXPECT_TRUE(seen.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        EXPECT_EQ(analysis::ruleSeverity(rule.id), rule.severity);
        EXPECT_NE(rule.description, nullptr);
    }
    // Unknown ids default to Error (fail safe).
    EXPECT_EQ(analysis::ruleSeverity("no-such-rule"), Severity::Error);
}

TEST(Analysis, ValidTraceIsClean)
{
    const auto rep = linter().analyze(validTrace());
    EXPECT_TRUE(rep.empty()) << rep.toText();
}

TEST(Analysis, CountRangeFlagsNonPositiveCount)
{
    Trace tr = validTrace();
    tr.ops[0].count = 0;
    const auto rep = linter().analyze(tr);
    EXPECT_TRUE(rulesIn(rep).count("count-range")) << rep.toText();
    EXPECT_EQ(rep.diagnostics()[0].opIndex, 0);
}

TEST(Analysis, FanInMisuseAndMissing)
{
    Trace tr = validTrace();
    tr.ops[0].fanIn = 2;  // ckks.mult ignores fanIn
    tr.ops[3].fanIn = 0;  // tfhe.linear wants one
    const auto rep = linter().analyze(tr);
    const auto rules = rulesIn(rep);
    EXPECT_TRUE(rules.count("fanin-misuse")) << rep.toText();
    EXPECT_TRUE(rules.count("fanin-missing")) << rep.toText();
    EXPECT_EQ(analysis::ruleSeverity("fanin-missing"),
              Severity::Warning);
}

TEST(Analysis, LiveUnderflowOnlyWhenTraceHasOps)
{
    Trace tr = validTrace();
    tr.liveCiphertexts = 0;
    EXPECT_TRUE(rulesIn(linter().analyze(tr)).count("live-underflow"));

    Trace empty;
    empty.liveCiphertexts = 0;
    EXPECT_TRUE(linter().analyze(empty).empty());
}

TEST(Analysis, SchemeLegalityNeedsDeclaredParams)
{
    Trace noCkks = validTrace();
    noCkks.ckksRingDim = 0;
    EXPECT_TRUE(
        rulesIn(linter().analyze(noCkks)).count("scheme-ckks-params"));

    Trace noTfhe = validTrace();
    noTfhe.tfheRingDim = 0;
    EXPECT_TRUE(
        rulesIn(linter().analyze(noTfhe)).count("scheme-tfhe-params"));

    // Declared but unusable header fields are also scheme errors, even
    // before any op is looked at (the lowering derives geometry from
    // them).
    Trace badDnum = validTrace();
    badDnum.ckksDnum = 0;
    EXPECT_TRUE(
        rulesIn(linter().analyze(badDnum)).count("scheme-ckks-params"));

    Trace badGadget = validTrace();
    badGadget.tfheGadgetLevels = 0;
    EXPECT_TRUE(
        rulesIn(linter().analyze(badGadget)).count("scheme-tfhe-params"));
}

TEST(Analysis, SchemeRingPow2)
{
    Trace tr = validTrace();
    tr.ckksRingDim = 65537;
    EXPECT_TRUE(rulesIn(linter().analyze(tr)).count("scheme-ring-pow2"));
}

TEST(Analysis, LimbChainBoundsAndStructure)
{
    Trace over = validTrace();
    over.ops[0].limbs = over.ckksLevels + 1;
    EXPECT_TRUE(rulesIn(linter().analyze(over)).count("limb-range"));

    Trace under = validTrace();
    under.ops[0].limbs = 0;
    EXPECT_TRUE(rulesIn(linter().analyze(under)).count("limb-range"));

    Trace rescale = validTrace();
    rescale.ops[1].limbs = 1; // rescale at 1 limb would leave 0
    EXPECT_TRUE(
        rulesIn(linter().analyze(rescale)).count("rescale-underflow"));

    Trace raise = validTrace();
    raise.push(OpKind::CkksModRaise, 5);
    EXPECT_TRUE(
        rulesIn(linter().analyze(raise)).count("modraise-target"));
    raise.ops.back().limbs = raise.ckksLevels;
    EXPECT_TRUE(linter().analyze(raise).empty())
        << linter().analyze(raise).toText();
}

TEST(Analysis, PhaseDiscipline)
{
    // endPhase() itself now refuses unbalanced closes, so corrupt marker
    // streams are built by appending to the public vector — exactly what
    // a buggy external producer would do.
    Trace unbalanced = validTrace();
    unbalanced.phases.push_back(
        trace::PhaseMark{unbalanced.ops.size(), "", false});
    EXPECT_TRUE(
        rulesIn(linter().analyze(unbalanced)).count("phase-balance"));

    Trace open = validTrace();
    open.beginPhase("never_closed");
    EXPECT_TRUE(rulesIn(linter().analyze(open)).count("phase-balance"));

    Trace reorder = validTrace();
    reorder.phases.push_back(trace::PhaseMark{2, "late", true});
    reorder.phases.push_back(trace::PhaseMark{2, "", false});
    // Marks at opIndex 2 after the body close at opIndex 5.
    EXPECT_TRUE(
        rulesIn(linter().analyze(reorder)).count("phase-order"));

    Trace past = validTrace();
    past.phases.insert(past.phases.begin() + 1,
                       trace::PhaseMark{99, "beyond", true});
    past.phases.insert(past.phases.begin() + 2,
                       trace::PhaseMark{99, "", false});
    EXPECT_TRUE(rulesIn(linter().analyze(past)).count("phase-index"));

    Trace unnamed = validTrace();
    unnamed.beginPhase("");
    unnamed.endPhase();
    EXPECT_TRUE(
        rulesIn(linter().analyze(unnamed)).count("phase-name"));
}

TEST(Analysis, TraceEndPhaseThrowsOnUnbalancedClose)
{
    Trace tr;
    tr.name = "unbalanced";
    EXPECT_THROW(tr.endPhase(), TraceError);

    tr.beginPhase("a");
    EXPECT_NO_THROW(tr.endPhase());
    EXPECT_THROW(tr.endPhase(), TraceError);
}

TEST(Analysis, WorkingSetWarnsOnKeyIdExplosion)
{
    Trace tr = validTrace();
    tr.liveCiphertexts = 1;
    for (int k = 0; k < 70; ++k)
        tr.push(OpKind::CkksRotate, 8, 1, 0, 100 + k);
    const auto rep = linter().analyze(tr);
    ASSERT_TRUE(rulesIn(rep).count("working-set")) << rep.toText();
    EXPECT_EQ(rep.errorCount(), 0u);
    EXPECT_FALSE(rep.clean(Severity::Warning));
    EXPECT_TRUE(rep.clean(Severity::Error));

    // The sorting workload's ~105 distinct rotation keys against 12
    // live ciphertexts must stay under the feasibility threshold.
    const auto sorting = workloads::sorting(ckks::CkksParams::c2());
    EXPECT_TRUE(linter().analyze(sorting).empty());
}

TEST(Analysis, PhaseAtReportsInnermostOpenRegion)
{
    Trace tr;
    tr.name = "phases";
    tr.beginPhase("outer");
    tr.push(OpKind::TfheModSwitch, 0);
    tr.beginPhase("inner");
    tr.push(OpKind::TfheModSwitch, 0);
    tr.endPhase();
    tr.push(OpKind::TfheModSwitch, 0);
    tr.endPhase();
    EXPECT_EQ(analysis::phaseAt(tr, 0), "outer");
    EXPECT_EQ(analysis::phaseAt(tr, 1), "inner");
    EXPECT_EQ(analysis::phaseAt(tr, 2), "outer");
    EXPECT_EQ(analysis::phaseAt(tr, Diagnostic::kTraceLevel), "");
}

// ---------------------------------------------------------------------
// Instruction-stream verifier.

isa::HwInst
makeNtt(u32 logDegree, u32 batch, u64 words)
{
    isa::HwInst inst;
    inst.op = isa::HwOp::Ntt;
    inst.logDegree = logDegree;
    inst.batch = batch;
    inst.words = words;
    inst.work = words * logDegree / 2;
    return inst;
}

/** Counts forwarded instructions (decorator transparency check). */
class CountingSink : public isa::InstSink
{
  public:
    void issue(const isa::HwInst &) override { ++issued; }
    void beginPhase(const char *) override { ++begins; }
    void endPhase() override { ++ends; }
    int issued = 0, begins = 0, ends = 0;
};

TEST(AnalysisSink, CleanStreamProducesNoDiagnostics)
{
    DiagnosticReport rep;
    CountingSink inner;
    VerifyingSink sink(&inner, &rep);
    sink.beginPhase("p");
    sink.issue(makeNtt(16, 1, 1 << 16));
    sink.endPhase();
    sink.finish();
    EXPECT_TRUE(rep.empty()) << rep.toText();
    EXPECT_EQ(inner.issued, 1);
    EXPECT_EQ(inner.begins, 1);
    EXPECT_EQ(inner.ends, 1);
    EXPECT_EQ(sink.instCount(), 1u);
}

TEST(AnalysisSink, NttWorkInvariant)
{
    DiagnosticReport rep;
    VerifyingSink sink(nullptr, &rep);
    auto bad = makeNtt(16, 1, 1 << 16);
    bad.work += 1;
    sink.issue(bad);
    sink.finish();
    ASSERT_EQ(rep.size(), 1u) << rep.toText();
    EXPECT_EQ(rep.diagnostics()[0].rule, "inst-ntt-work");
    EXPECT_EQ(rep.diagnostics()[0].opIndex, 0);
}

TEST(AnalysisSink, BatchDegreeAndOperandRules)
{
    DiagnosticReport rep;
    VerifyingSink sink(nullptr, &rep);
    isa::HwInst inst;
    inst.op = isa::HwOp::Ewma;
    inst.batch = 0;      // inst-batch
    inst.logDegree = 40; // inst-degree
    inst.words = 0;      // inst-no-operands (no buffers either)
    sink.issue(inst);
    sink.finish();
    const auto rules = rulesIn(rep);
    EXPECT_TRUE(rules.count("inst-batch")) << rep.toText();
    EXPECT_TRUE(rules.count("inst-degree")) << rep.toText();
    EXPECT_TRUE(rules.count("inst-no-operands")) << rep.toText();
}

TEST(AnalysisSink, TransientBufferDataflow)
{
    DiagnosticReport rep;
    VerifyingSink sink(nullptr, &rep);

    isa::BufferRef both;
    both.id = 1;
    both.bytes = 64;
    both.transient = true;
    both.streaming = true; // buf-transient-streaming

    isa::BufferRef readFirst;
    readFirst.id = 2;
    readFirst.bytes = 64;
    readFirst.transient = true;
    readFirst.write = false; // buf-use-before-def

    isa::BufferRef writeOnly;
    writeOnly.id = 3;
    writeOnly.bytes = 64;
    writeOnly.transient = true;
    writeOnly.write = true; // buf-unconsumed-transient at finish()

    isa::HwInst inst;
    inst.op = isa::HwOp::Ewma;
    inst.batch = 1;
    inst.words = 16;
    inst.buffers = {both, readFirst, writeOnly};
    sink.issue(inst);
    sink.finish();
    const auto rules = rulesIn(rep);
    EXPECT_TRUE(rules.count("buf-transient-streaming")) << rep.toText();
    EXPECT_TRUE(rules.count("buf-use-before-def")) << rep.toText();
    EXPECT_TRUE(rules.count("buf-unconsumed-transient")) << rep.toText();

    // Write-then-read is the legal transient lifecycle.
    DiagnosticReport ok;
    VerifyingSink sink2(nullptr, &ok);
    isa::HwInst producer;
    producer.op = isa::HwOp::Ewma;
    producer.batch = 1;
    producer.words = 16;
    isa::BufferRef w = writeOnly;
    producer.buffers = {w};
    sink2.issue(producer);
    isa::HwInst consumer = producer;
    consumer.buffers[0].write = false;
    sink2.issue(consumer);
    sink2.finish();
    EXPECT_TRUE(ok.empty()) << ok.toText();
}

TEST(AnalysisSink, PhaseBalanceInInstructionStream)
{
    DiagnosticReport rep;
    VerifyingSink sink(nullptr, &rep);
    sink.endPhase(); // nothing open
    sink.beginPhase("left_open");
    sink.finish();
    sink.finish(); // idempotent
    ASSERT_EQ(rep.size(), 2u) << rep.toText();
    EXPECT_EQ(rep.diagnostics()[0].rule, "inst-phase-balance");
    EXPECT_EQ(rep.diagnostics()[1].rule, "inst-phase-balance");
}

// ---------------------------------------------------------------------
// Whole-pipeline guarantees.

std::vector<Trace>
builtinCorpus()
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t3();
    auto all = workloads::ckksSuite(cp);
    for (auto &tr : workloads::tfheSuite(tp))
        all.push_back(std::move(tr));
    all.push_back(workloads::hybridKnn(cp, tp));
    return all;
}

TEST(AnalysisPipeline, BuiltinWorkloadsLintCleanThroughLowering)
{
    const compiler::LoweringOptions opts;
    for (const auto &tr : builtinCorpus()) {
        const auto rep = linter().analyzeLowered(tr, opts);
        EXPECT_TRUE(rep.empty())
            << tr.name << " produced:\n" << rep.toText();
    }
}

TEST(AnalysisPipeline, LoweringWithLintIsTransparent)
{
    const auto tr = workloads::ckksBootstrapping(ckks::CkksParams::c2());

    CountingSink plain;
    compiler::LoweringOptions opts;
    compiler::Lowering(&tr, opts, &plain).run();

    CountingSink verified;
    DiagnosticReport rep;
    opts.lint = &rep;
    compiler::Lowering lowering(&tr, opts, &verified);
    lowering.run();

    // The verifier decorates; it must not add, drop, or reorder work.
    EXPECT_EQ(plain.issued, verified.issued);
    EXPECT_EQ(plain.begins, verified.begins);
    EXPECT_EQ(plain.ends, verified.ends);
    EXPECT_TRUE(rep.empty()) << rep.toText();
}

TEST(AnalysisPipeline, AnalyzeLoweredSkipsLoweringOnTraceErrors)
{
    Trace tr = validTrace();
    tr.ckksRingDim = 65537; // would make countr_zero-derived logN junk
    const auto rep =
        linter().analyzeLowered(tr, compiler::LoweringOptions{});
    EXPECT_GT(rep.errorCount(), 0u);
    for (const auto &d : rep.diagnostics())
        EXPECT_TRUE(d.rule.rfind("inst-", 0) != 0 &&
                    d.rule.rfind("buf-", 0) != 0)
            << "instruction-level rule " << d.rule
            << " emitted for a trace with header errors";
}

// ---------------------------------------------------------------------
// Committed fixture corpus: one file per file-expressible rule id; the
// filename stem is the rule the analyzer must report.

TEST(AnalysisFixtures, EachFixtureFiresExactlyItsRule)
{
    const std::vector<std::string> ruleFixtures = {
        "scheme-ckks-params", "scheme-tfhe-params", "scheme-ring-pow2",
        "limb-range",         "rescale-underflow",  "modraise-target",
        "fanin-misuse",       "fanin-missing",      "live-underflow",
        "working-set",
    };
    for (const auto &rule : ruleFixtures) {
        const std::string path =
            std::string(UFC_FIXTURE_DIR) + "/lint/" + rule + ".ufctrace";
        const Trace tr = trace::loadTrace(path);
        const auto rep = linter().analyze(tr);
        ASSERT_FALSE(rep.empty()) << path << " linted clean";
        for (const auto &d : rep.diagnostics()) {
            EXPECT_EQ(d.rule, rule) << path << ":\n" << rep.toText();
            EXPECT_EQ(d.severity, analysis::ruleSeverity(d.rule.c_str()));
        }
    }
}

// ---------------------------------------------------------------------
// Runner pre-flight (RunOptions::lintTraces).

TEST(AnalysisRunner, LintPreflightIsolatesCorruptTraceBitExactly)
{
    const auto cp = ckks::CkksParams::c2();
    const auto helr =
        std::make_shared<trace::Trace>(workloads::helr(cp, 2));
    const auto boot =
        std::make_shared<trace::Trace>(workloads::ckksBootstrapping(cp));
    // Seeded semantic corruption: parse-clean but chain-illegal.
    auto corruptTrace = workloads::ckksBootstrapping(cp);
    corruptTrace.name = "corrupt";
    corruptTrace.ops[0].limbs = 999;
    const auto corrupt =
        std::make_shared<trace::Trace>(std::move(corruptTrace));

    const auto model = std::make_shared<sim::UfcModel>();
    auto makeJobs = [&](bool lint) {
        sim::RunOptions opts;
        opts.lintTraces = lint;
        std::vector<runner::Job> jobs;
        jobs.push_back(runner::Job{"helr", model, helr, opts, ""});
        jobs.push_back(runner::Job{"corrupt", model, corrupt, opts, ""});
        jobs.push_back(runner::Job{"boot", model, boot, opts, ""});
        return jobs;
    };

    runner::RunnerConfig cfg;
    cfg.threads = 3;
    const runner::ExperimentRunner exec(cfg);

    // Without lint every job "succeeds" — the corrupt trace silently
    // mis-simulates, which is exactly the failure mode the pre-flight
    // exists to catch.
    const auto unlinted = exec.runAll(makeJobs(false));
    ASSERT_TRUE(unlinted.allOk());

    const auto linted = exec.runAll(makeJobs(true));
    ASSERT_EQ(linted.outcomes.size(), 3u);
    EXPECT_TRUE(linted.outcomes[0].ok());
    EXPECT_TRUE(linted.outcomes[2].ok());
    EXPECT_FALSE(linted.outcomes[1].ok());
    EXPECT_EQ(linted.outcomes[1].status, runner::JobStatus::Failed);
    EXPECT_EQ(linted.outcomes[1].errorKind, "TraceError");
    EXPECT_NE(linted.outcomes[1].message.find("limb-range"),
              std::string::npos)
        << linted.outcomes[1].message;

    // The healthy jobs' simulated results are bit-exact with and
    // without the pre-flight: linting observes, never perturbs.
    for (const std::size_t i : {std::size_t(0), std::size_t(2)}) {
        EXPECT_EQ(linted.results[i].stats.totalCycles,
                  unlinted.results[i].stats.totalCycles);
        EXPECT_EQ(linted.results[i].stats.instCount,
                  unlinted.results[i].stats.instCount);
        EXPECT_EQ(linted.results[i].stats.hbmBytes,
                  unlinted.results[i].stats.hbmBytes);
        EXPECT_EQ(linted.results[i].energyJ, unlinted.results[i].energyJ);
        EXPECT_EQ(linted.results[i].seconds, unlinted.results[i].seconds);
    }

    // A fully clean batch passes the pre-flight untouched.
    auto cleanJobs = makeJobs(true);
    cleanJobs.erase(cleanJobs.begin() + 1);
    EXPECT_TRUE(exec.runAll(cleanJobs).allOk());
}

} // namespace
} // namespace ufc
