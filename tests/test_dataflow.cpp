/**
 * @file
 * Tests for the dataflow & abstract-interpretation layer: CFG recovery
 * from both IRs, the worklist solvers, per-rule positive/negative pairs
 * for every df-* rule, the committed df-* fixture corpus, static
 * cost-bound soundness (differentially against the bytecode engine
 * across the full paper sweep), and the runner's dataflowLint /
 * boundsCheck gates (including results bit-identity).
 */

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/cost_bounds.h"
#include "analysis/dataflow.h"
#include "analysis/domains.h"
#include "common/error.h"
#include "compiler/bytecode.h"
#include "compiler/lowering.h"
#include "runner/runner.h"
#include "runner/sweeps.h"
#include "sim/accelerator.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using analysis::Analyzer;
using analysis::Cfg;
using analysis::CfgBlock;
using analysis::CostBounds;
using analysis::DiagnosticReport;
using trace::OpKind;
using trace::Trace;

const Analyzer &
linter()
{
    static const Analyzer a;
    return a;
}

std::set<std::string>
rulesIn(const DiagnosticReport &rep)
{
    std::set<std::string> out;
    for (const auto &d : rep.diagnostics())
        out.insert(d.rule);
    return out;
}

/** CKKS-parameterized empty trace; recipes push ops at levels relative
 *  to tr.ckksLevels so they track the parameter set. */
Trace
ckksTrace()
{
    Trace tr;
    tr.name = "dataflow_unit";
    workloads::setCkksParams(tr, ckks::CkksParams::c2());
    return tr;
}

// ---------------------------------------------------------------------
// Hand-built Programs (non-synthetic buffer ids unless a test says so:
// the lowering's ciphertext-pool ids model locality, and the value-flow
// rules skip them — see DataflowProgramRules.SyntheticIdsAreSkipped).

compiler::Program
progSkeleton(u32 spadSlots, double scratchpadBytes)
{
    compiler::Program p;
    p.workload = "dataflow_unit";
    p.machine = "unit";
    p.hbmBytesPerCycle = 8.0;
    p.scratchpadBytes = scratchpadBytes;
    p.spadSlots = spadSlots;
    return p;
}

struct Operand
{
    u32 slot;
    u64 id;
    double bytes;
    bool write;
};

u64
addMemInst(compiler::Program &p, const std::vector<Operand> &operands,
           double computeCycles = 10.0)
{
    compiler::BcInst inst;
    inst.kind = compiler::BcKind::Mem;
    inst.computeCycles = computeCycles;
    inst.bufBegin = static_cast<u32>(p.bufs.size());
    inst.bufCount = static_cast<u16>(operands.size());
    for (const Operand &o : operands) {
        compiler::BcBuf buf;
        buf.id = o.id;
        buf.bytes = o.bytes;
        buf.slot = o.slot;
        buf.write = o.write;
        p.bufs.push_back(buf);
    }
    p.code.push_back(inst);
    return p.code.size() - 1;
}

u64
addStreamInst(compiler::Program &p, double fetchBytes = 64.0,
              u16 runLen = 1)
{
    compiler::BcInst inst;
    inst.kind = compiler::BcKind::Stream;
    inst.computeCycles = 10.0;
    inst.staticFetchBytes = fetchBytes;
    inst.staticMemCycles = fetchBytes / p.hbmBytesPerCycle;
    inst.runLen = runLen;
    p.code.push_back(inst);
    return p.code.size() - 1;
}

DiagnosticReport
programReport(const compiler::Program &p)
{
    DiagnosticReport rep;
    analysis::runProgramDataflow(p, rep);
    return rep;
}

// ---------------------------------------------------------------------
// CFG recovery.

TEST(DataflowCfg, TraceCfgSplitsAtPhaseBoundaries)
{
    Trace tr = ckksTrace();
    const int l = tr.ckksLevels;
    tr.push(OpKind::CkksMult, l);
    tr.beginPhase("stage");
    tr.push(OpKind::CkksRescale, l);
    tr.push(OpKind::CkksRotate, l - 1, 1, 0, 3);
    tr.endPhase();
    tr.push(OpKind::CkksMult, l - 1);

    const Cfg cfg = analysis::cfgFromTrace(tr);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.blocks[0].begin, 0u);
    EXPECT_EQ(cfg.blocks[0].end, 1u);
    EXPECT_EQ(cfg.blocks[1].begin, 1u);
    EXPECT_EQ(cfg.blocks[1].end, 3u);
    EXPECT_EQ(cfg.blocks[2].begin, 3u);
    EXPECT_EQ(cfg.blocks[2].end, 4u);
    EXPECT_EQ(cfg.totalUnits(), 4u);

    // Fallthrough chain, no loops anywhere in a trace CFG.
    ASSERT_EQ(cfg.blocks[0].succs, std::vector<u32>{1});
    ASSERT_EQ(cfg.blocks[1].succs, std::vector<u32>{2});
    EXPECT_TRUE(cfg.blocks[2].succs.empty());
    for (const CfgBlock &b : cfg.blocks)
        EXPECT_FALSE(b.isLoop());

    // The middle block carries the phase attribution.
    EXPECT_EQ(cfg.blocks[0].phase, -1);
    ASSERT_GE(cfg.blocks[1].phase, 0);
    EXPECT_EQ(cfg.phaseNames[static_cast<std::size_t>(
                  cfg.blocks[1].phase)],
              "stage");
    EXPECT_EQ(cfg.blocks[2].phase, -1);
}

TEST(DataflowCfg, ProgramCfgLoopBodyCarriesTripsAndSelfEdge)
{
    compiler::Program p = progSkeleton(0, 0.0);
    for (int i = 0; i < 4; ++i)
        addStreamInst(p);
    p.loops.push_back(compiler::BcLoop{3, 2, 5}); // body [1, 3) x5

    const Cfg cfg = analysis::cfgFromProgram(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.blocks[1].begin, 1u);
    EXPECT_EQ(cfg.blocks[1].end, 3u);
    EXPECT_EQ(cfg.blocks[1].trips, 5u);
    EXPECT_TRUE(cfg.blocks[1].isLoop());
    // The body's self back edge, on top of the fallthrough chain.
    EXPECT_NE(std::find(cfg.blocks[1].succs.begin(),
                        cfg.blocks[1].succs.end(), 1u),
              cfg.blocks[1].succs.end());
    // totalUnits weights the body by its trips: 1 + 2*5 + 1.
    EXPECT_EQ(cfg.totalUnits(), 12u);
}

TEST(DataflowCfg, ComposedProgramIsRejected)
{
    compiler::Program p = progSkeleton(0, 0.0);
    p.parts.emplace_back();
    EXPECT_THROW(analysis::cfgFromProgram(p), ConfigError);
}

// ---------------------------------------------------------------------
// Worklist solvers.

/** Three-block diamondless chain with a self loop on block 1. */
Cfg
loopyCfg()
{
    Cfg cfg;
    cfg.blocks.resize(3);
    for (u32 b = 0; b < 3; ++b) {
        cfg.blocks[b].begin = b;
        cfg.blocks[b].end = b + 1;
    }
    cfg.blocks[0].succs = {1};
    cfg.blocks[1].preds = {0, 1};
    cfg.blocks[1].succs = {1, 2};
    cfg.blocks[1].trips = 4;
    cfg.blocks[2].preds = {1};
    return cfg;
}

TEST(DataflowSolver, ForwardFixpointPropagatesThroughLoop)
{
    const Cfg cfg = loopyCfg();
    using State = u32; // bitmask of blocks on some path to the entry
    const auto meet = [](State &into, const State &from) {
        const State merged = into | from;
        const bool changed = merged != into;
        into = merged;
        return changed;
    };
    const auto transfer = [](u32 b, const State &in) {
        return in | (1u << b);
    };
    const std::vector<State> in = analysis::solveForward(
        cfg, State(1u << 31), State(0), meet, transfer);
    ASSERT_EQ(in.size(), 3u);
    EXPECT_EQ(in[0], 1u << 31);            // entry untouched
    EXPECT_EQ(in[1], (1u << 31) | 3u);     // via block 0 and itself
    EXPECT_EQ(in[2], (1u << 31) | 3u);     // everything upstream
}

TEST(DataflowSolver, BackwardFixpointPropagatesThroughLoop)
{
    const Cfg cfg = loopyCfg();
    using State = u32;
    const auto meet = [](State &into, const State &from) {
        const State merged = into | from;
        const bool changed = merged != into;
        into = merged;
        return changed;
    };
    const auto transfer = [](u32 b, const State &out) {
        return out | (1u << b);
    };
    const std::vector<State> out = analysis::solveBackward(
        cfg, State(1u << 31), State(0), meet, transfer);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[2], 1u << 31);           // exit untouched
    EXPECT_EQ(out[1], (1u << 31) | 6u);    // via block 2 and itself
    EXPECT_EQ(out[0], (1u << 31) | 6u);
}

TEST(DataflowSolver, NonConvergingDomainThrowsInsteadOfHanging)
{
    const Cfg cfg = loopyCfg();
    // A "meet" that always reports change never converges on the self
    // loop; the visit cap must turn that into a typed error.
    const auto meet = [](u64 &into, const u64 &from) {
        into = from + 1;
        return true;
    };
    const auto transfer = [](u32, const u64 &in) { return in; };
    EXPECT_THROW(
        analysis::solveForward(cfg, u64(0), u64(0), meet, transfer),
        SimError);
}

// ---------------------------------------------------------------------
// Trace-level df-* rules: one positive/negative pair per rule.

TEST(DataflowTraceRules, ChainUnderflowPositiveAndNegative)
{
    Trace bad = ckksTrace();
    bad.push(OpKind::CkksMult, 3); // nothing ever reaches level 3
    const auto badRules = rulesIn(linter().analyzeDataflow(bad));
    EXPECT_TRUE(badRules.count("df-chain-underflow")) << bad.name;

    Trace good = ckksTrace();
    const int l = good.ckksLevels;
    good.push(OpKind::CkksMult, l);
    good.push(OpKind::CkksRescale, l);
    good.push(OpKind::CkksMultPlain, l - 1); // level l-1 fed by rescale
    const auto goodRules = rulesIn(linter().analyzeDataflow(good));
    EXPECT_FALSE(goodRules.count("df-chain-underflow"));
    EXPECT_TRUE(linter().analyzeDataflow(good).empty());
}

TEST(DataflowTraceRules, ChainUnderflowSeesThroughModRaiseAndRepack)
{
    // A repack publishes its level even with nothing else producing it.
    Trace tr = ckksTrace();
    workloads::setTfheParams(tr, tfhe::TfheParams::t3());
    tr.push(OpKind::SwitchRepack, 5);
    tr.push(OpKind::CkksMultPlain, 5);
    EXPECT_FALSE(
        rulesIn(linter().analyzeDataflow(tr)).count("df-chain-underflow"));
}

TEST(DataflowTraceRules, DoubleRescalePositiveAndNegative)
{
    Trace bad = ckksTrace();
    bad.push(OpKind::CkksRescale, bad.ckksLevels); // nothing pending
    EXPECT_TRUE(
        rulesIn(linter().analyzeDataflow(bad)).count("df-double-rescale"));

    Trace good = ckksTrace();
    good.push(OpKind::CkksMult, good.ckksLevels);
    good.push(OpKind::CkksRescale, good.ckksLevels);
    EXPECT_TRUE(linter().analyzeDataflow(good).empty());
}

TEST(DataflowTraceRules, MissedRescalePositiveAndNegative)
{
    Trace bad = ckksTrace();
    const int l = bad.ckksLevels;
    bad.push(OpKind::CkksMult, l);
    bad.push(OpKind::CkksRescale, l);
    bad.push(OpKind::CkksMult, l - 1); // consumes the lone rescale output
    bad.push(OpKind::CkksMult, l - 1); // no operands, product pending
    EXPECT_TRUE(
        rulesIn(linter().analyzeDataflow(bad)).count("df-missed-rescale"));

    Trace good = ckksTrace();
    good.push(OpKind::CkksMult, l);
    good.push(OpKind::CkksRescale, l);
    good.push(OpKind::CkksMult, l - 1);
    good.push(OpKind::CkksRescale, l - 1); // rescale between products
    good.push(OpKind::CkksMult, l - 2);
    EXPECT_TRUE(linter().analyzeDataflow(good).empty());
}

TEST(DataflowTraceRules, ScaleMismatchPositiveAndNegative)
{
    Trace bad = ckksTrace();
    const int l = bad.ckksLevels;
    bad.push(OpKind::CkksMult, l);
    bad.push(OpKind::CkksRescale, l);
    bad.push(OpKind::CkksMultPlain, l - 1); // drains the level's supply
    bad.push(OpKind::CkksRescale, l - 1);
    bad.push(OpKind::CkksAdd, l - 1); // nothing left at l-1
    EXPECT_TRUE(
        rulesIn(linter().analyzeDataflow(bad)).count("df-scale-mismatch"));

    Trace good = ckksTrace();
    good.push(OpKind::CkksMult, l);
    good.push(OpKind::CkksRescale, l);
    good.push(OpKind::CkksRotate, l - 1, 1, 0, 3); // replenishes supply
    good.push(OpKind::CkksAdd, l - 1);
    EXPECT_TRUE(linter().analyzeDataflow(good).empty());
}

TEST(DataflowTraceRules, DataflowPassesSkipWhenBaseReportHasErrors)
{
    Trace bad = ckksTrace();
    bad.push(OpKind::CkksMult, 3);
    bad.ops.push_back(trace::TraceOp{OpKind::CkksMult, 999, 1, 0, 0});
    const auto rules = rulesIn(linter().analyzeDataflow(bad));
    EXPECT_TRUE(rules.count("limb-range"));
    // Garbage levels must not feed the abstract domains.
    EXPECT_FALSE(rules.count("df-chain-underflow"));
}

// ---------------------------------------------------------------------
// Program-level df-* rules over hand-built bytecode.

TEST(DataflowProgramRules, UseBeforeDefPositiveAndNegative)
{
    compiler::Program bad = progSkeleton(2, 4096.0);
    addMemInst(bad, {{0, 7, 100.0, false}}); // read before ...
    addMemInst(bad, {{0, 7, 100.0, true}});  // ... the defining write
    EXPECT_TRUE(
        rulesIn(programReport(bad)).count("df-slot-use-before-def"));

    compiler::Program good = progSkeleton(2, 4096.0);
    addMemInst(good, {{0, 7, 100.0, true}});
    addMemInst(good, {{0, 7, 100.0, false}});
    EXPECT_TRUE(programReport(good).empty());
}

TEST(DataflowProgramRules, ReadOnlySlotsNeverFlagUseBeforeDef)
{
    // Evaluation keys are fetched from HBM on miss and never written by
    // the program: read-only slots are legal.
    compiler::Program p = progSkeleton(1, 4096.0);
    addMemInst(p, {{0, 9, 100.0, false}});
    addMemInst(p, {{0, 9, 100.0, false}});
    EXPECT_TRUE(programReport(p).empty());
}

TEST(DataflowProgramRules, DeadStorePositiveAndNegative)
{
    compiler::Program bad = progSkeleton(1, 4096.0);
    addMemInst(bad, {{0, 7, 100.0, true}}); // overwritten before a read
    addMemInst(bad, {{0, 7, 100.0, true}});
    addMemInst(bad, {{0, 7, 100.0, false}});
    const auto rep = programReport(bad);
    EXPECT_TRUE(rulesIn(rep).count("df-slot-dead-store"));
    // Exactly the first write is dead.
    ASSERT_EQ(rep.diagnostics().size(), 1u);
    EXPECT_EQ(rep.diagnostics()[0].opIndex, 0);

    // Final writes are program outputs: the exit state keeps every slot
    // live, so a trailing write is never flagged.
    compiler::Program good = progSkeleton(1, 4096.0);
    addMemInst(good, {{0, 7, 100.0, true}});
    addMemInst(good, {{0, 7, 100.0, false}});
    addMemInst(good, {{0, 7, 100.0, true}});
    EXPECT_TRUE(programReport(good).empty());
}

TEST(DataflowProgramRules, SpadOvercommitPositiveAndNegative)
{
    compiler::Program bad = progSkeleton(2, 150.0);
    addMemInst(bad, {{0, compiler::kCtBase + 1, 100.0, false},
                     {1, compiler::kCtBase + 2, 100.0, false}});
    // Traffic rules count synthetic-ciphertext accesses too.
    EXPECT_TRUE(rulesIn(programReport(bad)).count("df-spad-overcommit"));

    compiler::Program good = progSkeleton(2, 4096.0);
    addMemInst(good, {{0, compiler::kCtBase + 1, 100.0, false},
                      {1, compiler::kCtBase + 2, 100.0, false}});
    EXPECT_TRUE(programReport(good).empty());
}

TEST(DataflowProgramRules, FuseMemdepPositiveAndNegative)
{
    compiler::Program bad = progSkeleton(1, 4096.0);
    addStreamInst(bad, 64.0, 2);             // run head claims 2 insts
    addMemInst(bad, {{0, 7, 100.0, false}}); // cached operand inside
    EXPECT_TRUE(rulesIn(programReport(bad)).count("df-fuse-memdep"));

    compiler::Program good = progSkeleton(0, 4096.0);
    addStreamInst(good, 64.0, 2);
    addStreamInst(good);
    EXPECT_TRUE(programReport(good).empty());
}

TEST(DataflowProgramRules, LoopMemdepPositiveAndNegative)
{
    compiler::Program bad = progSkeleton(1, 4096.0);
    addStreamInst(bad);
    addMemInst(bad, {{0, 7, 100.0, false}});
    bad.loops.push_back(compiler::BcLoop{2, 1, 3}); // body = the Mem inst
    EXPECT_TRUE(rulesIn(programReport(bad)).count("df-loop-memdep"));

    compiler::Program good = progSkeleton(0, 4096.0);
    addStreamInst(good);
    addStreamInst(good);
    good.loops.push_back(compiler::BcLoop{2, 1, 3});
    EXPECT_TRUE(programReport(good).empty());
}

TEST(DataflowProgramRules, SyntheticCiphertextIdsAreSkippedByValueFlow)
{
    // Identical shape to the use-before-def positive, but the buffer id
    // sits in the lowering's pseudorandom ciphertext pool — def-use
    // order there is the locality model rolling dice, not value flow.
    compiler::Program p = progSkeleton(2, 4096.0);
    addMemInst(p, {{0, compiler::kCtBase + 5, 100.0, false}});
    addMemInst(p, {{0, compiler::kCtBase + 5, 100.0, true}});
    EXPECT_TRUE(programReport(p).empty());

    EXPECT_TRUE(compiler::syntheticCiphertextId(compiler::kCtBase));
    EXPECT_FALSE(compiler::syntheticCiphertextId(compiler::kEvkBase));
    EXPECT_FALSE(compiler::syntheticCiphertextId(7));
}

TEST(DataflowProgramRules, ComposedProgramsRecurseIntoParts)
{
    compiler::Program outer = progSkeleton(0, 0.0);
    compiler::Program part = progSkeleton(2, 4096.0);
    addMemInst(part, {{0, 7, 100.0, false}});
    addMemInst(part, {{0, 7, 100.0, true}});
    outer.parts.push_back(std::move(part));
    EXPECT_TRUE(
        rulesIn(programReport(outer)).count("df-slot-use-before-def"));
}

// ---------------------------------------------------------------------
// Builtins are dataflow-clean end to end (trace + compiled Program).

TEST(DataflowPipeline, BuiltinCkksSuiteIsDataflowClean)
{
    const sim::UfcModel model;
    for (const Trace &tr : workloads::ckksSuite(ckks::CkksParams::c2())) {
        const compiler::Program program = model.compile(tr);
        const DiagnosticReport rep =
            linter().analyzeDataflow(tr, program);
        EXPECT_TRUE(rep.empty()) << tr.name << ":\n" << rep.toText();
    }
}

TEST(DataflowPipeline, BuiltinTfheSuiteIsDataflowCleanOnUfc)
{
    const sim::UfcModel model;
    for (const Trace &tr : workloads::tfheSuite(tfhe::TfheParams::t3())) {
        const compiler::Program program = model.compile(tr);
        const DiagnosticReport rep =
            linter().analyzeDataflow(tr, program);
        EXPECT_TRUE(rep.empty()) << tr.name << ":\n" << rep.toText();
    }
}

TEST(DataflowPipeline, StrixPbsOvercommitsItsScratchpad)
{
    // A real finding, kept as a characterization test: one PBS
    // bootstrap-key operand (~29 MB at T3) exceeds Strix's 16 MiB
    // scratchpad, so the operand can never be resident and every touch
    // streams.  UFC's larger scratchpad absorbs it (test above).
    const sim::StrixModel model;
    const Trace tr = workloads::pbsThroughput(tfhe::TfheParams::t3());
    const DiagnosticReport rep =
        linter().analyzeDataflow(tr, model.compile(tr));
    EXPECT_EQ(rep.errorCount(), 0u) << rep.toText();
    EXPECT_TRUE(rulesIn(rep).count("df-spad-overcommit"))
        << rep.toText();
}

// ---------------------------------------------------------------------
// Static cost bounds.

TEST(DataflowBounds, FittingWorkingSetMakesHbmBoundsExact)
{
    compiler::Program p = progSkeleton(1, 4096.0);
    addMemInst(p, {{0, 7, 100.0, false}}, 50.0);
    const CostBounds b = analysis::analyzeCostBounds(p);
    EXPECT_TRUE(b.fits);
    // First-touch read only, no writeback: exact up to the guard band.
    EXPECT_NEAR(b.hbmLower, 100.0, 1e-3);
    EXPECT_NEAR(b.hbmUpper, 100.0, 1e-3);
    EXPECT_LE(b.hbmLower, b.hbmUpper);
    EXPECT_NEAR(b.computeCycles, 50.0, 1e-9);
    EXPECT_GE(b.cyclesUpper, b.cyclesLower);
    EXPECT_NEAR(b.peakLiveSlotBytes, 100.0, 1e-9);
}

TEST(DataflowBounds, OverflowingWorkingSetWidensHbmBounds)
{
    compiler::Program p = progSkeleton(2, 150.0);
    // Two slots that cannot co-reside, re-read: reads may hit or miss.
    addMemInst(p, {{0, 7, 100.0, false}});
    addMemInst(p, {{1, 8, 100.0, false}});
    addMemInst(p, {{0, 7, 100.0, false}});
    const CostBounds b = analysis::analyzeCostBounds(p);
    EXPECT_FALSE(b.fits);
    EXPECT_LT(b.hbmLower, b.hbmUpper);
    EXPECT_NEAR(b.hbmLower, 200.0, 1e-3); // first touch of both slots
    EXPECT_NEAR(b.hbmUpper, 300.0, 1e-3); // every read misses
}

TEST(DataflowBounds, LoopTripsWeighTheBounds)
{
    compiler::Program p = progSkeleton(0, 0.0);
    addStreamInst(p, 80.0); // 10 compute + 10 mem cycles at 8 B/cycle
    compiler::Program looped = progSkeleton(0, 0.0);
    addStreamInst(looped, 80.0);
    looped.loops.push_back(compiler::BcLoop{1, 1, 4});

    const CostBounds once = analysis::analyzeCostBounds(p);
    const CostBounds four = analysis::analyzeCostBounds(looped);
    EXPECT_NEAR(four.computeCycles, 4.0 * once.computeCycles, 1e-6);
    EXPECT_NEAR(four.hbmUpper, 4.0 * once.hbmUpper, 1e-3);
}

TEST(DataflowBounds, BoundsBracketTheEngineOnABuiltin)
{
    const sim::UfcModel model;
    const Trace tr = workloads::helr(ckks::CkksParams::c2(), 2);
    const compiler::Program program = model.compile(tr);
    const CostBounds b = analysis::analyzeCostBounds(program);
    const sim::RunResult r = model.execute(program);
    EXPECT_LE(b.cyclesLower, r.stats.totalCycles);
    EXPECT_LE(r.stats.totalCycles, b.cyclesUpper);
    EXPECT_LE(b.hbmLower, r.stats.hbmBytes);
    EXPECT_LE(r.stats.hbmBytes, b.hbmUpper);
    EXPECT_GT(b.cyclesLower, 0.0);
    EXPECT_GT(b.hbmLower, 0.0);
}

// ---------------------------------------------------------------------
// Runner gates: soundness across the full paper sweep, results
// bit-identity, and the pre-flight failure path.

TEST(DataflowRunner, BoundsHoldAcrossFullPaperSweepBitIdentically)
{
    std::vector<runner::Job> plain =
        runner::allJobs(runner::paperSweeps());
    std::vector<runner::Job> gated = plain;
    for (runner::Job &j : gated) {
        j.options.dataflowLint = true;
        j.options.boundsCheck = true;
    }

    runner::RunnerConfig cfg;
    cfg.measureHostTime = false; // host time is the one legal delta
    const runner::ExperimentRunner exec(cfg);
    const runner::BatchResult base = exec.runAll(plain);
    const runner::BatchResult audited = exec.runAll(gated);

    ASSERT_TRUE(base.allOk());
    ASSERT_TRUE(audited.allOk());
    ASSERT_EQ(base.results.size(), audited.results.size());
    for (std::size_t i = 0; i < base.results.size(); ++i) {
        // The gates observe, never perturb: full serialized records are
        // bit-identical.
        EXPECT_EQ(base.results[i].toJson(), audited.results[i].toJson())
            << plain[i].label;

        const runner::JobOutcome &o = audited.outcomes[i];
        EXPECT_TRUE(o.boundsChecked) << plain[i].label;
        EXPECT_GT(o.cyclesLower, 0.0) << plain[i].label;
        EXPECT_LE(o.cyclesLower, audited.results[i].stats.totalCycles)
            << plain[i].label;
        EXPECT_LE(audited.results[i].stats.totalCycles, o.cyclesUpper)
            << plain[i].label;
        EXPECT_LE(o.hbmLower, audited.results[i].stats.hbmBytes)
            << plain[i].label;
        EXPECT_LE(audited.results[i].stats.hbmBytes, o.hbmUpper)
            << plain[i].label;
    }
}

TEST(DataflowRunner, DataflowLintPreflightFailsOnlyTheBadJob)
{
    const auto model = std::make_shared<sim::UfcModel>();
    const auto good = std::make_shared<Trace>(
        workloads::helr(ckks::CkksParams::c2(), 2));
    Trace badTrace = ckksTrace();
    badTrace.name = "chain_underflow";
    badTrace.push(OpKind::CkksMult, 3);
    const auto bad = std::make_shared<Trace>(std::move(badTrace));

    sim::RunOptions opts;
    opts.dataflowLint = true;
    std::vector<runner::Job> jobs;
    jobs.push_back(runner::Job{"good", model, good, opts, ""});
    jobs.push_back(runner::Job{"bad", model, bad, opts, ""});

    const runner::BatchResult batch =
        runner::ExperimentRunner(runner::RunnerConfig{}).runAll(jobs);
    ASSERT_EQ(batch.outcomes.size(), 2u);
    EXPECT_TRUE(batch.outcomes[0].ok());
    EXPECT_FALSE(batch.outcomes[1].ok());
    EXPECT_EQ(batch.outcomes[1].errorKind, "TraceError");
    EXPECT_NE(batch.outcomes[1].message.find("df-chain-underflow"),
              std::string::npos)
        << batch.outcomes[1].message;
}

TEST(DataflowRunner, BoundsCheckRejectsTraceIrModeUpFront)
{
    sim::RunOptions opts;
    opts.boundsCheck = true;
    opts.execMode = sim::ExecMode::TraceIr;
    EXPECT_THROW(sim::validateRunOptions(opts), ConfigError);
}

// ---------------------------------------------------------------------
// Committed df-* fixture corpus: each file flags exactly its rule id.

TEST(DataflowFixtures, CorpusFilesFlagTheirNamedRule)
{
    const std::vector<std::string> rules = {
        "df-chain-underflow",
        "df-double-rescale",
        "df-missed-rescale",
        "df-scale-mismatch",
    };
    for (const std::string &rule : rules) {
        const std::string path =
            std::string(UFC_FIXTURE_DIR) + "/lint/" + rule + ".ufctrace";
        const Trace tr = trace::loadTrace(path);
        const DiagnosticReport rep = linter().analyzeDataflow(tr);
        const auto present = rulesIn(rep);
        EXPECT_TRUE(present.count(rule)) << path << ":\n" << rep.toText();
        for (const auto &d : rep.diagnostics())
            EXPECT_EQ(d.rule, rule) << path << ":\n" << rep.toText();
    }
}

} // namespace
} // namespace ufc
