/**
 * @file
 * Observability-layer tests: per-opcode attribution invariants, stall
 * accounting, the Chrome trace-event (Perfetto) timeline export, the
 * prefetch-window sentinel, the host profiler, and the guarantee that
 * turning observation on changes no simulated result.
 */

#include <cctype>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/prof.h"
#include "runner/runner.h"
#include "sim/accelerator.h"
#include "sim/engine.h"
#include "sim/timeline.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using sim::RunOptions;
using sim::RunResult;
using sim::Timeline;

/** A small hybrid trace exercising both schemes and phase markers. */
trace::Trace
smallHybridTrace()
{
    return workloads::hybridKnn(ckks::CkksParams::c2(),
                                tfhe::TfheParams::t1(), 256, 16, 4);
}

double
opCycleSum(const sim::RunStats &stats)
{
    double sum = 0.0;
    for (const auto &op : stats.opStats)
        sum += op.cycles;
    return sum;
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough to assert the
// exported trace is well-formed without a JSON dependency.
// ---------------------------------------------------------------------

struct JsonCursor
{
    const std::string &s;
    size_t i = 0;

    void skipWs()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }
    bool eat(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    bool value(); // forward
    bool string()
    {
        if (!eat('"'))
            return false;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\')
                ++i;
            ++i;
        }
        return eat('"');
    }
    bool number()
    {
        skipWs();
        const size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '-' ||
                s[i] == '+'))
            ++i;
        return i > start;
    }
    bool object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        do {
            if (!string() || !eat(':') || !value())
                return false;
        } while (eat(','));
        return eat('}');
    }
    bool array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        do {
            if (!value())
                return false;
        } while (eat(','));
        return eat(']');
    }
};

bool
JsonCursor::value()
{
    skipWs();
    if (i >= s.size())
        return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': i += 4; return true;
      case 'f': i += 5; return true;
      case 'n': i += 4; return true;
      default: return number();
    }
}

bool
validJson(const std::string &text)
{
    JsonCursor c{text};
    if (!c.value())
        return false;
    c.skipWs();
    return c.i >= text.size();
}

// ---------------------------------------------------------------------
// Attribution invariants
// ---------------------------------------------------------------------

TEST(Observability, PerOpcodeCyclesSumToTotalExactly)
{
    const auto tr = smallHybridTrace();
    const auto ckksTr =
        workloads::ckksBootstrapping(ckks::CkksParams::c2());
    const auto tfheTr =
        workloads::pbsThroughput(tfhe::TfheParams::t1(), 32);
    // Exact by construction: finish() defines totalCycles as this sum.
    // Holds for every single-engine machine (the baselines only accept
    // their own scheme's operations).
    for (const RunResult &r :
         {sim::UfcModel().run(tr), sim::SharpModel().run(ckksTr),
          sim::StrixModel().run(tfheTr)}) {
        EXPECT_EQ(opCycleSum(r.stats), r.stats.totalCycles) << r.machine;
        EXPECT_GT(r.stats.totalCycles, 0.0) << r.machine;
    }
    // The composed machine merges two engines' tables; the reordered sum
    // may differ by ulps but no more.
    const RunResult c = sim::ComposedModel().run(tr);
    EXPECT_NEAR(opCycleSum(c.stats), c.stats.totalCycles,
                1e-9 * c.stats.totalCycles);
}

TEST(Observability, PerOpRowsDecomposeAndStallsBalance)
{
    const auto tr = smallHybridTrace();
    const RunResult r = sim::UfcModel().run(tr);

    double stallSum = 0.0, fillSum = 0.0;
    u64 countSum = 0;
    for (const auto &o : r.stats.opStats) {
        // Each row: cycles = compute + stall + fill (accumulated in the
        // same order per instruction, so equality is near-exact).
        EXPECT_NEAR(o.cycles,
                    o.computeCycles + o.stallCycles + o.fillCycles,
                    1e-6 * std::max(1.0, o.cycles));
        EXPECT_GE(o.stallCycles, 0.0);
        stallSum += o.stallCycles;
        fillSum += o.fillCycles;
        countSum += o.count;
    }
    EXPECT_EQ(countSum, r.stats.instCount);
    // Stall causes partition the waits; fill matches the per-op fill.
    EXPECT_NEAR(r.stats.stalls.hbmBound + r.stats.stalls.dependency,
                stallSum, 1e-6 * std::max(1.0, stallSum));
    EXPECT_NEAR(r.stats.stalls.pipelineFill, fillSum,
                1e-6 * std::max(1.0, fillSum));
    EXPECT_GE(r.stats.stalls.hbmBound, 0.0);
    EXPECT_GE(r.stats.stalls.dependency, 0.0);
    // The hybrid workload misses in the scratchpad, so stall accounting
    // has something to attribute.
    EXPECT_GT(r.stats.stalls.hbmBound, 0.0);
}

TEST(Observability, BreakdownSurvivesJsonAndCsvWithV1KeysUnchanged)
{
    const auto tr = smallHybridTrace();
    const RunResult r = sim::UfcModel().run(tr);

    const std::string json = r.toJson();
    EXPECT_TRUE(validJson(json)) << json.substr(0, 200);
    EXPECT_NE(json.find("\"schema\":\"ufc.runresult/v2\""),
              std::string::npos);
    // v1 keys all still present.
    for (const char *key :
         {"\"label\":", "\"machine\":", "\"workload\":", "\"seconds\":",
          "\"energy_j\":", "\"power_w\":", "\"area_mm2\":", "\"edp\":",
          "\"edap\":", "\"host_seconds\":", "\"total_cycles\":",
          "\"inst_count\":", "\"hbm_bytes\":", "\"spad_hit_bytes\":",
          "\"hbm_utilization\":", "\"pe_utilization\":",
          "\"utilization\":"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // v2 block present.
    for (const char *key :
         {"\"breakdown\":", "\"stalls\":", "\"hbm_bound\":",
          "\"dependency\":", "\"pipeline_fill\":", "\"per_op\":",
          "\"energy\":", "\"static_j\":", "\"hbm_j\":", "\"dynamic_j\":"})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    // CSV: header and row agree on column count; v1 columns lead.
    const std::string header = RunResult::csvHeader();
    const std::string row = r.toCsvRow();
    const auto count = [](const std::string &s) {
        size_t n = 1;
        bool quoted = false;
        for (char c : s) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_EQ(header.rfind("label,machine,workload,seconds,", 0), 0u);
    EXPECT_NE(header.find("stall_hbm_bound"), std::string::npos);
    EXPECT_NE(header.find("cycles_ntt"), std::string::npos);

    // Compact rows pad the same number of columns.
    RunResult compact = r;
    compact.verbosity = sim::StatsVerbosity::Compact;
    EXPECT_EQ(count(compact.toCsvRow()), count(header));
}

TEST(Observability, EnergySplitIsConsistent)
{
    const auto tr = smallHybridTrace();
    const RunResult r = sim::UfcModel().run(tr);
    EXPECT_GT(r.energyStaticJ, 0.0);
    EXPECT_GT(r.energyHbmJ, 0.0);
    EXPECT_GT(r.energyDynamicJ(), 0.0);
    EXPECT_LT(r.energyStaticJ + r.energyHbmJ, r.energyJ);
    // Per-opcode energies sum back to the total (shares sum to 1).
    double sum = 0.0;
    for (int i = 0; i < isa::kNumHwOps; ++i)
        sum += r.opEnergyJ(static_cast<isa::HwOp>(i));
    EXPECT_NEAR(sum, r.energyJ, 1e-9 * r.energyJ);
}

// ---------------------------------------------------------------------
// Timeline / Perfetto export
// ---------------------------------------------------------------------

TEST(Observability, TimelineExportIsValidStableAndNested)
{
    const auto tr = smallHybridTrace();
    const sim::UfcModel model;

    Timeline timeline;
    RunOptions opts;
    opts.timeline = &timeline;
    const RunResult r = model.run(tr, opts);

    ASSERT_FALSE(timeline.empty());
    EXPECT_EQ(timeline.openPhaseDepth(), 0u);

    // Slices are sane: non-negative durations, monotonic per track, and
    // every phase nests strictly within any enclosing phase.
    std::vector<double> lastEnd(Timeline::kNumTracks, 0.0);
    for (const auto &s : timeline.slices()) {
        ASSERT_GE(s.track, 0);
        ASSERT_LT(s.track, Timeline::kNumTracks);
        EXPECT_LE(s.beginCycle, s.endCycle);
        EXPECT_FALSE(s.name.empty());
        if (s.track != Timeline::kPhaseTrack) {
            // Resource/HBM lanes never overlap (in-order engines).
            EXPECT_GE(s.beginCycle, lastEnd[s.track] - 1e-9);
            lastEnd[s.track] = s.endCycle;
        }
    }
    // Phase nesting: a slice at depth d+1 recorded before the enclosing
    // depth-d slice closes must lie inside it.  Completed-slice order is
    // close-time order, so scan backwards for enclosure.
    const auto &slices = timeline.slices();
    for (size_t i = 0; i < slices.size(); ++i) {
        if (slices[i].track != Timeline::kPhaseTrack ||
            slices[i].depth == 0)
            continue;
        bool enclosed = false;
        for (size_t j = i + 1; j < slices.size(); ++j) {
            if (slices[j].track != Timeline::kPhaseTrack ||
                slices[j].depth != slices[i].depth - 1)
                continue;
            if (slices[j].beginCycle <= slices[i].beginCycle + 1e-9 &&
                slices[j].endCycle >= slices[i].endCycle - 1e-9) {
                enclosed = true;
                break;
            }
        }
        EXPECT_TRUE(enclosed)
            << slices[i].name << " [" << slices[i].beginCycle << ", "
            << slices[i].endCycle << ") depth " << slices[i].depth;
    }

    // Workload phases made it through the compiler into the timeline.
    std::vector<std::string> phaseNames;
    for (const auto &s : slices)
        if (s.track == Timeline::kPhaseTrack)
            phaseNames.push_back(s.name);
    const auto has = [&](const char *n) {
        for (const auto &p : phaseNames)
            if (p == n)
                return true;
        return false;
    };
    EXPECT_TRUE(has("bootstrap"));
    EXPECT_TRUE(has("key_switch"));
    EXPECT_TRUE(has("blind_rotate"));
    EXPECT_TRUE(has("ckks_distance"));
    EXPECT_TRUE(has("tfhe_topk"));

    // The JSON export parses, is stable across exports, and still
    // matches a run repeated from scratch (golden-stability property).
    std::ostringstream os1, os2;
    timeline.writeChromeTrace(os1);
    timeline.writeChromeTrace(os2);
    EXPECT_EQ(os1.str(), os2.str());
    EXPECT_TRUE(validJson(os1.str()));
    EXPECT_NE(os1.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(os1.str().find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(os1.str().find("\"thread_name\""), std::string::npos);

    Timeline timeline2;
    RunOptions opts2;
    opts2.timeline = &timeline2;
    const RunResult r2 = model.run(tr, opts2);
    std::ostringstream os3;
    timeline2.writeChromeTrace(os3);
    EXPECT_EQ(os1.str(), os3.str());
    EXPECT_EQ(r.stats.totalCycles, r2.stats.totalCycles);

    // Per-opcode cycles still sum to the run total with recording on.
    EXPECT_EQ(opCycleSum(r.stats), r.stats.totalCycles);
}

TEST(Observability, PhaseMarksRoundTripThroughTraceSerialization)
{
    const auto tr = smallHybridTrace();
    ASSERT_FALSE(tr.phases.empty());
    std::ostringstream os;
    trace::writeTrace(tr, os);
    std::istringstream is(os.str());
    const auto back = trace::readTrace(is);
    ASSERT_EQ(back.phases.size(), tr.phases.size());
    for (size_t i = 0; i < tr.phases.size(); ++i) {
        EXPECT_EQ(back.phases[i].opIndex, tr.phases[i].opIndex);
        EXPECT_EQ(back.phases[i].name, tr.phases[i].name);
        EXPECT_EQ(back.phases[i].begin, tr.phases[i].begin);
    }
    // And a phase-bearing trace simulates identically after the trip.
    const sim::UfcModel model;
    EXPECT_EQ(model.run(tr).stats.totalCycles,
              model.run(back).stats.totalCycles);
}

// ---------------------------------------------------------------------
// Observation changes nothing (determinism)
// ---------------------------------------------------------------------

TEST(Observability, InstrumentedRunIsBitIdenticalSerialAndParallel)
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t1();
    const auto knn =
        std::make_shared<trace::Trace>(smallHybridTrace());
    const auto boot =
        std::make_shared<trace::Trace>(workloads::ckksBootstrapping(cp));
    const auto pbs =
        std::make_shared<trace::Trace>(workloads::pbsThroughput(tp, 64));
    const auto ufcm = std::make_shared<sim::UfcModel>();

    std::vector<runner::Job> jobs;
    jobs.push_back({"knn", ufcm, knn, RunOptions{}, ""});
    jobs.push_back({"boot", ufcm, boot, RunOptions{}, ""});
    jobs.push_back({"pbs", ufcm, pbs, RunOptions{}, ""});

    // Baseline: uninstrumented, serial.
    runner::RunnerConfig serialCfg;
    serialCfg.threads = 1;
    const auto baseline = runner::ExperimentRunner(serialCfg).run(jobs);

    // Instrumented: host profiler on, a timeline per job, parallel
    // execution with progress lines.
    prof::setEnabled(true);
    std::vector<Timeline> timelines(jobs.size());
    auto instrumented = jobs;
    for (size_t i = 0; i < jobs.size(); ++i)
        instrumented[i].options.timeline = &timelines[i];
    runner::RunnerConfig parCfg;
    parCfg.threads = 3;
    parCfg.progress = true;
    testing::internal::CaptureStderr();
    const auto observed =
        runner::ExperimentRunner(parCfg).run(instrumented);
    const std::string progressOut = testing::internal::GetCapturedStderr();
    prof::setEnabled(false);

    ASSERT_EQ(observed.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
        const auto &a = baseline[i];
        const auto &b = observed[i];
        EXPECT_EQ(a.seconds, b.seconds) << a.label;
        EXPECT_EQ(a.energyJ, b.energyJ) << a.label;
        EXPECT_EQ(a.powerW, b.powerW) << a.label;
        EXPECT_EQ(a.energyStaticJ, b.energyStaticJ) << a.label;
        EXPECT_EQ(a.energyHbmJ, b.energyHbmJ) << a.label;
        EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles) << a.label;
        EXPECT_EQ(a.stats.hbmBytes, b.stats.hbmBytes) << a.label;
        EXPECT_EQ(a.stats.instCount, b.stats.instCount) << a.label;
        for (int op = 0; op < isa::kNumHwOps; ++op) {
            EXPECT_EQ(a.stats.opStats[op].cycles,
                      b.stats.opStats[op].cycles) << a.label;
            EXPECT_EQ(a.stats.opStats[op].count,
                      b.stats.opStats[op].count) << a.label;
        }
        EXPECT_EQ(a.stats.stalls.hbmBound, b.stats.stalls.hbmBound);
        EXPECT_EQ(a.stats.stalls.dependency, b.stats.stalls.dependency);
        EXPECT_FALSE(timelines[i].empty()) << a.label;
    }
    // Progress emitted one line per job, machine-readable done/total,
    // with per-job wall clock and the phase-cache flag ("off" here —
    // no cache was configured).
    EXPECT_NE(progressOut.find("[1/3]"), std::string::npos) << progressOut;
    EXPECT_NE(progressOut.find("[3/3]"), std::string::npos) << progressOut;
    EXPECT_NE(progressOut.find("wall_ms="), std::string::npos)
        << progressOut;
    EXPECT_NE(progressOut.find("cache=off"), std::string::npos)
        << progressOut;
}

// ---------------------------------------------------------------------
// Prefetch-window sentinel (satellite 2)
// ---------------------------------------------------------------------

TEST(Observability, PrefetchWindowZeroIsExplicitNotDefault)
{
    const auto tr = smallHybridTrace();
    const sim::UfcModel model;

    RunOptions defOpts; // -1 sentinel: model default window
    EXPECT_EQ(defOpts.prefetchWindow, -1);
    const RunResult def = model.run(tr, defOpts);

    RunOptions defExplicit;
    defExplicit.prefetchWindow = sim::CycleEngine::kDefaultPrefetchWindow;
    const RunResult defExp = model.run(tr, defExplicit);
    EXPECT_EQ(def.stats.totalCycles, defExp.stats.totalCycles);

    RunOptions zeroOpts; // 0: a requestable no-lookahead window
    zeroOpts.prefetchWindow = 0;
    const RunResult zero = model.run(tr, zeroOpts);
    // No lookahead serializes fetch behind compute: strictly slower than
    // the default window on a memory-heavy trace.
    EXPECT_GT(zero.stats.totalCycles, def.stats.totalCycles);
    // The attribution identity holds in every window mode.
    EXPECT_EQ(opCycleSum(zero.stats), zero.stats.totalCycles);
    // With no overlap, every wait is covered by transfer time: nothing
    // is attributable to the prefetch-window dependency bound.
    EXPECT_NEAR(zero.stats.stalls.dependency, 0.0, 1e-6);

    // Intermediate windows are monotone between the two extremes.
    RunOptions midOpt;
    midOpt.prefetchWindow = 4;
    const RunResult mid = model.run(tr, midOpt);
    EXPECT_GE(mid.stats.totalCycles, def.stats.totalCycles);
    EXPECT_LE(mid.stats.totalCycles, zero.stats.totalCycles);
}

// ---------------------------------------------------------------------
// peUtilization unclamped (satellite 1)
// ---------------------------------------------------------------------

TEST(Observability, PeUtilizationIsExportedUnclamped)
{
    sim::RunStats stats;
    stats.totalCycles = 100.0;
    stats.busyCycles[static_cast<int>(isa::Resource::Butterfly)] = 60.0;
    stats.busyCycles[static_cast<int>(isa::Resource::VectorAlu)] = 39.0;
    EXPECT_DOUBLE_EQ(stats.peUtilization(), 0.99);
    // A real run stays within [0, 1] without any clamp.
    const RunResult r = sim::UfcModel().run(smallHybridTrace());
    EXPECT_GE(r.stats.peUtilization(), 0.0);
    EXPECT_LE(r.stats.peUtilization(), 1.0);
}

#ifndef NDEBUG
TEST(ObservabilityDeathTest, PeUtilizationAssertsWhenOverUnity)
{
    sim::RunStats stats;
    stats.totalCycles = 10.0;
    stats.busyCycles[static_cast<int>(isa::Resource::Butterfly)] = 11.0;
    EXPECT_DEATH((void)stats.peUtilization(), "PE busy cycles");
}
#endif

// ---------------------------------------------------------------------
// Host profiler
// ---------------------------------------------------------------------

TEST(Observability, HostProfilerRecordsOnlyWhenEnabled)
{
    prof::setEnabled(false);
    prof::reset();
    {
        UFC_PROF_SCOPE("test.disabled_scope");
    }
    EXPECT_FALSE(prof::hasSamples());

    prof::setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        UFC_PROF_SCOPE("test.enabled_scope");
    }
    EXPECT_TRUE(prof::hasSamples());
    std::ostringstream os;
    prof::report(os);
    EXPECT_NE(os.str().find("test.enabled_scope"), std::string::npos);
    EXPECT_NE(os.str().find("host profile"), std::string::npos);

    prof::setEnabled(false);
    prof::reset();
    EXPECT_FALSE(prof::hasSamples());
}

TEST(Observability, HostProfilerIsThreadSafeUnderKernelPool)
{
    prof::setEnabled(true);
    prof::reset();
    // Drive the instrumented NTT/RNS kernels from runner worker threads
    // (TSan coverage for the relaxed-atomic accumulation).
    const auto tp = tfhe::TfheParams::t1();
    const auto tracePtr =
        std::make_shared<trace::Trace>(workloads::pbsThroughput(tp, 32));
    const auto model = std::make_shared<sim::UfcModel>();
    std::vector<runner::Job> jobs;
    for (int i = 0; i < 4; ++i) {
        UFC_PROF_SCOPE("test.batch_scope");
        jobs.push_back({"job" + std::to_string(i), model, tracePtr,
                        RunOptions{}, ""});
    }
    runner::RunnerConfig cfg;
    cfg.threads = 4;
    (void)runner::ExperimentRunner(cfg).run(jobs);
    EXPECT_TRUE(prof::hasSamples());
    prof::setEnabled(false);
    prof::reset();
}

} // namespace
} // namespace ufc
