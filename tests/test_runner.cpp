/**
 * @file
 * Tests for the parallel experiment runner: bit-exact determinism of a
 * parallel sweep versus the serial path, RunOptions plumbing, and the
 * structured JSON/CSV export.
 */

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "runner/report.h"
#include "runner/sweeps.h"
#include "workloads/workloads.h"

namespace ufc {
namespace {

using runner::ExperimentRunner;
using runner::Job;
using runner::ResultSet;
using runner::RunnerConfig;
using sim::RunOptions;
using sim::RunResult;

/** Everything except hostSeconds (host-side timing) must match exactly:
 *  the simulation itself is deterministic down to the last bit. */
void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.powerW, b.powerW);
    EXPECT_EQ(a.areaMm2, b.areaMm2);
    EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
    EXPECT_EQ(a.stats.hbmBytes, b.stats.hbmBytes);
    EXPECT_EQ(a.stats.hbmBusyCycles, b.stats.hbmBusyCycles);
    EXPECT_EQ(a.stats.spadHitBytes, b.stats.spadHitBytes);
    EXPECT_EQ(a.stats.instCount, b.stats.instCount);
    for (int i = 0; i < isa::kNumResources; ++i)
        EXPECT_EQ(a.stats.busyCycles[i], b.stats.busyCycles[i]) << i;
    EXPECT_EQ(a.energyStaticJ, b.energyStaticJ);
    EXPECT_EQ(a.energyHbmJ, b.energyHbmJ);
    for (int i = 0; i < isa::kNumHwOps; ++i) {
        EXPECT_EQ(a.stats.opStats[i].count, b.stats.opStats[i].count) << i;
        EXPECT_EQ(a.stats.opStats[i].cycles, b.stats.opStats[i].cycles)
            << i;
        EXPECT_EQ(a.stats.opStats[i].computeCycles,
                  b.stats.opStats[i].computeCycles) << i;
        EXPECT_EQ(a.stats.opStats[i].stallCycles,
                  b.stats.opStats[i].stallCycles) << i;
        EXPECT_EQ(a.stats.opStats[i].fillCycles,
                  b.stats.opStats[i].fillCycles) << i;
        EXPECT_EQ(a.stats.opStats[i].hbmBytes,
                  b.stats.opStats[i].hbmBytes) << i;
    }
    EXPECT_EQ(a.stats.stalls.hbmBound, b.stats.stalls.hbmBound);
    EXPECT_EQ(a.stats.stalls.dependency, b.stats.stalls.dependency);
    EXPECT_EQ(a.stats.stalls.pipelineFill, b.stats.stalls.pipelineFill);
    EXPECT_EQ(a.stats.stalls.spadSpillCycles,
              b.stats.stalls.spadSpillCycles);
    EXPECT_EQ(a.stats.stalls.spadWritebackBytes,
              b.stats.stalls.spadWritebackBytes);
    EXPECT_EQ(a.stats.stalls.spadEvictions, b.stats.stalls.spadEvictions);
}

/** A mixed sweep: 4 workloads across all 4 accelerator models (scheme
 *  constraints permitting) — the shape the determinism guarantee must
 *  hold for. */
std::vector<Job>
mixedJobs()
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t2();

    const auto helr =
        std::make_shared<trace::Trace>(workloads::helr(cp, 2));
    const auto boot =
        std::make_shared<trace::Trace>(workloads::ckksBootstrapping(cp));
    const auto pbs =
        std::make_shared<trace::Trace>(workloads::pbsThroughput(tp, 256));
    const auto knn = std::make_shared<trace::Trace>(
        workloads::hybridKnn(cp, tp, 1024, 64, 4));

    const auto ufcm = std::make_shared<sim::UfcModel>();
    const auto sharp = std::make_shared<sim::SharpModel>();
    const auto strix = std::make_shared<sim::StrixModel>();
    const auto composed = std::make_shared<sim::ComposedModel>();

    std::vector<Job> jobs;
    auto add = [&](const std::string &label,
                   std::shared_ptr<const sim::AcceleratorModel> model,
                   std::shared_ptr<const trace::Trace> tr) {
        jobs.push_back(Job{label, std::move(model), std::move(tr),
                           RunOptions{}, ""});
    };
    add("helr/UFC", ufcm, helr);
    add("helr/SHARP", sharp, helr);
    add("helr/SHARP+Strix", composed, helr);
    add("boot/UFC", ufcm, boot);
    add("boot/SHARP", sharp, boot);
    add("boot/SHARP+Strix", composed, boot);
    add("pbs/UFC", ufcm, pbs);
    add("pbs/Strix", strix, pbs);
    add("pbs/SHARP+Strix", composed, pbs);
    add("knn/UFC", ufcm, knn);
    add("knn/SHARP+Strix", composed, knn);
    return jobs;
}

TEST(Runner, ParallelSweepMatchesSerialBitExactly)
{
    const auto jobs = mixedJobs();

    RunnerConfig serialCfg;
    serialCfg.threads = 1;
    const auto serial = ExperimentRunner(serialCfg).run(jobs);

    RunnerConfig parCfg;
    parCfg.threads = 4;
    const auto parallel = ExperimentRunner(parCfg).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectBitIdentical(serial[i], parallel[i]);

    // And a second parallel run reproduces the first.
    const auto again = ExperimentRunner(parCfg).run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectBitIdentical(parallel[i], again[i]);
}

TEST(Runner, ResultsComeBackInJobOrderWithLabels)
{
    const auto jobs = mixedJobs();
    RunnerConfig cfg;
    cfg.threads = 4;
    const auto results = ExperimentRunner(cfg).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].label, jobs[i].label);
        EXPECT_EQ(results[i].machine, jobs[i].model->name());
        EXPECT_EQ(results[i].workload, jobs[i].trace->name);
        EXPECT_GE(results[i].hostSeconds, 0.0);
        EXPECT_GT(results[i].seconds, 0.0);
    }

    const ResultSet set(results);
    EXPECT_EQ(set.size(), jobs.size());
    EXPECT_TRUE(set.contains("boot/SHARP"));
    EXPECT_FALSE(set.contains("boot/Strix"));
    EXPECT_EQ(set.at("pbs/Strix").machine, "Strix");
}

TEST(Runner, EffectiveThreadsClampsToJobCount)
{
    RunnerConfig cfg;
    cfg.threads = 64;
    const ExperimentRunner exec(cfg);
    EXPECT_EQ(exec.effectiveThreads(3), 3);
    EXPECT_EQ(exec.effectiveThreads(1000), 64);
    cfg.threads = 0; // auto: at least one
    EXPECT_GE(ExperimentRunner(cfg).effectiveThreads(1000), 1);
}

TEST(Runner, RunOptionsPrefetchWindowChangesSchedule)
{
    const auto cp = ckks::CkksParams::c2();
    const auto tr = workloads::ckksBootstrapping(cp);
    const sim::UfcModel model;

    const auto def = model.run(tr);
    RunOptions tight;
    tight.prefetchWindow = 1;
    const auto narrow = model.run(tr, tight);

    // A 1-deep memory window serializes fetch behind compute more often,
    // so the run can only get slower — and on this memory-heavy workload
    // it measurably does.
    EXPECT_GT(narrow.stats.totalCycles, def.stats.totalCycles);
    // The work performed is identical either way.
    EXPECT_EQ(narrow.stats.instCount, def.stats.instCount);
    EXPECT_EQ(narrow.stats.hbmBytes, def.stats.hbmBytes);
}

TEST(Runner, RunOptionsLabelAndVerbosityArePropagated)
{
    const auto tp = tfhe::TfheParams::t1();
    const auto tr = workloads::pbsThroughput(tp, 16);
    const sim::UfcModel model;

    RunOptions opts;
    opts.label = "my-run";
    opts.verbosity = sim::StatsVerbosity::Compact;
    const auto r = model.run(tr, opts);
    EXPECT_EQ(r.label, "my-run");

    // Compact results omit the raw-counter block from both formats.
    EXPECT_EQ(r.toJson().find("\"stats\""), std::string::npos);
    const auto full = model.run(tr);
    EXPECT_NE(full.toJson().find("\"stats\""), std::string::npos);
    EXPECT_NE(full.toJson().find("\"utilization\""), std::string::npos);
}

TEST(RunnerReport, CsvRowsMatchHeaderArity)
{
    const auto tp = tfhe::TfheParams::t1();
    const auto tr = workloads::pbsThroughput(tp, 16);
    const sim::UfcModel model;
    const auto full = model.run(tr);
    RunOptions compactOpts;
    compactOpts.verbosity = sim::StatsVerbosity::Compact;
    const auto compact = model.run(tr, compactOpts);

    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    const auto header = sim::RunResult::csvHeader();
    EXPECT_EQ(commas(full.toCsvRow()), commas(header));
    EXPECT_EQ(commas(compact.toCsvRow()), commas(header));
}

TEST(RunnerReport, JsonReportCarriesSchemaAndAllRuns)
{
    const auto tp = tfhe::TfheParams::t1();
    const auto pbs =
        std::make_shared<trace::Trace>(workloads::pbsThroughput(tp, 16));
    const auto ufcm = std::make_shared<sim::UfcModel>();
    const auto strix = std::make_shared<sim::StrixModel>();

    std::vector<Job> jobs;
    jobs.push_back(Job{"r/UFC", ufcm, pbs, RunOptions{}, ""});
    jobs.push_back(Job{"r/Strix", strix, pbs, RunOptions{}, ""});
    const auto results = ExperimentRunner().run(jobs);

    std::ostringstream json;
    runner::ReportMeta meta;
    meta.threads = 2;
    runner::writeJsonReport(results, json, meta);
    const auto doc = json.str();
    EXPECT_NE(doc.find("\"schema\":\"ufc.report/v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"schema\":\"ufc.runresult/v2\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"run_count\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"r/UFC\""), std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"r/Strix\""), std::string::npos);

    std::ostringstream csv;
    runner::writeCsvReport(results, csv);
    const std::string csvDoc = csv.str();
    EXPECT_EQ(std::count(csvDoc.begin(), csvDoc.end(), '\n'), 3);
    // header + 2 rows
}

TEST(RunnerReport, RoundTripPrecisionSurvivesJson)
{
    // %.17g must reproduce doubles exactly; spot-check through a parse.
    const auto tp = tfhe::TfheParams::t1();
    const auto tr = workloads::pbsThroughput(tp, 16);
    const auto r = sim::UfcModel().run(tr);
    const auto doc = r.toJson();
    const auto key = doc.find("\"seconds\":");
    ASSERT_NE(key, std::string::npos);
    const double parsed =
        std::strtod(doc.c_str() + key + 10, nullptr);
    EXPECT_EQ(parsed, r.seconds);
}

TEST(RunnerSweeps, PaperSweepsCoverAllFiguresWithUniqueLabels)
{
    const auto sweeps = runner::paperSweeps();
    ASSERT_EQ(sweeps.size(), 5u);
    EXPECT_EQ(sweeps[0].name, "fig10a");
    EXPECT_EQ(sweeps[4].name, "fig14");

    const auto jobs = runner::allJobs(sweeps);
    std::vector<std::string> labels;
    for (const auto &job : jobs) {
        ASSERT_NE(job.model, nullptr) << job.label;
        ASSERT_NE(job.trace, nullptr) << job.label;
        labels.push_back(job.label);
    }
    std::sort(labels.begin(), labels.end());
    EXPECT_TRUE(std::adjacent_find(labels.begin(), labels.end()) ==
                labels.end())
        << "duplicate job labels in the paper sweep";

    // Figure 13: 3 network counts x 3 scratchpads x 4 CKKS workloads.
    EXPECT_EQ(sweeps[3].jobs.size(), 36u);
    // Figure 14: 4 lane counts x 3 scratchpads x 4 CKKS workloads.
    EXPECT_EQ(sweeps[4].jobs.size(), 48u);
}

} // namespace
} // namespace ufc
