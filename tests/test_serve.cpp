/**
 * @file
 * The ufc_serve daemon, bottom-up:
 *
 *   ServeJson         — the strict bounded JSON parser for untrusted input
 *   ServeProtocol     — length-prefixed framing over a socketpair
 *   ServeAdmission    — admission control driven in-process through
 *                       Server::handleRequestText (no sockets, no
 *                       workers touching the queue: a Server that was
 *                       never start()ed just accumulates queued records,
 *                       which makes occupancy deterministic)
 *   ServeLifecycle    — a real daemon on an AF_UNIX socket: the soak
 *                       bit-identity to a serial runner, backpressure
 *                       tiers with warm-spec admission, queue-covering
 *                       deadlines, drain under load, stop-cancels-queued
 *   ServeInterruption — the runner's cancelFlag path and the
 *                       "interrupted" report marker (what sweep_all's
 *                       SIGINT handler produces)
 *
 * All suites match the `Serve*` aggregate filter (ctest label `serve`).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "metrics/metrics.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/accelerator.h"
#include "tfhe/params.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;
using serve::JsonValue;
using serve::parseJson;

namespace {

/** Small pbs trace serialized to text — the cheap job the daemon tests
 *  submit over and over. */
std::string
smallTraceText(int count)
{
    const trace::Trace tr =
        workloads::pbsThroughput(tfhe::TfheParams::t1(), count);
    std::ostringstream os;
    trace::writeTrace(tr, os);
    return os.str();
}

/** Build a {op:submit, tenant?, job:{...}} request document. */
JsonValue
submitReq(JsonValue job, const std::string &tenant = "")
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("submit"));
    if (!tenant.empty())
        req.set("tenant", JsonValue::makeString(tenant));
    req.set("job", std::move(job));
    return req;
}

JsonValue
traceTextJob(const std::string &text, const std::string &label)
{
    JsonValue job = JsonValue::makeObject();
    job.set("trace_text", JsonValue::makeString(text));
    job.set("label", JsonValue::makeString(label));
    return job;
}

/** Error code of an {ok:false, error:{...}} response ("" when ok). */
std::string
errorCode(const JsonValue &resp)
{
    if (resp.getBool("ok", false))
        return "";
    const JsonValue *err = resp.find("error");
    return err != nullptr ? err->getString("code") : "(no error object)";
}

/** Dump with host_seconds pinned — the one field a host measurement is
 *  allowed to vary; everything else must be bit-identical. */
std::string
normalizedDump(const JsonValue &result)
{
    JsonValue copy = result;
    copy.set("host_seconds", JsonValue::makeDouble(0.0));
    return copy.dump();
}

/** Unique AF_UNIX path per test (short: sun_path is ~108 bytes). */
std::string
uniqueSocketPath()
{
    static std::atomic<int> n{0};
    return "/tmp/ufc_serve_t" + std::to_string(::getpid()) + "_" +
           std::to_string(n.fetch_add(1)) + ".sock";
}

} // namespace

// ---------------------------------------------------------------------------
// ServeJson

TEST(ServeJson, ParsesScalarsExactly)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_EQ(42, parseJson("42").asInt());
    EXPECT_EQ(-7, parseJson("-7").asInt());
    // 64-bit integers survive exactly (a double would round this).
    EXPECT_EQ(9007199254740993LL, parseJson("9007199254740993").asInt());
    EXPECT_DOUBLE_EQ(1.5, parseJson("1.5").asDouble());
    EXPECT_DOUBLE_EQ(-2e3, parseJson("-2e3").asDouble());
    EXPECT_EQ("hi", parseJson("\"hi\"").asString());
}

TEST(ServeJson, ParsesEscapesAndUnicode)
{
    EXPECT_EQ("a\"b\\c\n\t", parseJson("\"a\\\"b\\\\c\\n\\t\"").asString());
    EXPECT_EQ("\x24", parseJson("\"\\u0024\"").asString());
    EXPECT_EQ("\xc2\xa2", parseJson("\"\\u00a2\"").asString()); // ¢
    // Surrogate pair → 4-byte UTF-8.
    EXPECT_EQ("\xf0\x9d\x84\x9e",
              parseJson("\"\\ud834\\udd1e\"").asString());
}

TEST(ServeJson, ObjectsKeepOrderAndRoundTrip)
{
    const std::string doc =
        "{\"b\":1,\"a\":[true,null,{\"k\":\"v\"}],\"c\":-1.25}";
    const JsonValue v = parseJson(doc);
    EXPECT_EQ(doc, v.dump());
    EXPECT_EQ(1, v.getInt("b"));
    EXPECT_EQ(3u, v.find("a")->asArray().size());
    ASSERT_NE(nullptr, v.find("c"));
    EXPECT_EQ(nullptr, v.find("missing"));
    EXPECT_EQ("dflt", v.getString("missing", "dflt"));
}

TEST(ServeJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), ConfigError);
    EXPECT_THROW(parseJson("{"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\":}"), ConfigError);
    EXPECT_THROW(parseJson("[1,]"), ConfigError);
    EXPECT_THROW(parseJson("\"unterminated"), ConfigError);
    EXPECT_THROW(parseJson("\"bad \\x escape\""), ConfigError);
    EXPECT_THROW(parseJson("nul"), ConfigError);
    EXPECT_THROW(parseJson("1 2"), ConfigError); // trailing garbage
    EXPECT_THROW(parseJson("{} []"), ConfigError);
}

TEST(ServeJson, CapsNestingDepth)
{
    std::string deep;
    for (int i = 0; i < serve::kJsonMaxDepth + 8; ++i)
        deep += '[';
    for (int i = 0; i < serve::kJsonMaxDepth + 8; ++i)
        deep += ']';
    EXPECT_THROW(parseJson(deep), ConfigError);

    std::string ok;
    for (int i = 0; i < serve::kJsonMaxDepth - 1; ++i)
        ok += '[';
    for (int i = 0; i < serve::kJsonMaxDepth - 1; ++i)
        ok += ']';
    EXPECT_NO_THROW(parseJson(ok));
}

TEST(ServeJson, TypedLookupsNameTheKeyOnMismatch)
{
    const JsonValue v = parseJson("{\"n\":3,\"s\":\"x\"}");
    EXPECT_THROW(v.getString("n"), ConfigError);
    EXPECT_THROW(v.getBool("s"), ConfigError);
    EXPECT_EQ(3.0, v.getDouble("n")); // ints widen
    EXPECT_THROW(parseJson("1.5").asInt(), ConfigError);
}

// ---------------------------------------------------------------------------
// ServeProtocol

namespace {

struct SocketPair
{
    int a = -1, b = -1;
    SocketPair()
    {
        int fds[2];
        EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
        a = fds[0];
        b = fds[1];
    }
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

} // namespace

TEST(ServeProtocol, FramesRoundTrip)
{
    SocketPair sp;
    serve::writeFrame(sp.a, "{\"op\":\"health\"}");
    serve::writeFrame(sp.a, ""); // empty payload is a valid frame
    std::string payload;
    ASSERT_TRUE(serve::readFrame(sp.b, payload));
    EXPECT_EQ("{\"op\":\"health\"}", payload);
    ASSERT_TRUE(serve::readFrame(sp.b, payload));
    EXPECT_EQ("", payload);
}

TEST(ServeProtocol, CleanEofReturnsFalse)
{
    SocketPair sp;
    ::close(sp.a);
    sp.a = -1;
    std::string payload;
    EXPECT_FALSE(serve::readFrame(sp.b, payload));
}

TEST(ServeProtocol, TruncatedFrameThrowsConfigError)
{
    SocketPair sp;
    // A 100-byte length prefix followed by only 3 payload bytes.
    const unsigned char prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(4, ::send(sp.a, prefix, 4, 0));
    ASSERT_EQ(3, ::send(sp.a, "abc", 3, 0));
    ::close(sp.a);
    sp.a = -1;
    std::string payload;
    EXPECT_THROW(serve::readFrame(sp.b, payload), ConfigError);
}

TEST(ServeProtocol, OversizedPrefixThrowsOverloadWithoutReadingBody)
{
    SocketPair sp;
    const unsigned char prefix[4] = {0x20, 0, 0, 0}; // 512 MiB claim
    ASSERT_EQ(4, ::send(sp.a, prefix, 4, 0));
    std::string payload;
    try {
        serve::readFrame(sp.b, payload, serve::kDefaultMaxFrameBytes);
        FAIL() << "oversized prefix must throw";
    } catch (const OverloadError &e) {
        EXPECT_EQ("OverloadError", e.kind());
    }
}

TEST(ServeProtocol, ErrorResponseShape)
{
    const JsonValue resp =
        serve::errorResponse("OverloadError", serve::kCodeQueueFull,
                             "full", 250.0);
    EXPECT_FALSE(resp.getBool("ok", true));
    const JsonValue *err = resp.find("error");
    ASSERT_NE(nullptr, err);
    EXPECT_EQ("OverloadError", err->getString("kind"));
    EXPECT_EQ(serve::kCodeQueueFull, err->getString("code"));
    EXPECT_EQ(250, err->getInt("retry_after_ms"));
    // Negative hint means "do not retry" and is omitted entirely.
    const JsonValue noHint =
        serve::errorResponse("ConfigError", serve::kCodeBadJob, "bad");
    EXPECT_EQ(nullptr, noHint.find("error")->find("retry_after_ms"));
}

// ---------------------------------------------------------------------------
// ServeAdmission (in-process; the server is never start()ed)

namespace {

JsonValue
handle(serve::Server &server, const JsonValue &req)
{
    return parseJson(server.handleRequestText(req.dump()));
}

} // namespace

TEST(ServeAdmission, MalformedRequestsGetBadRequestNotACrash)
{
    serve::ServeConfig cfg;
    serve::Server server(cfg);
    for (const char *hostile :
         {"not json at all", "{\"op\":", "[1,2,3]", "{\"op\":\"nope\"}",
          "{}", "{\"op\":\"submit\"}", "{\"op\":\"submit\",\"job\":7}"}) {
        const JsonValue resp =
            parseJson(server.handleRequestText(hostile));
        EXPECT_FALSE(resp.getBool("ok", true)) << hostile;
    }
    EXPECT_GE(server.stats().protocolErrors, 5u);
}

TEST(ServeAdmission, RejectsInvalidJobSpecs)
{
    serve::ServeConfig cfg;
    serve::Server server(cfg);

    auto expectBadJob = [&](JsonValue job, const char *what) {
        const JsonValue resp = handle(server, submitReq(std::move(job)));
        EXPECT_EQ(serve::kCodeBadJob, errorCode(resp)) << what;
    };

    JsonValue job = JsonValue::makeObject();
    expectBadJob(job, "no source");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("trace_text", JsonValue::makeString("x"));
    expectBadJob(job, "two sources");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("fhe_goes_brrr"));
    expectBadJob(job, "unknown workload");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("machine", JsonValue::makeString("enigma"));
    expectBadJob(job, "unknown machine");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("scale", JsonValue::makeInt(-1));
    expectBadJob(job, "negative scale");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("retries", JsonValue::makeInt(99));
    expectBadJob(job, "retries over budget");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("hold_ms", JsonValue::makeInt(60000));
    expectBadJob(job, "hold_ms over cap");

    job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("deadline_ms", JsonValue::makeDouble(-5.0));
    expectBadJob(job, "negative deadline");

    // None of those touched admission accounting.
    EXPECT_EQ(0u, server.stats().submitted);
    EXPECT_EQ(0u, server.stats().rejected);
}

TEST(ServeAdmission, QueueFullShedsWithRetryAfterHint)
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 4;
    cfg.shedLintAt = 2.0; // isolate tier 3: disable tiers 1-2
    cfg.shedCompileAt = 2.0;
    serve::Server server(cfg);

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("scale", JsonValue::makeInt(8));

    for (int i = 0; i < 4; ++i) {
        const JsonValue resp = handle(server, submitReq(job));
        ASSERT_TRUE(resp.getBool("ok")) << "submit " << i;
        EXPECT_EQ("job-" + std::to_string(i + 1),
                  resp.getString("id"));
        EXPECT_EQ(i + 1, resp.getInt("queue_depth", -1));
    }
    EXPECT_EQ(4u, server.stats().submitted);
    EXPECT_EQ(3, server.degradeTier());

    const JsonValue shed = handle(server, submitReq(job));
    EXPECT_EQ(serve::kCodeQueueFull, errorCode(shed));
    const JsonValue *err = shed.find("error");
    EXPECT_EQ("OverloadError", err->getString("kind"));
    EXPECT_GE(err->getInt("retry_after_ms"), 25);
    EXPECT_LE(err->getInt("retry_after_ms"), 10000);
    EXPECT_EQ(1u, server.stats().shed);
    EXPECT_EQ(1u, server.stats().rejected);
    EXPECT_EQ(4u, server.stats().submitted); // unchanged
}

TEST(ServeAdmission, Tier2ShedsColdCompilesOnly)
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 4; // tier 1 at 2 queued, tier 2 at 3 queued
    serve::Server server(cfg);

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(handle(server, submitReq(job)).getBool("ok"));
    EXPECT_EQ(2, server.degradeTier());

    // Nothing ever completed, so every spec is cold: shed.
    const JsonValue shed = handle(server, submitReq(job));
    EXPECT_EQ(serve::kCodeShedCompile, errorCode(shed));
    EXPECT_EQ(1u, server.stats().shed);
}

TEST(ServeAdmission, Tier1ShedsLintPreflight)
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 4;
    serve::Server server(cfg);

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    job.set("lint", JsonValue::makeBool(true));

    // Occupancy 0 and 1/4: lint honoured.
    EXPECT_EQ(nullptr, handle(server, submitReq(job)).find("lint_shed"));
    EXPECT_EQ(nullptr, handle(server, submitReq(job)).find("lint_shed"));
    // Occupancy 2/4 = tier 1: admitted, lint shed.
    const JsonValue resp = handle(server, submitReq(job));
    ASSERT_TRUE(resp.getBool("ok"));
    EXPECT_TRUE(resp.getBool("lint_shed"));
    EXPECT_EQ(1u, server.stats().lintShed);
    EXPECT_EQ(3u, server.stats().submitted);
}

TEST(ServeAdmission, TenantBucketsIsolateAggressors)
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 32;
    cfg.shedLintAt = 2.0;
    cfg.shedCompileAt = 2.0;
    cfg.tenantBurst = 2.0;
    cfg.tenantRatePerSec = 0.001; // effectively no refill mid-test
    serve::Server server(cfg);

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));

    // Tenant "greedy" burns its burst of 2...
    ASSERT_TRUE(handle(server, submitReq(job, "greedy")).getBool("ok"));
    ASSERT_TRUE(handle(server, submitReq(job, "greedy")).getBool("ok"));
    const JsonValue limited = handle(server, submitReq(job, "greedy"));
    EXPECT_EQ(serve::kCodeRateLimited, errorCode(limited));
    EXPECT_GE(limited.find("error")->getInt("retry_after_ms"), 1);

    // ...while other tenants are unaffected.
    EXPECT_TRUE(handle(server, submitReq(job, "patient")).getBool("ok"));
    EXPECT_TRUE(handle(server, submitReq(job, "patient")).getBool("ok"));
    EXPECT_EQ(1u, server.stats().rateLimited);
    EXPECT_EQ(4u, server.stats().submitted);
}

TEST(ServeAdmission, CancelQueuedButNotTwice)
{
    serve::ServeConfig cfg;
    serve::Server server(cfg);

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    const std::string id =
        handle(server, submitReq(job)).getString("id");
    ASSERT_FALSE(id.empty());

    JsonValue cancel = JsonValue::makeObject();
    cancel.set("op", JsonValue::makeString("cancel"));
    cancel.set("id", JsonValue::makeString(id));
    EXPECT_TRUE(handle(server, cancel).getBool("ok"));
    EXPECT_EQ(serve::kCodeNotCancellable,
              errorCode(handle(server, cancel)));
    EXPECT_EQ(1u, server.stats().cancelled);

    JsonValue status = JsonValue::makeObject();
    status.set("op", JsonValue::makeString("status"));
    status.set("id", JsonValue::makeString(id));
    const JsonValue st = handle(server, status);
    EXPECT_EQ("cancelled", st.getString("state"));
    EXPECT_EQ("skipped", st.getString("status"));

    // A non-waiting result fetch reports the cancellation as an error.
    JsonValue result = JsonValue::makeObject();
    result.set("op", JsonValue::makeString("result"));
    result.set("id", JsonValue::makeString(id));
    EXPECT_EQ("cancelled", errorCode(handle(server, result)));

    cancel.set("id", JsonValue::makeString("job-9999"));
    EXPECT_EQ(serve::kCodeUnknownId, errorCode(handle(server, cancel)));
}

TEST(ServeAdmission, DrainingRejectsNewSubmits)
{
    serve::ServeConfig cfg;
    serve::Server server(cfg);

    JsonValue drain = JsonValue::makeObject();
    drain.set("op", JsonValue::makeString("drain"));
    const JsonValue dresp = handle(server, drain);
    EXPECT_TRUE(dresp.getBool("ok"));
    EXPECT_TRUE(dresp.getBool("draining"));
    EXPECT_TRUE(server.drainRequested());

    JsonValue job = JsonValue::makeObject();
    job.set("workload", JsonValue::makeString("pbs"));
    const JsonValue resp = handle(server, submitReq(job));
    EXPECT_EQ(serve::kCodeDraining, errorCode(resp));
    // Draining is final — no retry hint.
    EXPECT_EQ(nullptr, resp.find("error")->find("retry_after_ms"));
}

// ---------------------------------------------------------------------------
// ServeLifecycle (real daemon over AF_UNIX)

TEST(ServeLifecycle, SubmitRunsAndReturnsEmbeddedResult)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 2;
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);
    const JsonValue sub =
        client.submit(traceTextJob(smallTraceText(8), "life/basic"));
    ASSERT_TRUE(sub.getBool("ok")) << sub.dump();

    const JsonValue res = client.waitResult(sub.getString("id"));
    ASSERT_TRUE(res.getBool("ok")) << res.dump();
    EXPECT_EQ("done", res.getString("state"));
    EXPECT_EQ("ok", res.getString("status"));
    const JsonValue *result = res.find("result");
    ASSERT_NE(nullptr, result);
    EXPECT_EQ("life/basic", result->getString("label"));
    EXPECT_GT(result->getDouble("seconds", -1.0), 0.0);
    const JsonValue *stats = result->find("stats");
    ASSERT_NE(nullptr, stats);
    EXPECT_GT(stats->getDouble("total_cycles", -1.0), 0.0);

    const JsonValue h = client.health();
    EXPECT_EQ("serving", h.getString("status"));
    EXPECT_EQ(1, h.find("stats")->getInt("completed"));
}

TEST(ServeLifecycle, SoakIsBitIdenticalToSerialRunner)
{
    // Two distinct specs, each submitted repeatedly from three client
    // threads: the daemon's concurrent, cache-warmed answers must be
    // bit-identical (modulo host_seconds) to a cold serial runner.
    const std::string textA = smallTraceText(12);
    const std::string textB = smallTraceText(24);

    std::string expectA, expectB;
    {
        auto model = std::make_shared<sim::UfcModel>();
        for (const auto *spec :
             {&textA, &textB}) {
            runner::Job job;
            job.label = spec == &textA ? "soak/a" : "soak/b";
            std::istringstream is(*spec);
            job.trace = std::make_shared<const trace::Trace>(
                trace::readTrace(is));
            job.model = model;
            job.options.label = job.label;
            sim::RunResult result;
            runner::JobOutcome outcome;
            runner::ExperimentRunner(runner::RunnerConfig{})
                .runJob(job, 0, result, outcome, nullptr);
            ASSERT_TRUE(outcome.ok()) << outcome.message;
            (spec == &textA ? expectA : expectB) =
                normalizedDump(parseJson(result.toJson()));
        }
    }

    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 3;
    cfg.queueCapacity = 64;
    serve::Server server(cfg);
    server.start();

    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            serve::Client client;
            client.connect(cfg.socketPath, 5);
            std::vector<std::pair<std::string, bool>> ids; // id, isA
            for (int i = 0; i < 4; ++i) {
                const bool isA = (t + i) % 2 == 0;
                const JsonValue sub = client.submit(
                    traceTextJob(isA ? textA : textB,
                                 isA ? "soak/a" : "soak/b"),
                    "soak-" + std::to_string(t));
                if (!sub.getBool("ok")) {
                    ++failures;
                    continue;
                }
                ids.emplace_back(sub.getString("id"), isA);
            }
            for (const auto &[id, isA] : ids) {
                const JsonValue res = client.waitResult(id, 120000.0);
                if (!res.getBool("ok")) {
                    ++failures;
                    continue;
                }
                const JsonValue *result = res.find("result");
                if (result == nullptr ||
                    normalizedDump(*result) != (isA ? expectA : expectB))
                    ++mismatches;
            }
        });
    }
    for (std::thread &th : clients)
        th.join();

    EXPECT_EQ(0, failures.load());
    EXPECT_EQ(0, mismatches.load());
    EXPECT_EQ(12u, server.stats().completed);

    // The shared caches actually carried the load: 2 distinct specs,
    // 12 jobs — exactly 2 compiles, everything else a hit.
    serve::Client probe;
    probe.connect(cfg.socketPath);
    const JsonValue h = probe.health();
    EXPECT_EQ(2, h.find("caches")->getInt("program_compiles"));
    EXPECT_GE(h.find("caches")->getInt("program_hits"), 10);
}

TEST(ServeLifecycle, WarmSpecsSurviveTier2AndFullQueueSheds)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 1;
    cfg.queueCapacity = 4;
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);
    const std::string warmText = smallTraceText(8);
    const std::string coldText = smallTraceText(10);

    // Warm one spec end-to-end while the daemon is idle.
    const JsonValue warmed = client.submit(traceTextJob(warmText, "warm"));
    ASSERT_TRUE(warmed.getBool("ok"));
    ASSERT_TRUE(
        client.waitResult(warmed.getString("id")).getBool("ok"));

    // Park the single worker and fill the queue to tier 2 (3 queued of
    // 4): hold_ms keeps the in-flight job busy long enough that the
    // occupancy cannot drain mid-assertion.
    for (int i = 0; i < 4; ++i) {
        JsonValue job = traceTextJob(warmText, "held");
        job.set("hold_ms", JsonValue::makeInt(1500));
        ASSERT_TRUE(client.submit(job).getBool("ok")) << "held " << i;
    }
    // Give the worker a beat to pop the first held job: queue settles
    // at exactly 3 for the next ~1.5 s.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ASSERT_EQ(2, server.degradeTier());

    // Cold spec: shed. Warm spec: admitted (now 4 queued = tier 3).
    EXPECT_EQ(serve::kCodeShedCompile,
              errorCode(client.submit(traceTextJob(coldText, "cold"))));
    EXPECT_TRUE(
        client.submit(traceTextJob(warmText, "warm2")).getBool("ok"));
    EXPECT_EQ(serve::kCodeQueueFull,
              errorCode(client.submit(traceTextJob(warmText, "warm3"))));

    server.beginDrain();
    server.awaitDrained();
    EXPECT_EQ(6u, server.stats().completed); // warm + 4 held + warm2
    EXPECT_EQ(2u, server.stats().shed);
}

TEST(ServeLifecycle, DeadlineCoversQueueWait)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 1;
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);

    // Block the single worker for ~700 ms...
    JsonValue blocker = traceTextJob(smallTraceText(8), "blocker");
    blocker.set("hold_ms", JsonValue::makeInt(700));
    ASSERT_TRUE(client.submit(blocker).getBool("ok"));

    // ...so this 100 ms-deadline job expires while still queued.
    JsonValue doomed = traceTextJob(smallTraceText(8), "doomed");
    doomed.set("deadline_ms", JsonValue::makeDouble(100.0));
    const JsonValue sub = client.submit(doomed);
    ASSERT_TRUE(sub.getBool("ok"));

    const JsonValue res = client.waitResult(sub.getString("id"));
    EXPECT_FALSE(res.getBool("ok", true));
    EXPECT_EQ("timed_out", res.getString("status"));
    EXPECT_EQ(0, res.getInt("attempts", -1));
    EXPECT_NE(std::string::npos,
              res.find("error")->getString("message").find(
                  "expired while queued"));
}

TEST(ServeLifecycle, DrainUnderLoadFinishesEverythingAccepted)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 2;
    cfg.queueCapacity = 16;
    cfg.shedLintAt = 2.0;
    cfg.shedCompileAt = 2.0;
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);
    const std::string text = smallTraceText(8);
    std::vector<std::string> ids;
    for (int i = 0; i < 6; ++i) {
        JsonValue job = traceTextJob(text, "drain/" + std::to_string(i));
        job.set("hold_ms", JsonValue::makeInt(150));
        const JsonValue sub = client.submit(job);
        ASSERT_TRUE(sub.getBool("ok"));
        ids.push_back(sub.getString("id"));
    }

    const JsonValue dresp = client.drain();
    EXPECT_TRUE(dresp.getBool("ok"));
    EXPECT_TRUE(dresp.getBool("draining"));
    server.awaitDrained();

    // Every accepted job ran to completion and stays queryable.
    for (const std::string &id : ids)
        EXPECT_TRUE(client.waitResult(id).getBool("ok")) << id;
    const auto batch = server.reportBatch();
    EXPECT_EQ(6u, batch.results.size());
    EXPECT_EQ(0u, batch.failureCount());
    EXPECT_FALSE(batch.interrupted());
    const auto st = server.stats();
    EXPECT_EQ(6u, st.submitted);
    EXPECT_EQ(6u, st.completed);
    EXPECT_EQ(0u, st.cancelled);
}

TEST(ServeLifecycle, StopCancelsQueuedJobsAndAccountsForThem)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.workers = 1;
    cfg.shedLintAt = 2.0;
    cfg.shedCompileAt = 2.0;
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);
    JsonValue held = traceTextJob(smallTraceText(8), "held");
    held.set("hold_ms", JsonValue::makeInt(400));
    ASSERT_TRUE(client.submit(held).getBool("ok"));
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            client.submit(traceTextJob(smallTraceText(8), "queued"))
                .getBool("ok"));

    server.stop();

    const auto st = server.stats();
    EXPECT_EQ(4u, st.submitted);
    EXPECT_EQ(3u, st.cancelled);
    EXPECT_EQ(1u, st.completed + st.failed); // the in-flight one settled
    const auto batch = server.reportBatch();
    EXPECT_EQ(4u, batch.results.size());
    EXPECT_TRUE(batch.interrupted()); // skipped slots mark the report
}

TEST(ServeLifecycle, HealthAndMetricsExposition)
{
    metrics::setEnabled(true);
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    serve::Server server(cfg);
    server.start();

    serve::Client client;
    client.connect(cfg.socketPath, 5);
    const JsonValue sub =
        client.submit(traceTextJob(smallTraceText(8), "obs"));
    ASSERT_TRUE(sub.getBool("ok"));
    ASSERT_TRUE(client.waitResult(sub.getString("id")).getBool("ok"));

    const JsonValue h = client.health();
    EXPECT_TRUE(h.getBool("ok"));
    EXPECT_EQ(serve::kProtocolVersion, h.getInt("protocol", -1));
    EXPECT_EQ("serving", h.getString("status"));
    EXPECT_EQ(2, h.getInt("workers", -1));
    EXPECT_GE(h.getDouble("uptime_s", -1.0), 0.0);
    EXPECT_GT(h.getDouble("ewma_job_ms", -1.0), 0.0);
    ASSERT_NE(nullptr, h.find("stats"));
    EXPECT_EQ(1, h.find("stats")->getInt("submitted"));
    ASSERT_NE(nullptr, h.find("caches"));
    EXPECT_GE(h.find("caches")->getInt("program_compiles"), 1);

    JsonValue mreq = JsonValue::makeObject();
    mreq.set("op", JsonValue::makeString("metrics"));
    const JsonValue m = client.requestText(mreq.dump());
    ASSERT_TRUE(m.getBool("ok"));
    const std::string prom = m.getString("prometheus");
    EXPECT_NE(std::string::npos, prom.find("ufc_serve_queue_depth"));
    EXPECT_NE(std::string::npos, prom.find("ufc_serve_submitted_total"));
    EXPECT_NE(std::string::npos,
              prom.find("ufc_serve_request_latency_us"));
    metrics::setEnabled(false);
}

TEST(ServeLifecycle, ConnectionLimitAnswersThenCloses)
{
    serve::ServeConfig cfg;
    cfg.socketPath = uniqueSocketPath();
    cfg.maxConnections = 1;
    serve::Server server(cfg);
    server.start();

    serve::Client first;
    first.connect(cfg.socketPath, 5);
    ASSERT_TRUE(first.health().getBool("ok"));

    // The refusal arrives unsolicited (the daemon answers, then closes
    // the connection), so read it rather than racing a request against
    // the close.
    serve::Client second;
    second.connect(cfg.socketPath);
    std::string payload;
    ASSERT_TRUE(serve::readFrame(second.fd(), payload));
    EXPECT_EQ(serve::kCodeTooManyConns, errorCode(parseJson(payload)));

    // Freeing the slot restores service.
    first.close();
    for (int i = 0; i < 50; ++i) {
        try {
            serve::Client retry;
            retry.connect(cfg.socketPath);
            if (retry.health().getBool("ok", false))
                return;
        } catch (const Error &) {
            // Still refused mid-close; keep polling.
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "connection slot never freed";
}

// ---------------------------------------------------------------------------
// ServeInterruption (the sweep_all SIGINT/SIGTERM path, minus the signal)

TEST(ServeInterruption, CancelFlagSkipsPendingJobsAndMarksTheBatch)
{
    const std::string text = smallTraceText(8);
    std::vector<runner::Job> jobs;
    auto model = std::make_shared<sim::UfcModel>();
    for (int i = 0; i < 4; ++i) {
        runner::Job job;
        job.label = "int/" + std::to_string(i);
        std::istringstream is(text);
        job.trace =
            std::make_shared<const trace::Trace>(trace::readTrace(is));
        job.model = model;
        jobs.push_back(std::move(job));
    }

    // Flag already set: every job is skipped, none runs.
    std::atomic<bool> cancel{true};
    runner::RunnerConfig cfg;
    cfg.threads = 2;
    cfg.cancelFlag = &cancel;
    const auto batch = runner::ExperimentRunner(cfg).runAll(jobs);

    ASSERT_EQ(4u, batch.outcomes.size());
    for (const auto &outcome : batch.outcomes) {
        EXPECT_EQ(runner::JobStatus::Skipped, outcome.status);
        EXPECT_EQ(0, outcome.attempts);
    }
    EXPECT_TRUE(batch.interrupted());

    // The report sweep_all would flush carries the interrupted marker
    // and the skipped jobs in its failures block.
    runner::ReportMeta meta;
    meta.interrupted = batch.interrupted();
    std::ostringstream os;
    runner::writeJsonReport(batch, os, meta);
    EXPECT_NE(std::string::npos, os.str().find("\"interrupted\":true"));
    EXPECT_NE(std::string::npos, os.str().find("\"skipped\""));
}

TEST(ServeInterruption, UninterruptedBatchHasNoMarker)
{
    const std::string text = smallTraceText(8);
    runner::Job job;
    job.label = "int/clean";
    std::istringstream is(text);
    job.trace =
        std::make_shared<const trace::Trace>(trace::readTrace(is));
    job.model = std::make_shared<sim::UfcModel>();

    const auto batch =
        runner::ExperimentRunner(runner::RunnerConfig{}).runAll({job});
    EXPECT_FALSE(batch.interrupted());
    std::ostringstream os;
    runner::ReportMeta meta;
    meta.interrupted = batch.interrupted();
    runner::writeJsonReport(batch, os, meta);
    EXPECT_EQ(std::string::npos, os.str().find("interrupted"));
}
