/**
 * @file
 * Unit tests for word-size modular arithmetic.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/mod_arith.h"
#include "math/primes.h"

namespace ufc {
namespace {

TEST(ModArith, AddSubNegBasics)
{
    const u64 q = 17;
    EXPECT_EQ(addMod(9, 9, q), 1u);
    EXPECT_EQ(addMod(16, 16, q), 15u);
    EXPECT_EQ(subMod(3, 9, q), 11u);
    EXPECT_EQ(subMod(9, 3, q), 6u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(5, q), 12u);
}

TEST(ModArith, MulMatchesNaive)
{
    Rng rng(1);
    const u64 q = findNttPrime(59, 1 << 12);
    Modulus mod(q);
    for (int i = 0; i < 2000; ++i) {
        const u64 a = rng.uniform(q);
        const u64 b = rng.uniform(q);
        const u64 expect = static_cast<u64>(
            (static_cast<u128>(a) * b) % q);
        EXPECT_EQ(mod.mul(a, b), expect);
    }
}

TEST(ModArith, Barrett128ReducesArbitraryValues)
{
    Rng rng(2);
    for (int bits : {30, 45, 59}) {
        const u64 q = findNttPrime(bits, 1 << 10);
        Modulus mod(q);
        for (int i = 0; i < 500; ++i) {
            const u128 x =
                (static_cast<u128>(rng.next()) << 64) | rng.next();
            EXPECT_EQ(mod.reduce(x), static_cast<u64>(x % q));
        }
    }
}

TEST(ModArith, ShoupMulMatchesFullMul)
{
    Rng rng(3);
    const u64 q = findNttPrime(50, 1 << 14);
    Modulus mod(q);
    for (int i = 0; i < 1000; ++i) {
        const u64 w = rng.uniform(q);
        const u64 wShoup = mod.shoupPrecompute(w);
        const u64 a = rng.uniform(q);
        EXPECT_EQ(mod.mulShoup(a, w, wShoup), mod.mul(a, w));
    }
}

TEST(ModArith, PowAndInv)
{
    const u64 q = findNttPrime(40, 1 << 10);
    Modulus mod(q);
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const u64 a = 1 + rng.uniform(q - 1);
        const u64 inv = mod.inv(a);
        EXPECT_EQ(mod.mul(a, inv), 1u);
        // Fermat: a^(q-1) = 1.
        EXPECT_EQ(mod.pow(a, q - 1), 1u);
    }
}

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1)); // Mersenne prime
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(561));        // Carmichael
    EXPECT_FALSE(isPrime(1ULL << 40));
    EXPECT_FALSE(isPrime(65539ULL * 65543ULL));
}

TEST(Primes, NttPrimesHaveRequiredResidue)
{
    const u64 twoN = 1ULL << 17; // N = 2^16
    auto primes = generateNttPrimes(45, twoN, 5);
    ASSERT_EQ(primes.size(), 5u);
    for (size_t i = 0; i < primes.size(); ++i) {
        EXPECT_TRUE(isPrime(primes[i]));
        EXPECT_EQ(primes[i] % twoN, 1u);
        EXPECT_LT(primes[i], 1ULL << 45);
        for (size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
    }
}

TEST(Primes, PrimitiveRootsHaveExactOrder)
{
    for (u64 n : {1ULL << 10, 1ULL << 12}) {
        const u64 q = findNttPrime(32, 2 * n);
        const u64 w = findPrimitiveRoot(2 * n, q);
        EXPECT_EQ(powMod(w, 2 * n, q), 1u);
        EXPECT_EQ(powMod(w, n, q), q - 1); // psi^N = -1 (negacyclic)
    }
}

} // namespace
} // namespace ufc
