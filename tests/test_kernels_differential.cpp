/**
 * @file
 * Differential determinism tests for the kernel layer.
 *
 * The limb-parallel RNS operations promise bit-identical results at any
 * thread count (work is distributed as disjoint per-index writes, so
 * scheduling cannot reorder arithmetic).  These tests run a fixed seeded
 * pipeline of polynomial operations under several kernel-pool sizes and
 * require exact equality, and pin down the same contract between the
 * optimized NTT kernel tiers (AVX-512 IFMA / scalar Harvey) and the
 * reference kernels.
 */

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "poly/rns_poly.h"

namespace ufc {
namespace {

/** Restores the default kernel pool on scope exit so a failing test
 *  doesn't leak its thread-count override into later tests. */
struct KernelThreadsGuard
{
    ~KernelThreadsGuard() { setKernelThreads(0); }
};

std::vector<std::vector<u64>>
snapshot(const RnsPoly &p)
{
    std::vector<std::vector<u64>> out(p.limbCount());
    for (size_t i = 0; i < p.limbCount(); ++i) {
        out[i].resize(p.degree());
        for (u64 c = 0; c < p.degree(); ++c)
            out[i][c] = p.limb(i)[c];
    }
    return out;
}

/** A fixed, fully seeded pipeline exercising every limb-parallel op:
 *  NTT form changes, add/sub/neg/scale, eval products, automorphism,
 *  and basis extension. */
std::vector<std::vector<u64>>
runPipeline(u64 n, const std::vector<u64> &moduli,
            const std::vector<u64> &extModuli)
{
    RingContext ring(n);
    RnsPoly a(&ring, moduli, PolyForm::Coeff);
    RnsPoly b(&ring, moduli, PolyForm::Coeff);
    Rng rng(4242);
    a.sampleUniform(rng);
    b.sampleUniform(rng);

    a.toEval();
    b.toEval();
    a.mulEvalInPlace(b);
    RnsPoly acc = a;
    acc.fmaEval(a, b);
    acc.addInPlace(a);
    acc.subInPlace(b);
    acc.negInPlace();
    acc.scaleInPlace(7);
    acc = acc.automorphism(5);
    acc.toCoeff();
    acc.extendBasis(extModuli);
    return snapshot(acc);
}

TEST(KernelDifferential, LimbParallelOpsBitIdenticalToSerial)
{
    KernelThreadsGuard guard;
    const u64 n = 1ULL << 10;
    std::vector<u64> moduli, ext;
    for (int i = 0; i < 4; ++i)
        moduli.push_back(findNttPrime(45, 2 * n, i));
    for (int i = 4; i < 6; ++i)
        ext.push_back(findNttPrime(45, 2 * n, i));

    setKernelThreads(1);
    const auto serial = runPipeline(n, moduli, ext);
    for (const int threads : {2, 3, 8}) {
        setKernelThreads(threads);
        const auto parallel = runPipeline(n, moduli, ext);
        ASSERT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(KernelDifferential, OptimizedNttBitIdenticalToReference)
{
    // q < 2^50 dispatches to the IFMA tier where the host supports it,
    // q >= 2^50 always takes the scalar Harvey tier; both must agree
    // with the reference kernels on every input, bit for bit.
    for (const int bits : {45, 59}) {
        for (const int logN : {4, 6, 10, 13}) {
            const u64 n = 1ULL << logN;
            const u64 q = findNttPrime(bits, 2 * n);
            NttTable ntt(n, q);
            Rng rng(100 + bits + logN);
            for (int rep = 0; rep < 8; ++rep) {
                std::vector<u64> a(n);
                for (auto &x : a)
                    x = rng.uniform(q);
                auto optF = a, refF = a;
                ntt.forward(optF.data());
                ntt.forwardReference(refF.data());
                ASSERT_EQ(optF, refF)
                    << "forward bits=" << bits << " logN=" << logN;
                auto optI = a, refI = a;
                ntt.inverse(optI.data());
                ntt.inverseReference(refI.data());
                ASSERT_EQ(optI, refI)
                    << "inverse bits=" << bits << " logN=" << logN;
            }
        }
    }
}

TEST(KernelDifferential, SharedTableTransformsAreReentrant)
{
    // Concurrent transforms of distinct arrays against one shared table
    // must be independent (per-thread scratch): the parallel results
    // must equal the serial ones element for element.
    KernelThreadsGuard guard;
    const u64 n = 1ULL << 12;
    const u64 q = findNttPrime(45, 2 * n);
    NttTable ntt(n, q);
    Rng rng(777);
    const size_t count = 16;
    std::vector<std::vector<u64>> polys(count);
    for (auto &p : polys) {
        p.resize(n);
        for (auto &x : p)
            x = rng.uniform(q);
    }

    auto serial = polys;
    for (auto &p : serial)
        ntt.forward(p);

    setKernelThreads(8);
    auto parallel = polys;
    parallelFor(count, [&](size_t i) { ntt.forward(parallel[i]); });
    EXPECT_EQ(parallel, serial);
}

TEST(KernelDifferential, ParallelForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    const size_t count = 10000;
    std::vector<int> hits(count, 0);
    pool.parallelFor(count, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < count; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(KernelDifferential, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<int> outer(64, 0);
    pool.parallelFor(64, [&](size_t i) {
        // A nested parallelFor from a worker must execute inline (and
        // to completion) rather than re-entering the pool.
        std::vector<int> inner(8, 0);
        pool.parallelFor(8, [&](size_t j) { ++inner[j]; });
        int sum = 0;
        for (int x : inner)
            sum += x;
        outer[i] = sum;
    });
    for (size_t i = 0; i < outer.size(); ++i)
        ASSERT_EQ(outer[i], 8) << "index " << i;
}

} // namespace
} // namespace ufc
