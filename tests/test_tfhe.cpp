/**
 * @file
 * Unit and integration tests for the TFHE-style logic scheme.
 */

#include <gtest/gtest.h>

#include "math/gadget.h"
#include "math/primes.h"
#include "tfhe/gates.h"

namespace ufc {
namespace tfhe {
namespace {

struct TfheFixture : public ::testing::Test
{
    TfheFixture()
        : params(TfheParams::testFast()), rng(42),
          lweKey(LweSecretKey::generate(params.lweDim, rng)),
          ring(params.ringDim),
          ringKey(RlweSecretKey::generate(&ring.table(params.q), rng))
    {}

    TfheParams params;
    Rng rng;
    LweSecretKey lweKey;
    RingContext ring;
    RlweSecretKey ringKey;
};

TEST_F(TfheFixture, LweEncryptDecryptRoundTrip)
{
    const u64 t = 16;
    for (u64 m = 0; m < t; ++m) {
        auto ct = lweEncrypt(lweEncode(m, params.q, t), lweKey, params, rng);
        EXPECT_EQ(lweDecrypt(ct, lweKey, t), m);
    }
}

TEST_F(TfheFixture, LweHomomorphicAddition)
{
    const u64 t = 16;
    auto c1 = lweEncrypt(lweEncode(3, params.q, t), lweKey, params, rng);
    auto c2 = lweEncrypt(lweEncode(5, params.q, t), lweKey, params, rng);
    c1.addInPlace(c2);
    EXPECT_EQ(lweDecrypt(c1, lweKey, t), 8u);

    c1.subInPlace(c2);
    EXPECT_EQ(lweDecrypt(c1, lweKey, t), 3u);

    c1.scaleInPlace(4);
    EXPECT_EQ(lweDecrypt(c1, lweKey, t), 12u);
}

TEST_F(TfheFixture, LweModSwitchPreservesMessage)
{
    const u64 t = 4;
    auto ct = lweEncrypt(lweEncode(2, params.q, t), lweKey, params, rng);
    auto switched = ct.modSwitch(2ULL * params.ringDim);
    EXPECT_EQ(switched.q, 2ULL * params.ringDim);
    EXPECT_EQ(lweDecrypt(switched, lweKey, t), 2u);
}

TEST_F(TfheFixture, GadgetDecompositionRecomposesWithinError)
{
    Gadget g(params.q, params.gadgetLogBase, params.gadgetLevels);
    Rng r(7);
    std::vector<u64> digits(g.levels());
    const u64 halfB = g.base() / 2;
    for (int i = 0; i < 2000; ++i) {
        const u64 x = r.uniform(params.q);
        g.decompose(x, digits.data());
        // Digits are balanced: each represents a value in [-B/2, B/2].
        for (u64 d : digits) {
            const u64 mag = std::min(d, params.q - d);
            EXPECT_LE(mag, halfB);
        }
        const u64 back = g.recompose(digits.data());
        const u64 err = std::min(subMod(back, x, params.q),
                                 subMod(x, back, params.q));
        // Error bounded by the last gadget granularity.
        EXPECT_LE(err, g.g(g.levels() - 1));
    }
}

TEST_F(TfheFixture, RlweEncryptPhaseIsSmallNoise)
{
    Poly m(&ring.table(params.q), PolyForm::Coeff);
    m[0] = params.q / 4;
    m[3] = params.q / 8;
    auto ct = rlweEncrypt(m, ringKey, params.rlweSigma, rng);
    Poly phase = rlwePhase(ct, ringKey);
    for (u64 i = 0; i < phase.degree(); ++i) {
        const u64 diff = std::min(subMod(phase[i], m[i], params.q),
                                  subMod(m[i], phase[i], params.q));
        EXPECT_LT(diff, 64u) << "coeff " << i;
    }
}

TEST_F(TfheFixture, ExternalProductMultipliesPlaintexts)
{
    Gadget g(params.q, params.gadgetLogBase, params.gadgetLevels);
    const NttTable *table = &ring.table(params.q);

    // RGSW encrypts the monomial X^5; RLWE encrypts a large message.
    Poly mono(table, PolyForm::Coeff);
    mono[5] = 1;
    auto rgsw = rgswEncrypt(mono, ringKey, g, params.rlweSigma, rng);

    Poly msg(table, PolyForm::Coeff);
    msg[0] = params.q / 4;
    msg[1] = params.q / 2;
    auto rlwe = rlweEncrypt(msg, ringKey, params.rlweSigma, rng);

    auto prod = externalProduct(rgsw, rlwe, g);
    Poly phase = rlwePhase(prod, ringKey);
    Poly expect = msg.mulByMonomial(5);
    for (u64 i = 0; i < phase.degree(); ++i) {
        const u64 diff =
            std::min(subMod(phase[i], expect[i], params.q),
                     subMod(expect[i], phase[i], params.q));
        EXPECT_LT(diff, params.q / 64) << "coeff " << i;
    }
}

TEST_F(TfheFixture, CmuxSelectsBranch)
{
    Gadget g(params.q, params.gadgetLogBase, params.gadgetLevels);
    const NttTable *table = &ring.table(params.q);

    Poly m0(table, PolyForm::Coeff), m1(table, PolyForm::Coeff);
    m0[0] = params.q / 4;
    m1[0] = params.q / 2;
    auto ct0 = rlweEncrypt(m0, ringKey, params.rlweSigma, rng);
    auto ct1 = rlweEncrypt(m1, ringKey, params.rlweSigma, rng);

    Poly bit(table, PolyForm::Coeff);
    for (u64 sel : {u64{0}, u64{1}}) {
        bit[0] = sel;
        auto c = rgswEncrypt(bit, ringKey, g, params.rlweSigma, rng);
        auto out = cmux(c, ct0, ct1, g);
        Poly phase = rlwePhase(out, ringKey);
        const u64 expect = sel ? m1[0] : m0[0];
        const u64 diff = std::min(subMod(phase[0], expect, params.q),
                                  subMod(expect, phase[0], params.q));
        EXPECT_LT(diff, params.q / 64) << "sel=" << sel;
    }
}

TEST_F(TfheFixture, SampleExtractYieldsCoefficientLwe)
{
    const NttTable *table = &ring.table(params.q);
    Poly msg(table, PolyForm::Coeff);
    for (u64 i = 0; i < msg.degree(); ++i)
        msg[i] = lweEncode(i % 8, params.q, 8);
    auto ct = rlweEncrypt(msg, ringKey, params.rlweSigma, rng);

    // The extracted LWE key is the ring key's coefficient vector.
    LweSecretKey bigKey;
    bigKey.s = ringKey.s.data();

    for (u64 idx : {u64{0}, u64{1}, u64{17}, msg.degree() - 1}) {
        auto lwe = sampleExtract(ct, idx);
        EXPECT_EQ(lweDecrypt(lwe, bigKey, 8), idx % 8);
    }
}

struct BootstrapFixture : public TfheFixture
{
    BootstrapFixture() : bc(params, lweKey, ringKey, rng) {}
    BootstrapContext bc;
};

TEST_F(BootstrapFixture, KeySwitchPreservesMessage)
{
    LweSecretKey bigKey;
    bigKey.s = ringKey.s.data();

    const u64 t = 8;
    for (u64 m = 0; m < t / 2; ++m) {
        // Encrypt under the big (extracted) key via a trivial route:
        // RLWE-encrypt and extract.
        Poly msg(&ring.table(params.q), PolyForm::Coeff);
        msg[0] = lweEncode(m, params.q, t);
        auto rlwe = rlweEncrypt(msg, ringKey, params.rlweSigma, rng);
        auto big = sampleExtract(rlwe, 0);
        ASSERT_EQ(lweDecrypt(big, bigKey, t), m);

        auto small = bc.keySwitch(big);
        EXPECT_EQ(small.dim(), params.lweDim);
        EXPECT_EQ(lweDecrypt(small, lweKey, t), m);
    }
}

TEST_F(BootstrapFixture, ProgrammableBootstrapEvaluatesLut)
{
    const u64 t = 8;
    // f(m) = (3m + 1) mod 4 on the padded half-domain [0, 4).
    std::vector<u64> lut(t);
    for (u64 m = 0; m < t; ++m)
        lut[m] = (3 * m + 1) % 4;

    for (u64 m = 0; m < t / 2; ++m) {
        auto ct =
            lweEncrypt(lweEncode(m, params.q, t), lweKey, params, rng);
        auto out = bc.programmableBootstrap(ct, lut, t);
        EXPECT_EQ(lweDecrypt(out, lweKey, t), lut[m]) << "m=" << m;
    }
}

TEST_F(BootstrapFixture, BootstrapRefreshesNoise)
{
    const u64 t = 8;
    std::vector<u64> identity(t);
    for (u64 m = 0; m < t; ++m)
        identity[m] = m;

    // Accumulate noise with many additions, then refresh.
    auto ct = lweEncrypt(lweEncode(1, params.q, t), lweKey, params, rng);
    auto zero = lweEncrypt(lweEncode(0, params.q, t), lweKey, params, rng);
    for (int i = 0; i < 16; ++i)
        ct.addInPlace(zero);
    ASSERT_EQ(lweDecrypt(ct, lweKey, t), 1u);

    auto refreshed = bc.programmableBootstrap(ct, identity, t);
    EXPECT_EQ(lweDecrypt(refreshed, lweKey, t), 1u);

    // Refreshed noise must be small enough for further computation.
    const u64 phase = lwePhase(refreshed, lweKey);
    const u64 ideal = lweEncode(1, params.q, t);
    const u64 noise = std::min(subMod(phase, ideal, params.q),
                               subMod(ideal, phase, params.q));
    EXPECT_LT(noise, params.q / (4 * t));
}

TEST_F(BootstrapFixture, AllBinaryGatesMatchTruthTables)
{
    struct GateCase
    {
        const char *name;
        LweCiphertext (*fn)(const BootstrapContext &,
                            const LweCiphertext &, const LweCiphertext &);
        bool truth[4]; // (F,F), (F,T), (T,F), (T,T)
    };
    const GateCase cases[] = {
        {"NAND", gateNand, {true, true, true, false}},
        {"AND", gateAnd, {false, false, false, true}},
        {"OR", gateOr, {false, true, true, true}},
        {"NOR", gateNor, {true, false, false, false}},
        {"XOR", gateXor, {false, true, true, false}},
        {"XNOR", gateXnor, {true, false, false, true}},
    };
    for (const auto &gc : cases) {
        for (int in = 0; in < 4; ++in) {
            const bool x = in & 2, y = in & 1;
            auto cx = encryptBit(x, lweKey, params, rng);
            auto cy = encryptBit(y, lweKey, params, rng);
            auto out = gc.fn(bc, cx, cy);
            EXPECT_EQ(decryptBit(out, lweKey), gc.truth[in])
                << gc.name << "(" << x << "," << y << ")";
        }
    }
}

TEST_F(BootstrapFixture, NotAndMux)
{
    for (int in = 0; in < 2; ++in) {
        auto c = encryptBit(in, lweKey, params, rng);
        EXPECT_EQ(decryptBit(gateNot(c), lweKey), !in);
    }
    for (int in = 0; in < 8; ++in) {
        const bool s = in & 4, x = in & 2, y = in & 1;
        auto cs = encryptBit(s, lweKey, params, rng);
        auto cx = encryptBit(x, lweKey, params, rng);
        auto cy = encryptBit(y, lweKey, params, rng);
        auto out = gateMux(bc, cs, cx, cy);
        EXPECT_EQ(decryptBit(out, lweKey), s ? x : y)
            << "mux(" << s << "," << x << "," << y << ")";
    }
}

TEST(TfheParams, TableIIIParameterSets)
{
    const auto t1 = TfheParams::t1();
    EXPECT_EQ(t1.lweDim, 500u);
    EXPECT_EQ(t1.ringDim, 1u << 10);
    EXPECT_EQ(t1.gadgetLevels, 2);
    const auto t4 = TfheParams::t4();
    EXPECT_EQ(t4.lweDim, 991u);
    EXPECT_EQ(t4.ringDim, 1u << 14);
    // All moduli are 32-bit NTT-friendly primes.
    for (const auto &p : {TfheParams::t1(), TfheParams::t2(),
                          TfheParams::t3(), TfheParams::t4()}) {
        EXPECT_TRUE(isPrime(p.q));
        EXPECT_EQ(p.q % (2 * p.ringDim), 1u);
        EXPECT_LT(p.q, 1ULL << 32);
    }
}

} // namespace
} // namespace tfhe
} // namespace ufc
