/**
 * @file
 * Property-based randomized tests for the modular-arithmetic and NTT
 * kernel layer, swept over all supported (N, q-width) combinations with
 * seeded PRNGs.  These are the invariants the optimized kernels must
 * preserve:
 *
 *   - forward/inverse round-trip identity for both NTT variants,
 *   - optimized kernels bit-identical to the reference kernels
 *     (covering the scalar Harvey path for wide moduli and the AVX-512
 *     IFMA path, when the host supports it, for q < 2^50),
 *   - classical and constant-geometry transforms agree,
 *   - pointwise eval-domain multiplication equals naive negacyclic
 *     convolution,
 *   - lazy Shoup, one-word Barrett, and Montgomery helpers match exact
 *     modular arithmetic on random and extreme operands.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/cg_ntt.h"
#include "math/ntt.h"
#include "math/ntt_cache.h"
#include "math/primes.h"

namespace ufc {
namespace {

std::vector<u64>
randomPoly(Rng &rng, u64 n, u64 q)
{
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.uniform(q);
    return a;
}

/** (log2 N, modulus bits) sweep: every degree class the schemes use
 *  (tiny ring, TFHE-sized, CKKS-sized) crossed with moduli on both
 *  sides of the IFMA eligibility bound (q < 2^50). */
class KernelProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    u64 n() const { return 1ULL << std::get<0>(GetParam()); }
    int qBits() const { return std::get<1>(GetParam()); }
    u64 q() const { return findNttPrime(qBits(), 2 * n()); }
    u64 seed() const
    {
        return 1000 + 64 * std::get<0>(GetParam()) + qBits();
    }
};

TEST_P(KernelProperty, ForwardInverseRoundTripIsIdentity)
{
    NttTable ntt(n(), q());
    Rng rng(seed());
    for (int rep = 0; rep < 4; ++rep) {
        const auto a = randomPoly(rng, n(), q());
        auto b = a;
        ntt.forward(b);
        ntt.inverse(b);
        EXPECT_EQ(a, b) << "rep=" << rep;
    }
}

TEST_P(KernelProperty, OptimizedForwardMatchesReference)
{
    NttTable ntt(n(), q());
    Rng rng(seed() + 1);
    for (int rep = 0; rep < 4; ++rep) {
        const auto a = randomPoly(rng, n(), q());
        auto opt = a;
        auto ref = a;
        ntt.forward(opt.data());
        ntt.forwardReference(ref.data());
        ASSERT_EQ(opt, ref) << "rep=" << rep;
    }
}

TEST_P(KernelProperty, OptimizedInverseMatchesReference)
{
    NttTable ntt(n(), q());
    Rng rng(seed() + 2);
    for (int rep = 0; rep < 4; ++rep) {
        const auto a = randomPoly(rng, n(), q());
        auto opt = a;
        auto ref = a;
        ntt.inverse(opt.data());
        ntt.inverseReference(ref.data());
        ASSERT_EQ(opt, ref) << "rep=" << rep;
    }
}

TEST_P(KernelProperty, CgNttAgreesWithClassical)
{
    NttTable ntt(n(), q());
    CgNtt cg(n(), q(), ntt.psi());
    Rng rng(seed() + 3);
    const auto a = randomPoly(rng, n(), q());

    auto classical = a;
    ntt.forward(classical);
    auto pease = a;
    cg.forward(pease);
    EXPECT_EQ(classical, pease);

    cg.inverse(pease);
    EXPECT_EQ(pease, a);
}

TEST_P(KernelProperty, PointwiseMulMatchesSchoolbookConvolution)
{
    if (n() > 128)
        GTEST_SKIP() << "O(N^2) oracle kept to small rings";
    NttTable ntt(n(), q());
    Rng rng(seed() + 4);
    const auto a = randomPoly(rng, n(), q());
    const auto b = randomPoly(rng, n(), q());

    const auto expect = ntt.negacyclicMulSchoolbook(a, b);

    auto fa = a;
    auto fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    for (u64 i = 0; i < n(); ++i)
        fa[i] = ntt.modulus().mul(fa[i], fb[i]);
    ntt.inverse(fa);
    EXPECT_EQ(fa, expect);
}

TEST_P(KernelProperty, LazyShoupIsCongruentAndBounded)
{
    const Modulus mod(q());
    Rng rng(seed() + 5);
    for (int rep = 0; rep < 200; ++rep) {
        // Lazy Shoup must accept ANY 64-bit a (the NTT feeds it values
        // up to 4q), so draw from the full word range.
        const u64 a = rng.next();
        const u64 w = rng.uniform(q());
        const u64 wShoup = mod.shoupPrecompute(w);
        const u64 lazy = mod.mulShoupLazy(a, w, wShoup);
        EXPECT_LT(lazy, 2 * q());
        EXPECT_EQ(lazy % q(), mulMod(mod.reduce(a), w, q()));
        EXPECT_EQ(mod.mulShoup(a, w, wShoup), mulMod(mod.reduce(a), w, q()));
    }
}

TEST_P(KernelProperty, OneWordBarrettMatchesHardwareDivide)
{
    const Modulus mod(q());
    Rng rng(seed() + 6);
    for (int rep = 0; rep < 200; ++rep) {
        const u64 a = rng.next();
        EXPECT_EQ(mod.reduce(a), a % q());
    }
}

TEST_P(KernelProperty, MontgomeryMulMatchesExactProduct)
{
    const Modulus mod(q());
    ASSERT_TRUE(mod.hasMontgomery()); // every NTT prime is odd
    Rng rng(seed() + 7);
    for (int rep = 0; rep < 200; ++rep) {
        const u64 a = rng.uniform(q());
        const u64 b = rng.uniform(q());
        const u64 ma = mod.toMont(a);
        const u64 mb = mod.toMont(b);
        EXPECT_EQ(mod.fromMont(ma), a);
        EXPECT_EQ(mod.fromMont(mod.mulMont(ma, mb)), mulMod(a, b, q()));
    }
    EXPECT_EQ(mod.fromMont(mod.montOne()), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDegreesAndWidths, KernelProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12),
                       ::testing::Values(30, 45, 50, 59)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_Q" +
               std::to_string(std::get<1>(info.param));
    });

TEST(KernelProperty, TwiddleCacheReturnsStableSharedPointers)
{
    const u64 n = 64;
    const u64 q = findNttPrime(45, 2 * n);
    const NttTable *t1 = cachedNttTable(n, q);
    const NttTable *t2 = cachedNttTable(n, q);
    EXPECT_EQ(t1, t2); // one table per (n, q, psi)
    EXPECT_EQ(t1->degree(), n);
    EXPECT_EQ(t1->modulus().value(), q);

    // Distinct psi gets a distinct entry.
    const u64 psi2 = powMod(t1->psi(), 3, q);
    const NttTable *t3 = cachedNttTable(n, q, psi2);
    EXPECT_NE(t1, t3);
    EXPECT_EQ(t3->psi(), psi2);
}

TEST(KernelProperty, IfmaEligibilityFollowsModulusBound)
{
    // Wide moduli must never dispatch to the 52-bit IFMA kernels.
    const u64 n = 1024;
    NttTable wide(n, findNttPrime(55, 2 * n));
    EXPECT_FALSE(wide.usesAvx512());
    NttTable tiny(8, findNttPrime(45, 16));
    EXPECT_FALSE(tiny.usesAvx512()); // below the 16-point vector floor
}

} // namespace
} // namespace ufc
