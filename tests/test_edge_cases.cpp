/**
 * @file
 * Edge cases and failure injection: API misuse must fail loudly (panics
 * with clear messages), boundary parameters must work, and corrupted
 * ciphertexts must not decrypt to valid-looking data.
 */

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "math/cg_ntt.h"
#include "math/primes.h"
#include "tfhe/gates.h"

namespace ufc {
namespace {

// ---------------------------------------------------------------------
// API misuse dies with diagnostics instead of corrupting data.
// ---------------------------------------------------------------------

TEST(FailureInjection, MismatchedPolynomialFormsPanic)
{
    RingContext ring(64);
    const u64 q = findNttPrime(40, 128);
    Poly a(&ring.table(q), PolyForm::Coeff);
    Poly b(&ring.table(q), PolyForm::Eval);
    EXPECT_DEATH({ a.addInPlace(b); }, "form");
}

TEST(FailureInjection, EvalFormMultiplyRequiresEvalForm)
{
    RingContext ring(64);
    const u64 q = findNttPrime(40, 128);
    Poly a(&ring.table(q), PolyForm::Coeff);
    Poly b(&ring.table(q), PolyForm::Coeff);
    EXPECT_DEATH({ a.mulEvalInPlace(b); }, "Eval");
}

TEST(FailureInjection, EvenAutomorphismIndexPanics)
{
    RingContext ring(64);
    const u64 q = findNttPrime(40, 128);
    Poly a(&ring.table(q), PolyForm::Coeff);
    EXPECT_DEATH({ (void)a.automorphism(4); }, "odd");
}

TEST(FailureInjection, NonNttFriendlyModulusRejected)
{
    // 2^32 + 1 is not ~1 mod 2N for N = 1024 (and not prime).
    EXPECT_DEATH({ NttTable t(1024, (1ULL << 32) + 2); },
                 "NTT-friendly");
}

TEST(FailureInjection, CkksScaleMismatchPanicsOnAdd)
{
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(1);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    std::vector<double> v(4, 1.0);
    auto a = encryptor.encrypt(enc.encode(v, 2, ctx.scale()));
    auto b = encryptor.encrypt(enc.encode(v, 2, 2.0 * ctx.scale()));
    EXPECT_DEATH({ (void)eval.add(a, b); }, "scale");
}

TEST(FailureInjection, CkksLevelMismatchPanicsOnAdd)
{
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(2);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    std::vector<double> v(4, 1.0);
    auto a = encryptor.encrypt(enc.encode(v, 3, ctx.scale()));
    auto b = encryptor.encrypt(enc.encode(v, 2, ctx.scale()));
    EXPECT_DEATH({ (void)eval.add(a, b); }, "level");
}

TEST(FailureInjection, RescaleAtLastLevelPanics)
{
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(3);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    auto ct = encryptor.encrypt(
        enc.encode(std::vector<double>{1.0}, 1, ctx.scale()));
    EXPECT_DEATH({ (void)eval.rescale(ct); }, "last level");
}

TEST(FailureInjection, CorruptedCiphertextDecryptsToGarbage)
{
    // Flipping ciphertext words must destroy the plaintext (sanity check
    // that decryption really depends on all components).
    auto params = tfhe::TfheParams::testFast();
    Rng rng(4);
    auto key = tfhe::LweSecretKey::generate(params.lweDim, rng);
    const u64 t = 256; // fine-grained space so corruption is visible
    auto ct = tfhe::lweEncrypt(tfhe::lweEncode(7, params.q, t), key,
                               params, rng);
    ct.b = addMod(ct.b, params.q / 2, params.q);
    EXPECT_NE(tfhe::lweDecrypt(ct, key, t), 7u);
}

TEST(FailureInjection, WrongKeyDoesNotDecrypt)
{
    auto params = tfhe::TfheParams::testFast();
    Rng rng(5);
    auto key = tfhe::LweSecretKey::generate(params.lweDim, rng);
    auto wrong = tfhe::LweSecretKey::generate(params.lweDim, rng);
    int agree = 0;
    const u64 t = 256;
    for (u64 m = 0; m < 16; ++m) {
        auto ct = tfhe::lweEncrypt(tfhe::lweEncode(m, params.q, t), key,
                                   params, rng);
        if (tfhe::lweDecrypt(ct, wrong, t) == m)
            ++agree;
    }
    EXPECT_LE(agree, 2); // chance collisions only
}

// ---------------------------------------------------------------------
// Boundary parameters.
// ---------------------------------------------------------------------

TEST(EdgeCases, SmallestRingWorks)
{
    const u64 q = findNttPrime(30, 4);
    NttTable ntt(2, q);
    std::vector<u64> a = {5, 9};
    auto b = a;
    ntt.forward(b);
    ntt.inverse(b);
    EXPECT_EQ(a, b);
}

TEST(EdgeCases, SingleLimbCkksArithmetic)
{
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(6);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    std::vector<double> v(8, 0.25);
    auto a = encryptor.encrypt(enc.encode(v, 1, ctx.scale()));
    auto sum = eval.add(a, a);
    auto dec = enc.decode(encryptor.decrypt(sum));
    EXPECT_NEAR(dec[0].real(), 0.5, 1e-6);
}

TEST(EdgeCases, RotationByZeroIsIdentityCost)
{
    // rotate(ct, 0) uses k = 1 (the identity automorphism) and must
    // return the same plaintext.
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(7);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    std::vector<double> v(ctx.slots());
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = 0.001 * static_cast<double>(i % 97);
    auto ct = encryptor.encrypt(enc.encode(v, 2, ctx.scale()));
    auto rot = eval.rotate(ct, 0, kg.makeRotationKey(0));
    auto dec = enc.decode(encryptor.decrypt(rot));
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(dec[i].real(), v[i], 1e-5);
}

TEST(EdgeCases, FullSlotRotationWrapsAround)
{
    ckks::CkksContext ctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder enc(&ctx);
    Rng rng(8);
    ckks::CkksKeyGenerator kg(&ctx, rng);
    ckks::CkksEncryptor encryptor(&ctx, &kg.secretKey(), rng);
    ckks::CkksEvaluator eval(&ctx);

    const int n = static_cast<int>(ctx.slots());
    std::vector<double> v(n);
    for (int i = 0; i < n; ++i)
        v[i] = 0.01 * (i % 13);
    auto ct = encryptor.encrypt(enc.encode(v, 2, ctx.scale()));
    // Rotating by n (full circle) is the identity.
    auto rot = eval.rotate(ct, n, kg.makeRotationKey(n));
    auto dec = enc.decode(encryptor.decrypt(rot));
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(dec[i].real(), v[i], 1e-5);
}

TEST(EdgeCases, GateChainSurvivesManyBootstraps)
{
    // 16 chained NAND gates: noise must stay bounded because every gate
    // refreshes (the logic scheme's composability guarantee).
    auto params = tfhe::TfheParams::testFast();
    Rng rng(9);
    auto lweKey = tfhe::LweSecretKey::generate(params.lweDim, rng);
    RingContext ring(params.ringDim);
    auto ringKey =
        tfhe::RlweSecretKey::generate(&ring.table(params.q), rng);
    tfhe::BootstrapContext bc(params, lweKey, ringKey, rng);

    auto x = tfhe::encryptBit(true, lweKey, params, rng);
    bool expect = true;
    for (int i = 0; i < 16; ++i) {
        x = tfhe::gateNand(bc, x, x); // NAND(x,x) = NOT x
        expect = !expect;
        ASSERT_EQ(tfhe::decryptBit(x, lweKey), expect) << "gate " << i;
    }
}

} // namespace
} // namespace ufc
