# Run a command and require an exact exit code.  WILL_FAIL alone is too
# weak for the robustness CLI tests: it passes on any nonzero status,
# including a crash/abort, while these tests must distinguish a clean
# typed-error exit (1) from a usage error (2) or a signal.
#
# Usage:
#   cmake -DCMD=<binary> -DARGS=<;-separated args> -DEXPECTED=<code>
#         [-DWORKDIR=<dir>] -P expect_exit.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
    message(FATAL_ERROR "expect_exit.cmake needs -DCMD and -DEXPECTED")
endif()
if(NOT DEFINED ARGS)
    set(ARGS "")
endif()
if(NOT DEFINED WORKDIR)
    set(WORKDIR ".")
endif()

execute_process(
    COMMAND ${CMD} ${ARGS}
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT rv EQUAL ${EXPECTED})
    message(FATAL_ERROR
        "'${CMD} ${ARGS}' exited with '${rv}', expected ${EXPECTED}\n"
        "--- stdout ---\n${out}\n--- stderr ---\n${err}")
endif()
