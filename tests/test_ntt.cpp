/**
 * @file
 * Unit and property tests for the classical and constant-geometry NTTs.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/cg_ntt.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace ufc {
namespace {

std::vector<u64>
randomPoly(Rng &rng, u64 n, u64 q)
{
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.uniform(q);
    return a;
}

class NttRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NttRoundTrip, ForwardInverseIsIdentity)
{
    const u64 n = 1ULL << GetParam();
    const u64 q = findNttPrime(45, 2 * n);
    NttTable ntt(n, q);
    Rng rng(7 + GetParam());
    auto a = randomPoly(rng, n, q);
    auto b = a;
    ntt.forward(b);
    ntt.inverse(b);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, NttRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 10, 12, 14, 16));

TEST(Ntt, MatchesSchoolbookNegacyclicConvolution)
{
    const u64 n = 64;
    const u64 q = findNttPrime(40, 2 * n);
    NttTable ntt(n, q);
    Rng rng(11);
    auto a = randomPoly(rng, n, q);
    auto b = randomPoly(rng, n, q);

    auto expect = ntt.negacyclicMulSchoolbook(a, b);

    auto fa = a;
    auto fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    for (u64 i = 0; i < n; ++i)
        fa[i] = ntt.modulus().mul(fa[i], fb[i]);
    ntt.inverse(fa);
    EXPECT_EQ(fa, expect);
}

TEST(Ntt, ForwardIsEvaluationAtOddPsiPowers)
{
    const u64 n = 16;
    const u64 q = findNttPrime(30, 2 * n);
    NttTable ntt(n, q);
    Rng rng(13);
    auto a = randomPoly(rng, n, q);
    auto f = a;
    ntt.forward(f);
    // f[k] must equal a(psi^(2k+1)) under the natural-order convention.
    const u64 psi = ntt.psi();
    for (u64 k = 0; k < n; ++k) {
        const u64 x = powMod(psi, 2 * k + 1, q);
        u64 acc = 0;
        u64 xp = 1;
        for (u64 j = 0; j < n; ++j) {
            acc = addMod(acc, mulMod(a[j], xp, q), q);
            xp = mulMod(xp, x, q);
        }
        EXPECT_EQ(f[k], acc) << "k=" << k;
    }
}

TEST(Ntt, LinearityProperty)
{
    const u64 n = 256;
    const u64 q = findNttPrime(45, 2 * n);
    NttTable ntt(n, q);
    Rng rng(17);
    auto a = randomPoly(rng, n, q);
    auto b = randomPoly(rng, n, q);
    const u64 c = rng.uniform(q);

    // NTT(a + c*b) == NTT(a) + c*NTT(b)
    std::vector<u64> lhs(n);
    for (u64 i = 0; i < n; ++i)
        lhs[i] = addMod(a[i], mulMod(c, b[i], q), q);
    ntt.forward(lhs);

    auto fa = a;
    auto fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    for (u64 i = 0; i < n; ++i)
        fa[i] = addMod(fa[i], mulMod(c, fb[i], q), q);
    EXPECT_EQ(lhs, fa);
}

class CgNttEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CgNttEquivalence, MatchesClassicalNtt)
{
    const u64 n = 1ULL << GetParam();
    const u64 q = findNttPrime(45, 2 * n);
    // Share psi so both transforms use identical evaluation points.
    NttTable ntt(n, q);
    CgNtt cg(n, q, ntt.psi());
    Rng rng(19 + GetParam());
    auto a = randomPoly(rng, n, q);

    auto classical = a;
    ntt.forward(classical);
    auto pease = a;
    cg.forward(pease);
    EXPECT_EQ(classical, pease);

    cg.inverse(pease);
    EXPECT_EQ(pease, a);
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, CgNttEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 14));

TEST(CgNtt, PerfectShuffleIsAddressRotation)
{
    const int logN = 6;
    // sigma(g) rotates the logN-bit address left by one.
    for (u64 g = 0; g < (1ULL << logN); ++g) {
        const u64 expect = ((g << 1) & ((1ULL << logN) - 1)) |
                           (g >> (logN - 1));
        EXPECT_EQ(CgNtt::perfectShuffle(g, logN), expect);
    }
    // logN applications are the identity.
    u64 g = 0b101101;
    u64 h = g;
    for (int i = 0; i < logN; ++i)
        h = CgNtt::perfectShuffle(h, logN);
    EXPECT_EQ(h, g);
}

TEST(CgNtt, AutomorphismViaNttMatchesExplicitPermutation)
{
    const u64 n = 64;
    const u64 q = findNttPrime(40, 2 * n);
    NttTable ntt(n, q);
    CgNtt cg(n, q, ntt.psi());
    Rng rng(23);
    auto a = randomPoly(rng, n, q);

    for (u64 k : {u64{3}, u64{5}, u64{25}, 2 * n - 1}) {
        // Reference: apply the automorphism on coefficients, then NTT.
        std::vector<u64> ref(n, 0);
        for (u64 i = 0; i < n; ++i) {
            const u64 e = (i * k) % (2 * n);
            if (e < n)
                ref[e] = addMod(ref[e], a[i], q);
            else
                ref[e - n] = subMod(ref[e - n], a[i], q);
        }
        ntt.forward(ref);

        // UFC's way: same data, NTT with re-indexed roots (psi^k).
        auto viaNtt = a;
        cg.forwardAutomorphism(viaNtt, k);
        EXPECT_EQ(viaNtt, ref) << "k=" << k;
    }
}

TEST(CgNtt, PackedForwardProducesInterleavedEvaluations)
{
    const u64 n = 64, m = 16;
    const u64 p = n / m;
    const u64 q = findNttPrime(40, 2 * n);
    CgNtt cg(n, q);
    Rng rng(29);
    std::vector<u64> packed(n);
    for (auto &x : packed)
        x = rng.uniform(q);

    // Reference small transforms with the compatible psi (psi_n^(n/m)).
    const u64 psiM = powMod(cg.degree() ? findPrimitiveRoot(2 * n, q) : 0,
                            n / m, q);
    NttTable small(m, q, psiM);
    auto interleaved = packed;
    cg.packedForward(interleaved, m);

    for (u64 pi = 0; pi < p; ++pi) {
        std::vector<u64> poly(packed.begin() + pi * m,
                              packed.begin() + (pi + 1) * m);
        small.forward(poly);
        for (u64 i = 0; i < m; ++i)
            EXPECT_EQ(interleaved[i * p + pi], poly[i])
                << "poly " << pi << " coeff " << i;
    }

    // Round trip back to the continuous layout.
    cg.packedInverse(interleaved, m);
    EXPECT_EQ(interleaved, packed);
}

TEST(CgNtt, PackedPointwiseMulComputesPerPolyNegacyclicProducts)
{
    const u64 n = 64, m = 8;
    const u64 p = n / m;
    const u64 q = findNttPrime(40, 2 * n);
    CgNtt cg(n, q);
    NttTable smallRef(m, q);
    Modulus mod(q);
    Rng rng(31);

    std::vector<u64> pa(n), pb(n);
    for (auto &x : pa)
        x = rng.uniform(q);
    for (auto &x : pb)
        x = rng.uniform(q);

    auto ea = pa, eb = pb;
    cg.packedForward(ea, m);
    cg.packedForward(eb, m);
    for (u64 i = 0; i < n; ++i)
        ea[i] = mod.mul(ea[i], eb[i]);
    cg.packedInverse(ea, m);

    for (u64 pi = 0; pi < p; ++pi) {
        std::vector<u64> a(pa.begin() + pi * m, pa.begin() + (pi + 1) * m);
        std::vector<u64> b(pb.begin() + pi * m, pb.begin() + (pi + 1) * m);
        auto expect = smallRef.negacyclicMulSchoolbook(a, b);
        for (u64 i = 0; i < m; ++i)
            EXPECT_EQ(ea[pi * m + i], expect[i]);
    }
}

} // namespace
} // namespace ufc
