file(REMOVE_RECURSE
  "CMakeFiles/ablation_codesign.dir/ablation_codesign.cpp.o"
  "CMakeFiles/ablation_codesign.dir/ablation_codesign.cpp.o.d"
  "ablation_codesign"
  "ablation_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
