# Empty dependencies file for fig12_utilization.
# This may be replaced when dependencies are built.
