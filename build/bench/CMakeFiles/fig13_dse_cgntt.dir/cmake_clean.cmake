file(REMOVE_RECURSE
  "CMakeFiles/fig13_dse_cgntt.dir/fig13_dse_cgntt.cpp.o"
  "CMakeFiles/fig13_dse_cgntt.dir/fig13_dse_cgntt.cpp.o.d"
  "fig13_dse_cgntt"
  "fig13_dse_cgntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dse_cgntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
