# Empty compiler generated dependencies file for fig13_dse_cgntt.
# This may be replaced when dependencies are built.
