file(REMOVE_RECURSE
  "CMakeFiles/fig10b_tfhe_vs_strix.dir/fig10b_tfhe_vs_strix.cpp.o"
  "CMakeFiles/fig10b_tfhe_vs_strix.dir/fig10b_tfhe_vs_strix.cpp.o.d"
  "fig10b_tfhe_vs_strix"
  "fig10b_tfhe_vs_strix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_tfhe_vs_strix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
