# Empty dependencies file for fig10b_tfhe_vs_strix.
# This may be replaced when dependencies are built.
