# Empty dependencies file for sweep_all.
# This may be replaced when dependencies are built.
