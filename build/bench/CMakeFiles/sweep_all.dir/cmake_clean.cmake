file(REMOVE_RECURSE
  "CMakeFiles/sweep_all.dir/sweep_all.cpp.o"
  "CMakeFiles/sweep_all.dir/sweep_all.cpp.o.d"
  "sweep_all"
  "sweep_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
