file(REMOVE_RECURSE
  "CMakeFiles/fig15_packing.dir/fig15_packing.cpp.o"
  "CMakeFiles/fig15_packing.dir/fig15_packing.cpp.o.d"
  "fig15_packing"
  "fig15_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
