# Empty compiler generated dependencies file for fig15_packing.
# This may be replaced when dependencies are built.
