file(REMOVE_RECURSE
  "CMakeFiles/fig02_ntt_utilization.dir/fig02_ntt_utilization.cpp.o"
  "CMakeFiles/fig02_ntt_utilization.dir/fig02_ntt_utilization.cpp.o.d"
  "fig02_ntt_utilization"
  "fig02_ntt_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ntt_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
