# Empty compiler generated dependencies file for fig02_ntt_utilization.
# This may be replaced when dependencies are built.
