# Empty dependencies file for fig10a_ckks_vs_sharp.
# This may be replaced when dependencies are built.
