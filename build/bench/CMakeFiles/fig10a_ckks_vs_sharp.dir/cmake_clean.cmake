file(REMOVE_RECURSE
  "CMakeFiles/fig10a_ckks_vs_sharp.dir/fig10a_ckks_vs_sharp.cpp.o"
  "CMakeFiles/fig10a_ckks_vs_sharp.dir/fig10a_ckks_vs_sharp.cpp.o.d"
  "fig10a_ckks_vs_sharp"
  "fig10a_ckks_vs_sharp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_ckks_vs_sharp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
