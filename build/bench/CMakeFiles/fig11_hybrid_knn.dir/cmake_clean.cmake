file(REMOVE_RECURSE
  "CMakeFiles/fig11_hybrid_knn.dir/fig11_hybrid_knn.cpp.o"
  "CMakeFiles/fig11_hybrid_knn.dir/fig11_hybrid_knn.cpp.o.d"
  "fig11_hybrid_knn"
  "fig11_hybrid_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hybrid_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
