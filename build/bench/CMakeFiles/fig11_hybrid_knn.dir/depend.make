# Empty dependencies file for fig11_hybrid_knn.
# This may be replaced when dependencies are built.
