# Empty dependencies file for pbs_batching.
# This may be replaced when dependencies are built.
