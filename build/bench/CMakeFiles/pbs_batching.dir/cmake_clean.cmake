file(REMOVE_RECURSE
  "CMakeFiles/pbs_batching.dir/pbs_batching.cpp.o"
  "CMakeFiles/pbs_batching.dir/pbs_batching.cpp.o.d"
  "pbs_batching"
  "pbs_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbs_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
