# Empty compiler generated dependencies file for micro_fhe.
# This may be replaced when dependencies are built.
