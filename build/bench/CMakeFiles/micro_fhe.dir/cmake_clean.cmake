file(REMOVE_RECURSE
  "CMakeFiles/micro_fhe.dir/micro_fhe.cpp.o"
  "CMakeFiles/micro_fhe.dir/micro_fhe.cpp.o.d"
  "micro_fhe"
  "micro_fhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
