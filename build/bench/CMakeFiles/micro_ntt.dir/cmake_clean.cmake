file(REMOVE_RECURSE
  "CMakeFiles/micro_ntt.dir/micro_ntt.cpp.o"
  "CMakeFiles/micro_ntt.dir/micro_ntt.cpp.o.d"
  "micro_ntt"
  "micro_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
