file(REMOVE_RECURSE
  "CMakeFiles/table2_fig9_area.dir/table2_fig9_area.cpp.o"
  "CMakeFiles/table2_fig9_area.dir/table2_fig9_area.cpp.o.d"
  "table2_fig9_area"
  "table2_fig9_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig9_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
