# Empty dependencies file for table2_fig9_area.
# This may be replaced when dependencies are built.
