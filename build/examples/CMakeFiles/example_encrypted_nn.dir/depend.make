# Empty dependencies file for example_encrypted_nn.
# This may be replaced when dependencies are built.
