file(REMOVE_RECURSE
  "CMakeFiles/example_encrypted_nn.dir/encrypted_nn.cpp.o"
  "CMakeFiles/example_encrypted_nn.dir/encrypted_nn.cpp.o.d"
  "example_encrypted_nn"
  "example_encrypted_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_encrypted_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
