# Empty compiler generated dependencies file for example_simulate_ufc.
# This may be replaced when dependencies are built.
