file(REMOVE_RECURSE
  "CMakeFiles/example_simulate_ufc.dir/simulate_ufc.cpp.o"
  "CMakeFiles/example_simulate_ufc.dir/simulate_ufc.cpp.o.d"
  "example_simulate_ufc"
  "example_simulate_ufc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_simulate_ufc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
