file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_knn.dir/hybrid_knn.cpp.o"
  "CMakeFiles/example_hybrid_knn.dir/hybrid_knn.cpp.o.d"
  "example_hybrid_knn"
  "example_hybrid_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
