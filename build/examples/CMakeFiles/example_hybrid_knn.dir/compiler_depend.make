# Empty compiler generated dependencies file for example_hybrid_knn.
# This may be replaced when dependencies are built.
