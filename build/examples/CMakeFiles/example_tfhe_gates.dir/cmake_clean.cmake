file(REMOVE_RECURSE
  "CMakeFiles/example_tfhe_gates.dir/tfhe_gates.cpp.o"
  "CMakeFiles/example_tfhe_gates.dir/tfhe_gates.cpp.o.d"
  "example_tfhe_gates"
  "example_tfhe_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tfhe_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
