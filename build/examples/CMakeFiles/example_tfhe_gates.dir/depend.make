# Empty dependencies file for example_tfhe_gates.
# This may be replaced when dependencies are built.
