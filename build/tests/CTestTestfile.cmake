# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ufc_tests[1]_include.cmake")
add_test(sim_runner_reentrancy "/root/repo/build/tests/ufc_tests" "--gtest_filter=SpadModel.*:CycleEngine.*:UfcPerf.*:Workloads.*:Accelerators.*:Runner.*:RunnerReport.*:RunnerSweeps.*")
set_tests_properties(sim_runner_reentrancy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
