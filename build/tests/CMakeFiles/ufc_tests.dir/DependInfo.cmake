
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ckks.cpp" "tests/CMakeFiles/ufc_tests.dir/test_ckks.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_ckks.cpp.o.d"
  "/root/repo/tests/test_ckks_advanced.cpp" "tests/CMakeFiles/ufc_tests.dir/test_ckks_advanced.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_ckks_advanced.cpp.o.d"
  "/root/repo/tests/test_ckks_bootstrap.cpp" "tests/CMakeFiles/ufc_tests.dir/test_ckks_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_ckks_bootstrap.cpp.o.d"
  "/root/repo/tests/test_cost_engine.cpp" "tests/CMakeFiles/ufc_tests.dir/test_cost_engine.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_cost_engine.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/ufc_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_integer_compare.cpp" "tests/CMakeFiles/ufc_tests.dir/test_integer_compare.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_integer_compare.cpp.o.d"
  "/root/repo/tests/test_mod_arith.cpp" "tests/CMakeFiles/ufc_tests.dir/test_mod_arith.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_mod_arith.cpp.o.d"
  "/root/repo/tests/test_noise_estimator.cpp" "tests/CMakeFiles/ufc_tests.dir/test_noise_estimator.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_noise_estimator.cpp.o.d"
  "/root/repo/tests/test_ntt.cpp" "tests/CMakeFiles/ufc_tests.dir/test_ntt.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_ntt.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ufc_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rns_poly.cpp" "tests/CMakeFiles/ufc_tests.dir/test_rns_poly.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_rns_poly.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/ufc_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/ufc_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_switching.cpp" "tests/CMakeFiles/ufc_tests.dir/test_switching.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_switching.cpp.o.d"
  "/root/repo/tests/test_tfhe.cpp" "tests/CMakeFiles/ufc_tests.dir/test_tfhe.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_tfhe.cpp.o.d"
  "/root/repo/tests/test_trace_compiler.cpp" "tests/CMakeFiles/ufc_tests.dir/test_trace_compiler.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_trace_compiler.cpp.o.d"
  "/root/repo/tests/test_trace_serialize.cpp" "tests/CMakeFiles/ufc_tests.dir/test_trace_serialize.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/test_trace_serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ufc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
