# Empty dependencies file for ufc_tests.
# This may be replaced when dependencies are built.
