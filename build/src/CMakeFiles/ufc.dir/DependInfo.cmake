
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/sharp_perf.cpp" "src/CMakeFiles/ufc.dir/baselines/sharp_perf.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/baselines/sharp_perf.cpp.o.d"
  "/root/repo/src/baselines/strix_perf.cpp" "src/CMakeFiles/ufc.dir/baselines/strix_perf.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/baselines/strix_perf.cpp.o.d"
  "/root/repo/src/ckks/bootstrap.cpp" "src/CMakeFiles/ufc.dir/ckks/bootstrap.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/bootstrap.cpp.o.d"
  "/root/repo/src/ckks/chebyshev.cpp" "src/CMakeFiles/ufc.dir/ckks/chebyshev.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/chebyshev.cpp.o.d"
  "/root/repo/src/ckks/compare.cpp" "src/CMakeFiles/ufc.dir/ckks/compare.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/compare.cpp.o.d"
  "/root/repo/src/ckks/context.cpp" "src/CMakeFiles/ufc.dir/ckks/context.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/context.cpp.o.d"
  "/root/repo/src/ckks/encoder.cpp" "src/CMakeFiles/ufc.dir/ckks/encoder.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/encoder.cpp.o.d"
  "/root/repo/src/ckks/evaluator.cpp" "src/CMakeFiles/ufc.dir/ckks/evaluator.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/evaluator.cpp.o.d"
  "/root/repo/src/ckks/keys.cpp" "src/CMakeFiles/ufc.dir/ckks/keys.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/keys.cpp.o.d"
  "/root/repo/src/ckks/linear_transform.cpp" "src/CMakeFiles/ufc.dir/ckks/linear_transform.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/linear_transform.cpp.o.d"
  "/root/repo/src/ckks/noise_estimator.cpp" "src/CMakeFiles/ufc.dir/ckks/noise_estimator.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/noise_estimator.cpp.o.d"
  "/root/repo/src/ckks/params.cpp" "src/CMakeFiles/ufc.dir/ckks/params.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/params.cpp.o.d"
  "/root/repo/src/ckks/poly_eval.cpp" "src/CMakeFiles/ufc.dir/ckks/poly_eval.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/ckks/poly_eval.cpp.o.d"
  "/root/repo/src/compiler/lowering.cpp" "src/CMakeFiles/ufc.dir/compiler/lowering.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/compiler/lowering.cpp.o.d"
  "/root/repo/src/math/cg_ntt.cpp" "src/CMakeFiles/ufc.dir/math/cg_ntt.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/cg_ntt.cpp.o.d"
  "/root/repo/src/math/fft.cpp" "src/CMakeFiles/ufc.dir/math/fft.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/fft.cpp.o.d"
  "/root/repo/src/math/gadget.cpp" "src/CMakeFiles/ufc.dir/math/gadget.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/gadget.cpp.o.d"
  "/root/repo/src/math/ntt.cpp" "src/CMakeFiles/ufc.dir/math/ntt.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/ntt.cpp.o.d"
  "/root/repo/src/math/primes.cpp" "src/CMakeFiles/ufc.dir/math/primes.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/primes.cpp.o.d"
  "/root/repo/src/math/rns.cpp" "src/CMakeFiles/ufc.dir/math/rns.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/rns.cpp.o.d"
  "/root/repo/src/poly/poly.cpp" "src/CMakeFiles/ufc.dir/poly/poly.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/poly/poly.cpp.o.d"
  "/root/repo/src/poly/rns_poly.cpp" "src/CMakeFiles/ufc.dir/poly/rns_poly.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/poly/rns_poly.cpp.o.d"
  "/root/repo/src/runner/report.cpp" "src/CMakeFiles/ufc.dir/runner/report.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/runner/report.cpp.o.d"
  "/root/repo/src/runner/runner.cpp" "src/CMakeFiles/ufc.dir/runner/runner.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/runner/runner.cpp.o.d"
  "/root/repo/src/runner/sweeps.cpp" "src/CMakeFiles/ufc.dir/runner/sweeps.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/runner/sweeps.cpp.o.d"
  "/root/repo/src/sim/accelerator.cpp" "src/CMakeFiles/ufc.dir/sim/accelerator.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/accelerator.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/ufc.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/ufc.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ufc.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/ufc_perf.cpp" "src/CMakeFiles/ufc.dir/sim/ufc_perf.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/ufc_perf.cpp.o.d"
  "/root/repo/src/switching/lwe_switch.cpp" "src/CMakeFiles/ufc.dir/switching/lwe_switch.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/switching/lwe_switch.cpp.o.d"
  "/root/repo/src/switching/repack.cpp" "src/CMakeFiles/ufc.dir/switching/repack.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/switching/repack.cpp.o.d"
  "/root/repo/src/switching/scheme_switch.cpp" "src/CMakeFiles/ufc.dir/switching/scheme_switch.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/switching/scheme_switch.cpp.o.d"
  "/root/repo/src/tfhe/bootstrap.cpp" "src/CMakeFiles/ufc.dir/tfhe/bootstrap.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/bootstrap.cpp.o.d"
  "/root/repo/src/tfhe/gates.cpp" "src/CMakeFiles/ufc.dir/tfhe/gates.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/gates.cpp.o.d"
  "/root/repo/src/tfhe/integer.cpp" "src/CMakeFiles/ufc.dir/tfhe/integer.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/integer.cpp.o.d"
  "/root/repo/src/tfhe/lwe.cpp" "src/CMakeFiles/ufc.dir/tfhe/lwe.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/lwe.cpp.o.d"
  "/root/repo/src/tfhe/params.cpp" "src/CMakeFiles/ufc.dir/tfhe/params.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/params.cpp.o.d"
  "/root/repo/src/tfhe/rlwe.cpp" "src/CMakeFiles/ufc.dir/tfhe/rlwe.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/rlwe.cpp.o.d"
  "/root/repo/src/tfhe/rlwe_ks.cpp" "src/CMakeFiles/ufc.dir/tfhe/rlwe_ks.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/tfhe/rlwe_ks.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/CMakeFiles/ufc.dir/trace/serialize.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/trace/serialize.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/ufc.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/trace/trace.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/ufc.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
