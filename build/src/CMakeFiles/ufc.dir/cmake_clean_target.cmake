file(REMOVE_RECURSE
  "libufc.a"
)
