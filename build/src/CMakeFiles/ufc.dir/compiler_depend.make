# Empty compiler generated dependencies file for ufc.
# This may be replaced when dependencies are built.
