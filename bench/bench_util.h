/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: banner
 * formatting plus a thin CLI wrapper over the parallel experiment
 * runner, so every figure bench accepts the same flags:
 *
 *   --threads N   worker threads (default: all hardware threads)
 *   --serial      force single-threaded execution
 *   --json PATH   also write the structured JSON report
 *   --csv PATH    also write the CSV report
 */

#ifndef UFC_BENCH_BENCH_UTIL_H
#define UFC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/report.h"
#include "runner/sweeps.h"

namespace ufc {
namespace bench {

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paperRef.c_str());
    std::printf("==================================================="
                "===========================\n");
}

inline void
footnote(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/** Common CLI options shared by all sweep-driven benches. */
struct SweepCli
{
    runner::RunnerConfig runnerConfig;
    std::string jsonPath;
    std::string csvPath;
};

inline SweepCli
parseSweepCli(int argc, char **argv)
{
    SweepCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            cli.runnerConfig.threads = std::atoi(value());
        } else if (arg == "--serial") {
            cli.runnerConfig.threads = 1;
        } else if (arg == "--json") {
            cli.jsonPath = value();
        } else if (arg == "--csv") {
            cli.csvPath = value();
        } else {
            std::fprintf(stderr,
                         "unknown option %s (supported: --threads N, "
                         "--serial, --json PATH, --csv PATH)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    return cli;
}

/** Run one figure's sweep through the parallel runner, honouring the
 *  common CLI flags, and return the labelled results. */
inline runner::ResultSet
runSweep(const runner::Sweep &sweep, int argc, char **argv)
{
    const SweepCli cli = parseSweepCli(argc, argv);
    const runner::ExperimentRunner exec(cli.runnerConfig);
    const int threads = exec.effectiveThreads(sweep.jobs.size());

    const auto t0 = std::chrono::steady_clock::now();
    auto results = exec.run(sweep.jobs);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::printf("[%zu runs on %d threads in %.2f s]\n",
                sweep.jobs.size(), threads, wall);

    if (!cli.jsonPath.empty() || !cli.csvPath.empty()) {
        runner::ReportMeta meta;
        meta.generator = "ufc-bench/" + sweep.name;
        meta.threads = threads;
        meta.wallSeconds = wall;
        if (!cli.jsonPath.empty())
            runner::saveJsonReport(results, cli.jsonPath, meta);
        if (!cli.csvPath.empty())
            runner::saveCsvReport(results, cli.csvPath);
    }
    return runner::ResultSet(std::move(results));
}

} // namespace bench
} // namespace ufc

#endif // UFC_BENCH_BENCH_UTIL_H
