/**
 * @file
 * Shared formatting helpers for the figure/table reproduction binaries.
 */

#ifndef UFC_BENCH_BENCH_UTIL_H
#define UFC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace ufc {
namespace bench {

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paperRef.c_str());
    std::printf("==================================================="
                "===========================\n");
}

inline void
footnote(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace bench
} // namespace ufc

#endif // UFC_BENCH_BENCH_UTIL_H
