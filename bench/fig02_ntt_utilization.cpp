/**
 * @file
 * Figure 2: hardware utilization of the NTT unit on SHARP and Strix for
 * polynomials of different degrees, versus UFC's constant-geometry array
 * (which stays fully utilized via iterative stages and small-polynomial
 * packing).
 */

#include "baselines/sharp_perf.h"
#include "baselines/strix_perf.h"
#include "bench_util.h"
#include "sim/ufc_perf.h"

using namespace ufc;

int
main()
{
    bench::header("Figure 2: NTT unit utilization vs polynomial degree",
                  "UFC paper, Figure 2");

    baselines::SharpConfig sharpCfg;
    baselines::StrixConfig strixCfg;
    sim::UfcPerf ufcPerf{sim::UfcConfig::tableII()};

    std::printf("%8s %12s %12s %12s\n", "logN", "SHARP", "Strix", "UFC");
    for (int logN = 9; logN <= 16; ++logN) {
        const double sharp = baselines::SharpPerf::nttUtilization(
            logN, sharpCfg.nttPipelineLogN);
        const double strix = baselines::StrixPerf::fftUtilization(
            logN, strixCfg.designLogN, strixCfg.maxLogN);

        // UFC: utilization of the butterfly array for a packed batch that
        // fills the lanes (Section V-A packing).
        isa::HwInst inst;
        inst.op = isa::HwOp::Ntt;
        inst.logDegree = logN;
        const u64 n = 1ULL << logN;
        const u32 batch = static_cast<u32>(
            std::max<u64>(1, (2ULL * 8192) / n));
        inst.batch = batch;
        inst.words = n * batch;
        inst.work = inst.words * logN / 2;
        const double ufcUtil = ufcPerf.laneFraction(inst);

        if (strix == 0.0) {
            std::printf("%8d %11.0f%% %12s %11.0f%%\n", logN,
                        100.0 * sharp, "unsupported", 100.0 * ufcUtil);
        } else {
            std::printf("%8d %11.0f%% %11.0f%% %11.0f%%\n", logN,
                        100.0 * sharp, 100.0 * strix, 100.0 * ufcUtil);
        }
    }
    bench::footnote("paper reports 50-75% SHARP utilization for logN 9-12 "
                    "and a logN<=14 limit for Strix; UFC packs small "
                    "polynomials to stay full.");
    return 0;
}
