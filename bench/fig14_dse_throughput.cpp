/**
 * @file
 * Figure 14: design space exploration over the per-PE lane count
 * (64/128/256/512, scaling butterflies with it) and scratchpad capacity,
 * on the CKKS suite.
 */

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main()
{
    bench::header("Figure 14: DSE over lanes per PE x scratchpad",
                  "UFC paper, Figure 14");

    const auto cp = ckks::CkksParams::c2();
    const auto suite = workloads::ckksSuite(cp);

    sim::UfcModel base;
    double baseDelay = 0.0, baseEdp = 0.0, baseEdap = 0.0;
    for (const auto &tr : suite) {
        const auto r = base.run(tr);
        baseDelay += r.seconds;
        baseEdp += r.edp();
        baseEdap += r.edap();
    }

    std::printf("%-10s %-10s | %10s %10s %10s %10s\n", "lanes/PE",
                "spad(MB)", "area(mm2)", "delay", "EDP", "EDAP");
    for (int lanes : {64, 128, 256, 512}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            auto cfg = sim::UfcConfig::tableII();
            cfg.lanesPerPe = lanes;
            cfg.butterfliesPerPe = lanes / 2;
            cfg.globalNocWordsPerCycle = 64 * lanes * 2;
            cfg.scratchpadMb = spad;
            sim::UfcModel model(cfg);

            double delay = 0.0, edp = 0.0, edap = 0.0;
            for (const auto &tr : suite) {
                const auto r = model.run(tr);
                delay += r.seconds;
                edp += r.edp();
                edap += r.edap();
            }
            std::printf("%-10d %-10.0f | %10.1f %9.2fx %9.2fx %9.2fx\n",
                        lanes, spad, model.areaMm2(), delay / baseDelay,
                        edp / baseEdp, edap / baseEdap);
        }
    }
    bench::footnote("ratios relative to Table II (256 lanes, 256 MB); "
                    "lower is better.  Paper: more lanes give better EDP "
                    "and EDAP, showing the architecture scales.");
    return 0;
}
