/**
 * @file
 * Figure 14: design space exploration over the per-PE lane count
 * (64/128/256/512, scaling butterflies with it) and scratchpad capacity,
 * on the CKKS suite, run concurrently through the experiment runner.
 */

#include <array>

#include "bench_util.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
{
    bench::header("Figure 14: DSE over lanes per PE x scratchpad",
                  "UFC paper, Figure 14");

    const auto suite = workloads::ckksSuite(ckks::CkksParams::c2());
    const auto sweep = runner::fig14Sweep();
    const auto results = bench::runSweep(sweep, argc, argv);

    const auto totals = [&](const std::string &group) {
        double delay = 0.0, edp = 0.0, edap = 0.0, area = 0.0;
        for (const auto &tr : suite) {
            const auto &r = results.at(
                runner::jobLabel(sweep.name, group, tr.name, "UFC"));
            delay += r.seconds;
            edp += r.edp();
            edap += r.edap();
            area = r.areaMm2;
        }
        return std::array<double, 4>{delay, edp, edap, area};
    };

    // Baseline for normalization: Table II (256 lanes/PE, 256 MB).
    const auto base = totals(runner::dseLaneGroup(256, 256.0));

    std::printf("%-10s %-10s | %10s %10s %10s %10s\n", "lanes/PE",
                "spad(MB)", "area(mm2)", "delay", "EDP", "EDAP");
    for (int lanes : {64, 128, 256, 512}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            const auto t = totals(runner::dseLaneGroup(lanes, spad));
            std::printf("%-10d %-10.0f | %10.1f %9.2fx %9.2fx %9.2fx\n",
                        lanes, spad, t[3], t[0] / base[0], t[1] / base[1],
                        t[2] / base[2]);
        }
    }
    bench::footnote("ratios relative to Table II (256 lanes, 256 MB); "
                    "lower is better.  Paper: more lanes give better EDP "
                    "and EDAP, showing the architecture scales.");
    return 0;
}
