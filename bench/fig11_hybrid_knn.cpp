/**
 * @file
 * Figure 11: the hybrid k-NN workload on UFC versus the composed
 * SHARP + Strix system (PCIe 5.0 x16 between the chips) for TFHE
 * parameter sets T1-T4.
 *
 *   ./build/bench/fig11_hybrid_knn
 *   ./build/bench/fig11_hybrid_knn --timeline knn_t4.json
 *       also export the UFC run's event stream (last parameter set) as
 *       Chrome trace-event JSON; open it in https://ui.perfetto.dev
 */

#include <cmath>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "sim/accelerator.h"
#include "sim/timeline.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
{
    std::string timelinePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
            timelinePath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--timeline OUT.json]\n", argv[0]);
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
        }
    }

    bench::header("Figure 11: hybrid k-NN, UFC vs composed SHARP+Strix",
                  "UFC paper, Figure 11");

    const auto cp = ckks::CkksParams::c2();
    sim::UfcModel ufcm;
    sim::ComposedModel composed;
    sim::Timeline timeline;

    std::printf("%-10s %12s %14s | %7s %7s %7s\n", "params",
                "UFC (ms)", "SHARP+Strix", "delay", "EDP", "EDAP");
    double sumDelay13 = 0.0;
    double sumEdp = 0.0, sumEdap = 0.0;
    int i = 0;
    for (const auto &tp : {tfhe::TfheParams::t1(), tfhe::TfheParams::t2(),
                           tfhe::TfheParams::t3(),
                           tfhe::TfheParams::t4()}) {
        const auto tr = workloads::hybridKnn(cp, tp);
        sim::RunOptions uopts;
        if (!timelinePath.empty())
            uopts.timeline = &timeline; // last set's run wins (T4)
        const auto u = ufcm.run(tr, uopts);
        const auto c = composed.run(tr);
        const double delay = c.seconds / u.seconds;
        const double edp = c.edp() / u.edp();
        const double edap = c.edap() / u.edap();
        std::printf("%-10s %12.2f %14.2f | %6.2fx %6.2fx %6.2fx\n",
                    tp.name.c_str(), 1e3 * u.seconds, 1e3 * c.seconds,
                    delay, edp, edap);
        if (i < 3)
            sumDelay13 += delay;
        sumEdp += edp;
        sumEdap += edap;
        ++i;
    }
    std::printf("\naverage delay T1-T3: %.2fx   average EDP: %.2fx   "
                "average EDAP: %.2fx\n", sumDelay13 / 3.0, sumEdp / 4.0,
                sumEdap / 4.0);
    if (!timelinePath.empty()) {
        timeline.saveChromeTrace(timelinePath);
        std::printf("wrote %s (%zu slices; open in ui.perfetto.dev)\n",
                    timelinePath.c_str(), timeline.slices().size());
    }
    bench::footnote("paper: ~1.04x at T1-T3, 2.8x at T4; 3.1x EDP and "
                    "3.7x EDAP over the composed system.");
    return 0;
}
