/**
 * @file
 * Trace inspector: run a saved (or built-in) workload trace on one
 * machine model and print the observability breakdown — top-k opcodes by
 * attributed cycles and energy, the stall-cause histogram, and the
 * exact-sum check (per-opcode cycles == total_cycles).
 *
 *   ./build/bench/inspect_trace my_workload.ufctrace
 *   ./build/bench/inspect_trace --builtin hybrid_knn --machine ufc
 *   ./build/bench/inspect_trace --builtin boot --top 5 --timeline t.json
 *   ./build/bench/inspect_trace trace.ufctrace --json   # RunResult JSON
 *
 * A corrupt/truncated trace file (or invalid run configuration) prints a
 * one-line "error: <kind>: <reason>" diagnosis on stderr and exits 1;
 * usage errors exit 2.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "sim/accelerator.h"
#include "sim/timeline.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [TRACE_FILE] [options]\n"
        "  TRACE_FILE            a trace saved in the ufctrace format\n"
        "  --builtin NAME        helr | boot | pbs | hybrid_knn instead\n"
        "                        of a trace file\n"
        "  --machine NAME        ufc | sharp | strix | composed "
        "(default: ufc)\n"
        "  --prefetch-window N   engine prefetch window (0 = no "
        "lookahead;\n"
        "                        default: the model's)\n"
        "  --top K               rows in the per-opcode table "
        "(default: 8)\n"
        "  --timeline PATH       export the run's Chrome trace-event "
        "JSON\n"
        "  --json                print the RunResult JSON instead of "
        "tables\n"
        "  --bytecode            print the compiled Program disassembly\n"
        "                        (no simulation)\n",
        argv0);
}

trace::Trace
builtinTrace(const std::string &name)
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t3();
    if (name == "helr")
        return workloads::helr(cp);
    if (name == "boot")
        return workloads::ckksBootstrapping(cp);
    if (name == "pbs")
        return workloads::pbsThroughput(tp);
    if (name == "hybrid_knn")
        return workloads::hybridKnn(cp, tp);
    std::fprintf(stderr, "unknown builtin '%s' (helr|boot|pbs|"
                         "hybrid_knn)\n", name.c_str());
    std::exit(2);
}

std::unique_ptr<sim::AcceleratorModel>
makeMachine(const std::string &name)
{
    if (name == "ufc")
        return std::make_unique<sim::UfcModel>();
    if (name == "sharp")
        return std::make_unique<sim::SharpModel>();
    if (name == "strix")
        return std::make_unique<sim::StrixModel>();
    if (name == "composed")
        return std::make_unique<sim::ComposedModel>();
    std::fprintf(stderr, "unknown machine '%s' (ufc|sharp|strix|"
                         "composed)\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string tracePath;
    std::string builtin;
    std::string machine = "ufc";
    std::string timelinePath;
    int top = 8;
    int prefetchWindow = -1;
    bool asJson = false;
    bool asBytecode = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--builtin")
            builtin = value();
        else if (arg == "--machine")
            machine = value();
        else if (arg == "--top")
            top = std::atoi(value());
        else if (arg == "--prefetch-window")
            prefetchWindow = std::atoi(value());
        else if (arg == "--timeline")
            timelinePath = value();
        else if (arg == "--json")
            asJson = true;
        else if (arg == "--bytecode")
            asBytecode = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && tracePath.empty()) {
            tracePath = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (tracePath.empty() == builtin.empty()) {
        std::fprintf(stderr,
                     "give exactly one of TRACE_FILE or --builtin\n");
        usage(argv[0]);
        return 2;
    }

    const auto model = makeMachine(machine);

    if (asBytecode && !tracePath.empty()) {
        // Compile-only, straight off the file through the streaming
        // reader (bounded memory; malformed files exit through the
        // one-line diagnosis below like every other trace error).  The
        // disassembly header lists each phase segment's content hash
        // and default cache key.
        std::ifstream is(tracePath);
        UFC_EXPECT(is.good(), TraceError,
                   "cannot open trace file " << tracePath);
        std::ostringstream os;
        compiler::disassemble(model->compileStream(is), os);
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }

    const trace::Trace tr = builtin.empty() ? trace::loadTrace(tracePath)
                                            : builtinTrace(builtin);

    if (asBytecode) {
        // Compile-only: disassemble the Program this machine would
        // execute (composed machines print one section per chip).
        std::ostringstream os;
        compiler::disassemble(model->compile(tr), os);
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }

    sim::Timeline timeline;
    sim::RunOptions opts;
    opts.prefetchWindow = prefetchWindow;
    opts.label = "inspect/" + tr.name + "/" + machine;
    if (!timelinePath.empty() && machine != "composed")
        opts.timeline = &timeline;
    const sim::RunResult r = model->run(tr, opts);

    if (asJson) {
        std::printf("%s\n", r.toJson().c_str());
    } else {
        std::printf("trace    %s (%llu high-level ops, %llu "
                    "instructions)\n", tr.name.c_str(),
                    static_cast<unsigned long long>(tr.totalOps()),
                    static_cast<unsigned long long>(r.stats.instCount));
        std::printf("machine  %s   total %.0f cycles   %.3f ms   "
                    "%.3f J\n\n", r.machine.c_str(), r.stats.totalCycles,
                    1e3 * r.seconds, r.energyJ);

        // Per-opcode table sorted by attributed cycles.
        std::vector<int> order;
        for (int i = 0; i < isa::kNumHwOps; ++i)
            if (r.stats.opStats[i].count > 0)
                order.push_back(i);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return r.stats.opStats[a].cycles > r.stats.opStats[b].cycles;
        });
        std::printf("top opcodes by attributed cycles:\n");
        std::printf("  %-12s %10s %14s %6s %12s %12s %10s\n", "opcode",
                    "count", "cycles", "%", "stall_cyc", "hbm_bytes",
                    "energy_j");
        const size_t rows =
            std::min<size_t>(order.size(),
                             top > 0 ? static_cast<size_t>(top)
                                     : order.size());
        for (size_t i = 0; i < rows; ++i) {
            const auto &o = r.stats.opStats[order[i]];
            const auto op = static_cast<isa::HwOp>(order[i]);
            std::printf("  %-12s %10llu %14.0f %5.1f%% %12.0f %12.3g "
                        "%10.3g\n", isa::opName(op),
                        static_cast<unsigned long long>(o.count),
                        o.cycles,
                        100.0 * o.cycles /
                            std::max(1.0, r.stats.totalCycles),
                        o.stallCycles, o.hbmBytes, r.opEnergyJ(op));
        }
        if (rows < order.size())
            std::printf("  ... %zu more opcodes\n", order.size() - rows);

        const auto &st = r.stats.stalls;
        std::printf("\nstall histogram (cycles):\n");
        std::printf("  %-22s %14.0f\n", "hbm_bound", st.hbmBound);
        std::printf("  %-22s %14.0f\n", "dependency", st.dependency);
        std::printf("  %-22s %14.0f\n", "pipeline_fill", st.pipelineFill);
        std::printf("  %-22s %14.0f  (subset of hbm occupancy; %llu "
                    "evictions, %.3g B written back)\n",
                    "spad_spill", st.spadSpillCycles,
                    static_cast<unsigned long long>(st.spadEvictions),
                    st.spadWritebackBytes);

        // Exact-sum acceptance check.  A single engine maintains the
        // identity exactly; the composed machine merges two engines'
        // tables, which can move the sum by ulps.
        double opSum = 0.0;
        for (const auto &o : r.stats.opStats)
            opSum += o.cycles;
        const bool exact = opSum == r.stats.totalCycles;
        const double rel =
            r.stats.totalCycles > 0
                ? std::fabs(opSum - r.stats.totalCycles) /
                      r.stats.totalCycles
                : std::fabs(opSum);
        const bool ok = machine == "composed" ? rel <= 1e-9 : exact;
        std::printf("\nper-opcode cycle sum %.17g vs total %.17g: %s\n",
                    opSum, r.stats.totalCycles,
                    ok ? (exact ? "exact match" : "match (<=1e-9 rel)")
                       : "MISMATCH");
        if (!ok)
            return 1;
    }

    if (!timelinePath.empty()) {
        if (machine == "composed") {
            std::fprintf(stderr, "--timeline is not supported for the "
                                 "composed machine (two clock "
                                 "domains)\n");
            return 2;
        }
        timeline.saveChromeTrace(timelinePath);
        std::printf("wrote %s (%zu slices; open in ui.perfetto.dev)\n",
                    timelinePath.c_str(), timeline.slices().size());
    }
    return 0;
} catch (const ufc::Error &e) {
    // One-line diagnosis for corrupt traces / invalid configurations.
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
