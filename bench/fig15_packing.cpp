/**
 * @file
 * Figure 15: performance gain of small-polynomial packing with TvLP
 * versus CoLP (both on top of PLP) across the TFHE parameter sets.
 */

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main()
{
    bench::header("Figure 15: small-polynomial packing, TvLP vs CoLP",
                  "UFC paper, Figure 15");

    std::printf("%-8s %14s %14s %14s | %10s\n", "params", "none (ms)",
                "CoLP (ms)", "TvLP (ms)", "TvLP/CoLP");
    for (const auto &tp : {tfhe::TfheParams::t1(), tfhe::TfheParams::t2(),
                           tfhe::TfheParams::t3(),
                           tfhe::TfheParams::t4()}) {
        const auto tr = workloads::pbsThroughput(tp, 512);

        auto cfgNoPack = sim::UfcConfig::tableII();
        cfgNoPack.smallPolyPacking = false;
        const auto none = sim::UfcModel(cfgNoPack).run(tr);

        const auto colp =
            sim::UfcModel(sim::UfcConfig::tableII(),
                          compiler::Parallelism::CoLP).run(tr);
        const auto tvlp =
            sim::UfcModel(sim::UfcConfig::tableII(),
                          compiler::Parallelism::TvLP).run(tr);

        std::printf("%-8s %14.2f %14.2f %14.2f | %9.2fx\n",
                    tp.name.c_str(), 1e3 * none.seconds,
                    1e3 * colp.seconds, 1e3 * tvlp.seconds,
                    colp.seconds / tvlp.seconds);
    }
    bench::footnote("paper: TvLP clearly beats CoLP at small parameters; "
                    "the gap shrinks as the ring grows (fewer polynomials "
                    "pack and TvLP's working set grows).");
    return 0;
}
