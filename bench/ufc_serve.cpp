/**
 * @file
 * ufc_serve: the long-lived simulation daemon (serve/server.h) as a
 * CLI.  Binds an AF_UNIX socket, serves submit/status/result/cancel/
 * health/metrics/drain requests, and shuts down cleanly on SIGINT/
 * SIGTERM or a protocol `drain`: admission stops, queued and in-flight
 * jobs finish, a final `ufc.report/v2` envelope (every accepted job,
 * successes and failures alike) plus optional Prometheus metrics are
 * flushed, and the exit status is 0.
 *
 *   ./build/bench/ufc_serve --socket /tmp/ufc.sock
 *   ./build/bench/ufc_serve --socket /tmp/ufc.sock --workers 4 \
 *       --queue 128 --report serve_report.json --metrics-out serve.prom
 *
 * exit status: 0 clean drain, 1 startup failure, 2 usage.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.h"
#include "metrics/metrics.h"
#include "runner/report.h"
#include "serve/server.h"

using namespace ufc;

namespace {

std::atomic<bool> gShutdown{false};

extern "C" void
onSignal(int)
{
    gShutdown.store(true, std::memory_order_relaxed);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH     AF_UNIX socket to listen on (required)\n"
        "  --workers N       job-executor threads (default 2)\n"
        "  --queue N         admission queue capacity (default 64)\n"
        "  --max-conns N     concurrent connections (default 64)\n"
        "  --deadline-ms D   default per-request deadline incl. queue\n"
        "                    wait (default 0 = none)\n"
        "  --retries N       default retry budget per job (default 0)\n"
        "  --retry-backoff-ms B  base retry backoff delay (default 25)\n"
        "  --tenant-burst N  token-bucket burst per tenant (default 64;\n"
        "                    0 disables tenant rate limiting)\n"
        "  --tenant-rate R   token refill per second (default 32)\n"
        "  --lint            lint pre-flight on jobs by default (shed\n"
        "                    under load, tier >= 1)\n"
        "  --no-phase-cache  do not share a phase cache across requests\n"
        "  --program-cache N bound on the compiled-program cache\n"
        "                    (default 256 entries)\n"
        "  --retention N     terminal results retained for queries and\n"
        "                    the final report (default 8192)\n"
        "  --report PATH     final ufc.report/v2 envelope on drain\n"
        "                    (default ufc_serve_report.json; \"\" skips)\n"
        "  --metrics-out PATH  Prometheus exposition written on drain\n"
        "  --no-metrics      disable the metrics registry (on by\n"
        "                    default here)\n"
        "\n"
        "exit status: 0 clean drain, 1 startup failure, 2 usage\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
try {
    serve::ServeConfig cfg;
    std::string reportPath = "ufc_serve_report.json";
    std::string metricsOutPath;
    bool noMetrics = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            cfg.socketPath = value();
        else if (arg == "--workers")
            cfg.workers = std::atoi(value());
        else if (arg == "--queue")
            cfg.queueCapacity =
                static_cast<std::size_t>(std::atoll(value()));
        else if (arg == "--max-conns")
            cfg.maxConnections = std::atoi(value());
        else if (arg == "--deadline-ms")
            cfg.defaultDeadlineMs = std::atof(value());
        else if (arg == "--retries")
            cfg.maxRetries = std::atoi(value());
        else if (arg == "--retry-backoff-ms")
            cfg.retryBackoff.baseMs = std::atof(value());
        else if (arg == "--tenant-burst")
            cfg.tenantBurst = std::atof(value());
        else if (arg == "--tenant-rate")
            cfg.tenantRatePerSec = std::atof(value());
        else if (arg == "--lint")
            cfg.lintPreflight = true;
        else if (arg == "--no-phase-cache")
            cfg.usePhaseCache = false;
        else if (arg == "--program-cache")
            cfg.programCacheMaxEntries =
                static_cast<std::size_t>(std::atoll(value()));
        else if (arg == "--retention")
            cfg.resultRetention =
                static_cast<std::size_t>(std::atoll(value()));
        else if (arg == "--report")
            reportPath = value();
        else if (arg == "--metrics-out")
            metricsOutPath = value();
        else if (arg == "--no-metrics")
            noMetrics = true;
        else {
            usage(argv[0]);
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (cfg.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    // Like sweep_all: the daemon is a scrape surface, so metrics
    // recording defaults ON (observation-only; results unaffected).
    metrics::setEnabled(!noMetrics);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    serve::Server server(cfg);
    server.start();
    std::printf("ufc_serve listening on %s (%d workers, queue %zu)\n",
                cfg.socketPath.c_str(), cfg.workers, cfg.queueCapacity);
    std::fflush(stdout);

    // Serve until a signal or a protocol-level drain request.
    while (!gShutdown.load(std::memory_order_relaxed) &&
           !server.drainRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("ufc_serve draining...\n");
    std::fflush(stdout);
    server.beginDrain();
    server.awaitDrained();

    // Flush the final report while results are still queryable, then
    // give drain-aware clients a beat to fetch what they were waiting
    // on before connections close.
    const auto batch = server.reportBatch();
    const auto st = server.stats();
    if (!reportPath.empty()) {
        runner::ReportMeta meta;
        meta.generator = "ufc-serve";
        meta.threads = cfg.workers;
        runner::saveJsonReport(batch, reportPath, meta);
        std::printf("wrote %s (%zu jobs, %zu failures)\n",
                    reportPath.c_str(), batch.results.size(),
                    batch.failureCount());
    }
    if (!metricsOutPath.empty() && !noMetrics) {
        metrics::savePrometheus(metricsOutPath);
        std::printf("wrote %s\n", metricsOutPath.c_str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server.stop();

    std::printf("ufc_serve done: %llu submitted, %llu completed, "
                "%llu failed, %llu cancelled, %llu shed, %llu "
                "rate-limited\n",
                static_cast<unsigned long long>(st.submitted),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.failed),
                static_cast<unsigned long long>(st.cancelled),
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.rateLimited));
    return 0;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
