/**
 * @file
 * Table II + Figure 9: the UFC configuration, total area/power at 7 nm,
 * and the component-level area breakdown.
 */

#include "bench_util.h"
#include "sim/cost_model.h"

using namespace ufc;

int
main()
{
    bench::header("Table II / Figure 9: UFC configuration and area",
                  "UFC paper, Table II and Figure 9");

    const auto cfg = sim::UfcConfig::tableII();
    std::printf("Processing element (PE)\n");
    std::printf("  %-28s %d\n", "Butterfly ALU", cfg.butterfliesPerPe);
    std::printf("  %-28s %d\n", "Mod.ADD/Mul lanes", cfg.lanesPerPe);
    std::printf("  %-28s %.0f KB\n", "Register file", cfg.registerFileKb);
    std::printf("Compute cluster\n");
    std::printf("  %-28s %d x %d\n", "PE array", cfg.peRows, cfg.peCols);
    std::printf("  %-28s %d words/cycle\n", "Global interconnect",
                cfg.globalNocWordsPerCycle);
    std::printf("  %-28s %.0f MB\n", "Scratchpad", cfg.scratchpadMb);
    std::printf("Near-memory unit\n");
    std::printf("  %-28s %dx%dx2\n", "Crossbar", cfg.crossbarPorts,
                cfg.crossbarPorts);
    std::printf("  %-28s %.0f KB\n", "LWE SPAD", cfg.lweSpadKb);
    std::printf("Clock: %.1f GHz, word: %d-bit\n\n", cfg.freqGHz,
                cfg.wordBits);

    sim::UfcCostModel cost(cfg);
    const auto items = cost.areaBreakdown();
    const double total = cost.areaMm2();
    std::printf("%-32s %10s %8s\n", "Component", "mm^2", "share");
    for (const auto &item : items) {
        std::printf("%-32s %10.1f %7.1f%%\n", item.component.c_str(),
                    item.mm2, 100.0 * item.mm2 / total);
    }
    std::printf("%-32s %10.1f\n", "TOTAL", total);
    bench::footnote("paper Table II reports 197.7 mm^2 / 76.9 W @ 7 nm.");
    return 0;
}
