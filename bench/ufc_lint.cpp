/**
 * @file
 * ufc-lint: pass-based static verifier for trace IR and lowered
 * instruction streams.
 *
 * Lints saved .ufctrace files and/or every built-in workload generator:
 * trace-level passes (scheme legality, limb-chain consistency, phase
 * discipline, batched-op field validity, working-set feasibility) plus —
 * unless --trace-only — a verifying lowering that checks per-instruction
 * operand invariants on the compiler's actual output.  --dataflow adds
 * the abstract-interpretation rules (level-flow and rescale-discipline
 * domains over the trace, replay-purity and scratchpad def-use/liveness
 * over the compiled bytecode); --bounds prints the static cycle/HBM
 * cost bounds per subject (see analysis/cost_bounds.h).
 *
 *   ./build/bench/ufc_lint trace.ufctrace
 *   ./build/bench/ufc_lint --builtins --Werror           # CI gate
 *   ./build/bench/ufc_lint --dataflow --builtins --Werror
 *   ./build/bench/ufc_lint --dataflow --sarif lint.sarif --builtins
 *   ./build/bench/ufc_lint --json a.ufctrace b.ufctrace
 *   ./build/bench/ufc_lint --rules                       # registry table
 *
 * Exit codes follow the repo's CLI conventions: 0 = clean, 1 = findings
 * (errors, or warnings under --Werror) or a typed error (unreadable /
 * unparseable trace file), 2 = usage.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cost_bounds.h"
#include "analysis/domains.h"
#include "analysis/sarif.h"
#include "common/error.h"
#include "compiler/bytecode.h"
#include "compiler/lowering.h"
#include "sim/ufc_perf.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [TRACE_FILE...] [options]\n"
        "  TRACE_FILE      traces saved in the ufctrace format\n"
        "  --builtins      also lint every built-in workload generator\n"
        "  --trace-only    skip the instruction-level verifying lowering\n"
        "  --dataflow      run the abstract-interpretation rules (df-*)\n"
        "  --bounds        print static cycle/HBM cost bounds per subject\n"
        "  --sarif PATH    write all findings as one SARIF 2.1.0 log\n"
        "  --Werror        treat warnings as findings (exit 1)\n"
        "  --json          machine-readable report per subject\n"
        "  --quiet         suppress per-subject ok lines\n"
        "  --rules         print the rule registry and exit\n",
        argv0);
}

void
printRules()
{
    std::printf("%-26s %-8s %s\n", "rule", "severity", "description");
    for (const auto &rule : analysis::ruleRegistry())
        std::printf("%-26s %-8s %s\n", rule.id,
                    analysis::severityName(rule.severity),
                    rule.description);
}

struct Subject
{
    std::string label;
    trace::Trace tr;
};

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> files;
    std::string sarifPath;
    bool builtins = false;
    bool traceOnly = false;
    bool dataflow = false;
    bool bounds = false;
    bool wError = false;
    bool asJson = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--builtins")
            builtins = true;
        else if (arg == "--trace-only")
            traceOnly = true;
        else if (arg == "--dataflow")
            dataflow = true;
        else if (arg == "--bounds")
            bounds = true;
        else if (arg == "--sarif") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--sarif needs a PATH\n");
                usage(argv[0]);
                return 2;
            }
            sarifPath = argv[++i];
        } else if (arg == "--Werror")
            wError = true;
        else if (arg == "--json")
            asJson = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--rules") {
            printRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            files.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (files.empty() && !builtins) {
        std::fprintf(stderr,
                     "give at least one TRACE_FILE or --builtins\n");
        usage(argv[0]);
        return 2;
    }
    if (bounds && traceOnly) {
        std::fprintf(stderr,
                     "--bounds needs the lowering (drop --trace-only)\n");
        usage(argv[0]);
        return 2;
    }

    std::vector<Subject> subjects;
    for (const auto &path : files)
        subjects.push_back(Subject{path, trace::loadTrace(path)});
    if (builtins) {
        const auto cp = ckks::CkksParams::c2();
        const auto tp = tfhe::TfheParams::t3();
        for (auto &tr : workloads::ckksSuite(cp))
            subjects.push_back(
                Subject{"builtin:" + tr.name, std::move(tr)});
        for (auto &tr : workloads::tfheSuite(tp))
            subjects.push_back(
                Subject{"builtin:" + tr.name, std::move(tr)});
        auto knn = workloads::hybridKnn(cp, tp);
        subjects.push_back(
            Subject{"builtin:" + knn.name, std::move(knn)});
    }

    const analysis::Analyzer linter;
    const compiler::LoweringOptions lowerOpts; // machine-default knobs
    std::vector<analysis::SarifSubject> sarifLog;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const auto &subject : subjects) {
        analysis::DiagnosticReport rep;
        if (traceOnly) {
            rep = dataflow ? linter.analyzeDataflow(subject.tr)
                           : linter.analyze(subject.tr);
        } else if (!dataflow && !bounds) {
            rep = linter.analyzeLowered(subject.tr, lowerOpts);
        } else {
            // The dataflow/bounds paths need the compiled Program in
            // hand, so run the verifying lowering here instead of
            // inside analyzeLowered() and reuse the bytecode for the
            // program-level rules and the cost bounds.
            rep = dataflow ? linter.analyzeDataflow(subject.tr)
                           : linter.analyze(subject.tr);
            if (rep.errorCount() == 0) {
                analysis::DiagnosticReport lowered;
                const sim::UfcPerf perf{sim::UfcConfig::tableII()};
                const compiler::Program program = compiler::compileTrace(
                    subject.tr, lowerOpts, perf, "UFC", &lowered);
                compiler::verifyProgram(program, lowered);
                rep.merge(lowered);
                if (dataflow && rep.errorCount() == 0)
                    analysis::runProgramDataflow(program, rep);
                if (bounds) {
                    const analysis::CostBounds cb =
                        analysis::analyzeCostBounds(program);
                    std::printf(
                        "%s: cycles [%.0f, %.0f] ratio %.3f | "
                        "hbm [%.0f, %.0f] B ratio %.3f | "
                        "peak spad %.0f B%s\n",
                        subject.label.c_str(), cb.cyclesLower,
                        cb.cyclesUpper, cb.cyclesRatio(), cb.hbmLower,
                        cb.hbmUpper, cb.hbmRatio(), cb.peakLiveSlotBytes,
                        cb.fits ? "" : " (exceeds scratchpad)");
                }
            }
        }
        errors += rep.errorCount();
        warnings += rep.warningCount();
        if (!sarifPath.empty())
            sarifLog.push_back(
                analysis::SarifSubject{subject.label, rep});
        if (asJson) {
            std::printf("%s\n", rep.toJson(subject.label).c_str());
        } else if (!rep.empty()) {
            std::printf("%s:\n", subject.label.c_str());
            for (const auto &d : rep.diagnostics())
                std::printf("  %s\n", d.format().c_str());
        } else if (!quiet && !bounds) {
            std::printf("%s: ok\n", subject.label.c_str());
        }
    }

    if (!sarifPath.empty()) {
        std::ofstream os(sarifPath, std::ios::binary);
        UFC_EXPECT(os.good(), ConfigError,
                   "--sarif: cannot open '" << sarifPath
                                            << "' for writing");
        os << analysis::toSarif(sarifLog);
        UFC_EXPECT(os.good(), ConfigError,
                   "--sarif: write to '" << sarifPath << "' failed");
    }

    if (!quiet && !asJson)
        std::printf("%zu subject(s), %zu error(s), %zu warning(s)\n",
                    subjects.size(), errors, warnings);
    return (errors > 0 || (wError && warnings > 0)) ? 1 : 0;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
