/**
 * @file
 * ufc-lint: pass-based static verifier for trace IR and lowered
 * instruction streams.
 *
 * Lints saved .ufctrace files and/or every built-in workload generator:
 * trace-level passes (scheme legality, limb-chain consistency, phase
 * discipline, batched-op field validity, working-set feasibility) plus —
 * unless --trace-only — a verifying lowering that checks per-instruction
 * operand invariants on the compiler's actual output.
 *
 *   ./build/bench/ufc_lint trace.ufctrace
 *   ./build/bench/ufc_lint --builtins --Werror     # CI gate
 *   ./build/bench/ufc_lint --json a.ufctrace b.ufctrace
 *   ./build/bench/ufc_lint --rules                 # registry table
 *
 * Exit codes follow the repo's CLI conventions: 0 = clean, 1 = findings
 * (errors, or warnings under --Werror) or a typed error (unreadable /
 * unparseable trace file), 2 = usage.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/error.h"
#include "compiler/lowering.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [TRACE_FILE...] [options]\n"
        "  TRACE_FILE      traces saved in the ufctrace format\n"
        "  --builtins      also lint every built-in workload generator\n"
        "  --trace-only    skip the instruction-level verifying lowering\n"
        "  --Werror        treat warnings as findings (exit 1)\n"
        "  --json          machine-readable report per subject\n"
        "  --quiet         suppress per-subject ok lines\n"
        "  --rules         print the rule registry and exit\n",
        argv0);
}

void
printRules()
{
    std::printf("%-26s %-8s %s\n", "rule", "severity", "description");
    for (const auto &rule : analysis::ruleRegistry())
        std::printf("%-26s %-8s %s\n", rule.id,
                    analysis::severityName(rule.severity),
                    rule.description);
}

struct Subject
{
    std::string label;
    trace::Trace tr;
};

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> files;
    bool builtins = false;
    bool traceOnly = false;
    bool wError = false;
    bool asJson = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--builtins")
            builtins = true;
        else if (arg == "--trace-only")
            traceOnly = true;
        else if (arg == "--Werror")
            wError = true;
        else if (arg == "--json")
            asJson = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--rules") {
            printRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            files.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (files.empty() && !builtins) {
        std::fprintf(stderr,
                     "give at least one TRACE_FILE or --builtins\n");
        usage(argv[0]);
        return 2;
    }

    std::vector<Subject> subjects;
    for (const auto &path : files)
        subjects.push_back(Subject{path, trace::loadTrace(path)});
    if (builtins) {
        const auto cp = ckks::CkksParams::c2();
        const auto tp = tfhe::TfheParams::t3();
        for (auto &tr : workloads::ckksSuite(cp))
            subjects.push_back(
                Subject{"builtin:" + tr.name, std::move(tr)});
        for (auto &tr : workloads::tfheSuite(tp))
            subjects.push_back(
                Subject{"builtin:" + tr.name, std::move(tr)});
        auto knn = workloads::hybridKnn(cp, tp);
        subjects.push_back(
            Subject{"builtin:" + knn.name, std::move(knn)});
    }

    const analysis::Analyzer linter;
    const compiler::LoweringOptions lowerOpts; // machine-default knobs
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const auto &subject : subjects) {
        const analysis::DiagnosticReport rep =
            traceOnly ? linter.analyze(subject.tr)
                      : linter.analyzeLowered(subject.tr, lowerOpts);
        errors += rep.errorCount();
        warnings += rep.warningCount();
        if (asJson) {
            std::printf("%s\n", rep.toJson(subject.label).c_str());
        } else if (!rep.empty()) {
            std::printf("%s:\n", subject.label.c_str());
            for (const auto &d : rep.diagnostics())
                std::printf("  %s\n", d.format().c_str());
        } else if (!quiet) {
            std::printf("%s: ok\n", subject.label.c_str());
        }
    }

    if (!quiet && !asJson)
        std::printf("%zu subject(s), %zu error(s), %zu warning(s)\n",
                    subjects.size(), errors, warnings);
    return (errors > 0 || (wError && warnings > 0)) ? 1 : 0;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
