/**
 * @file
 * One-shot parallel reproduction of the paper's entire evaluation sweep
 * (Figures 10(a), 10(b), 12, 13, 14): every workload x accelerator x
 * configuration job from runner::paperSweeps() executed across a thread
 * pool, with a structured JSON (and optionally CSV) report.
 *
 * Fault tolerance: each job runs inside the runner's isolation boundary,
 * so a corrupt user trace, an invalid configuration, or a watchdog trip
 * fails only its own job.  The batch always completes; failures land in
 * the report's "failures" block and the exit code turns nonzero.
 *
 *   ./build/bench/sweep_all                          # all cores -> ufc_sweep.json
 *   ./build/bench/sweep_all --threads 4 --csv out.csv
 *   ./build/bench/sweep_all --compare-serial         # verify + time vs serial
 *   ./build/bench/sweep_all --sweep fig13 --list
 *   ./build/bench/sweep_all --no-paper --trace my.ufctrace --retries 1
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "metrics/metrics.h"
#include "runner/report.h"
#include "runner/sweeps.h"
#include "sim/phase_cache.h"

using namespace ufc;

namespace {

/// Set by the SIGINT/SIGTERM handler; the runner checks it before each
/// job (RunnerConfig::cancelFlag), so an interrupted sweep finishes its
/// in-flight jobs, marks the rest "skipped", and still flushes a
/// partial report before exiting 130.
std::atomic<bool> gInterrupted{false};

extern "C" void
onInterrupt(int)
{
    gInterrupted.store(true, std::memory_order_relaxed);
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Everything except hostSeconds (a host-side measurement) must match. */
bool
identicalSimulated(const sim::RunResult &a, const sim::RunResult &b)
{
    if (a.label != b.label || a.machine != b.machine ||
        a.workload != b.workload || a.seconds != b.seconds ||
        a.energyJ != b.energyJ || a.powerW != b.powerW ||
        a.areaMm2 != b.areaMm2 ||
        a.energyStaticJ != b.energyStaticJ ||
        a.energyHbmJ != b.energyHbmJ ||
        a.stats.totalCycles != b.stats.totalCycles ||
        a.stats.hbmBytes != b.stats.hbmBytes ||
        a.stats.hbmBusyCycles != b.stats.hbmBusyCycles ||
        a.stats.spadHitBytes != b.stats.spadHitBytes ||
        a.stats.instCount != b.stats.instCount)
        return false;
    for (int i = 0; i < isa::kNumResources; ++i)
        if (a.stats.busyCycles[i] != b.stats.busyCycles[i])
            return false;
    for (int i = 0; i < isa::kNumHwOps; ++i) {
        const auto &ao = a.stats.opStats[i];
        const auto &bo = b.stats.opStats[i];
        if (ao.count != bo.count || ao.cycles != bo.cycles ||
            ao.computeCycles != bo.computeCycles ||
            ao.stallCycles != bo.stallCycles ||
            ao.fillCycles != bo.fillCycles || ao.hbmBytes != bo.hbmBytes)
            return false;
    }
    const auto &as = a.stats.stalls;
    const auto &bs = b.stats.stalls;
    return as.hbmBound == bs.hbmBound &&
           as.dependency == bs.dependency &&
           as.pipelineFill == bs.pipelineFill &&
           as.spadSpillCycles == bs.spadSpillCycles &&
           as.spadWritebackBytes == bs.spadWritebackBytes &&
           as.spadEvictions == bs.spadEvictions;
}

/** "dir/helr.ufctrace" -> "helr" (label component for --trace jobs). */
std::string
traceStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.rfind('.');
    if (dot != std::string::npos && dot > 0)
        stem = stem.substr(0, dot);
    return stem.empty() ? path : stem;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --threads N       worker threads (default: all cores)\n"
        "  --serial          single-threaded execution\n"
        "  --json PATH       JSON report path (default: ufc_sweep.json)\n"
        "  --csv PATH        also write a CSV report\n"
        "  --sweep NAME      only run one sweep (fig10a|fig10b|fig12|"
        "fig13|fig14); repeatable\n"
        "  --trace FILE      also simulate FILE on the UFC machine\n"
        "                    (repeatable; loaded inside the job's fault\n"
        "                    isolation, so a corrupt file fails only its\n"
        "                    job)\n"
        "  --no-paper        skip the paper sweeps (only --trace jobs)\n"
        "  --retries N       extra attempts for failed jobs (default 0)\n"
        "  --retry-backoff-ms B  base delay of the seeded exponential\n"
        "                    backoff between retry attempts (default 25;\n"
        "                    0 restores immediate retry)\n"
        "  --timeout S       per-job host deadline in seconds\n"
        "  --max-cycles N    simulated-cycle watchdog per job "
        "(default: unlimited)\n"
        "  --lint            static-analysis pre-flight on every job's\n"
        "                    trace (RunOptions::lintTraces); a trace\n"
        "                    with lint errors fails its job only\n"
        "  --dataflow        abstract-interpretation pre-flight on every\n"
        "                    job (RunOptions::dataflowLint): trace-level\n"
        "                    df-* rules plus the program-level rules on\n"
        "                    the compiled bytecode; results of passing\n"
        "                    jobs are bit-identical to a lint-off run\n"
        "  --bounds          static cost-bound gate per job\n"
        "                    (RunOptions::boundsCheck): every job must\n"
        "                    satisfy static_lower <= dynamic <=\n"
        "                    static_upper on cycles and HBM bytes; the\n"
        "                    per-job bound ratios are printed after the\n"
        "                    sweep (incompatible with --ir)\n"
        "  --compare-serial  run parallel then serial, verify identical\n"
        "                    results, report the speedup\n"
        "  --ir              execute every job on the legacy trace-IR\n"
        "                    interpreter instead of the bytecode engine\n"
        "  --phase-cache     share a phase-result memoization cache\n"
        "                    across the batch's bytecode jobs (bit-\n"
        "                    identical results; hit rate reported)\n"
        "  --compare-ir      run the batch on both engines, verify\n"
        "                    bit-identical results, report the speedup\n"
        "  --bench-json PATH with --compare-ir: write the wall-clock\n"
        "                    comparison as a small JSON record\n"
        "  --progress        per-job status lines on stderr\n"
        "                    (\"[jobs_done/jobs_total] <label> ...\")\n"
        "  --metrics-out PATH  write the metrics registry as Prometheus\n"
        "                    text exposition after the sweep\n"
        "  --no-metrics      disable the metrics registry (on by default\n"
        "                    here; results are bit-identical either way)\n"
        "  --list            print the selected jobs and exit\n"
        "\n"
        "exit status: 0 all jobs ok, 1 at least one job failed, 2 usage,\n"
        "             130 interrupted by SIGINT/SIGTERM (partial report\n"
        "             written with \"interrupted\":true)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
try {
    runner::RunnerConfig cfg;
    std::string jsonPath = "ufc_sweep.json";
    std::string csvPath;
    std::vector<std::string> only;
    std::vector<std::string> userTraces;
    u64 maxCycles = 0;
    bool lint = false;
    bool dataflow = false;
    bool bounds = false;
    bool noPaper = false;
    bool compareSerial = false;
    bool useIr = false;
    bool compareIr = false;
    bool usePhaseCache = false;
    std::string benchJsonPath;
    std::string metricsOutPath;
    bool noMetrics = false;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            cfg.threads = std::atoi(value());
        else if (arg == "--serial")
            cfg.threads = 1;
        else if (arg == "--json")
            jsonPath = value();
        else if (arg == "--csv")
            csvPath = value();
        else if (arg == "--sweep")
            only.push_back(value());
        else if (arg == "--trace")
            userTraces.push_back(value());
        else if (arg == "--no-paper")
            noPaper = true;
        else if (arg == "--retries")
            cfg.maxRetries = std::atoi(value());
        else if (arg == "--retry-backoff-ms")
            cfg.retryBackoff.baseMs = std::atof(value());
        else if (arg == "--timeout")
            cfg.jobTimeoutSeconds = std::atof(value());
        else if (arg == "--max-cycles")
            maxCycles = std::strtoull(value(), nullptr, 10);
        else if (arg == "--lint")
            lint = true;
        else if (arg == "--dataflow")
            dataflow = true;
        else if (arg == "--bounds")
            bounds = true;
        else if (arg == "--compare-serial")
            compareSerial = true;
        else if (arg == "--ir")
            useIr = true;
        else if (arg == "--compare-ir")
            compareIr = true;
        else if (arg == "--phase-cache")
            usePhaseCache = true;
        else if (arg == "--bench-json")
            benchJsonPath = value();
        else if (arg == "--metrics-out")
            metricsOutPath = value();
        else if (arg == "--no-metrics")
            noMetrics = true;
        else if (arg == "--progress")
            cfg.progress = true;
        else if (arg == "--list")
            list = true;
        else {
            usage(argv[0]);
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    // Cooperative interruption: SIGINT/SIGTERM stop launching new jobs
    // but let in-flight ones finish, then the partial report is written
    // with "interrupted":true and the exit status is 130.
    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);
    cfg.cancelFlag = &gInterrupted;

    // The sweep binary is the scrape surface for the metrics layer, so
    // recording defaults ON here (library default is off).  Metrics are
    // observation-only: on-vs-off runs are bit-identical on every
    // simulated observable (the CI metrics-differential job asserts it).
    metrics::setEnabled(!noMetrics);

    std::vector<runner::Sweep> sweeps;
    if (!noPaper) {
        sweeps = runner::paperSweeps();
        if (!only.empty()) {
            std::vector<runner::Sweep> selected;
            for (auto &sweep : sweeps)
                for (const auto &name : only)
                    if (sweep.name == name)
                        selected.push_back(std::move(sweep));
            if (selected.empty()) {
                std::fprintf(stderr,
                             "no sweep matched --sweep filters\n");
                return 2;
            }
            sweeps = std::move(selected);
        }
    }
    auto jobs = runner::allJobs(sweeps);

    // User traces run on the UFC machine, loaded lazily inside each
    // job's isolation boundary (Job::traceFile).
    if (!userTraces.empty()) {
        const auto ufcModel = std::make_shared<sim::UfcModel>();
        for (const auto &path : userTraces) {
            runner::Job job;
            job.label = "user/" + traceStem(path) + "/ufc";
            job.model = ufcModel;
            job.traceFile = path;
            jobs.push_back(std::move(job));
        }
    }
    if (maxCycles > 0)
        for (auto &job : jobs)
            job.options.maxCycles = maxCycles;
    if (lint)
        for (auto &job : jobs)
            job.options.lintTraces = true;
    if (dataflow)
        for (auto &job : jobs)
            job.options.dataflowLint = true;
    if (bounds) {
        if (useIr) {
            std::fprintf(stderr, "--bounds and --ir are exclusive (no "
                                 "Program to bound on the IR path)\n");
            return 2;
        }
        for (auto &job : jobs)
            job.options.boundsCheck = true;
    }
    if (useIr && compareIr) {
        std::fprintf(stderr, "--ir and --compare-ir are exclusive\n");
        return 2;
    }
    if (useIr)
        for (auto &job : jobs)
            job.options.execMode = sim::ExecMode::TraceIr;
    if (jobs.empty()) {
        std::fprintf(stderr, "no jobs selected (--no-paper without "
                             "--trace?)\n");
        return 2;
    }

    std::printf("paper sweep: %zu sweeps, %zu simulation jobs\n",
                sweeps.size(), jobs.size());
    for (const auto &sweep : sweeps)
        std::printf("  %-8s %4zu jobs  %s\n", sweep.name.c_str(),
                    sweep.jobs.size(), sweep.title.c_str());
    if (!userTraces.empty())
        std::printf("  %-8s %4zu jobs  user traces on UFC\n", "user",
                    userTraces.size());
    if (list) {
        for (const auto &job : jobs)
            std::printf("%s\n", job.label.c_str());
        return 0;
    }

    // Batch-shared phase-result cache; outlives the runner configs that
    // point at it.  Counters are read after each batch.
    sim::PhaseCache phaseCache;
    if (usePhaseCache)
        cfg.phaseCache = &phaseCache;

    const runner::ExperimentRunner exec(cfg);
    const int threads = exec.effectiveThreads(jobs.size());
    std::printf("running on %d thread%s...\n", threads,
                threads == 1 ? "" : "s");

    const double t0 = now();
    const auto batch = exec.runAll(jobs);
    const double parallelWall = now() - t0;
    std::printf("parallel sweep: %.2f s wall (%zu/%zu jobs ok)\n",
                parallelWall, batch.results.size() - batch.failureCount(),
                batch.results.size());
    if (usePhaseCache) {
        // Registry-backed when metrics are on (the same numbers every
        // scraper sees); direct cache counters otherwise.
        u64 hits;
        u64 lookups;
        u64 entries;
        if (metrics::enabled()) {
            hits = metrics::counter("ufc_phase_cache_hits_total").value();
            lookups = hits +
                      metrics::counter("ufc_phase_cache_misses_total")
                          .value();
            entries = static_cast<u64>(
                metrics::gauge("ufc_phase_cache_entries").value());
        } else {
            hits = phaseCache.hits();
            lookups = phaseCache.lookups();
            entries = phaseCache.entries();
        }
        std::printf("phase cache: %llu hits / %llu lookups (%.1f%% hit "
                    "rate), %llu entries\n",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(lookups),
                    lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(lookups)
                                : 0.0,
                    static_cast<unsigned long long>(entries));
    }

    if (bounds) {
        // Per-job static-bound audit: every checked job already passed
        // static_lower <= dynamic <= static_upper (a violation fails
        // the job), so this table reports how tight the bounds are.
        std::printf("static cost bounds (dynamic position inside "
                    "[lower, upper]):\n");
        double worstCycles = 0.0;
        double worstHbm = 0.0;
        std::size_t checked = 0;
        for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
            const auto &oc = batch.outcomes[i];
            if (!oc.ok() || !oc.boundsChecked)
                continue;
            ++checked;
            const double cr = oc.cyclesLower > 0.0
                                  ? oc.cyclesUpper / oc.cyclesLower
                                  : 0.0;
            const double hr =
                oc.hbmLower > 0.0 ? oc.hbmUpper / oc.hbmLower : 0.0;
            worstCycles = std::max(worstCycles, cr);
            worstHbm = std::max(worstHbm, hr);
            std::printf("  %-44s cycles x%-7.3f hbm x%.3f\n",
                        batch.results[i].label.c_str(), cr, hr);
        }
        std::printf("bounds held on %zu/%zu checked job(s); worst "
                    "upper/lower ratio: cycles x%.3f, hbm x%.3f\n",
                    checked, checked, worstCycles, worstHbm);
    }

    const bool interrupted = batch.interrupted();
    if (interrupted)
        std::fprintf(stderr,
                     "sweep interrupted by signal; writing partial "
                     "report (finished jobs are valid)\n");

    if (!batch.allOk() && !interrupted) {
        std::fprintf(stderr, "%zu job(s) failed:\n",
                     batch.failureCount());
        for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
            const auto &oc = batch.outcomes[i];
            if (oc.ok())
                continue;
            std::fprintf(stderr, "  %s %s attempts=%d %s: %s\n",
                         batch.results[i].label.c_str(),
                         runner::jobStatusName(oc.status), oc.attempts,
                         oc.errorKind.c_str(), oc.message.c_str());
        }
    }

    if (compareIr && !interrupted) {
        // Same batch on the legacy IR interpreter; the bytecode engine
        // must be bit-identical on every result and strictly faster in
        // aggregate (the JIT acceptance gate).
        auto irJobs = jobs;
        for (auto &job : irJobs)
            job.options.execMode = sim::ExecMode::TraceIr;
        const double i0 = now();
        const auto irBatch = exec.runAll(irJobs);
        const double irWall = now() - i0;
        const double speedup = irWall / parallelWall;
        std::printf("trace-ir sweep: %.2f s wall (bytecode %.2fx "
                    "faster)\n", irWall, speedup);

        if (batch.results.size() != irBatch.results.size()) {
            std::fprintf(stderr, "FAIL: result count mismatch\n");
            return 1;
        }
        for (std::size_t i = 0; i < batch.results.size(); ++i) {
            if (batch.outcomes[i].status != irBatch.outcomes[i].status) {
                std::fprintf(stderr,
                             "FAIL: bytecode and trace-ir job status "
                             "differ at %s\n",
                             batch.results[i].label.c_str());
                return 1;
            }
            if (batch.outcomes[i].ok() &&
                !identicalSimulated(batch.results[i],
                                    irBatch.results[i])) {
                std::fprintf(stderr,
                             "FAIL: bytecode and trace-ir results "
                             "differ at %s\n",
                             batch.results[i].label.c_str());
                return 1;
            }
        }
        std::printf("bytecode results are bit-identical to trace-ir.\n");

        // With the cache armed, also time cached vs uncached bytecode
        // like for like (the IR leg above measures a different engine).
        // The main run above was the process's first sweep — cold page
        // cache and first-touch faults dominate its wall — so re-time
        // the legs back to back on the now-warm process: uncached, then
        // a fresh (empty) cache populating (the cold leg pays segment
        // hashing and snapshots for its in-batch hits), then the same
        // batch again over the now-populated cache (the warm leg, the
        // memoization payoff: every segment entry replays).  Each leg is
        // bit-identity-gated against the main batch.
        double uncachedWall = 0.0;
        double cachedWall = 0.0;
        double warmWall = 0.0;
        if (usePhaseCache) {
            const auto verifyLeg =
                [&](const runner::BatchResult &leg,
                    const char *what) -> bool {
                for (std::size_t i = 0; i < batch.results.size(); ++i) {
                    if (batch.outcomes[i].ok() &&
                        !identicalSimulated(batch.results[i],
                                            leg.results[i])) {
                        std::fprintf(stderr,
                                     "FAIL: %s bytecode results differ "
                                     "at %s\n",
                                     what, batch.results[i].label.c_str());
                        return false;
                    }
                }
                return true;
            };

            runner::RunnerConfig plainCfg = cfg;
            plainCfg.phaseCache = nullptr;
            const runner::ExperimentRunner plainExec(plainCfg);
            const double u0 = now();
            const auto plainBatch = plainExec.runAll(jobs);
            uncachedWall = now() - u0;
            if (!verifyLeg(plainBatch, "uncached"))
                return 1;

            sim::PhaseCache freshCache;
            runner::RunnerConfig cachedCfg = cfg;
            cachedCfg.phaseCache = &freshCache;
            const runner::ExperimentRunner cachedExec(cachedCfg);
            const double c0 = now();
            const auto cachedBatch = cachedExec.runAll(jobs);
            cachedWall = now() - c0;
            if (!verifyLeg(cachedBatch, "cold-cached"))
                return 1;

            const double w0 = now();
            const auto warmBatch = cachedExec.runAll(jobs);
            warmWall = now() - w0;
            if (!verifyLeg(warmBatch, "warm-cached"))
                return 1;

            std::printf("re-timed bytecode sweep: uncached %.2f s, "
                        "cold cache %.2f s, warm cache %.2f s "
                        "(warm %.2fx vs uncached, bit-identical)\n",
                        uncachedWall, cachedWall, warmWall,
                        uncachedWall / warmWall);
        }

        if (!benchJsonPath.empty()) {
            std::ofstream f(benchJsonPath);
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             benchJsonPath.c_str());
                return 1;
            }
            char buf[64];
            const auto num = [&buf](double v) -> const char * {
                std::snprintf(buf, sizeof(buf), "%.3f", v);
                return buf;
            };
            f << "{\n  \"benchmark\": "
              << json::quote("sweep_all bytecode vs trace-ir") << ",\n"
              << "  \"jobs\": " << jobs.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"bytecode_wall_seconds\": " << num(parallelWall)
              << ",\n"
              << "  \"trace_ir_wall_seconds\": " << num(irWall) << ",\n"
              << "  \"speedup\": " << num(speedup) << ",\n"
              << "  \"bit_identical\": true,\n"
              << "  \"phase_cache\": {\n"
              << "    \"enabled\": "
              << (usePhaseCache ? "true" : "false") << ",\n"
              << "    \"hits\": " << phaseCache.hits() << ",\n"
              << "    \"lookups\": " << phaseCache.lookups() << ",\n"
              << "    \"entries\": " << phaseCache.entries() << ",\n"
              << "    \"uncached_bytecode_wall_seconds\": "
              << num(uncachedWall) << ",\n"
              << "    \"cold_cached_wall_seconds\": " << num(cachedWall)
              << ",\n"
              << "    \"warm_cached_wall_seconds\": " << num(warmWall)
              << ",\n"
              << "    \"warm_speedup_vs_uncached\": "
              << num(warmWall > 0.0 ? uncachedWall / warmWall : 0.0)
              << "\n  }\n}\n";
            std::printf("wrote %s\n", benchJsonPath.c_str());
        }
    }

    if (compareSerial && !interrupted) {
        runner::RunnerConfig serialCfg = cfg;
        serialCfg.cancelFlag = nullptr;
        serialCfg.threads = 1;
        const runner::ExperimentRunner serialExec(serialCfg);
        const double s0 = now();
        const auto serialBatch = serialExec.runAll(jobs);
        const double serialWall = now() - s0;
        std::printf("serial sweep:   %.2f s wall (%.2fx speedup on %d "
                    "threads)\n", serialWall, serialWall / parallelWall,
                    threads);

        if (batch.results.size() != serialBatch.results.size()) {
            std::fprintf(stderr, "FAIL: result count mismatch\n");
            return 1;
        }
        for (std::size_t i = 0; i < batch.results.size(); ++i) {
            if (batch.outcomes[i].status !=
                serialBatch.outcomes[i].status) {
                std::fprintf(stderr,
                             "FAIL: parallel and serial job status "
                             "differ at %s\n",
                             batch.results[i].label.c_str());
                return 1;
            }
            if (batch.outcomes[i].ok() &&
                !identicalSimulated(batch.results[i],
                                    serialBatch.results[i])) {
                std::fprintf(stderr,
                             "FAIL: parallel and serial results differ "
                             "at %s\n", batch.results[i].label.c_str());
                return 1;
            }
        }
        std::printf("parallel results are bit-identical to serial.\n");
    }

    runner::ReportMeta meta;
    meta.generator = "ufc-sweep-all";
    meta.threads = threads;
    meta.wallSeconds = parallelWall;
    meta.interrupted = interrupted;
    if (!jsonPath.empty()) {
        runner::saveJsonReport(batch, jsonPath, meta);
        std::printf("wrote %s (%zu runs, %zu failures)\n",
                    jsonPath.c_str(),
                    batch.results.size() - batch.failureCount(),
                    batch.failureCount());
    }
    if (!csvPath.empty()) {
        runner::saveCsvReport(batch, csvPath);
        std::printf("wrote %s\n", csvPath.c_str());
    }
    if (!metricsOutPath.empty()) {
        if (noMetrics) {
            std::fprintf(stderr, "--metrics-out requires metrics "
                                 "(drop --no-metrics)\n");
            return 2;
        }
        metrics::savePrometheus(metricsOutPath);
        std::printf("wrote %s\n", metricsOutPath.c_str());
    }
    if (interrupted)
        return 130; // conventional fatal-signal exit, report flushed
    return batch.allOk() ? 0 : 1;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
