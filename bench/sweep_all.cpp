/**
 * @file
 * One-shot parallel reproduction of the paper's entire evaluation sweep
 * (Figures 10(a), 10(b), 12, 13, 14): every workload x accelerator x
 * configuration job from runner::paperSweeps() executed across a thread
 * pool, with a structured JSON (and optionally CSV) report.
 *
 *   ./build/bench/sweep_all                          # all cores -> ufc_sweep.json
 *   ./build/bench/sweep_all --threads 4 --csv out.csv
 *   ./build/bench/sweep_all --compare-serial         # verify + time vs serial
 *   ./build/bench/sweep_all --sweep fig13 --list
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/report.h"
#include "runner/sweeps.h"

using namespace ufc;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Everything except hostSeconds (a host-side measurement) must match. */
bool
identicalSimulated(const sim::RunResult &a, const sim::RunResult &b)
{
    if (a.label != b.label || a.machine != b.machine ||
        a.workload != b.workload || a.seconds != b.seconds ||
        a.energyJ != b.energyJ || a.powerW != b.powerW ||
        a.areaMm2 != b.areaMm2 ||
        a.energyStaticJ != b.energyStaticJ ||
        a.energyHbmJ != b.energyHbmJ ||
        a.stats.totalCycles != b.stats.totalCycles ||
        a.stats.hbmBytes != b.stats.hbmBytes ||
        a.stats.hbmBusyCycles != b.stats.hbmBusyCycles ||
        a.stats.spadHitBytes != b.stats.spadHitBytes ||
        a.stats.instCount != b.stats.instCount)
        return false;
    for (int i = 0; i < isa::kNumResources; ++i)
        if (a.stats.busyCycles[i] != b.stats.busyCycles[i])
            return false;
    for (int i = 0; i < isa::kNumHwOps; ++i) {
        const auto &ao = a.stats.opStats[i];
        const auto &bo = b.stats.opStats[i];
        if (ao.count != bo.count || ao.cycles != bo.cycles ||
            ao.computeCycles != bo.computeCycles ||
            ao.stallCycles != bo.stallCycles ||
            ao.fillCycles != bo.fillCycles || ao.hbmBytes != bo.hbmBytes)
            return false;
    }
    const auto &as = a.stats.stalls;
    const auto &bs = b.stats.stalls;
    return as.hbmBound == bs.hbmBound &&
           as.dependency == bs.dependency &&
           as.pipelineFill == bs.pipelineFill &&
           as.spadSpillCycles == bs.spadSpillCycles &&
           as.spadWritebackBytes == bs.spadWritebackBytes &&
           as.spadEvictions == bs.spadEvictions;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --threads N       worker threads (default: all cores)\n"
        "  --serial          single-threaded execution\n"
        "  --json PATH       JSON report path (default: ufc_sweep.json)\n"
        "  --csv PATH        also write a CSV report\n"
        "  --sweep NAME      only run one sweep (fig10a|fig10b|fig12|"
        "fig13|fig14); repeatable\n"
        "  --compare-serial  run parallel then serial, verify identical\n"
        "                    results, report the speedup\n"
        "  --progress        per-job status lines on stderr\n"
        "                    (\"[jobs_done/jobs_total] <label> ...\")\n"
        "  --list            print the selected jobs and exit\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    runner::RunnerConfig cfg;
    std::string jsonPath = "ufc_sweep.json";
    std::string csvPath;
    std::vector<std::string> only;
    bool compareSerial = false;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            cfg.threads = std::atoi(value());
        else if (arg == "--serial")
            cfg.threads = 1;
        else if (arg == "--json")
            jsonPath = value();
        else if (arg == "--csv")
            csvPath = value();
        else if (arg == "--sweep")
            only.push_back(value());
        else if (arg == "--compare-serial")
            compareSerial = true;
        else if (arg == "--progress")
            cfg.progress = true;
        else if (arg == "--list")
            list = true;
        else {
            usage(argv[0]);
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    auto sweeps = runner::paperSweeps();
    if (!only.empty()) {
        std::vector<runner::Sweep> selected;
        for (auto &sweep : sweeps)
            for (const auto &name : only)
                if (sweep.name == name)
                    selected.push_back(std::move(sweep));
        if (selected.empty()) {
            std::fprintf(stderr, "no sweep matched --sweep filters\n");
            return 2;
        }
        sweeps = std::move(selected);
    }
    const auto jobs = runner::allJobs(sweeps);

    std::printf("paper sweep: %zu sweeps, %zu simulation jobs\n",
                sweeps.size(), jobs.size());
    for (const auto &sweep : sweeps)
        std::printf("  %-8s %4zu jobs  %s\n", sweep.name.c_str(),
                    sweep.jobs.size(), sweep.title.c_str());
    if (list) {
        for (const auto &job : jobs)
            std::printf("%s\n", job.label.c_str());
        return 0;
    }

    const runner::ExperimentRunner exec(cfg);
    const int threads = exec.effectiveThreads(jobs.size());
    std::printf("running on %d thread%s...\n", threads,
                threads == 1 ? "" : "s");

    const double t0 = now();
    const auto results = exec.run(jobs);
    const double parallelWall = now() - t0;
    std::printf("parallel sweep: %.2f s wall\n", parallelWall);

    if (compareSerial) {
        runner::RunnerConfig serialCfg = cfg;
        serialCfg.threads = 1;
        const runner::ExperimentRunner serialExec(serialCfg);
        const double s0 = now();
        const auto serialResults = serialExec.run(jobs);
        const double serialWall = now() - s0;
        std::printf("serial sweep:   %.2f s wall (%.2fx speedup on %d "
                    "threads)\n", serialWall, serialWall / parallelWall,
                    threads);

        if (results.size() != serialResults.size()) {
            std::fprintf(stderr, "FAIL: result count mismatch\n");
            return 1;
        }
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!identicalSimulated(results[i], serialResults[i])) {
                std::fprintf(stderr,
                             "FAIL: parallel and serial results differ "
                             "at %s\n", results[i].label.c_str());
                return 1;
            }
        }
        std::printf("parallel results are bit-identical to serial.\n");
    }

    runner::ReportMeta meta;
    meta.generator = "ufc-sweep-all";
    meta.threads = threads;
    meta.wallSeconds = parallelWall;
    if (!jsonPath.empty()) {
        runner::saveJsonReport(results, jsonPath, meta);
        std::printf("wrote %s (%zu runs)\n", jsonPath.c_str(),
                    results.size());
    }
    if (!csvPath.empty()) {
        runner::saveCsvReport(results, csvPath);
        std::printf("wrote %s\n", csvPath.c_str());
    }
    return 0;
}
