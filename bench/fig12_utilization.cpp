/**
 * @file
 * Figure 12: utilization of the key UFC components (processing elements,
 * NoC, HBM) on the CKKS and TFHE workload suites.
 */

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
report(const char *name, const sim::RunResult &r)
{
    std::printf("%-16s PE %5.1f%%   NoC %5.1f%%   HBM %5.1f%%\n", name,
                100.0 * r.stats.peUtilization(),
                100.0 * r.stats.utilization(isa::Resource::Noc),
                100.0 * r.stats.hbmUtilization());
}

} // namespace

int
main()
{
    bench::header("Figure 12: utilization of key UFC components",
                  "UFC paper, Figure 12");

    sim::UfcModel ufcm;
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t2();

    std::printf("CKKS workloads:\n");
    double pe = 0, noc = 0, hbm = 0;
    int n = 0;
    for (const auto &tr : workloads::ckksSuite(cp)) {
        const auto r = ufcm.run(tr);
        report(tr.name.c_str(), r);
        pe += r.stats.peUtilization();
        noc += r.stats.utilization(isa::Resource::Noc);
        hbm += r.stats.hbmUtilization();
        ++n;
    }
    std::printf("%-16s PE %5.1f%%   NoC %5.1f%%   HBM %5.1f%%\n",
                "  (average)", 100.0 * pe / n, 100.0 * noc / n,
                100.0 * hbm / n);

    std::printf("\nTFHE workloads:\n");
    pe = noc = hbm = 0;
    n = 0;
    for (const auto &tr : workloads::tfheSuite(tp)) {
        const auto r = ufcm.run(tr);
        report(tr.name.c_str(), r);
        pe += r.stats.peUtilization();
        noc += r.stats.utilization(isa::Resource::Noc);
        hbm += r.stats.hbmUtilization();
        ++n;
    }
    std::printf("%-16s PE %5.1f%%   NoC %5.1f%%   HBM %5.1f%%\n",
                "  (average)", 100.0 * pe / n, 100.0 * noc / n,
                100.0 * hbm / n);

    bench::footnote("paper: CKKS 65/20/69%, TFHE 75/55/25% for "
                    "PE/NoC/HBM.");
    return 0;
}
