/**
 * @file
 * Figure 12: utilization of the key UFC components (processing elements,
 * NoC, HBM) on the CKKS and TFHE workload suites, pulled from the
 * structured per-resource breakdown in sim::RunResult.
 */

#include "bench_util.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
report(const char *name, const sim::RunResult &r)
{
    std::printf("%-16s PE %5.1f%%   NoC %5.1f%%   HBM %5.1f%%\n", name,
                100.0 * r.stats.peUtilization(),
                100.0 * r.stats.utilization(isa::Resource::Noc),
                100.0 * r.stats.hbmUtilization());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::header("Figure 12: utilization of key UFC components",
                  "UFC paper, Figure 12");

    const auto sweep = runner::fig12Sweep();
    const auto results = bench::runSweep(sweep, argc, argv);

    const auto section = [&](const char *title, const char *group,
                             const std::vector<trace::Trace> &suite) {
        std::printf("%s workloads:\n", title);
        double pe = 0, noc = 0, hbm = 0;
        int n = 0;
        for (const auto &tr : suite) {
            const auto &r = results.at(
                runner::jobLabel(sweep.name, group, tr.name, "UFC"));
            report(tr.name.c_str(), r);
            pe += r.stats.peUtilization();
            noc += r.stats.utilization(isa::Resource::Noc);
            hbm += r.stats.hbmUtilization();
            ++n;
        }
        std::printf("%-16s PE %5.1f%%   NoC %5.1f%%   HBM %5.1f%%\n",
                    "  (average)", 100.0 * pe / n, 100.0 * noc / n,
                    100.0 * hbm / n);
    };

    section("CKKS", "ckks", workloads::ckksSuite(ckks::CkksParams::c2()));
    std::printf("\n");
    section("TFHE", "tfhe", workloads::tfheSuite(tfhe::TfheParams::t2()));

    bench::footnote("paper: CKKS 65/20/69%, TFHE 75/55/25% for "
                    "PE/NoC/HBM.");
    return 0;
}
