/**
 * @file
 * ufc_loadgen: load + chaos client for the ufc_serve daemon.
 *
 * Happy path: T client threads each open their own connection, submit M
 * jobs, then collect every accepted job's result, measuring end-to-end
 * latency per job.  Overload rejections (queue_full / rate_limited /
 * shed_compile) are expected under pressure and counted, not fatal —
 * the acceptance rule is *zero leaked jobs*: every accepted id must
 * reach a terminal state.
 *
 * Chaos mode (--chaos) additionally throws hostile input at the daemon
 * on dedicated connections — malformed JSON, a truncated frame, an
 * oversized length prefix, deterministically corrupted trace text
 * (FaultInjector::corruptTraceText), and a deadline storm — and then
 * verifies the daemon still answers health and serves a normal job.
 *
 * Results land in a BENCH_serve.json-style record (--json): throughput,
 * latency percentiles, acceptance/shed counts, chaos verdicts.
 *
 *   ./build/bench/ufc_loadgen --socket /tmp/ufc.sock
 *   ./build/bench/ufc_loadgen --socket /tmp/ufc.sock --threads 8 \
 *       --jobs 16 --chaos --json BENCH_serve.json --drain
 *
 * exit status: 0 all accepted jobs terminal + daemon healthy, 1
 * otherwise, 2 usage.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "serve/client.h"
#include "tfhe/params.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Tally
{
    std::mutex mu;
    std::vector<double> latenciesMs;
    u64 accepted = 0;
    u64 rejected = 0;
    u64 completed = 0;
    u64 failedJobs = 0;
    u64 leaked = 0; ///< accepted but never reached a terminal state
    u64 transportErrors = 0;
};

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct Options
{
    std::string socketPath;
    int threads = 4;
    int jobsPerThread = 8;
    std::string workload = "pbs";
    i64 scale = 16;
    std::string machine = "ufc";
    double deadlineMs = 0.0;
    i64 holdMs = 0;
    bool chaos = false;
    bool drain = false;
    std::string jsonPath;
    u64 seed = 7;
};

void
clientThread(const Options &opt, int threadIndex, Tally &tally)
{
    serve::Client client;
    try {
        client.connect(opt.socketPath, 20);
    } catch (const Error &) {
        std::lock_guard<std::mutex> lk(tally.mu);
        ++tally.transportErrors;
        return;
    }
    const std::string tenant = "loadgen-" + std::to_string(threadIndex);

    struct Pending
    {
        std::string id;
        double submitAt = 0.0;
    };
    std::vector<Pending> pending;

    for (int j = 0; j < opt.jobsPerThread; ++j) {
        serve::JsonValue job = serve::JsonValue::makeObject();
        job.set("workload", serve::JsonValue::makeString(opt.workload));
        job.set("scale", serve::JsonValue::makeInt(opt.scale));
        job.set("machine", serve::JsonValue::makeString(opt.machine));
        job.set("label", serve::JsonValue::makeString(
                             "loadgen/" + tenant + "/" +
                             std::to_string(j)));
        if (opt.deadlineMs > 0.0)
            job.set("deadline_ms",
                    serve::JsonValue::makeDouble(opt.deadlineMs));
        if (opt.holdMs > 0)
            job.set("hold_ms", serve::JsonValue::makeInt(opt.holdMs));
        try {
            const double t0 = now();
            const serve::JsonValue resp = client.submit(job, tenant);
            std::lock_guard<std::mutex> lk(tally.mu);
            if (resp.getBool("ok")) {
                ++tally.accepted;
                pending.push_back({resp.getString("id"), t0});
            } else {
                ++tally.rejected;
            }
        } catch (const Error &) {
            std::lock_guard<std::mutex> lk(tally.mu);
            ++tally.transportErrors;
            return;
        }
    }

    for (const Pending &p : pending) {
        try {
            const serve::JsonValue resp =
                client.waitResult(p.id, 120000.0);
            const double ms = (now() - p.submitAt) * 1000.0;
            const std::string state = resp.getString("state");
            std::lock_guard<std::mutex> lk(tally.mu);
            if (state == "done") {
                ++tally.completed;
                tally.latenciesMs.push_back(ms);
            } else if (state == "failed" || state == "cancelled") {
                ++tally.failedJobs; // terminal — contained, not leaked
            } else {
                ++tally.leaked; // wait timed out: job never settled
            }
        } catch (const Error &) {
            std::lock_guard<std::mutex> lk(tally.mu);
            ++tally.transportErrors;
            ++tally.leaked;
            return;
        }
    }
}

/** One chaos probe: returns true when the daemon behaved as specified
 *  (typed error response or contained job failure, and it kept serving
 *  afterwards). */
bool
chaosMalformedJson(const Options &opt)
{
    serve::Client c;
    c.connect(opt.socketPath, 5);
    const serve::JsonValue resp =
        c.requestText("{\"op\": \"submit\", \"job\": [this is not json");
    return !resp.getBool("ok", true);
}

bool
chaosTruncatedFrame(const Options &opt)
{
    serve::Client c;
    c.connect(opt.socketPath, 5);
    // Length prefix claims 1000 bytes; send 10 and vanish.  The daemon
    // must treat it as a disconnect, not a crash or a stuck worker.
    std::string bytes;
    bytes.push_back('\0');
    bytes.push_back('\0');
    bytes.push_back(static_cast<char>(0x03));
    bytes.push_back(static_cast<char>(0xE8));
    bytes += "0123456789";
    c.sendRaw(bytes);
    c.close();
    // Daemon is alive iff a fresh connection still answers health.
    serve::Client check;
    check.connect(opt.socketPath, 5);
    return check.health().getBool("ok");
}

bool
chaosOversizedFrame(const Options &opt)
{
    serve::Client c;
    c.connect(opt.socketPath, 5);
    // 512 MiB length prefix: the daemon must answer oversized_frame
    // without ever allocating or reading that much.
    std::string bytes;
    bytes.push_back(static_cast<char>(0x20));
    bytes.push_back('\0');
    bytes.push_back('\0');
    bytes.push_back('\0');
    c.sendRaw(bytes);
    std::string payload;
    if (!serve::readFrame(c.fd(), payload))
        return false;
    const serve::JsonValue resp = serve::parseJson(payload);
    const serve::JsonValue *err = resp.find("error");
    return err != nullptr &&
           err->getString("code") == serve::kCodeOversizedFrame;
}

bool
chaosCorruptTrace(const Options &opt)
{
    // Serialize a tiny valid trace, corrupt it deterministically, and
    // submit it as trace_text.  Accepted-then-failed (TraceError) and
    // rejected-at-admission are both contained outcomes; what must not
    // happen is a daemon crash or a leaked job.
    std::ostringstream os;
    trace::writeTrace(workloads::pbsThroughput(tfhe::TfheParams::t1(), 4),
                      os);
    const FaultInjector chaosFaults(opt.seed);
    serve::Client c;
    c.connect(opt.socketPath, 5);
    bool contained = true;
    for (u64 salt = 0; salt < 6; ++salt) {
        const std::string hostile =
            chaosFaults.corruptTraceText(os.str(), salt);
        serve::JsonValue job = serve::JsonValue::makeObject();
        job.set("trace_text", serve::JsonValue::makeString(hostile));
        job.set("label", serve::JsonValue::makeString(
                             "chaos/corrupt-" + std::to_string(salt)));
        const serve::JsonValue resp = c.submit(job, "chaos");
        if (!resp.getBool("ok"))
            continue; // rejected at admission: contained
        const serve::JsonValue done =
            c.waitResult(resp.getString("id"), 60000.0);
        const std::string state = done.getString("state");
        // A corrupted trace may still parse (e.g. a duplicated line) and
        // then simulate fine; both "done" and "failed" are contained.
        if (state != "done" && state != "failed")
            contained = false;
    }
    return contained;
}

bool
chaosDeadlineStorm(const Options &opt)
{
    // Deadlines near zero with service-time inflation: jobs must settle
    // as timed_out (terminal), not hang.
    serve::Client c;
    c.connect(opt.socketPath, 5);
    std::vector<std::string> ids;
    for (int j = 0; j < 4; ++j) {
        serve::JsonValue job = serve::JsonValue::makeObject();
        job.set("workload", serve::JsonValue::makeString("pbs"));
        job.set("scale", serve::JsonValue::makeInt(4));
        job.set("deadline_ms", serve::JsonValue::makeDouble(1.0));
        job.set("hold_ms", serve::JsonValue::makeInt(50));
        job.set("label", serve::JsonValue::makeString(
                             "chaos/deadline-" + std::to_string(j)));
        const serve::JsonValue resp = c.submit(job, "chaos");
        if (resp.getBool("ok"))
            ids.push_back(resp.getString("id"));
    }
    for (const std::string &id : ids) {
        const serve::JsonValue done = c.waitResult(id, 60000.0);
        const std::string state = done.getString("state");
        if (state != "failed" && state != "done")
            return false; // never settled: leaked
    }
    return true;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH     daemon socket (required)\n"
        "  --threads T       client threads (default 4)\n"
        "  --jobs M          jobs per thread (default 8)\n"
        "  --workload W      pbs|tfhe_nn|helr|bootstrap|resnet20|\n"
        "                    sorting|knn (default pbs)\n"
        "  --scale N         workload scale knob (default 16)\n"
        "  --machine M       ufc|sharp|strix|composed (default ufc)\n"
        "  --deadline-ms D   per-job deadline (default none)\n"
        "  --hold-ms H       per-job service-time inflation (default 0)\n"
        "  --chaos           also run the hostile-input probes\n"
        "  --drain           send a drain request when finished\n"
        "  --seed S          chaos corruption seed (default 7)\n"
        "  --json PATH       write the benchmark record\n"
        "\n"
        "exit status: 0 zero leaked jobs and healthy daemon, 1 failure,\n"
        "2 usage\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
try {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            opt.socketPath = value();
        else if (arg == "--threads")
            opt.threads = std::atoi(value());
        else if (arg == "--jobs")
            opt.jobsPerThread = std::atoi(value());
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--scale")
            opt.scale = std::atoll(value());
        else if (arg == "--machine")
            opt.machine = value();
        else if (arg == "--deadline-ms")
            opt.deadlineMs = std::atof(value());
        else if (arg == "--hold-ms")
            opt.holdMs = std::atoll(value());
        else if (arg == "--chaos")
            opt.chaos = true;
        else if (arg == "--drain")
            opt.drain = true;
        else if (arg == "--seed")
            opt.seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--json")
            opt.jsonPath = value();
        else {
            usage(argv[0]);
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (opt.socketPath.empty() || opt.threads < 1 ||
        opt.jobsPerThread < 1) {
        usage(argv[0]);
        return 2;
    }

    Tally tally;
    const double t0 = now();
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(opt.threads));
        for (int t = 0; t < opt.threads; ++t)
            threads.emplace_back(clientThread, std::cref(opt), t,
                                 std::ref(tally));
        for (std::thread &th : threads)
            th.join();
    }
    const double loadWall = now() - t0;

    bool chaosOk = true;
    bool chaosMalformed = false;
    bool chaosTruncated = false;
    bool chaosOversized = false;
    bool chaosCorrupt = false;
    bool chaosDeadline = false;
    bool healthyAfter = true;
    if (opt.chaos) {
        chaosMalformed = chaosMalformedJson(opt);
        chaosTruncated = chaosTruncatedFrame(opt);
        chaosOversized = chaosOversizedFrame(opt);
        chaosCorrupt = chaosCorruptTrace(opt);
        chaosDeadline = chaosDeadlineStorm(opt);
        chaosOk = chaosMalformed && chaosTruncated && chaosOversized &&
                  chaosCorrupt && chaosDeadline;

        // The decisive post-chaos check: the daemon still serves a
        // normal request end to end.
        serve::Client c;
        c.connect(opt.socketPath, 5);
        serve::JsonValue job = serve::JsonValue::makeObject();
        job.set("workload", serve::JsonValue::makeString("pbs"));
        job.set("scale", serve::JsonValue::makeInt(4));
        job.set("label",
                serve::JsonValue::makeString("chaos/after-probe"));
        const serve::JsonValue resp = c.submit(job, "chaos");
        healthyAfter =
            resp.getBool("ok") &&
            c.waitResult(resp.getString("id"), 60000.0)
                    .getString("state") == "done";
    }

    std::sort(tally.latenciesMs.begin(), tally.latenciesMs.end());
    const double p50 = percentile(tally.latenciesMs, 0.50);
    const double p95 = percentile(tally.latenciesMs, 0.95);
    const double p99 = percentile(tally.latenciesMs, 0.99);
    const double maxMs =
        tally.latenciesMs.empty() ? 0.0 : tally.latenciesMs.back();
    double meanMs = 0.0;
    for (const double v : tally.latenciesMs)
        meanMs += v;
    if (!tally.latenciesMs.empty())
        meanMs /= static_cast<double>(tally.latenciesMs.size());
    const double throughput =
        loadWall > 0.0 ? static_cast<double>(tally.completed) / loadWall
                       : 0.0;

    std::printf("loadgen: %llu accepted, %llu rejected, %llu completed, "
                "%llu failed, %llu leaked, %llu transport errors in "
                "%.2f s (%.1f jobs/s)\n",
                static_cast<unsigned long long>(tally.accepted),
                static_cast<unsigned long long>(tally.rejected),
                static_cast<unsigned long long>(tally.completed),
                static_cast<unsigned long long>(tally.failedJobs),
                static_cast<unsigned long long>(tally.leaked),
                static_cast<unsigned long long>(tally.transportErrors),
                loadWall, throughput);
    std::printf("latency ms: p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f  "
                "max %.1f\n", p50, p95, p99, meanMs, maxMs);
    if (opt.chaos)
        std::printf("chaos: malformed %s, truncated %s, oversized %s, "
                    "corrupt-trace %s, deadline-storm %s, healthy-after "
                    "%s\n",
                    chaosMalformed ? "ok" : "FAIL",
                    chaosTruncated ? "ok" : "FAIL",
                    chaosOversized ? "ok" : "FAIL",
                    chaosCorrupt ? "ok" : "FAIL",
                    chaosDeadline ? "ok" : "FAIL",
                    healthyAfter ? "ok" : "FAIL");

    if (opt.drain) {
        serve::Client c;
        c.connect(opt.socketPath, 5);
        c.drain();
    }

    if (!opt.jsonPath.empty()) {
        std::ofstream f(opt.jsonPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        char buf[64];
        const auto num = [&buf](double v) -> const char * {
            std::snprintf(buf, sizeof(buf), "%.3f", v);
            return buf;
        };
        f << "{\n  \"benchmark\": "
          << json::quote("ufc_serve load/chaos") << ",\n"
          << "  \"threads\": " << opt.threads << ",\n"
          << "  \"jobs_per_thread\": " << opt.jobsPerThread << ",\n"
          << "  \"workload\": " << json::quote(opt.workload) << ",\n"
          << "  \"scale\": " << opt.scale << ",\n"
          << "  \"accepted\": " << tally.accepted << ",\n"
          << "  \"rejected\": " << tally.rejected << ",\n"
          << "  \"completed\": " << tally.completed << ",\n"
          << "  \"failed\": " << tally.failedJobs << ",\n"
          << "  \"leaked\": " << tally.leaked << ",\n"
          << "  \"transport_errors\": " << tally.transportErrors << ",\n"
          << "  \"wall_seconds\": " << num(loadWall) << ",\n"
          << "  \"throughput_jobs_per_s\": " << num(throughput) << ",\n"
          << "  \"latency_ms\": {\n"
          << "    \"p50\": " << num(p50) << ",\n"
          << "    \"p95\": " << num(p95) << ",\n"
          << "    \"p99\": " << num(p99) << ",\n"
          << "    \"mean\": " << num(meanMs) << ",\n"
          << "    \"max\": " << num(maxMs) << "\n  },\n"
          << "  \"chaos\": {\n"
          << "    \"enabled\": " << (opt.chaos ? "true" : "false")
          << ",\n"
          << "    \"malformed_json\": "
          << (chaosMalformed ? "true" : "false") << ",\n"
          << "    \"truncated_frame\": "
          << (chaosTruncated ? "true" : "false") << ",\n"
          << "    \"oversized_frame\": "
          << (chaosOversized ? "true" : "false") << ",\n"
          << "    \"corrupt_trace\": "
          << (chaosCorrupt ? "true" : "false") << ",\n"
          << "    \"deadline_storm\": "
          << (chaosDeadline ? "true" : "false") << ",\n"
          << "    \"healthy_after\": "
          << (healthyAfter ? "true" : "false") << "\n  },\n"
          << "  \"zero_leaked\": "
          << (tally.leaked == 0 ? "true" : "false") << "\n}\n";
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }

    const bool ok = tally.leaked == 0 && tally.transportErrors == 0 &&
                    (!opt.chaos || (chaosOk && healthyAfter));
    return ok ? 0 : 1;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
