/**
 * @file
 * Figure 13: design space exploration over the number of separate CG-NTT
 * networks (1/2/4) and the scratchpad capacity (128/256/512 MB), on the
 * CKKS suite.  All 9 configurations x 4 workloads run concurrently
 * through the experiment runner.
 */

#include <array>

#include "bench_util.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
{
    bench::header("Figure 13: DSE over CG-NTT network count x scratchpad",
                  "UFC paper, Figure 13");

    const auto suite = workloads::ckksSuite(ckks::CkksParams::c2());
    const auto sweep = runner::fig13Sweep();
    const auto results = bench::runSweep(sweep, argc, argv);

    const auto totals = [&](const std::string &group) {
        double delay = 0.0, edp = 0.0, edap = 0.0, area = 0.0;
        for (const auto &tr : suite) {
            const auto &r = results.at(
                runner::jobLabel(sweep.name, group, tr.name, "UFC"));
            delay += r.seconds;
            edp += r.edp();
            edap += r.edap();
            area = r.areaMm2;
        }
        return std::array<double, 4>{delay, edp, edap, area};
    };

    // Baseline for normalization: Table II (1 network, 256 MB).
    const auto base = totals(runner::dseNetworkGroup(1, 256.0));

    std::printf("%-10s %-10s | %10s %10s %10s %10s\n", "networks",
                "spad(MB)", "area(mm2)", "delay", "EDP", "EDAP");
    for (int networks : {1, 2, 4}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            const auto t =
                totals(runner::dseNetworkGroup(networks, spad));
            std::printf("%-10d %-10.0f | %10.1f %9.2fx %9.2fx %9.2fx\n",
                        networks, spad, t[3], t[0] / base[0],
                        t[1] / base[1], t[2] / base[2]);
        }
    }
    bench::footnote("ratios are relative to the Table II configuration "
                    "(1 network, 256 MB); lower is better.  Paper: a "
                    "single large CG network wins; smaller scratchpads "
                    "give better EDP/EDAP.");
    return 0;
}
