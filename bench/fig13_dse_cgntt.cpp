/**
 * @file
 * Figure 13: design space exploration over the number of separate CG-NTT
 * networks (1/2/4) and the scratchpad capacity (128/256/512 MB), on the
 * CKKS suite.
 */

#include <cmath>

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main()
{
    bench::header("Figure 13: DSE over CG-NTT network count x scratchpad",
                  "UFC paper, Figure 13");

    const auto cp = ckks::CkksParams::c2();
    const auto suite = workloads::ckksSuite(cp);

    // Baseline for normalization: Table II (1 network, 256 MB).
    sim::UfcModel base;
    double baseDelay = 0.0, baseEdp = 0.0, baseEdap = 0.0;
    for (const auto &tr : suite) {
        const auto r = base.run(tr);
        baseDelay += r.seconds;
        baseEdp += r.edp();
        baseEdap += r.edap();
    }

    std::printf("%-10s %-10s | %10s %10s %10s %10s\n", "networks",
                "spad(MB)", "area(mm2)", "delay", "EDP", "EDAP");
    for (int networks : {1, 2, 4}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            auto cfg = sim::UfcConfig::tableII();
            cfg.cgNetworks = networks;
            cfg.scratchpadMb = spad;
            sim::UfcModel model(cfg);

            double delay = 0.0, edp = 0.0, edap = 0.0;
            for (const auto &tr : suite) {
                const auto r = model.run(tr);
                delay += r.seconds;
                edp += r.edp();
                edap += r.edap();
            }
            std::printf("%-10d %-10.0f | %10.1f %9.2fx %9.2fx %9.2fx\n",
                        networks, spad, model.areaMm2(),
                        delay / baseDelay, edp / baseEdp,
                        edap / baseEdap);
        }
    }
    bench::footnote("ratios are relative to the Table II configuration "
                    "(1 network, 256 MB); lower is better.  Paper: a "
                    "single large CG network wins; smaller scratchpads "
                    "give better EDP/EDAP.");
    return 0;
}
