/**
 * @file
 * Table IV: detailed architectural comparison between SHARP and UFC.
 */

#include "baselines/sharp_perf.h"
#include "bench_util.h"
#include "sim/ufc_perf.h"

using namespace ufc;

int
main()
{
    bench::header("Table IV: SHARP vs UFC architecture comparison",
                  "UFC paper, Table IV");

    const baselines::SharpConfig s;
    const auto u = sim::UfcConfig::tableII();
    sim::UfcPerf perf(u);

    // UFC effective NTT throughput at the logN=16 design point.
    isa::HwInst ntt;
    ntt.op = isa::HwOp::Ntt;
    ntt.logDegree = 16;
    ntt.words = 1ULL << 16;
    ntt.work = ntt.words * 16 / 2;
    const double ufcNttRate = ntt.words / perf.computeCycles(ntt);

    std::printf("%-24s %18s %18s\n", "", "SHARP", "UFC");
    std::printf("%-24s %18s %18s\n", "Word length", "36-bit", "32-bit");
    std::printf("%-24s %17.0fG %17.0fG\n", "Core frequency (Hz)",
                s.freqGHz, u.freqGHz);
    std::printf("%-24s %18d %18d\n", "# of lanes", 1024, u.totalLanes());
    std::printf("%-24s %16.0fTB/s %15.0fTB/s\n", "Off-chip memory BW",
                s.hbmGBs / 1024.0, u.hbmGBs / 1024.0);
    std::printf("%-24s %15.0f MB %15.0f MB\n", "On-chip memory cap",
                s.scratchpadMb, u.scratchpadMb + 18.0);
    std::printf("%-24s %16d w/c %14d w/c\n", "Global NoC BW", 1024,
                u.globalNocWordsPerCycle);
    std::printf("%-24s %16.0f w/c %14.0f w/c\n", "NTTU throughput",
                s.nttWordsPerCycle, ufcNttRate);
    std::printf("%-24s %16d w/c %14d w/c\n", "NTTU bisection BW", 128,
                u.globalNocWordsPerCycle);
    std::printf("%-24s %16.0f w/c %14d w/c\n", "BConv throughput",
                s.bconvMacsPerCycle, u.totalLanes());
    std::printf("%-24s %16.0f w/c %14d w/c\n", "ELEW throughput",
                s.elewWordsPerCycle, u.totalLanes());
    std::printf("%-24s %15d bf  %15d bf\n", "Butterfly units", 1024 / 2,
                u.totalButterflies());

    bench::footnote("UFC's versatile PEs serve BConv/ELEW at 16384 w/c and "
                    "NTT at an effective 1024 w/c, matching Table IV.");
    return 0;
}
