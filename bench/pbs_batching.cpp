/**
 * @file
 * Extension bench: programmable-bootstrapping throughput versus batch
 * size on UFC.  TvLP packing fills the wide datapath and amortizes the
 * per-iteration RGSW key fetch, so per-bootstrap cost drops steeply until
 * the lanes saturate — the mechanism behind the paper's throughput
 * results on the small logic-scheme parameters.
 */

#include <cmath>

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main()
{
    bench::header("Extension: PBS throughput vs batch size on UFC",
                  "the packing mechanism of Sections V-A/V-B");

    sim::UfcModel ufcm;
    for (const auto &tp : {tfhe::TfheParams::t1(),
                           tfhe::TfheParams::t4()}) {
        std::printf("\n--- %s (n=%u, N=2^%d) ---\n", tp.name.c_str(),
                    tp.lweDim,
                    static_cast<int>(std::log2(tp.ringDim)));
        std::printf("%8s %14s %16s %14s\n", "batch", "total (ms)",
                    "per-PBS (us)", "PBS/s");
        for (int batch : {1, 4, 16, 64, 256, 1024}) {
            const auto tr = workloads::pbsThroughput(tp, batch);
            const auto r = ufcm.run(tr);
            const double perPbs = r.seconds / batch;
            std::printf("%8d %14.3f %16.2f %14.0f\n", batch,
                        1e3 * r.seconds, 1e6 * perPbs, 1.0 / perPbs);
        }
    }
    bench::footnote("per-PBS cost saturates once the packed batch fills "
                    "the 16384 lanes (16 polys at N=2^10; 1 at N=2^14).");
    return 0;
}
