/**
 * @file
 * Figure 10(b): logic-scheme (TFHE) workloads on UFC versus Strix —
 * functional-bootstrapping throughput and NN inference across the T1-T4
 * parameter sets, simulated through the parallel experiment runner.
 */

#include <cmath>

#include "bench_util.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
{
    bench::header("Figure 10(b): TFHE workloads, UFC vs Strix",
                  "UFC paper, Figure 10(b)");

    const auto sweep = runner::fig10bSweep();
    const auto results = bench::runSweep(sweep, argc, argv);

    double gDelay = 1.0, gEnergy = 1.0, gEdap = 1.0;
    int count = 0;

    std::printf("%-12s %12s %12s | %7s %7s %7s\n", "workload",
                "UFC (ms)", "Strix (ms)", "delay", "energy", "EDAP");
    for (const auto &params : {tfhe::TfheParams::t1(),
                               tfhe::TfheParams::t2(),
                               tfhe::TfheParams::t3(),
                               tfhe::TfheParams::t4()}) {
        for (const auto &tr : workloads::tfheSuite(params)) {
            const auto &u = results.at(runner::jobLabel(
                sweep.name, params.name, tr.name, "UFC"));
            const auto &s = results.at(runner::jobLabel(
                sweep.name, params.name, tr.name, "Strix"));
            const double delay = s.seconds / u.seconds;
            const double energy = s.energyJ / u.energyJ;
            const double edap = s.edap() / u.edap();
            std::printf("%-12s %12.2f %12.2f | %6.2fx %6.2fx %6.2fx\n",
                        tr.name.c_str(), 1e3 * u.seconds, 1e3 * s.seconds,
                        delay, energy, edap);
            gDelay *= delay;
            gEnergy *= energy;
            gEdap *= edap;
            ++count;
        }
    }
    std::printf("\ngeomean: delay %.2fx  energy %.2fx  EDAP %.2fx\n",
                std::pow(gDelay, 1.0 / count),
                std::pow(gEnergy, 1.0 / count),
                std::pow(gEdap, 1.0 / count));
    bench::footnote("paper: up to 6x speedup, 1.2x less energy, 1.5x "
                    "better EDAP than Strix.");
    return 0;
}
