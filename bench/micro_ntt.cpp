/**
 * @file
 * Microbenchmarks for the transform substrate: classical NTT,
 * constant-geometry NTT, packed small-polynomial transforms and the
 * complex FFT, across ring sizes.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "math/cg_ntt.h"
#include "math/fft.h"
#include "math/ntt.h"
#include "math/primes.h"

using namespace ufc;

namespace {

std::vector<u64>
randomPoly(u64 n, u64 q, u64 seed)
{
    Rng rng(seed);
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.uniform(q);
    return a;
}

void
BM_NttForward(benchmark::State &state)
{
    const u64 n = 1ULL << state.range(0);
    const u64 q = findNttPrime(50, 2 * n);
    NttTable ntt(n, q);
    auto a = randomPoly(n, q, 1);
    for (auto _ : state) {
        ntt.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_NttInverse(benchmark::State &state)
{
    const u64 n = 1ULL << state.range(0);
    const u64 q = findNttPrime(50, 2 * n);
    NttTable ntt(n, q);
    auto a = randomPoly(n, q, 2);
    for (auto _ : state) {
        ntt.inverse(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_CgNttForward(benchmark::State &state)
{
    const u64 n = 1ULL << state.range(0);
    const u64 q = findNttPrime(50, 2 * n);
    CgNtt cg(n, q);
    auto a = randomPoly(n, q, 3);
    for (auto _ : state) {
        cg.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_CgNttPackedForward(benchmark::State &state)
{
    // Pack N/M small polynomials of degree M = 2^10 (TFHE-sized).
    const u64 n = 1ULL << state.range(0);
    const u64 m = std::min<u64>(n, 1ULL << 10);
    const u64 q = findNttPrime(50, 2 * n);
    CgNtt cg(n, q);
    auto a = randomPoly(n, q, 4);
    for (auto _ : state) {
        cg.packedForward(a, m);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_ComplexFft(benchmark::State &state)
{
    const u64 n = 1ULL << state.range(0);
    std::vector<cplx> a(n);
    Rng rng(5);
    for (auto &x : a)
        x = cplx(rng.uniformReal(), rng.uniformReal());
    for (auto _ : state) {
        fft(a, false);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_NegacyclicMulViaNtt(benchmark::State &state)
{
    const u64 n = 1ULL << state.range(0);
    const u64 q = findNttPrime(50, 2 * n);
    NttTable ntt(n, q);
    auto a = randomPoly(n, q, 6);
    auto b = randomPoly(n, q, 7);
    for (auto _ : state) {
        auto fa = a;
        auto fb = b;
        ntt.forward(fa);
        ntt.forward(fb);
        for (u64 i = 0; i < n; ++i)
            fa[i] = ntt.modulus().mul(fa[i], fb[i]);
        ntt.inverse(fa);
        benchmark::DoNotOptimize(fa.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

} // namespace

BENCHMARK(BM_NttForward)->DenseRange(10, 16, 2);
BENCHMARK(BM_NttInverse)->DenseRange(10, 16, 2);
BENCHMARK(BM_CgNttForward)->DenseRange(10, 16, 2);
BENCHMARK(BM_CgNttPackedForward)->DenseRange(12, 16, 2);
BENCHMARK(BM_ComplexFft)->DenseRange(10, 16, 2);
BENCHMARK(BM_NegacyclicMulViaNtt)->DenseRange(10, 14, 2);

BENCHMARK_MAIN();
