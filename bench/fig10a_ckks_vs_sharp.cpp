/**
 * @file
 * Figure 10(a): SIMD-scheme (CKKS) workloads on UFC versus SHARP —
 * delay, energy, EDP and EDAP for HELR, ResNet-20, Sorting and
 * Bootstrapping at the C1-C3 parameter sets.
 *
 * All simulations run through the parallel experiment runner; the table
 * below is formatted from the labelled result set.
 */

#include <cmath>

#include "bench_util.h"
#include "runner/sweeps.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
{
    bench::header("Figure 10(a): CKKS workloads, UFC vs SHARP",
                  "UFC paper, Figure 10(a)");

    const auto sweep = runner::fig10aSweep();
    const auto results = bench::runSweep(sweep, argc, argv);

    double gDelay = 1.0, gEnergy = 1.0, gEdp = 1.0, gEdap = 1.0;
    int count = 0;

    for (const auto &params : {ckks::CkksParams::c1(),
                               ckks::CkksParams::c2(),
                               ckks::CkksParams::c3()}) {
        std::printf("\n--- parameter set %s (N=2^16, dnum=%d, logPQ=%.0f)"
                    " ---\n", params.name.c_str(), params.dnum,
                    params.logPQ());
        std::printf("%-14s %10s %10s | %7s %7s %7s %7s\n", "workload",
                    "UFC (ms)", "SHARP (ms)", "delay", "energy", "EDP",
                    "EDAP");
        for (const auto &tr : workloads::ckksSuite(params)) {
            const auto &u = results.at(runner::jobLabel(
                sweep.name, params.name, tr.name, "UFC"));
            const auto &s = results.at(runner::jobLabel(
                sweep.name, params.name, tr.name, "SHARP"));
            const double delay = s.seconds / u.seconds;
            const double energy = s.energyJ / u.energyJ;
            const double edp = s.edp() / u.edp();
            const double edap = s.edap() / u.edap();
            std::printf("%-14s %10.2f %10.2f | %6.2fx %6.2fx %6.2fx "
                        "%6.2fx\n", tr.name.c_str(), 1e3 * u.seconds,
                        1e3 * s.seconds, delay, energy, edp, edap);
            gDelay *= delay;
            gEnergy *= energy;
            gEdp *= edp;
            gEdap *= edap;
            ++count;
        }
    }
    std::printf("\ngeomean: delay %.2fx  energy %.2fx  EDP %.2fx  EDAP "
                "%.2fx\n", std::pow(gDelay, 1.0 / count),
                std::pow(gEnergy, 1.0 / count),
                std::pow(gEdp, 1.0 / count), std::pow(gEdap, 1.0 / count));
    bench::footnote("paper: 1.1x delay, 1.4x energy, 1.5x EDP, 1.6x EDAP "
                    "over SHARP.");
    return 0;
}
