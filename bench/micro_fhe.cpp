/**
 * @file
 * Microbenchmarks for the FHE substrate: CKKS primitives (encode,
 * encrypt, multiply, rotate, rescale, hybrid key switching) and TFHE
 * primitives (external product, blind rotation, gate bootstrap).
 */

#include <benchmark/benchmark.h>

#include "ckks/evaluator.h"
#include "tfhe/gates.h"

using namespace ufc;

namespace {

struct CkksBench
{
    CkksBench()
        : ctx(ckks::CkksParams::testFast()), encoder(&ctx), rng(42),
          keygen(&ctx, rng), encryptor(&ctx, &keygen.secretKey(), rng),
          eval(&ctx), relin(keygen.makeRelinKey()),
          rot1(keygen.makeRotationKey(1))
    {
        std::vector<double> v(ctx.slots(), 0.5);
        ctA = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
        ctB = encryptor.encrypt(encoder.encode(v, ctx.levels(),
                                               ctx.scale()));
    }

    ckks::CkksContext ctx;
    ckks::CkksEncoder encoder;
    Rng rng;
    ckks::CkksKeyGenerator keygen;
    ckks::CkksEncryptor encryptor;
    ckks::CkksEvaluator eval;
    ckks::EvalKey relin;
    ckks::EvalKey rot1;
    ckks::Ciphertext ctA, ctB;
};

CkksBench &
ckksBench()
{
    static CkksBench b;
    return b;
}

void
BM_CkksEncode(benchmark::State &state)
{
    auto &b = ckksBench();
    std::vector<double> v(b.ctx.slots(), 0.25);
    for (auto _ : state) {
        auto pt = b.encoder.encode(v, b.ctx.levels(), b.ctx.scale());
        benchmark::DoNotOptimize(&pt);
    }
}

void
BM_CkksEncrypt(benchmark::State &state)
{
    auto &b = ckksBench();
    std::vector<double> v(b.ctx.slots(), 0.25);
    auto pt = b.encoder.encode(v, b.ctx.levels(), b.ctx.scale());
    for (auto _ : state) {
        auto ct = b.encryptor.encrypt(pt);
        benchmark::DoNotOptimize(&ct);
    }
}

void
BM_CkksMultiplyRelin(benchmark::State &state)
{
    auto &b = ckksBench();
    for (auto _ : state) {
        auto ct = b.eval.multiply(b.ctA, b.ctB, b.relin);
        benchmark::DoNotOptimize(&ct);
    }
}

void
BM_CkksRescale(benchmark::State &state)
{
    auto &b = ckksBench();
    auto prod = b.eval.multiply(b.ctA, b.ctB, b.relin);
    for (auto _ : state) {
        auto ct = b.eval.rescale(prod);
        benchmark::DoNotOptimize(&ct);
    }
}

void
BM_CkksRotate(benchmark::State &state)
{
    auto &b = ckksBench();
    for (auto _ : state) {
        auto ct = b.eval.rotate(b.ctA, 1, b.rot1);
        benchmark::DoNotOptimize(&ct);
    }
}

struct TfheBench
{
    TfheBench()
        : params(tfhe::TfheParams::testFast()), rng(7),
          lweKey(tfhe::LweSecretKey::generate(params.lweDim, rng)),
          ring(params.ringDim),
          ringKey(tfhe::RlweSecretKey::generate(&ring.table(params.q),
                                                rng)),
          bc(params, lweKey, ringKey, rng),
          gadget(params.q, params.gadgetLogBase, params.gadgetLevels)
    {
        Poly bit(ringKey.s.table(), PolyForm::Coeff);
        bit[0] = 1;
        rgsw = tfhe::rgswEncrypt(bit, ringKey, gadget, params.rlweSigma,
                                 rng);
        Poly msg(ringKey.s.table(), PolyForm::Coeff);
        msg[0] = params.q / 4;
        rlwe = tfhe::rlweEncrypt(msg, ringKey, params.rlweSigma, rng);
        bitA = tfhe::encryptBit(true, lweKey, params, rng);
        bitB = tfhe::encryptBit(false, lweKey, params, rng);
    }

    tfhe::TfheParams params;
    Rng rng;
    tfhe::LweSecretKey lweKey;
    RingContext ring;
    tfhe::RlweSecretKey ringKey;
    tfhe::BootstrapContext bc;
    Gadget gadget;
    tfhe::RgswCiphertext rgsw;
    tfhe::RlweCiphertext rlwe;
    tfhe::LweCiphertext bitA, bitB;
};

TfheBench &
tfheBench()
{
    static TfheBench b;
    return b;
}

void
BM_TfheExternalProduct(benchmark::State &state)
{
    auto &b = tfheBench();
    for (auto _ : state) {
        auto ct = tfhe::externalProduct(b.rgsw, b.rlwe, b.gadget);
        benchmark::DoNotOptimize(&ct);
    }
}

void
BM_TfheGateBootstrap(benchmark::State &state)
{
    auto &b = tfheBench();
    for (auto _ : state) {
        auto ct = tfhe::gateNand(b.bc, b.bitA, b.bitB);
        benchmark::DoNotOptimize(&ct);
    }
}

void
BM_TfheProgrammableBootstrap(benchmark::State &state)
{
    auto &b = tfheBench();
    const u64 t = 8;
    std::vector<u64> lut(t);
    for (u64 m = 0; m < t; ++m)
        lut[m] = (m * 3) % 4;
    auto ct = tfhe::lweEncrypt(tfhe::lweEncode(2, b.params.q, t),
                               b.lweKey, b.params, b.rng);
    for (auto _ : state) {
        auto out = b.bc.programmableBootstrap(ct, lut, t);
        benchmark::DoNotOptimize(&out);
    }
}

} // namespace

BENCHMARK(BM_CkksEncode);
BENCHMARK(BM_CkksEncrypt);
BENCHMARK(BM_CkksMultiplyRelin);
BENCHMARK(BM_CkksRescale);
BENCHMARK(BM_CkksRotate);
BENCHMARK(BM_TfheExternalProduct);
BENCHMARK(BM_TfheGateBootstrap);
BENCHMARK(BM_TfheProgrammableBootstrap);

BENCHMARK_MAIN();
