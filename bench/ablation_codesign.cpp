/**
 * @file
 * Ablation study of UFC's algorithm-hardware co-design choices
 * (Section IV-C and IV-B5): automorphism-via-NTT, on-the-fly key
 * generation, and small-polynomial packing are each toggled off to show
 * their individual contribution.
 */

#include "bench_util.h"
#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

double
suiteSeconds(const sim::UfcModel &model,
             const std::vector<trace::Trace> &suite)
{
    double total = 0.0;
    for (const auto &tr : suite)
        total += model.run(tr).seconds;
    return total;
}

} // namespace

int
main()
{
    bench::header("Ablation: UFC algorithm-hardware co-design choices",
                  "design choices of Sections IV-B5/IV-C/V-A");

    const auto cp = ckks::CkksParams::c2();
    const auto ckksSuite = workloads::ckksSuite(cp);
    const auto tp = tfhe::TfheParams::t2();
    const auto pbs = workloads::pbsThroughput(tp, 512);

    const sim::UfcModel base;
    const double ckksBase = suiteSeconds(base, ckksSuite);
    const double tfheBase = base.run(pbs).seconds;

    std::printf("%-36s %14s %14s\n", "configuration", "CKKS suite",
                "TFHE PBS-512");
    std::printf("%-36s %13.2fx %13.2fx\n", "UFC (all optimizations)", 1.0,
                1.0);

    {
        auto cfg = sim::UfcConfig::tableII();
        cfg.onTheFlyKeyGen = false;
        sim::UfcModel m(cfg);
        std::printf("%-36s %13.2fx %13.2fx\n", "- on-the-fly key gen",
                    suiteSeconds(m, ckksSuite) / ckksBase,
                    m.run(pbs).seconds / tfheBase);
    }
    {
        auto cfg = sim::UfcConfig::tableII();
        cfg.smallPolyPacking = false;
        sim::UfcModel m(cfg);
        std::printf("%-36s %13.2fx %13.2fx\n",
                    "- small-polynomial packing",
                    suiteSeconds(m, ckksSuite) / ckksBase,
                    m.run(pbs).seconds / tfheBase);
    }
    {
        // CoLP instead of TvLP (keeps packing, changes the schedule).
        sim::UfcModel m(sim::UfcConfig::tableII(),
                        compiler::Parallelism::CoLP);
        std::printf("%-36s %13.2fx %13.2fx\n", "- TvLP (CoLP scheduling)",
                    suiteSeconds(m, ckksSuite) / ckksBase,
                    m.run(pbs).seconds / tfheBase);
    }
    {
        // Splitting the CG network (the Figure 13 pessimal point).
        auto cfg = sim::UfcConfig::tableII();
        cfg.cgNetworks = 4;
        sim::UfcModel m(cfg);
        std::printf("%-36s %13.2fx %13.2fx\n", "- single CG network (4x)",
                    suiteSeconds(m, ckksSuite) / ckksBase,
                    m.run(pbs).seconds / tfheBase);
    }

    bench::footnote("values are slowdown factors relative to the full "
                    "configuration (higher = that optimization mattered "
                    "more).");
    return 0;
}
