/**
 * @file
 * Kernel-layer microbenchmark: optimized vs reference NTT kernels,
 * constant-geometry transforms, and serial vs limb-parallel RNS
 * polynomial operations.
 *
 * Unlike the figure benches this does not drive the accelerator
 * simulator; it times the host kernels directly with steady_clock and
 * reports per-op wall time.  Results can be exported in the standard
 * ufc.report/v1 envelope (--json / --csv), with one run entry per
 * kernel variant: `seconds` is the mean per-operation time and
 * `host_seconds` the total measured wall-clock for that variant.
 *
 * Usage: bench_kernels [--threads N] [--serial] [--json PATH] [--csv PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "math/cg_ntt.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "poly/rns_poly.h"
#include "runner/report.h"

using namespace ufc;

namespace {

std::vector<u64>
randomPoly(u64 n, u64 q, u64 seed)
{
    Rng rng(seed);
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.uniform(q);
    return a;
}

struct Timing
{
    double perOpSeconds = 0.0;
    double totalSeconds = 0.0;
    int reps = 0;
};

/** Mean per-op time over `reps` runs after a short warmup. */
Timing
timeOp(const std::function<void()> &op, int reps)
{
    for (int i = 0; i < reps / 8 + 1; ++i)
        op();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        op();
    const auto t1 = std::chrono::steady_clock::now();
    Timing t;
    t.reps = reps;
    t.totalSeconds = std::chrono::duration<double>(t1 - t0).count();
    t.perOpSeconds = t.totalSeconds / reps;
    return t;
}

struct Row
{
    std::string label;    ///< report label, also printed
    std::string workload; ///< human description
    Timing timing;
};

class Suite
{
  public:
    void
    add(const std::string &label, const std::string &workload,
        const std::function<void()> &op, int reps)
    {
        Row row;
        row.label = label;
        row.workload = workload;
        row.timing = timeOp(op, reps);
        std::printf("  %-36s %12.0f ns/op   (%d reps)\n", label.c_str(),
                    row.timing.perOpSeconds * 1e9, row.timing.reps);
        rows_.push_back(std::move(row));
    }

    double
    nsOf(const std::string &label) const
    {
        for (const auto &r : rows_)
            if (r.label == label)
                return r.timing.perOpSeconds * 1e9;
        return 0.0;
    }

    void
    speedup(const std::string &what, const std::string &refLabel,
            const std::string &optLabel) const
    {
        const double ref = nsOf(refLabel);
        const double opt = nsOf(optLabel);
        if (ref > 0 && opt > 0)
            std::printf("  %-36s %12.2fx  (%.0f -> %.0f ns)\n",
                        what.c_str(), ref / opt, ref, opt);
    }

    std::vector<sim::RunResult>
    results() const
    {
        std::vector<sim::RunResult> out;
        out.reserve(rows_.size());
        for (const auto &r : rows_) {
            sim::RunResult res;
            res.label = r.label;
            res.machine = "host-cpu";
            res.workload = r.workload;
            res.seconds = r.timing.perOpSeconds;
            res.hostSeconds = r.timing.totalSeconds;
            res.stats.instCount = static_cast<u64>(r.timing.reps);
            res.verbosity = sim::StatsVerbosity::Compact;
            out.push_back(std::move(res));
        }
        return out;
    }

  private:
    std::vector<Row> rows_;
};

void
benchNtt(Suite &suite, int logN, int qBits)
{
    const u64 n = 1ULL << logN;
    const u64 q = findNttPrime(qBits, 2 * n);
    NttTable ntt(n, q);
    const int reps = static_cast<int>(
        std::max<u64>(8, (1ULL << 22) / n));
    const std::string tag =
        "n" + std::to_string(logN) + "/q" + std::to_string(qBits);
    const std::string desc = "N=2^" + std::to_string(logN) + " q=" +
                             std::to_string(qBits) + "bit" +
                             (ntt.usesAvx512() ? " (avx512-ifma)"
                                               : " (scalar)");
    auto a = randomPoly(n, q, 1);

    suite.add("kernels/ntt-fwd/ref/" + tag, "forward NTT ref " + desc,
              [&] { ntt.forwardReference(a.data()); }, reps);
    suite.add("kernels/ntt-fwd/opt/" + tag, "forward NTT opt " + desc,
              [&] { ntt.forward(a.data()); }, reps);
    suite.add("kernels/ntt-inv/ref/" + tag, "inverse NTT ref " + desc,
              [&] { ntt.inverseReference(a.data()); }, reps);
    suite.add("kernels/ntt-inv/opt/" + tag, "inverse NTT opt " + desc,
              [&] { ntt.inverse(a.data()); }, reps);
    suite.speedup("ntt forward speedup " + tag,
                  "kernels/ntt-fwd/ref/" + tag,
                  "kernels/ntt-fwd/opt/" + tag);
    suite.speedup("ntt inverse speedup " + tag,
                  "kernels/ntt-inv/ref/" + tag,
                  "kernels/ntt-inv/opt/" + tag);
}

void
benchCgNtt(Suite &suite, int logN)
{
    const u64 n = 1ULL << logN;
    const u64 q = findNttPrime(50, 2 * n);
    CgNtt cg(n, q);
    const int reps = static_cast<int>(
        std::max<u64>(8, (1ULL << 21) / n));
    const std::string tag = "n" + std::to_string(logN);
    auto a = randomPoly(n, q, 2);

    suite.add("kernels/cg-fwd/" + tag,
              "constant-geometry forward N=2^" + std::to_string(logN),
              [&] { cg.forward(a); }, reps);
    suite.add("kernels/cg-inv/" + tag,
              "constant-geometry inverse N=2^" + std::to_string(logN),
              [&] { cg.inverse(a); }, reps);
    const u64 m = std::min<u64>(n, 1ULL << 10);
    suite.add("kernels/cg-packed-fwd/" + tag,
              "packed forward M=2^10 N=2^" + std::to_string(logN),
              [&] { cg.packedForward(a, m); }, reps);
}

void
benchRns(Suite &suite, int logN, int limbs)
{
    const u64 n = 1ULL << logN;
    RingContext ring(n);
    std::vector<u64> moduli;
    for (int i = 0; i < limbs; ++i)
        moduli.push_back(findNttPrime(45, 2 * n, i));

    RnsPoly a(&ring, moduli, PolyForm::Coeff);
    RnsPoly b(&ring, moduli, PolyForm::Coeff);
    Rng rng(7);
    a.sampleUniform(rng);
    b.sampleUniform(rng);
    b.toEval();
    const int reps = static_cast<int>(
        std::max<u64>(4, (1ULL << 22) / (n * limbs)));
    const std::string tag =
        "n" + std::to_string(logN) + "/L" + std::to_string(limbs);
    const std::string desc = " N=2^" + std::to_string(logN) + " L=" +
                             std::to_string(limbs);

    for (const bool parallel : {false, true}) {
        setKernelThreads(parallel ? 0 : 1);
        const std::string mode = parallel ? "par" : "ser";
        suite.add("kernels/rns-ntt-roundtrip/" + mode + "/" + tag,
                  "RNS toEval+toCoeff " + mode + desc,
                  [&] {
                      a.toEval();
                      a.toCoeff();
                  },
                  reps);
        suite.add("kernels/rns-mul-eval/" + mode + "/" + tag,
                  "RNS eval-domain multiply " + mode + desc,
                  [&] {
                      a.toEval();
                      a.mulEvalInPlace(b);
                      a.toCoeff();
                  },
                  reps);
    }
    setKernelThreads(0);
    suite.speedup("rns round-trip parallel speedup",
                  "kernels/rns-ntt-roundtrip/ser/" + tag,
                  "kernels/rns-ntt-roundtrip/par/" + tag);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::SweepCli cli = bench::parseSweepCli(argc, argv);
    if (cli.runnerConfig.threads > 0)
        setKernelThreads(cli.runnerConfig.threads);

    bench::header("Kernel-layer microbenchmarks",
                  "the software baseline of Section VI; host kernels only");
    std::printf("kernel pool threads: %d\n\n", kernelThreads());

    Suite suite;
    const auto t0 = std::chrono::steady_clock::now();

    std::printf("classical NTT (optimized dispatch vs reference):\n");
    benchNtt(suite, 12, 50);
    benchNtt(suite, 14, 50);
    benchNtt(suite, 14, 59); // above the IFMA bound: scalar Harvey path
    std::printf("\nconstant-geometry NTT:\n");
    benchCgNtt(suite, 14);
    std::printf("\nRNS polynomial ops (serial vs limb-parallel):\n");
    benchRns(suite, 13, 8);

    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::printf("\n[total %.2f s]\n", wall);
    bench::footnote("per-op times are means over the printed rep counts; "
                    "`ref` rows are the pre-optimization kernels kept as "
                    "the differential-testing oracle");

    if (!cli.jsonPath.empty() || !cli.csvPath.empty()) {
        runner::ReportMeta meta;
        meta.generator = "ufc-bench/bench_kernels";
        meta.threads = kernelThreads();
        meta.wallSeconds = wall;
        const auto results = suite.results();
        if (!cli.jsonPath.empty())
            runner::saveJsonReport(results, cli.jsonPath, meta);
        if (!cli.csvPath.empty())
            runner::saveCsvReport(results, cli.csvPath);
    }
    return 0;
}
