/**
 * @file
 * Abstract domains for the dataflow layer (see domains.h).
 *
 * Trace-level soundness: the IR has no SSA names, so independent
 * ciphertext chains interleave freely.  The level-flow domain is a
 * *reachability* overapproximation — a level is reachable when fresh
 * ciphertexts (level L), a rescale from ℓ+1, a mod-raise, or a repack
 * could have produced a value there under SOME interleaving — so its
 * Error rule (df-chain-underflow) has no false positives: a flagged op
 * is illegal under EVERY interleaving.  The rescale-discipline domain
 * counts production/consumption per level (count-weighted, saturating)
 * under a linear-consumption assumption its Warning rules state in
 * their hints; fresh ciphertexts give level L an infinite supply, so
 * none of the warnings can fire at the top of the chain.
 */

#include "analysis/domains.h"

#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/dataflow.h"
#include "compiler/bytecode.h"
#include "compiler/lowering.h"
#include "trace/serialize.h"

namespace ufc {
namespace analysis {

using trace::OpKind;
using trace::Scheme;
using trace::Trace;
using trace::TraceOp;

namespace {

/** Diagnostic builder for trace-level findings (mirrors analyzer.cpp). */
void
report(DiagnosticReport &out, const Trace &tr, const char *rule,
       std::ptrdiff_t opIndex, std::string message, std::string hint)
{
    Diagnostic d;
    d.severity = ruleSeverity(rule);
    d.rule = rule;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.opIndex = opIndex;
    d.phase = phaseAt(tr, opIndex);
    out.add(std::move(d));
}

/** Usable CKKS header for level analysis (scheme-legality reports the
 *  unusable cases; repeating them here would duplicate findings). */
bool
levelAnalyzable(const Trace &tr)
{
    return tr.ckksRingDim != 0 && tr.ckksLevels >= 1;
}

/**
 * Modulus-chain reachability: which levels can hold a ciphertext under
 * some interleaving.  Fresh ciphertexts enter at L; rescale@ℓ feeds
 * ℓ-1; mod-raise feeds L; repack@ℓ feeds ℓ.  An op executing at an
 * unreachable level is a chain-underflow under every interleaving.
 */
class LevelFlowPass : public Pass
{
  public:
    const char *name() const override { return "level-flow"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        if (!levelAnalyzable(tr))
            return;
        const int levels = tr.ckksLevels;
        const Cfg cfg = cfgFromTrace(tr);
        using State = std::vector<char>;
        State entry(static_cast<std::size_t>(levels) + 1, 0);
        entry[static_cast<std::size_t>(levels)] = 1;

        const auto meet = [](State &into, const State &from) {
            bool changed = false;
            for (std::size_t i = 0; i < into.size(); ++i)
                if (from[i] && !into[i]) {
                    into[i] = 1;
                    changed = true;
                }
            return changed;
        };
        // onUnreachable(level) fires at most once per root cause: the
        // level is marked reachable afterwards so one bad op does not
        // cascade into a report on every downstream consumer.
        const auto step = [levels](State &s, const TraceOp &op,
                                   const auto &onUnreachable) {
            if (op.scheme() == Scheme::Tfhe)
                return;
            const int l = op.limbs;
            if (l < 1 || l > levels)
                return; // limb-range already reported
            const auto at = static_cast<std::size_t>(l);
            switch (op.kind) {
              case OpKind::SwitchRepack:
                s[at] = 1;
                return;
              case OpKind::CkksModRaise:
                // limb-chain enforces l == L; the op refreshes the
                // chain regardless of where its input sat.
                s[static_cast<std::size_t>(levels)] = 1;
                return;
              default:
                break;
            }
            if (!s[at])
                onUnreachable(l);
            s[at] = 1;
            if (op.kind == OpKind::CkksRescale && l >= 2)
                s[at - 1] = 1;
        };
        const auto transfer = [&](u32 b, const State &in) {
            State s = in;
            for (u64 i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i)
                step(s, tr.ops[i], [](int) {});
            return s;
        };
        const State bottom(static_cast<std::size_t>(levels) + 1, 0);
        const std::vector<State> ins =
            solveForward(cfg, entry, bottom, meet, transfer);

        for (u32 b = 0; b < cfg.blocks.size(); ++b) {
            State s = ins[b];
            for (u64 i = cfg.blocks[b].begin; i < cfg.blocks[b].end;
                 ++i) {
                const TraceOp &op = tr.ops[i];
                step(s, op, [&](int l) {
                    std::ostringstream os;
                    os << trace::opKindName(op.kind) << " at level " << l
                       << ", but no rescale/mod-raise/repack path "
                          "reaches level "
                       << l << " from fresh ciphertexts (L = " << levels
                       << ")";
                    report(out, tr, "df-chain-underflow",
                           static_cast<std::ptrdiff_t>(i), os.str(),
                           "insert the rescale chain down to this "
                           "level, or mod-raise/repack into it");
                });
            }
        }
    }
};

/** Saturating counters for the rescale-discipline domain. */
constexpr u64 kInf = std::numeric_limits<u64>::max();

u64
satAdd(u64 a, u64 b)
{
    if (a == kInf || b == kInf)
        return kInf;
    const u64 s = a + b;
    return s < a ? kInf : s;
}

u64
satSub(u64 a, u64 b)
{
    if (a == kInf)
        return kInf;
    return a > b ? a - b : 0;
}

/**
 * Per-level production/consumption state: pending[ℓ] counts unrescaled
 * products sitting at level ℓ, avail1[ℓ] counts consumable
 * degree-1/scale-Δ values (rescale outputs, rotation copies, repack
 * outputs; level L holds infinitely many fresh ciphertexts).
 */
struct ScaleState
{
    std::vector<u64> pending;
    std::vector<u64> avail1;
};

/**
 * Rescale discipline, count-weighted:
 *   df-double-rescale   rescale@ℓ with no outstanding product at ℓ
 *   df-missed-rescale   mult@ℓ short of degree-1 operands while
 *                       unrescaled products pile up at ℓ
 *   df-scale-mismatch   ct-ct add@ℓ with both supplies exhausted
 * All Warnings: they assume linear consumption (each produced value
 * consumed at most once per use), which batched traces can legally
 * violate — the hints say so.
 */
class RescaleDisciplinePass : public Pass
{
  public:
    const char *name() const override { return "rescale-discipline"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        if (!levelAnalyzable(tr))
            return;
        const int levels = tr.ckksLevels;
        const Cfg cfg = cfgFromTrace(tr);
        ScaleState entry;
        entry.pending.assign(static_cast<std::size_t>(levels) + 1, 0);
        entry.avail1.assign(static_cast<std::size_t>(levels) + 1, 0);
        entry.avail1[static_cast<std::size_t>(levels)] = kInf;

        // Join keeps the FEWER-warnings side of each counter (min
        // pending, max avail1): at a join the analysis must not invent
        // a deficit that only one path has.
        const auto meet = [](ScaleState &into, const ScaleState &from) {
            bool changed = false;
            for (std::size_t i = 0; i < into.pending.size(); ++i) {
                if (from.pending[i] < into.pending[i]) {
                    into.pending[i] = from.pending[i];
                    changed = true;
                }
                if (from.avail1[i] > into.avail1[i]) {
                    into.avail1[i] = from.avail1[i];
                    changed = true;
                }
            }
            return changed;
        };
        enum class Finding { DoubleRescale, MissedRescale, ScaleMismatch };
        const auto step = [levels](ScaleState &s, const TraceOp &op,
                                   const auto &onFinding) {
            if (op.scheme() == Scheme::Tfhe)
                return;
            const int l = op.limbs;
            if (l < 1 || l > levels)
                return; // limb-range already reported
            const auto at = static_cast<std::size_t>(l);
            const u64 c = static_cast<u64>(std::max(1, op.count));
            switch (op.kind) {
              case OpKind::CkksRescale:
                if (s.pending[at] == 0)
                    onFinding(Finding::DoubleRescale);
                // One rescale op re-scales the level's outstanding
                // products as a batch: generators emit one rescale per
                // *combined* value, not per product, so consuming only
                // `count` would leave phantom pending forever.
                s.pending[at] = 0;
                if (l >= 2)
                    s.avail1[at - 1] = satAdd(s.avail1[at - 1], c);
                break;
              case OpKind::CkksMult:
                if (s.avail1[at] < satAdd(c, c) && s.pending[at] > 0)
                    onFinding(Finding::MissedRescale);
                s.avail1[at] = satSub(s.avail1[at], satAdd(c, c));
                s.pending[at] = satAdd(s.pending[at], c);
                break;
              case OpKind::CkksMultPlain:
                s.avail1[at] = satSub(s.avail1[at], c);
                s.pending[at] = satAdd(s.pending[at], c);
                break;
              case OpKind::CkksRotate:
              case OpKind::CkksConjugate:
              case OpKind::SwitchRepack:
                // Degree-preserving copies / repacked values replenish
                // the consumable pool at their level.
                s.avail1[at] = satAdd(s.avail1[at], c);
                break;
              case OpKind::CkksAdd:
                if (s.avail1[at] == 0 && s.pending[at] == 0)
                    onFinding(Finding::ScaleMismatch);
                break;
              default:
                break; // AddPlain, ModRaise, SwitchExtract: no effect
            }
        };
        const auto transfer = [&](u32 b, const ScaleState &in) {
            ScaleState s = in;
            for (u64 i = cfg.blocks[b].begin; i < cfg.blocks[b].end; ++i)
                step(s, tr.ops[i], [](Finding) {});
            return s;
        };
        // Bottom is the meet identity (min-pending / max-avail1).
        ScaleState bottom;
        bottom.pending.assign(static_cast<std::size_t>(levels) + 1,
                              kInf);
        bottom.avail1.assign(static_cast<std::size_t>(levels) + 1, 0);
        const std::vector<ScaleState> ins =
            solveForward(cfg, entry, bottom, meet, transfer);

        for (u32 b = 0; b < cfg.blocks.size(); ++b) {
            ScaleState s = ins[b];
            for (u64 i = cfg.blocks[b].begin; i < cfg.blocks[b].end;
                 ++i) {
                const TraceOp &op = tr.ops[i];
                const auto idx = static_cast<std::ptrdiff_t>(i);
                step(s, op, [&](Finding f) {
                    const int l = op.limbs;
                    std::ostringstream os;
                    switch (f) {
                      case Finding::DoubleRescale:
                        os << "rescale at level " << l << " (count "
                           << op.count
                           << ") with no outstanding product at that "
                              "level";
                        report(out, tr, "df-double-rescale", idx,
                               os.str(),
                               "a second rescale divides the scale "
                               "below Δ; rescale once per "
                               "multiplication (linear-consumption "
                               "heuristic)");
                        break;
                      case Finding::MissedRescale:
                        os << "multiplication at level " << l
                           << " (count " << op.count << ") finds only "
                           << s.avail1[static_cast<std::size_t>(l)]
                           << " rescaled operand(s) while "
                           << s.pending[static_cast<std::size_t>(l)]
                           << " unrescaled product(s) wait at that "
                              "level";
                        report(out, tr, "df-missed-rescale", idx,
                               os.str(),
                               "rescale the pending products before "
                               "multiplying again (linear-consumption "
                               "heuristic)");
                        break;
                      case Finding::ScaleMismatch:
                        os << "ciphertext add at level " << l
                           << " (count " << op.count
                           << ") with no scale-consistent operand "
                              "supply: no rescaled value and no "
                              "product remains at that level";
                        report(out, tr, "df-scale-mismatch", idx,
                               os.str(),
                               "produce operands at this level "
                               "(rescale/rotate into it) before "
                               "adding (linear-consumption "
                               "heuristic)");
                        break;
                    }
                });
            }
        }
    }
};

// ---------------------------------------------------------------------
// Program-level rules (compiled bytecode).

/** Innermost open phase name at instruction `inst` (empty when none). */
std::string
bcPhaseAt(const compiler::Program &p, u64 inst)
{
    std::vector<i32> stack;
    for (const compiler::PhaseEvent &e : p.phaseEvents) {
        if (e.inst > inst)
            break;
        if (e.name == compiler::PhaseEvent::kEnd) {
            if (!stack.empty())
                stack.pop_back();
        } else {
            stack.push_back(e.name);
        }
    }
    if (stack.empty())
        return {};
    const auto idx = static_cast<std::size_t>(stack.back());
    return idx < p.phaseNames.size() ? p.phaseNames[idx] : std::string();
}

void
reportBc(DiagnosticReport &out, const compiler::Program &p,
         const char *rule, u64 inst, std::string message,
         std::string hint)
{
    Diagnostic d;
    d.severity = ruleSeverity(rule);
    d.rule = rule;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.opIndex = static_cast<std::ptrdiff_t>(inst);
    d.phase = bcPhaseAt(p, inst);
    out.add(std::move(d));
}

/**
 * Re-prove fusion / loop-folding legality from the operand records
 * alone: a fused run or folded loop body must be free of scratchpad
 * accesses, because replaying it assumes LRU-independent memory
 * behaviour.  Independent of verifyProgram's bc-fuse-* rules, which
 * trust the BcKind tag the fusion pass itself wrote.
 */
void
checkReplayPurity(const compiler::Program &p,
                  const std::vector<char> &cached, DiagnosticReport &out)
{
    for (u64 i = 0; i < p.code.size();) {
        const u16 runLen = p.code[i].runLen;
        if (runLen > 1) {
            const u64 end = std::min<u64>(i + runLen, p.code.size());
            for (u64 j = i; j < end; ++j) {
                if (cached[j]) {
                    std::ostringstream os;
                    os << "fused run [" << i << ", " << end
                       << ") contains a scratchpad operand at "
                          "instruction "
                       << j;
                    reportBc(out, p, "df-fuse-memdep", j, os.str(),
                             "iterating the run would replay an "
                             "LRU-dependent access; exclude the "
                             "instruction from fusion");
                    break;
                }
            }
            i = end;
        } else {
            ++i;
        }
    }
    for (const compiler::BcLoop &lp : p.loops) {
        if (lp.bodyLen == 0 || lp.end > p.code.size() ||
            lp.bodyLen > lp.end)
            continue; // bc-loop-invariant reports malformed rows
        for (u64 j = lp.end - lp.bodyLen; j < lp.end; ++j) {
            if (cached[j]) {
                std::ostringstream os;
                os << "folded loop body [" << (lp.end - lp.bodyLen)
                   << ", " << lp.end << ") x" << lp.trips
                   << " touches the scratchpad at instruction " << j;
                reportBc(out, p, "df-loop-memdep", j, os.str(),
                         "re-executing the body assumes pure "
                         "streaming; unroll instead of folding");
                break;
            }
        }
    }
}

/** Slot def-use rules over the exported access stream. */
void
checkSlotDefUse(const compiler::Program &p,
                const std::vector<compiler::SlotAccess> &acc,
                DiagnosticReport &out)
{
    // df-slot-use-before-def: the slot's first-ever access is a read,
    // yet the program itself defines (writes) the slot later — the
    // consumer was scheduled before its producer.  Slots that are only
    // ever read (evaluation keys fetched from HBM on miss) never fire,
    // and ciphertext-pool slots are skipped entirely: their ids model
    // reuse locality, not value identity (syntheticCiphertextId), so
    // read-then-write orderings there are statistical noise.
    std::unordered_map<u32, char> firstIsRead; // slot -> first access
    std::unordered_map<u32, u64> firstRead;
    std::unordered_map<u32, char> writtenLater;
    for (const compiler::SlotAccess &a : acc) {
        if (compiler::syntheticCiphertextId(a.id))
            continue;
        const auto it = firstIsRead.find(a.slot);
        if (it == firstIsRead.end()) {
            firstIsRead.emplace(a.slot, a.write ? 0 : 1);
            if (!a.write)
                firstRead.emplace(a.slot, a.inst);
        } else if (a.write && it->second) {
            writtenLater[a.slot] = 1;
        }
    }
    for (const auto &[slot, flagged] : writtenLater) {
        if (!flagged)
            continue;
        std::ostringstream os;
        os << "scratchpad slot " << slot
           << " is read (instruction " << firstRead[slot]
           << ") before the program first writes it";
        reportBc(out, p, "df-slot-use-before-def", firstRead[slot],
                 os.str(),
                 "the read observes stale HBM data the program later "
                 "defines; order the producer first");
    }

    // df-spad-overcommit: one instruction's distinct-slot operand
    // footprint exceeds the scratchpad — its own operands cannot
    // co-reside, so the LRU thrashes within a single instruction.
    for (std::size_t i = 0; i < acc.size();) {
        const u64 inst = acc[i].inst;
        double bytes = 0.0;
        std::set<u32> seen;
        std::size_t j = i;
        for (; j < acc.size() && acc[j].inst == inst; ++j)
            if (seen.insert(acc[j].slot).second)
                bytes += acc[j].bytes;
        if (bytes > p.scratchpadBytes && p.scratchpadBytes > 0.0) {
            std::ostringstream os;
            os << "instruction " << inst << " touches " << seen.size()
               << " slot(s) totalling " << bytes
               << " bytes against a " << p.scratchpadBytes
               << "-byte scratchpad";
            reportBc(out, p, "df-spad-overcommit", inst, os.str(),
                     "the operand set cannot co-reside; split the "
                     "instruction or grow the scratchpad");
        }
        i = j;
    }
}

/**
 * df-slot-dead-store via backward liveness over the Program CFG: a
 * write whose value is overwritten before any read paid scratchpad
 * growth (and possibly a dirty writeback) for data nobody consumed.
 * The exit state treats every slot as live, so a program's final
 * output writes are never flagged; ciphertext-pool accesses are
 * excluded like in checkSlotDefUse — write-write slot collisions
 * there are the locality model rolling dice, not dead values.
 */
void
checkDeadStores(const compiler::Program &p,
                const std::vector<compiler::SlotAccess> &acc,
                DiagnosticReport &out)
{
    if (p.spadSlots == 0 || acc.empty())
        return;
    const Cfg cfg = cfgFromProgram(p);
    // Value-accurate accesses per block, in order (folded loop bodies
    // are all-Stream, so they carry no accesses and the self edges are
    // vacuous here).
    std::vector<std::vector<const compiler::SlotAccess *>> byBlock(
        cfg.blocks.size());
    {
        std::size_t a = 0;
        for (u32 b = 0; b < cfg.blocks.size(); ++b) {
            while (a < acc.size() && acc[a].inst < cfg.blocks[b].end) {
                if (acc[a].inst >= cfg.blocks[b].begin &&
                    !compiler::syntheticCiphertextId(acc[a].id))
                    byBlock[b].push_back(&acc[a]);
                ++a;
            }
        }
    }
    using State = std::vector<char>;
    const State exitState(p.spadSlots, 1); // everything may be output
    const auto meet = [](State &into, const State &from) {
        bool changed = false;
        for (std::size_t i = 0; i < into.size(); ++i)
            if (from[i] && !into[i]) {
                into[i] = 1;
                changed = true;
            }
        return changed;
    };
    const auto applyReverse = [&](u32 b, State s) {
        const auto &list = byBlock[b];
        for (auto it = list.rbegin(); it != list.rend(); ++it) {
            const compiler::SlotAccess *a = *it;
            if (a->slot >= s.size())
                continue;
            s[a->slot] = a->write ? 0 : 1;
        }
        return s;
    };
    const State bottom(p.spadSlots, 0);
    const std::vector<State> outs =
        solveBackward(cfg, exitState, bottom, meet, applyReverse);

    for (u32 b = 0; b < cfg.blocks.size(); ++b) {
        State live = outs[b];
        const auto &list = byBlock[b];
        for (auto it = list.rbegin(); it != list.rend(); ++it) {
            const compiler::SlotAccess *a = *it;
            if (a->slot >= live.size())
                continue;
            if (a->write && !live[a->slot]) {
                std::ostringstream os;
                os << "write to scratchpad slot " << a->slot
                   << " at instruction " << a->inst
                   << " is overwritten before any read";
                reportBc(out, p, "df-slot-dead-store", a->inst, os.str(),
                         "the stored value is never consumed; drop "
                         "the store or reuse a scratch slot");
            }
            live[a->slot] = a->write ? 0 : 1;
        }
    }
}

} // namespace

std::vector<std::unique_ptr<Pass>>
makeDataflowPasses()
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(std::make_unique<LevelFlowPass>());
    passes.push_back(std::make_unique<RescaleDisciplinePass>());
    return passes;
}

void
runProgramDataflow(const compiler::Program &p, DiagnosticReport &out)
{
    if (p.composed()) {
        for (const compiler::Program &part : p.parts)
            runProgramDataflow(part, out);
        return;
    }
    const std::vector<compiler::SlotAccess> acc =
        compiler::slotAccesses(p);
    std::vector<char> cached(p.code.size(), 0);
    for (const compiler::SlotAccess &a : acc)
        if (a.inst < cached.size())
            cached[a.inst] = 1;
    checkReplayPurity(p, cached, out);
    checkSlotDefUse(p, acc, out);
    checkDeadStores(p, acc, out);
}

} // namespace analysis
} // namespace ufc
