/**
 * @file
 * Trace-level analysis passes and the pass pipeline.
 *
 * Soundness note: the trace IR is ciphertext-granular with no SSA names,
 * so several independent limb chains interleave freely in one op stream
 * (e.g. the per-batch distance chains of hybrid k-NN).  The limb-chain
 * pass therefore checks the invariants that hold for *every* legal
 * interleaving — limbs stay inside [1, L], a rescale needs >= 2 limbs so
 * its decrement-by-one cannot drop below 1, a mod-raise resets exactly to
 * L — rather than simulating one global chain, which would false-positive
 * on parallel chains.
 */

#include "analysis/analyzer.h"

#include <algorithm>
#include <bit>
#include <set>
#include <sstream>

#include "analysis/domains.h"
#include "analysis/verifying_sink.h"
#include "compiler/bytecode.h"
#include "compiler/lowering.h"
#include "sim/ufc_perf.h"
#include "trace/serialize.h"

namespace ufc {
namespace analysis {

using trace::OpKind;
using trace::Scheme;
using trace::Trace;
using trace::TraceOp;

const std::vector<RuleInfo> &
ruleRegistry()
{
    static const std::vector<RuleInfo> kRules = {
        // Trace-level rules (analyzer passes).
        {"count-range", Severity::Error,
         "batched op with count < 1"},
        {"fanin-misuse", Severity::Error,
         "fanIn set on an op kind that ignores it (only tfhe.linear "
         "consumes fanIn)"},
        {"fanin-missing", Severity::Warning,
         "tfhe.linear without a fanIn (lowering assumes 1 input)"},
        {"live-underflow", Severity::Error,
         "liveCiphertexts < 1 on a trace with ops (the scratchpad "
         "working-set model needs a live set)"},
        {"scheme-ckks-params", Severity::Error,
         "SIMD-scheme (CKKS/switch) ops or header without usable CKKS "
         "parameters (ring dim, levels, dnum, limb bits)"},
        {"scheme-tfhe-params", Severity::Error,
         "logic-scheme (TFHE/switch) ops or header without usable TFHE "
         "parameters (ring dim, LWE dim, decomposition levels)"},
        {"scheme-ring-pow2", Severity::Error,
         "declared ring dimension is not a power of two"},
        {"limb-range", Severity::Error,
         "CKKS op outside the modulus chain: limbs < 1 or > levels"},
        {"rescale-underflow", Severity::Error,
         "rescale at < 2 limbs would drop the chain below 1"},
        {"modraise-target", Severity::Error,
         "mod-raise must reset the chain to exactly L limbs"},
        {"phase-balance", Severity::Error,
         "phase end without an open region, or region left open"},
        {"phase-order", Severity::Error,
         "phase markers not ordered by opIndex"},
        {"phase-index", Severity::Error,
         "phase marker past the end of the op stream"},
        {"phase-name", Severity::Error,
         "phase begin without a single-token name"},
        {"working-set", Severity::Warning,
         "distinct evaluation-key ids far exceed the declared live set "
         "(scratchpad working-set model will thrash)"},
        // Instruction-level rules (VerifyingSink).
        {"inst-ntt-work", Severity::Error,
         "(i)NTT work units != batch * (n/2) * log2 n operand words"},
        {"inst-no-operands", Severity::Error,
         "instruction moves no words and touches no buffer"},
        {"inst-batch", Severity::Error, "instruction batch < 1"},
        {"inst-degree", Severity::Error,
         "instruction logDegree above the supported ring range"},
        {"buf-transient-streaming", Severity::Error,
         "buffer marked both transient and streaming"},
        {"buf-use-before-def", Severity::Error,
         "transient buffer read before any write"},
        {"buf-unconsumed-transient", Severity::Warning,
         "transient buffer written but never read"},
        {"inst-phase-balance", Severity::Error,
         "unbalanced phase markers in the instruction stream"},
        // Bytecode-level rules (compiler::verifyProgram, run over the
        // Program that the same one-pass lowering emits).
        {"bc-fuse-cached-operand", Severity::Error,
         "fused run contains a Mem instruction (cached operands mutate "
         "scratchpad state and may not be fused)"},
        {"bc-fuse-phase-span", Severity::Error,
         "fused run overruns the instruction stream or spans a phase "
         "marker / loop edge"},
        {"bc-loop-invariant", Severity::Error,
         "folded repeat loop is degenerate, out of bounds, overlapping, "
         "scratchpad-dependent, or contains a phase marker"},
        // Dataflow rules (opt-in: analyzeDataflow / ufc_lint --dataflow).
        {"df-chain-underflow", Severity::Error,
         "op at a modulus-chain level no rescale/mod-raise/repack path "
         "can reach from fresh ciphertexts"},
        {"df-double-rescale", Severity::Warning,
         "rescale with no outstanding product at its level "
         "(linear-consumption heuristic)"},
        {"df-missed-rescale", Severity::Warning,
         "multiplication short of rescaled operands while unrescaled "
         "products wait at its level (linear-consumption heuristic)"},
        {"df-scale-mismatch", Severity::Warning,
         "ciphertext add at a level whose rescaled-value and product "
         "supplies are both exhausted (linear-consumption heuristic)"},
        {"df-fuse-memdep", Severity::Error,
         "fused run carries a scratchpad operand record (re-proved from "
         "BcBuf records, independent of the fusion pass's kind tags)"},
        {"df-loop-memdep", Severity::Error,
         "folded loop body carries a scratchpad operand record "
         "(re-proved from BcBuf records)"},
        {"df-slot-use-before-def", Severity::Warning,
         "scratchpad slot read before the program first writes it "
         "(consumer scheduled before its producer)"},
        {"df-slot-dead-store", Severity::Warning,
         "scratchpad slot written and then overwritten with no "
         "intervening read"},
        {"df-spad-overcommit", Severity::Warning,
         "one instruction's distinct-slot operand bytes exceed the "
         "scratchpad (its operands cannot co-reside)"},
    };
    return kRules;
}

Severity
ruleSeverity(const char *id)
{
    for (const auto &rule : ruleRegistry())
        if (std::string_view(rule.id) == id)
            return rule.severity;
    return Severity::Error;
}

std::string
phaseAt(const Trace &tr, std::ptrdiff_t opIndex)
{
    if (opIndex < 0)
        return {};
    std::vector<const std::string *> stack;
    for (const auto &mark : tr.phases) {
        if (mark.opIndex > static_cast<u64>(opIndex))
            break;
        if (mark.begin)
            stack.push_back(&mark.name);
        else if (!stack.empty())
            stack.pop_back();
    }
    return stack.empty() ? std::string() : *stack.back();
}

namespace {

/** Diagnostic builder shared by the passes. */
void
report(DiagnosticReport &out, const Trace &tr, const char *rule,
       std::ptrdiff_t opIndex, std::string message, std::string hint)
{
    Diagnostic d;
    d.severity = ruleSeverity(rule);
    d.rule = rule;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.opIndex = opIndex;
    d.phase = phaseAt(tr, opIndex);
    out.add(std::move(d));
}

/** Batched-op field validity: count, fanIn usage, live-set sanity. */
class FieldValidityPass : public Pass
{
  public:
    const char *name() const override { return "field-validity"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        if (!tr.ops.empty() && tr.liveCiphertexts < 1) {
            std::ostringstream os;
            os << "trace declares liveCiphertexts = "
               << tr.liveCiphertexts;
            report(out, tr, "live-underflow", Diagnostic::kTraceLevel,
                   os.str(), "declare at least one live ciphertext");
        }
        for (std::size_t i = 0; i < tr.ops.size(); ++i) {
            const TraceOp &op = tr.ops[i];
            const auto idx = static_cast<std::ptrdiff_t>(i);
            const char *mnemonic = trace::opKindName(op.kind);
            if (op.count < 1) {
                std::ostringstream os;
                os << mnemonic << " has count " << op.count;
                report(out, tr, "count-range", idx, os.str(),
                       "batched ops repeat count >= 1 times");
            }
            if (op.kind == OpKind::TfheLinear) {
                if (op.fanIn == 0)
                    report(out, tr, "fanin-missing", idx,
                           std::string(mnemonic) +
                               " without a fanIn (lowering assumes 1)",
                           "set the number of LWE inputs explicitly");
            } else if (op.fanIn != 0) {
                std::ostringstream os;
                os << mnemonic << " carries fanIn " << op.fanIn
                   << " but only tfhe.linear consumes fanIn";
                report(out, tr, "fanin-misuse", idx, os.str(),
                       "drop the fanIn field from this op");
            }
        }
    }
};

/** Scheme legality: every op's scheme must have usable parameters. */
class SchemeLegalityPass : public Pass
{
  public:
    const char *name() const override { return "scheme-legality"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        // Header self-consistency: a declared ring must be usable even
        // before looking at the ops, because every compiler derives its
        // geometry (log n, words/limb, dnum digits) from the header.
        if (tr.ckksRingDim != 0 &&
            !std::has_single_bit(tr.ckksRingDim)) {
            std::ostringstream os;
            os << "ckks ring dimension " << tr.ckksRingDim
               << " is not a power of two";
            report(out, tr, "scheme-ring-pow2", Diagnostic::kTraceLevel,
                   os.str(), "NTT lowering needs log2(ring dim)");
        }
        if (tr.tfheRingDim != 0 &&
            !std::has_single_bit(tr.tfheRingDim)) {
            std::ostringstream os;
            os << "tfhe ring dimension " << tr.tfheRingDim
               << " is not a power of two";
            report(out, tr, "scheme-ring-pow2", Diagnostic::kTraceLevel,
                   os.str(), "NTT lowering needs log2(ring dim)");
        }
        if (tr.ckksRingDim != 0 &&
            (tr.ckksLevels < 1 || tr.ckksDnum < 1 ||
             tr.ckksLimbBits < 1)) {
            std::ostringstream os;
            os << "ckks header declares ring dim " << tr.ckksRingDim
               << " but levels=" << tr.ckksLevels << " dnum="
               << tr.ckksDnum << " limbBits=" << tr.ckksLimbBits;
            report(out, tr, "scheme-ckks-params",
                   Diagnostic::kTraceLevel, os.str(),
                   "a usable CKKS header needs levels, dnum and "
                   "limbBits >= 1");
        }
        if (tr.tfheRingDim != 0 &&
            (tr.tfheLweDim < 1 || tr.tfheLimbBits < 1)) {
            std::ostringstream os;
            os << "tfhe header declares ring dim " << tr.tfheRingDim
               << " but lweDim=" << tr.tfheLweDim << " limbBits="
               << tr.tfheLimbBits;
            report(out, tr, "scheme-tfhe-params",
                   Diagnostic::kTraceLevel, os.str(),
                   "a usable TFHE header needs lweDim and limbBits "
                   ">= 1");
        }

        for (std::size_t i = 0; i < tr.ops.size(); ++i) {
            const TraceOp &op = tr.ops[i];
            const auto idx = static_cast<std::ptrdiff_t>(i);
            const char *mnemonic = trace::opKindName(op.kind);
            const Scheme scheme = op.scheme();
            const bool needsCkks =
                scheme == Scheme::Ckks || scheme == Scheme::Switch;
            const bool needsTfhe =
                scheme == Scheme::Tfhe || scheme == Scheme::Switch;
            if (needsCkks && tr.ckksRingDim == 0) {
                std::ostringstream os;
                os << mnemonic
                   << " needs CKKS parameters but ckksRingDim == 0";
                report(out, tr, "scheme-ckks-params", idx, os.str(),
                       "declare the CKKS header (setCkksParams) or "
                       "drop the SIMD-scheme ops");
            }
            if (needsTfhe && tr.tfheRingDim == 0) {
                std::ostringstream os;
                os << mnemonic
                   << " needs TFHE parameters but tfheRingDim == 0";
                report(out, tr, "scheme-tfhe-params", idx, os.str(),
                       "declare the TFHE header (setTfheParams) or "
                       "drop the logic-scheme ops");
            }
            // Decomposition depth: blind rotation walks gadgetLevels
            // RGSW rows, every LWE key switch walks ksLevels digits.
            if (tr.tfheRingDim != 0) {
                if (op.kind == OpKind::TfhePbs &&
                    tr.tfheGadgetLevels < 1)
                    report(out, tr, "scheme-tfhe-params", idx,
                           "tfhe.pbs with gadgetLevels < 1",
                           "blind rotation needs a gadget "
                           "decomposition depth");
                const bool keySwitches =
                    op.kind == OpKind::TfhePbs ||
                    op.kind == OpKind::TfheKeySwitch ||
                    op.kind == OpKind::SwitchExtract;
                if (keySwitches && tr.tfheKsLevels < 1)
                    report(out, tr, "scheme-tfhe-params", idx,
                           std::string(mnemonic) +
                               " with ksLevels < 1",
                           "LWE key switching needs a decomposition "
                           "depth");
            }
        }
    }
};

/** CKKS limb-chain consistency (see the file comment for soundness). */
class LimbChainPass : public Pass
{
  public:
    const char *name() const override { return "limb-chain"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        // Without a CKKS header the scheme pass already reports every
        // SIMD op; repeating a bound check against levels=0 would just
        // duplicate findings.
        if (tr.ckksRingDim == 0 || tr.ckksLevels < 1)
            return;
        const int levels = tr.ckksLevels;
        for (std::size_t i = 0; i < tr.ops.size(); ++i) {
            const TraceOp &op = tr.ops[i];
            const Scheme scheme = op.scheme();
            if (scheme == Scheme::Tfhe)
                continue;
            const auto idx = static_cast<std::ptrdiff_t>(i);
            const char *mnemonic = trace::opKindName(op.kind);
            if (op.limbs < 1 || op.limbs > levels) {
                std::ostringstream os;
                os << mnemonic << " at " << op.limbs
                   << " limbs, outside the modulus chain [1, "
                   << levels << "]";
                report(out, tr, "limb-range", idx, os.str(),
                       "ops run between 1 active limb and the "
                       "declared level budget");
                continue;
            }
            if (op.kind == OpKind::CkksRescale && op.limbs < 2) {
                std::ostringstream os;
                os << "rescale at " << op.limbs
                   << " limb(s) would leave " << (op.limbs - 1);
                report(out, tr, "rescale-underflow", idx, os.str(),
                       "rescale divides away one limb; bootstrap "
                       "before the chain runs out");
            }
            if (op.kind == OpKind::CkksModRaise &&
                op.limbs != levels) {
                std::ostringstream os;
                os << "mod-raise targets " << op.limbs
                   << " limbs but the chain resets to L = " << levels;
                report(out, tr, "modraise-target", idx, os.str(),
                       "bootstrap mod-raise extends the basis back to "
                       "the full chain");
            }
        }
    }
};

/** Phase stack discipline and monotone opIndex. */
class PhaseDisciplinePass : public Pass
{
  public:
    const char *name() const override { return "phase-discipline"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        int open = 0;
        u64 lastIndex = 0;
        bool first = true;
        for (const auto &mark : tr.phases) {
            const auto idx = static_cast<std::ptrdiff_t>(mark.opIndex);
            if (!first && mark.opIndex < lastIndex) {
                std::ostringstream os;
                os << "phase marker at opIndex " << mark.opIndex
                   << " after a marker at " << lastIndex;
                report(out, tr, "phase-order", idx, os.str(),
                       "emit begin/end markers as the ops are pushed");
            }
            first = false;
            lastIndex = std::max(lastIndex, mark.opIndex);
            if (mark.opIndex > tr.ops.size()) {
                std::ostringstream os;
                os << "phase marker at opIndex " << mark.opIndex
                   << " but the trace has " << tr.ops.size() << " ops";
                report(out, tr, "phase-index", idx, os.str(),
                       "markers may point at most one past the last "
                       "op");
            }
            if (mark.begin) {
                if (mark.name.empty() ||
                    mark.name.find_first_of(" \t\n") !=
                        std::string::npos) {
                    report(out, tr, "phase-name", idx,
                           "phase begin with an empty or "
                           "whitespace-carrying name",
                           "phase names are single tokens");
                }
                ++open;
            } else {
                if (open == 0) {
                    report(out, tr, "phase-balance", idx,
                           "phase end without an open region",
                           "generators must balance beginPhase/"
                           "endPhase");
                } else {
                    --open;
                }
            }
        }
        if (open > 0) {
            std::ostringstream os;
            os << open << " phase region(s) still open at the end of "
               << "the trace";
            report(out, tr, "phase-balance",
                   static_cast<std::ptrdiff_t>(tr.ops.size()), os.str(),
                   "close every region the generator opens");
        }
    }
};

/** Key-id cardinality vs. the declared scratchpad working set. */
class WorkingSetPass : public Pass
{
  public:
    const char *name() const override { return "working-set"; }

    void
    run(const Trace &tr, DiagnosticReport &out) const override
    {
        // Rotation/conjugation keys are the per-id scratchpad
        // competitors (ciphertexts come from the liveCiphertexts pool,
        // relin/bootstrap keys are singletons per trace).
        std::set<int> keyIds;
        for (const auto &op : tr.ops)
            if (op.kind == OpKind::CkksRotate ||
                op.kind == OpKind::CkksConjugate)
                keyIds.insert(op.keyId);
        const std::size_t threshold = std::max<std::size_t>(
            64, 16 * static_cast<std::size_t>(
                         std::max(0, tr.liveCiphertexts)));
        if (keyIds.size() > threshold) {
            std::ostringstream os;
            os << tr.ops.size() << " ops use " << keyIds.size()
               << " distinct rotation-key ids against a declared live "
               << "set of " << tr.liveCiphertexts
               << " ciphertexts (feasibility threshold " << threshold
               << ")";
            report(out, tr, "working-set", Diagnostic::kTraceLevel,
                   os.str(),
                   "raise liveCiphertexts to match the real working "
                   "set, or hoist shared rotation keys");
        }
    }
};

} // namespace

Analyzer::Analyzer()
{
    passes_.push_back(std::make_unique<FieldValidityPass>());
    passes_.push_back(std::make_unique<SchemeLegalityPass>());
    passes_.push_back(std::make_unique<LimbChainPass>());
    passes_.push_back(std::make_unique<PhaseDisciplinePass>());
    passes_.push_back(std::make_unique<WorkingSetPass>());
    dfPasses_ = makeDataflowPasses();
}

DiagnosticReport
Analyzer::analyze(const Trace &tr) const
{
    DiagnosticReport out;
    for (const auto &pass : passes_)
        pass->run(tr, out);
    return out;
}

DiagnosticReport
Analyzer::analyzeLowered(const Trace &tr,
                         const compiler::LoweringOptions &opts) const
{
    DiagnosticReport out = analyze(tr);
    // A trace whose header failed scheme legality would feed nonsense
    // geometry (log2 of a non-power-of-two, division by dnum = 0) into
    // the lowering; report the trace-level findings alone.
    if (out.errorCount() > 0)
        return out;
    // One lowering pass serves both verification and bytecode emission:
    // compileTrace() composes the VerifyingSink in front of its
    // ProgramBuilder (via LoweringOptions::lint), and the emitted
    // Program is then checked against the bytecode-level rules
    // (bc-fuse-*).  The reference machine is the paper's Table II UFC
    // configuration — instruction legality is machine-independent, the
    // perf model only prices the cost terms.
    DiagnosticReport lowered;
    const sim::UfcPerf perf{sim::UfcConfig::tableII()};
    const compiler::Program program =
        compiler::compileTrace(tr, opts, perf, "UFC", &lowered);
    compiler::verifyProgram(program, lowered);
    out.merge(lowered);
    return out;
}

DiagnosticReport
Analyzer::analyzeLowered(const Trace &tr,
                         const compiler::Program &program) const
{
    DiagnosticReport out = analyze(tr);
    if (out.errorCount() > 0)
        return out;
    compiler::verifyProgram(program, out);
    return out;
}

DiagnosticReport
Analyzer::analyzeDataflow(const Trace &tr) const
{
    DiagnosticReport out = analyze(tr);
    // The abstract domains index state by the declared level budget and
    // trust op.limbs; a trace with base errors would feed them garbage.
    if (out.errorCount() > 0)
        return out;
    for (const auto &pass : dfPasses_)
        pass->run(tr, out);
    return out;
}

DiagnosticReport
Analyzer::analyzeDataflow(const Trace &tr,
                          const compiler::Program &program) const
{
    DiagnosticReport out = analyzeDataflow(tr);
    if (out.errorCount() > 0)
        return out;
    compiler::verifyProgram(program, out);
    runProgramDataflow(program, out);
    return out;
}

} // namespace analysis
} // namespace ufc
