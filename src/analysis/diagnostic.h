/**
 * @file
 * Structured diagnostics for the static trace/instruction verifier.
 *
 * Every rule violation found by an analysis pass (src/analysis/analyzer.h)
 * or by the instruction-stream verifier (src/analysis/verifying_sink.h)
 * lands in a Diagnostic: a stable rule id, a severity, the op index and
 * innermost phase it points at, a human-readable message and a fix hint.
 * Reports collect diagnostics in emission order and render them as text
 * (one line per finding, compiler-style) or JSON (for the `ufc_lint`
 * CLI's machine-readable mode).
 */

#ifndef UFC_ANALYSIS_DIAGNOSTIC_H
#define UFC_ANALYSIS_DIAGNOSTIC_H

#include <cstddef>
#include <string>
#include <vector>

namespace ufc {
namespace analysis {

/** How bad a finding is.  Errors mean the trace/stream is semantically
 *  illegal and would mis-simulate; warnings flag implausible but
 *  executable inputs.  `ufc_lint --Werror` promotes warnings. */
enum class Severity
{
    Warning,
    Error,
};

/** Stable lower-case tag for reports: "warning" / "error". */
const char *severityName(Severity severity);

/** One finding, tied to a rule id from the registry in analyzer.h. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /// Stable rule identifier (e.g. "limb-range"); see kRules.
    std::string rule;
    /// What is wrong, in one sentence.
    std::string message;
    /// How to fix it; may be empty.
    std::string hint;
    /// High-level op index the finding points at, or kTraceLevel for a
    /// finding about the trace header / whole stream.  For
    /// instruction-level findings this is the lowered-instruction index.
    std::ptrdiff_t opIndex = kTraceLevel;
    /// Innermost open workload phase at opIndex; empty when none.
    std::string phase;

    static constexpr std::ptrdiff_t kTraceLevel = -1;

    /** "error[limb-range] op#12 (bootstrap): ... (hint: ...)" */
    std::string format() const;
};

/** Ordered collection of findings from one analysis run. */
class DiagnosticReport
{
  public:
    void add(Diagnostic d);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    std::size_t size() const { return diags_.size(); }
    bool empty() const { return diags_.empty(); }

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** No findings at or above the given floor (Warning = any finding
     *  fails, Error = warnings tolerated). */
    bool clean(Severity floor = Severity::Error) const;

    /** First Error-severity finding, or nullptr when clean. */
    const Diagnostic *firstError() const;

    /** Merge another report's findings after this one's. */
    void merge(const DiagnosticReport &other);

    /** One line per finding (Diagnostic::format), newline-terminated. */
    std::string toText() const;

    /** JSON array of finding objects with a summary header:
     *  {"schema":"ufc.lint/v1","errors":N,"warnings":M,
     *   "diagnostics":[...]}.  `subject` names what was linted. */
    std::string toJson(const std::string &subject) const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_DIAGNOSTIC_H
