/**
 * @file
 * Instruction-stream verifier: an isa::InstSink decorator that checks
 * per-instruction operand invariants on the compiler's output before (or
 * instead of) forwarding to a real consumer.
 *
 * The compilers in compiler/lowering.cpp encode the FHE algorithms'
 * primitive counts; a bug there (or a new lowering path) used to surface
 * only as a silently wrong cycle count.  Wrapping any InstSink — the
 * cycle engine, a null sink — in a VerifyingSink turns a malformed
 * stream into structured Diagnostics:
 *
 *   inst-ntt-work            (i)NTT work != batch * (n/2) * log2 n words
 *   inst-no-operands         instruction moves no words, touches no buffer
 *   inst-batch               batch < 1
 *   inst-degree              logDegree above the supported ring range
 *   buf-transient-streaming  buffer marked both transient and streaming
 *   buf-use-before-def       transient buffer read before any write
 *   buf-unconsumed-transient transient buffer written but never read
 *   inst-phase-balance       endPhase without an open phase / open at end
 *
 * Wiring: compiler::LoweringOptions::lint points a lowering at a
 * DiagnosticReport, and the Lowering constructor interposes this
 * decorator around whatever sink it was given, so every compiler in the
 * repo gets verification without per-call-site changes.
 */

#ifndef UFC_ANALYSIS_VERIFYING_SINK_H
#define UFC_ANALYSIS_VERIFYING_SINK_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.h"
#include "isa/inst.h"

namespace ufc {
namespace analysis {

/** InstSink decorator collecting per-instruction rule violations. */
class VerifyingSink : public isa::InstSink
{
  public:
    /**
     * `inner` may be null (verify-only, instructions are discarded).
     * `report` is caller-owned and must outlive the sink.
     */
    VerifyingSink(isa::InstSink *inner, DiagnosticReport *report);

    void issue(const isa::HwInst &inst) override;
    void beginPhase(const char *name) override;
    void endPhase() override;

    /**
     * Repeat offers pass through to the inner sink (refused when there
     * is none).  Verifying the folded body once is sound: the contract
     * requires byte-identical iterations, so per-instruction rules and
     * the transient-dataflow checks see every distinct instruction.
     */
    bool
    beginRepeat(u64 trips) override
    {
        return inner_ != nullptr && inner_->beginRepeat(trips);
    }
    void
    endRepeat() override
    {
        if (inner_)
            inner_->endRepeat();
    }

    /**
     * End-of-stream checks (unclosed phases, transient buffers produced
     * but never consumed).  Call after the lowering completes; idempotent
     * per stream.
     */
    void finish();

    /** Instructions seen so far (diagnostic opIndex values refer to
     *  this counter). */
    std::size_t instCount() const { return instIndex_; }

  private:
    void diag(const char *rule, std::ptrdiff_t index, std::string message,
              std::string hint);

    isa::InstSink *inner_;
    DiagnosticReport *report_;
    std::size_t instIndex_ = 0;
    std::vector<std::string> phaseStack_;
    bool finished_ = false;

    /** Transient-buffer dataflow: first write / first read positions. */
    struct TransientUse
    {
        std::ptrdiff_t firstWrite = -1;
        std::ptrdiff_t firstRead = -1;
    };
    std::unordered_map<u64, TransientUse> transients_;
};

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_VERIFYING_SINK_H
