/**
 * @file
 * Diagnostic formatting (text + JSON) for the static verifier.
 */

#include "analysis/diagnostic.h"

#include <cstdio>
#include <sstream>

namespace ufc {
namespace analysis {

namespace {

/** Minimal JSON string escaping (same subset report.cpp emits). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << rule << "]";
    if (opIndex != kTraceLevel)
        os << " op#" << opIndex;
    if (!phase.empty())
        os << " (" << phase << ")";
    os << ": " << message;
    if (!hint.empty())
        os << " (hint: " << hint << ")";
    return os.str();
}

void
DiagnosticReport::add(Diagnostic d)
{
    diags_.push_back(std::move(d));
}

std::size_t
DiagnosticReport::errorCount() const
{
    std::size_t n = 0;
    for (const auto &d : diags_)
        if (d.severity == Severity::Error)
            ++n;
    return n;
}

std::size_t
DiagnosticReport::warningCount() const
{
    return diags_.size() - errorCount();
}

bool
DiagnosticReport::clean(Severity floor) const
{
    if (floor == Severity::Warning)
        return diags_.empty();
    return errorCount() == 0;
}

const Diagnostic *
DiagnosticReport::firstError() const
{
    for (const auto &d : diags_)
        if (d.severity == Severity::Error)
            return &d;
    return nullptr;
}

void
DiagnosticReport::merge(const DiagnosticReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

std::string
DiagnosticReport::toText() const
{
    std::string out;
    for (const auto &d : diags_) {
        out += d.format();
        out += '\n';
    }
    return out;
}

std::string
DiagnosticReport::toJson(const std::string &subject) const
{
    std::ostringstream os;
    os << "{\"schema\":\"ufc.lint/v1\""
       << ",\"subject\":" << jsonStr(subject)
       << ",\"errors\":" << errorCount()
       << ",\"warnings\":" << warningCount() << ",\"diagnostics\":[";
    bool first = true;
    for (const auto &d : diags_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"severity\":\"" << severityName(d.severity) << "\""
           << ",\"rule\":" << jsonStr(d.rule)
           << ",\"op_index\":" << d.opIndex
           << ",\"phase\":" << jsonStr(d.phase)
           << ",\"message\":" << jsonStr(d.message)
           << ",\"hint\":" << jsonStr(d.hint) << "}";
    }
    os << (first ? "]}" : "\n]}");
    return os.str();
}

} // namespace analysis
} // namespace ufc
