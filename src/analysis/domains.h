/**
 * @file
 * Abstract-interpretation domains for ufc-lint's dataflow layer
 * (`ufc_lint --dataflow`, RunOptions::dataflowLint).
 *
 * Two families sit on top of the dataflow framework (dataflow.h):
 *
 *   Trace-level (makeDataflowPasses, run by Analyzer::analyzeDataflow):
 *     level-flow            df-chain-underflow — an op executes at a
 *                           modulus-chain level no rescale / mod-raise /
 *                           repack path can reach from fresh ciphertexts
 *     rescale-discipline    df-double-rescale, df-missed-rescale,
 *                           df-scale-mismatch — count-weighted
 *                           production/consumption tracking of
 *                           unrescaled products per level
 *
 *   Program-level (runProgramDataflow, over compiled bytecode):
 *     df-fuse-memdep / df-loop-memdep — independent re-proof of the
 *         fusion and loop-folding legality PR-6 relies on, derived from
 *         the BcBuf operand records alone (not the BcKind tag the
 *         fusion pass itself wrote)
 *     df-slot-use-before-def / df-slot-dead-store / df-spad-overcommit
 *         — def-use/liveness over scratchpad slots via
 *         compiler::slotAccesses()
 *
 * Soundness contract: Error-severity rules here hold for *every* legal
 * interleaving of the trace's independent ciphertext chains (the IR has
 * no SSA names — see analyzer.cpp's file comment).  Warning-severity
 * rules additionally assume linear consumption (each produced value is
 * consumed at most once per use), which batched real workloads satisfy;
 * they are heuristics and say so in their hints.
 *
 * The two value-flow slot rules (use-before-def, dead-store) only
 * consider accesses whose buffer id is value-accurate — the lowering's
 * ciphertext pool draws ids pseudorandomly to model reuse locality
 * (compiler::syntheticCiphertextId), so def-use order on those slots is
 * noise by construction.  df-spad-overcommit and the cost/occupancy
 * analyses (cost_bounds.h) use every access: the traffic is real even
 * where the value identity is synthetic.
 */

#ifndef UFC_ANALYSIS_DOMAINS_H
#define UFC_ANALYSIS_DOMAINS_H

#include <memory>
#include <vector>

#include "analysis/analyzer.h"

namespace ufc {
namespace compiler {
struct Program; // compiler/bytecode.h
} // namespace compiler

namespace analysis {

/** The trace-level dataflow passes, in registry order.  Opt-in: they
 *  are NOT part of Analyzer::analyze()'s default pipeline (clean legacy
 *  traces may violate the linear-consumption heuristics). */
std::vector<std::unique_ptr<Pass>> makeDataflowPasses();

/**
 * Program-level dataflow rules over a compiled Program (composed
 * Programs recurse into their parts).  Appends df-fuse-memdep,
 * df-loop-memdep and the df-slot-* findings to `out`.  Diagnostics
 * carry the instruction index in opIndex and the innermost bytecode
 * phase name.
 */
void runProgramDataflow(const compiler::Program &p, DiagnosticReport &out);

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_DOMAINS_H
