/**
 * @file
 * Static cost-bound analyzer (see cost_bounds.h for the derivation).
 */

#include "analysis/cost_bounds.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "compiler/bytecode.h"

namespace ufc {
namespace analysis {

namespace {

/** Per-slot footprint/interval summary over the access stream. */
struct SlotSummary
{
    double maxBytes = 0.0;
    u64 firstInst = 0;
    u64 lastInst = 0;
    bool firstIsRead = false;
    double firstBytes = 0.0;
};

CostBounds
analyzeSingle(const compiler::Program &p)
{
    CostBounds b;

    // Trip weight per instruction (folded loop bodies execute `trips`
    // times; loops are sorted and non-overlapping).
    std::vector<double> weight(p.code.size(), 1.0);
    for (const compiler::BcLoop &lp : p.loops) {
        if (lp.bodyLen == 0 || lp.end > p.code.size() ||
            lp.bodyLen > lp.end)
            continue; // malformed: verifyProgram reports it
        for (u64 i = lp.end - lp.bodyLen; i < lp.end; ++i)
            weight[i] = static_cast<double>(lp.trips);
    }

    // Exact terms: compute+fill everywhere, streamed bytes everywhere.
    double computeTotal = 0.0;
    double streamedBytes = 0.0; // exact HBM traffic (both bounds)
    double memLower = 0.0;      // guaranteed memory cycles
    double memUpper = 0.0;      // worst-case memory cycles
    for (u64 i = 0; i < p.code.size(); ++i) {
        const compiler::BcInst &inst = p.code[i];
        const double w = weight[i];
        computeTotal += (inst.computeCycles + inst.fillCycles) * w;
        if (inst.kind == compiler::BcKind::Stream) {
            streamedBytes += inst.staticFetchBytes * w;
            memLower += inst.staticMemCycles * w;
            memUpper += inst.staticMemCycles * w;
        }
    }

    // Scratchpad terms from the def-use export.  Mem instructions never
    // sit in folded loops (verifyProgram), so each access executes once.
    const std::vector<compiler::SlotAccess> acc =
        compiler::slotAccesses(p);
    std::unordered_map<u32, SlotSummary> slots;
    double memStreamedBytes = 0.0; // streamed operands of Mem insts
    for (u64 i = 0; i < p.code.size(); ++i) {
        const compiler::BcInst &inst = p.code[i];
        if (inst.kind != compiler::BcKind::Mem)
            continue;
        const u64 end = static_cast<u64>(inst.bufBegin) + inst.bufCount;
        for (u64 k = inst.bufBegin; k < end && k < p.bufs.size(); ++k)
            if (p.bufs[k].streamed)
                memStreamedBytes += p.bufs[k].bytes;
    }
    double allReadBytes = 0.0; // every read misses (upper)
    for (const compiler::SlotAccess &a : acc) {
        const auto [it, inserted] = slots.try_emplace(a.slot);
        SlotSummary &s = it->second;
        if (inserted) {
            s.firstInst = a.inst;
            s.firstIsRead = !a.write;
            s.firstBytes = a.bytes;
        }
        s.lastInst = a.inst;
        s.maxBytes = std::max(s.maxBytes, a.bytes);
        if (!a.write)
            allReadBytes += a.bytes;
    }

    double footprint = 0.0;
    double firstTouchReadBytes = 0.0; // guaranteed misses (lower)
    double wbUpper = 0.0;
    for (const compiler::SlotAccess &a : acc) {
        // wbUpper: each writeback event needs a distinct preceding
        // write access, and evicts at most the slot's max footprint.
        if (a.write)
            wbUpper += slots[a.slot].maxBytes;
    }
    for (const auto &[slot, s] : slots) {
        footprint += s.maxBytes;
        if (s.firstIsRead)
            firstTouchReadBytes += s.firstBytes;
    }
    b.fits = footprint <= p.scratchpadBytes;

    double missLower;
    double missUpper;
    if (b.fits) {
        // No eviction is ever possible: miss traffic is exactly the
        // first-touch reads, and nothing is ever written back.
        missLower = firstTouchReadBytes;
        missUpper = firstTouchReadBytes;
        wbUpper = 0.0;
    } else {
        missLower = firstTouchReadBytes;
        missUpper = allReadBytes;
    }
    const double bpc = p.hbmBytesPerCycle;
    memLower += (memStreamedBytes + missLower) / bpc;
    memUpper += (memStreamedBytes + missUpper + wbUpper) / bpc;

    b.computeCycles = computeTotal;
    b.cyclesLower = std::max(computeTotal, memLower);
    b.cyclesUpper = computeTotal + memUpper;
    b.hbmLower = streamedBytes + memStreamedBytes + missLower;
    b.hbmUpper = streamedBytes + memStreamedBytes + missUpper + wbUpper;

    // Peak occupancy: live-interval sweep (slot live first->last
    // access at max footprint).
    std::map<u64, double> delta;
    for (const auto &[slot, s] : slots) {
        delta[s.firstInst] += s.maxBytes;
        delta[s.lastInst + 1] -= s.maxBytes;
    }
    double live = 0.0;
    for (const auto &[inst, d] : delta) {
        live += d;
        b.peakLiveSlotBytes = std::max(b.peakLiveSlotBytes, live);
    }
    return b;
}

} // namespace

CostBounds
analyzeCostBounds(const compiler::Program &p)
{
    if (p.composed()) {
        // ComposedModel::combine merges part RunStats additively
        // (cycles and hbmBytes sum; PCIe traffic never enters them).
        CostBounds total;
        for (const compiler::Program &part : p.parts) {
            const CostBounds pb = analyzeCostBounds(part);
            total.cyclesLower += pb.cyclesLower;
            total.cyclesUpper += pb.cyclesUpper;
            total.hbmLower += pb.hbmLower;
            total.hbmUpper += pb.hbmUpper;
            total.computeCycles += pb.computeCycles;
            total.peakLiveSlotBytes =
                std::max(total.peakLiveSlotBytes, pb.peakLiveSlotBytes);
            total.fits = total.fits && pb.fits;
        }
        return total;
    }
    CostBounds b = analyzeSingle(p);
    b.cyclesLower *= (1.0 - kBoundsGuard);
    b.cyclesUpper *= (1.0 + kBoundsGuard);
    b.hbmLower *= (1.0 - kBoundsGuard);
    b.hbmUpper *= (1.0 + kBoundsGuard);
    return b;
}

} // namespace analysis
} // namespace ufc
