/**
 * @file
 * Static cost bounds: guaranteed lower/upper bounds on the cycles and
 * HBM bytes the bytecode engine will report for a compiled Program,
 * computed without executing it.
 *
 * Soundness contract (tests/test_dataflow.cpp checks it differentially
 * across the full paper sweep):
 *
 *     cyclesLower <= RunStats::totalCycles <= cyclesUpper
 *     hbmLower    <= RunStats::hbmBytes    <= hbmUpper
 *
 * for every prefetch window and with or without the phase cache (the
 * cache is bit-exact, so it cannot move the dynamic numbers).  The
 * derivation leans on three engine facts (sim/bc_engine.cpp):
 *
 *   1. totalCycles telescopes to the final compute clock, and each
 *      instruction advances it by wait + computeCycles + fillCycles,
 *      so  sum(compute+fill) <= totalCycles  and, because an
 *      instruction's memory phase can start no later than the previous
 *      instruction's completion,  totalCycles <= sum(compute+fill) +
 *      sum(memCycles).
 *   2. Memory phases serialize on the HBM clock, so totalCycles is
 *      also >= the total memory cycles.
 *   3. HBM traffic decomposes into exact streamed bytes plus
 *      scratchpad misses and dirty writebacks.  When every slot's
 *      maximum footprint fits the scratchpad simultaneously, the LRU
 *      provably never evicts and the miss traffic is exact (first
 *      touch only, no writebacks — the engine never flushes at the
 *      end); otherwise misses are bracketed by [first-touch reads,
 *      all reads] and writebacks by [0, one per write access at the
 *      slot's maximum size].
 *
 * Bounds assume a structurally valid Program (verifyProgram-clean):
 * folded loop bodies are all-Stream, so their replay arithmetic is
 * exact under the loop's trip weight.  A tiny relative guard band
 * (kGuard) absorbs floating-point reassociation between this
 * analyzer's accumulation order and the engine's.
 */

#ifndef UFC_ANALYSIS_COST_BOUNDS_H
#define UFC_ANALYSIS_COST_BOUNDS_H

#include "common/types.h"

namespace ufc {
namespace compiler {
struct Program; // compiler/bytecode.h
} // namespace compiler

namespace analysis {

/** Relative guard band applied to the final bounds (lower shrinks,
 *  upper grows) so FP reassociation cannot flip the invariant. */
inline constexpr double kBoundsGuard = 1e-9;

/** Static bounds for one Program (parts summed for composed ones). */
struct CostBounds
{
    double cyclesLower = 0.0;
    double cyclesUpper = 0.0;
    double hbmLower = 0.0;
    double hbmUpper = 0.0;
    /// Exact total compute+fill cycles (trip-weighted); the
    /// compute-bound floor of cyclesLower.
    double computeCycles = 0.0;
    /// Peak simultaneously-live scratchpad bytes under the live-interval
    /// model (slot live from first to last access, at its maximum
    /// footprint).  The peak-occupancy metric `ufc_lint --bounds`
    /// prints; composed Programs report the largest part.
    double peakLiveSlotBytes = 0.0;
    /// True when every slot's maximum footprint co-resides in the
    /// scratchpad, making the HBM bounds exact (hbmLower == hbmUpper up
    /// to the guard band).  Composed: true only when all parts fit.
    bool fits = true;

    /** Upper/lower cycle ratio (tightness; 0 when lower is 0). */
    double
    cyclesRatio() const
    {
        return cyclesLower > 0.0 ? cyclesUpper / cyclesLower : 0.0;
    }

    /** Upper/lower HBM ratio (tightness; 0 when lower is 0). */
    double
    hbmRatio() const
    {
        return hbmLower > 0.0 ? hbmUpper / hbmLower : 0.0;
    }
};

/** Compute static bounds for a compiled Program.  Composed Programs
 *  sum their parts (the composed model merges part stats additively;
 *  PCIe traffic feeds seconds/energy, not RunStats cycles/bytes). */
CostBounds analyzeCostBounds(const compiler::Program &p);

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_COST_BOUNDS_H
