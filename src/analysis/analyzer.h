/**
 * @file
 * Pass-based static verifier for the trace IR and lowered instruction
 * streams (ufc-lint).
 *
 * Nothing in the simulation pipeline used to check the *semantics* of a
 * trace — limb-chain consistency, scheme legality against the declared
 * parameters, phase discipline, working-set plausibility — until a
 * simulation silently produced wrong cycle counts.  The Analyzer runs an
 * ordered list of Passes over a trace::Trace and reports structured
 * Diagnostics instead of crashing or mis-simulating; analyzeLowered()
 * additionally lowers the trace through a VerifyingSink (see
 * verifying_sink.h) so per-instruction operand invariants are checked on
 * the compiler's actual output.
 *
 * Consumers:
 *   - bench/ufc_lint        CLI over .ufctrace files / builtin workloads
 *   - runner::ExperimentRunner  opt-in pre-flight (RunOptions::lintTraces)
 *   - tests/test_analysis   per-pass positive/negative suite
 */

#ifndef UFC_ANALYSIS_ANALYZER_H
#define UFC_ANALYSIS_ANALYZER_H

#include <memory>
#include <vector>

#include "analysis/diagnostic.h"
#include "trace/trace.h"

namespace ufc {
namespace compiler {
struct LoweringOptions; // compiler/lowering.h
struct Program;         // compiler/bytecode.h
} // namespace compiler

namespace analysis {

/** One rule-id registry row (drives docs, --rules, and severities). */
struct RuleInfo
{
    const char *id;
    Severity severity;
    const char *description;
};

/** Every rule the analyzer and the VerifyingSink can emit, trace-level
 *  rules first.  Stable: append, never reorder or rename. */
const std::vector<RuleInfo> &ruleRegistry();

/** Severity of a registered rule id (Error for unknown ids). */
Severity ruleSeverity(const char *id);

/**
 * One ordered verification pass over a trace.  Passes are stateless and
 * const — the Analyzer may be shared across runner threads.
 */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    virtual void run(const trace::Trace &tr,
                     DiagnosticReport &out) const = 0;
};

/** Innermost open phase name at a given op index (empty when none);
 *  shared by the passes so diagnostics carry their phase context. */
std::string phaseAt(const trace::Trace &tr, std::ptrdiff_t opIndex);

/**
 * Runs the built-in pass pipeline over a trace.  Construction registers
 * the passes in order:
 *   1. field-validity      batched-op fields (count, fanIn, live set)
 *   2. scheme-legality     ops vs. the declared parameter header
 *   3. limb-chain          CKKS limb bounds, rescale/mod-raise structure
 *   4. phase-discipline    stack nesting + monotone opIndex markers
 *   5. working-set         key-id cardinality vs. liveCiphertexts
 */
class Analyzer
{
  public:
    Analyzer();

    /** Run all trace-level passes. */
    DiagnosticReport analyze(const trace::Trace &tr) const;

    /**
     * Trace-level passes plus the instruction-level verifier: lowers the
     * trace with the given options through a VerifyingSink (discarding
     * the instructions) and appends any per-instruction findings.  Only
     * meaningful on traces whose trace-level report has no errors — a
     * header bad enough to fail scheme-legality would feed garbage
     * geometry into the lowering, so analyzeLowered() skips the lowering
     * step when trace-level errors exist.
     */
    DiagnosticReport
    analyzeLowered(const trace::Trace &tr,
                   const compiler::LoweringOptions &opts) const;

    /**
     * Bytecode-rule variant over an ALREADY-compiled Program: the
     * trace-level passes plus compiler::verifyProgram on `program`,
     * with no re-lowering — the pre-flight path for runs whose Program
     * sits in the runner's ProgramCache.  Unlike the LoweringOptions
     * overload this cannot run the instruction-level VerifyingSink
     * rules (they need a live lowering); the bytecode rules subsume
     * the fusion/loop legality checks.
     */
    DiagnosticReport
    analyzeLowered(const trace::Trace &tr,
                   const compiler::Program &program) const;

    /**
     * Trace-level passes plus the opt-in dataflow passes (level-flow,
     * rescale-discipline; see domains.h).  The dataflow passes only
     * run when the base report is error-free — a trace that fails
     * scheme legality or limb-range would feed garbage levels into the
     * abstract domains.
     */
    DiagnosticReport analyzeDataflow(const trace::Trace &tr) const;

    /**
     * Full dataflow verification of a compiled trace: analyzeDataflow
     * plus the bytecode rules (verifyProgram) plus the program-level
     * dataflow rules (df-fuse-memdep, df-loop-memdep, df-slot-*) over
     * `program`.  No re-lowering.
     */
    DiagnosticReport
    analyzeDataflow(const trace::Trace &tr,
                    const compiler::Program &program) const;

    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return passes_;
    }

    /** The opt-in dataflow passes (makeDataflowPasses()). */
    const std::vector<std::unique_ptr<Pass>> &dataflowPasses() const
    {
        return dfPasses_;
    }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    std::vector<std::unique_ptr<Pass>> dfPasses_;
};

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_ANALYZER_H
