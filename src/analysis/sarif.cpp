/**
 * @file
 * SARIF 2.1.0 emitter (see sarif.h).
 */

#include "analysis/sarif.h"

#include <sstream>

#include "analysis/analyzer.h"
#include "common/json.h"

namespace ufc {
namespace analysis {

namespace {

const char *
sarifLevel(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

} // namespace

std::string
toSarif(const std::vector<SarifSubject> &subjects)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json"
          "\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"ufc-lint\",\n"
       << "          \"informationUri\": "
          "\"https://github.com/ufc/ufc\",\n"
       << "          \"rules\": [\n";
    const auto &rules = ruleRegistry();
    for (std::size_t r = 0; r < rules.size(); ++r) {
        os << "            {\"id\": " << json::quote(rules[r].id)
           << ", \"shortDescription\": {\"text\": "
           << json::quote(rules[r].description)
           << "}, \"defaultConfiguration\": {\"level\": \""
           << sarifLevel(rules[r].severity) << "\"}}"
           << (r + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    bool firstResult = true;
    for (const SarifSubject &subject : subjects) {
        for (const Diagnostic &d : subject.report.diagnostics()) {
            if (!firstResult)
                os << ",\n";
            firstResult = false;
            std::ostringstream loc;
            loc << subject.name;
            if (d.opIndex >= 0)
                loc << ":op#" << d.opIndex;
            if (!d.phase.empty())
                loc << " (" << d.phase << ")";
            os << "        {\"ruleId\": " << json::quote(d.rule)
               << ", \"level\": \"" << sarifLevel(d.severity)
               << "\", \"message\": {\"text\": " << json::quote(d.message)
               << "}, \"locations\": [{\"logicalLocations\": "
                  "[{\"fullyQualifiedName\": "
               << json::quote(loc.str()) << "}]}]}";
        }
    }
    if (!firstResult)
        os << "\n";
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace analysis
} // namespace ufc
