/**
 * @file
 * SARIF 2.1.0 export for ufc-lint findings.
 *
 * SARIF (Static Analysis Results Interchange Format) is what code
 * hosting and CI systems ingest for inline annotation; `ufc_lint
 * --sarif PATH` writes one log aggregating every linted subject, and
 * the CI dataflow job uploads it as a workflow artifact.  The emitter
 * stays minimal-but-valid: one run, the full ruleRegistry() as the
 * tool's rule table (so ruleIndex resolves), and one result per
 * Diagnostic with a logical location naming the subject and op/
 * instruction index (the trace IR has no physical files to point at).
 */

#ifndef UFC_ANALYSIS_SARIF_H
#define UFC_ANALYSIS_SARIF_H

#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace ufc {
namespace analysis {

/** One linted subject (a trace file or builtin workload) and its
 *  findings. */
struct SarifSubject
{
    std::string name;
    DiagnosticReport report;
};

/** Render the subjects as one SARIF 2.1.0 log (a complete JSON
 *  document, newline-terminated). */
std::string toSarif(const std::vector<SarifSubject> &subjects);

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_SARIF_H
