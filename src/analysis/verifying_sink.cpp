/**
 * @file
 * Instruction-stream verifier implementation.
 */

#include "analysis/verifying_sink.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/analyzer.h"

namespace ufc {
namespace analysis {

namespace {

/// Largest supported log2 ring dimension; matches the trace parser's
/// kMaxRingDim guard (2^26) in trace/serialize.cpp.
constexpr u32 kMaxLogDegree = 26;

} // namespace

VerifyingSink::VerifyingSink(isa::InstSink *inner,
                             DiagnosticReport *report)
    : inner_(inner), report_(report)
{}

void
VerifyingSink::diag(const char *rule, std::ptrdiff_t index,
                    std::string message, std::string hint)
{
    Diagnostic d;
    d.severity = ruleSeverity(rule);
    d.rule = rule;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.opIndex = index;
    if (!phaseStack_.empty())
        d.phase = phaseStack_.back();
    report_->add(std::move(d));
}

void
VerifyingSink::issue(const isa::HwInst &inst)
{
    const auto index = static_cast<std::ptrdiff_t>(instIndex_++);
    const char *mnemonic = isa::opName(inst.op);

    if (inst.batch < 1) {
        std::ostringstream os;
        os << mnemonic << " has batch " << inst.batch;
        diag("inst-batch", index, os.str(),
             "every instruction processes at least one polynomial");
    }
    if (inst.logDegree > kMaxLogDegree) {
        std::ostringstream os;
        os << mnemonic << " has logDegree " << inst.logDegree
           << " (max " << kMaxLogDegree << ")";
        diag("inst-degree", index, os.str(),
             "check the trace's ring-dimension header");
    }
    if (inst.words == 0 && inst.buffers.empty()) {
        std::ostringstream os;
        os << mnemonic << " moves no operand words and touches no buffer";
        diag("inst-no-operands", index, os.str(),
             "dead instruction: drop it or attach its operands");
    }

    // (i)NTT butterfly accounting: `work` counts butterflies over the
    // operand words, and a full transform is exactly (n/2)*log2(n)
    // butterflies per polynomial — i.e. words * logDegree / 2 in
    // word-units, for every lowering in the repo.  A mismatch means a
    // compiler miscounted the dominant primitive of the whole model.
    if (inst.op == isa::HwOp::Ntt || inst.op == isa::HwOp::Intt ||
        inst.op == isa::HwOp::NttAuto) {
        const u64 expect = inst.words * inst.logDegree / 2;
        if (inst.work != expect) {
            std::ostringstream os;
            os << mnemonic << " declares " << inst.work
               << " butterfly work units, expected words * logDegree / 2"
               << " = " << expect << " (words=" << inst.words
               << ", logDegree=" << inst.logDegree << ")";
            diag("inst-ntt-work", index, os.str(),
                 "a transform is batch * (n/2) * log2 n butterflies");
        }
    }

    for (const auto &buf : inst.buffers) {
        if (buf.transient && buf.streaming) {
            std::ostringstream os;
            os << mnemonic << " buffer " << buf.id
               << " is both transient and streaming";
            diag("buf-transient-streaming", index, os.str(),
                 "transient = lives on chip, streaming = never cached; "
                 "pick one");
        }
        if (buf.transient) {
            auto &use = transients_[buf.id];
            if (buf.write) {
                if (use.firstWrite < 0)
                    use.firstWrite = index;
            } else {
                if (use.firstRead < 0)
                    use.firstRead = index;
                if (use.firstWrite < 0) {
                    std::ostringstream os;
                    os << mnemonic << " reads transient buffer "
                       << buf.id << " before any write";
                    diag("buf-use-before-def", index, os.str(),
                         "transient data never touches DRAM, so a "
                         "producer instruction must precede this read");
                }
            }
        }
    }

    if (inner_)
        inner_->issue(inst);
}

void
VerifyingSink::beginPhase(const char *name)
{
    phaseStack_.emplace_back(name ? name : "");
    if (inner_)
        inner_->beginPhase(name);
}

void
VerifyingSink::endPhase()
{
    if (phaseStack_.empty()) {
        diag("inst-phase-balance",
             static_cast<std::ptrdiff_t>(instIndex_),
             "endPhase without an open phase in the instruction stream",
             "compilers must emit begin/end markers in strict pairs");
    } else {
        phaseStack_.pop_back();
    }
    if (inner_)
        inner_->endPhase();
}

void
VerifyingSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (const auto &name : phaseStack_) {
        diag("inst-phase-balance",
             static_cast<std::ptrdiff_t>(instIndex_),
             "phase '" + name + "' still open at end of stream",
             "close every phase the compiler opens");
    }
    // Sort unconsumed transients by first-write position so the report
    // is deterministic (the tracking map is unordered).
    std::vector<std::pair<std::ptrdiff_t, u64>> unconsumed;
    for (const auto &[id, use] : transients_)
        if (use.firstWrite >= 0 && use.firstRead < 0)
            unconsumed.emplace_back(use.firstWrite, id);
    std::sort(unconsumed.begin(), unconsumed.end());
    for (const auto &[firstWrite, id] : unconsumed) {
        std::ostringstream os;
        os << "transient buffer " << id << " written at inst#"
           << firstWrite << " but never read";
        diag("buf-unconsumed-transient", firstWrite, os.str(),
             "transient intermediates must be consumed on chip");
    }
}

} // namespace analysis
} // namespace ufc
