/**
 * @file
 * Dataflow framework for ufc-lint: CFG recovery and a worklist fixpoint
 * engine shared by the abstract-interpretation passes (domains.h) and
 * the static cost analyzer (cost_bounds.h).
 *
 * Two IRs feed the framework:
 *   - the trace IR (trace::Trace): a straight-line op stream whose only
 *     structure is the phase-marker nesting, so its CFG is a loop-free
 *     chain of blocks split at phase boundaries;
 *   - compiled bytecode (compiler::Program): straight-line code plus the
 *     folded BcLoop table, so its CFG carries one back edge per loop
 *     (the body block repeats `trips` times before falling through).
 *
 * The solvers are classic monotone-framework worklist iterations: a
 * caller supplies the entry state, a meet/join that accumulates a
 * predecessor's out-state into a block's in-state (returning whether
 * anything changed), and a transfer function mapping a block's in-state
 * to its out-state.  For the loop-free trace CFG one pass converges;
 * for Program CFGs the self edges of loop bodies iterate to a fixpoint.
 * Passes then make a final reporting sweep over the converged block-in
 * states so diagnostics are emitted exactly once.
 */

#ifndef UFC_ANALYSIS_DATAFLOW_H
#define UFC_ANALYSIS_DATAFLOW_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace ufc {
namespace trace {
struct Trace; // trace/trace.h
} // namespace trace
namespace compiler {
struct Program; // compiler/bytecode.h
} // namespace compiler

namespace analysis {

/** One basic block: the half-open index range [begin, end) over trace
 *  ops or Program instructions. */
struct CfgBlock
{
    u64 begin = 0;
    u64 end = 0;
    /// Innermost open phase at `begin`; indexes Cfg::phaseNames, -1 when
    /// outside any phase region.
    i32 phase = -1;
    /// Number of back-to-back executions of this block (folded BcLoop
    /// body); 1 for straight-line blocks.  Blocks with trips > 1 carry a
    /// self edge in succs/preds.
    u64 trips = 1;
    std::vector<u32> succs;
    std::vector<u32> preds;

    bool isLoop() const { return trips > 1; }
};

/** A recovered control-flow graph.  Blocks are stored in program order,
 *  which is also a reverse postorder for these reducible graphs (the
 *  only back edges are loop self edges). */
struct Cfg
{
    std::vector<CfgBlock> blocks;
    /// Phase-name table the blocks' `phase` indexes point into (owned).
    std::vector<std::string> phaseNames;

    u64
    totalUnits() const
    {
        u64 n = 0;
        for (const CfgBlock &b : blocks)
            n += (b.end - b.begin) * b.trips;
        return n;
    }
};

/** CFG over a trace's op stream: loop-free blocks split at every phase
 *  begin/end marker, chained by fallthrough edges. */
Cfg cfgFromTrace(const trace::Trace &tr);

/** CFG over a compiled Program's instruction stream: blocks split at
 *  phase events and at folded-loop boundaries; each BcLoop body becomes
 *  one block with a self back edge and `trips` recorded.  Composed
 *  Programs (parts) are rejected with ConfigError — recover a CFG per
 *  part instead. */
Cfg cfgFromProgram(const compiler::Program &p);

/**
 * Forward worklist fixpoint.  `meet(into, from)` accumulates `from`
 * into `into` and returns true when `into` changed; `transfer(block,
 * in)` returns the block's out-state.  Returns the converged *in*-state
 * of every block; block 0 starts from `entry`, every other block from
 * `bottom` (the meet identity — meet(x, bottom-derived) must only grow
 * x toward the fixpoint).  Every block is visited at least once.
 *
 * Termination is the caller's contract (finite-height domain, monotone
 * transfer); a generous visit cap turns a non-monotone domain bug into
 * a typed SimError instead of a hang.
 */
template <class State, class Meet, class Transfer>
std::vector<State>
solveForward(const Cfg &cfg, const State &entry, const State &bottom,
             Meet meet, Transfer transfer)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<State> in(n, bottom);
    if (n == 0)
        return in;
    in[0] = entry;
    std::vector<char> queued(n, 1);
    std::vector<u32> worklist;
    // Seed every block, program order on top of the LIFO stack so the
    // first sweep follows the fallthrough chain.
    for (std::size_t b = n; b-- > 0;)
        worklist.push_back(static_cast<u32>(b));
    const u64 cap = 64 * static_cast<u64>(n) + 64;
    u64 visits = 0;
    while (!worklist.empty()) {
        UFC_EXPECT(++visits <= cap, SimError,
                   "dataflow fixpoint did not converge after "
                       << cap << " block visits (non-monotone domain?)");
        const u32 b = worklist.back();
        worklist.pop_back();
        queued[b] = 0;
        const State out = transfer(b, in[b]);
        for (const u32 s : cfg.blocks[b].succs) {
            if (meet(in[s], out) && !queued[s]) {
                queued[s] = 1;
                worklist.push_back(s);
            }
        }
    }
    return in;
}

/**
 * Backward worklist fixpoint: the mirror of solveForward().  Returns
 * the converged *out*-state of every block (the state holding just
 * after the block's last unit); the last block starts from `exit`,
 * every other block from `bottom`.  Every block is visited at least
 * once.
 */
template <class State, class Meet, class Transfer>
std::vector<State>
solveBackward(const Cfg &cfg, const State &exit, const State &bottom,
              Meet meet, Transfer transfer)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<State> out(n, bottom);
    if (n == 0)
        return out;
    out[n - 1] = exit;
    std::vector<char> queued(n, 1);
    std::vector<u32> worklist;
    // Seed every block, reverse program order on top so the first sweep
    // walks the chain backwards.
    for (std::size_t b = 0; b < n; ++b)
        worklist.push_back(static_cast<u32>(b));
    const u64 cap = 64 * static_cast<u64>(n) + 64;
    u64 visits = 0;
    while (!worklist.empty()) {
        UFC_EXPECT(++visits <= cap, SimError,
                   "dataflow fixpoint did not converge after "
                       << cap << " block visits (non-monotone domain?)");
        const u32 b = worklist.back();
        worklist.pop_back();
        queued[b] = 0;
        const State newIn = transfer(b, out[b]);
        for (const u32 p : cfg.blocks[b].preds) {
            if (meet(out[p], newIn) && !queued[p]) {
                queued[p] = 1;
                worklist.push_back(p);
            }
        }
    }
    return out;
}

} // namespace analysis
} // namespace ufc

#endif // UFC_ANALYSIS_DATAFLOW_H
