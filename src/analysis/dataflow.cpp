/**
 * @file
 * CFG recovery from trace IR and compiled bytecode (see dataflow.h).
 */

#include "analysis/dataflow.h"

#include <algorithm>
#include <unordered_map>

#include "compiler/bytecode.h"
#include "trace/trace.h"

namespace ufc {
namespace analysis {

namespace {

/** Dedup-or-insert `name` into `names`, returning its index. */
i32
internName(std::vector<std::string> &names,
           std::unordered_map<std::string, i32> &index,
           const std::string &name)
{
    const auto it = index.find(name);
    if (it != index.end())
        return it->second;
    const i32 id = static_cast<i32>(names.size());
    names.push_back(name);
    index.emplace(name, id);
    return id;
}

/** Chain blocks [0..n) with fallthrough edges. */
void
chainFallthrough(Cfg &cfg)
{
    for (u32 i = 0; i + 1 < cfg.blocks.size(); ++i) {
        cfg.blocks[i].succs.push_back(i + 1);
        cfg.blocks[i + 1].preds.push_back(i);
    }
}

/** Split [0, n) at the sorted unique in-range cut points, producing
 *  blocks in program order. */
std::vector<CfgBlock>
splitAt(u64 n, std::vector<u64> cuts)
{
    cuts.push_back(0);
    cuts.push_back(n);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    std::vector<CfgBlock> blocks;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        if (cuts[i] >= n)
            break;
        CfgBlock b;
        b.begin = cuts[i];
        b.end = std::min(cuts[i + 1], n);
        if (b.end > b.begin)
            blocks.push_back(b);
    }
    return blocks;
}

} // namespace

Cfg
cfgFromTrace(const trace::Trace &tr)
{
    Cfg cfg;
    const u64 n = tr.ops.size();
    if (n == 0)
        return cfg;

    const std::vector<trace::PhaseRegion> regions = trace::phaseRegions(tr);
    std::vector<u64> cuts;
    cuts.reserve(regions.size() * 2);
    for (const trace::PhaseRegion &r : regions) {
        cuts.push_back(r.begin);
        cuts.push_back(r.end);
    }
    cfg.blocks = splitAt(n, std::move(cuts));
    chainFallthrough(cfg);

    std::unordered_map<std::string, i32> nameIdx;
    for (CfgBlock &b : cfg.blocks) {
        // Innermost (deepest) region containing the block; regions never
        // straddle a block since every region boundary is a cut point.
        int bestDepth = -1;
        for (const trace::PhaseRegion &r : regions) {
            if (r.begin <= b.begin && b.end <= r.end &&
                r.depth > bestDepth) {
                bestDepth = r.depth;
                b.phase = internName(cfg.phaseNames, nameIdx, r.name);
            }
        }
    }
    return cfg;
}

Cfg
cfgFromProgram(const compiler::Program &p)
{
    UFC_EXPECT(!p.composed(), ConfigError,
               "cfgFromProgram: composed Program '"
                   << p.workload
                   << "' has no single instruction stream; recover a CFG "
                      "per part");
    Cfg cfg;
    cfg.phaseNames = p.phaseNames;
    const u64 n = p.code.size();
    if (n == 0)
        return cfg;

    std::vector<u64> cuts;
    cuts.reserve(p.phaseEvents.size() + p.loops.size() * 2);
    for (const compiler::PhaseEvent &e : p.phaseEvents)
        cuts.push_back(e.inst);
    for (const compiler::BcLoop &lp : p.loops) {
        cuts.push_back(lp.end - lp.bodyLen);
        cuts.push_back(lp.end);
    }
    cfg.blocks = splitAt(n, std::move(cuts));
    chainFallthrough(cfg);

    // Innermost open phase per block: replay the event stream (sorted by
    // inst, like the compiler emits it) with a stack.
    std::vector<i32> stack;
    std::size_t ev = 0;
    for (CfgBlock &b : cfg.blocks) {
        while (ev < p.phaseEvents.size() &&
               p.phaseEvents[ev].inst <= b.begin) {
            const i32 name = p.phaseEvents[ev].name;
            if (name == compiler::PhaseEvent::kEnd) {
                if (!stack.empty())
                    stack.pop_back();
            } else {
                stack.push_back(name);
            }
            ++ev;
        }
        b.phase = stack.empty() ? -1 : stack.back();
    }

    // Mark folded-loop bodies.  Valid Programs (bc-loop-invariant) have
    // each body exactly one block; a malformed body split by a stray
    // phase event degrades to per-fragment self edges, which the bounds
    // analyzer never relies on (it walks Program::loops directly).
    for (const compiler::BcLoop &lp : p.loops) {
        const u64 bodyBegin = lp.end - lp.bodyLen;
        for (u32 i = 0; i < cfg.blocks.size(); ++i) {
            CfgBlock &b = cfg.blocks[i];
            if (b.begin >= bodyBegin && b.end <= lp.end) {
                b.trips = lp.trips;
                b.succs.push_back(i);
                b.preds.push_back(i);
            }
        }
    }
    return cfg;
}

} // namespace analysis
} // namespace ufc
