/**
 * @file
 * Backoff schedule implementation.  The jitter draw mirrors the
 * FaultInjector's decision hashing (FNV-1a over the key, splitmix64
 * finalization) so the schedule is a pure, platform-independent function
 * of (seed, key, attempt).
 */

#include "common/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace ufc {

namespace {

u64
fnv1a(const std::string &s)
{
    u64 h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

u64
splitmix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

double
backoffDelayMs(const BackoffPolicy &policy, const std::string &key,
               int attempt)
{
    if (policy.baseMs <= 0.0 || attempt < 1)
        return 0.0;

    // Capped exponential: base * multiplier^(attempt-1), computed
    // iteratively with an early cap so large attempt counts cannot
    // overflow to inf.
    double delay = policy.baseMs;
    const double mult = policy.multiplier > 1.0 ? policy.multiplier : 1.0;
    for (int i = 1; i < attempt && delay < policy.maxMs; ++i)
        delay *= mult;
    delay = std::min(delay, policy.maxMs > 0.0 ? policy.maxMs : delay);

    const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
    if (jitter == 0.0)
        return delay;

    // Deterministic uniform draw in [0, 1): hash (seed, key, attempt)
    // and take the top 53 bits.
    const u64 h = splitmix64(policy.seed ^ splitmix64(fnv1a(key)) ^
                             splitmix64(static_cast<u64>(attempt)));
    const double u =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    // Land in [delay * (1 - jitter), delay].
    return delay * ((1.0 - jitter) + jitter * u);
}

void
backoffSleep(const BackoffPolicy &policy, const std::string &key,
             int attempt)
{
    const double ms = backoffDelayMs(policy, key, attempt);
    if (ms > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(ms));
}

} // namespace ufc
