/**
 * @file
 * Fundamental integer typedefs used throughout the UFC codebase.
 */

#ifndef UFC_COMMON_TYPES_H
#define UFC_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace ufc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using i128 = __int128;

} // namespace ufc

#endif // UFC_COMMON_TYPES_H
