/**
 * @file
 * Shared fork-join thread pool.
 *
 * One ThreadPool implementation backs both consumers of host-side
 * parallelism in this repo:
 *   - the batch experiment runner (src/runner), which builds a pool per
 *     batch with an explicit thread count, and
 *   - the RNS kernel layer (src/poly, src/math), which uses the
 *     process-wide kernel pool via parallelFor() to fan polynomial limb
 *     operations out across cores.
 *
 * Work distribution is an atomic cursor over the index space [0, count):
 * each worker claims the next unstarted index, so the set of indices
 * executed is exactly [0, count) regardless of scheduling.  Kernels that
 * write only to per-index disjoint data are therefore bit-deterministic:
 * any thread count produces identical output (the property the
 * differential determinism tests in tests/test_kernels_differential.cpp
 * lock down).
 *
 * Nested parallelism is flattened: a parallelFor() issued from inside a
 * pool worker, or from a thread already draining a batch on the same
 * pool, runs inline.  This keeps limb-parallel polynomial ops safe to
 * call from runner jobs without deadlock or thread explosion, and makes
 * same-pool re-entry (which would clobber the in-flight batch) safe.
 */

#ifndef UFC_COMMON_PARALLEL_H
#define UFC_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ufc {

/** Fork-join pool over persistent worker threads. */
class ThreadPool
{
  public:
    /**
     * Spawn `threads` - 1 workers (the calling thread participates in
     * every parallelFor, so `threads` is the total concurrency).
     * threads <= 1 creates no workers and parallelFor runs inline.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run fn(i) for every i in [0, count); blocks until all complete.
     * Runs inline (serially, in index order) when the pool has one
     * thread, count <= 1, or the caller is itself a pool worker.
     * Exceptions thrown by fn terminate (kernels report errors via
     * UFC_CHECK, which aborts).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /** True when the calling thread is a worker of any ThreadPool. */
    static bool insideWorker();

    /**
     * Scope guard claiming pool-worker status for the calling thread:
     * while alive, any parallelFor() issued from this thread runs
     * inline, exactly as if the thread were a pool worker.
     *
     * Long-lived service workers (the ufc_serve daemon's job executors)
     * use this so nested kernel-level fan-out cannot race on the shared
     * kernel pool: concurrent parallelFor() calls from *distinct
     * external* threads would clobber each other's in-flight batch
     * state, but worker-status threads take the inline path, making the
     * worker count the true process concurrency — the same policy the
     * experiment runner's pool enforces for its own workers.
     */
    class WorkerScope
    {
      public:
        WorkerScope();
        ~WorkerScope();
        WorkerScope(const WorkerScope &) = delete;
        WorkerScope &operator=(const WorkerScope &) = delete;

      private:
        bool prev_;
    };

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    // Current batch; guarded by mu_ except for the atomic cursor.
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t count_ = 0;
    std::size_t cursor_ = 0;    ///< next unclaimed index (under mu_)
    std::size_t inFlight_ = 0;  ///< workers still draining the batch
    std::uint64_t epoch_ = 0;   ///< batch generation counter
    bool stop_ = false;
};

/**
 * Threads the process-wide kernel pool runs with.  Defaults to the
 * UFC_KERNEL_THREADS environment variable when set, otherwise
 * std::thread::hardware_concurrency().
 */
int kernelThreads();

/**
 * Resize the kernel pool.  n <= 0 restores the default.  Intended for
 * program setup and tests; must not race with concurrent parallelFor
 * callers.
 */
void setKernelThreads(int n);

/**
 * Run fn(i) for i in [0, count) on the process-wide kernel pool.
 * Deterministic for kernels with per-index disjoint writes (see file
 * comment).  Runs inline when the pool is serial or when called from
 * inside any pool worker.
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &fn);

} // namespace ufc

#endif // UFC_COMMON_PARALLEL_H
