/**
 * @file
 * Deterministic fault-injection implementation.
 */

#include "common/fault.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace ufc {

namespace {

/** FNV-1a over a string; stable across platforms (unlike std::hash). */
u64
fnv1a(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** splitmix64 finalizer. */
u64
finalize(u64 z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Hash -> uniform double in [0, 1). */
double
toUnit(u64 h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(u64 seed, double jobFailProb)
    : seed_(seed), jobFailProb_(std::clamp(jobFailProb, 0.0, 1.0))
{}

u64
FaultInjector::mix(u64 a, u64 b)
{
    return finalize(a + 0x9e3779b97f4a7c15ULL * (b + 1));
}

bool
FaultInjector::shouldFailJob(const std::string &label, int attempt) const
{
    if (jobFailProb_ <= 0.0)
        return false;
    const u64 h =
        mix(mix(seed_, fnv1a(label)), static_cast<u64>(attempt));
    return toUnit(h) < jobFailProb_;
}

void
FaultInjector::maybeFailJob(const std::string &label, int attempt) const
{
    if (shouldFailJob(label, attempt))
        UFC_THROW(SimError, "injected fault (seed=" << seed_
                                << ", attempt=" << attempt << ") in job '"
                                << label << "'");
}

std::string
FaultInjector::corruptTraceText(const std::string &text, u64 salt) const
{
    const u64 h = mix(seed_, salt);
    if (text.empty())
        return text;

    // Split into lines so line-level corruptions are well-formed-ish.
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);

    std::string out;
    const auto join = [&]() {
        out.clear();
        for (const auto &l : lines)
            out += l + "\n";
    };

    switch (h % 6) {
      case 0: // hard truncation at a byte offset
        return text.substr(0, 1 + mix(h, 1) % text.size());
      case 1: // garble the magic
        lines[0] = "xfctrace" + lines[0].substr(std::min<std::size_t>(
                                    8, lines[0].size()));
        join();
        return out;
      case 2: // unsupported version
        lines[0] = "ufctrace 99";
        join();
        return out;
      case 3: { // replace one line with an unknown-opcode op line
        const std::size_t i = mix(h, 3) % lines.size();
        lines[i] = "op bogus.op 1 1 0 0";
        join();
        return out;
      }
      case 4: { // duplicate a line in place
        const std::size_t i = mix(h, 4) % lines.size();
        lines.insert(lines.begin() + i, lines[i]);
        join();
        return out;
      }
      default: { // garbage tag line mid-stream
        const std::size_t i = mix(h, 5) % lines.size();
        lines.insert(lines.begin() + i, "zzz 3 1 4 1 5");
        join();
        return out;
      }
    }
}

} // namespace ufc
