/**
 * @file
 * Shared JSON string escaping.
 *
 * Every JSON writer in the repo (runner reports, RunResult::toJson, the
 * metrics exposition, prof::writeJson, the sweep_all bench record) quotes
 * free-form text — labels, error messages, file paths — that can carry
 * quotes, backslashes and control characters.  This is the one escaping
 * implementation they all share, so a hostile trace name cannot corrupt
 * one writer's output while the others stay well-formed.
 */

#ifndef UFC_COMMON_JSON_H
#define UFC_COMMON_JSON_H

#include <cstdio>
#include <string>

namespace ufc {
namespace json {

/** Backslash-escape `s` for embedding inside a JSON string literal
 *  (no surrounding quotes). */
inline std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** `s` escaped and wrapped in double quotes — a complete JSON string. */
inline std::string
quote(const std::string &s)
{
    return "\"" + escape(s) + "\"";
}

} // namespace json
} // namespace ufc

#endif // UFC_COMMON_JSON_H
