/**
 * @file
 * Thread pool implementation.
 */

#include "common/parallel.h"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "metrics/metrics.h"

namespace ufc {

namespace {

/// Registry instruments for the pooled dispatch path, resolved once.
/// Only batches actually handed to workers are counted — the inline
/// fallbacks (empty pool, count==1, nested call) stay untouched.
struct PoolMetrics
{
    metrics::Counter &batches = metrics::counter(
        "ufc_pool_batches_total", "Batches dispatched to pool workers");
    metrics::Counter &tasks = metrics::counter(
        "ufc_pool_tasks_total", "Tasks executed on the pooled path");
    metrics::Counter &busyNs = metrics::counter(
        "ufc_pool_task_busy_ns_total",
        "Nanoseconds spent inside pooled tasks (worker utilization "
        "numerator)");
    metrics::Gauge &queueDepth = metrics::gauge(
        "ufc_pool_queue_depth",
        "Tasks enqueued by the current batch (high_water = largest batch)");
    metrics::Histogram &taskUs = metrics::histogram(
        "ufc_pool_task_duration_us", "Per-task latency in microseconds");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics *m = new PoolMetrics(); // never freed
    return *m;
}

/// Run one claimed index, charging its duration to the pool metrics
/// when recording is on.
inline void
runPooledTask(const std::function<void(std::size_t)> &fn, std::size_t i)
{
    if (!metrics::enabled()) {
        fn(i);
        return;
    }
    PoolMetrics &pm = poolMetrics();
    const auto t0 = std::chrono::steady_clock::now();
    fn(i);
    const auto ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    pm.tasks.inc();
    pm.busyNs.inc(ns);
    pm.taskUs.record(ns / 1000);
}

/// Set for the lifetime of every pool worker thread.
thread_local bool tlsInsideWorker = false;

/// Innermost pool the current (non-worker) thread is actively draining a
/// batch on.  A nested parallelFor on the SAME pool must run inline —
/// re-entering would overwrite the in-flight batch state under the
/// workers — while nesting across distinct pools (runner pool -> kernel
/// pool) still parallelizes.
thread_local const ThreadPool *tlsActiveCaller = nullptr;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    const int extra = threads - 1;
    workers_.reserve(extra > 0 ? static_cast<std::size_t>(extra) : 0);
    for (int i = 0; i < extra; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

ThreadPool::WorkerScope::WorkerScope() : prev_(tlsInsideWorker)
{
    tlsInsideWorker = true;
}

ThreadPool::WorkerScope::~WorkerScope()
{
    tlsInsideWorker = prev_;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1 || tlsInsideWorker ||
        tlsActiveCaller == this) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    if (metrics::enabled()) {
        PoolMetrics &pm = poolMetrics();
        pm.batches.inc();
        pm.queueDepth.set(static_cast<i64>(count));
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        fn_ = &fn;
        count_ = count;
        cursor_ = 0;
        inFlight_ = workers_.size();
        ++epoch_;
    }
    wake_.notify_all();

    // The calling thread drains alongside the workers.
    const ThreadPool *prevActive = tlsActiveCaller;
    tlsActiveCaller = this;
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (cursor_ >= count_)
                break;
            i = cursor_++;
        }
        runPooledTask(fn, i);
    }
    tlsActiveCaller = prevActive;

    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return inFlight_ == 0; });
    fn_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    tlsInsideWorker = true;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn;
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk, [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            fn = fn_;
        }
        for (;;) {
            std::size_t i;
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (cursor_ >= count_)
                    break;
                i = cursor_++;
            }
            runPooledTask(*fn, i);
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--inFlight_ == 0)
                done_.notify_all();
        }
    }
}

namespace {

int
defaultKernelThreads()
{
    if (const char *env = std::getenv("UFC_KERNEL_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

struct KernelPool
{
    std::mutex mu;
    std::unique_ptr<ThreadPool> pool;
    int threads = 0;

    ThreadPool &
    get()
    {
        std::lock_guard<std::mutex> lk(mu);
        if (!pool) {
            threads = defaultKernelThreads();
            pool = std::make_unique<ThreadPool>(threads);
        }
        return *pool;
    }

    void
    resize(int n)
    {
        std::lock_guard<std::mutex> lk(mu);
        const int want = n >= 1 ? n : defaultKernelThreads();
        if (pool && threads == want)
            return;
        pool.reset(); // joins workers before respawning
        threads = want;
        pool = std::make_unique<ThreadPool>(want);
    }

    int
    size()
    {
        std::lock_guard<std::mutex> lk(mu);
        if (!pool)
            threads = defaultKernelThreads();
        return threads;
    }
};

KernelPool &
kernelPool()
{
    static KernelPool kp;
    return kp;
}

} // namespace

int
kernelThreads()
{
    return kernelPool().size();
}

void
setKernelThreads(int n)
{
    kernelPool().resize(n);
}

void
parallelFor(std::size_t count, const std::function<void(std::size_t)> &fn)
{
    kernelPool().get().parallelFor(count, fn);
}

} // namespace ufc
