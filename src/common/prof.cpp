/**
 * @file
 * Host-profiler registry implementation.
 */

#include "common/prof.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/json.h"

namespace ufc {
namespace prof {

namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::atomic<Counter *> &
registryHead()
{
    static std::atomic<Counter *> head{nullptr};
    return head;
}

/** -1 = follow UFC_PROFILE, 0/1 = forced by setEnabled(). */
std::atomic<int> gOverride{-1};

bool
envEnabled()
{
    static const bool on = [] {
        const char *v = std::getenv("UFC_PROFILE");
        return v && v[0] && std::strcmp(v, "0") != 0;
    }();
    return on;
}

} // namespace

bool
enabled()
{
    const int ov = gOverride.load(std::memory_order_relaxed);
    if (ov >= 0)
        return ov != 0;
    return envEnabled();
}

void
setEnabled(bool on)
{
    gOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
registerCounter(Counter *c)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    // Idempotence: skip if already linked (next set or currently head).
    if (c->next || registryHead().load(std::memory_order_relaxed) == c)
        return;
    c->next = registryHead().load(std::memory_order_relaxed);
    registryHead().store(c, std::memory_order_release);
}

void
reset()
{
    for (Counter *c = registryHead().load(std::memory_order_acquire); c;
         c = c->next) {
        c->calls.store(0, std::memory_order_relaxed);
        c->ns.store(0, std::memory_order_relaxed);
    }
}

bool
hasSamples()
{
    for (Counter *c = registryHead().load(std::memory_order_acquire); c;
         c = c->next) {
        if (c->calls.load(std::memory_order_relaxed) > 0)
            return true;
    }
    return false;
}

void
report(std::ostream &os)
{
    struct Row
    {
        const char *name;
        unsigned long long calls;
        unsigned long long ns;
    };
    std::vector<Row> rows;
    for (Counter *c = registryHead().load(std::memory_order_acquire); c;
         c = c->next) {
        const auto calls = c->calls.load(std::memory_order_relaxed);
        if (calls == 0)
            continue;
        rows.push_back({c->name, calls, c->ns.load(std::memory_order_relaxed)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.ns > b.ns; });

    os << "host profile (UFC_PROFILE):\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-32s %12s %12s %12s\n", "scope",
                  "calls", "total_ms", "mean_us");
    os << buf;
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof(buf), "  %-32s %12llu %12.3f %12.3f\n",
                      r.name, r.calls, r.ns / 1e6,
                      r.ns / 1e3 / static_cast<double>(r.calls));
        os << buf;
    }
    if (rows.empty())
        os << "  (no samples)\n";
}

void
writeJson(std::ostream &os)
{
    struct Row
    {
        const char *name;
        unsigned long long calls;
        unsigned long long ns;
    };
    std::vector<Row> rows;
    for (Counter *c = registryHead().load(std::memory_order_acquire); c;
         c = c->next) {
        const auto calls = c->calls.load(std::memory_order_relaxed);
        if (calls == 0)
            continue;
        rows.push_back({c->name, calls, c->ns.load(std::memory_order_relaxed)});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.ns != b.ns)
            return a.ns > b.ns;
        return std::strcmp(a.name, b.name) < 0;
    });

    os << "{\"schema\":\"ufc.profile/v1\",\"counters\":[";
    bool first = true;
    for (const auto &r : rows) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":" << json::quote(r.name)
           << ",\"calls\":" << r.calls << ",\"total_ns\":" << r.ns
           << ",\"mean_ns\":" << r.ns / r.calls << "}";
    }
    os << "]}";
}

} // namespace prof
} // namespace ufc
