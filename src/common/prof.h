/**
 * @file
 * Host-side scoped-timer / counter registry (simulator self-profiling).
 *
 * The cycle engine profiles the *simulated* machine; this registry
 * profiles the *simulator itself*: how much host wall-clock the NTT/RNS
 * kernels and runner jobs consume.  It is off by default and enabled by
 * the UFC_PROFILE=1 environment variable (or setEnabled()); when off, an
 * instrumented scope costs one predicted-not-taken branch on a cached
 * bool — cheap enough to leave UFC_PROF_SCOPE in hot kernels.
 *
 * Thread safety: counters are atomics with relaxed ordering, so kernels
 * running on the shared ThreadPool accumulate without synchronization
 * overhead; registration is serialized behind a mutex and happens once
 * per site (function-local static).  Profiling only observes — it never
 * changes scheduling or results.
 */

#ifndef UFC_COMMON_PROF_H
#define UFC_COMMON_PROF_H

#include <atomic>
#include <chrono>
#include <iosfwd>

namespace ufc {
namespace prof {

/** One named accumulator; site-owned, registry-linked, never freed. */
struct Counter
{
    const char *name;
    std::atomic<unsigned long long> calls{0};
    std::atomic<unsigned long long> ns{0};
    Counter *next = nullptr; ///< registry list link (set once)

    explicit Counter(const char *n) : name(n) {}

    void
    add(unsigned long long deltaNs)
    {
        calls.fetch_add(1, std::memory_order_relaxed);
        ns.fetch_add(deltaNs, std::memory_order_relaxed);
    }
};

/** Whether profiling is on (UFC_PROFILE=1 at first query, or an explicit
 *  setEnabled()).  The env variable is read once and cached. */
bool enabled();

/** Programmatic override (tests; takes precedence over the env). */
void setEnabled(bool on);

/** Link a counter into the global registry (idempotent per counter). */
void registerCounter(Counter *c);

/** Zero every registered counter (the registry itself persists). */
void reset();

/** Write a "calls / total ms / mean us" table of every counter with at
 *  least one call, sorted by total time descending. */
void report(std::ostream &os);

/** True when any registered counter has recorded a call. */
bool hasSamples();

/** Write every counter with at least one call as one JSON object:
 *  {"schema":"ufc.profile/v1","counters":[{"name":...,"calls":...,
 *   "total_ns":...,"mean_ns":...},...]} — sorted by total time
 *  descending (ties by name) so the output is deterministic. */
void writeJson(std::ostream &os);

/** RAII timer charging its lifetime to a Counter when profiling is on. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Counter &c)
        : counter_(enabled() ? &c : nullptr)
    {
        if (counter_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (counter_) {
            const auto dt = std::chrono::steady_clock::now() - start_;
            counter_->add(static_cast<unsigned long long>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Counter *counter_;
    std::chrono::steady_clock::time_point start_;
};

namespace detail {

/** First-use registration helper for the macro below. */
inline Counter &
site(Counter &c)
{
    registerCounter(&c);
    return c;
}

} // namespace detail

/**
 * Instrument the enclosing scope under `name` (a string literal).  The
 * counter is a function-local static registered on first execution, so
 * the site costs nothing before it first runs.
 */
#define UFC_PROF_CONCAT_(a, b) a##b
#define UFC_PROF_CONCAT(a, b) UFC_PROF_CONCAT_(a, b)
#define UFC_PROF_SCOPE(name)                                              \
    static ::ufc::prof::Counter &UFC_PROF_CONCAT(ufcProfCounter_,         \
                                                 __LINE__) =              \
        ::ufc::prof::detail::site(                                        \
            *new ::ufc::prof::Counter(name)); /* registry-owned */        \
    ::ufc::prof::ScopedTimer UFC_PROF_CONCAT(ufcProfTimer_, __LINE__)(    \
        UFC_PROF_CONCAT(ufcProfCounter_, __LINE__))

} // namespace prof
} // namespace ufc

#endif // UFC_COMMON_PROF_H
