/**
 * @file
 * Seeded, deterministic fault injection for robustness testing.
 *
 * Long-running sweeps need their containment paths (per-job isolation,
 * bounded retry, structured failure reporting) exercised in tests
 * without flakiness.  FaultInjector makes every decision a pure hash of
 * (seed, site key, attempt): the same seed always fails the same jobs on
 * the same attempts, on every platform and thread count, so tests that
 * drive the retry machinery are bit-reproducible.
 *
 * Two fault families are provided:
 *   - probabilistic job failure (shouldFailJob / maybeFailJob), hooked
 *     into the experiment runner via RunnerConfig::faults, and
 *   - deterministic corruption of serialized trace text
 *     (corruptTraceText), used to fuzz trace::readTrace with inputs
 *     that must either parse or throw TraceError — never abort.
 */

#ifndef UFC_COMMON_FAULT_H
#define UFC_COMMON_FAULT_H

#include <string>

#include "common/types.h"

namespace ufc {

/** Deterministic fault source; const-callable from any thread. */
class FaultInjector
{
  public:
    /**
     * @param seed         decision-space seed; same seed => same faults
     * @param jobFailProb  probability in [0, 1] that a given
     *                     (job label, attempt) pair fails
     */
    explicit FaultInjector(u64 seed, double jobFailProb = 0.0);

    /** Pure decision: does this (label, attempt) fail?  Independent
     *  draws per attempt, so a job that fails attempt 1 may succeed on
     *  retry — exactly the path RetriedOk covers. */
    bool shouldFailJob(const std::string &label, int attempt) const;

    /** Throw SimError("injected fault...") when shouldFailJob says so;
     *  the runner calls this at the top of every job attempt. */
    void maybeFailJob(const std::string &label, int attempt) const;

    /**
     * Deterministically corrupt a serialized trace (one corruption mode
     * selected by `salt`: truncation, garbled magic, bad version, bogus
     * opcode, duplicated line, or a garbage tag line).  The result is a
     * hostile-but-reproducible parser input.
     */
    std::string corruptTraceText(const std::string &text, u64 salt) const;

    u64 seed() const { return seed_; }
    double jobFailProb() const { return jobFailProb_; }

    /** Stateless 64-bit mix (splitmix64 finalizer over a ^ rot(b)). */
    static u64 mix(u64 a, u64 b);

  private:
    u64 seed_;
    double jobFailProb_;
};

} // namespace ufc

#endif // UFC_COMMON_FAULT_H
