/**
 * @file
 * Typed, recoverable error hierarchy for the library.
 *
 * The repo distinguishes two failure classes (see also common/check.h):
 *
 *   - Internal invariant violations — bugs in this library.  These stay
 *     on the abort path (ufcPanic / UFC_CHECK): there is no sane way to
 *     continue, and a core dump is the most useful artifact.
 *
 *   - Recoverable faults caused by *inputs*: a malformed trace file, an
 *     inconsistent RunOptions, a workload a baseline cannot execute, a
 *     watchdog/deadline trip on a runaway instruction stream.  These
 *     throw a subclass of ufc::Error so that batch drivers (the
 *     experiment runner, sweep_all, inspect_trace) can contain the
 *     failure to one job and keep the rest of the sweep alive.
 *
 * Hierarchy:
 *   ufc::Error                 base (carries a stable kind() tag)
 *   ├── ufc::TraceError        trace file parse/validation failures
 *   ├── ufc::ConfigError       bad run/job/report configuration or I/O
 *   ├── ufc::OverloadError     admission rejection under load (serve)
 *   └── ufc::SimError          simulation-time faults
 *       └── ufc::TimeoutError  cooperative deadline / maxCycles watchdog
 *
 * TimeoutError keeps kind() == "SimError" (it *is* a simulation fault);
 * catch it by type when the distinction matters (the runner maps it to
 * JobStatus::TimedOut and does not retry).
 */

#ifndef UFC_COMMON_ERROR_H
#define UFC_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace ufc {

/** Base of all recoverable library errors. */
class Error : public std::runtime_error
{
  public:
    Error(std::string kind, const std::string &msg)
        : std::runtime_error(msg), kind_(std::move(kind))
    {}

    /** Stable tag for structured reports: "TraceError", "ConfigError",
     *  "SimError". */
    const std::string &kind() const noexcept { return kind_; }

  private:
    std::string kind_;
};

/** A trace file failed to parse or validate (truncated, corrupt,
 *  out-of-range field, duplicate marker, unsupported version...). */
class TraceError : public Error
{
  public:
    explicit TraceError(const std::string &msg) : Error("TraceError", msg)
    {}
};

/** Invalid user-supplied configuration: inconsistent RunOptions, a job
 *  without a model/trace, an unopenable report path, a workload the
 *  selected machine cannot execute. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &msg)
        : Error("ConfigError", msg)
    {}
};

/**
 * Load-shedding rejection from an admission-controlled service (the
 * ufc_serve daemon): the queue is full, the tenant is over its rate, a
 * degradation tier is shedding this class of work, or the server is
 * draining.  Carries a retry-after hint so well-behaved clients back
 * off instead of hammering; -1 means "do not retry" (e.g. draining).
 */
class OverloadError : public Error
{
  public:
    explicit OverloadError(const std::string &msg,
                           double retryAfterMs = 0.0)
        : Error("OverloadError", msg), retryAfterMs_(retryAfterMs)
    {}

    /** Suggested client wait before resubmitting, in milliseconds
     *  (0 = immediately fine, -1 = do not retry). */
    double retryAfterMs() const noexcept { return retryAfterMs_; }

  private:
    double retryAfterMs_;
};

/** A fault raised while simulating (including injected faults). */
class SimError : public Error
{
  public:
    explicit SimError(const std::string &msg) : Error("SimError", msg) {}
};

/** Cooperative cancellation: the cycle engine exceeded
 *  RunOptions::maxCycles or its host-side deadline.  Not retried by the
 *  runner (a hung job would hang again). */
class TimeoutError : public SimError
{
  public:
    explicit TimeoutError(const std::string &msg) : SimError(msg) {}
};

} // namespace ufc

/** Throw ErrType with an ostream-formatted message. */
#define UFC_THROW(ErrType, msg)                                             \
    do {                                                                    \
        std::ostringstream oss_;                                            \
        oss_ << msg;                                                        \
        throw ::ufc::ErrType(oss_.str());                                   \
    } while (0)

/** Always-on recoverable check: throw ErrType when `cond` is false. */
#define UFC_EXPECT(cond, ErrType, msg)                                      \
    do {                                                                    \
        if (!(cond))                                                        \
            UFC_THROW(ErrType, msg);                                        \
    } while (0)

#endif // UFC_COMMON_ERROR_H
