/**
 * @file
 * Error-reporting helpers, modelled on gem5's panic()/fatal() split.
 *
 * ufcPanic()  — internal invariant violated (a bug in this library).
 * ufcFatal()  — unusable user input (bad parameters, impossible request).
 * UFC_CHECK   — cheap always-on invariant check with a formatted message.
 */

#ifndef UFC_COMMON_CHECK_H
#define UFC_COMMON_CHECK_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ufc {

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] inline void
ufcPanic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

/** Exit with a message; use for invalid user-supplied configuration. */
[[noreturn]] inline void
ufcFatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

} // namespace ufc

#define UFC_CHECK(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << msg << " [" << __FILE__ << ":" << __LINE__ << "]";      \
            ::ufc::ufcPanic(oss_.str());                                    \
        }                                                                   \
    } while (0)

#define UFC_REQUIRE(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << msg;                                                    \
            ::ufc::ufcFatal(oss_.str());                                    \
        }                                                                   \
    } while (0)

#endif // UFC_COMMON_CHECK_H
