/**
 * @file
 * Error-reporting helpers for *internal invariants*, modelled on gem5's
 * panic() split.
 *
 * ufcPanic() / UFC_CHECK — an invariant of this library was violated (a
 * bug in this code); abort so the core dump points at it.
 *
 * Recoverable failures caused by inputs (malformed trace files, bad
 * RunOptions, unexecutable jobs, watchdog trips) do NOT belong here:
 * they throw a typed ufc::Error subclass — see common/error.h — so the
 * experiment runner and the CLIs can contain them to one job instead of
 * taking down a whole sweep.  The old ufcFatal()/UFC_REQUIRE exit path
 * was replaced by that hierarchy.
 */

#ifndef UFC_COMMON_CHECK_H
#define UFC_COMMON_CHECK_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ufc {

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] inline void
ufcPanic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace ufc

#define UFC_CHECK(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << msg << " [" << __FILE__ << ":" << __LINE__ << "]";      \
            ::ufc::ufcPanic(oss_.str());                                    \
        }                                                                   \
    } while (0)

#endif // UFC_COMMON_CHECK_H
