/**
 * @file
 * Deterministic random number generation for keys, noise and test data.
 *
 * All randomness in the library flows through Rng so that unit tests and
 * examples are reproducible.  The generator is xoshiro256** seeded by
 * splitmix64, which is fast and has no crypto requirements here: this repo
 * is a research reproduction, not a hardened crypto implementation.
 */

#ifndef UFC_COMMON_RNG_H
#define UFC_COMMON_RNG_H

#include <cmath>

#include "common/types.h"

namespace ufc {

/** Deterministic PRNG with uniform, ternary and discrete-gaussian draws. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            u64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        gaussSpare_ = 0.0;
        gaussHasSpare_ = false;
    }

    /** Next raw 64-bit value (xoshiro256**). */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). Bound must be nonzero. */
    u64
    uniform(u64 bound)
    {
        // Rejection sampling to remove modulo bias.
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Ternary draw from {-1, 0, 1} returned mod q. */
    u64
    ternary(u64 q)
    {
        switch (next() % 3) {
          case 0: return 0;
          case 1: return 1;
          default: return q - 1;
        }
    }

    /** Gaussian draw (Marsaglia polar), standard deviation sigma. */
    double
    gaussian(double sigma)
    {
        if (gaussHasSpare_) {
            gaussHasSpare_ = false;
            return gaussSpare_ * sigma;
        }
        double u, v, s;
        do {
            u = 2.0 * uniformReal() - 1.0;
            v = 2.0 * uniformReal() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double mul = std::sqrt(-2.0 * std::log(s) / s);
        gaussSpare_ = v * mul;
        gaussHasSpare_ = true;
        return u * mul * sigma;
    }

    /** Rounded gaussian reduced into [0, q). */
    u64
    gaussianMod(double sigma, u64 q)
    {
        i64 e = static_cast<i64>(std::llround(gaussian(sigma)));
        i64 r = e % static_cast<i64>(q);
        if (r < 0)
            r += static_cast<i64>(q);
        return static_cast<u64>(r);
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4] = {};
    double gaussSpare_ = 0.0;
    bool gaussHasSpare_ = false;
};

} // namespace ufc

#endif // UFC_COMMON_RNG_H
