/**
 * @file
 * Seeded exponential backoff with deterministic jitter.
 *
 * Both retry paths in the repo — the experiment runner's bounded
 * `--retries` and the ufc_serve daemon's per-request retry — used to
 * re-run a failed attempt immediately, which under a correlated fault
 * (a briefly unreadable trace file, a transient injected fault wave)
 * just burns the retry budget in microseconds.  This helper computes the
 * classic capped exponential delay with *deterministic* jitter: the
 * jitter draw is a pure hash of (seed, site key, attempt), so the same
 * seed always yields the same delay schedule on every platform and
 * thread count — the property that lets tests assert the schedule
 * bit-exactly instead of sleeping and hoping.
 */

#ifndef UFC_COMMON_BACKOFF_H
#define UFC_COMMON_BACKOFF_H

#include <string>

#include "common/types.h"

namespace ufc {

/** Delay schedule knobs for backoffDelayMs(). */
struct BackoffPolicy
{
    /// Delay before the second attempt, in milliseconds.  <= 0 disables
    /// backoff entirely (backoffDelayMs returns 0 — the legacy
    /// immediate-re-run behaviour).
    double baseMs = 25.0;
    /// Upper bound on the un-jittered delay.
    double maxMs = 2000.0;
    /// Growth factor per failed attempt.
    double multiplier = 2.0;
    /// Fraction of each delay that is randomized, in [0, 1].  The
    /// jittered delay lands in [delay * (1 - jitter), delay]; 0 gives
    /// the exact exponential schedule.
    double jitter = 0.5;
    /// Decision-space seed; same seed => same schedule for a given key.
    u64 seed = 0;
};

/**
 * Delay in milliseconds to sleep before retry number `attempt` + 1,
 * where `attempt` >= 1 counts failed attempts so far.  Pure function of
 * (policy, key, attempt): deterministic across platforms, threads and
 * calls.  `key` identifies the retrying site (typically the job label)
 * so concurrent retriers with different keys decorrelate.
 */
double backoffDelayMs(const BackoffPolicy &policy, const std::string &key,
                      int attempt);

/** Sleep for backoffDelayMs(...); no-op when the delay is zero. */
void backoffSleep(const BackoffPolicy &policy, const std::string &key,
                  int attempt);

} // namespace ufc

#endif // UFC_COMMON_BACKOFF_H
