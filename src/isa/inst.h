/**
 * @file
 * The primitive hardware instruction set (paper Table I).
 *
 * Every high-level FHE operation in both schemes lowers to a stream of
 * these primitive instructions: parallel butterfly work ((i)NTT), parallel
 * modular arithmetic (EWMM/EWMA and BConv MACs), digit decomposition, and
 * the near-memory LWE operations (Extract, REDC).  Automorphism lowers to
 * NttAuto — the re-rooted NTT of Section IV-C2 — and polynomial rotation
 * to an evaluation-form monomial multiply (Section IV-C3), so no dedicated
 * shuffle instructions are needed beyond the CG-NTT network itself.
 */

#ifndef UFC_ISA_INST_H
#define UFC_ISA_INST_H

#include <vector>

#include "common/types.h"

namespace ufc {
namespace isa {

/** Primitive opcodes executed by the accelerator models. */
enum class HwOp
{
    Ntt,        ///< forward NTT (CG-DIF on UFC)
    Intt,       ///< inverse NTT (CG-DIT on UFC)
    NttAuto,    ///< NTT with re-indexed roots: automorphism via NTT
    Ewmm,       ///< element-wise modular multiply
    Ewma,       ///< element-wise modular add (also sub/neg)
    EwScale,    ///< multiply by per-limb scalar
    BconvMac,   ///< base-conversion multiply-accumulate
    Decomp,     ///< gadget digit decomposition
    MonomialMul,///< rotation as evaluation-form monomial multiply
    Extract,    ///< LWE extraction (near-memory LWEU)
    Reduce,     ///< LWE reduction / accumulation (LWEU)
    Shuffle,    ///< inter-channel crossbar data shuffling
    KeyGenOtf,  ///< on-the-fly key / twiddle generation
    NumHwOps,
};

constexpr int kNumHwOps = static_cast<int>(HwOp::NumHwOps);

/** Stable lower-case opcode mnemonic used by the attribution tables
 *  (per-opcode stats export, timeline slices, inspect_trace). */
constexpr const char *
opName(HwOp op)
{
    switch (op) {
      case HwOp::Ntt: return "ntt";
      case HwOp::Intt: return "intt";
      case HwOp::NttAuto: return "ntt_auto";
      case HwOp::Ewmm: return "ewmm";
      case HwOp::Ewma: return "ewma";
      case HwOp::EwScale: return "ew_scale";
      case HwOp::BconvMac: return "bconv_mac";
      case HwOp::Decomp: return "decomp";
      case HwOp::MonomialMul: return "monomial_mul";
      case HwOp::Extract: return "extract";
      case HwOp::Reduce: return "reduce";
      case HwOp::Shuffle: return "shuffle";
      case HwOp::KeyGenOtf: return "keygen_otf";
      case HwOp::NumHwOps: break;
    }
    return "unknown";
}

/** Hardware resources instructions occupy (for utilization accounting). */
enum class Resource
{
    Butterfly, ///< butterfly ALUs
    VectorAlu, ///< modular mul/add lanes
    Noc,       ///< global interconnect (CG network + crossbar)
    Lweu,      ///< near-memory LWE unit
    NumResources,
};

constexpr int kNumResources = static_cast<int>(Resource::NumResources);

/** Stable lower-case resource name used by the structured stats export. */
constexpr const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::Butterfly: return "butterfly";
      case Resource::VectorAlu: return "vector_alu";
      case Resource::Noc: return "noc";
      case Resource::Lweu: return "lweu";
      case Resource::NumResources: break;
    }
    return "unknown";
}

/** A named operand region used by the scratchpad model. */
struct BufferRef
{
    u64 id = 0;       ///< stable identifier (ciphertext, key, plaintext)
    u64 bytes = 0;    ///< size of the region touched
    bool write = false;
    bool transient = false; ///< produced and consumed on chip; never DRAM
    /// Streamed every use and never cached (e.g. on-the-fly regenerated
    /// keys: only the seed/partial material moves, but it moves each
    /// time rather than occupying scratchpad).
    bool streaming = false;
};

/** One primitive instruction. */
struct HwInst
{
    HwOp op = HwOp::Ewma;
    u32 logDegree = 0; ///< log2 of the per-polynomial degree
    u32 batch = 1;     ///< polynomials processed together (packing)
    u64 words = 0;     ///< machine words read per operand stream
    u64 work = 0;      ///< op-specific work units (butterflies, MACs, ...)
    std::vector<BufferRef> buffers;
};

/** Convenience: instruction stream consumer interface. */
class InstSink
{
  public:
    virtual ~InstSink() = default;
    virtual void issue(const HwInst &inst) = 0;

    /**
     * Optional phase markers bracketing a region of the instruction
     * stream (a high-level trace op, a key switch, a blind rotation).
     * Phases nest strictly; sinks that don't track them inherit these
     * no-ops.  `name` must outlive the sink's run (callers pass string
     * literals or the stable mnemonics from trace/serialize.h).
     */
    virtual void beginPhase(const char *name) { (void)name; }
    virtual void endPhase() {}

    /**
     * Optional repeat folding.  A producer about to emit `trips`
     * byte-identical copies of an instruction sequence may offer the
     * repetition to the sink instead of unrolling it: if beginRepeat()
     * returns true, the producer emits the body exactly once followed by
     * endRepeat(), and the stream *means* that body executed `trips`
     * times back to back.  If it returns false (the default — sinks that
     * consume instructions one at a time, like the IR cycle engine, need
     * the unrolled stream), the producer must emit every iteration
     * itself and never call endRepeat().
     *
     * The contract is strict so folding is observable-equivalent to
     * unrolling: every iteration must issue identical instructions
     * (including buffer ids and byte counts), and the body must not
     * contain phase markers.  The bytecode ProgramBuilder accepts
     * repeats and folds them into Program loops; decorators
     * (analysis::VerifyingSink) forward the offer to their inner sink.
     */
    virtual bool beginRepeat(u64 trips)
    {
        (void)trips;
        return false;
    }
    virtual void endRepeat() {}
};

} // namespace isa
} // namespace ufc

#endif // UFC_ISA_INST_H
