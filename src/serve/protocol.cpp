/**
 * @file
 * Frame I/O implementation.  All reads and writes loop over partial
 * transfers and EINTR; writes use MSG_NOSIGNAL so a dead peer surfaces
 * as a typed error instead of SIGPIPE killing the daemon.
 */

#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"

namespace ufc {
namespace serve {

namespace {

/** Read exactly `len` bytes; returns bytes read (< len only on EOF). */
std::size_t
readFull(int fd, char *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, buf + got, len - got);
        if (n == 0)
            break; // EOF
        if (n < 0) {
            if (errno == EINTR)
                continue;
            UFC_THROW(ConfigError,
                      "socket read failed: " << std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
    return got;
}

} // namespace

bool
readFrame(int fd, std::string &payload, u32 maxBytes)
{
    unsigned char hdr[4];
    const std::size_t h =
        readFull(fd, reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (h == 0)
        return false; // clean EOF at a frame boundary
    UFC_EXPECT(h == sizeof(hdr), ConfigError,
               "truncated frame: connection closed inside the length "
               "prefix");
    const u32 len = (u32{hdr[0]} << 24) | (u32{hdr[1]} << 16) |
                    (u32{hdr[2]} << 8) | u32{hdr[3]};
    if (len > maxBytes)
        throw OverloadError("frame of " + std::to_string(len) +
                                " bytes exceeds the " +
                                std::to_string(maxBytes) + "-byte limit",
                            -1.0);
    payload.resize(len);
    const std::size_t got = len == 0 ? 0 : readFull(fd, payload.data(), len);
    UFC_EXPECT(got == len, ConfigError,
               "truncated frame: got " << got << " of " << len
                                       << " payload bytes");
    return true;
}

void
writeFrame(int fd, const std::string &payload)
{
    UFC_EXPECT(payload.size() <= 0xFFFFFFFFull, ConfigError,
               "frame payload too large to encode");
    const u32 len = static_cast<u32>(payload.size());
    const unsigned char hdr[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    std::string frame(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    frame += payload;

    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            UFC_THROW(ConfigError,
                      "socket write failed: " << std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

JsonValue
errorResponse(const std::string &kind, const std::string &code,
              const std::string &message, double retryAfterMs)
{
    JsonValue err = JsonValue::makeObject();
    err.set("kind", JsonValue::makeString(kind));
    err.set("code", JsonValue::makeString(code));
    err.set("message", JsonValue::makeString(message));
    if (retryAfterMs >= 0.0)
        err.set("retry_after_ms",
                JsonValue::makeInt(static_cast<i64>(retryAfterMs)));
    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(false));
    resp.set("error", std::move(err));
    return resp;
}

} // namespace serve
} // namespace ufc
