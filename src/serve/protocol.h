/**
 * @file
 * Wire protocol for the ufc_serve daemon: length-prefixed JSON frames
 * over a local (AF_UNIX) stream socket.
 *
 * ## Framing
 *
 * Every message — request or response — is one frame:
 *
 *     [4-byte big-endian payload length N][N bytes of UTF-8 JSON]
 *
 * A frame longer than the receiver's limit is a protocol violation:
 * the daemon answers with an `oversized_frame` error and closes the
 * connection without reading the body (a client cannot make the server
 * buffer unbounded input).  A connection that ends mid-frame is
 * treated as a disconnect and closed quietly — mid-request client
 * death must never take a worker down.
 *
 * ## Requests
 *
 * Requests are JSON objects dispatched on their `"op"` field:
 *
 *   submit  {op, tenant?, job:{workload|trace_file|trace_text, scale?,
 *            machine?, label?, deadline_ms?, max_cycles?, retries?,
 *            lint?, hold_ms?}}
 *   status  {op, id}
 *   result  {op, id, wait?, timeout_ms?}
 *   cancel  {op, id}
 *   health  {op}
 *   metrics {op}
 *   drain   {op}
 *
 * ## Responses
 *
 * Every response carries `"ok"`.  Failures carry an `"error"` object:
 * {kind, code, message, retry_after_ms?, recent_events?} where `kind`
 * is the ufc::Error kind ("OverloadError" for admission rejections)
 * and `code` is a stable machine tag (kCode* below).
 */

#ifndef UFC_SERVE_PROTOCOL_H
#define UFC_SERVE_PROTOCOL_H

#include <string>

#include "common/types.h"
#include "serve/json.h"

namespace ufc {
namespace serve {

/** Default cap on one frame's payload, request and response alike. */
inline constexpr u32 kDefaultMaxFrameBytes = 4u << 20;

/** Protocol revision reported by `health`. */
inline constexpr int kProtocolVersion = 1;

/// Stable machine tags carried in error responses' "code" field.
inline constexpr const char *kCodeQueueFull = "queue_full";
inline constexpr const char *kCodeRateLimited = "rate_limited";
inline constexpr const char *kCodeShedCompile = "shed_compile";
inline constexpr const char *kCodeDraining = "draining";
inline constexpr const char *kCodeBadRequest = "bad_request";
inline constexpr const char *kCodeBadJob = "bad_job";
inline constexpr const char *kCodeUnknownId = "unknown_id";
inline constexpr const char *kCodeNotCancellable = "not_cancellable";
inline constexpr const char *kCodeOversizedFrame = "oversized_frame";
inline constexpr const char *kCodeJobFailed = "job_failed";
inline constexpr const char *kCodeWaitTimeout = "wait_timeout";
inline constexpr const char *kCodeTooManyConns = "too_many_connections";

/**
 * Read one frame's payload from `fd` into `payload`.
 * Returns false on a clean EOF at a frame boundary (peer closed).
 * Throws ufc::ConfigError on a truncated frame or an I/O error, and
 * ufc::OverloadError carrying no retry hint on an oversized length
 * prefix (the caller decides whether to answer before closing).
 */
bool readFrame(int fd, std::string &payload,
               u32 maxBytes = kDefaultMaxFrameBytes);

/** Write one frame (length prefix + payload) to `fd`; throws
 *  ufc::ConfigError when the peer is gone or the write fails.  Never
 *  raises SIGPIPE. */
void writeFrame(int fd, const std::string &payload);

/** Build the standard error-response document. */
JsonValue errorResponse(const std::string &kind, const std::string &code,
                        const std::string &message,
                        double retryAfterMs = -1.0);

} // namespace serve
} // namespace ufc

#endif // UFC_SERVE_PROTOCOL_H
