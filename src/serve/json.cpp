/**
 * @file
 * JSON value model and strict bounded parser implementation.
 */

#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/json.h"

namespace ufc {
namespace serve {

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.b_ = b;
    return v;
}

JsonValue
JsonValue::makeInt(i64 i)
{
    JsonValue v;
    v.type_ = Type::Int;
    v.i_ = i;
    v.d_ = static_cast<double>(i);
    return v;
}

JsonValue
JsonValue::makeDouble(double d)
{
    JsonValue v;
    v.type_ = Type::Double;
    v.d_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.s_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    UFC_EXPECT(type_ == Type::Bool, ConfigError,
               "json: expected bool");
    return b_;
}

i64
JsonValue::asInt() const
{
    if (type_ == Type::Int)
        return i_;
    if (type_ == Type::Double) {
        UFC_EXPECT(std::nearbyint(d_) == d_, ConfigError,
                   "json: expected integer, got " << d_);
        return static_cast<i64>(d_);
    }
    UFC_THROW(ConfigError, "json: expected number");
}

double
JsonValue::asDouble() const
{
    UFC_EXPECT(isNumber(), ConfigError, "json: expected number");
    return type_ == Type::Int ? static_cast<double>(i_) : d_;
}

const std::string &
JsonValue::asString() const
{
    UFC_EXPECT(type_ == Type::String, ConfigError,
               "json: expected string");
    return s_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    UFC_EXPECT(type_ == Type::Array, ConfigError, "json: expected array");
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    UFC_EXPECT(type_ == Type::Object, ConfigError,
               "json: expected object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return dflt;
    UFC_EXPECT(v->isString(), ConfigError,
               "json: field '" << key << "' must be a string");
    return v->s_;
}

i64
JsonValue::getInt(const std::string &key, i64 dflt) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return dflt;
    UFC_EXPECT(v->isNumber(), ConfigError,
               "json: field '" << key << "' must be a number");
    return v->asInt();
}

double
JsonValue::getDouble(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return dflt;
    UFC_EXPECT(v->isNumber(), ConfigError,
               "json: field '" << key << "' must be a number");
    return v->asDouble();
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return dflt;
    UFC_EXPECT(v->isBool(), ConfigError,
               "json: field '" << key << "' must be a bool");
    return v->b_;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    UFC_EXPECT(type_ == Type::Object, ConfigError,
               "json: set() on a non-object");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

void
JsonValue::push(JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    UFC_EXPECT(type_ == Type::Array, ConfigError,
               "json: push() on a non-array");
    arr_.push_back(std::move(v));
}

std::string
JsonValue::dump() const
{
    switch (type_) {
      case Type::Null: return "null";
      case Type::Bool: return b_ ? "true" : "false";
      case Type::Int: return std::to_string(i_);
      case Type::Double: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d_);
        return buf;
      }
      case Type::String: return json::quote(s_);
      case Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ",";
            out += arr_[i].dump();
        }
        return out + "]";
      }
      case Type::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ",";
            out += json::quote(obj_[i].first) + ":" +
                   obj_[i].second.dump();
        }
        return out + "}";
      }
    }
    return "null";
}

namespace {

/** Strict parser over a fixed byte range; every read bounds-checked. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue(0);
        skipWs();
        UFC_EXPECT(pos_ == s_.size(), ConfigError,
                   "json: trailing garbage at offset " << pos_);
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        UFC_THROW(ConfigError,
                  "json: " << what << " at offset " << pos_);
    }

    bool atEnd() const { return pos_ >= s_.size(); }

    char
    peek() const
    {
        if (atEnd())
            UFC_THROW(ConfigError, "json: unexpected end of input");
        return s_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = s_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void
    expectLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p)
            if (atEnd() || s_[pos_++] != *p)
                fail("bad literal");
    }

    void
    appendUtf8(std::string &out, u32 cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    u32
    parseHex4()
    {
        u32 v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<u32>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<u32>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<u32>(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return v;
    }

    std::string
    parseString()
    {
        // Caller consumed the opening quote.
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char e = next();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                u32 cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uDC00-\uDFFF low half must
                    // follow.
                    if (atEnd() || next() != '\\' || next() != 'u')
                        fail("unpaired surrogate");
                    const u32 lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (!atEnd() && s_[pos_] >= '0' && s_[pos_] <= '9')
            ++pos_;
        bool isInt = true;
        if (!atEnd() && s_[pos_] == '.') {
            isInt = false;
            ++pos_;
            while (!atEnd() && s_[pos_] >= '0' && s_[pos_] <= '9')
                ++pos_;
        }
        if (!atEnd() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            isInt = false;
            ++pos_;
            if (!atEnd() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            while (!atEnd() && s_[pos_] >= '0' && s_[pos_] <= '9')
                ++pos_;
        }
        const std::string tok = s_.substr(start, pos_ - start);
        UFC_EXPECT(!tok.empty() && tok != "-", ConfigError,
                   "json: bad number at offset " << start);
        if (isInt) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return JsonValue::makeInt(static_cast<i64>(v));
            // Out-of-range integer: fall through to double.
        }
        errno = 0;
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        UFC_EXPECT(end && *end == '\0' && std::isfinite(d), ConfigError,
                   "json: bad number at offset " << start);
        return JsonValue::makeDouble(d);
    }

    JsonValue
    parseValue(int depth)
    {
        UFC_EXPECT(depth < kJsonMaxDepth, ConfigError,
                   "json: nesting deeper than " << kJsonMaxDepth);
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': {
            ++pos_;
            JsonValue obj = JsonValue::makeObject();
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            for (;;) {
                skipWs();
                if (next() != '"')
                    fail("expected object key");
                std::string key = parseString();
                skipWs();
                if (next() != ':')
                    fail("expected ':'");
                obj.set(key, parseValue(depth + 1));
                skipWs();
                const char sep = next();
                if (sep == '}')
                    return obj;
                if (sep != ',')
                    fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos_;
            JsonValue arr = JsonValue::makeArray();
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            for (;;) {
                arr.push(parseValue(depth + 1));
                skipWs();
                const char sep = next();
                if (sep == ']')
                    return arr;
                if (sep != ',')
                    fail("expected ',' or ']'");
            }
          }
          case '"': ++pos_; return JsonValue::makeString(parseString());
          case 't': expectLiteral("true"); return JsonValue::makeBool(true);
          case 'f':
            expectLiteral("false");
            return JsonValue::makeBool(false);
          case 'n': expectLiteral("null"); return JsonValue();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail("unexpected character");
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace serve
} // namespace ufc
