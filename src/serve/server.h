/**
 * @file
 * `ufc_serve`: a fault-contained, long-lived simulation daemon.
 *
 * The experiment runner made one *batch* fault-tolerant; this server
 * makes the *process* a service: it accepts simulation jobs over a
 * local AF_UNIX socket (length-prefixed JSON frames, serve/protocol.h),
 * executes them through the runner's per-job isolation machinery
 * (ExperimentRunner::runJob) on a fixed set of worker threads, and
 * keeps the compile/phase/twiddle caches warm across requests — the
 * paper's 130-job sweep becomes steady-state traffic instead of a
 * cold-start CLI invocation per batch.
 *
 * ## The service envelope
 *
 *  - **Bounded admission queue.**  Submissions beyond the configured
 *    capacity are rejected with a typed OverloadError response carrying
 *    a `retry_after_ms` hint derived from the observed service rate;
 *    queue depth and RSS stay bounded no matter the offered load.
 *  - **Per-tenant fair admission.**  Each tenant draws from a token
 *    bucket (burst + refill rate); an aggressive client exhausts its
 *    own bucket and gets `rate_limited` rejections while other tenants
 *    continue to be admitted.
 *  - **Graceful degradation tiers** by queue occupancy: tier 1 sheds
 *    the lint pre-flight from admitted jobs; tier 2 additionally sheds
 *    jobs that would require a *fresh* compile (only specs the warm
 *    caches have already seen are admitted); tier 3 (full) rejects.
 *  - **Per-request deadlines** layered on the PR-4 watchdogs: the
 *    deadline covers queue wait too — a request that expires while
 *    queued fails fast without occupying a worker.
 *  - **Bounded retries with seeded backoff** (common/backoff.h)
 *    instead of immediate re-runs.
 *  - **Clean drain**: `drain` (or SIGTERM in the CLI wrapper) stops
 *    admission, finishes queued + in-flight jobs, and leaves results
 *    queryable until stop(); the CLI then flushes a final
 *    `ufc.report/v2` envelope plus Prometheus metrics and exits 0.
 *  - **Fault containment**: malformed frames, hostile JSON, oversized
 *    payloads, corrupt traces and mid-request disconnects each cost
 *    one error response (or one closed connection), never the process;
 *    failed jobs attach the flight-recorder tail as a post-mortem.
 *
 * ## Threading
 *
 * One accept thread, one handler thread per connection (bounded by
 * maxConnections), and `workers` job-executor threads.  Executors run
 * under ThreadPool::WorkerScope so nested kernel fan-out stays inline:
 * the worker count is the true process concurrency.  Results are
 * bit-identical to a serial `sweep_all` run of the same jobs — jobs
 * share nothing but immutable models and thread-safe caches (the
 * `serve` ctest label locks this down).
 */

#ifndef UFC_SERVE_SERVER_H
#define UFC_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/backoff.h"
#include "runner/runner.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sim/phase_cache.h"

namespace ufc {
namespace serve {

/** Daemon knobs (all have serving-ready defaults except socketPath). */
struct ServeConfig
{
    /// Filesystem path of the AF_UNIX listening socket (required; a
    /// stale file at the path is unlinked before bind).
    std::string socketPath;
    /// Job-executor threads (the true process concurrency).
    int workers = 2;
    /// Admission queue bound; submissions beyond it are shed.
    std::size_t queueCapacity = 64;
    /// Cap on one frame's payload, both directions.
    u32 maxFrameBytes = kDefaultMaxFrameBytes;
    /// Concurrent connections; excess gets an overload response.
    int maxConnections = 64;
    /// Default extra attempts for failed jobs (a submit may lower it).
    int maxRetries = 0;
    /// Backoff schedule between retry attempts.
    BackoffPolicy retryBackoff;
    /// Default per-request deadline in ms, queue wait included
    /// (0 = none; a submit's deadline_ms overrides).
    double defaultDeadlineMs = 0.0;
    /// Token-bucket fair admission per tenant: burst capacity and
    /// refill rate.  burst <= 0 disables tenant limiting.
    double tenantBurst = 64.0;
    double tenantRatePerSec = 32.0;
    /// Degradation thresholds as queue-occupancy fractions.
    double shedLintAt = 0.5;
    double shedCompileAt = 0.75;
    /// Run the lint pre-flight on admitted jobs below tier 1.
    bool lintPreflight = false;
    /// Share a phase-result cache across requests.
    bool usePhaseCache = true;
    /// Bound on the persistent ProgramCache (0 = unbounded).
    std::size_t programCacheMaxEntries = 256;
    /// Terminal job records retained for `result` queries and the final
    /// report; older ones are expired FIFO so a week of traffic cannot
    /// grow RSS without bound.
    std::size_t resultRetention = 8192;
};

/** Cumulative admission/lifecycle counters (monotone; health + tests). */
struct ServeStats
{
    u64 submitted = 0;  ///< accepted into the queue
    u64 completed = 0;  ///< terminal ok (incl. retried_ok)
    u64 failed = 0;     ///< terminal failed/timed_out
    u64 cancelled = 0;  ///< cancelled while queued
    u64 shed = 0;       ///< queue_full + shed_compile rejections
    u64 rateLimited = 0;///< tenant token-bucket rejections
    u64 rejected = 0;   ///< all non-admitted submits
    u64 lintShed = 0;   ///< admitted jobs whose lint pre-flight was shed
    u64 expired = 0;    ///< terminal records evicted by resultRetention
    u64 protocolErrors = 0; ///< malformed frames/JSON/requests
};

/** The daemon.  Construct, start(), then beginDrain()+awaitDrained()
 *  +stop() to shut down cleanly. */
class Server
{
  public:
    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and spawn the accept + worker threads; throws
     *  ufc::ConfigError when the socket cannot be created. */
    void start();

    /** Stop admitting new jobs (idempotent; submissions now get a
     *  `draining` rejection).  Triggered by the `drain` protocol op or
     *  the CLI's SIGTERM handler. */
    void beginDrain();

    /** True once beginDrain() ran (locally or via the protocol). */
    bool drainRequested() const;

    /** Block until the queue is empty and no job is running.  Results
     *  stay queryable until stop(). */
    void awaitDrained();

    /** Close every connection, join every thread, unlink the socket.
     *  Queued jobs that never ran are marked cancelled (the final
     *  report accounts for every accepted job). */
    void stop();

    /**
     * Dispatch one request document and return the response document
     * (both serialized JSON).  The socket layer calls this per frame;
     * tests call it directly to drive admission control in-process.
     * Never throws: any error becomes an error response.
     */
    std::string handleRequestText(const std::string &requestJson);

    /** Snapshot of the retained terminal jobs as a runner BatchResult,
     *  in completion order — the payload of the final ufc.report/v2. */
    runner::BatchResult reportBatch() const;

    ServeStats stats() const;
    const ServeConfig &config() const { return cfg_; }

    /** Current degradation tier (0 = normal .. 3 = rejecting). */
    int degradeTier() const;

  private:
    struct JobRecord;
    struct TokenBucket;

    JsonValue handleSubmit(const JsonValue &req);
    JsonValue handleStatus(const JsonValue &req);
    JsonValue handleResult(const JsonValue &req);
    JsonValue handleCancel(const JsonValue &req);
    JsonValue handleHealth();
    JsonValue handleMetrics();
    JsonValue handleDrain();

    void acceptLoop();
    void connectionLoop(int fd);
    void workerLoop(int workerIndex);
    void executeJob(const std::shared_ptr<JobRecord> &rec);
    void finishJob(const std::shared_ptr<JobRecord> &rec);

    /// Admission-time estimate of when capacity frees up (ms).
    double retryAfterMsLocked() const;
    int tierLocked() const;
    std::shared_ptr<JobRecord> findRecord(const std::string &id);

    ServeConfig cfg_;

    // Immutable after construction: the machine registry the
    // ProgramCache keys point into.
    std::unordered_map<std::string,
                       std::shared_ptr<const sim::AcceleratorModel>>
        models_;

    // Warm caches shared across requests.
    runner::ProgramCache programCache_;
    sim::PhaseCache phaseCache_;
    std::mutex traceMu_;
    std::unordered_map<std::string,
                       std::shared_ptr<const trace::Trace>>
        traceCache_;

    // Admission + lifecycle state, guarded by mu_.
    mutable std::mutex mu_;
    std::condition_variable queueCv_;    ///< workers wait for jobs
    std::condition_variable terminalCv_; ///< result waiters + drain
    std::deque<std::string> queue_;      ///< queued record ids
    std::unordered_map<std::string, std::shared_ptr<JobRecord>> records_;
    std::deque<std::string> terminalOrder_; ///< retention + report order
    std::unordered_map<std::string, std::unique_ptr<TokenBucket>>
        tenants_;
    std::unordered_set<std::string> warmSpecs_; ///< tier-2 admission set
    ServeStats stats_;
    u64 nextId_ = 1;
    int running_ = 0;        ///< jobs currently executing
    double ewmaJobMs_ = 0.0; ///< service-time estimate for retry_after
    bool draining_ = false;
    bool stopping_ = false;

    // Socket plumbing. The listening fd is shared between stop() and the
    // accept thread, which blocks in accept() on it without holding a lock.
    std::atomic<int> listenFd_{-1};
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::mutex connMu_;
    std::condition_variable connCv_;
    std::unordered_set<int> connFds_;
    int activeConns_ = 0;
    std::chrono::steady_clock::time_point startTime_;
};

} // namespace serve
} // namespace ufc

#endif // UFC_SERVE_SERVER_H
