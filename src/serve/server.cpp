/**
 * @file
 * ufc_serve daemon core: admission control, degradation tiers, worker
 * scheduling, and the request handlers.  See server.h for the design.
 */

#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/parallel.h"
#include "metrics/metrics.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

namespace ufc {
namespace serve {

using Clock = std::chrono::steady_clock;

namespace {

double
msSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

u64
fnv1a64(const std::string &s)
{
    u64 h = 14695981039346656037ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

// Site-cached registry instruments (see metrics.h: references are valid
// for the process lifetime; all no-ops while metrics are off).
metrics::Gauge &
queueDepthGauge()
{
    static metrics::Gauge &g = metrics::gauge(
        "ufc_serve_queue_depth", "jobs waiting in the admission queue");
    return g;
}

metrics::Gauge &
tierGauge()
{
    static metrics::Gauge &g = metrics::gauge(
        "ufc_serve_degrade_tier",
        "current degradation tier (0 normal .. 3 rejecting)");
    return g;
}

metrics::Gauge &
connGauge()
{
    static metrics::Gauge &g = metrics::gauge("ufc_serve_connections",
                                              "open client connections");
    return g;
}

metrics::Counter &
shedCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_shed_total",
        "submissions shed by overload (queue_full + shed_compile)");
    return c;
}

metrics::Counter &
rejectedCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_rejected_total", "all non-admitted submissions");
    return c;
}

metrics::Counter &
submittedCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_submitted_total", "jobs accepted into the queue");
    return c;
}

metrics::Counter &
completedCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_completed_total", "jobs finished successfully");
    return c;
}

metrics::Counter &
failedJobsCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_failed_total", "jobs that settled failed/timed_out");
    return c;
}

metrics::Counter &
protocolErrorCounter()
{
    static metrics::Counter &c = metrics::counter(
        "ufc_serve_protocol_errors_total",
        "malformed frames, JSON or requests");
    return c;
}

metrics::Histogram &
latencyHistogram()
{
    static metrics::Histogram &h = metrics::histogram(
        "ufc_serve_request_latency_us",
        "submit-to-terminal latency per accepted job");
    return h;
}

/// Workload names `submit` accepts; `scale` is each generator's leading
/// size knob (0 keeps the serving default, chosen small enough that a
/// request is seconds, not minutes, of host time).
const char *const kWorkloadNames[] = {
    "pbs", "tfhe_nn", "helr", "bootstrap", "resnet20", "sorting", "knn",
};

bool
knownWorkload(const std::string &name)
{
    for (const char *w : kWorkloadNames)
        if (name == w)
            return true;
    return false;
}

trace::Trace
makeWorkloadTrace(const std::string &name, i64 scale)
{
    const auto c2 = ckks::CkksParams::c2();
    const auto t1 = tfhe::TfheParams::t1();
    const int n = static_cast<int>(scale);
    if (name == "pbs")
        return workloads::pbsThroughput(t1, n > 0 ? n : 256);
    if (name == "tfhe_nn")
        return workloads::tfheNn(t1, n > 0 ? n : 2, 64);
    if (name == "helr")
        return workloads::helr(c2, n > 0 ? n : 3);
    if (name == "bootstrap")
        return workloads::ckksBootstrapping(c2, n > 0 ? n : 1);
    if (name == "resnet20")
        return workloads::resnet20(c2);
    if (name == "sorting")
        return workloads::sorting(c2, n > 0 ? n : 16384);
    if (name == "knn")
        return workloads::hybridKnn(c2, tfhe::TfheParams::t2(),
                                    n > 0 ? n : 1024, 64, 8);
    UFC_THROW(ConfigError, "unknown workload '" << name << "'");
}

} // namespace

struct Server::TokenBucket
{
    double tokens = 0.0;
    Clock::time_point last{};
};

struct Server::JobRecord
{
    enum class State { Queued, Running, Done, Failed, Cancelled };

    std::string id;
    u64 seq = 0;
    std::string tenant;
    std::string label;
    /// Admission key for the tier-2 warm-set: machine + trace identity.
    std::string specKey;

    // Resolved submission fields (validated before admission).
    std::string machine;
    std::string workload;
    i64 scale = 0;
    std::string traceFile;
    std::string traceText;
    u64 maxCycles = 0;
    int retries = 0;
    bool lint = false;
    bool lintShed = false;
    i64 holdMs = 0;

    Clock::time_point submitTime{};
    Clock::time_point deadline{}; ///< epoch = none

    State state = State::Queued;
    sim::RunResult result;
    runner::JobOutcome outcome;

    static const char *
    stateName(State s)
    {
        switch (s) {
        case State::Queued:
            return "queued";
        case State::Running:
            return "running";
        case State::Done:
            return "done";
        case State::Failed:
            return "failed";
        case State::Cancelled:
            return "cancelled";
        }
        return "unknown";
    }
};

Server::Server(const ServeConfig &cfg)
    : cfg_(cfg), programCache_(cfg.programCacheMaxEntries)
{
    UFC_EXPECT(cfg_.workers >= 1, ConfigError,
               "ufc_serve needs at least one worker thread");
    UFC_EXPECT(cfg_.queueCapacity >= 1, ConfigError,
               "ufc_serve needs a queue capacity of at least 1");
    models_["ufc"] = std::make_shared<sim::UfcModel>();
    models_["sharp"] = std::make_shared<sim::SharpModel>();
    models_["strix"] = std::make_shared<sim::StrixModel>();
    models_["composed"] = std::make_shared<sim::ComposedModel>();
    startTime_ = Clock::now();
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    UFC_EXPECT(!cfg_.socketPath.empty(), ConfigError,
               "ufc_serve needs a socket path");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    UFC_EXPECT(cfg_.socketPath.size() < sizeof(addr.sun_path), ConfigError,
               "socket path '" << cfg_.socketPath
                               << "' exceeds the AF_UNIX limit of "
                               << sizeof(addr.sun_path) - 1 << " bytes");
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    UFC_EXPECT(fd >= 0, ConfigError,
               "socket() failed: " << std::strerror(errno));
    ::unlink(cfg_.socketPath.c_str()); // stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int e = errno;
        ::close(fd);
        UFC_THROW(ConfigError, "bind('" << cfg_.socketPath << "') failed: "
                                        << std::strerror(e));
    }
    if (::listen(fd, 128) != 0) {
        const int e = errno;
        ::close(fd);
        ::unlink(cfg_.socketPath.c_str());
        UFC_THROW(ConfigError,
                  "listen() failed: " << std::strerror(e));
    }
    listenFd_.store(fd, std::memory_order_release);

    acceptThread_ = std::thread(&Server::acceptLoop, this);
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back(&Server::workerLoop, this, i);
}

void
Server::beginDrain()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        draining_ = true;
    }
    queueCv_.notify_all();
    terminalCv_.notify_all();
}

bool
Server::drainRequested() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return draining_;
}

void
Server::awaitDrained()
{
    std::unique_lock<std::mutex> lk(mu_);
    terminalCv_.wait(lk, [&] {
        return stopping_ || (queue_.empty() && running_ == 0);
    });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        // Queued jobs that will never run settle as cancelled so the
        // final report accounts for every accepted job.
        for (const std::string &id : queue_) {
            auto it = records_.find(id);
            if (it == records_.end() ||
                it->second->state != JobRecord::State::Queued)
                continue;
            JobRecord &rec = *it->second;
            rec.state = JobRecord::State::Cancelled;
            rec.outcome.status = runner::JobStatus::Skipped;
            rec.outcome.attempts = 0;
            rec.outcome.errorKind = "Cancelled";
            rec.outcome.message = "daemon stopped before this job ran";
            terminalOrder_.push_back(id);
            ++stats_.cancelled;
        }
        queue_.clear();
        queueDepthGauge().set(0);
    }
    queueCv_.notify_all();
    terminalCv_.notify_all();

    // Claim the listening fd so the accept thread stops getting new
    // connections; shutdown() unblocks its in-flight accept().
    const int lfd = listenFd_.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();

    {
        std::unique_lock<std::mutex> lk(connMu_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        connCv_.wait(lk, [&] { return activeConns_ == 0; });
    }
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();

    if (!cfg_.socketPath.empty())
        ::unlink(cfg_.socketPath.c_str());
}

// ---------------------------------------------------------------------------
// Socket plumbing

void
Server::acceptLoop()
{
    for (;;) {
        const int lfd = listenFd_.load(std::memory_order_acquire);
        if (lfd < 0)
            return; // stop() already claimed the socket
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listening socket shut down by stop()
        }
        bool admit = false;
        int connsAfterAdmit = 0;
        {
            std::lock_guard<std::mutex> lk(connMu_);
            if (activeConns_ < cfg_.maxConnections) {
                ++activeConns_;
                connFds_.insert(fd);
                admit = true;
            }
            connsAfterAdmit = activeConns_;
        }
        if (!admit) {
            try {
                writeFrame(fd, errorResponse(
                                   "OverloadError", kCodeTooManyConns,
                                   "connection limit reached", 100.0)
                                   .dump());
            } catch (const Error &) {
            }
            ::close(fd);
            continue;
        }
        connGauge().set(connsAfterAdmit);
        // Detached: the epilogue below touches only connMu_-guarded
        // members, which stop() keeps alive until activeConns_ drains.
        std::thread([this, fd] {
            connectionLoop(fd);
            std::lock_guard<std::mutex> lk(connMu_);
            connFds_.erase(fd);
            ::close(fd);
            --activeConns_;
            connGauge().set(activeConns_);
            connCv_.notify_all();
        }).detach();
    }
}

void
Server::connectionLoop(int fd)
{
    std::string payload;
    for (;;) {
        try {
            if (!readFrame(fd, payload, cfg_.maxFrameBytes))
                return; // peer closed cleanly
        } catch (const OverloadError &e) {
            // Oversized length prefix: answer, then close — the stream
            // is desynchronized (the body was never read).
            protocolErrorCounter().inc();
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.protocolErrors;
            }
            try {
                writeFrame(fd, errorResponse(e.kind(), kCodeOversizedFrame,
                                             e.what())
                                   .dump());
            } catch (const Error &) {
            }
            return;
        } catch (const Error &) {
            // Truncated frame or I/O error: client died mid-request.
            protocolErrorCounter().inc();
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.protocolErrors;
            }
            return;
        }
        const std::string resp = handleRequestText(payload);
        try {
            writeFrame(fd, resp);
        } catch (const Error &) {
            return; // peer gone; the job (if admitted) still runs
        }
    }
}

// ---------------------------------------------------------------------------
// Request dispatch

std::string
Server::handleRequestText(const std::string &requestJson)
{
    try {
        const JsonValue req = parseJson(requestJson);
        const std::string op = req.getString("op");
        if (op == "submit")
            return handleSubmit(req).dump();
        if (op == "status")
            return handleStatus(req).dump();
        if (op == "result")
            return handleResult(req).dump();
        if (op == "cancel")
            return handleCancel(req).dump();
        if (op == "health")
            return handleHealth().dump();
        if (op == "metrics")
            return handleMetrics().dump();
        if (op == "drain")
            return handleDrain().dump();
        UFC_THROW(ConfigError, "unknown op '" << op << "'");
    } catch (const Error &e) {
        protocolErrorCounter().inc();
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.protocolErrors;
        }
        return errorResponse(e.kind(), kCodeBadRequest, e.what()).dump();
    } catch (const std::exception &e) {
        protocolErrorCounter().inc();
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.protocolErrors;
        }
        return errorResponse("Error", kCodeBadRequest, e.what()).dump();
    }
}

JsonValue
Server::handleSubmit(const JsonValue &req)
{
    const JsonValue *jobv = req.find("job");
    UFC_EXPECT(jobv != nullptr && jobv->isObject(), ConfigError,
               "submit needs a \"job\" object");

    // Validate and resolve the job spec before touching admission state;
    // a malformed spec is the client's fault, not overload.
    auto rec = std::make_shared<JobRecord>();
    rec->tenant = req.getString("tenant", "default");
    rec->machine = jobv->getString("machine", "ufc");
    if (models_.find(rec->machine) == models_.end())
        return errorResponse("ConfigError", kCodeBadJob,
                             "unknown machine '" + rec->machine +
                                 "' (ufc|sharp|strix|composed)");
    rec->workload = jobv->getString("workload");
    rec->traceFile = jobv->getString("trace_file");
    rec->traceText = jobv->getString("trace_text");
    const int sources = (rec->workload.empty() ? 0 : 1) +
                        (rec->traceFile.empty() ? 0 : 1) +
                        (rec->traceText.empty() ? 0 : 1);
    if (sources != 1)
        return errorResponse("ConfigError", kCodeBadJob,
                             "job needs exactly one of workload, "
                             "trace_file, trace_text");
    if (!rec->workload.empty() && !knownWorkload(rec->workload))
        return errorResponse("ConfigError", kCodeBadJob,
                             "unknown workload '" + rec->workload + "'");
    rec->scale = jobv->getInt("scale", 0);
    if (rec->scale < 0 || rec->scale > 1000000)
        return errorResponse("ConfigError", kCodeBadJob,
                             "scale out of range [0, 1e6]");
    const i64 maxCycles = jobv->getInt("max_cycles", 0);
    if (maxCycles < 0)
        return errorResponse("ConfigError", kCodeBadJob,
                             "max_cycles must be >= 0");
    rec->maxCycles = static_cast<u64>(maxCycles);
    const i64 retries = jobv->getInt("retries", cfg_.maxRetries);
    if (retries < 0 || retries > 10)
        return errorResponse("ConfigError", kCodeBadJob,
                             "retries out of range [0, 10]");
    rec->retries = static_cast<int>(retries);
    rec->holdMs = jobv->getInt("hold_ms", 0);
    if (rec->holdMs < 0 || rec->holdMs > 30000)
        return errorResponse("ConfigError", kCodeBadJob,
                             "hold_ms out of range [0, 30000]");
    const double deadlineMs =
        jobv->getDouble("deadline_ms", cfg_.defaultDeadlineMs);
    if (deadlineMs < 0.0 || deadlineMs > 3600000.0)
        return errorResponse("ConfigError", kCodeBadJob,
                             "deadline_ms out of range [0, 3.6e6]");
    const bool wantLint = jobv->getBool("lint", cfg_.lintPreflight);

    if (!rec->workload.empty())
        rec->specKey = rec->machine + "|w:" + rec->workload + ":" +
                       std::to_string(rec->scale);
    else if (!rec->traceFile.empty())
        rec->specKey = rec->machine + "|f:" + rec->traceFile;
    else
        rec->specKey = rec->machine +
                       "|t:" + std::to_string(fnv1a64(rec->traceText));

    const Clock::time_point now = Clock::now();

    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ || draining_) {
        ++stats_.rejected;
        rejectedCounter().inc();
        return errorResponse("OverloadError", kCodeDraining,
                             "daemon is draining; no new jobs", -1.0);
    }

    // Per-tenant token bucket: an aggressive client starves only itself.
    TokenBucket *bucket = nullptr;
    if (cfg_.tenantBurst > 0.0) {
        auto it = tenants_.find(rec->tenant);
        if (it == tenants_.end()) {
            auto b = std::make_unique<TokenBucket>();
            b->tokens = cfg_.tenantBurst;
            b->last = now;
            it = tenants_.emplace(rec->tenant, std::move(b)).first;
        }
        bucket = it->second.get();
        const double dt =
            std::chrono::duration<double>(now - bucket->last).count();
        bucket->last = now;
        bucket->tokens = std::min(
            cfg_.tenantBurst,
            bucket->tokens + dt * cfg_.tenantRatePerSec);
        if (bucket->tokens < 1.0) {
            ++stats_.rateLimited;
            ++stats_.rejected;
            rejectedCounter().inc();
            const double waitMs =
                cfg_.tenantRatePerSec > 0.0
                    ? (1.0 - bucket->tokens) / cfg_.tenantRatePerSec *
                          1000.0
                    : 1000.0;
            return errorResponse(
                "OverloadError", kCodeRateLimited,
                "tenant '" + rec->tenant + "' is over its rate",
                std::max(1.0, waitMs));
        }
    }

    const int tier = tierLocked();
    tierGauge().set(tier);
    if (tier >= 3) {
        ++stats_.shed;
        ++stats_.rejected;
        shedCounter().inc();
        rejectedCounter().inc();
        return errorResponse("OverloadError", kCodeQueueFull,
                             "admission queue is full",
                             retryAfterMsLocked());
    }
    if (tier >= 2 && warmSpecs_.find(rec->specKey) == warmSpecs_.end()) {
        ++stats_.shed;
        ++stats_.rejected;
        shedCounter().inc();
        rejectedCounter().inc();
        return errorResponse(
            "OverloadError", kCodeShedCompile,
            "degraded: only warm (already-compiled) specs are admitted",
            retryAfterMsLocked());
    }
    rec->lint = wantLint && tier < 1;
    rec->lintShed = wantLint && !rec->lint;
    if (rec->lintShed)
        ++stats_.lintShed;

    if (bucket != nullptr)
        bucket->tokens -= 1.0;

    rec->seq = nextId_++;
    rec->id = "job-" + std::to_string(rec->seq);
    rec->label = jobv->getString("label", rec->id);
    rec->result.label = rec->label; // placeholder until the run fills it
    rec->submitTime = now;
    if (deadlineMs > 0.0)
        rec->deadline = now + std::chrono::microseconds(static_cast<i64>(
                                  deadlineMs * 1000.0));

    records_[rec->id] = rec;
    queue_.push_back(rec->id);
    ++stats_.submitted;
    submittedCounter().inc();
    queueDepthGauge().set(static_cast<i64>(queue_.size()));
    queueCv_.notify_one();

    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("id", JsonValue::makeString(rec->id));
    resp.set("queue_depth",
             JsonValue::makeInt(static_cast<i64>(queue_.size())));
    resp.set("tier", JsonValue::makeInt(tier));
    if (rec->lintShed)
        resp.set("lint_shed", JsonValue::makeBool(true));
    return resp;
}

JsonValue
Server::handleStatus(const JsonValue &req)
{
    const std::string id = req.getString("id");
    std::lock_guard<std::mutex> lk(mu_);
    auto it = records_.find(id);
    if (it == records_.end())
        return errorResponse("ConfigError", kCodeUnknownId,
                             "unknown or expired job id '" + id + "'");
    const JobRecord &rec = *it->second;
    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("id", JsonValue::makeString(rec.id));
    resp.set("state", JsonValue::makeString(JobRecord::stateName(rec.state)));
    if (rec.state == JobRecord::State::Done ||
        rec.state == JobRecord::State::Failed ||
        rec.state == JobRecord::State::Cancelled) {
        resp.set("status", JsonValue::makeString(
                               runner::jobStatusName(rec.outcome.status)));
        resp.set("attempts", JsonValue::makeInt(rec.outcome.attempts));
        if (!rec.outcome.errorKind.empty())
            resp.set("error_kind",
                     JsonValue::makeString(rec.outcome.errorKind));
    }
    return resp;
}

JsonValue
Server::handleResult(const JsonValue &req)
{
    const std::string id = req.getString("id");
    const bool wait = req.getBool("wait", false);
    const double timeoutMs =
        std::min(req.getDouble("timeout_ms", 30000.0), 300000.0);

    std::unique_lock<std::mutex> lk(mu_);
    auto it = records_.find(id);
    if (it == records_.end())
        return errorResponse("ConfigError", kCodeUnknownId,
                             "unknown or expired job id '" + id + "'");
    std::shared_ptr<JobRecord> rec = it->second;

    auto terminal = [&] {
        return rec->state == JobRecord::State::Done ||
               rec->state == JobRecord::State::Failed ||
               rec->state == JobRecord::State::Cancelled;
    };
    if (!terminal() && wait) {
        const auto until =
            Clock::now() + std::chrono::microseconds(static_cast<i64>(
                               std::max(0.0, timeoutMs) * 1000.0));
        terminalCv_.wait_until(lk, until,
                               [&] { return terminal() || stopping_; });
    }
    if (!terminal())
        return errorResponse("OverloadError", kCodeWaitTimeout,
                             "job '" + id + "' is still " +
                                 JobRecord::stateName(rec->state),
                             1000.0);

    if (rec->state == JobRecord::State::Done) {
        // Round-trip the run's canonical serialization through our own
        // parser so the embedded object is byte-stable dump-to-dump.
        const std::string resultJson = rec->result.toJson();
        JsonValue resp = JsonValue::makeObject();
        resp.set("ok", JsonValue::makeBool(true));
        resp.set("id", JsonValue::makeString(id));
        resp.set("state", JsonValue::makeString("done"));
        resp.set("status", JsonValue::makeString(
                               runner::jobStatusName(rec->outcome.status)));
        resp.set("attempts", JsonValue::makeInt(rec->outcome.attempts));
        resp.set("result", parseJson(resultJson));
        return resp;
    }

    const char *code = rec->state == JobRecord::State::Cancelled
                           ? "cancelled"
                           : kCodeJobFailed;
    JsonValue resp = errorResponse(rec->outcome.errorKind.empty()
                                       ? "SimError"
                                       : rec->outcome.errorKind,
                                   code, rec->outcome.message);
    resp.set("id", JsonValue::makeString(id));
    resp.set("state", JsonValue::makeString(JobRecord::stateName(rec->state)));
    resp.set("status", JsonValue::makeString(
                           runner::jobStatusName(rec->outcome.status)));
    resp.set("attempts", JsonValue::makeInt(rec->outcome.attempts));
    if (!rec->outcome.recentEvents.empty()) {
        JsonValue ev = JsonValue::makeArray();
        for (const std::string &line : rec->outcome.recentEvents)
            ev.push(JsonValue::makeString(line));
        resp.set("recent_events", std::move(ev));
    }
    return resp;
}

JsonValue
Server::handleCancel(const JsonValue &req)
{
    const std::string id = req.getString("id");
    std::lock_guard<std::mutex> lk(mu_);
    auto it = records_.find(id);
    if (it == records_.end())
        return errorResponse("ConfigError", kCodeUnknownId,
                             "unknown or expired job id '" + id + "'");
    JobRecord &rec = *it->second;
    if (rec.state != JobRecord::State::Queued)
        return errorResponse("ConfigError", kCodeNotCancellable,
                             "job '" + id + "' is " +
                                 JobRecord::stateName(rec.state) +
                                 "; only queued jobs can be cancelled");
    rec.state = JobRecord::State::Cancelled;
    rec.outcome.status = runner::JobStatus::Skipped;
    rec.outcome.attempts = 0;
    rec.outcome.errorKind = "Cancelled";
    rec.outcome.message = "cancelled by client";
    // The id stays in queue_; workers skip cancelled records on pop.
    terminalOrder_.push_back(id);
    ++stats_.cancelled;
    terminalCv_.notify_all();

    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("id", JsonValue::makeString(id));
    resp.set("state", JsonValue::makeString("cancelled"));
    return resp;
}

JsonValue
Server::handleHealth()
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("status", JsonValue::makeString(
                           draining_ ? "draining" : "serving"));
    resp.set("protocol", JsonValue::makeInt(kProtocolVersion));
    resp.set("uptime_s",
             JsonValue::makeDouble(
                 std::chrono::duration<double>(Clock::now() - startTime_)
                     .count()));
    resp.set("queue_depth",
             JsonValue::makeInt(static_cast<i64>(queue_.size())));
    resp.set("queue_capacity",
             JsonValue::makeInt(static_cast<i64>(cfg_.queueCapacity)));
    resp.set("running", JsonValue::makeInt(running_));
    resp.set("workers", JsonValue::makeInt(cfg_.workers));
    resp.set("tier", JsonValue::makeInt(tierLocked()));
    resp.set("ewma_job_ms", JsonValue::makeDouble(ewmaJobMs_));

    JsonValue st = JsonValue::makeObject();
    st.set("submitted", JsonValue::makeInt(static_cast<i64>(
                            stats_.submitted)));
    st.set("completed", JsonValue::makeInt(static_cast<i64>(
                            stats_.completed)));
    st.set("failed", JsonValue::makeInt(static_cast<i64>(stats_.failed)));
    st.set("cancelled",
           JsonValue::makeInt(static_cast<i64>(stats_.cancelled)));
    st.set("shed", JsonValue::makeInt(static_cast<i64>(stats_.shed)));
    st.set("rate_limited",
           JsonValue::makeInt(static_cast<i64>(stats_.rateLimited)));
    st.set("rejected",
           JsonValue::makeInt(static_cast<i64>(stats_.rejected)));
    st.set("lint_shed",
           JsonValue::makeInt(static_cast<i64>(stats_.lintShed)));
    st.set("expired",
           JsonValue::makeInt(static_cast<i64>(stats_.expired)));
    st.set("protocol_errors",
           JsonValue::makeInt(static_cast<i64>(stats_.protocolErrors)));
    resp.set("stats", std::move(st));

    JsonValue caches = JsonValue::makeObject();
    caches.set("program_hits", JsonValue::makeInt(static_cast<i64>(
                                   programCache_.hits())));
    caches.set("program_compiles", JsonValue::makeInt(static_cast<i64>(
                                       programCache_.compiles())));
    caches.set("program_evictions", JsonValue::makeInt(static_cast<i64>(
                                        programCache_.evictions())));
    caches.set("phase_hits", JsonValue::makeInt(static_cast<i64>(
                                 phaseCache_.hits())));
    caches.set("phase_misses", JsonValue::makeInt(static_cast<i64>(
                                   phaseCache_.misses())));
    resp.set("caches", std::move(caches));
    return resp;
}

JsonValue
Server::handleMetrics()
{
    std::ostringstream os;
    metrics::writePrometheus(os);
    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("prometheus", JsonValue::makeString(os.str()));
    return resp;
}

JsonValue
Server::handleDrain()
{
    beginDrain();
    std::lock_guard<std::mutex> lk(mu_);
    JsonValue resp = JsonValue::makeObject();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("draining", JsonValue::makeBool(true));
    resp.set("pending", JsonValue::makeInt(static_cast<i64>(
                            queue_.size() + running_)));
    return resp;
}

// ---------------------------------------------------------------------------
// Job execution

void
Server::workerLoop(int workerIndex)
{
    (void)workerIndex;
    // Claim pool-worker status: nested kernel fan-out inside the models
    // runs inline, so the daemon's true concurrency is cfg_.workers (see
    // parallel.h WorkerScope).
    ThreadPool::WorkerScope scope;
    for (;;) {
        std::shared_ptr<JobRecord> rec;
        {
            std::unique_lock<std::mutex> lk(mu_);
            queueCv_.wait(lk, [&] {
                return stopping_ || draining_ || !queue_.empty();
            });
            if (stopping_)
                return;
            if (queue_.empty()) {
                if (draining_)
                    return;
                continue;
            }
            const std::string id = queue_.front();
            queue_.pop_front();
            queueDepthGauge().set(static_cast<i64>(queue_.size()));
            auto it = records_.find(id);
            if (it == records_.end() ||
                it->second->state != JobRecord::State::Queued) {
                // Cancelled while queued (or expired): nothing to run.
                if (queue_.empty() && running_ == 0)
                    terminalCv_.notify_all();
                continue;
            }
            rec = it->second;
            rec->state = JobRecord::State::Running;
            ++running_;
        }
        executeJob(rec);
        finishJob(rec);
    }
}

void
Server::executeJob(const std::shared_ptr<JobRecord> &rec)
{
    // Intentional service-time inflation for backpressure/drain tests;
    // sliced so stop() is never held up for long.
    for (i64 held = 0; held < rec->holdMs; held += 10) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stopping_)
                break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<i64>(10, rec->holdMs - held)));
    }

    sim::RunResult result;
    result.label = rec->label;
    runner::JobOutcome outcome;

    // The admission-time deadline covers queue wait: a request that
    // expired while queued fails fast without burning a worker on it.
    if (rec->deadline != Clock::time_point{} &&
        Clock::now() >= rec->deadline) {
        outcome.status = runner::JobStatus::TimedOut;
        outcome.attempts = 0;
        outcome.errorKind = "SimError";
        outcome.message = "deadline expired while queued";
    } else {
        try {
            runner::Job job;
            job.label = rec->label;
            job.model = models_.at(rec->machine);
            if (!rec->workload.empty()) {
                const std::string key =
                    "w:" + rec->workload + ":" +
                    std::to_string(rec->scale);
                {
                    std::lock_guard<std::mutex> lk(traceMu_);
                    auto it = traceCache_.find(key);
                    if (it != traceCache_.end())
                        job.trace = it->second;
                }
                if (!job.trace) {
                    auto tr = std::make_shared<const trace::Trace>(
                        makeWorkloadTrace(rec->workload, rec->scale));
                    std::lock_guard<std::mutex> lk(traceMu_);
                    // First inserter wins; a racing generation built the
                    // identical trace anyway.
                    auto ins = traceCache_.emplace(key, tr);
                    job.trace = ins.first->second;
                }
            } else if (!rec->traceFile.empty()) {
                // Loaded inside the job's isolation: a corrupt file
                // fails only this job.
                job.traceFile = rec->traceFile;
            } else {
                std::istringstream is(rec->traceText);
                job.trace = std::make_shared<const trace::Trace>(
                    trace::readTrace(is));
            }
            job.options.label = rec->label;
            job.options.maxCycles = rec->maxCycles;
            job.options.lintTraces = rec->lint;
            if (rec->deadline != Clock::time_point{})
                job.options.hostDeadline = rec->deadline;

            runner::RunnerConfig rc;
            rc.maxRetries = rec->retries;
            rc.retryBackoff = cfg_.retryBackoff;
            rc.phaseCache = cfg_.usePhaseCache ? &phaseCache_ : nullptr;
            const runner::ExperimentRunner jobRunner(rc);
            jobRunner.runJob(job, static_cast<std::size_t>(rec->seq),
                             result, outcome, &programCache_);
        } catch (const Error &e) {
            // Trace generation / parse faults outside runJob's isolation.
            outcome.status = runner::JobStatus::Failed;
            outcome.attempts = 1;
            outcome.errorKind = e.kind();
            outcome.message = e.what();
        }
    }

    std::lock_guard<std::mutex> lk(mu_);
    rec->result = std::move(result);
    rec->outcome = std::move(outcome);
}

void
Server::finishJob(const std::shared_ptr<JobRecord> &rec)
{
    std::lock_guard<std::mutex> lk(mu_);
    rec->state = rec->outcome.ok() ? JobRecord::State::Done
                                   : JobRecord::State::Failed;
    if (rec->outcome.ok()) {
        ++stats_.completed;
        completedCounter().inc();
        warmSpecs_.insert(rec->specKey); // tier-2 admission set
    } else {
        ++stats_.failed;
        failedJobsCounter().inc();
    }
    --running_;

    const double jobMs = msSince(rec->submitTime, Clock::now());
    ewmaJobMs_ = ewmaJobMs_ <= 0.0 ? jobMs
                                   : 0.8 * ewmaJobMs_ + 0.2 * jobMs;
    latencyHistogram().record(static_cast<u64>(jobMs * 1000.0));

    terminalOrder_.push_back(rec->id);
    // Bounded retention: a long-lived daemon must not accumulate every
    // result it ever produced.
    while (terminalOrder_.size() > cfg_.resultRetention) {
        records_.erase(terminalOrder_.front());
        terminalOrder_.pop_front();
        ++stats_.expired;
    }
    terminalCv_.notify_all();
}

// ---------------------------------------------------------------------------
// Introspection

double
Server::retryAfterMsLocked() const
{
    const double perJobMs = ewmaJobMs_ > 0.0 ? ewmaJobMs_ : 100.0;
    const double depth =
        static_cast<double>(queue_.size()) + running_;
    const double est =
        depth * perJobMs / std::max(1, cfg_.workers);
    return std::min(10000.0, std::max(25.0, est));
}

int
Server::tierLocked() const
{
    const double occ = cfg_.queueCapacity > 0
                           ? static_cast<double>(queue_.size()) /
                                 static_cast<double>(cfg_.queueCapacity)
                           : 0.0;
    if (occ >= 1.0)
        return 3;
    if (occ >= cfg_.shedCompileAt)
        return 2;
    if (occ >= cfg_.shedLintAt)
        return 1;
    return 0;
}

runner::BatchResult
Server::reportBatch() const
{
    std::lock_guard<std::mutex> lk(mu_);
    runner::BatchResult batch;
    batch.results.reserve(terminalOrder_.size());
    batch.outcomes.reserve(terminalOrder_.size());
    for (const std::string &id : terminalOrder_) {
        auto it = records_.find(id);
        if (it == records_.end())
            continue;
        batch.results.push_back(it->second->result);
        batch.outcomes.push_back(it->second->outcome);
    }
    return batch;
}

ServeStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

int
Server::degradeTier() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return tierLocked();
}

} // namespace serve
} // namespace ufc
