/**
 * @file
 * Blocking client for the ufc_serve protocol: connect to the daemon's
 * AF_UNIX socket, exchange length-prefixed JSON frames, and wrap the
 * common request shapes (submit / wait-for-result / health / drain).
 *
 * Used by bench/ufc_loadgen, the lifecycle tests, and anything else
 * that wants to talk to a running daemon in-process.  `sendRaw()`
 * exposes the socket for chaos tests that need to write deliberately
 * malformed bytes (truncated frames, hostile length prefixes).
 */

#ifndef UFC_SERVE_CLIENT_H
#define UFC_SERVE_CLIENT_H

#include <string>

#include "serve/json.h"
#include "serve/protocol.h"

namespace ufc {
namespace serve {

/** One connection to a ufc_serve daemon.  Not thread-safe: use one
 *  Client per client thread. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to the daemon's socket; throws ufc::ConfigError when the
     *  daemon is not there.  `retries` extra attempts (100 ms apart)
     *  cover the daemon's startup window. */
    void connect(const std::string &socketPath, int retries = 0);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Send one request document and return the parsed response.
     * Throws ufc::ConfigError on transport failure (daemon gone,
     * malformed response).  A protocol-level error response is returned
     * as-is — inspect `ok` — it is data, not a transport fault.
     */
    JsonValue request(const JsonValue &req);

    /** request() from serialized text (convenience for tests). */
    JsonValue requestText(const std::string &requestJson);

    /** Submit a job object ({workload|trace_file|trace_text, ...});
     *  returns the full response (check `ok`, read `id`). */
    JsonValue submit(const JsonValue &job,
                     const std::string &tenant = "");

    /** Blocking result fetch: {op:result, id, wait:true, timeout_ms}. */
    JsonValue waitResult(const std::string &id,
                         double timeoutMs = 30000.0);

    JsonValue health();
    JsonValue drain();

    /** Write raw bytes to the socket, bypassing framing — chaos tests
     *  only.  Throws ufc::ConfigError on a transport error. */
    void sendRaw(const std::string &bytes);

    /** The raw socket fd (chaos tests); -1 when not connected. */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    u32 maxFrameBytes_ = kDefaultMaxFrameBytes;
};

} // namespace serve
} // namespace ufc

#endif // UFC_SERVE_CLIENT_H
