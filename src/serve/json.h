/**
 * @file
 * Minimal JSON value model and recursive-descent parser for the
 * ufc_serve wire protocol.
 *
 * The repo has always *written* JSON (common/json.h and the report
 * writers); the daemon is the first component that must *read* it —
 * from untrusted clients.  The parser is therefore strict and bounded:
 * it rejects trailing garbage, caps nesting depth, validates string
 * escapes (including \uXXXX with surrogate pairs), and throws
 * ufc::ConfigError with a byte-offset diagnosis on any malformed input
 * — never aborts, never reads out of bounds — so a hostile payload
 * costs the daemon one error response, not the process.
 *
 * The value model is deliberately small: objects keep insertion order
 * in a flat vector (the protocol's objects have a handful of keys, so
 * linear lookup beats a map), and numbers carry both an i64 and a
 * double view, preserving 64-bit integers exactly.
 */

#ifndef UFC_SERVE_JSON_H
#define UFC_SERVE_JSON_H

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ufc {
namespace serve {

/** One parsed JSON value (tree-owned; copyable). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    JsonValue() = default;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeInt(i64 v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isString() const { return type_ == Type::String; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }
    bool isBool() const { return type_ == Type::Bool; }

    /** Typed accessors; throw ufc::ConfigError on a type mismatch. */
    bool asBool() const;
    i64 asInt() const;       ///< Double values must be integral.
    double asDouble() const; ///< Int values widen.
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    asObject() const;

    /** Object field lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Convenience lookups with defaults (objects only; a present field
     *  of the wrong type throws ufc::ConfigError naming the key). */
    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    i64 getInt(const std::string &key, i64 dflt = 0) const;
    double getDouble(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /** Mutators for building response/request documents. */
    void set(const std::string &key, JsonValue v); ///< object append/replace
    void push(JsonValue v);                        ///< array append

    /** Serialize (compact, no whitespace; strings escaped via
     *  common/json.h). */
    std::string dump() const;

  private:
    Type type_ = Type::Null;
    bool b_ = false;
    i64 i_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** Maximum nesting depth parseJson() accepts. */
inline constexpr int kJsonMaxDepth = 64;

/**
 * Parse exactly one JSON document from `text` (the whole string must be
 * consumed, modulo trailing whitespace).  Throws ufc::ConfigError with
 * a byte offset on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace serve
} // namespace ufc

#endif // UFC_SERVE_JSON_H
