/**
 * @file
 * Blocking ufc_serve client implementation.
 */

#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace ufc {
namespace serve {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), maxFrameBytes_(other.maxFrameBytes_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        maxFrameBytes_ = other.maxFrameBytes_;
        other.fd_ = -1;
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::connect(const std::string &socketPath, int retries)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    UFC_EXPECT(socketPath.size() < sizeof(addr.sun_path), ConfigError,
               "socket path '" << socketPath
                               << "' exceeds the AF_UNIX limit");
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    int lastErrno = 0;
    for (int attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        UFC_EXPECT(fd >= 0, ConfigError,
                   "socket() failed: " << std::strerror(errno));
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return;
        }
        lastErrno = errno;
        ::close(fd);
    }
    UFC_THROW(ConfigError, "cannot connect to ufc_serve at '"
                               << socketPath
                               << "': " << std::strerror(lastErrno));
}

JsonValue
Client::request(const JsonValue &req)
{
    return requestText(req.dump());
}

JsonValue
Client::requestText(const std::string &requestJson)
{
    UFC_EXPECT(fd_ >= 0, ConfigError, "client is not connected");
    writeFrame(fd_, requestJson);
    std::string payload;
    UFC_EXPECT(readFrame(fd_, payload, maxFrameBytes_), ConfigError,
               "daemon closed the connection without responding");
    return parseJson(payload);
}

JsonValue
Client::submit(const JsonValue &job, const std::string &tenant)
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("submit"));
    if (!tenant.empty())
        req.set("tenant", JsonValue::makeString(tenant));
    req.set("job", job);
    return request(req);
}

JsonValue
Client::waitResult(const std::string &id, double timeoutMs)
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("result"));
    req.set("id", JsonValue::makeString(id));
    req.set("wait", JsonValue::makeBool(true));
    req.set("timeout_ms", JsonValue::makeDouble(timeoutMs));
    return request(req);
}

JsonValue
Client::health()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("health"));
    return request(req);
}

JsonValue
Client::drain()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("drain"));
    return request(req);
}

void
Client::sendRaw(const std::string &bytes)
{
    UFC_EXPECT(fd_ >= 0, ConfigError, "client is not connected");
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            UFC_THROW(ConfigError,
                      "raw send failed: " << std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace serve
} // namespace ufc
