/**
 * @file
 * CKKS parameter set definitions.
 */

#include "ckks/params.h"

namespace ufc {
namespace ckks {

double
CkksParams::logPQ() const
{
    return static_cast<double>(firstModBits) +
           static_cast<double>(levels - 1) * scaleBits +
           static_cast<double>(specialLimbs) * specialBits;
}

CkksParams
CkksParams::c1()
{
    // N = 2^16, dnum = 2, logPQ ~ 1785 (36 limbs x ~49.6 bits).
    CkksParams p;
    p.name = "C1";
    p.ringDim = 1ULL << 16;
    p.levels = 24;
    p.dnum = 2;
    p.specialLimbs = 12;
    p.firstModBits = 55;
    p.scaleBits = 49;
    p.specialBits = 50;
    return p;
}

CkksParams
CkksParams::c2()
{
    // N = 2^16, dnum = 3, logPQ ~ 1764 (Table III).
    CkksParams p;
    p.name = "C2";
    p.ringDim = 1ULL << 16;
    p.levels = 27;
    p.dnum = 3;
    p.specialLimbs = 9;
    p.firstModBits = 55;
    p.scaleBits = 48;
    p.specialBits = 50;
    return p;
}

CkksParams
CkksParams::c3()
{
    // N = 2^16, dnum = 4, logPQ ~ 1679 (Table III).
    CkksParams p;
    p.name = "C3";
    p.ringDim = 1ULL << 16;
    p.levels = 28;
    p.dnum = 4;
    p.specialLimbs = 7;
    p.firstModBits = 55;
    p.scaleBits = 47;
    p.specialBits = 50;
    return p;
}

CkksParams
CkksParams::testFast()
{
    CkksParams p;
    p.name = "TEST";
    p.ringDim = 1ULL << 12;
    p.levels = 6;
    p.dnum = 3;
    p.specialLimbs = 2;
    p.firstModBits = 55;
    p.scaleBits = 40;
    p.specialBits = 55;
    return p;
}

CkksParams
CkksParams::testDeep()
{
    CkksParams p;
    p.name = "TEST-DEEP";
    p.ringDim = 1ULL << 13;
    p.levels = 12;
    p.dnum = 4;
    p.specialLimbs = 3;
    p.firstModBits = 58;
    p.scaleBits = 45;
    p.specialBits = 58;
    return p;
}

} // namespace ckks
} // namespace ufc
