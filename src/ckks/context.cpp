/**
 * @file
 * CKKS context implementation.
 */

#include "ckks/context.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "math/primes.h"

namespace ufc {
namespace ckks {

CkksContext::CkksContext(const CkksParams &params)
    : params_(params),
      ring_(std::make_unique<RingContext>(params.ringDim)),
      scale_(std::ldexp(1.0, params.scaleBits))
{
    const u64 twoN = 2 * params.ringDim;
    UFC_CHECK(params.levels >= 1 && params.dnum >= 1, "bad level config");
    alpha_ = (params.levels + params.dnum - 1) / params.dnum;
    UFC_CHECK(params.specialLimbs >= alpha_,
              "special modulus P must cover one digit (K >= alpha)");

    // q0 and the special primes share a bit size; allocate them from one
    // skip sequence so they are all distinct.  Scale primes come from a
    // separate bit size.
    qChain_.push_back(findNttPrime(params.firstModBits, twoN, 0));
    int bigSkip = (params.firstModBits == params.specialBits) ? 1 : 0;
    for (int j = 0; j < params.specialLimbs; ++j)
        pChain_.push_back(
            findNttPrime(params.specialBits, twoN, bigSkip + j));
    int scaleSkip = 0;
    if (params.scaleBits == params.firstModBits ||
        params.scaleBits == params.specialBits) {
        scaleSkip = bigSkip + params.specialLimbs;
    }
    for (int i = 1; i < params.levels; ++i)
        qChain_.push_back(
            findNttPrime(params.scaleBits, twoN, scaleSkip + i - 1));

    // ModDown precomputation: [P^-1] mod q_i.
    pInvModQ_.resize(params.levels);
    for (int i = 0; i < params.levels; ++i) {
        const Modulus qi(qChain_[i]);
        u64 prod = 1;
        for (u64 p : pChain_)
            prod = qi.mul(prod, p % qChain_[i]);
        pInvModQ_[i] = invMod(prod, qChain_[i]);
    }

    // Digit precomputation: for each full-level digit d and each limb i
    // inside it, [ (Q/Qtilde_d)^-1 ] mod q_i.
    qHatInvDigit_.resize(params.dnum);
    for (int d = 0; d < params.dnum; ++d) {
        qHatInvDigit_[d].assign(params.levels, 0);
        const int lo = d * alpha_;
        const int hi = std::min((d + 1) * alpha_, params.levels);
        for (int i = lo; i < hi; ++i) {
            const Modulus qi(qChain_[i]);
            u64 prod = 1;
            for (int j = 0; j < params.levels; ++j) {
                if (j < lo || j >= hi)
                    prod = qi.mul(prod, qChain_[j] % qChain_[i]);
            }
            qHatInvDigit_[d][i] = invMod(prod, qChain_[i]);
        }
    }

    // Warm the shared twiddle cache for the whole modulus chain up
    // front (tables build in parallel), so the first homomorphic op
    // doesn't pay lazy NTT-table construction limb by limb.
    std::vector<u64> allPrimes = qChain_;
    allPrimes.insert(allPrimes.end(), pChain_.begin(), pChain_.end());
    parallelFor(allPrimes.size(),
                [&](std::size_t i) { ring_->table(allPrimes[i]); });
}

std::vector<u64>
CkksContext::qBasis(int limbs) const
{
    UFC_CHECK(limbs >= 1 && limbs <= params_.levels, "bad limb count");
    return {qChain_.begin(), qChain_.begin() + limbs};
}

std::vector<u64>
CkksContext::qpBasis(int limbs) const
{
    auto basis = qBasis(limbs);
    basis.insert(basis.end(), pChain_.begin(), pChain_.end());
    return basis;
}

int
CkksContext::digitsForLimbs(int limbs) const
{
    return (limbs + alpha_ - 1) / alpha_;
}

std::pair<int, int>
CkksContext::digitRange(int d, int limbs) const
{
    const int lo = d * alpha_;
    const int hi = std::min((d + 1) * alpha_, limbs);
    UFC_CHECK(lo < hi, "empty key-switching digit");
    return {lo, hi};
}

u64
CkksContext::qLastInvModQ(int limbs, int i) const
{
    UFC_CHECK(i < limbs - 1, "rescale target limb out of range");
    return invMod(qChain_[limbs - 1] % qChain_[i], qChain_[i]);
}

u64
CkksContext::qHatDigitMod(int d, u64 prime) const
{
    const Modulus p(prime);
    const int lo = d * alpha_;
    const int hi = std::min((d + 1) * alpha_, params_.levels);
    u64 prod = 1;
    for (int j = 0; j < params_.levels; ++j) {
        if (j < lo || j >= hi)
            prod = p.mul(prod, qChain_[j] % prime);
    }
    return prod;
}

RnsPoly
CkksContext::makePoly(int limbs, PolyForm form) const
{
    return RnsPoly(ring_.get(), qBasis(limbs), form);
}

RnsPoly
CkksContext::makePolyQP(int limbs, PolyForm form) const
{
    return RnsPoly(ring_.get(), qpBasis(limbs), form);
}

} // namespace ckks
} // namespace ufc
