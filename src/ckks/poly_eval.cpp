/**
 * @file
 * Homomorphic Chebyshev evaluation implementation.
 */

#include "ckks/poly_eval.h"

#include <bit>
#include <cmath>

#include "ckks/chebyshev.h"
#include "common/check.h"

namespace ufc {
namespace ckks {

Ciphertext
ChebyshevEvaluator::matchScale(const Ciphertext &ct, int limbs,
                               double scale) const
{
    Ciphertext out = eval_->dropToLimbs(ct, limbs + 1 <= ct.limbs
                                                ? limbs + 1
                                                : ct.limbs);
    UFC_CHECK(out.limbs >= 2, "matchScale needs a spare level");
    // Multiply by 1.0 encoded at the ratio that lands exactly on the
    // target scale after one rescale.
    const double qLast = static_cast<double>(ctx_->qAt(out.limbs - 1));
    const double ptScale = scale * qLast / out.scale;
    UFC_CHECK(ptScale > 0.5, "cannot reach target scale");
    out = eval_->mulPlain(out, encoder_->encodeConstant(1.0, out.limbs,
                                                        ptScale));
    out = eval_->rescale(out);
    if (out.limbs > limbs)
        out = eval_->dropToLimbs(out, limbs);
    out.scale = scale; // exact by construction up to double rounding
    return out;
}

ChebyshevEvaluator::Basis
ChebyshevEvaluator::buildBasis(const Ciphertext &u, int baseDegree,
                               int maxDegree) const
{
    Basis basis;
    basis.cheb.resize(2 * maxDegree + 2);
    basis.present.assign(2 * maxDegree + 2, false);

    auto set = [&](int k, Ciphertext ct) {
        basis.cheb[k] = std::move(ct);
        basis.present[k] = true;
    };
    set(1, u);

    // T_{2k} = 2 T_k^2 - 1, T_{2k+1} = 2 T_{k+1} T_k - T_1.
    auto product = [&](int a, int b) {
        Ciphertext ca = basis.cheb[a];
        Ciphertext cb = basis.cheb[b];
        const int limbs = std::min(ca.limbs, cb.limbs);
        ca = eval_->dropToLimbs(ca, limbs);
        cb = eval_->dropToLimbs(cb, limbs);
        Ciphertext prod = eval_->multiply(ca, cb, *relin_);
        prod = eval_->add(prod, prod); // 2 T_a T_b
        return eval_->rescale(prod);
    };

    for (int k = 2; k <= baseDegree; ++k) {
        if (basis.present[k])
            continue;
        if (k % 2 == 0) {
            Ciphertext t = product(k / 2, k / 2);
            t = eval_->subPlain(
                t, encoder_->encodeConstant(1.0, t.limbs, t.scale));
            set(k, std::move(t));
        } else {
            Ciphertext t = product(k / 2 + 1, k / 2);
            Ciphertext t1 = matchScale(basis.cheb[1], t.limbs, t.scale);
            set(k, eval_->sub(t, t1));
        }
    }

    // Giants by doubling: T_{2m} = 2 T_m^2 - 1 (only as far as the
    // series degree requires).
    for (int m = baseDegree; 2 * m <= maxDegree; m *= 2) {
        if (!basis.present[2 * m] && basis.present[m]) {
            Ciphertext t = product(m, m);
            t = eval_->subPlain(
                t, encoder_->encodeConstant(1.0, t.limbs, t.scale));
            set(2 * m, std::move(t));
        }
    }
    return basis;
}

Ciphertext
ChebyshevEvaluator::evalBaseCase(const Basis &basis,
                                 const std::vector<double> &coeffs) const
{
    const int d = chebyshevDegree(coeffs);
    int limbs = ctx_->levels();
    bool any = false;
    for (int k = 1; k <= d; ++k) {
        if (std::abs(coeffs[k]) > 1e-14) {
            UFC_CHECK(basis.present[k], "missing basis element T_" << k);
            limbs = std::min(limbs, basis.cheb[k].limbs);
            any = true;
        }
    }

    if (!any) {
        // Pure constant: an encryption of zero plus the plaintext.
        Ciphertext zero = basis.cheb[1];
        zero = eval_->sub(zero, zero);
        zero = eval_->rescale(eval_->mulPlain(
            zero, encoder_->encodeConstant(1.0, zero.limbs,
                                           ctx_->scale())));
        const double c0 = coeffs.empty() ? 0.0 : coeffs[0];
        return eval_->addPlain(
            zero, encoder_->encodeConstant(c0, zero.limbs, zero.scale));
    }

    // Every term c_k * T_k is produced at the common product scale
    // `target` by choosing the plaintext scale per term, so the additions
    // line up exactly.
    const double target = ctx_->scale() * basis.cheb[1].scale;
    bool have = false;
    Ciphertext sum;
    for (int k = 1; k <= d; ++k) {
        if (std::abs(coeffs[k]) <= 1e-14)
            continue;
        Ciphertext term = eval_->dropToLimbs(basis.cheb[k], limbs);
        const double ptScale = target / term.scale;
        term = eval_->mulPlain(
            term, encoder_->encodeConstant(coeffs[k], term.limbs,
                                           ptScale));
        term.scale = target;
        if (!have) {
            sum = std::move(term);
            have = true;
        } else {
            sum = eval_->add(sum, term);
        }
    }
    sum = eval_->rescale(sum);
    // The constant term joins after the rescale, where the scale is small
    // enough for exact integer encoding.
    if (!coeffs.empty() && std::abs(coeffs[0]) > 1e-14) {
        sum = eval_->addPlain(
            sum, encoder_->encodeConstant(coeffs[0], sum.limbs,
                                          sum.scale));
    }
    return sum;
}

Ciphertext
ChebyshevEvaluator::evalRecursive(const Basis &basis,
                                  const std::vector<double> &coeffs,
                                  int baseDegree) const
{
    const int d = chebyshevDegree(coeffs);
    if (d <= baseDegree)
        return evalBaseCase(basis, coeffs);

    // Split at the largest available giant T_m with m <= d.
    int m = baseDegree;
    while (2 * m <= d)
        m *= 2;
    auto [q, r] = chebyshevDivide(coeffs, m);

    Ciphertext qCt = evalRecursive(basis, q, baseDegree);
    UFC_CHECK(basis.present[m], "missing giant T_" << m);
    Ciphertext tm = basis.cheb[m];
    const int limbs = std::min(qCt.limbs, tm.limbs);
    qCt = eval_->dropToLimbs(qCt, limbs);
    tm = eval_->dropToLimbs(tm, limbs);
    Ciphertext prod = eval_->rescale(eval_->multiply(qCt, tm, *relin_));

    Ciphertext rCt = evalRecursive(basis, r, baseDegree);
    // Align to a level where rCt still has the spare limb matchScale
    // needs.
    const int joinLimbs = std::min(prod.limbs, rCt.limbs - 1);
    UFC_CHECK(joinLimbs >= 1, "polynomial evaluation ran out of levels");
    if (prod.limbs > joinLimbs)
        prod = eval_->dropToLimbs(prod, joinLimbs);
    rCt = matchScale(rCt, joinLimbs, prod.scale);
    return eval_->add(prod, rCt);
}

Ciphertext
ChebyshevEvaluator::evaluate(const Ciphertext &u,
                             const std::vector<double> &coeffs) const
{
    const int d = chebyshevDegree(coeffs);
    UFC_CHECK(d >= 1, "constant series need no evaluation");
    const int base = std::max(
        2, 1 << (std::bit_width(static_cast<u32>(d)) / 2));
    Basis basis = buildBasis(u, base, d);
    return evalRecursive(basis, coeffs, base);
}

Ciphertext
ChebyshevEvaluator::evaluateFunction(
    const Ciphertext &x, const std::function<double(double)> &f, double a,
    double b, int degree) const
{
    // Affine map u = (2x - a - b)/(b - a) costs one plaintext multiply.
    const double mul = 2.0 / (b - a);
    const double add = -(a + b) / (b - a);
    Ciphertext u = eval_->mulPlain(
        x, encoder_->encodeConstant(mul, x.limbs, ctx_->scale()));
    u = eval_->rescale(u);
    u = eval_->addPlain(u, encoder_->encodeConstant(add, u.limbs,
                                                    u.scale));
    return evaluate(u, chebyshevInterpolate(f, a, b, degree));
}

} // namespace ckks
} // namespace ufc
