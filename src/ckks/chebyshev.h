/**
 * @file
 * Plaintext Chebyshev-basis polynomial tools: interpolation of a real
 * function on [a, b], arithmetic in the Chebyshev basis, and the long
 * division used by the Paterson-Stockmeyer homomorphic evaluator.
 *
 * The Chebyshev basis keeps coefficients O(1) for smooth functions, which
 * is what makes high-degree approximation (the bootstrapping sine)
 * numerically viable at CKKS precision.
 */

#ifndef UFC_CKKS_CHEBYSHEV_H
#define UFC_CKKS_CHEBYSHEV_H

#include <functional>
#include <vector>

#include "common/types.h"

namespace ufc {
namespace ckks {

/**
 * Chebyshev interpolation: coefficients c_0..c_degree such that
 * f(x) ~ sum_k c_k T_k(u) with u = (2x - a - b)/(b - a), computed at the
 * Chebyshev nodes (discrete cosine transform of f samples).
 */
std::vector<double> chebyshevInterpolate(
    const std::function<double(double)> &f, double a, double b,
    int degree);

/** Evaluate a Chebyshev series at u in [-1, 1] (Clenshaw). */
double chebyshevEval(const std::vector<double> &coeffs, double u);

/**
 * Divide p (Chebyshev coefficients) by T_m: p = q * T_m + r with
 * deg r < m.  Returns {q, r}.
 */
std::pair<std::vector<double>, std::vector<double>>
chebyshevDivide(const std::vector<double> &p, int m);

/** Degree of a Chebyshev coefficient vector (index of last nonzero). */
int chebyshevDegree(const std::vector<double> &coeffs);

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_CHEBYSHEV_H
