/**
 * @file
 * CKKS context: the modulus chain, ring tables and the RNS precomputation
 * used by rescaling and hybrid key switching.
 */

#ifndef UFC_CKKS_CONTEXT_H
#define UFC_CKKS_CONTEXT_H

#include <memory>
#include <vector>

#include "ckks/params.h"
#include "poly/rns_poly.h"

namespace ufc {
namespace ckks {

/**
 * Owns everything shared between CKKS objects: NTT tables, the q/p prime
 * chains and per-level digit bookkeeping for key switching.
 */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const RingContext *ring() const { return ring_.get(); }
    u64 degree() const { return params_.ringDim; }
    u64 slots() const { return params_.ringDim / 2; }
    double scale() const { return scale_; }

    int levels() const { return params_.levels; }
    int specialLimbs() const { return params_.specialLimbs; }
    int dnum() const { return params_.dnum; }
    /** Limbs per key-switching digit (alpha). */
    int digitSize() const { return alpha_; }

    u64 qAt(int i) const { return qChain_[i]; }
    u64 pAt(int j) const { return pChain_[j]; }
    const std::vector<u64> &qChain() const { return qChain_; }
    const std::vector<u64> &pChain() const { return pChain_; }

    /** Moduli q_0..q_{limbs-1}. */
    std::vector<u64> qBasis(int limbs) const;
    /** Moduli q_0..q_{limbs-1} followed by all special primes. */
    std::vector<u64> qpBasis(int limbs) const;

    /** Number of key-switching digits active for a given limb count. */
    int digitsForLimbs(int limbs) const;
    /** Global limb indices covered by digit d at a given limb count. */
    std::pair<int, int> digitRange(int d, int limbs) const;

    /** [P^-1] mod q_i, used by ModDown. */
    u64 pInvModQ(int i) const { return pInvModQ_[i]; }
    /** [q_last^-1] mod q_i for rescale from `limbs` to `limbs`-1. */
    u64 qLastInvModQ(int limbs, int i) const;
    /** [Qhat_d^-1] mod q_i for i inside digit d (full-level partition). */
    u64 qHatInvDigit(int d, int i) const { return qHatInvDigit_[d][i]; }
    /** Qhat_d = prod of q limbs outside digit d, mod an arbitrary prime. */
    u64 qHatDigitMod(int d, u64 prime) const;

    /** Fresh zero RnsPoly over q_0..q_{limbs-1}. */
    RnsPoly makePoly(int limbs, PolyForm form) const;
    /** Fresh zero RnsPoly over q-basis plus special primes. */
    RnsPoly makePolyQP(int limbs, PolyForm form) const;

  private:
    CkksParams params_;
    std::unique_ptr<RingContext> ring_;
    std::vector<u64> qChain_;
    std::vector<u64> pChain_;
    int alpha_ = 0;
    double scale_ = 0.0;
    std::vector<u64> pInvModQ_;
    // qHatInvDigit_[d][i]: [ (Q_full / Qtilde_d)^-1 ] mod q_i (i in digit d).
    std::vector<std::vector<u64>> qHatInvDigit_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_CONTEXT_H
