/**
 * @file
 * CKKS key material: secret key, evaluation (key-switching) keys and the
 * key generator.
 *
 * Hybrid key switching with dnum digits (paper Section II-B3): an
 * evaluation key for a source key s_src has one RLWE pair per digit d,
 * encrypting P * Qhat_d * s_src over the extended basis Q x P.  Relin keys
 * use s_src = s^2; Galois keys use s_src = sigma_k(s).
 */

#ifndef UFC_CKKS_KEYS_H
#define UFC_CKKS_KEYS_H

#include <map>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/context.h"
#include "ckks/encoder.h"

namespace ufc {
namespace ckks {

/** Ternary secret key stored over the full Q x P basis in Eval form. */
struct SecretKey
{
    RnsPoly s;
};

/** One key-switching key: dnum RLWE pairs over the full Q x P basis. */
struct EvalKey
{
    std::vector<RnsPoly> b; ///< per digit, Eval form
    std::vector<RnsPoly> a; ///< per digit, Eval form
};

/** Generates secrets and evaluation keys. */
class CkksKeyGenerator
{
  public:
    CkksKeyGenerator(const CkksContext *ctx, Rng &rng);

    const SecretKey &secretKey() const { return sk_; }

    /** Relinearization key (s_src = s^2). */
    EvalKey makeRelinKey() const;
    /** Galois key for the automorphism X -> X^k. */
    EvalKey makeGaloisKey(u64 k) const;
    /** Galois key for a slot rotation by `steps` (k = 5^steps mod 2N). */
    EvalKey makeRotationKey(int steps) const;
    /** Conjugation key (k = 2N - 1). */
    EvalKey makeConjugationKey() const;

    /** Automorphism index for a slot rotation by `steps`. */
    u64 rotationAutomorphism(int steps) const;

    /** Key-switching key from an arbitrary source secret to this secret
     *  (used by scheme switching / repacking). */
    EvalKey makeSwitchingKey(const RnsPoly &srcSecretQp) const;

  private:
    const CkksContext *ctx_;
    Rng *rng_;
    SecretKey sk_;
};

/** Symmetric encryption / decryption under the secret key. */
class CkksEncryptor
{
  public:
    CkksEncryptor(const CkksContext *ctx, const SecretKey *sk, Rng &rng)
        : ctx_(ctx), sk_(sk), rng_(&rng)
    {}

    Ciphertext encrypt(const Plaintext &pt) const;
    Plaintext decrypt(const Ciphertext &ct) const;

  private:
    const CkksContext *ctx_;
    const SecretKey *sk_;
    Rng *rng_;
};

/** Select the q limbs [0, limbs) plus all special limbs of a full poly. */
RnsPoly subPolyQp(const CkksContext *ctx, const RnsPoly &full, int limbs);
/** Select only the q limbs [0, limbs) of a full poly. */
RnsPoly subPolyQ(const CkksContext *ctx, const RnsPoly &full, int limbs);

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_KEYS_H
