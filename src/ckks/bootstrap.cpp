/**
 * @file
 * CKKS bootstrapping implementation.
 */

#include "ckks/bootstrap.h"

#include <cmath>
#include <numbers>

#include "ckks/chebyshev.h"
#include "common/check.h"

namespace ufc {
namespace ckks {

namespace {

/** omega^e for the primitive 2N-th complex root. */
cplx
rootPow(u64 n, i64 e)
{
    const double ang =
        std::numbers::pi * static_cast<double>(e) / static_cast<double>(n);
    return cplx(std::cos(ang), std::sin(ang));
}

} // namespace

CkksBootstrapper::CkksBootstrapper(const CkksContext *ctx,
                                   const CkksEncoder *encoder,
                                   const CkksEvaluator *eval,
                                   const CkksKeyGenerator *keygen,
                                   int rangeK, int sineDegree)
    : ctx_(ctx), encoder_(encoder), eval_(eval), rangeK_(rangeK),
      sineDegree_(sineDegree), relin_(keygen->makeRelinKey()),
      keys_(keygen), cheb_(ctx, encoder, eval, &relin_)
{
    UFC_CHECK(ctx->params().secretHamming > 0,
              "bootstrapping requires a sparse secret key "
              "(CkksParams::secretHamming)");
    const u64 n = ctx_->degree();
    const u64 slots = ctx_->slots();
    const double q0 = static_cast<double>(ctx_->qAt(0));
    const double kb = static_cast<double>(rangeK_);

    // Scaled sine: g(x) = sin(2*pi*Kb*x) / (2*pi*Kb) on [-1, 1].
    sineCoeffs_ = chebyshevInterpolate(
        [kb](double x) {
            return std::sin(2.0 * std::numbers::pi * kb * x) /
                   (2.0 * std::numbers::pi * kb);
        },
        -1.0, 1.0, sineDegree_);

    // Rotation-group exponents 5^j mod 2N.
    std::vector<u64> rot(slots);
    u64 p = 1;
    for (u64 j = 0; j < slots; ++j) {
        rot[j] = p;
        p = (p * 5) % (2 * n);
    }

    // CoeffToSlot matrices: u1_j = p_j/(q0*Kb), u2_j = p_{j+n}/(q0*Kb),
    // with p_k = (1/N) * sum_l (V_l w^{-rot_l k} + conj(V_l) w^{rot_l k}).
    const double invN = 1.0 / static_cast<double>(n);
    auto buildC2s = [&](bool conjSide, u64 coeffOffset) {
        std::vector<std::vector<cplx>> m(slots, std::vector<cplx>(slots));
        for (u64 j = 0; j < slots; ++j) {
            const i64 k = static_cast<i64>(j + coeffOffset);
            for (u64 l = 0; l < slots; ++l) {
                const i64 e = static_cast<i64>(rot[l]) * k;
                m[j][l] = invN * rootPow(n, conjSide ? e : -e);
            }
        }
        return std::make_unique<LinearTransform>(
            LinearTransform::fromMatrix(ctx_, encoder_, m, ctx_->scale()));
    };
    c2sA1_ = buildC2s(false, 0);
    c2sB1_ = buildC2s(true, 0);
    c2sA2_ = buildC2s(false, slots);
    c2sB2_ = buildC2s(true, slots);

    // SlotToCoeff matrices: out_j = C * sum_k (u1'_k w^{rot_j k}
    // + u2'_k w^{rot_j (k+n)}) with C = q0*Kb/Delta, so the output slots
    // equal the original message values.
    const double c = q0 * kb / ctx_->scale();
    auto buildS2c = [&](u64 coeffOffset) {
        std::vector<std::vector<cplx>> m(slots, std::vector<cplx>(slots));
        for (u64 j = 0; j < slots; ++j) {
            for (u64 k = 0; k < slots; ++k) {
                const i64 e = static_cast<i64>(rot[j]) *
                              static_cast<i64>(k + coeffOffset);
                m[j][k] = c * rootPow(n, e);
            }
        }
        return std::make_unique<LinearTransform>(
            LinearTransform::fromMatrix(ctx_, encoder_, m, ctx_->scale()));
    };
    s2cE1_ = buildS2c(0);
    s2cE2_ = buildS2c(slots);
}

Ciphertext
CkksBootstrapper::modRaise(const Ciphertext &ct) const
{
    UFC_CHECK(ct.limbs == 1, "bootstrap input must be at the last level");
    const u64 q0 = ctx_->qAt(0);
    const int L = ctx_->levels();
    const u64 n = ctx_->degree();

    Ciphertext out;
    out.limbs = L;
    // Bookkeeping scale so CoeffToSlot sees values in [-1, 1].
    out.scale = static_cast<double>(q0) * rangeK_;

    for (auto [src, dst] :
         {std::pair{&ct.c0, &out.c0}, std::pair{&ct.c1, &out.c1}}) {
        Poly limb0 = src->limb(0);
        limb0.toCoeff();
        RnsPoly raised = ctx_->makePoly(L, PolyForm::Coeff);
        for (u64 k = 0; k < n; ++k) {
            const u64 v = limb0[k];
            const bool negative = v > q0 / 2;
            const u64 mag = negative ? q0 - v : v;
            for (int i = 0; i < L; ++i) {
                const u64 qi = ctx_->qAt(i);
                const u64 r = mag % qi;
                raised.limb(i)[k] = negative ? negMod(r, qi) : r;
            }
        }
        raised.toEval();
        *dst = std::move(raised);
    }
    return out;
}

Ciphertext
CkksBootstrapper::bootstrap(const Ciphertext &ct)
{
    // 1. ModRaise: decryption is now m + q0*I over the full chain.
    Ciphertext raised = modRaise(ct);

    // 2. CoeffToSlot: coefficients into slots (two output ciphertexts),
    //    scaled into the sine's [-1, 1] domain.
    Ciphertext conj = eval_->conjugate(raised, keys_.conjugation());
    Ciphertext u1 = eval_->rescale(
        eval_->add(c2sA1_->apply(*eval_, raised, keys_),
                   c2sB1_->apply(*eval_, conj, keys_)));
    Ciphertext u2 = eval_->rescale(
        eval_->add(c2sA2_->apply(*eval_, raised, keys_),
                   c2sB2_->apply(*eval_, conj, keys_)));

    // Normalize to the standard scale before polynomial evaluation.
    u1 = cheb_.matchScale(u1, u1.limbs - 1, ctx_->scale());
    u2 = cheb_.matchScale(u2, u2.limbs - 1, ctx_->scale());

    // 3. EvalMod: scaled sine removes the q0*I multiples.
    Ciphertext m1 = cheb_.evaluate(u1, sineCoeffs_);
    Ciphertext m2 = cheb_.evaluate(u2, sineCoeffs_);
    UFC_CHECK(m1.limbs == m2.limbs, "EvalMod level mismatch");

    // 4. SlotToCoeff: back to slot semantics.
    Ciphertext out = eval_->rescale(
        eval_->add(s2cE1_->apply(*eval_, m1, keys_),
                   s2cE2_->apply(*eval_, m2, keys_)));
    return out;
}

} // namespace ckks
} // namespace ufc
