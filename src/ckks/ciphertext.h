/**
 * @file
 * CKKS ciphertext type.
 *
 * A ciphertext is (c0, c1) over the current q basis with decryption
 * c0 + c1 * s.  Components are kept in evaluation form between operations;
 * rescaling and key switching convert locally as needed — exactly the
 * NTT/iNTT round trips the paper's accelerator schedules.
 */

#ifndef UFC_CKKS_CIPHERTEXT_H
#define UFC_CKKS_CIPHERTEXT_H

#include "poly/rns_poly.h"

namespace ufc {
namespace ckks {

/** An RNS-CKKS ciphertext. */
struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
    int limbs = 0;      ///< number of active q limbs
    double scale = 0.0; ///< current encoding scale
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_CIPHERTEXT_H
