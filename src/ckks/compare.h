/**
 * @file
 * Approximate comparison in the SIMD scheme: the composite-polynomial
 * sign function (Cheon et al.) behind the paper's Sorting workload and
 * the CKKS pre-filtering stage of the hybrid k-NN.
 */

#ifndef UFC_CKKS_COMPARE_H
#define UFC_CKKS_COMPARE_H

#include "ckks/encoder.h"
#include "ckks/evaluator.h"

namespace ufc {
namespace ckks {

/** Slot-wise approximate sign / comparison operations. */
class CkksComparator
{
  public:
    CkksComparator(const CkksContext *ctx, const CkksEncoder *encoder,
                   const CkksEvaluator *eval, const EvalKey *relin)
        : ctx_(ctx), encoder_(encoder), eval_(eval), relin_(relin)
    {}

    /**
     * Approximate sign(x) for x in [-1, 1] via `iterations` rounds of the
     * contraction g(x) = 1.5x - 0.5x^3 (each round sharpens the step and
     * costs two multiplicative levels).  Values with |x| >= minGap
     * converge to +-1.
     */
    Ciphertext approxSign(const Ciphertext &x, int iterations) const;

    /**
     * Approximate (a > b) as a 0/1 indicator: sign((a-b)/2) mapped to
     * [0, 1].  Inputs must be in [-1, 1].
     */
    Ciphertext greaterThan(const Ciphertext &a, const Ciphertext &b,
                           int iterations) const;

    /** Levels consumed by approxSign at the given iteration count
     *  (square, inner plaintext multiply, alignment, product). */
    static int levelCost(int iterations) { return 4 * iterations; }

  private:
    const CkksContext *ctx_;
    const CkksEncoder *encoder_;
    const CkksEvaluator *eval_;
    const EvalKey *relin_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_COMPARE_H
