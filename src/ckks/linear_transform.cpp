/**
 * @file
 * BSGS linear transform implementation.
 */

#include "ckks/linear_transform.h"

#include <cmath>

#include "common/check.h"

namespace ufc {
namespace ckks {

namespace {

/** Plaintext left rotation: out[j] = v[(j + r) mod n]. */
std::vector<cplx>
rotateVec(const std::vector<cplx> &v, i64 r)
{
    const i64 n = static_cast<i64>(v.size());
    std::vector<cplx> out(v.size());
    for (i64 j = 0; j < n; ++j)
        out[j] = v[((j + r) % n + n) % n];
    return out;
}

} // namespace

LinearTransform::LinearTransform(const CkksContext *ctx,
                                 const CkksEncoder *encoder,
                                 std::map<int, std::vector<cplx>> diagonals,
                                 double scale)
    : ctx_(ctx), encoder_(encoder), diagonals_(std::move(diagonals)),
      scale_(scale)
{
    UFC_CHECK(!diagonals_.empty(), "transform needs at least one diagonal");
    for (const auto &[d, diag] : diagonals_) {
        UFC_CHECK(d >= 0 && d < static_cast<int>(ctx_->slots()),
                  "diagonal index out of range");
        UFC_CHECK(diag.size() == ctx_->slots(), "diagonal length mismatch");
    }
    babyStep_ = std::max(
        1, static_cast<int>(std::round(std::sqrt(
               static_cast<double>(diagonals_.size())))));
}

LinearTransform
LinearTransform::fromMatrix(const CkksContext *ctx,
                            const CkksEncoder *encoder,
                            const std::vector<std::vector<cplx>> &matrix,
                            double scale)
{
    const size_t n = ctx->slots();
    UFC_CHECK(matrix.size() == n, "matrix must be slots x slots");
    std::map<int, std::vector<cplx>> diagonals;
    for (size_t d = 0; d < n; ++d) {
        std::vector<cplx> diag(n);
        bool nonZero = false;
        for (size_t j = 0; j < n; ++j) {
            diag[j] = matrix[j][(j + d) % n];
            if (std::abs(diag[j]) > 1e-12)
                nonZero = true;
        }
        if (nonZero)
            diagonals.emplace(static_cast<int>(d), std::move(diag));
    }
    return LinearTransform(ctx, encoder, std::move(diagonals), scale);
}

Ciphertext
LinearTransform::apply(const CkksEvaluator &eval, const Ciphertext &ct,
                       RotationKeySet &keys) const
{
    const int g = babyStep_;

    // Baby rotations rot(x, i) for the inner indices that actually occur.
    std::map<int, Ciphertext> babies;
    babies.emplace(0, ct);
    for (const auto &[d, diag] : diagonals_) {
        (void)diag;
        const int i = d % g;
        if (!babies.count(i))
            babies.emplace(i, eval.rotate(ct, i, keys.rotation(i)));
    }

    // Giant loop: inner plaintext-multiplied sums, rotated into place.
    bool haveResult = false;
    Ciphertext result;
    auto giantIt = diagonals_.begin();
    while (giantIt != diagonals_.end()) {
        const int jg = giantIt->first / g;

        bool haveInner = false;
        Ciphertext inner;
        for (auto it = giantIt;
             it != diagonals_.end() && it->first / g == jg; ++it) {
            const int i = it->first % g;
            const auto preRotated = rotateVec(it->second,
                                              -static_cast<i64>(g) * jg);
            const Plaintext pt =
                encoder_->encode(preRotated, ct.limbs, scale_);
            Ciphertext term = eval.mulPlain(babies.at(i), pt);
            if (!haveInner) {
                inner = std::move(term);
                haveInner = true;
            } else {
                inner = eval.add(inner, term);
            }
            giantIt = std::next(it);
        }

        if (jg != 0)
            inner = eval.rotate(inner, g * jg, keys.rotation(g * jg));
        if (!haveResult) {
            result = std::move(inner);
            haveResult = true;
        } else {
            result = eval.add(result, inner);
        }
    }
    return result;
}

} // namespace ckks
} // namespace ufc
