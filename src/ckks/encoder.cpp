/**
 * @file
 * CKKS encoder implementation.
 *
 * Encoding uses one length-2N complex FFT: the slot values (and their
 * conjugates) are scattered to the odd powers of the 2N-th root indexed by
 * the rotation group 5^j, the inverse FFT produces the real message
 * polynomial, and coefficients are rounded and reduced per RNS limb.
 */

#include "ckks/encoder.h"

#include <cmath>

#include "common/check.h"

namespace ufc {
namespace ckks {

CkksEncoder::CkksEncoder(const CkksContext *ctx)
    : ctx_(ctx)
{
    const u64 twoN = 2 * ctx_->degree();
    rotGroup_.resize(ctx_->slots());
    u64 p = 1;
    for (u64 j = 0; j < ctx_->slots(); ++j) {
        rotGroup_[j] = static_cast<u32>(p);
        p = (p * 5) % twoN;
    }
}

Plaintext
CkksEncoder::encode(const std::vector<cplx> &values, int limbs,
                    double scale) const
{
    const u64 n = ctx_->degree();
    const u64 twoN = 2 * n;
    UFC_CHECK(values.size() <= ctx_->slots(),
              "too many values: " << values.size());

    // Scatter slots (scaled) to the odd-root positions, conjugates to the
    // mirrored positions, then one inverse FFT gives the coefficients.
    std::vector<cplx> g(twoN, cplx(0.0, 0.0));
    for (size_t j = 0; j < values.size(); ++j) {
        const cplx v = values[j] * scale;
        g[rotGroup_[j]] = v;
        g[twoN - rotGroup_[j]] = std::conj(v);
    }
    fft(g, true);

    RnsPoly poly = ctx_->makePoly(limbs, PolyForm::Coeff);
    for (u64 k = 0; k < n; ++k) {
        const double c = 2.0 * g[k].real();
        UFC_CHECK(std::abs(c) < 4.6e18, "encoded coefficient overflow");
        const i64 v = static_cast<i64>(std::llround(c));
        for (size_t i = 0; i < poly.limbCount(); ++i) {
            const i64 q = static_cast<i64>(poly.modulus(i));
            i64 r = v % q;
            if (r < 0)
                r += q;
            poly.limb(i)[k] = static_cast<u64>(r);
        }
    }
    poly.toEval();

    Plaintext pt;
    pt.poly = std::move(poly);
    pt.limbs = limbs;
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEncoder::encode(const std::vector<double> &values, int limbs,
                    double scale) const
{
    std::vector<cplx> z(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        z[i] = cplx(values[i], 0.0);
    return encode(z, limbs, scale);
}

Plaintext
CkksEncoder::encodeConstant(double value, int limbs, double scale) const
{
    // A constant in every slot is the constant polynomial value*scale —
    // no FFT needed.
    RnsPoly poly = ctx_->makePoly(limbs, PolyForm::Coeff);
    UFC_CHECK(std::abs(value * scale) < 4.6e18,
              "constant too large for exact encoding");
    const i64 v = static_cast<i64>(std::llround(value * scale));
    for (size_t i = 0; i < poly.limbCount(); ++i) {
        const i64 q = static_cast<i64>(poly.modulus(i));
        i64 r = v % q;
        if (r < 0)
            r += q;
        poly.limb(i)[0] = static_cast<u64>(r);
    }
    poly.toEval();

    Plaintext pt;
    pt.poly = std::move(poly);
    pt.limbs = limbs;
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEncoder::encodeCoefficients(const std::vector<double> &coeffs,
                                int limbs, double scale) const
{
    const u64 n = ctx_->degree();
    UFC_CHECK(coeffs.size() <= n, "too many coefficients");
    RnsPoly poly = ctx_->makePoly(limbs, PolyForm::Coeff);
    for (size_t k = 0; k < coeffs.size(); ++k) {
        UFC_CHECK(std::abs(coeffs[k] * scale) < 4.6e18,
                  "coefficient too large for exact encoding");
        const i64 v = static_cast<i64>(std::llround(coeffs[k] * scale));
        for (size_t i = 0; i < poly.limbCount(); ++i) {
            const i64 q = static_cast<i64>(poly.modulus(i));
            i64 r = v % q;
            if (r < 0)
                r += q;
            poly.limb(i)[k] = static_cast<u64>(r);
        }
    }
    poly.toEval();

    Plaintext pt;
    pt.poly = std::move(poly);
    pt.limbs = limbs;
    pt.scale = scale;
    return pt;
}

std::vector<cplx>
CkksEncoder::decode(const Plaintext &pt) const
{
    const u64 n = ctx_->degree();
    const u64 twoN = 2 * n;

    RnsPoly poly = pt.poly;
    poly.toCoeff();

    // Fast signed reconstruction: for each coefficient compute the CRT
    // value mod 2^64 plus the rounded rational correction; exact while the
    // signed value fits in 63 bits (message + noise << q product).
    const size_t L = poly.limbCount();
    RnsBasis basis(poly.moduli());
    std::vector<u64> hat64(L, 1);
    u64 qProd64 = 1;
    for (size_t i = 0; i < L; ++i)
        qProd64 *= basis.value(i); // wraps mod 2^64 by design
    for (size_t i = 0; i < L; ++i) {
        u64 h = 1;
        for (size_t j = 0; j < L; ++j) {
            if (j != i)
                h *= basis.value(j);
        }
        hat64[i] = h;
    }

    std::vector<cplx> m(twoN, cplx(0.0, 0.0));
    for (u64 k = 0; k < n; ++k) {
        u64 acc = 0;
        long double frac = 0.0L;
        for (size_t i = 0; i < L; ++i) {
            const u64 y = basis.mod(i).mul(poly.limb(i)[k],
                                           basis.qHatInvModQi(i));
            acc += y * hat64[i];
            frac += static_cast<long double>(y) /
                    static_cast<long double>(basis.value(i));
        }
        const u64 rounds = static_cast<u64>(
            std::llroundl(frac));
        const i64 v = static_cast<i64>(acc - rounds * qProd64);
        m[k] = cplx(static_cast<double>(v) / pt.scale, 0.0);
    }

    fft(m, false);
    std::vector<cplx> out(ctx_->slots());
    for (u64 j = 0; j < ctx_->slots(); ++j)
        out[j] = m[rotGroup_[j]];
    return out;
}

} // namespace ckks
} // namespace ufc
