/**
 * @file
 * CKKS homomorphic evaluator.
 *
 * Implements the high-level operations of paper Figure 3: addition,
 * multiplication with relinearization, rescaling, rotation via Galois
 * automorphisms, conjugation and plaintext operations.  Key switching is
 * the hybrid dnum-digit variant: ModUp (per-digit base conversion to
 * Q x P), inner product with the evaluation key, then ModDown.
 */

#ifndef UFC_CKKS_EVALUATOR_H
#define UFC_CKKS_EVALUATOR_H

#include "ckks/keys.h"

namespace ufc {
namespace ckks {

/** Homomorphic operation engine; stateless apart from context pointers. */
class CkksEvaluator
{
  public:
    explicit CkksEvaluator(const CkksContext *ctx) : ctx_(ctx) {}

    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext negate(const Ciphertext &a) const;

    Ciphertext addPlain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext subPlain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext mulPlain(const Ciphertext &a, const Plaintext &p) const;

    /** Full multiply: tensor, relinearize with `relin`, no rescale. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                        const EvalKey &relin) const;

    /** Square (saves one tensor product half). */
    Ciphertext square(const Ciphertext &a, const EvalKey &relin) const;

    /** Divide by the last modulus and drop it (paper Section II-B1). */
    Ciphertext rescale(const Ciphertext &a) const;

    /** Drop limbs without scaling (level alignment). */
    Ciphertext dropToLimbs(const Ciphertext &a, int limbs) const;

    /** Slot rotation by `steps` using the matching Galois key. */
    Ciphertext rotate(const Ciphertext &a, int steps,
                      const EvalKey &galoisKey) const;

    /** Slot-wise complex conjugation. */
    Ciphertext conjugate(const Ciphertext &a,
                         const EvalKey &conjKey) const;

    /** Apply automorphism k to both components and key-switch. */
    Ciphertext applyGalois(const Ciphertext &a, u64 k,
                           const EvalKey &galoisKey) const;

    /**
     * Hybrid key switching core: given a polynomial `c` (Eval form, q
     * basis) that currently multiplies some source secret, return the pair
     * (d0, d1) over the q basis such that d0 + d1*s ~ c * s_src.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &c,
                                          const EvalKey &key) const;

  private:
    /** ModDown: divide a Q x P poly by P, returning a q-basis poly. */
    RnsPoly modDown(RnsPoly acc, int limbs) const;

    const CkksContext *ctx_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_EVALUATOR_H
