/**
 * @file
 * A cache of Galois keys indexed by rotation step, shared by linear
 * transforms and bootstrapping.
 */

#ifndef UFC_CKKS_ROTATION_KEYS_H
#define UFC_CKKS_ROTATION_KEYS_H

#include <map>

#include "ckks/evaluator.h"

namespace ufc {
namespace ckks {

/** Owns rotation/conjugation keys generated on demand. */
class RotationKeySet
{
  public:
    explicit RotationKeySet(const CkksKeyGenerator *keygen)
        : keygen_(keygen)
    {}

    /** Key for a slot rotation by `steps` (generated on first use). */
    const EvalKey &
    rotation(int steps)
    {
        auto it = keys_.find(steps);
        if (it == keys_.end())
            it = keys_.emplace(steps,
                               keygen_->makeRotationKey(steps)).first;
        return it->second;
    }

    /** Conjugation key. */
    const EvalKey &
    conjugation()
    {
        if (!conj_)
            conj_ = std::make_unique<EvalKey>(
                keygen_->makeConjugationKey());
        return *conj_;
    }

    size_t size() const { return keys_.size() + (conj_ ? 1 : 0); }

  private:
    const CkksKeyGenerator *keygen_;
    std::map<int, EvalKey> keys_;
    std::unique_ptr<EvalKey> conj_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_ROTATION_KEYS_H
