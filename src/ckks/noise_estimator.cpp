/**
 * @file
 * CKKS noise estimator implementation.
 *
 * All bounds are heuristic high-probability bounds on the decoded
 * absolute error, using sqrt-style cancellation for sums of independent
 * terms (the standard average-case CKKS analysis).
 */

#include "ckks/noise_estimator.h"

#include <cmath>

namespace ufc {
namespace ckks {

namespace {

constexpr double kSigma = 3.2;       // encryption noise stddev
constexpr double kHpFactor = 6.0;    // high-probability multiplier

} // namespace

double
NoiseEstimator::fresh(double scale) const
{
    // e + e_round with ternary secret: |err| ~ 6*sigma*sqrt(N)*... over
    // the canonical embedding, divided by the scale.
    const double n = static_cast<double>(ctx_->degree());
    return kHpFactor * kSigma * std::sqrt(n) / scale;
}

double
NoiseEstimator::rescaleError(double scale) const
{
    // Rounding adds tau0 + tau1*s with |tau| <= 1/2; for a dense ternary
    // secret the canonical-embedding magnitude is ~ 0.3 * N / scale.
    const double n = static_cast<double>(ctx_->degree());
    return kHpFactor * 0.3 * n / scale;
}

double
NoiseEstimator::keySwitchError(int limbs, double scale) const
{
    // Hybrid key switching: per digit, the raised polynomial (magnitude
    // up to the digit product) multiplies the key noise, then ModDown
    // divides by P >= the digit size; the residual is ~ digits * sigma *
    // sqrt(N * alpha) * (Qtilde/P) / scale plus the ModDown rounding.
    const double n = static_cast<double>(ctx_->degree());
    const int digits = ctx_->digitsForLimbs(limbs);
    // The factor 12 covers partial-digit slack (Qtilde close to P at low
    // levels) and the double rounding of ModDown.
    const double ksTerm = 12.0 * kHpFactor * kSigma * std::sqrt(n) *
                          digits / scale;
    return ksTerm + rescaleError(scale);
}

double
NoiseEstimator::afterMultiply(double errA, double errB, double mBound,
                              int limbs, double scale) const
{
    // (m_a + e_a)(m_b + e_b) = m_a m_b + m_a e_b + m_b e_a + e_a e_b;
    // then relinearization and one rescale.
    const double cross = mBound * (errA + errB) + errA * errB;
    return cross + keySwitchError(limbs, scale) + rescaleError(scale);
}

int
NoiseEstimator::supportedDepth(int limbs, double mBound,
                               double tolerance) const
{
    double err = fresh(ctx_->scale());
    int depth = 0;
    double bound = mBound;
    while (limbs >= 2) {
        err = afterMultiply(err, err, bound, limbs, ctx_->scale());
        bound = bound * bound;
        --limbs;
        if (err > tolerance || bound > 1e30)
            break;
        ++depth;
    }
    return depth;
}

} // namespace ckks
} // namespace ufc
