/**
 * @file
 * Homomorphic Chebyshev-series evaluation with Paterson-Stockmeyer
 * depth reduction — the engine behind EvalMod in CKKS bootstrapping and
 * behind smooth-function evaluation (sigmoid, sign approximations) in the
 * SIMD workloads.
 */

#ifndef UFC_CKKS_POLY_EVAL_H
#define UFC_CKKS_POLY_EVAL_H

#include <functional>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"

namespace ufc {
namespace ckks {

/** Evaluates Chebyshev series on ciphertexts encrypting u in [-1, 1]. */
class ChebyshevEvaluator
{
  public:
    ChebyshevEvaluator(const CkksContext *ctx, const CkksEncoder *encoder,
                       const CkksEvaluator *eval, const EvalKey *relin)
        : ctx_(ctx), encoder_(encoder), eval_(eval), relin_(relin)
    {}

    /**
     * Evaluate sum_k coeffs[k] * T_k(u) homomorphically.  Consumes about
     * ceil(log2(degree)) + 2 multiplicative levels.
     */
    Ciphertext evaluate(const Ciphertext &u,
                        const std::vector<double> &coeffs) const;

    /**
     * Convenience: approximate f on [a, b] at the given degree and
     * evaluate it on a ciphertext encrypting x in [a, b] (the affine map
     * to [-1, 1] costs one more level).
     */
    Ciphertext evaluateFunction(const Ciphertext &x,
                                const std::function<double(double)> &f,
                                double a, double b, int degree) const;

    /** Bring `ct` to exactly (limbs, scale), spending one level. */
    Ciphertext matchScale(const Ciphertext &ct, int limbs,
                          double scale) const;

  private:
    struct Basis
    {
        /// cheb[k] encrypts T_k(u); index 0 unused (T_0 handled as a
        /// plaintext constant).
        std::vector<Ciphertext> cheb;
        std::vector<bool> present;
    };

    /** Build T_1..T_g and the giants T_2g, T_4g, ..., up to maxDegree. */
    Basis buildBasis(const Ciphertext &u, int baseDegree,
                     int maxDegree) const;

    Ciphertext evalRecursive(const Basis &basis,
                             const std::vector<double> &coeffs,
                             int baseDegree) const;

    /** Base case: linear combination of the precomputed T_k. */
    Ciphertext evalBaseCase(const Basis &basis,
                            const std::vector<double> &coeffs) const;

    const CkksContext *ctx_;
    const CkksEncoder *encoder_;
    const CkksEvaluator *eval_;
    const EvalKey *relin_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_POLY_EVAL_H
