/**
 * @file
 * Plaintext Chebyshev tools implementation.
 */

#include "ckks/chebyshev.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace ufc {
namespace ckks {

std::vector<double>
chebyshevInterpolate(const std::function<double(double)> &f, double a,
                     double b, int degree)
{
    UFC_CHECK(degree >= 0 && b > a, "bad interpolation parameters");
    const int m = degree + 1;
    // Sample at the Chebyshev-Gauss nodes.
    std::vector<double> samples(m);
    for (int i = 0; i < m; ++i) {
        const double u = std::cos(std::numbers::pi * (i + 0.5) / m);
        const double x = 0.5 * (u * (b - a) + a + b);
        samples[i] = f(x);
    }
    // DCT-II of the samples gives the Chebyshev coefficients.
    std::vector<double> coeffs(m, 0.0);
    for (int k = 0; k < m; ++k) {
        double acc = 0.0;
        for (int i = 0; i < m; ++i)
            acc += samples[i] *
                   std::cos(std::numbers::pi * k * (i + 0.5) / m);
        coeffs[k] = acc * 2.0 / m;
    }
    coeffs[0] *= 0.5;
    return coeffs;
}

double
chebyshevEval(const std::vector<double> &coeffs, double u)
{
    // Clenshaw recurrence.
    double b1 = 0.0, b2 = 0.0;
    for (int k = static_cast<int>(coeffs.size()) - 1; k >= 1; --k) {
        const double b0 = coeffs[k] + 2.0 * u * b1 - b2;
        b2 = b1;
        b1 = b0;
    }
    return coeffs.empty() ? 0.0 : coeffs[0] + u * b1 - b2;
}

int
chebyshevDegree(const std::vector<double> &coeffs)
{
    for (int k = static_cast<int>(coeffs.size()) - 1; k >= 0; --k) {
        if (std::abs(coeffs[k]) > 1e-14)
            return k;
    }
    return 0;
}

std::pair<std::vector<double>, std::vector<double>>
chebyshevDivide(const std::vector<double> &p, int m)
{
    const int n = chebyshevDegree(p);
    UFC_CHECK(m >= 1, "divisor degree must be positive");
    UFC_CHECK(n >= m, "dividend degree below divisor degree");

    std::vector<double> r(p.begin(), p.begin() + n + 1);
    std::vector<double> q(n - m + 1, 0.0);

    // Work down from the leading coefficient using
    // 2*T_j*T_m = T_{j+m} + T_{|j-m|} (and T_0*T_m = T_m).
    for (int k = n; k >= m; --k) {
        const double c = r[k];
        if (c == 0.0)
            continue;
        const int j = k - m;
        if (j == 0) {
            q[0] += c;
            r[k] = 0.0;
        } else {
            q[j] += 2.0 * c;
            r[k] = 0.0;
            r[std::abs(j - m)] -= c;
        }
    }
    r.resize(m);
    return {std::move(q), std::move(r)};
}

} // namespace ckks
} // namespace ufc
