/**
 * @file
 * CKKS parameter sets.
 *
 * The paper's Table III sets C1-C3 use N = 2^16 with dnum in {2, 3, 4} and
 * logPQ around 1700-1800; those drive the accelerator simulation.  The
 * functional software tests use smaller rings with the same structure.
 */

#ifndef UFC_CKKS_PARAMS_H
#define UFC_CKKS_PARAMS_H

#include <string>

#include "common/types.h"

namespace ufc {
namespace ckks {

/** Algorithmic parameters for RNS-CKKS with hybrid key switching. */
struct CkksParams
{
    std::string name;
    u64 ringDim = 0;      ///< N
    int levels = 0;       ///< L: number of scale-sized q limbs (incl. q0)
    int dnum = 0;         ///< hybrid key-switching digit count
    int specialLimbs = 0; ///< K = ceil(L / dnum) special primes
    int firstModBits = 0; ///< log2(q0)
    int scaleBits = 0;    ///< log2(q_i), i >= 1, and the encoding scale
    int specialBits = 0;  ///< log2(p_j)
    double sigma = 3.2;   ///< encryption noise stddev
    /// Secret-key Hamming weight; 0 means dense ternary.  Bootstrapping
    /// uses sparse secrets so the ModRaise overflow count I stays small.
    int secretHamming = 0;

    double logPQ() const;

    /** Paper Table III sets (drive the simulator, not software tests). */
    static CkksParams c1();
    static CkksParams c2();
    static CkksParams c3();

    /** Small parameters for fast functional unit tests. */
    static CkksParams testFast();
    /** Medium parameters for integration tests (more levels). */
    static CkksParams testDeep();
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_PARAMS_H
