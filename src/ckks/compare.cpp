/**
 * @file
 * Approximate comparison implementation.
 */

#include "ckks/compare.h"

#include "common/check.h"

namespace ufc {
namespace ckks {

Ciphertext
CkksComparator::approxSign(const Ciphertext &x, int iterations) const
{
    UFC_CHECK(iterations >= 1, "need at least one iteration");
    UFC_CHECK(x.limbs > levelCost(iterations),
              "not enough levels for " << iterations << " iterations");

    Ciphertext cur = x;
    for (int it = 0; it < iterations; ++it) {
        // g(x) = 1.5x - 0.5x^3 evaluated with two multiplies:
        // t = x^2 (rescaled), out = x * (1.5 - 0.5 t).
        Ciphertext sq = eval_->rescale(eval_->square(cur, *relin_));

        // inner = 1.5 - 0.5 * sq, at sq's level and scale.
        Ciphertext inner = eval_->mulPlain(
            sq, encoder_->encodeConstant(-0.5, sq.limbs, ctx_->scale()));
        inner = eval_->rescale(inner);
        inner = eval_->addPlain(
            inner,
            encoder_->encodeConstant(1.5, inner.limbs, inner.scale));

        // Align x with inner, then multiply.
        Ciphertext aligned = eval_->dropToLimbs(cur, inner.limbs);
        // Their scales differ slightly after two rescales; absorb the
        // ratio into a plaintext multiply of 1.0 on the larger side.
        if (std::abs(aligned.scale / inner.scale - 1.0) > 1e-9) {
            const double qNext =
                static_cast<double>(ctx_->qAt(inner.limbs - 1));
            const double ptScale =
                inner.scale * qNext / aligned.scale;
            aligned = eval_->rescale(eval_->mulPlain(
                aligned, encoder_->encodeConstant(1.0, aligned.limbs,
                                                  ptScale)));
            inner = eval_->dropToLimbs(inner, aligned.limbs);
            aligned.scale = inner.scale;
        }
        cur = eval_->rescale(eval_->multiply(aligned, inner, *relin_));
    }
    return cur;
}

Ciphertext
CkksComparator::greaterThan(const Ciphertext &a, const Ciphertext &b,
                            int iterations) const
{
    // d = (a - b) / 2 in [-1, 1].
    Ciphertext d = eval_->sub(a, b);
    d = eval_->rescale(eval_->mulPlain(
        d, encoder_->encodeConstant(0.5, d.limbs, ctx_->scale())));
    Ciphertext s = approxSign(d, iterations);
    // Map sign to an indicator: (s + 1) / 2.
    Ciphertext half = eval_->rescale(eval_->mulPlain(
        s, encoder_->encodeConstant(0.5, s.limbs, ctx_->scale())));
    return eval_->addPlain(
        half, encoder_->encodeConstant(0.5, half.limbs, half.scale));
}

} // namespace ckks
} // namespace ufc
