/**
 * @file
 * CKKS bootstrapping (paper Section II-B4).
 *
 * Pipeline: ModRaise (re-interpret a one-limb ciphertext over the full
 * modulus chain, picking up an unknown multiple q0*I of the base prime),
 * CoeffToSlot (homomorphic DFT moving the polynomial coefficients into
 * slots), EvalMod (Chebyshev approximation of the scaled sine removing
 * the q0*I term), and SlotToCoeff (inverse DFT restoring slot semantics).
 *
 * The secret key must be sparse (CkksParams::secretHamming) so that the
 * overflow count I stays inside the sine approximation range.
 */

#ifndef UFC_CKKS_BOOTSTRAP_H
#define UFC_CKKS_BOOTSTRAP_H

#include <memory>

#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"

namespace ufc {
namespace ckks {

/** Precomputed transforms and keys for bootstrapping one context. */
class CkksBootstrapper
{
  public:
    /**
     * @param rangeK      bound on |I| + message: the sine is evaluated on
     *                    [-rangeK, rangeK] periods
     * @param sineDegree  Chebyshev degree of the scaled-sine approximant
     */
    CkksBootstrapper(const CkksContext *ctx, const CkksEncoder *encoder,
                     const CkksEvaluator *eval,
                     const CkksKeyGenerator *keygen, int rangeK = 6,
                     int sineDegree = 119);

    /**
     * Refresh a one-limb ciphertext (scale ~ Delta, real slot values of
     * magnitude <= 1) back to a multi-limb ciphertext encrypting the same
     * slots.  Returns the refreshed ciphertext; its `limbs` tells how
     * much multiplicative budget was recovered.
     */
    Ciphertext bootstrap(const Ciphertext &ct);

    int rangeK() const { return rangeK_; }

  private:
    /** Re-interpret the one-limb ciphertext over the full chain. */
    Ciphertext modRaise(const Ciphertext &ct) const;

    const CkksContext *ctx_;
    const CkksEncoder *encoder_;
    const CkksEvaluator *eval_;
    int rangeK_;
    int sineDegree_;

    EvalKey relin_;
    RotationKeySet keys_;
    ChebyshevEvaluator cheb_;
    std::vector<double> sineCoeffs_;

    // CoeffToSlot: u1 = A1*v + B1*conj(v), u2 = A2*v + B2*conj(v).
    std::unique_ptr<LinearTransform> c2sA1_, c2sB1_, c2sA2_, c2sB2_;
    // SlotToCoeff: out = E1*u1' + E2*u2'.
    std::unique_ptr<LinearTransform> s2cE1_, s2cE2_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_BOOTSTRAP_H
