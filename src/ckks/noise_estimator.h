/**
 * @file
 * Analytic CKKS noise-budget estimator.
 *
 * Tracks a conservative bound on the invariant noise (absolute error in
 * the decoded values) through homomorphic operations, so callers can
 * predict when a computation needs more levels, a larger scale, or a
 * bootstrap — without decrypting.  The model follows the standard
 * RNS-CKKS noise heuristics (fresh encryption, tensor + relinearization,
 * rescale rounding, rotation key switching).
 */

#ifndef UFC_CKKS_NOISE_ESTIMATOR_H
#define UFC_CKKS_NOISE_ESTIMATOR_H

#include "ckks/context.h"

namespace ufc {
namespace ckks {

/** Tracks a per-ciphertext noise bound (absolute decoded error). */
class NoiseEstimator
{
  public:
    explicit NoiseEstimator(const CkksContext *ctx) : ctx_(ctx) {}

    /** Estimated decoded error of a fresh encryption at `scale`. */
    double fresh(double scale) const;

    /**
     * Error after multiplying two ciphertexts (messages bounded by
     * |m| <= mBound) and rescaling once.
     */
    double afterMultiply(double errA, double errB, double mBound,
                         int limbs, double scale) const;

    /** Error added by one hybrid key switch at `limbs` (rotation or
     *  relinearization). */
    double keySwitchError(int limbs, double scale) const;

    /** Error added by one rescale (rounding). */
    double rescaleError(double scale) const;

    /** Error after adding two ciphertexts. */
    double afterAdd(double errA, double errB) const
    {
        return errA + errB;
    }

    /**
     * Multiplicative depth supported from `limbs` levels for messages
     * bounded by mBound before the error exceeds `tolerance`.
     */
    int supportedDepth(int limbs, double mBound, double tolerance) const;

  private:
    const CkksContext *ctx_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_NOISE_ESTIMATOR_H
