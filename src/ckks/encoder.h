/**
 * @file
 * CKKS canonical-embedding encoder (paper Section II-B).
 *
 * A vector of n = N/2 complex slots is embedded into a real polynomial so
 * that slot j equals m(omega^(5^j)) for the primitive 2N-th complex root
 * omega.  Under this indexing the Galois automorphism X -> X^(5^r) rotates
 * the slot vector by r positions, and X -> X^(2N-1) conjugates it.
 */

#ifndef UFC_CKKS_ENCODER_H
#define UFC_CKKS_ENCODER_H

#include <vector>

#include "ckks/context.h"
#include "math/fft.h"

namespace ufc {
namespace ckks {

/** A CKKS plaintext: an RNS polynomial plus scale/level bookkeeping. */
struct Plaintext
{
    RnsPoly poly;       ///< Eval form by convention
    int limbs = 0;      ///< number of q limbs
    double scale = 0.0; ///< encoding scale
};

/** Encoder/decoder between complex slot vectors and plaintexts. */
class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext *ctx);

    u64 slots() const { return ctx_->slots(); }

    /**
     * Encode `values` (size <= N/2; shorter vectors are zero-padded) at
     * the given limb count and scale.  The scaled polynomial coefficients
     * must stay below 2^62 in magnitude.
     */
    Plaintext encode(const std::vector<cplx> &values, int limbs,
                     double scale) const;
    Plaintext encode(const std::vector<double> &values, int limbs,
                     double scale) const;

    /** Encode a constant into every slot. */
    Plaintext encodeConstant(double value, int limbs, double scale) const;

    /**
     * Decode a plaintext back to complex slots.  Coefficient magnitudes
     * (message plus noise) must be below 2^62 for the fast signed-CRT
     * reconstruction used here.
     */
    std::vector<cplx> decode(const Plaintext &pt) const;

    /** Raw real polynomial coefficients -> plaintext (for transforms). */
    Plaintext encodeCoefficients(const std::vector<double> &coeffs,
                                 int limbs, double scale) const;

  private:
    const CkksContext *ctx_;
    std::vector<u32> rotGroup_; ///< 5^j mod 2N
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_ENCODER_H
