/**
 * @file
 * CKKS key generation and symmetric encryption.
 */

#include "ckks/keys.h"

#include "common/check.h"
#include "math/mod_arith.h"

namespace ufc {
namespace ckks {

RnsPoly
subPolyQp(const CkksContext *ctx, const RnsPoly &full, int limbs)
{
    const int L = ctx->levels();
    const int K = ctx->specialLimbs();
    UFC_CHECK(static_cast<int>(full.limbCount()) == L + K,
              "expected a full Q x P poly");
    RnsPoly out(ctx->ring(), ctx->qpBasis(limbs), full.form());
    for (int i = 0; i < limbs; ++i)
        out.limb(i) = full.limb(i);
    for (int j = 0; j < K; ++j)
        out.limb(limbs + j) = full.limb(L + j);
    return out;
}

RnsPoly
subPolyQ(const CkksContext *ctx, const RnsPoly &full, int limbs)
{
    RnsPoly out(ctx->ring(), ctx->qBasis(limbs), full.form());
    for (int i = 0; i < limbs; ++i)
        out.limb(i) = full.limb(i);
    return out;
}

CkksKeyGenerator::CkksKeyGenerator(const CkksContext *ctx, Rng &rng)
    : ctx_(ctx), rng_(&rng)
{
    sk_.s = ctx_->makePolyQP(ctx_->levels(), PolyForm::Coeff);
    const int h = ctx->params().secretHamming;
    if (h <= 0) {
        sk_.s.sampleTernary(rng);
    } else {
        // Sparse ternary secret: exactly h nonzero +-1 coefficients.
        const u64 n = ctx->degree();
        std::vector<i8> coeffs(n, 0);
        int placed = 0;
        while (placed < h) {
            const u64 pos = rng.uniform(n);
            if (coeffs[pos] == 0) {
                coeffs[pos] = (rng.next() & 1) ? 1 : -1;
                ++placed;
            }
        }
        for (u64 c = 0; c < n; ++c) {
            for (size_t l = 0; l < sk_.s.limbCount(); ++l) {
                const u64 q = sk_.s.limb(l).modulus();
                sk_.s.limb(l)[c] =
                    coeffs[c] == 0 ? 0 : (coeffs[c] == 1 ? 1 : q - 1);
            }
        }
    }
    sk_.s.toEval();
}

namespace {

/**
 * Build the evaluation key encrypting P * Qhat_d * srcSecret per digit.
 * srcSecretQp must be in Eval form over the full Q x P basis.
 */
EvalKey
makeEvalKey(const CkksContext *ctx, const RnsPoly &skQp,
            const RnsPoly &srcSecretQp, Rng &rng)
{
    const int L = ctx->levels();
    const int K = ctx->specialLimbs();
    const int dnum = ctx->dnum();

    EvalKey key;
    key.b.reserve(dnum);
    key.a.reserve(dnum);
    for (int d = 0; d < dnum; ++d) {
        RnsPoly a = ctx->makePolyQP(L, PolyForm::Eval);
        a.sampleUniform(rng);

        RnsPoly e = ctx->makePolyQP(L, PolyForm::Coeff);
        e.sampleGaussian(rng, ctx->params().sigma);
        e.toEval();

        // b = -a*s + e + P*Qhat_d * srcSecret, where the key term is
        // nonzero only on the q limbs (P vanishes mod p_j).
        RnsPoly b = a;
        b.mulEvalInPlace(skQp);
        b.negInPlace();
        b.addInPlace(e);

        RnsPoly term = srcSecretQp;
        std::vector<u64> factors(L + K, 0);
        for (int i = 0; i < L; ++i) {
            const Modulus qi(ctx->qAt(i));
            u64 f = ctx->qHatDigitMod(d, ctx->qAt(i));
            for (int j = 0; j < K; ++j)
                f = qi.mul(f, ctx->pAt(j) % ctx->qAt(i));
            factors[i] = f;
        }
        term.scaleInPlace(factors);
        b.addInPlace(term);

        key.b.push_back(std::move(b));
        key.a.push_back(std::move(a));
    }
    return key;
}

} // namespace

EvalKey
CkksKeyGenerator::makeRelinKey() const
{
    RnsPoly s2 = sk_.s;
    s2.mulEvalInPlace(sk_.s);
    return makeEvalKey(ctx_, sk_.s, s2, *rng_);
}

EvalKey
CkksKeyGenerator::makeGaloisKey(u64 k) const
{
    const RnsPoly sk = sk_.s.automorphism(k);
    return makeEvalKey(ctx_, sk_.s, sk, *rng_);
}

u64
CkksKeyGenerator::rotationAutomorphism(int steps) const
{
    const u64 twoN = 2 * ctx_->degree();
    const u64 order = ctx_->degree() / 2; // order of 5 in Z_2N^*
    i64 r = steps % static_cast<i64>(order);
    if (r < 0)
        r += static_cast<i64>(order);
    return powMod(5, static_cast<u64>(r), twoN);
}

EvalKey
CkksKeyGenerator::makeRotationKey(int steps) const
{
    return makeGaloisKey(rotationAutomorphism(steps));
}

EvalKey
CkksKeyGenerator::makeConjugationKey() const
{
    return makeGaloisKey(2 * ctx_->degree() - 1);
}

EvalKey
CkksKeyGenerator::makeSwitchingKey(const RnsPoly &srcSecretQp) const
{
    return makeEvalKey(ctx_, sk_.s, srcSecretQp, *rng_);
}

Ciphertext
CkksEncryptor::encrypt(const Plaintext &pt) const
{
    const int limbs = pt.limbs;
    Ciphertext ct;
    ct.limbs = limbs;
    ct.scale = pt.scale;

    ct.c1 = ctx_->makePoly(limbs, PolyForm::Eval);
    ct.c1.sampleUniform(*rng_);

    RnsPoly e = ctx_->makePoly(limbs, PolyForm::Coeff);
    e.sampleGaussian(*rng_, ctx_->params().sigma);
    e.toEval();

    // c0 = m + e - c1 * s
    RnsPoly c1s = ct.c1;
    c1s.mulEvalInPlace(subPolyQ(ctx_, sk_->s, limbs));
    ct.c0 = pt.poly;
    ct.c0.addInPlace(e);
    ct.c0.subInPlace(c1s);
    return ct;
}

Plaintext
CkksEncryptor::decrypt(const Ciphertext &ct) const
{
    RnsPoly m = ct.c1;
    m.mulEvalInPlace(subPolyQ(ctx_, sk_->s, ct.limbs));
    m.addInPlace(ct.c0);

    Plaintext pt;
    pt.poly = std::move(m);
    pt.limbs = ct.limbs;
    pt.scale = ct.scale;
    return pt;
}

} // namespace ckks
} // namespace ufc
