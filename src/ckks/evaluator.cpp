/**
 * @file
 * CKKS evaluator implementation.
 */

#include "ckks/evaluator.h"

#include <cmath>

#include "common/check.h"

namespace ufc {
namespace ckks {

namespace {

void
checkSameShape(const Ciphertext &a, const Ciphertext &b)
{
    UFC_CHECK(a.limbs == b.limbs, "ciphertext level mismatch");
    const double ratio = a.scale / b.scale;
    UFC_CHECK(ratio > 0.999 && ratio < 1.001,
              "ciphertext scale mismatch: " << a.scale << " vs " << b.scale);
}

} // namespace

Ciphertext
CkksEvaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    checkSameShape(a, b);
    Ciphertext out = a;
    out.c0.addInPlace(b.c0);
    out.c1.addInPlace(b.c1);
    return out;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    checkSameShape(a, b);
    Ciphertext out = a;
    out.c0.subInPlace(b.c0);
    out.c1.subInPlace(b.c1);
    return out;
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    out.c0.negInPlace();
    out.c1.negInPlace();
    return out;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &a, const Plaintext &p) const
{
    UFC_CHECK(a.limbs == p.limbs, "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.addInPlace(p.poly);
    return out;
}

Ciphertext
CkksEvaluator::subPlain(const Ciphertext &a, const Plaintext &p) const
{
    UFC_CHECK(a.limbs == p.limbs, "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.subInPlace(p.poly);
    return out;
}

Ciphertext
CkksEvaluator::mulPlain(const Ciphertext &a, const Plaintext &p) const
{
    UFC_CHECK(a.limbs == p.limbs, "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.mulEvalInPlace(p.poly);
    out.c1.mulEvalInPlace(p.poly);
    out.scale = a.scale * p.scale;
    return out;
}

Ciphertext
CkksEvaluator::multiply(const Ciphertext &a, const Ciphertext &b,
                        const EvalKey &relin) const
{
    checkSameShape(a, b);
    // Tensor product: (e0, e1, e2) with e2 multiplying s^2.
    RnsPoly e0 = a.c0;
    e0.mulEvalInPlace(b.c0);

    RnsPoly e1 = a.c0;
    e1.mulEvalInPlace(b.c1);
    RnsPoly t = a.c1;
    t.mulEvalInPlace(b.c0);
    e1.addInPlace(t);

    RnsPoly e2 = a.c1;
    e2.mulEvalInPlace(b.c1);

    // Relinearize e2 back onto (c0, c1).
    auto [d0, d1] = keySwitch(e2, relin);
    e0.addInPlace(d0);
    e1.addInPlace(d1);

    Ciphertext out;
    out.c0 = std::move(e0);
    out.c1 = std::move(e1);
    out.limbs = a.limbs;
    out.scale = a.scale * b.scale;
    return out;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &a, const EvalKey &relin) const
{
    return multiply(a, a, relin);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &a) const
{
    UFC_CHECK(a.limbs >= 2, "cannot rescale at the last level");
    const int limbs = a.limbs;
    const u64 qLast = ctx_->qAt(limbs - 1);

    Ciphertext out;
    out.limbs = limbs - 1;
    out.scale = a.scale / static_cast<double>(qLast);

    for (RnsPoly Ciphertext::*member : {&Ciphertext::c0, &Ciphertext::c1}) {
        RnsPoly p = a.*member;
        p.toCoeff();
        const Poly &last = p.limb(limbs - 1);
        RnsPoly r = ctx_->makePoly(limbs - 1, PolyForm::Coeff);
        for (int i = 0; i < limbs - 1; ++i) {
            const Modulus qi(ctx_->qAt(i));
            const u64 inv = ctx_->qLastInvModQ(limbs, i);
            const u64 invShoup = qi.shoupPrecompute(inv);
            Poly &dst = r.limb(i);
            const Poly &src = p.limb(i);
            for (u64 c = 0; c < src.degree(); ++c) {
                const u64 diff =
                    subMod(src[c], last[c] % qi.value(), qi.value());
                dst[c] = qi.mulShoup(diff, inv, invShoup);
            }
        }
        r.toEval();
        out.*member = std::move(r);
    }
    return out;
}

Ciphertext
CkksEvaluator::dropToLimbs(const Ciphertext &a, int limbs) const
{
    UFC_CHECK(limbs >= 1 && limbs <= a.limbs, "bad target limbs");
    Ciphertext out;
    out.limbs = limbs;
    out.scale = a.scale;
    out.c0 = subPolyQ(ctx_, a.c0, limbs);
    out.c1 = subPolyQ(ctx_, a.c1, limbs);
    return out;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitch(const RnsPoly &c, const EvalKey &key) const
{
    const int limbs = static_cast<int>(c.limbCount());
    const int K = ctx_->specialLimbs();
    const int digits = ctx_->digitsForLimbs(limbs);
    const u64 n = ctx_->degree();
    const auto qpModuli = ctx_->qpBasis(limbs);

    RnsPoly cCoeff = c;
    cCoeff.toCoeff();

    RnsPoly acc0(ctx_->ring(), qpModuli, PolyForm::Eval);
    RnsPoly acc1(ctx_->ring(), qpModuli, PolyForm::Eval);

    for (int d = 0; d < digits; ++d) {
        const auto [lo, hi] = ctx_->digitRange(d, limbs);

        // Digit extraction: y_i = [c_i * QhatInv_d]_{q_i} for limbs in d.
        std::vector<std::vector<u64>> y(hi - lo);
        std::vector<Modulus> srcMods;
        for (int i = lo; i < hi; ++i) {
            const Modulus qi(ctx_->qAt(i));
            srcMods.push_back(qi);
            const u64 f = ctx_->qHatInvDigit(d, i);
            const u64 fShoup = qi.shoupPrecompute(f);
            y[i - lo].resize(n);
            const Poly &src = cCoeff.limb(i);
            for (u64 k = 0; k < n; ++k)
                y[i - lo][k] = qi.mulShoup(src[k], f, fShoup);
        }

        // ModUp: fast base conversion of the digit to the full Q x P
        // basis.  BConv(x)_t = sum_i [x_i * dHatInv_i]_{q_i} * dHat_i
        // where the dHat products are over the digit's own limbs.
        RnsBasis digitBasis(std::vector<u64>(
            qpModuli.begin() + lo, qpModuli.begin() + hi));
        RnsPoly up(ctx_->ring(), qpModuli, PolyForm::Coeff);
        for (int i = lo; i < hi; ++i) {
            const Modulus &qi = srcMods[i - lo];
            const u64 f = digitBasis.qHatInvModQi(i - lo);
            const u64 fShoup = qi.shoupPrecompute(f);
            for (u64 k = 0; k < n; ++k)
                y[i - lo][k] = qi.mulShoup(y[i - lo][k], f, fShoup);
        }
        for (size_t t = 0; t < qpModuli.size(); ++t) {
            const int gt = static_cast<int>(t);
            if (gt >= lo && gt < hi) {
                // Target inside the digit: conversion is exact and equals
                // c_i * QhatInv_d, i.e. undo the inner dHatInv scaling.
                const Modulus &qi = srcMods[gt - lo];
                const u64 dHat = digitBasis.qHatModP(gt - lo, qi);
                const u64 dHatShoup = qi.shoupPrecompute(dHat);
                Poly &dst = up.limb(t);
                for (u64 k = 0; k < n; ++k)
                    dst[k] = qi.mulShoup(y[gt - lo][k], dHat, dHatShoup);
                continue;
            }
            const Modulus pt(qpModuli[t]);
            Poly &dst = up.limb(t);
            for (int i = lo; i < hi; ++i) {
                const u64 hat = digitBasis.qHatModP(i - lo, pt);
                const u64 hatShoup = pt.shoupPrecompute(hat);
                const auto &yi = y[i - lo];
                for (u64 k = 0; k < n; ++k) {
                    dst[k] = pt.add(
                        dst[k], pt.mulShoup(yi[k] % pt.value(), hat,
                                            hatShoup));
                }
            }
        }

        // Inner product with the evaluation key (NTT + EWMM + EWMA).
        up.toEval();
        const RnsPoly kb = subPolyQp(ctx_, key.b[d], limbs);
        const RnsPoly ka = subPolyQp(ctx_, key.a[d], limbs);
        acc0.fmaEval(up, kb);
        acc1.fmaEval(up, ka);
    }

    (void)K;
    return {modDown(std::move(acc0), limbs),
            modDown(std::move(acc1), limbs)};
}

RnsPoly
CkksEvaluator::modDown(RnsPoly acc, int limbs) const
{
    const int K = ctx_->specialLimbs();
    const u64 n = ctx_->degree();
    acc.toCoeff();

    // BConv the P part down to the q basis.
    std::vector<u64> pMods = ctx_->pChain();
    RnsBasis pBasis(pMods);
    std::vector<std::vector<u64>> yp(K);
    for (int j = 0; j < K; ++j) {
        const Modulus pj(pMods[j]);
        const u64 f = pBasis.qHatInvModQi(j);
        const u64 fShoup = pj.shoupPrecompute(f);
        yp[j].resize(n);
        const Poly &src = acc.limb(limbs + j);
        for (u64 k = 0; k < n; ++k)
            yp[j][k] = pj.mulShoup(src[k], f, fShoup);
    }

    RnsPoly out = ctx_->makePoly(limbs, PolyForm::Coeff);
    for (int i = 0; i < limbs; ++i) {
        const Modulus qi(ctx_->qAt(i));
        Poly &dst = out.limb(i);
        // conv = BConv_P->qi(acc_P)
        for (int j = 0; j < K; ++j) {
            const u64 hat = pBasis.qHatModP(j, qi);
            const u64 hatShoup = qi.shoupPrecompute(hat);
            const auto &yj = yp[j];
            for (u64 k = 0; k < n; ++k) {
                dst[k] = qi.add(
                    dst[k],
                    qi.mulShoup(yj[k] % qi.value(), hat, hatShoup));
            }
        }
        // (acc_q - conv) * P^-1 mod qi
        const u64 pInv = ctx_->pInvModQ(i);
        const u64 pInvShoup = qi.shoupPrecompute(pInv);
        const Poly &src = acc.limb(i);
        for (u64 k = 0; k < n; ++k) {
            const u64 diff = subMod(src[k], dst[k], qi.value());
            dst[k] = qi.mulShoup(diff, pInv, pInvShoup);
        }
    }
    out.toEval();
    return out;
}

Ciphertext
CkksEvaluator::applyGalois(const Ciphertext &a, u64 k,
                           const EvalKey &galoisKey) const
{
    // Permute both components, then switch sigma_k(c1) from sigma_k(s)
    // back to s.
    RnsPoly g0 = a.c0.automorphism(k);
    RnsPoly g1 = a.c1.automorphism(k);

    auto [d0, d1] = keySwitch(g1, galoisKey);
    d0.addInPlace(g0);

    Ciphertext out;
    out.c0 = std::move(d0);
    out.c1 = std::move(d1);
    out.limbs = a.limbs;
    out.scale = a.scale;
    return out;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &a, int steps,
                      const EvalKey &galoisKey) const
{
    const u64 twoN = 2 * ctx_->degree();
    const u64 order = ctx_->degree() / 2;
    i64 r = steps % static_cast<i64>(order);
    if (r < 0)
        r += static_cast<i64>(order);
    const u64 k = powMod(5, static_cast<u64>(r), twoN);
    return applyGalois(a, k, galoisKey);
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &a, const EvalKey &conjKey) const
{
    return applyGalois(a, 2 * ctx_->degree() - 1, conjKey);
}

} // namespace ckks
} // namespace ufc
