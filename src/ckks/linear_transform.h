/**
 * @file
 * Homomorphic slot-wise linear transforms (matrix-vector products) with
 * baby-step/giant-step rotation batching.
 *
 * y_j = sum_l M[j][l] * x_l is evaluated from the matrix's generalized
 * diagonals: y = sum_d diag_d ⊙ rot(x, d).  BSGS splits d = g*j + i so a
 * transform with D nonzero diagonals costs about 2*sqrt(D) rotations and
 * D plaintext multiplications — the structure the paper's workload traces
 * (CoeffToSlot, repacking) are built from.
 */

#ifndef UFC_CKKS_LINEAR_TRANSFORM_H
#define UFC_CKKS_LINEAR_TRANSFORM_H

#include <map>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/rotation_keys.h"

namespace ufc {
namespace ckks {

/** A slot-space linear transform given by its nonzero diagonals. */
class LinearTransform
{
  public:
    /**
     * @param diagonals  map from diagonal index d (0 <= d < slots) to the
     *                   diagonal vector: diag_d[j] = M[j][(j + d) % n]
     * @param scale      encoding scale for the diagonal plaintexts
     */
    LinearTransform(const CkksContext *ctx, const CkksEncoder *encoder,
                    std::map<int, std::vector<cplx>> diagonals,
                    double scale);

    /** Build from a dense n x n matrix (drops all-zero diagonals). */
    static LinearTransform fromMatrix(
        const CkksContext *ctx, const CkksEncoder *encoder,
        const std::vector<std::vector<cplx>> &matrix, double scale);

    /**
     * Apply to a ciphertext; consumes one multiplicative level (the
     * caller rescales).  Output scale = ct.scale * encodeScale.
     */
    Ciphertext apply(const CkksEvaluator &eval, const Ciphertext &ct,
                     RotationKeySet &keys) const;

    size_t diagonalCount() const { return diagonals_.size(); }

  private:
    const CkksContext *ctx_;
    const CkksEncoder *encoder_;
    std::map<int, std::vector<cplx>> diagonals_;
    double scale_;
    int babyStep_;
};

} // namespace ckks
} // namespace ufc

#endif // UFC_CKKS_LINEAR_TRANSFORM_H
