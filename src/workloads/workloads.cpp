/**
 * @file
 * Workload trace generators.
 *
 * Operation counts follow the published algorithm structures (HELR,
 * ResNet-20 with approximated ReLU, k-way bitonic sorting, Han-Ki
 * bootstrapping, ZAMA NN inference, oblivious top-k k-NN).  Absolute
 * counts are parameterized approximations of those structures — the
 * accelerator comparison depends on the op mix and parameter sets, not on
 * data values.
 */

#include "workloads/workloads.h"

#include <cmath>

#include "common/check.h"
#include "trace/trace.h"

namespace ufc {
namespace workloads {

using trace::OpKind;
using trace::Trace;

void
setCkksParams(Trace &tr, const ckks::CkksParams &p)
{
    tr.ckksRingDim = p.ringDim;
    tr.ckksLevels = p.levels;
    tr.ckksSpecial = p.specialLimbs;
    tr.ckksDnum = p.dnum;
    tr.ckksLimbBits = p.scaleBits;
}

void
setTfheParams(Trace &tr, const tfhe::TfheParams &p)
{
    tr.tfheRingDim = p.ringDim;
    tr.tfheLweDim = p.lweDim;
    tr.tfheGadgetLevels = p.gadgetLevels;
    tr.tfheKsLevels = p.ksLevels;
    tr.tfheLimbBits = 32;
}

int
emitBootstrap(Trace &tr, const ckks::CkksParams &p)
{
    const int L = p.levels;
    const int slots = static_cast<int>(p.ringDim / 2);
    const int sqrtSlots = static_cast<int>(std::ceil(std::sqrt(slots)));
    const int bsgs = static_cast<int>(std::ceil(std::sqrt(sqrtSlots)));

    // ModRaise to the full chain.
    tr.beginPhase("bootstrap");
    tr.push(OpKind::CkksModRaise, L);

    // CoeffToSlot: homomorphic DFT as ~log-depth BSGS linear transforms.
    // Three radix-sqrt stages, each 2*sqrt(r) rotations + r plaintext
    // multiplies, consuming one level per stage.
    tr.beginPhase("coeff_to_slot");
    int limbs = L;
    for (int stage = 0; stage < 3 && limbs > 3; ++stage) {
        tr.push(OpKind::CkksRotate, limbs, 2 * bsgs, 0, stage * 64 + 1);
        tr.push(OpKind::CkksMultPlain, limbs, 2 * bsgs);
        tr.push(OpKind::CkksAdd, limbs, 2 * bsgs);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;
    }
    tr.push(OpKind::CkksConjugate, limbs);
    tr.endPhase();

    // EvalMod: degree-31 Chebyshev sine approximation plus double-angle
    // steps; about 9 multiplicative levels.
    tr.beginPhase("eval_mod");
    for (int lvl = 0; lvl < 9 && limbs > 2; ++lvl) {
        tr.push(OpKind::CkksMult, limbs, 2);
        tr.push(OpKind::CkksAdd, limbs, 2);
        tr.push(OpKind::CkksRescale, limbs, 2);
        --limbs;
    }
    tr.endPhase();

    // SlotToCoeff: inverse linear transform, three more stages.
    tr.beginPhase("slot_to_coeff");
    for (int stage = 0; stage < 3 && limbs > 1; ++stage) {
        tr.push(OpKind::CkksRotate, limbs, 2 * bsgs, 0, stage * 64 + 33);
        tr.push(OpKind::CkksMultPlain, limbs, 2 * bsgs);
        tr.push(OpKind::CkksAdd, limbs, 2 * bsgs);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;
    }
    tr.endPhase();
    tr.endPhase(); // bootstrap
    return limbs;
}

Trace
helr(const ckks::CkksParams &p, int iterations)
{
    Trace tr;
    tr.name = "HELR";
    setCkksParams(tr, p);
    tr.liveCiphertexts = 12;

    int limbs = p.levels;
    for (int it = 0; it < iterations; ++it) {
        // One mini-batch iteration: inner products over 256 features
        // (log-rotate-and-add), sigmoid via a degree-3 polynomial, and
        // the gradient update — about 4 multiplicative levels.
        if (limbs < 6)
            limbs = emitBootstrap(tr, p);

        // X^T * w : rotation tree over the feature dimension.
        tr.push(OpKind::CkksMultPlain, limbs, 1);
        tr.push(OpKind::CkksRotate, limbs, 8, 0, 1);
        tr.push(OpKind::CkksAdd, limbs, 8);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;

        // Degree-3 sigmoid approximation: 2 levels.
        tr.push(OpKind::CkksMult, limbs, 2);
        tr.push(OpKind::CkksAdd, limbs, 2);
        tr.push(OpKind::CkksRescale, limbs, 2);
        --limbs;
        tr.push(OpKind::CkksMult, limbs, 1);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;

        // Gradient aggregation across the batch (rotation tree) and the
        // weight update.
        tr.push(OpKind::CkksMult, limbs, 1);
        tr.push(OpKind::CkksRotate, limbs, 10, 0, 2);
        tr.push(OpKind::CkksAdd, limbs, 10);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;
        tr.push(OpKind::CkksAdd, limbs, 1);
    }
    return tr;
}

Trace
resnet20(const ckks::CkksParams &p)
{
    Trace tr;
    tr.name = "ResNet-20";
    setCkksParams(tr, p);
    tr.liveCiphertexts = 12;

    int limbs = p.levels;
    // 3 stages x 3 residual blocks x 2 conv layers + stem + head.
    const int convLayers = 19;
    for (int layer = 0; layer < convLayers; ++layer) {
        const int channels = layer < 7 ? 16 : (layer < 13 ? 32 : 64);
        // im2col-style convolution: 9 kernel taps, rotations gather the
        // neighborhood, channel accumulation via rotate-and-add.
        const int rotations = 9 + static_cast<int>(std::log2(channels));
        if (limbs < 5)
            limbs = emitBootstrap(tr, p);

        tr.push(OpKind::CkksRotate, limbs, rotations, 0, layer + 1);
        tr.push(OpKind::CkksMultPlain, limbs, 9 * 2);
        tr.push(OpKind::CkksAdd, limbs, 9 * 2);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;

        // Approximated ReLU: degree-7 composite polynomial, 3 levels.
        for (int d = 0; d < 3; ++d) {
            if (limbs < 3)
                limbs = emitBootstrap(tr, p);
            tr.push(OpKind::CkksMult, limbs, 2);
            tr.push(OpKind::CkksAdd, limbs, 2);
            tr.push(OpKind::CkksRescale, limbs, 2);
            --limbs;
        }
    }
    // Average pool + fully connected head.
    tr.push(OpKind::CkksRotate, limbs, 6, 0, 90);
    tr.push(OpKind::CkksAdd, limbs, 6);
    tr.push(OpKind::CkksMultPlain, limbs, 1);
    tr.push(OpKind::CkksRescale, limbs);
    return tr;
}

Trace
sorting(const ckks::CkksParams &p, int elements)
{
    Trace tr;
    tr.name = "Sorting";
    setCkksParams(tr, p);
    tr.liveCiphertexts = 12;

    const int logE = static_cast<int>(std::round(std::log2(elements)));
    int limbs = p.levels;
    // Bitonic network: logE*(logE+1)/2 compare-exchange stages.  Each
    // stage evaluates an approximate-sign polynomial (depth ~4) and the
    // conditional swap (1 level), over rotated partner elements.
    for (int i = 0; i < logE; ++i) {
        for (int j = 0; j <= i; ++j) {
            if (limbs < 7)
                limbs = emitBootstrap(tr, p);
            tr.push(OpKind::CkksRotate, limbs, 2, 0, i * logE + j + 1);
            tr.push(OpKind::CkksAdd, limbs, 2);
            // sign(x) composite approximation: 4 levels of squaring.
            for (int d = 0; d < 4; ++d) {
                tr.push(OpKind::CkksMult, limbs, 1);
                tr.push(OpKind::CkksAdd, limbs, 1);
                tr.push(OpKind::CkksRescale, limbs);
                --limbs;
            }
            // Conditional swap: one multiply level, two outputs.
            tr.push(OpKind::CkksMult, limbs, 2);
            tr.push(OpKind::CkksAdd, limbs, 2);
            tr.push(OpKind::CkksRescale, limbs, 2);
            --limbs;
        }
    }
    return tr;
}

Trace
ckksBootstrapping(const ckks::CkksParams &p, int repeats)
{
    Trace tr;
    tr.name = "Bootstrapping";
    setCkksParams(tr, p);
    tr.liveCiphertexts = 12;
    for (int i = 0; i < repeats; ++i) {
        const int out = emitBootstrap(tr, p);
        // Burn the recovered levels with squarings, as the 30-level
        // benchmark of Section VI-D1 does.
        for (int limbs = out; limbs > 1; --limbs) {
            tr.push(OpKind::CkksMult, limbs, 1);
            tr.push(OpKind::CkksRescale, limbs);
        }
    }
    return tr;
}

Trace
pbsThroughput(const tfhe::TfheParams &p, int count)
{
    Trace tr;
    tr.name = "PBS-" + p.name;
    setTfheParams(tr, p);
    tr.push(OpKind::TfhePbs, 0, count);
    return tr;
}

Trace
tfheNn(const tfhe::TfheParams &p, int layers, int neurons)
{
    Trace tr;
    tr.name = "NN-" + p.name;
    setTfheParams(tr, p);
    for (int l = 0; l < layers; ++l) {
        // Dense layer: weighted sums over the previous layer's outputs
        // (plaintext weights), then one PBS activation per neuron.
        tr.push(OpKind::TfheLinear, 0, neurons, neurons);
        tr.push(OpKind::TfhePbs, 0, neurons);
    }
    return tr;
}

Trace
hybridKnn(const ckks::CkksParams &cp, const tfhe::TfheParams &tp,
          int points, int features, int k)
{
    Trace tr;
    tr.name = "kNN-" + tp.name;
    setCkksParams(tr, cp);
    setTfheParams(tr, tp);
    tr.liveCiphertexts = 16;

    // Phase 1 (CKKS): squared distances ||x - p_i||^2 for the whole
    // database.  points x features values span several full ciphertexts;
    // each needs the difference, a square, and a rotation tree over the
    // feature dimension, followed by a bootstrap to refresh levels for
    // the masking rounds (Cong et al. evaluate the distance and selection
    // arithmetic in the SIMD scheme).
    int limbs = cp.levels;
    const int logF = static_cast<int>(std::round(std::log2(features)));
    const int ctBatches = std::max<int>(
        1, static_cast<int>((static_cast<u64>(points) * features) /
                            (cp.ringDim / 2)));
    tr.beginPhase("ckks_distance");
    for (int b = 0; b < ctBatches; ++b) {
        tr.push(OpKind::CkksAdd, limbs, 2);
        tr.push(OpKind::CkksMult, limbs, 1);
        tr.push(OpKind::CkksRescale, limbs);
        tr.push(OpKind::CkksRotate, limbs - 1, logF, 0, b + 1);
        tr.push(OpKind::CkksAdd, limbs - 1, logF);
    }
    limbs -= 1;
    // Compact the per-point distances into one ciphertext (mask + align).
    tr.push(OpKind::CkksMultPlain, limbs, ctBatches);
    tr.push(OpKind::CkksRotate, limbs, ctBatches, 0, 40);
    tr.push(OpKind::CkksAdd, limbs, ctBatches);
    tr.push(OpKind::CkksRescale, limbs);
    --limbs;
    limbs = emitBootstrap(tr, cp);
    tr.endPhase(); // ckks_distance

    // CKKS pre-filter: approximate threshold comparisons prune the
    // candidate set in the SIMD domain (this bulk filtering is why the
    // hybrid approach beats running everything in the logic scheme); only
    // the surviving `candidates` move to exact TFHE comparisons.
    const int candidates = std::min(points, 32 * k);
    tr.beginPhase("ckks_prefilter");
    for (int round = 0; round < 2; ++round) {
        for (int d = 0; d < 3; ++d) {
            tr.push(OpKind::CkksMult, limbs, 1);
            tr.push(OpKind::CkksAdd, limbs, 1);
            tr.push(OpKind::CkksRescale, limbs);
            --limbs;
        }
        tr.push(OpKind::CkksMultPlain, limbs, 2);
        tr.push(OpKind::CkksRotate, limbs, 4, 0, 44 + round);
        tr.push(OpKind::CkksAdd, limbs, 4);
        if (limbs < 6)
            limbs = emitBootstrap(tr, cp);
    }
    tr.endPhase(); // ckks_prefilter

    // Phase 2 (switch): SlotToCoeff moves distances into coefficients,
    // then the LWEU extracts one LWE per candidate (Figure 1's
    // extraction path), with a modulus switch to the logic parameters.
    const int sqrtSlots = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(cp.ringDim / 2))));
    const int bsgs = static_cast<int>(std::ceil(std::sqrt(sqrtSlots)));
    tr.beginPhase("extract_to_lwe");
    for (int stage = 0; stage < 3 && limbs > 2; ++stage) {
        tr.push(OpKind::CkksRotate, limbs, 2 * bsgs, 0, stage * 64 + 7);
        tr.push(OpKind::CkksMultPlain, limbs, 2 * bsgs);
        tr.push(OpKind::CkksAdd, limbs, 2 * bsgs);
        tr.push(OpKind::CkksRescale, limbs);
        --limbs;
    }
    tr.push(OpKind::SwitchExtract, limbs, candidates);
    tr.push(OpKind::TfheModSwitch, 0, candidates);
    tr.endPhase(); // extract_to_lwe

    // Phase 3 (TFHE): oblivious top-k tournament — pairwise comparisons
    // via sign PBS and MUX selection of the winners each round.  The
    // message space grows with the ring dimension, so small parameter
    // sets need digit-chained comparisons (several PBS per compare) while
    // T4-sized rings compare full-precision distances in one shot — the
    // reason the paper sweeps T1-T4 for this workload.
    const int pbsPerCompare =
        tp.ringDim >= (1u << 14) ? 1 : (tp.ringDim >= (1u << 11) ? 2 : 3);
    int remaining = candidates;
    tr.beginPhase("tfhe_topk");
    while (remaining > k) {
        const int comparisons = remaining / 2;
        tr.push(OpKind::TfheLinear, 0, comparisons, 2);
        tr.push(OpKind::TfhePbs, 0, comparisons * pbsPerCompare);
        tr.push(OpKind::TfheLinear, 0, comparisons, 3);
        remaining = (remaining + 1) / 2;
    }
    tr.endPhase(); // tfhe_topk

    // Phase 4 (switch): repack the k selected labels into CKKS; the
    // Pegasus-style repack is a BSGS linear transform plus an EvalMod to
    // clean the phase, i.e. close to a light bootstrap.
    tr.beginPhase("repack");
    tr.push(OpKind::SwitchRepack, std::max(2, limbs), k);
    int rlimbs = std::max(3, limbs);
    for (int lvl = 0; lvl < 6 && rlimbs > 2; ++lvl) {
        tr.push(OpKind::CkksMult, rlimbs, 2);
        tr.push(OpKind::CkksAdd, rlimbs, 2);
        tr.push(OpKind::CkksRescale, rlimbs, 2);
        --rlimbs;
    }
    tr.endPhase(); // repack
    return tr;
}

std::vector<Trace>
ckksSuite(const ckks::CkksParams &p)
{
    return {helr(p), resnet20(p), sorting(p), ckksBootstrapping(p)};
}

std::vector<Trace>
tfheSuite(const tfhe::TfheParams &p)
{
    return {pbsThroughput(p), tfheNn(p)};
}

} // namespace workloads
} // namespace ufc
