/**
 * @file
 * Workload trace generators (paper Section VI-D).
 *
 * Each generator emits the ciphertext-granularity operation stream of one
 * evaluated program, with level (limb-count) tracking so key-switching
 * costs shrink as rescaling consumes the modulus chain, and bootstraps
 * fire when levels run out — the behaviour the hardware actually sees.
 */

#ifndef UFC_WORKLOADS_WORKLOADS_H
#define UFC_WORKLOADS_WORKLOADS_H

#include "ckks/params.h"
#include "tfhe/params.h"
#include "trace/trace.h"

namespace ufc {
namespace workloads {

/** Attach CKKS parameters to a trace header. */
void setCkksParams(trace::Trace &tr, const ckks::CkksParams &p);
/** Attach TFHE parameters to a trace header. */
void setTfheParams(trace::Trace &tr, const tfhe::TfheParams &p);

/**
 * Homomorphic logistic regression training (HELR, Han et al.): 30
 * iterations over 1024-sample x 256-feature batches, with bootstrapping
 * whenever the multiplicative budget runs out.
 */
trace::Trace helr(const ckks::CkksParams &p, int iterations = 30);

/**
 * ResNet-20 inference on one CIFAR-10 image (Lee et al.): 20 convolution
 * layers with approximated ReLU between them, bootstrapping per block.
 */
trace::Trace resnet20(const ckks::CkksParams &p);

/**
 * 2-way bitonic sorting of 16384 packed elements (Hong et al.): log^2
 * compare-exchange stages, each stage an approximate-sign evaluation.
 */
trace::Trace sorting(const ckks::CkksParams &p, int elements = 16384);

/** Repeated full CKKS bootstrapping (Han-Ki style, 30 output levels). */
trace::Trace ckksBootstrapping(const ckks::CkksParams &p, int repeats = 1);

/** TFHE functional-bootstrapping throughput: `count` independent PBS. */
trace::Trace pbsThroughput(const tfhe::TfheParams &p, int count = 1024);

/**
 * ZAMA-style NN inference with programmable bootstrapping: `layers`
 * dense layers of `neurons` neurons, one PBS per activation.
 */
trace::Trace tfheNn(const tfhe::TfheParams &p, int layers = 20,
                    int neurons = 256);

/**
 * Hybrid k-NN classification (Cong et al.): CKKS distance computation
 * over `points` database entries with `features` dimensions, extraction
 * to LWE, TFHE comparison/top-k selection, and repacking of the result.
 */
trace::Trace hybridKnn(const ckks::CkksParams &cp,
                       const tfhe::TfheParams &tp, int points = 4096,
                       int features = 128, int k = 8);

/** All SIMD-scheme workloads evaluated in Figure 10(a). */
std::vector<trace::Trace> ckksSuite(const ckks::CkksParams &p);
/** All logic-scheme workloads evaluated in Figure 10(b). */
std::vector<trace::Trace> tfheSuite(const tfhe::TfheParams &p);

/**
 * CKKS bootstrap expansion helper shared by the generators: emits
 * ModRaise + CoeffToSlot + EvalMod + SlotToCoeff at the given parameters
 * and returns the limb count available after the bootstrap.
 */
int emitBootstrap(trace::Trace &tr, const ckks::CkksParams &p);

} // namespace workloads
} // namespace ufc

#endif // UFC_WORKLOADS_WORKLOADS_H
