#include "metrics/flight_recorder.h"

#include <cstdio>

#include "metrics/metrics.h"

namespace ufc {
namespace metrics {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::JobStart: return "job_start";
      case EventKind::JobOk: return "job_ok";
      case EventKind::JobRetry: return "job_retry";
      case EventKind::JobFailed: return "job_failed";
      case EventKind::JobTimeout: return "job_timeout";
      case EventKind::CacheHit: return "cache_hit";
      case EventKind::CacheMiss: return "cache_miss";
      case EventKind::CacheEvict: return "cache_evict";
      case EventKind::WatchdogTrip: return "watchdog_trip";
    }
    return "?";
}

std::string
formatEvent(const Event &e)
{
    char head[64];
    std::snprintf(head, sizeof(head), "#%llu +%.3fms ",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<double>(e.nsSinceStart) / 1e6);
    std::string out = head;
    out += eventKindName(e.kind);
    if (!e.label.empty()) {
        out += " ";
        out += e.label;
    }
    if (!e.detail.empty()) {
        out += " ";
        out += e.detail;
    }
    return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      start_(std::chrono::steady_clock::now())
{
    ring_.resize(capacity_);
}

void
FlightRecorder::record(EventKind kind, const std::string &label,
                       const std::string &detail)
{
    if (!enabled())
        return;
    const auto now = std::chrono::steady_clock::now();
    const u64 ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
    std::lock_guard<std::mutex> lock(mu_);
    Event &e = ring_[next_ % capacity_];
    e.seq = next_;
    e.nsSinceStart = ns;
    e.kind = kind;
    e.label = label;
    e.detail = detail;
    ++next_;
}

std::vector<Event>
FlightRecorder::tail(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const u64 have = next_ < capacity_ ? next_ : capacity_;
    const u64 want = n < have ? n : have;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(want));
    for (u64 i = next_ - want; i < next_; ++i)
        out.push_back(ring_[i % capacity_]);
    return out;
}

std::vector<std::string>
FlightRecorder::formatTail(std::size_t n) const
{
    std::vector<std::string> out;
    for (const Event &e : tail(n))
        out.push_back(formatEvent(e));
    return out;
}

u64
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    next_ = 0;
    for (Event &e : ring_)
        e = Event{};
}

FlightRecorder &
flightRecorder()
{
    static FlightRecorder *r = new FlightRecorder(); // never freed
    return *r;
}

} // namespace metrics
} // namespace ufc
