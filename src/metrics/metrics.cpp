#include "metrics/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "metrics/flight_recorder.h"

namespace ufc {
namespace metrics {

namespace detail {

std::atomic<int> gState{-1};

bool
initFromEnv()
{
    const char *env = std::getenv("UFC_METRICS");
    const bool on =
        env != nullptr && *env != '\0' && std::string(env) != "0";
    int expected = -1;
    gState.compare_exchange_strong(expected, on ? 1 : 0,
                                   std::memory_order_relaxed);
    // Either we resolved it or another thread / setEnabled() did first;
    // in both cases re-read the settled value.
    return gState.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::gState.store(on ? 1 : 0, std::memory_order_relaxed);
}

u64
Histogram::count() const
{
    u64 n = 0;
    for (int i = 0; i < kBuckets; ++i)
        n += buckets_[i].load(std::memory_order_relaxed);
    return n;
}

u64
Histogram::percentile(double q) const
{
    u64 counts[kBuckets];
    u64 total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile sample, 1-based: ceil(q * total), at least 1.
    u64 rank = static_cast<u64>(q * static_cast<double>(total));
    if (static_cast<double>(rank) < q * static_cast<double>(total))
        ++rank;
    if (rank == 0)
        rank = 1;
    u64 seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

void
Histogram::zero()
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

namespace {

enum class Kind { Counter, Gauge, Histogram };

struct Slot {
    Kind kind;
    Counter *c = nullptr;
    Gauge *g = nullptr;
    Histogram *h = nullptr;
};

struct Registry {
    std::mutex mu;
    // Ordered map: exposition iterates it directly for deterministic,
    // name-sorted output.
    std::map<std::string, Slot> slots;
};

Registry &
registry()
{
    static Registry *r = new Registry(); // never freed, like prof counters
    return *r;
}

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Histogram: return "histogram";
    }
    return "?";
}

Slot &
lookup(const std::string &name, const std::string &help, Kind kind)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.slots.find(name);
    if (it != r.slots.end()) {
        if (it->second.kind != kind)
            throw ConfigError("metric '" + name + "' already registered as " +
                              kindName(it->second.kind) + ", requested as " +
                              kindName(kind));
        return it->second;
    }
    Slot s;
    s.kind = kind;
    switch (kind) {
      case Kind::Counter: s.c = new Counter(name, help); break;
      case Kind::Gauge: s.g = new Gauge(name, help); break;
      case Kind::Histogram: s.h = new Histogram(name, help); break;
    }
    return r.slots.emplace(name, s).first->second;
}

} // namespace

Counter &
counter(const std::string &name, const std::string &help)
{
    return *lookup(name, help, Kind::Counter).c;
}

Gauge &
gauge(const std::string &name, const std::string &help)
{
    return *lookup(name, help, Kind::Gauge).g;
}

Histogram &
histogram(const std::string &name, const std::string &help)
{
    return *lookup(name, help, Kind::Histogram).h;
}

void
writePrometheus(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &[name, slot] : r.slots) {
        switch (slot.kind) {
          case Kind::Counter: {
            if (!slot.c->help().empty())
                os << "# HELP " << name << " " << slot.c->help() << "\n";
            os << "# TYPE " << name << " counter\n";
            os << name << " " << slot.c->value() << "\n";
            break;
          }
          case Kind::Gauge: {
            if (!slot.g->help().empty())
                os << "# HELP " << name << " " << slot.g->help() << "\n";
            os << "# TYPE " << name << " gauge\n";
            os << name << " " << slot.g->value() << "\n";
            os << "# TYPE " << name << "_high_water gauge\n";
            os << name << "_high_water " << slot.g->highWater() << "\n";
            break;
          }
          case Kind::Histogram: {
            const Histogram &h = *slot.h;
            if (!h.help().empty())
                os << "# HELP " << name << " " << h.help() << "\n";
            os << "# TYPE " << name << " histogram\n";
            // Cumulative buckets, up to the highest non-empty one.
            int top = -1;
            for (int i = 0; i < Histogram::kBuckets; ++i)
                if (h.bucketCount(i) > 0)
                    top = i;
            u64 cum = 0;
            for (int i = 0; i <= top; ++i) {
                cum += h.bucketCount(i);
                os << name << "_bucket{le=\""
                   << Histogram::bucketUpperBound(i) << "\"} " << cum
                   << "\n";
            }
            os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
            os << name << "_sum " << h.sum() << "\n";
            os << name << "_count " << h.count() << "\n";
            break;
          }
        }
    }
}

void
writeJson(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    os << "{\"schema\":" << json::quote(kMetricsSchema);
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, slot] : r.slots) {
        if (slot.kind != Kind::Counter)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << json::quote(name) << ":" << slot.c->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, slot] : r.slots) {
        if (slot.kind != Kind::Gauge)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << json::quote(name) << ":{\"value\":" << slot.g->value()
           << ",\"high_water\":" << slot.g->highWater() << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, slot] : r.slots) {
        if (slot.kind != Kind::Histogram)
            continue;
        if (!first)
            os << ",";
        first = false;
        const Histogram &h = *slot.h;
        os << json::quote(name) << ":{\"count\":" << h.count()
           << ",\"sum\":" << h.sum() << ",\"p50\":" << h.percentile(0.50)
           << ",\"p95\":" << h.percentile(0.95)
           << ",\"p99\":" << h.percentile(0.99) << ",\"buckets\":{";
        bool bFirst = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            const u64 n = h.bucketCount(i);
            if (n == 0)
                continue;
            if (!bFirst)
                os << ",";
            bFirst = false;
            os << "\"" << Histogram::bucketUpperBound(i) << "\":" << n;
        }
        os << "}}";
    }
    os << "}}";
}

void
savePrometheus(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw ConfigError("cannot open metrics output file: " + path);
    writePrometheus(out);
    if (!out)
        throw ConfigError("failed writing metrics output file: " + path);
}

void
resetForTest()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &[name, slot] : r.slots) {
        switch (slot.kind) {
          case Kind::Counter: slot.c->zero(); break;
          case Kind::Gauge: slot.g->zero(); break;
          case Kind::Histogram: slot.h->zero(); break;
        }
    }
    flightRecorder().clear();
}

} // namespace metrics
} // namespace ufc
