/**
 * @file
 * Bounded ring buffer of recent structured events — a flight recorder.
 *
 * A 130-job sweep that fails on job 87 should carry its own post-mortem:
 * which jobs started around it, which cache lookups hit, whether a
 * watchdog tripped.  Instrumented layers record(...) short structured
 * events into a fixed-capacity ring; when a job fails, the runner
 * attaches the formatted tail to JobOutcome diagnostics so the failure
 * report is self-contained.
 *
 * Like the metrics registry the recorder is observation-only and gated
 * on metrics::enabled(); the ring is mutex-guarded (events are rare
 * relative to the simulation hot loop, so a lock here is cheap and keeps
 * wrap-around ordering trivially correct).
 */

#ifndef UFC_METRICS_FLIGHT_RECORDER_H
#define UFC_METRICS_FLIGHT_RECORDER_H

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace ufc {
namespace metrics {

enum class EventKind {
    JobStart,
    JobOk,
    JobRetry,
    JobFailed,
    JobTimeout,
    CacheHit,
    CacheMiss,
    CacheEvict,
    WatchdogTrip,
};

const char *eventKindName(EventKind k);

struct Event {
    u64 seq = 0;      ///< Global sequence number (monotone, never wraps).
    u64 nsSinceStart = 0; ///< Nanoseconds since recorder construction.
    EventKind kind = EventKind::JobStart;
    std::string label;  ///< Subject (job label, cache key digest, ...).
    std::string detail; ///< Free-form context (attempt number, sizes, ...).
};

/** One line per event: `#<seq> +<ms>ms <kind> <label> <detail>`. */
std::string formatEvent(const Event &e);

class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 256;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    /** Append an event (no-op unless metrics::enabled()). */
    void record(EventKind kind, const std::string &label,
                const std::string &detail = "");

    /** The most recent `n` events, oldest first. */
    std::vector<Event> tail(std::size_t n) const;

    /** Formatted tail(), one string per event. */
    std::vector<std::string> formatTail(std::size_t n) const;

    /** Total events ever recorded (including overwritten ones). */
    u64 totalRecorded() const;

    std::size_t capacity() const { return capacity_; }

    void clear();

  private:
    const std::size_t capacity_;
    const std::chrono::steady_clock::time_point start_;
    mutable std::mutex mu_;
    std::vector<Event> ring_; // ring_[seq % capacity_]
    u64 next_ = 0;            // next sequence number
};

/** The process-wide recorder used by instrumented layers. */
FlightRecorder &flightRecorder();

} // namespace metrics
} // namespace ufc

#endif // UFC_METRICS_FLIGHT_RECORDER_H
