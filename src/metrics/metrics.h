/**
 * @file
 * Process-wide metrics registry: counters, gauges, and log2-bucketed
 * histograms, with Prometheus text and `ufc.metrics/v1` JSON exposition.
 *
 * PR 3's observability made a single *run* explainable (per-opcode
 * attribution, timelines, UFC_PROFILE timers); this registry makes the
 * *system* observable: batch latency percentiles, cache hit rates,
 * thread-pool pressure, watchdog activity — the signals a long-lived
 * simulation service needs for admission control and monitoring.  The
 * instrumented layers are the runner job lifecycle, runner::ProgramCache,
 * sim::PhaseCache, trace::TraceReader, the shared ThreadPool, and the
 * engine watchdog poll/trip points.
 *
 * ## Contract (same as UFC_PROFILE)
 *
 * The layer is observation-only.  Metrics never influence scheduling,
 * caching decisions or any simulated observable: a run with metrics on is
 * bit-identical to a run with metrics off on cycles, energy, attribution,
 * timelines and error bytes (enforced by the `metrics` ctest label and
 * the CI metrics-differential job).  When off — the default — every
 * instrumentation site costs one relaxed atomic load and a predicted
 * branch.
 *
 * ## Thread safety
 *
 * The hot path is lock-free: recording is relaxed atomic arithmetic on
 * site-cached metric objects.  Registration (first use of a name) is
 * serialized behind a mutex; instruments are never freed, so a cached
 * `Counter &` stays valid for the process lifetime.  snapshot() performs
 * relaxed loads while recorders run: each scalar is read atomically and
 * counters are monotone, but cross-metric consistency is not guaranteed
 * (a histogram's sum may briefly lead or lag its buckets by one in-flight
 * record).
 *
 * ## Enabling
 *
 * UFC_METRICS=1 in the environment (read once, on first query), or
 * setEnabled() programmatically.  `sweep_all` enables the registry by
 * default (opt out with --no-metrics).
 */

#ifndef UFC_METRICS_METRICS_H
#define UFC_METRICS_METRICS_H

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/types.h"

namespace ufc {
namespace metrics {

namespace detail {

/// -1 = unresolved (read UFC_METRICS on first query), 0/1 = resolved.
/// Constant-initialized so enabled() is safe during static init.
extern std::atomic<int> gState;

/// Slow path of enabled(): resolve from the environment, once.
bool initFromEnv();

} // namespace detail

/** Whether recording is on.  Hot path: one relaxed load + one branch. */
inline bool
enabled()
{
    const int s = detail::gState.load(std::memory_order_relaxed);
    if (s >= 0)
        return s != 0;
    return detail::initFromEnv();
}

/** Programmatic override (CLIs, tests; takes precedence over the env). */
void setEnabled(bool on);

/** Monotone event count.  Recording is a relaxed fetch_add. */
class Counter
{
  public:
    Counter(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {}

    void
    inc(u64 n = 1)
    {
        if (enabled())
            v_.fetch_add(n, std::memory_order_relaxed);
    }

    u64 value() const { return v_.load(std::memory_order_relaxed); }
    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

    void zero() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::string help_;
    std::atomic<u64> v_{0};
};

/** Point-in-time level plus its high-water mark (e.g. queue depth,
 *  peak buffered bytes).  set()/add() also raise the high-water mark. */
class Gauge
{
  public:
    Gauge(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {}

    void
    set(i64 v)
    {
        if (!enabled())
            return;
        v_.store(v, std::memory_order_relaxed);
        raiseMax(v);
    }

    void
    add(i64 d)
    {
        if (!enabled())
            return;
        const i64 nv = v_.fetch_add(d, std::memory_order_relaxed) + d;
        raiseMax(nv);
    }

    void sub(i64 d) { add(-d); }

    i64 value() const { return v_.load(std::memory_order_relaxed); }
    i64
    highWater() const
    {
        return max_.load(std::memory_order_relaxed);
    }
    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

    void
    zero()
    {
        v_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    void
    raiseMax(i64 v)
    {
        i64 cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    std::string name_;
    std::string help_;
    std::atomic<i64> v_{0};
    std::atomic<i64> max_{0};
};

/**
 * Log2-bucketed histogram over u64 samples (typically microseconds).
 * Bucket i holds samples whose bit width is i: bucket 0 is exactly the
 * value 0, bucket i >= 1 covers [2^(i-1), 2^i - 1], and bucket 64 ends
 * at the maximum u64.  Recording is two relaxed fetch_adds; percentiles
 * are derived from the bucket counts at read time (the reported value is
 * the upper bound of the bucket containing the requested rank, so it is
 * conservative by at most 2x).  sum() wraps modulo 2^64 like any u64
 * accumulator.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    Histogram(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {}

    static int
    bucketOf(u64 v)
    {
        return static_cast<int>(std::bit_width(v));
    }

    /** Inclusive upper bound of bucket i. */
    static u64
    bucketUpperBound(int i)
    {
        if (i <= 0)
            return 0;
        if (i >= 64)
            return ~u64{0};
        return (u64{1} << i) - 1;
    }

    void
    record(u64 v)
    {
        if (!enabled())
            return;
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    u64
    bucketCount(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    u64 count() const;
    u64 sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Upper bound of the bucket holding the q-quantile sample
     *  (q in [0, 1]); 0 when the histogram is empty. */
    u64 percentile(double q) const;

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

    void zero();

  private:
    std::string name_;
    std::string help_;
    std::atomic<u64> buckets_[kBuckets] = {};
    std::atomic<u64> sum_{0};
};

/**
 * Look up (or create, on first use) a registry instrument.  Returned
 * references are valid for the process lifetime; instrumentation sites
 * cache them in a function-local static so the registry lock is taken
 * once per site.  Registering an existing name as a different instrument
 * type throws ufc::ConfigError.
 */
Counter &counter(const std::string &name, const std::string &help = "");
Gauge &gauge(const std::string &name, const std::string &help = "");
Histogram &histogram(const std::string &name,
                     const std::string &help = "");

/**
 * Write the whole registry in Prometheus text exposition format
 * (sorted by name; histograms as cumulative `_bucket{le="..."}` series
 * plus `_sum`/`_count`; gauges additionally expose a
 * `<name>_high_water` gauge).
 */
void writePrometheus(std::ostream &os);

/** Write the whole registry as one `ufc.metrics/v1` JSON object:
 *  {"schema":"ufc.metrics/v1","counters":{...},"gauges":{...},
 *   "histograms":{...}} — histograms carry count/sum/p50/p95/p99 and
 *  their non-empty buckets (non-cumulative, unlike Prometheus). */
void writeJson(std::ostream &os);

/** Schema identifier written by writeJson(). */
inline constexpr const char *kMetricsSchema = "ufc.metrics/v1";

/** File wrapper over writePrometheus(); throws ufc::ConfigError when
 *  the path cannot be opened. */
void savePrometheus(const std::string &path);

/** Zero every registered instrument and clear the flight recorder
 *  (registration survives).  Tests only — not synchronized against
 *  concurrent recorders beyond per-scalar atomicity. */
void resetForTest();

/** RAII timer recording its scope's duration in microseconds into a
 *  Histogram when metrics are on. */
class ScopedDurationUs
{
  public:
    explicit ScopedDurationUs(Histogram &h)
        : hist_(enabled() ? &h : nullptr)
    {
        if (hist_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedDurationUs()
    {
        if (hist_) {
            const auto dt = std::chrono::steady_clock::now() - start_;
            hist_->record(static_cast<u64>(
                std::chrono::duration_cast<std::chrono::microseconds>(dt)
                    .count()));
        }
    }

    ScopedDurationUs(const ScopedDurationUs &) = delete;
    ScopedDurationUs &operator=(const ScopedDurationUs &) = delete;

  private:
    Histogram *hist_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace metrics
} // namespace ufc

#endif // UFC_METRICS_METRICS_H
