/**
 * @file
 * Text serialization of workload traces.
 *
 * The paper's flow (Section VI-B) generates ciphertext-granularity traces
 * with a tracing tool and feeds them to a compiler as files; this module
 * provides that interchange format: a line-oriented, diff-friendly text
 * encoding with the parameter header followed by one op per line.
 */

#ifndef UFC_TRACE_SERIALIZE_H
#define UFC_TRACE_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace ufc {
namespace trace {

/** Write a trace in the text format. */
void writeTrace(const Trace &tr, std::ostream &os);
/** Parse a trace from the text format; throws via ufcFatal on errors. */
Trace readTrace(std::istream &is);

/** Convenience file wrappers. */
void saveTrace(const Trace &tr, const std::string &path);
Trace loadTrace(const std::string &path);

/** Stable op-kind <-> mnemonic mapping used by the format. */
const char *opKindName(OpKind kind);
bool opKindFromName(const std::string &name, OpKind &kind);

} // namespace trace
} // namespace ufc

#endif // UFC_TRACE_SERIALIZE_H
