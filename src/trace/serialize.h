/**
 * @file
 * Text serialization of workload traces.
 *
 * The paper's flow (Section VI-B) generates ciphertext-granularity traces
 * with a tracing tool and feeds them to a compiler as files; this module
 * provides that interchange format: a line-oriented, diff-friendly text
 * encoding with the parameter header followed by one op per line.
 */

#ifndef UFC_TRACE_SERIALIZE_H
#define UFC_TRACE_SERIALIZE_H

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace ufc {
namespace trace {

/** Magic tag on the first line of every trace file. */
inline constexpr const char *kTraceMagic = "ufctrace";
/**
 * Current format version, written after the magic.  History:
 *   v3 — optional "phase <begin|end> <opIndex> [name]" region-marker
 *        lines (bootstrap / key-switch / blind-rotate grouping for the
 *        exported simulator timeline); v2 files, which have none, still
 *        load.
 *   v2 — added the "ufctrace <version>" header line (v1 files, which
 *        predate versioning, start directly with "trace" and are
 *        rejected with an explicit message).
 */
inline constexpr int kTraceFormatVersion = 3;

/** Oldest version readTrace() still accepts. */
inline constexpr int kTraceMinReadVersion = 2;

/** Write a trace in the text format (always the current version). */
void writeTrace(const Trace &tr, std::ostream &os);

/**
 * Event consumer for the chunked TraceReader.  Callbacks fire in stream
 * order as soon as each line validates; references passed in are only
 * valid for the duration of the call.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /**
     * Fired once before the first op/phase/end event with the header
     * fields parsed so far, and fired again (updated header) if a
     * later header line arrives — legal in the whole-file format,
     * where header lines may appear anywhere before 'end'.  Sinks
     * that need the complete header up front (the streaming compiler)
     * treat a re-fire after ops as an error.
     */
    virtual void
    onHeader(const Trace &header)
    {
        (void)header;
    }
    /** Next phase mark of the mark stream (validated). */
    virtual void onPhase(const PhaseMark &mark) = 0;
    /** Next op of the op stream (validated). */
    virtual void onOp(const TraceOp &op) = 0;
    /** 'end' marker seen and all end-of-stream checks passed; `header`
     *  carries the final header fields. */
    virtual void
    onEnd(const Trace &header)
    {
        (void)header;
    }
};

/** Default chunk size for the readTrace()/loadTrace() shims. */
inline constexpr std::size_t kTraceReadChunk = std::size_t(64) << 10;

/**
 * Bounded-memory chunked trace parser (the whole-file readTrace() is a
 * shim over it).  Feed byte chunks of any size — down to one byte — and
 * events stream out through the TraceSink as each line completes; the
 * reader never materializes the op vector.  All whole-file validation
 * applies per-line with byte-identical TraceError messages; checks that
 * need the end of the stream (missing 'end', unclosed regions, marker
 * indices past the op stream) fire in finish().
 *
 * Memory held by the reader is one partial line (≤ the longest line in
 * the stream; hostile over-long lines are still buffered whole so the
 * "trace line too long" diagnosis can quote them exactly as the
 * whole-file parser does) plus the pending-marker index queue, bounded
 * by the kMaxPhases guard rail.  peakBufferedBytes() reports the
 * high-water mark of the line buffer for tests asserting boundedness.
 */
class TraceReader
{
  public:
    explicit TraceReader(TraceSink *sink);

    /** Consume the next chunk of the stream. */
    void feed(const char *data, std::size_t len);
    /** End of input: process any unterminated final line, then run the
     *  end-of-stream checks and fire onEnd. */
    void finish();
    /** True once the 'end' marker validated; further input is ignored,
     *  exactly as the whole-file parser stops reading at 'end'. */
    bool done() const { return done_; }
    /** High-water mark of bytes buffered across feed() calls. */
    std::size_t peakBufferedBytes() const { return peakBuffered_; }
    /** Header fields parsed so far (final after finish()). */
    const Trace &header() const { return header_; }

  private:
    void processLine();

    TraceSink *sink_;
    Trace header_; ///< header fields only; ops/phases stay empty
    std::string line_;
    std::size_t peakBuffered_ = 0;
    std::size_t lineNo_ = 0;
    int version_ = 0;
    bool done_ = false;
    bool finished_ = false;
    bool sawMagic_ = false;
    bool headerSent_ = false;
    bool sawName_ = false, sawCkks_ = false, sawTfhe_ = false,
         sawLive_ = false;
    int openPhases_ = 0;
    u64 lastPhaseOp_ = 0;
    std::string lastPhaseLine_;
    std::size_t opsSeen_ = 0;
    std::size_t phasesSeen_ = 0;
    /// Marker opIndexes not yet covered by the op stream, in file
    /// order; whatever survives at finish() is reported exactly as the
    /// whole-file parser's first-offender check.
    std::deque<u64> pendingMarkChecks_;
};

/** TraceSink that rebuilds the full Trace (the readTrace shim). */
class TraceBuildSink final : public TraceSink
{
  public:
    void onHeader(const Trace &header) override;
    void onPhase(const PhaseMark &mark) override;
    void onOp(const TraceOp &op) override;
    void onEnd(const Trace &header) override;
    /** Move the rebuilt trace out (valid after TraceReader::finish). */
    Trace take() { return std::move(tr_); }

  private:
    void copyHeader(const Trace &header);
    Trace tr_;
};
/**
 * Parse a trace from the text format.  Every read is bounds-checked;
 * truncated, corrupt, out-of-range or duplicate-marker input throws
 * ufc::TraceError (never aborts and never returns a partially-valid
 * trace), so a batch driver can contain a bad file to one job.
 * Rejected inputs include: missing/garbled magic, unsupported version,
 * truncated header or missing 'end', unknown tags or opcodes, negative
 * or absurdly large field values, duplicate header lines, phase markers
 * in pre-v3 files, unbalanced/duplicate/non-monotone phase markers, and
 * phase indices past the end of the op stream.
 */
Trace readTrace(std::istream &is);

/** Convenience file wrappers; loadTrace throws ufc::TraceError when the
 *  file cannot be opened or fails to parse, saveTrace throws
 *  ufc::ConfigError when the path cannot be written. */
void saveTrace(const Trace &tr, const std::string &path);
Trace loadTrace(const std::string &path);

/** Stable op-kind <-> mnemonic mapping used by the format. */
const char *opKindName(OpKind kind);
bool opKindFromName(const std::string &name, OpKind &kind);

} // namespace trace
} // namespace ufc

#endif // UFC_TRACE_SERIALIZE_H
