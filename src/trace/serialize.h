/**
 * @file
 * Text serialization of workload traces.
 *
 * The paper's flow (Section VI-B) generates ciphertext-granularity traces
 * with a tracing tool and feeds them to a compiler as files; this module
 * provides that interchange format: a line-oriented, diff-friendly text
 * encoding with the parameter header followed by one op per line.
 */

#ifndef UFC_TRACE_SERIALIZE_H
#define UFC_TRACE_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace ufc {
namespace trace {

/** Magic tag on the first line of every trace file. */
inline constexpr const char *kTraceMagic = "ufctrace";
/**
 * Current format version, written after the magic.  History:
 *   v3 — optional "phase <begin|end> <opIndex> [name]" region-marker
 *        lines (bootstrap / key-switch / blind-rotate grouping for the
 *        exported simulator timeline); v2 files, which have none, still
 *        load.
 *   v2 — added the "ufctrace <version>" header line (v1 files, which
 *        predate versioning, start directly with "trace" and are
 *        rejected with an explicit message).
 */
inline constexpr int kTraceFormatVersion = 3;

/** Oldest version readTrace() still accepts. */
inline constexpr int kTraceMinReadVersion = 2;

/** Write a trace in the text format (always the current version). */
void writeTrace(const Trace &tr, std::ostream &os);
/**
 * Parse a trace from the text format.  Every read is bounds-checked;
 * truncated, corrupt, out-of-range or duplicate-marker input throws
 * ufc::TraceError (never aborts and never returns a partially-valid
 * trace), so a batch driver can contain a bad file to one job.
 * Rejected inputs include: missing/garbled magic, unsupported version,
 * truncated header or missing 'end', unknown tags or opcodes, negative
 * or absurdly large field values, duplicate header lines, phase markers
 * in pre-v3 files, unbalanced/duplicate/non-monotone phase markers, and
 * phase indices past the end of the op stream.
 */
Trace readTrace(std::istream &is);

/** Convenience file wrappers; loadTrace throws ufc::TraceError when the
 *  file cannot be opened or fails to parse, saveTrace throws
 *  ufc::ConfigError when the path cannot be written. */
void saveTrace(const Trace &tr, const std::string &path);
Trace loadTrace(const std::string &path);

/** Stable op-kind <-> mnemonic mapping used by the format. */
const char *opKindName(OpKind kind);
bool opKindFromName(const std::string &name, OpKind &kind);

} // namespace trace
} // namespace ufc

#endif // UFC_TRACE_SERIALIZE_H
