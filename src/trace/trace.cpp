/**
 * @file
 * Trace IR helpers.
 */

#include "trace/trace.h"

#include <algorithm>

#include "common/error.h"

namespace ufc {
namespace trace {

Scheme
TraceOp::scheme() const
{
    switch (kind) {
      case OpKind::CkksAdd:
      case OpKind::CkksAddPlain:
      case OpKind::CkksMult:
      case OpKind::CkksMultPlain:
      case OpKind::CkksRescale:
      case OpKind::CkksRotate:
      case OpKind::CkksConjugate:
      case OpKind::CkksModRaise:
        return Scheme::Ckks;
      case OpKind::TfheLinear:
      case OpKind::TfhePbs:
      case OpKind::TfheKeySwitch:
      case OpKind::TfheModSwitch:
        return Scheme::Tfhe;
      case OpKind::SwitchExtract:
      case OpKind::SwitchRepack:
        return Scheme::Switch;
    }
    return Scheme::Ckks;
}

void
Trace::endPhase()
{
    // Recompute the balance instead of caching a counter: `phases` is a
    // public vector, so callers may legally append marks directly.
    int open = 0;
    for (const auto &mark : phases)
        open += mark.begin ? 1 : -1;
    if (open <= 0)
        throw TraceError("endPhase() on trace '" + name +
                         "' with no open phase region (marks: " +
                         std::to_string(phases.size()) + ")");
    phases.push_back(PhaseMark{ops.size(), std::string(), false});
}

void
ContentHasher::header(const Trace &tr)
{
    using detail::fnvMix;
    head_ = detail::kFnvOffset;
    fnvMix(head_, tr.name);
    fnvMix(head_, tr.ckksRingDim);
    fnvMix(head_, static_cast<u64>(tr.ckksLevels));
    fnvMix(head_, static_cast<u64>(tr.ckksSpecial));
    fnvMix(head_, static_cast<u64>(tr.ckksDnum));
    fnvMix(head_, static_cast<u64>(tr.ckksLimbBits));
    fnvMix(head_, tr.tfheRingDim);
    fnvMix(head_, static_cast<u64>(tr.tfheLweDim));
    fnvMix(head_, static_cast<u64>(tr.tfheGadgetLevels));
    fnvMix(head_, static_cast<u64>(tr.tfheKsLevels));
    fnvMix(head_, static_cast<u64>(tr.tfheLimbBits));
    fnvMix(head_, static_cast<u64>(tr.liveCiphertexts));
}

void
ContentHasher::op(const TraceOp &op)
{
    using detail::fnvMix;
    fnvMix(ops_, static_cast<u64>(op.kind));
    fnvMix(ops_, static_cast<u64>(op.limbs));
    fnvMix(ops_, static_cast<u64>(op.count));
    fnvMix(ops_, static_cast<u64>(op.fanIn));
    fnvMix(ops_, static_cast<u64>(op.keyId));
    ++opCount_;
}

void
ContentHasher::phase(const PhaseMark &mark)
{
    using detail::fnvMix;
    fnvMix(phases_, mark.opIndex);
    fnvMix(phases_, mark.name);
    fnvMix(phases_, static_cast<u64>(mark.begin ? 1 : 0));
    ++phaseCount_;
}

u64
ContentHasher::finish() const
{
    using detail::fnvMix;
    u64 h = head_;
    fnvMix(h, ops_);
    fnvMix(h, opCount_);
    fnvMix(h, phases_);
    fnvMix(h, phaseCount_);
    return h;
}

u64
contentHash(const Trace &tr)
{
    ContentHasher hasher;
    hasher.header(tr);
    for (const auto &op : tr.ops)
        hasher.op(op);
    for (const auto &mark : tr.phases)
        hasher.phase(mark);
    return hasher.finish();
}

std::vector<PhaseRegion>
phaseRegions(const Trace &tr)
{
    std::vector<PhaseRegion> out;
    // Stack of indices into `out` for the currently open regions.
    std::vector<std::size_t> open;
    for (const PhaseMark &mark : tr.phases) {
        const u64 at = std::min<u64>(mark.opIndex, tr.ops.size());
        if (mark.begin) {
            PhaseRegion r;
            r.begin = at;
            r.end = tr.ops.size(); // provisional: until the close mark
            r.name = mark.name;
            r.depth = static_cast<int>(open.size());
            open.push_back(out.size());
            out.push_back(std::move(r));
        } else if (!open.empty()) {
            out[open.back()].end = at;
            open.pop_back();
        }
    }
    std::sort(out.begin(), out.end(),
              [](const PhaseRegion &a, const PhaseRegion &b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.depth < b.depth;
              });
    return out;
}

u64
Trace::totalOps() const
{
    u64 total = 0;
    for (const auto &op : ops)
        total += op.count;
    return total;
}

} // namespace trace
} // namespace ufc
