/**
 * @file
 * Trace IR helpers.
 */

#include "trace/trace.h"

#include "common/error.h"

namespace ufc {
namespace trace {

Scheme
TraceOp::scheme() const
{
    switch (kind) {
      case OpKind::CkksAdd:
      case OpKind::CkksAddPlain:
      case OpKind::CkksMult:
      case OpKind::CkksMultPlain:
      case OpKind::CkksRescale:
      case OpKind::CkksRotate:
      case OpKind::CkksConjugate:
      case OpKind::CkksModRaise:
        return Scheme::Ckks;
      case OpKind::TfheLinear:
      case OpKind::TfhePbs:
      case OpKind::TfheKeySwitch:
      case OpKind::TfheModSwitch:
        return Scheme::Tfhe;
      case OpKind::SwitchExtract:
      case OpKind::SwitchRepack:
        return Scheme::Switch;
    }
    return Scheme::Ckks;
}

void
Trace::endPhase()
{
    // Recompute the balance instead of caching a counter: `phases` is a
    // public vector, so callers may legally append marks directly.
    int open = 0;
    for (const auto &mark : phases)
        open += mark.begin ? 1 : -1;
    if (open <= 0)
        throw TraceError("endPhase() on trace '" + name +
                         "' with no open phase region (marks: " +
                         std::to_string(phases.size()) + ")");
    phases.push_back(PhaseMark{ops.size(), std::string(), false});
}

namespace {

constexpr u64 kFnvOffset = 14695981039346656037ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

void
mix(u64 &h, u64 v)
{
    // Hash the full 64-bit value byte-wise so ids above 2^32 (the
    // compiler's buffer namespaces) contribute every bit.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void
mix(u64 &h, const std::string &s)
{
    mix(h, static_cast<u64>(s.size()));
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

} // namespace

u64
contentHash(const Trace &tr)
{
    u64 h = kFnvOffset;
    mix(h, tr.name);
    mix(h, tr.ckksRingDim);
    mix(h, static_cast<u64>(tr.ckksLevels));
    mix(h, static_cast<u64>(tr.ckksSpecial));
    mix(h, static_cast<u64>(tr.ckksDnum));
    mix(h, static_cast<u64>(tr.ckksLimbBits));
    mix(h, tr.tfheRingDim);
    mix(h, static_cast<u64>(tr.tfheLweDim));
    mix(h, static_cast<u64>(tr.tfheGadgetLevels));
    mix(h, static_cast<u64>(tr.tfheKsLevels));
    mix(h, static_cast<u64>(tr.tfheLimbBits));
    mix(h, static_cast<u64>(tr.liveCiphertexts));
    mix(h, static_cast<u64>(tr.ops.size()));
    for (const auto &op : tr.ops) {
        mix(h, static_cast<u64>(op.kind));
        mix(h, static_cast<u64>(op.limbs));
        mix(h, static_cast<u64>(op.count));
        mix(h, static_cast<u64>(op.fanIn));
        mix(h, static_cast<u64>(op.keyId));
    }
    mix(h, static_cast<u64>(tr.phases.size()));
    for (const auto &mark : tr.phases) {
        mix(h, mark.opIndex);
        mix(h, mark.name);
        mix(h, static_cast<u64>(mark.begin ? 1 : 0));
    }
    return h;
}

u64
Trace::totalOps() const
{
    u64 total = 0;
    for (const auto &op : ops)
        total += op.count;
    return total;
}

} // namespace trace
} // namespace ufc
