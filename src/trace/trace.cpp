/**
 * @file
 * Trace IR helpers.
 */

#include "trace/trace.h"

namespace ufc {
namespace trace {

Scheme
TraceOp::scheme() const
{
    switch (kind) {
      case OpKind::CkksAdd:
      case OpKind::CkksAddPlain:
      case OpKind::CkksMult:
      case OpKind::CkksMultPlain:
      case OpKind::CkksRescale:
      case OpKind::CkksRotate:
      case OpKind::CkksConjugate:
      case OpKind::CkksModRaise:
        return Scheme::Ckks;
      case OpKind::TfheLinear:
      case OpKind::TfhePbs:
      case OpKind::TfheKeySwitch:
      case OpKind::TfheModSwitch:
        return Scheme::Tfhe;
      case OpKind::SwitchExtract:
      case OpKind::SwitchRepack:
        return Scheme::Switch;
    }
    return Scheme::Ckks;
}

u64
Trace::totalOps() const
{
    u64 total = 0;
    for (const auto &op : ops)
        total += op.count;
    return total;
}

} // namespace trace
} // namespace ufc
