/**
 * @file
 * Trace IR helpers.
 */

#include "trace/trace.h"

#include "common/error.h"

namespace ufc {
namespace trace {

Scheme
TraceOp::scheme() const
{
    switch (kind) {
      case OpKind::CkksAdd:
      case OpKind::CkksAddPlain:
      case OpKind::CkksMult:
      case OpKind::CkksMultPlain:
      case OpKind::CkksRescale:
      case OpKind::CkksRotate:
      case OpKind::CkksConjugate:
      case OpKind::CkksModRaise:
        return Scheme::Ckks;
      case OpKind::TfheLinear:
      case OpKind::TfhePbs:
      case OpKind::TfheKeySwitch:
      case OpKind::TfheModSwitch:
        return Scheme::Tfhe;
      case OpKind::SwitchExtract:
      case OpKind::SwitchRepack:
        return Scheme::Switch;
    }
    return Scheme::Ckks;
}

void
Trace::endPhase()
{
    // Recompute the balance instead of caching a counter: `phases` is a
    // public vector, so callers may legally append marks directly.
    int open = 0;
    for (const auto &mark : phases)
        open += mark.begin ? 1 : -1;
    if (open <= 0)
        throw TraceError("endPhase() on trace '" + name +
                         "' with no open phase region (marks: " +
                         std::to_string(phases.size()) + ")");
    phases.push_back(PhaseMark{ops.size(), std::string(), false});
}

u64
Trace::totalOps() const
{
    u64 total = 0;
    for (const auto &op : ops)
        total += op.count;
    return total;
}

} // namespace trace
} // namespace ufc
