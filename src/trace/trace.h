/**
 * @file
 * Ciphertext-granularity trace IR (paper Section VI-B).
 *
 * Workload generators emit machine-independent streams of high-level FHE
 * operations; each accelerator model's compiler lowers them to its own
 * primitive instruction stream.  This mirrors the paper's tracing tool on
 * top of OpenFHE feeding a compiler that emits hardware instructions.
 */

#ifndef UFC_TRACE_TRACE_H
#define UFC_TRACE_TRACE_H

#include <string>
#include <vector>

#include "common/types.h"

namespace ufc {
namespace trace {

/** High-level FHE operation kinds. */
enum class OpKind
{
    // CKKS (SIMD-scheme) operations.
    CkksAdd,        ///< homomorphic add/sub (ciphertext-ciphertext)
    CkksAddPlain,   ///< ciphertext-plaintext add
    CkksMult,       ///< ciphertext multiply + relinearization
    CkksMultPlain,  ///< ciphertext-plaintext multiply
    CkksRescale,    ///< divide by last limb
    CkksRotate,     ///< automorphism + key switch
    CkksConjugate,  ///< conjugation automorphism + key switch
    CkksModRaise,   ///< bootstrap step: extend basis back to L limbs

    // TFHE (logic-scheme) operations.
    TfheLinear,     ///< LWE additions / scalar multiplies
    TfhePbs,        ///< programmable/functional bootstrap
    TfheKeySwitch,  ///< LWE key switch
    TfheModSwitch,  ///< LWE modulus switch

    // Scheme switching.
    SwitchExtract,  ///< RLWE -> LWE extraction (+ TFHE key switch)
    SwitchRepack,   ///< LWEs -> RLWE repacking (linear transform)
};

/** Which scheme an op belongs to (for composed-system dispatch). */
enum class Scheme { Ckks, Tfhe, Switch };

/** One traced high-level operation. */
struct TraceOp
{
    OpKind kind;
    /// CKKS: active q limbs at the time of the op; TFHE: unused.
    int limbs = 0;
    /// Batch of identical independent ops traced together (e.g. parallel
    /// PBS in a batched NN layer, parallel rotations in BSGS).
    int count = 1;
    /// TFHE ops: number of LWE inputs for linear ops.
    int fanIn = 0;
    /// Which evaluation key the op uses (rotations: the rotation step).
    /// Distinct ids compete for scratchpad space.
    int keyId = 0;

    Scheme scheme() const;
};

/**
 * A named region of the op stream (bootstrap, distance phase, top-k
 * tournament, ...).  Marks carry an op index: a begin mark opens its
 * region before `opIndex` is lowered, an end mark closes it at the same
 * point.  Regions must nest strictly (stack discipline); the compiler
 * forwards them to the cycle engine, which groups the exported timeline
 * by them.
 */
struct PhaseMark
{
    u64 opIndex = 0;
    std::string name; ///< single token, no whitespace
    bool begin = true;
};

/** A traced workload: the op stream plus its parameter metadata. */
struct Trace
{
    std::string name;
    // CKKS parameters used by the trace (0 when TFHE-only).
    u64 ckksRingDim = 0;
    int ckksLevels = 0;
    int ckksSpecial = 0;
    int ckksDnum = 0;
    int ckksLimbBits = 0;
    // TFHE parameters used by the trace (0 when CKKS-only).
    u64 tfheRingDim = 0;
    u32 tfheLweDim = 0;
    int tfheGadgetLevels = 0;
    int tfheKsLevels = 0;
    int tfheLimbBits = 32;

    /// Approximate number of simultaneously live ciphertexts; drives the
    /// scratchpad working-set model.
    int liveCiphertexts = 16;

    std::vector<TraceOp> ops;
    /// Workload-level region markers, ordered by (opIndex, emission
    /// order).  Generators append them via beginPhase()/endPhase().
    std::vector<PhaseMark> phases;

    /** Append an op. */
    void
    push(OpKind kind, int limbs, int count = 1, int fanIn = 0,
         int keyId = 0)
    {
        ops.push_back(TraceOp{kind, limbs, count, fanIn, keyId});
    }

    /** Open a named region starting at the next op to be pushed. */
    void
    beginPhase(const std::string &name)
    {
        phases.push_back(PhaseMark{ops.size(), name, true});
    }

    /**
     * Close the innermost open region after the last pushed op.
     *
     * Throws TraceError when no region is open — an unbalanced close is
     * a generator bug, and diagnosing it at build time beats letting it
     * corrupt every downstream timeline (the phase-discipline analysis
     * pass reports the same condition, rule `phase-balance`, for traces
     * built by other means, e.g. hand-edited .ufctrace files).
     */
    void endPhase();

    /** Total high-level op count (sum of batched counts). */
    u64 totalOps() const;
};

/**
 * A phase mark pair resolved to a half-open op range: ops
 * [begin, end) lie inside the region named `name`, nested `depth`
 * regions deep (0 = outermost).  Tolerant of malformed mark streams —
 * unclosed regions extend to the end of the op stream and stray end
 * marks are ignored (the phase-discipline lint pass reports both) — so
 * consumers (CFG recovery, timeline grouping) always get a
 * well-formed, properly nested region list.
 */
struct PhaseRegion
{
    u64 begin = 0;
    u64 end = 0;
    std::string name;
    int depth = 0;
};

/** Resolve a trace's phase marks into nested regions, sorted by
 *  (begin, depth). */
std::vector<PhaseRegion> phaseRegions(const Trace &tr);

namespace detail {

/// FNV-1a constants shared by the trace content hash, the compiler's
/// phase-segment hash and the simulator's phase-cache entry key.
inline constexpr u64 kFnvOffset = 14695981039346656037ULL;
inline constexpr u64 kFnvPrime = 1099511628211ULL;

/** Mix a 64-bit value byte-wise so ids above 2^32 (the compiler's
 *  buffer namespaces) contribute every bit. */
inline void
fnvMix(u64 &h, u64 v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

/** Mix a length-prefixed string. */
inline void
fnvMix(u64 &h, const std::string &s)
{
    fnvMix(h, static_cast<u64>(s.size()));
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

/**
 * Word-at-a-time mixer (splitmix64 finalizer) for the hot hashing
 * paths — the compiler's per-instruction segment digest and the
 * engine's phase-cache entry key.  ~8x cheaper than byte-wise FNV on
 * u64 payloads with comparable avalanche; these digests live only in
 * memory (cache keys, disassembly), so they need no cross-version
 * stability.
 */
inline void
mix64(u64 &h, u64 v)
{
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    h ^= v ^ (v >> 31);
    h *= kFnvPrime;
}

} // namespace detail

/**
 * Incremental form of contentHash() for streaming readers: the header,
 * the op stream and the phase marks accumulate into three independent
 * FNV-1a states, combined (with element counts) at finish().  Ops and
 * marks may therefore arrive in any interleaving relative to each
 * other — only their per-stream order matters — which is exactly what a
 * chunked TraceReader delivers.
 */
class ContentHasher
{
  public:
    /** Fold in the header fields (name, parameters, live set). */
    void header(const Trace &tr);
    /** Fold in the next op of the op stream. */
    void op(const TraceOp &op);
    /** Fold in the next phase mark of the mark stream. */
    void phase(const PhaseMark &mark);
    /** Combine the three accumulators into the final hash. */
    u64 finish() const;

  private:
    u64 head_ = detail::kFnvOffset;
    u64 ops_ = detail::kFnvOffset;
    u64 phases_ = detail::kFnvOffset;
    u64 opCount_ = 0;
    u64 phaseCount_ = 0;
};

/**
 * FNV-1a content hash over everything that influences a lowering: the
 * name (stamped into results), the parameter header, the op stream and
 * the phase marks.  Two traces with equal hashes compile to the same
 * Program on the same model, which is what the runner's ProgramCache
 * keys on; file identity and load path do not matter.
 */
u64 contentHash(const Trace &tr);

} // namespace trace
} // namespace ufc

#endif // UFC_TRACE_TRACE_H
