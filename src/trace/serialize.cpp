/**
 * @file
 * Trace text serialization implementation.
 *
 * Format:
 *   ufctrace <version>
 *   trace <name>
 *   ckks <ringDim> <levels> <special> <dnum> <limbBits>
 *   tfhe <ringDim> <lweDim> <gadgetLevels> <ksLevels> <limbBits>
 *   live <liveCiphertexts>
 *   phase begin <opIndex> <name>     (v3+, optional, interleaved freely)
 *   phase end <opIndex>
 *   op <mnemonic> <limbs> <count> <fanIn> <keyId>
 *   ...
 *   end
 */

#include "trace/serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "metrics/metrics.h"

namespace ufc {
namespace trace {

namespace {

struct KindName
{
    OpKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {OpKind::CkksAdd, "ckks.add"},
    {OpKind::CkksAddPlain, "ckks.addplain"},
    {OpKind::CkksMult, "ckks.mult"},
    {OpKind::CkksMultPlain, "ckks.multplain"},
    {OpKind::CkksRescale, "ckks.rescale"},
    {OpKind::CkksRotate, "ckks.rotate"},
    {OpKind::CkksConjugate, "ckks.conjugate"},
    {OpKind::CkksModRaise, "ckks.modraise"},
    {OpKind::TfheLinear, "tfhe.linear"},
    {OpKind::TfhePbs, "tfhe.pbs"},
    {OpKind::TfheKeySwitch, "tfhe.keyswitch"},
    {OpKind::TfheModSwitch, "tfhe.modswitch"},
    {OpKind::SwitchExtract, "switch.extract"},
    {OpKind::SwitchRepack, "switch.repack"},
};

} // namespace

const char *
opKindName(OpKind kind)
{
    for (const auto &entry : kKindNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    ufcPanic("unknown op kind");
}

bool
opKindFromName(const std::string &name, OpKind &kind)
{
    for (const auto &entry : kKindNames) {
        if (name == entry.name) {
            kind = entry.kind;
            return true;
        }
    }
    return false;
}

void
writeTrace(const Trace &tr, std::ostream &os)
{
    os << kTraceMagic << " " << kTraceFormatVersion << "\n";
    os << "trace " << tr.name << "\n";
    os << "ckks " << tr.ckksRingDim << " " << tr.ckksLevels << " "
       << tr.ckksSpecial << " " << tr.ckksDnum << " " << tr.ckksLimbBits
       << "\n";
    os << "tfhe " << tr.tfheRingDim << " " << tr.tfheLweDim << " "
       << tr.tfheGadgetLevels << " " << tr.tfheKsLevels << " "
       << tr.tfheLimbBits << "\n";
    os << "live " << tr.liveCiphertexts << "\n";
    for (const auto &mark : tr.phases) {
        os << "phase " << (mark.begin ? "begin" : "end") << " "
           << mark.opIndex;
        if (mark.begin)
            os << " " << mark.name;
        os << "\n";
    }
    for (const auto &op : tr.ops) {
        os << "op " << opKindName(op.kind) << " " << op.limbs << " "
           << op.count << " " << op.fanIn << " " << op.keyId << "\n";
    }
    os << "end\n";
}

namespace {

// Parser guard rails: reject absurd values before they can size a
// runaway allocation or feed nonsense into the models.
constexpr std::size_t kMaxLineLen = 4096;
constexpr std::size_t kMaxOps = std::size_t(1) << 26;      // ~67M lines
constexpr std::size_t kMaxPhases = std::size_t(1) << 22;
constexpr u64 kMaxRingDim = u64(1) << 26;
constexpr int kMaxSmallField = 1 << 20;  // levels/dnum/limbs/fanIn/...
constexpr int kMaxCount = 1 << 30;       // batched op multiplicity

} // namespace

TraceReader::TraceReader(TraceSink *sink) : sink_(sink)
{
    UFC_EXPECT(sink != nullptr, ConfigError,
               "TraceReader requires a sink");
}

void
TraceReader::feed(const char *data, std::size_t len)
{
    if (metrics::enabled()) {
        static metrics::Counter &chunks = metrics::counter(
            "ufc_trace_reader_chunks_total",
            "Chunks fed into streaming trace readers");
        static metrics::Counter &bytes = metrics::counter(
            "ufc_trace_reader_bytes_total",
            "Bytes fed into streaming trace readers");
        chunks.inc();
        bytes.inc(len);
    }
    // Publish the reader's running peak on every feed() exit; the gauge's
    // high-water mark then tracks the largest line buffered by any reader.
    struct PeakGuard {
        const TraceReader &r;
        ~PeakGuard()
        {
            if (metrics::enabled()) {
                static metrics::Gauge &peak = metrics::gauge(
                    "ufc_trace_reader_peak_buffered_bytes",
                    "Peak bytes buffered for one trace line");
                peak.set(static_cast<i64>(r.peakBufferedBytes()));
            }
        }
    } peakGuard{*this};
    if (done_)
        return; // whole-file parser stops reading at 'end'
    std::size_t pos = 0;
    while (pos < len) {
        const char *nl = static_cast<const char *>(
            std::memchr(data + pos, '\n', len - pos));
        if (nl == nullptr) {
            line_.append(data + pos, len - pos);
            peakBuffered_ = std::max(peakBuffered_, line_.size());
            return;
        }
        const std::size_t span = static_cast<std::size_t>(nl - (data + pos));
        line_.append(data + pos, span);
        peakBuffered_ = std::max(peakBuffered_, line_.size());
        pos += span + 1;
        processLine();
        line_.clear();
        if (done_)
            return;
    }
}

void
TraceReader::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // An unterminated final line is still a line to getline().
    if (!done_ && !line_.empty()) {
        processLine();
        line_.clear();
    }
    UFC_EXPECT(done_, TraceError,
               "trace truncated: missing 'end' marker");
    UFC_EXPECT(openPhases_ == 0, TraceError,
               "trace has " << openPhases_
                   << " unclosed phase region(s)");
    while (!pendingMarkChecks_.empty() &&
           pendingMarkChecks_.front() <= opsSeen_)
        pendingMarkChecks_.pop_front();
    UFC_EXPECT(pendingMarkChecks_.empty(), TraceError,
               "phase marker index " << pendingMarkChecks_.front()
                   << " past the end of the op stream (" << opsSeen_
                   << " ops)");
    sink_->onEnd(header_);
}

void
TraceReader::processLine()
{
    const std::string &line = line_;
    const std::size_t lineNo = ++lineNo_;
    const auto fail = [&](const std::string &what) {
        UFC_THROW(TraceError,
                  what << " [line " << lineNo << ": " << line << "]");
    };

    if (line.size() > kMaxLineLen)
        fail("trace line too long");
    if (line.empty() || line[0] == '#')
        return;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (!sawMagic_) {
        // The first meaningful line must be the versioned magic;
        // anything else (including a headerless v1 file) is rejected.
        UFC_EXPECT(tag == kTraceMagic, TraceError,
                   "not a ufc trace file (missing '"
                       << kTraceMagic << "' magic, got '" << tag
                       << "')");
        ss >> version_;
        UFC_EXPECT(!ss.fail() && version_ >= kTraceMinReadVersion &&
                       version_ <= kTraceFormatVersion,
                   TraceError,
                   "unsupported trace format version "
                       << version_ << " (expected "
                       << kTraceMinReadVersion << ".."
                       << kTraceFormatVersion << ")");
        sawMagic_ = true;
        return;
    }
    if (tag == "trace") {
        if (sawName_)
            fail("duplicate 'trace' header line");
        sawName_ = true;
        ss >> header_.name;
        if (ss.fail() || header_.name.empty())
            fail("malformed trace-name line");
        headerSent_ = false;
    } else if (tag == "ckks") {
        if (sawCkks_)
            fail("duplicate 'ckks' header line");
        sawCkks_ = true;
        ss >> header_.ckksRingDim >> header_.ckksLevels >>
            header_.ckksSpecial >> header_.ckksDnum >>
            header_.ckksLimbBits;
        if (ss.fail())
            fail("malformed ckks header line");
        if (header_.ckksRingDim > kMaxRingDim ||
            header_.ckksLevels < 0 ||
            header_.ckksLevels > kMaxSmallField ||
            header_.ckksSpecial < 0 ||
            header_.ckksSpecial > kMaxSmallField ||
            header_.ckksDnum < 0 || header_.ckksDnum > kMaxSmallField ||
            header_.ckksLimbBits < 0 || header_.ckksLimbBits > 64)
            fail("ckks parameter out of range");
        headerSent_ = false;
    } else if (tag == "tfhe") {
        if (sawTfhe_)
            fail("duplicate 'tfhe' header line");
        sawTfhe_ = true;
        ss >> header_.tfheRingDim >> header_.tfheLweDim >>
            header_.tfheGadgetLevels >> header_.tfheKsLevels >>
            header_.tfheLimbBits;
        if (ss.fail())
            fail("malformed tfhe header line");
        if (header_.tfheRingDim > kMaxRingDim ||
            header_.tfheLweDim > kMaxRingDim ||
            header_.tfheGadgetLevels < 0 ||
            header_.tfheGadgetLevels > kMaxSmallField ||
            header_.tfheKsLevels < 0 ||
            header_.tfheKsLevels > kMaxSmallField ||
            header_.tfheLimbBits < 0 || header_.tfheLimbBits > 64)
            fail("tfhe parameter out of range");
        headerSent_ = false;
    } else if (tag == "live") {
        if (sawLive_)
            fail("duplicate 'live' header line");
        sawLive_ = true;
        ss >> header_.liveCiphertexts;
        if (ss.fail() || header_.liveCiphertexts < 0 ||
            header_.liveCiphertexts > kMaxSmallField)
            fail("malformed live-ciphertexts line");
        headerSent_ = false;
    } else if (tag == "phase") {
        if (version_ < 3)
            fail("phase markers require trace format v3");
        if (phasesSeen_ >= kMaxPhases)
            fail("too many phase markers");
        std::string kind;
        PhaseMark mark;
        ss >> kind >> mark.opIndex;
        mark.begin = kind == "begin";
        if (!mark.begin && kind != "end")
            fail("malformed phase line");
        if (mark.begin)
            ss >> mark.name;
        if (ss.fail() || (mark.begin && mark.name.empty()))
            fail("malformed phase line");
        // Two identical consecutive *begin* marks open the same
        // region twice — a duplicate-marker corruption.  Identical
        // consecutive end marks are legal (nested regions closing at
        // the same op index).
        if (mark.begin && line == lastPhaseLine_)
            fail("duplicate phase marker");
        lastPhaseLine_ = line;
        if (phasesSeen_ > 0 && mark.opIndex < lastPhaseOp_)
            fail("phase markers out of order");
        lastPhaseOp_ = mark.opIndex;
        if (mark.begin) {
            ++openPhases_;
        } else {
            if (openPhases_ <= 0)
                fail("phase 'end' without an open region");
            --openPhases_;
        }
        ++phasesSeen_;
        if (mark.opIndex > opsSeen_)
            pendingMarkChecks_.push_back(mark.opIndex);
        if (!headerSent_) {
            headerSent_ = true;
            sink_->onHeader(header_);
        }
        sink_->onPhase(mark);
    } else if (tag == "op") {
        if (opsSeen_ >= kMaxOps)
            fail("too many ops");
        std::string mnemonic;
        TraceOp op{};
        ss >> mnemonic >> op.limbs >> op.count >> op.fanIn >> op.keyId;
        UFC_EXPECT(opKindFromName(mnemonic, op.kind), TraceError,
                   "unknown trace op: " << mnemonic);
        if (ss.fail())
            fail("malformed op line");
        if (op.limbs < 0 || op.limbs > kMaxSmallField ||
            op.count < 1 || op.count > kMaxCount ||
            op.fanIn < 0 || op.fanIn > kMaxSmallField ||
            op.keyId < 0 || op.keyId > kMaxCount)
            fail("op field out of range");
        ++opsSeen_;
        while (!pendingMarkChecks_.empty() &&
               pendingMarkChecks_.front() <= opsSeen_)
            pendingMarkChecks_.pop_front();
        if (!headerSent_) {
            headerSent_ = true;
            sink_->onHeader(header_);
        }
        sink_->onOp(op);
    } else if (tag == "end") {
        done_ = true;
    } else {
        fail("unknown trace line tag: '" + tag + "'");
    }
}

void
TraceBuildSink::copyHeader(const Trace &header)
{
    tr_.name = header.name;
    tr_.ckksRingDim = header.ckksRingDim;
    tr_.ckksLevels = header.ckksLevels;
    tr_.ckksSpecial = header.ckksSpecial;
    tr_.ckksDnum = header.ckksDnum;
    tr_.ckksLimbBits = header.ckksLimbBits;
    tr_.tfheRingDim = header.tfheRingDim;
    tr_.tfheLweDim = header.tfheLweDim;
    tr_.tfheGadgetLevels = header.tfheGadgetLevels;
    tr_.tfheKsLevels = header.tfheKsLevels;
    tr_.tfheLimbBits = header.tfheLimbBits;
    tr_.liveCiphertexts = header.liveCiphertexts;
}

void
TraceBuildSink::onHeader(const Trace &header)
{
    copyHeader(header);
}

void
TraceBuildSink::onPhase(const PhaseMark &mark)
{
    tr_.phases.push_back(mark);
}

void
TraceBuildSink::onOp(const TraceOp &op)
{
    tr_.ops.push_back(op);
}

void
TraceBuildSink::onEnd(const Trace &header)
{
    copyHeader(header);
}

Trace
readTrace(std::istream &is)
{
    TraceBuildSink sink;
    TraceReader reader(&sink);
    std::vector<char> chunk(kTraceReadChunk);
    while (!reader.done() && is) {
        is.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        const auto got = static_cast<std::size_t>(is.gcount());
        if (got == 0)
            break;
        reader.feed(chunk.data(), got);
    }
    reader.finish();
    return sink.take();
}

void
saveTrace(const Trace &tr, const std::string &path)
{
    std::ofstream os(path);
    UFC_EXPECT(os.good(), ConfigError,
               "cannot open " << path << " for writing");
    writeTrace(tr, os);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    UFC_EXPECT(is.good(), TraceError, "cannot open trace file " << path);
    return readTrace(is);
}

} // namespace trace
} // namespace ufc
