/**
 * @file
 * Trace text serialization implementation.
 *
 * Format:
 *   ufctrace <version>
 *   trace <name>
 *   ckks <ringDim> <levels> <special> <dnum> <limbBits>
 *   tfhe <ringDim> <lweDim> <gadgetLevels> <ksLevels> <limbBits>
 *   live <liveCiphertexts>
 *   phase begin <opIndex> <name>     (v3+, optional, interleaved freely)
 *   phase end <opIndex>
 *   op <mnemonic> <limbs> <count> <fanIn> <keyId>
 *   ...
 *   end
 */

#include "trace/serialize.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/error.h"

namespace ufc {
namespace trace {

namespace {

struct KindName
{
    OpKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {OpKind::CkksAdd, "ckks.add"},
    {OpKind::CkksAddPlain, "ckks.addplain"},
    {OpKind::CkksMult, "ckks.mult"},
    {OpKind::CkksMultPlain, "ckks.multplain"},
    {OpKind::CkksRescale, "ckks.rescale"},
    {OpKind::CkksRotate, "ckks.rotate"},
    {OpKind::CkksConjugate, "ckks.conjugate"},
    {OpKind::CkksModRaise, "ckks.modraise"},
    {OpKind::TfheLinear, "tfhe.linear"},
    {OpKind::TfhePbs, "tfhe.pbs"},
    {OpKind::TfheKeySwitch, "tfhe.keyswitch"},
    {OpKind::TfheModSwitch, "tfhe.modswitch"},
    {OpKind::SwitchExtract, "switch.extract"},
    {OpKind::SwitchRepack, "switch.repack"},
};

} // namespace

const char *
opKindName(OpKind kind)
{
    for (const auto &entry : kKindNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    ufcPanic("unknown op kind");
}

bool
opKindFromName(const std::string &name, OpKind &kind)
{
    for (const auto &entry : kKindNames) {
        if (name == entry.name) {
            kind = entry.kind;
            return true;
        }
    }
    return false;
}

void
writeTrace(const Trace &tr, std::ostream &os)
{
    os << kTraceMagic << " " << kTraceFormatVersion << "\n";
    os << "trace " << tr.name << "\n";
    os << "ckks " << tr.ckksRingDim << " " << tr.ckksLevels << " "
       << tr.ckksSpecial << " " << tr.ckksDnum << " " << tr.ckksLimbBits
       << "\n";
    os << "tfhe " << tr.tfheRingDim << " " << tr.tfheLweDim << " "
       << tr.tfheGadgetLevels << " " << tr.tfheKsLevels << " "
       << tr.tfheLimbBits << "\n";
    os << "live " << tr.liveCiphertexts << "\n";
    for (const auto &mark : tr.phases) {
        os << "phase " << (mark.begin ? "begin" : "end") << " "
           << mark.opIndex;
        if (mark.begin)
            os << " " << mark.name;
        os << "\n";
    }
    for (const auto &op : tr.ops) {
        os << "op " << opKindName(op.kind) << " " << op.limbs << " "
           << op.count << " " << op.fanIn << " " << op.keyId << "\n";
    }
    os << "end\n";
}

namespace {

// Parser guard rails: reject absurd values before they can size a
// runaway allocation or feed nonsense into the models.
constexpr std::size_t kMaxLineLen = 4096;
constexpr std::size_t kMaxOps = std::size_t(1) << 26;      // ~67M lines
constexpr std::size_t kMaxPhases = std::size_t(1) << 22;
constexpr u64 kMaxRingDim = u64(1) << 26;
constexpr int kMaxSmallField = 1 << 20;  // levels/dnum/limbs/fanIn/...
constexpr int kMaxCount = 1 << 30;       // batched op multiplicity

} // namespace

Trace
readTrace(std::istream &is)
{
    Trace tr;
    std::string line;
    std::size_t lineNo = 0;
    int version = 0;
    bool sawEnd = false;
    bool sawMagic = false;
    // Duplicate-header detection ("duplicate-id" corruption class).
    bool sawName = false, sawCkks = false, sawTfhe = false,
         sawLive = false;
    // Phase-marker validation state: strict nesting, non-decreasing
    // opIndex, no exact duplicates.
    int openPhases = 0;
    u64 lastPhaseOp = 0;
    std::string lastPhaseLine;

    const auto fail = [&](const std::string &what) {
        UFC_THROW(TraceError,
                  what << " [line " << lineNo << ": " << line << "]");
    };

    while (std::getline(is, line)) {
        ++lineNo;
        if (line.size() > kMaxLineLen)
            fail("trace line too long");
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (!sawMagic) {
            // The first meaningful line must be the versioned magic;
            // anything else (including a headerless v1 file) is rejected.
            UFC_EXPECT(tag == kTraceMagic, TraceError,
                       "not a ufc trace file (missing '"
                           << kTraceMagic << "' magic, got '" << tag
                           << "')");
            ss >> version;
            UFC_EXPECT(!ss.fail() && version >= kTraceMinReadVersion &&
                           version <= kTraceFormatVersion,
                       TraceError,
                       "unsupported trace format version "
                           << version << " (expected "
                           << kTraceMinReadVersion << ".."
                           << kTraceFormatVersion << ")");
            sawMagic = true;
            continue;
        }
        if (tag == "trace") {
            if (sawName)
                fail("duplicate 'trace' header line");
            sawName = true;
            ss >> tr.name;
            if (ss.fail() || tr.name.empty())
                fail("malformed trace-name line");
        } else if (tag == "ckks") {
            if (sawCkks)
                fail("duplicate 'ckks' header line");
            sawCkks = true;
            ss >> tr.ckksRingDim >> tr.ckksLevels >> tr.ckksSpecial >>
                tr.ckksDnum >> tr.ckksLimbBits;
            if (ss.fail())
                fail("malformed ckks header line");
            if (tr.ckksRingDim > kMaxRingDim ||
                tr.ckksLevels < 0 || tr.ckksLevels > kMaxSmallField ||
                tr.ckksSpecial < 0 || tr.ckksSpecial > kMaxSmallField ||
                tr.ckksDnum < 0 || tr.ckksDnum > kMaxSmallField ||
                tr.ckksLimbBits < 0 || tr.ckksLimbBits > 64)
                fail("ckks parameter out of range");
        } else if (tag == "tfhe") {
            if (sawTfhe)
                fail("duplicate 'tfhe' header line");
            sawTfhe = true;
            ss >> tr.tfheRingDim >> tr.tfheLweDim >>
                tr.tfheGadgetLevels >> tr.tfheKsLevels >> tr.tfheLimbBits;
            if (ss.fail())
                fail("malformed tfhe header line");
            if (tr.tfheRingDim > kMaxRingDim ||
                tr.tfheLweDim > kMaxRingDim ||
                tr.tfheGadgetLevels < 0 ||
                tr.tfheGadgetLevels > kMaxSmallField ||
                tr.tfheKsLevels < 0 ||
                tr.tfheKsLevels > kMaxSmallField ||
                tr.tfheLimbBits < 0 || tr.tfheLimbBits > 64)
                fail("tfhe parameter out of range");
        } else if (tag == "live") {
            if (sawLive)
                fail("duplicate 'live' header line");
            sawLive = true;
            ss >> tr.liveCiphertexts;
            if (ss.fail() || tr.liveCiphertexts < 0 ||
                tr.liveCiphertexts > kMaxSmallField)
                fail("malformed live-ciphertexts line");
        } else if (tag == "phase") {
            if (version < 3)
                fail("phase markers require trace format v3");
            if (tr.phases.size() >= kMaxPhases)
                fail("too many phase markers");
            std::string kind;
            PhaseMark mark;
            ss >> kind >> mark.opIndex;
            mark.begin = kind == "begin";
            if (!mark.begin && kind != "end")
                fail("malformed phase line");
            if (mark.begin)
                ss >> mark.name;
            if (ss.fail() || (mark.begin && mark.name.empty()))
                fail("malformed phase line");
            // Two identical consecutive *begin* marks open the same
            // region twice — a duplicate-marker corruption.  Identical
            // consecutive end marks are legal (nested regions closing at
            // the same op index).
            if (mark.begin && line == lastPhaseLine)
                fail("duplicate phase marker");
            lastPhaseLine = line;
            if (!tr.phases.empty() && mark.opIndex < lastPhaseOp)
                fail("phase markers out of order");
            lastPhaseOp = mark.opIndex;
            if (mark.begin) {
                ++openPhases;
            } else {
                if (openPhases <= 0)
                    fail("phase 'end' without an open region");
                --openPhases;
            }
            tr.phases.push_back(std::move(mark));
        } else if (tag == "op") {
            if (tr.ops.size() >= kMaxOps)
                fail("too many ops");
            std::string mnemonic;
            TraceOp op{};
            ss >> mnemonic >> op.limbs >> op.count >> op.fanIn >> op.keyId;
            UFC_EXPECT(opKindFromName(mnemonic, op.kind), TraceError,
                       "unknown trace op: " << mnemonic);
            if (ss.fail())
                fail("malformed op line");
            if (op.limbs < 0 || op.limbs > kMaxSmallField ||
                op.count < 1 || op.count > kMaxCount ||
                op.fanIn < 0 || op.fanIn > kMaxSmallField ||
                op.keyId < 0 || op.keyId > kMaxCount)
                fail("op field out of range");
            tr.ops.push_back(op);
        } else if (tag == "end") {
            sawEnd = true;
            break;
        } else {
            fail("unknown trace line tag: '" + tag + "'");
        }
    }
    UFC_EXPECT(sawEnd, TraceError,
               "trace truncated: missing 'end' marker");
    UFC_EXPECT(openPhases == 0, TraceError,
               "trace has " << openPhases << " unclosed phase region(s)");
    for (const auto &mark : tr.phases)
        UFC_EXPECT(mark.opIndex <= tr.ops.size(), TraceError,
                   "phase marker index " << mark.opIndex
                       << " past the end of the op stream ("
                       << tr.ops.size() << " ops)");
    return tr;
}

void
saveTrace(const Trace &tr, const std::string &path)
{
    std::ofstream os(path);
    UFC_EXPECT(os.good(), ConfigError,
               "cannot open " << path << " for writing");
    writeTrace(tr, os);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    UFC_EXPECT(is.good(), TraceError, "cannot open trace file " << path);
    return readTrace(is);
}

} // namespace trace
} // namespace ufc
