/**
 * @file
 * Trace text serialization implementation.
 *
 * Format:
 *   ufctrace <version>
 *   trace <name>
 *   ckks <ringDim> <levels> <special> <dnum> <limbBits>
 *   tfhe <ringDim> <lweDim> <gadgetLevels> <ksLevels> <limbBits>
 *   live <liveCiphertexts>
 *   phase begin <opIndex> <name>     (v3+, optional, interleaved freely)
 *   phase end <opIndex>
 *   op <mnemonic> <limbs> <count> <fanIn> <keyId>
 *   ...
 *   end
 */

#include "trace/serialize.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace ufc {
namespace trace {

namespace {

struct KindName
{
    OpKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {OpKind::CkksAdd, "ckks.add"},
    {OpKind::CkksAddPlain, "ckks.addplain"},
    {OpKind::CkksMult, "ckks.mult"},
    {OpKind::CkksMultPlain, "ckks.multplain"},
    {OpKind::CkksRescale, "ckks.rescale"},
    {OpKind::CkksRotate, "ckks.rotate"},
    {OpKind::CkksConjugate, "ckks.conjugate"},
    {OpKind::CkksModRaise, "ckks.modraise"},
    {OpKind::TfheLinear, "tfhe.linear"},
    {OpKind::TfhePbs, "tfhe.pbs"},
    {OpKind::TfheKeySwitch, "tfhe.keyswitch"},
    {OpKind::TfheModSwitch, "tfhe.modswitch"},
    {OpKind::SwitchExtract, "switch.extract"},
    {OpKind::SwitchRepack, "switch.repack"},
};

} // namespace

const char *
opKindName(OpKind kind)
{
    for (const auto &entry : kKindNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    ufcPanic("unknown op kind");
}

bool
opKindFromName(const std::string &name, OpKind &kind)
{
    for (const auto &entry : kKindNames) {
        if (name == entry.name) {
            kind = entry.kind;
            return true;
        }
    }
    return false;
}

void
writeTrace(const Trace &tr, std::ostream &os)
{
    os << kTraceMagic << " " << kTraceFormatVersion << "\n";
    os << "trace " << tr.name << "\n";
    os << "ckks " << tr.ckksRingDim << " " << tr.ckksLevels << " "
       << tr.ckksSpecial << " " << tr.ckksDnum << " " << tr.ckksLimbBits
       << "\n";
    os << "tfhe " << tr.tfheRingDim << " " << tr.tfheLweDim << " "
       << tr.tfheGadgetLevels << " " << tr.tfheKsLevels << " "
       << tr.tfheLimbBits << "\n";
    os << "live " << tr.liveCiphertexts << "\n";
    for (const auto &mark : tr.phases) {
        os << "phase " << (mark.begin ? "begin" : "end") << " "
           << mark.opIndex;
        if (mark.begin)
            os << " " << mark.name;
        os << "\n";
    }
    for (const auto &op : tr.ops) {
        os << "op " << opKindName(op.kind) << " " << op.limbs << " "
           << op.count << " " << op.fanIn << " " << op.keyId << "\n";
    }
    os << "end\n";
}

Trace
readTrace(std::istream &is)
{
    Trace tr;
    std::string line;
    bool sawEnd = false;
    bool sawMagic = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (!sawMagic) {
            // The first meaningful line must be the versioned magic;
            // anything else (including a headerless v1 file) is rejected.
            UFC_REQUIRE(tag == kTraceMagic,
                        "not a ufc trace file (missing '"
                            << kTraceMagic << "' magic, got '" << tag
                            << "')");
            int version = -1;
            ss >> version;
            UFC_REQUIRE(!ss.fail() && version >= kTraceMinReadVersion &&
                            version <= kTraceFormatVersion,
                        "unsupported trace format version "
                            << version << " (expected "
                            << kTraceMinReadVersion << ".."
                            << kTraceFormatVersion << ")");
            sawMagic = true;
            continue;
        }
        if (tag == "trace") {
            ss >> tr.name;
        } else if (tag == "ckks") {
            ss >> tr.ckksRingDim >> tr.ckksLevels >> tr.ckksSpecial >>
                tr.ckksDnum >> tr.ckksLimbBits;
        } else if (tag == "tfhe") {
            ss >> tr.tfheRingDim >> tr.tfheLweDim >>
                tr.tfheGadgetLevels >> tr.tfheKsLevels >> tr.tfheLimbBits;
        } else if (tag == "live") {
            ss >> tr.liveCiphertexts;
        } else if (tag == "phase") {
            std::string kind;
            PhaseMark mark;
            ss >> kind >> mark.opIndex;
            mark.begin = kind == "begin";
            UFC_REQUIRE(mark.begin || kind == "end",
                        "malformed phase line: " << line);
            if (mark.begin)
                ss >> mark.name;
            UFC_REQUIRE(!ss.fail() && (!mark.begin || !mark.name.empty()),
                        "malformed phase line: " << line);
            tr.phases.push_back(std::move(mark));
        } else if (tag == "op") {
            std::string mnemonic;
            TraceOp op{};
            ss >> mnemonic >> op.limbs >> op.count >> op.fanIn >> op.keyId;
            UFC_REQUIRE(opKindFromName(mnemonic, op.kind),
                        "unknown trace op: " << mnemonic);
            UFC_REQUIRE(!ss.fail(), "malformed op line: " << line);
            tr.ops.push_back(op);
        } else if (tag == "end") {
            sawEnd = true;
            break;
        } else {
            ufcFatal("unknown trace line tag: " + tag);
        }
    }
    UFC_REQUIRE(sawEnd, "trace missing 'end' marker");
    return tr;
}

void
saveTrace(const Trace &tr, const std::string &path)
{
    std::ofstream os(path);
    UFC_REQUIRE(os.good(), "cannot open " + path + " for writing");
    writeTrace(tr, os);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    UFC_REQUIRE(is.good(), "cannot open " + path);
    return readTrace(is);
}

} // namespace trace
} // namespace ufc
