/**
 * @file
 * Bytecode executor implementation.
 *
 * Every arithmetic statement here mirrors one in CycleEngine::issue() /
 * finish(); when editing, keep the expressions and their evaluation
 * order in lockstep with sim/engine.cpp — the differential tests
 * (tests/test_bytecode.cpp) compare the two paths bit for bit.
 */

#include "sim/bc_engine.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "sim/timeline.h"
#include "trace/trace.h"

namespace ufc {
namespace sim {

namespace {

inline u64
bitsOf(double v)
{
    return std::bit_cast<u64>(v);
}

/// Hash every field of the accumulated statistics, bit-wise for the
/// doubles: a phase segment's execution observes instCount (deadline
/// poll cadence) and appends to every other field, so all of them are
/// entry state for bit-exact replay.
void
mixStats(u64 &h, const RunStats &s)
{
    using trace::detail::mix64;
    mix64(h, bitsOf(s.totalCycles));
    for (double d : s.busyCycles)
        mix64(h, bitsOf(d));
    mix64(h, bitsOf(s.hbmBytes));
    mix64(h, bitsOf(s.hbmBusyCycles));
    mix64(h, bitsOf(s.spadHitBytes));
    mix64(h, s.instCount);
    for (const OpStats &op : s.opStats) {
        mix64(h, op.count);
        mix64(h, bitsOf(op.cycles));
        mix64(h, bitsOf(op.computeCycles));
        mix64(h, bitsOf(op.stallCycles));
        mix64(h, bitsOf(op.fillCycles));
        mix64(h, bitsOf(op.hbmBytes));
    }
    mix64(h, bitsOf(s.stalls.hbmBound));
    mix64(h, bitsOf(s.stalls.dependency));
    mix64(h, bitsOf(s.stalls.pipelineFill));
    mix64(h, bitsOf(s.stalls.spadSpillCycles));
    mix64(h, bitsOf(s.stalls.spadWritebackBytes));
    mix64(h, s.stalls.spadEvictions);
}

} // namespace

BytecodeEngine::BytecodeEngine(const compiler::Program *program,
                               int prefetchWindow)
    : program_(program), window_(prefetchWindow)
{
    slots_.resize(program_->spadSlots);
    if (window_ > 0)
        ring_.resize(4 * static_cast<size_t>(window_));
}

void
BytecodeEngine::lruUnlink(u32 slot)
{
    Slot &e = slots_[slot];
    if (e.prev != kNil)
        slots_[e.prev].next = e.next;
    else
        lruHead_ = e.next;
    if (e.next != kNil)
        slots_[e.next].prev = e.prev;
    else
        lruTail_ = e.prev;
    e.prev = kNil;
    e.next = kNil;
}

void
BytecodeEngine::lruPushFront(u32 slot)
{
    Slot &e = slots_[slot];
    e.prev = kNil;
    e.next = lruHead_;
    if (lruHead_ != kNil)
        slots_[lruHead_].prev = slot;
    lruHead_ = slot;
    if (lruTail_ == kNil)
        lruTail_ = slot;
}

double
BytecodeEngine::spadAccess(const compiler::BcBuf &buf,
                           double &writebackBytes)
{
    // Mirrors SpadModel::access() over dense slots: same hit/grow
    // arithmetic, same eviction order (tail = least recent), same
    // dirty-victim write-back accounting.
    writebackBytes = 0.0;
    Slot &e = slots_[buf.slot];
    if (e.resident) {
        lruUnlink(buf.slot);
        lruPushFront(buf.slot);
        e.dirty = e.dirty || buf.write;
        if (e.bytes < buf.bytes) {
            spadUsed_ += buf.bytes - e.bytes;
            e.bytes = buf.bytes;
        }
        return 0.0;
    }

    while (spadUsed_ + buf.bytes > program_->scratchpadBytes &&
           lruTail_ != kNil) {
        const u32 victim = lruTail_;
        Slot &v = slots_[victim];
        lruUnlink(victim);
        if (v.dirty)
            writebackBytes += v.bytes;
        spadUsed_ -= v.bytes;
        v.resident = false;
        v.dirty = false;
        ++spadEvictions_;
    }
    lruPushFront(buf.slot);
    e.bytes = buf.bytes;
    e.dirty = buf.write;
    e.resident = true;
    spadUsed_ += buf.bytes;

    return buf.write ? 0.0 : buf.bytes;
}

template <bool WithTimeline>
void
BytecodeEngine::step(const compiler::BcInst &b)
{
    // Cooperative host-deadline poll, same cadence as the IR engine.
    if (hostDeadline_ != std::chrono::steady_clock::time_point{} &&
        stats_.instCount % CycleEngine::kDeadlinePollPeriod == 0) {
        detail::countDeadlinePoll();
        if (std::chrono::steady_clock::now() >= hostDeadline_)
            detail::throwHostDeadline(stats_.instCount, computeClock_);
    }

    // Memory phase.  Stream instructions carry it pre-computed; Mem
    // instructions walk their operand records in original order so the
    // floating-point accumulation matches the IR engine's.
    double fetchBytes;
    double wbBytes;
    double memCycles;
    if (b.kind == compiler::BcKind::Stream) {
        fetchBytes = b.staticFetchBytes;
        wbBytes = 0.0;
        memCycles = b.staticMemCycles;
    } else {
        fetchBytes = 0.0;
        wbBytes = 0.0;
        const compiler::BcBuf *buf = &program_->bufs[b.bufBegin];
        for (u16 k = 0; k < b.bufCount; ++k, ++buf) {
            if (buf->streamed) {
                fetchBytes += buf->bytes;
                continue;
            }
            double wb = 0.0;
            const double miss = spadAccess(*buf, wb);
            fetchBytes += miss;
            wbBytes += wb;
            if (miss == 0.0 && !buf->write)
                stats_.spadHitBytes += buf->bytes;
        }
        memCycles = (fetchBytes + wbBytes) / program_->hbmBytesPerCycle;
    }

    double memStart = memClock_;
    if (window_ <= 0) {
        memStart = std::max(memStart, computeClock_);
    } else if (ringSize_ >= static_cast<size_t>(window_)) {
        // ringStart_ < ring size and ringSize_ <= ring size, so the
        // unwrapped index is < 2x the size: one conditional subtract
        // replaces the modulo (a hardware divide) on the hot path.
        size_t idx = ringStart_ + ringSize_ - static_cast<size_t>(window_);
        if (idx >= ring_.size())
            idx -= ring_.size();
        memStart = std::max(memStart, ring_[idx]);
    }
    const double memDone = memStart + memCycles;
    memClock_ = memDone;

    const double computeBefore = computeClock_;
    const double start = std::max(computeBefore, memDone);
    const double done = start + b.computeCycles + b.fillCycles;
    computeClock_ = done;

    if (maxCycles_ > 0 && computeClock_ > static_cast<double>(maxCycles_))
        detail::throwMaxCycles(computeClock_, maxCycles_,
                               stats_.instCount + 1);

    if (window_ > 0) {
        // push_back + trim-beyond-4*window, as a ring overwrite
        // (conditional wrap, not modulo: indices advance by one).
        if (ringSize_ == ring_.size()) {
            ring_[ringStart_] = done;
            ++ringStart_;
            if (ringStart_ == ring_.size())
                ringStart_ = 0;
        } else {
            size_t idx = ringStart_ + ringSize_;
            if (idx >= ring_.size())
                idx -= ring_.size();
            ring_[idx] = done;
            ++ringSize_;
        }
    }

    stats_.busyCycles[b.resource] += b.busyLaneCycles;
    stats_.busyCycles[static_cast<int>(isa::Resource::Noc)] +=
        b.nocCycles;
    stats_.hbmBytes += fetchBytes + wbBytes;
    stats_.hbmBusyCycles += memCycles;
    ++stats_.instCount;

    const double wait = start - computeBefore;
    OpStats &op = stats_.opStats[b.op];
    ++op.count;
    op.cycles += wait + b.computeCycles + b.fillCycles;
    op.computeCycles += b.computeCycles;
    op.stallCycles += wait;
    op.fillCycles += b.fillCycles;
    op.hbmBytes += fetchBytes + wbBytes;

    const double hbmOverlap = std::min(wait, memCycles);
    stats_.stalls.hbmBound += hbmOverlap;
    stats_.stalls.dependency += wait - hbmOverlap;
    stats_.stalls.pipelineFill += b.fillCycles;
    stats_.stalls.spadWritebackBytes += wbBytes;
    stats_.stalls.spadSpillCycles +=
        wbBytes / program_->hbmBytesPerCycle;

    if constexpr (WithTimeline) {
        const char *name = isa::opName(static_cast<isa::HwOp>(b.op));
        if (memCycles > 0)
            timeline_->addSlice(Timeline::kHbmTrack, name, memStart,
                                memDone, fetchBytes + wbBytes);
        timeline_->addSlice(static_cast<int>(b.resource), name, start,
                            done);
    }
}

void
BytecodeEngine::applyPhaseEvent(const compiler::PhaseEvent &ev)
{
    if (ev.name == compiler::PhaseEvent::kEnd)
        timeline_->endPhase(computeClock_);
    else
        timeline_
            ->beginPhase(program_->phaseNames[static_cast<size_t>(ev.name)]
                             .c_str(),
                         computeClock_);
}

u64
BytecodeEngine::entryKey(u64 segContentHash) const
{
    using trace::detail::mix64;
    // The base binds what the segment *is* (content digest) and the two
    // execution knobs that change its arithmetic (prefetch window) or
    // its error behaviour (watchdog budget).
    u64 h = compiler::phaseCacheKeyBase(segContentHash, window_,
                                        maxCycles_);

    // From here down: what the engine *is* when the segment starts.
    mix64(h, bitsOf(computeClock_));
    mix64(h, bitsOf(memClock_));

    // Ring in logical order.  Only the last `window_` completion times
    // and the count are ever read, but hashing the whole logical
    // content keeps the key aligned with what restoreState() installs.
    mix64(h, static_cast<u64>(ringSize_));
    for (size_t k = 0; k < ringSize_; ++k) {
        size_t idx = ringStart_ + k;
        if (idx >= ring_.size())
            idx -= ring_.size();
        mix64(h, bitsOf(ring_[idx]));
    }

    // Resident scratchpad slots in LRU order (head = most recent).
    // Non-resident slots are excluded on purpose: spadAccess()
    // overwrites their bytes/dirty before reading them, so they carry
    // no observable state.
    u64 resident = 0;
    for (u32 s = lruHead_; s != kNil; s = slots_[s].next) {
        const Slot &e = slots_[s];
        mix64(h, static_cast<u64>(s));
        mix64(h, bitsOf(e.bytes));
        mix64(h, static_cast<u64>(e.dirty ? 1 : 0));
        ++resident;
    }
    mix64(h, resident);
    mix64(h, bitsOf(spadUsed_));
    mix64(h, spadEvictions_);

    mixStats(h, stats_);
    return h;
}

std::shared_ptr<const PhaseExitState>
BytecodeEngine::snapshotState() const
{
    auto st = std::make_shared<PhaseExitState>();
    st->computeClock = computeClock_;
    st->memClock = memClock_;
    st->ring.reserve(ringSize_);
    for (size_t k = 0; k < ringSize_; ++k) {
        size_t idx = ringStart_ + k;
        if (idx >= ring_.size())
            idx -= ring_.size();
        st->ring.push_back(ring_[idx]);
    }
    for (u32 s = lruHead_; s != kNil; s = slots_[s].next)
        st->lru.push_back({s, slots_[s].bytes, slots_[s].dirty});
    st->spadUsed = spadUsed_;
    st->spadEvictions = spadEvictions_;
    st->stats = stats_;
    return st;
}

void
BytecodeEngine::restoreState(const PhaseExitState &s)
{
    // Keys include the prefetch window, so a hit's ring always fits;
    // anything else would be an FNV collision feeding us a snapshot
    // from an incompatible engine geometry.
    UFC_EXPECT(s.ring.size() <= ring_.size() ||
                   (ring_.empty() && s.ring.empty()),
               ConfigError,
               "phase-cache snapshot incompatible with engine geometry ("
                   << s.ring.size() << " ring entries, capacity "
                   << ring_.size() << ")");
    computeClock_ = s.computeClock;
    memClock_ = s.memClock;
    ringStart_ = 0;
    ringSize_ = s.ring.size();
    std::copy(s.ring.begin(), s.ring.end(), ring_.begin());

    // Reset every currently resident slot, then install the stored LRU
    // chain head -> tail by manual linking.
    for (u32 cur = lruHead_; cur != kNil;) {
        const u32 next = slots_[cur].next;
        slots_[cur] = Slot{};
        cur = next;
    }
    lruHead_ = kNil;
    lruTail_ = kNil;
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
        Slot &e = slots_[it->slot];
        e.bytes = it->bytes;
        e.dirty = it->dirty;
        e.resident = true;
        lruPushFront(it->slot);
    }
    spadUsed_ = s.spadUsed;
    spadEvictions_ = s.spadEvictions;
    stats_ = s.stats;
}

template <bool WithTimeline>
void
BytecodeEngine::exec()
{
    const auto &code = program_->code;
    const auto &events = program_->phaseEvents;
    const auto &loops = program_->loops;
    const auto &segs = program_->segments;
    const size_t n = code.size();
    size_t ev = 0;
    size_t i = 0;
    size_t li = 0;
    u64 tripsDone = 0;
    // Phase-cache cursors.  `si` is the next segment whose begin we have
    // not passed; `pendingSeg` is a segment we entered on a miss and
    // will snapshot when i reaches its end.  Timeline runs never cache
    // (cacheActive_ is false then, but the compile-time guard lets the
    // optimizer drop the whole block from exec<true>).
    const bool useCache = !WithTimeline && cacheActive_;
    constexpr size_t kNoPending = static_cast<size_t>(-1);
    size_t si = 0;
    size_t pendingSeg = kNoPending;
    u64 pendingKey = 0;
    while (true) {
        // Structural loop-back: fires between instructions, before any
        // phase event at this index, so markers recorded after a fold
        // fire once — after the final trip.  The body re-executes with
        // full per-instruction state (clocks, ring, deadline polls);
        // only the dispatch of the repeat is structural.  The phase
        // cursor below stays monotonic across the jump because folded
        // bodies contain no markers (bc-loop-invariant).
        if (li < loops.size() && i == loops[li].end) {
            ++tripsDone;
            if (tripsDone < loops[li].trips) {
                i -= loops[li].bodyLen;
                continue;
            }
            ++li;
            tripsDone = 0;
        }
        if (useCache) {
            // Close an open miss first: at a shared boundary (previous
            // segment's end == next segment's begin) the snapshot must
            // be taken before the next lookup keys off this state.
            if (pendingSeg != kNoPending &&
                i == static_cast<size_t>(segs[pendingSeg].end)) {
                cache_->insert(pendingKey, snapshotState());
                pendingSeg = kNoPending;
            }
            // Consume consecutive hits; on the first miss, record it as
            // pending and fall through to execute the segment normally.
            // tripsDone is always 0 here: folded loops never straddle a
            // phase marker (bc-loop-invariant), so a segment boundary
            // is never inside a partially executed loop.
            while (si < segs.size() &&
                   i == static_cast<size_t>(segs[si].begin)) {
                const u64 key = entryKey(segHashes_[si]);
                const auto hit = cache_->find(key);
                if (!hit) {
                    ++runCacheMisses_;
                    pendingSeg = si;
                    pendingKey = key;
                    ++si;
                    break;
                }
                ++runCacheHits_;
                restoreState(*hit);
                i = static_cast<size_t>(segs[si].end);
                while (li < loops.size() && loops[li].end <= i)
                    ++li;
                ++si;
            }
        }
        if (i >= n)
            break;
        if constexpr (WithTimeline) {
            while (ev < events.size() && events[ev].inst == i) {
                applyPhaseEvent(events[ev]);
                ++ev;
            }
        }
        const compiler::BcInst &b = code[i];
        if (!WithTimeline && b.runLen > 1) {
            // Fused macro-op: every member is a Stream instruction and
            // no phase marker fires inside the run (compile-time
            // invariants; lint rules bc-fuse-*), so the inner loop
            // skips the dispatch checks entirely.  Timeline runs take
            // the generic path — replaying phase events between member
            // instructions needs the per-instruction cursor.
            const size_t end = i + b.runLen;
            for (size_t k = i; k < end; ++k)
                step<false>(code[k]);
            i = end;
        } else {
            step<WithTimeline>(b);
            ++i;
        }
    }
    if constexpr (WithTimeline) {
        while (ev < events.size()) {
            applyPhaseEvent(events[ev]);
            ++ev;
        }
    }
}

RunStats
BytecodeEngine::run()
{
    UFC_EXPECT(!program_->composed(), ConfigError,
               "BytecodeEngine cannot execute a composed Program ('"
                   << program_->machine
                   << "'); decompose it via ComposedModel::execute");
    // Cheap structural screen of the loop table (the executor trusts it
    // for control flow); verifyProgram() covers the full invariants.
    u64 prevEnd = 0;
    for (const auto &lp : program_->loops) {
        UFC_EXPECT(lp.bodyLen > 0 && lp.trips >= 2 &&
                       lp.end <= program_->code.size() &&
                       lp.bodyLen <= lp.end &&
                       lp.end - lp.bodyLen >= prevEnd,
                   ConfigError,
                   "malformed Program loop (end=" << lp.end << " body="
                       << lp.bodyLen << " trips=" << lp.trips
                       << "); see lint rule bc-loop-invariant");
        prevEnd = lp.end;
    }
    runCacheHits_ = 0;
    runCacheMisses_ = 0;
    // Phase-cache gating: a timeline must replay every instruction, and
    // a wall-clock deadline must keep polling real time inside skipped
    // segments, so both disable the cache for this run.
    cacheActive_ =
        cache_ != nullptr && timeline_ == nullptr &&
        hostDeadline_ == std::chrono::steady_clock::time_point{} &&
        !program_->segments.empty();
    if (cacheActive_) {
        // Same cheap structural screen as the loop table: exec() trusts
        // segment bounds for control flow.
        u64 prevSegEnd = 0;
        for (const auto &seg : program_->segments) {
            UFC_EXPECT(seg.begin < seg.end &&
                           seg.end <= program_->code.size() &&
                           seg.begin >= prevSegEnd,
                       ConfigError,
                       "malformed Program segment [" << seg.begin << ", "
                           << seg.end << ")");
            prevSegEnd = seg.end;
        }
        // Hash the segment table once, here, so only cache-armed runs
        // pay for content digests (see PhaseSegment docs).
        segHashes_.resize(program_->segments.size());
        for (size_t s = 0; s < program_->segments.size(); ++s)
            segHashes_[s] = compiler::segmentContentHash(
                *program_, program_->segments[s].begin,
                program_->segments[s].end);
    }
    if (timeline_)
        exec<true>();
    else
        exec<false>();

    // totalCycles is defined as the fixed-order per-opcode sum, exactly
    // as CycleEngine::finish().
    double total = 0.0;
    for (const auto &op : stats_.opStats)
        total += op.cycles;
    stats_.totalCycles = total;
    stats_.stalls.spadEvictions = spadEvictions_;
    if (timeline_)
        timeline_->closeOpenPhases(computeClock_);
    return stats_;
}

} // namespace sim
} // namespace ufc
