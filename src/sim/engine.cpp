/**
 * @file
 * Cycle engine implementation.
 */

#include "sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/error.h"
#include "metrics/flight_recorder.h"
#include "metrics/metrics.h"
#include "sim/timeline.h"

namespace ufc {
namespace sim {

namespace detail {

namespace {

std::string
formatCycles(double simCycles)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "cycles=%.0f", simCycles);
    return buf;
}

} // namespace

void
countDeadlinePoll()
{
    if (metrics::enabled()) {
        static metrics::Counter &polls = metrics::counter(
            "ufc_engine_deadline_polls_total",
            "Armed host-deadline watchdog polls (clock reads)");
        polls.inc();
    }
}

void
throwHostDeadline(u64 instCount, double simCycles)
{
    if (metrics::enabled()) {
        static metrics::Counter &trips = metrics::counter(
            "ufc_engine_deadline_trips_total",
            "Host-deadline watchdog trips (job cancelled)");
        trips.inc();
        metrics::flightRecorder().record(metrics::EventKind::WatchdogTrip,
                                         "host_deadline",
                                         formatCycles(simCycles));
    }
    UFC_THROW(TimeoutError,
              "host deadline exceeded after " << instCount
                  << " instructions (" << simCycles
                  << " simulated cycles)");
}

void
throwMaxCycles(double simCycles, u64 bound, u64 instCount)
{
    if (metrics::enabled()) {
        static metrics::Counter &trips = metrics::counter(
            "ufc_engine_maxcycles_trips_total",
            "maxCycles watchdog trips (runaway simulation stopped)");
        trips.inc();
        metrics::flightRecorder().record(metrics::EventKind::WatchdogTrip,
                                         "max_cycles",
                                         formatCycles(simCycles));
    }
    UFC_THROW(TimeoutError,
              "maxCycles watchdog tripped: "
                  << simCycles << " simulated cycles > bound " << bound
                  << " after " << instCount << " instructions");
}

} // namespace detail

double
SpadModel::access(const isa::BufferRef &ref, double &writebackBytes)
{
    writebackBytes = 0.0;
    if (ref.transient)
        return 0.0;
    if (ref.streaming)
        return static_cast<double>(ref.bytes);

    auto it = entries_.find(ref.id);
    if (it != entries_.end()) {
        // Hit: refresh recency; a write marks the entry dirty.
        lru_.erase(it->second.lruIt);
        lru_.push_front(ref.id);
        it->second.lruIt = lru_.begin();
        it->second.dirty = it->second.dirty || ref.write;
        if (it->second.bytes < ref.bytes) {
            used_ += ref.bytes - it->second.bytes;
            it->second.bytes = ref.bytes;
        }
        return 0.0;
    }

    // Miss: make room, then install.
    while (used_ + ref.bytes > capacity_ && !lru_.empty()) {
        const u64 victim = lru_.back();
        lru_.pop_back();
        auto vit = entries_.find(victim);
        if (vit->second.dirty)
            writebackBytes += vit->second.bytes;
        used_ -= vit->second.bytes;
        entries_.erase(vit);
        ++evictions_;
    }
    lru_.push_front(ref.id);
    Entry e;
    e.bytes = ref.bytes;
    e.dirty = ref.write;
    e.lruIt = lru_.begin();
    entries_.emplace(ref.id, e);
    used_ += ref.bytes;

    // A freshly written buffer costs nothing to fetch.
    return ref.write ? 0.0 : ref.bytes;
}

CycleEngine::CycleEngine(const MachinePerf *perf, int prefetchWindow)
    : perf_(perf), spad_(perf->scratchpadBytes()), window_(prefetchWindow)
{}

void
CycleEngine::reset()
{
    spad_.reset();
    computeClock_ = 0.0;
    memClock_ = 0.0;
    recentComputeDone_.clear();
    stats_ = RunStats{};
}

void
CycleEngine::issue(const isa::HwInst &inst)
{
    // Cheap cooperative poll point: check the host deadline once every
    // kDeadlinePollPeriod instructions so a hung/runaway job can be
    // cancelled without per-issue syscall cost.
    if (hostDeadline_ != std::chrono::steady_clock::time_point{} &&
        stats_.instCount % kDeadlinePollPeriod == 0) {
        detail::countDeadlinePoll();
        if (std::chrono::steady_clock::now() >= hostDeadline_)
            detail::throwHostDeadline(stats_.instCount, computeClock_);
    }

    // Memory phase: fetch missing operands, schedule write-backs.
    double fetchBytes = 0.0;
    double wbBytes = 0.0;
    for (const auto &ref : inst.buffers) {
        double wb = 0.0;
        const double miss = spad_.access(ref, wb);
        fetchBytes += miss;
        wbBytes += wb;
        if (miss == 0.0 && !ref.write && !ref.transient)
            stats_.spadHitBytes += ref.bytes;
    }
    const double memCycles =
        (fetchBytes + wbBytes) / perf_->hbmBytesPerCycle();

    // The memory engine is in-order and may run at most `window_`
    // instructions ahead of compute; window <= 0 disables lookahead
    // entirely (the fetch waits for the compute engine to drain).
    double memStart = memClock_;
    if (window_ <= 0) {
        memStart = std::max(memStart, computeClock_);
    } else if (static_cast<int>(recentComputeDone_.size()) >= window_) {
        memStart = std::max(
            memStart,
            recentComputeDone_[recentComputeDone_.size() - window_]);
    }
    const double memDone = memStart + memCycles;
    memClock_ = memDone;

    // Compute phase starts when its operands arrived and the datapath is
    // free.
    const double computeBefore = computeClock_;
    const double cCycles = perf_->computeCycles(inst);
    const double fill = perf_->pipelineFillCycles();
    const double start = std::max(computeBefore, memDone);
    const double done = start + cCycles + fill;
    computeClock_ = done;

    // Simulated-cycle watchdog (RunOptions::maxCycles): a pathological
    // or runaway instruction stream trips here deterministically.
    if (maxCycles_ > 0 && computeClock_ > static_cast<double>(maxCycles_))
        detail::throwMaxCycles(computeClock_, maxCycles_,
                               stats_.instCount + 1);

    if (window_ > 0) {
        recentComputeDone_.push_back(done);
        if (static_cast<int>(recentComputeDone_.size()) > 4 * window_)
            recentComputeDone_.pop_front();
    }

    // Accounting.
    const auto res = perf_->resourceFor(inst);
    stats_.busyCycles[static_cast<int>(res)] +=
        cCycles * perf_->laneFraction(inst);
    stats_.busyCycles[static_cast<int>(isa::Resource::Noc)] +=
        perf_->nocCycles(inst);
    stats_.hbmBytes += fetchBytes + wbBytes;
    stats_.hbmBusyCycles += memCycles;
    ++stats_.instCount;

    // Attribution: the compute engine advances by exactly
    // wait + cCycles + fill this issue; charge that delta to the opcode
    // so the per-op table telescopes to the final clock.
    const double wait = start - computeBefore;
    OpStats &op = stats_.opStats[static_cast<int>(inst.op)];
    ++op.count;
    op.cycles += wait + cCycles + fill;
    op.computeCycles += cCycles;
    op.stallCycles += wait;
    op.fillCycles += fill;
    op.hbmBytes += fetchBytes + wbBytes;

    // Stall causes: the part of the wait covered by active transfer time
    // is HBM-bound; the remainder is in-order/prefetch-window dependency
    // delay (the data was fetchable earlier but the engine could not
    // start it sooner).
    const double hbmOverlap = std::min(wait, memCycles);
    stats_.stalls.hbmBound += hbmOverlap;
    stats_.stalls.dependency += wait - hbmOverlap;
    stats_.stalls.pipelineFill += fill;
    stats_.stalls.spadWritebackBytes += wbBytes;
    stats_.stalls.spadSpillCycles += wbBytes / perf_->hbmBytesPerCycle();

    if (timeline_) {
        if (memCycles > 0)
            timeline_->addSlice(Timeline::kHbmTrack, isa::opName(inst.op),
                                memStart, memDone, fetchBytes + wbBytes);
        timeline_->addSlice(static_cast<int>(res), isa::opName(inst.op),
                            start, done);
    }
}

void
CycleEngine::beginPhase(const char *name)
{
    if (timeline_)
        timeline_->beginPhase(name, computeClock_);
}

void
CycleEngine::endPhase()
{
    if (timeline_)
        timeline_->endPhase(computeClock_);
}

RunStats
CycleEngine::finish()
{
    // totalCycles is *defined* as the fixed-order sum of the per-opcode
    // attribution table, so "breakdown sums to total" holds exactly
    // rather than up to floating-point telescoping error.  The sum equals
    // max(computeClock_, memClock_) up to ulps: compute never finishes
    // before its own fetch, so computeClock_ >= memClock_, and the
    // per-issue deltas telescope to computeClock_.
    double total = 0.0;
    for (const auto &op : stats_.opStats)
        total += op.cycles;
    stats_.totalCycles = total;
    stats_.stalls.spadEvictions = spad_.evictions();
    if (timeline_)
        timeline_->closeOpenPhases(computeClock_);
    return stats_;
}

} // namespace sim
} // namespace ufc
