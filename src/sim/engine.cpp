/**
 * @file
 * Cycle engine implementation.
 */

#include "sim/engine.h"

#include <algorithm>

namespace ufc {
namespace sim {

double
SpadModel::access(const isa::BufferRef &ref, double &writebackBytes)
{
    writebackBytes = 0.0;
    if (ref.transient)
        return 0.0;
    if (ref.streaming)
        return static_cast<double>(ref.bytes);

    auto it = entries_.find(ref.id);
    if (it != entries_.end()) {
        // Hit: refresh recency; a write marks the entry dirty.
        lru_.erase(it->second.lruIt);
        lru_.push_front(ref.id);
        it->second.lruIt = lru_.begin();
        it->second.dirty = it->second.dirty || ref.write;
        if (it->second.bytes < ref.bytes) {
            used_ += ref.bytes - it->second.bytes;
            it->second.bytes = ref.bytes;
        }
        return 0.0;
    }

    // Miss: make room, then install.
    while (used_ + ref.bytes > capacity_ && !lru_.empty()) {
        const u64 victim = lru_.back();
        lru_.pop_back();
        auto vit = entries_.find(victim);
        if (vit->second.dirty)
            writebackBytes += vit->second.bytes;
        used_ -= vit->second.bytes;
        entries_.erase(vit);
    }
    lru_.push_front(ref.id);
    Entry e;
    e.bytes = ref.bytes;
    e.dirty = ref.write;
    e.lruIt = lru_.begin();
    entries_.emplace(ref.id, e);
    used_ += ref.bytes;

    // A freshly written buffer costs nothing to fetch.
    return ref.write ? 0.0 : ref.bytes;
}

CycleEngine::CycleEngine(const MachinePerf *perf, int prefetchWindow)
    : perf_(perf), spad_(perf->scratchpadBytes()), window_(prefetchWindow)
{}

void
CycleEngine::reset()
{
    spad_.reset();
    computeClock_ = 0.0;
    memClock_ = 0.0;
    recentComputeDone_.clear();
    stats_ = RunStats{};
}

void
CycleEngine::issue(const isa::HwInst &inst)
{
    // Memory phase: fetch missing operands, schedule write-backs.
    double fetchBytes = 0.0;
    double wbBytes = 0.0;
    for (const auto &ref : inst.buffers) {
        double wb = 0.0;
        const double miss = spad_.access(ref, wb);
        fetchBytes += miss;
        wbBytes += wb;
        if (miss == 0.0 && !ref.write && !ref.transient)
            stats_.spadHitBytes += ref.bytes;
    }
    const double memCycles =
        (fetchBytes + wbBytes) / perf_->hbmBytesPerCycle();

    // The memory engine is in-order and may run at most `window_`
    // instructions ahead of compute.
    double memStart = memClock_;
    if (static_cast<int>(recentComputeDone_.size()) >= window_) {
        memStart = std::max(
            memStart,
            recentComputeDone_[recentComputeDone_.size() - window_]);
    }
    const double memDone = memStart + memCycles;
    memClock_ = memDone;

    // Compute phase starts when its operands arrived and the datapath is
    // free.
    const double cCycles = perf_->computeCycles(inst);
    const double start = std::max(computeClock_, memDone);
    const double done = start + cCycles + perf_->pipelineFillCycles();
    computeClock_ = done;

    recentComputeDone_.push_back(done);
    if (static_cast<int>(recentComputeDone_.size()) > 4 * window_)
        recentComputeDone_.pop_front();

    // Accounting.
    const auto res = perf_->resourceFor(inst);
    stats_.busyCycles[static_cast<int>(res)] +=
        cCycles * perf_->laneFraction(inst);
    stats_.busyCycles[static_cast<int>(isa::Resource::Noc)] +=
        perf_->nocCycles(inst);
    stats_.hbmBytes += fetchBytes + wbBytes;
    stats_.hbmBusyCycles += memCycles;
    ++stats_.instCount;
}

RunStats
CycleEngine::finish()
{
    stats_.totalCycles = std::max(computeClock_, memClock_);
    return stats_;
}

} // namespace sim
} // namespace ufc
