/**
 * @file
 * Optional structured event stream recorded by the cycle engine.
 *
 * A Timeline collects begin/end slices — one per instruction on its
 * resource lane, one per HBM transfer, and one per phase region (trace
 * op, key switch, blind rotation, workload phase) — and exports them in
 * the Chrome trace-event JSON format, which https://ui.perfetto.dev and
 * chrome://tracing open directly.
 *
 * Timestamps are simulated cycles reported in the "us" field (so 1 us in
 * the viewer == 1 cycle).  Tracks: one "thread" per isa::Resource, one
 * for the HBM interface, and one for the nested phase regions.  Slices
 * on a track never overlap (the engine's clocks are monotonic), so the
 * viewer renders a clean single-row lane per track; phases nest by stack
 * discipline and render as a flame graph.
 *
 * Recording is observation-only: the engine's schedule and the RunResult
 * are bit-identical whether or not a Timeline is attached.  A Timeline
 * must not be shared between concurrent runs.
 */

#ifndef UFC_SIM_TIMELINE_H
#define UFC_SIM_TIMELINE_H

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "isa/inst.h"

namespace ufc {
namespace sim {

/** One completed slice on a timeline track. */
struct TimelineSlice
{
    /// Track id: 0..kNumResources-1 = resource lanes, kHbmTrack = HBM
    /// interface, kPhaseTrack = phase regions.
    int track = 0;
    /// Nesting depth within the track (phases only; slices on resource
    /// tracks are flat).
    int depth = 0;
    /// Owned copy of the opcode mnemonic / phase name, so a Timeline
    /// outlives the Trace and engine that filled it.
    std::string name;
    double beginCycle = 0.0;
    double endCycle = 0.0;
    double bytes = 0.0;      ///< HBM slices: bytes moved (else 0)
};

class Timeline
{
  public:
    static constexpr int kHbmTrack = isa::kNumResources;
    static constexpr int kPhaseTrack = isa::kNumResources + 1;
    static constexpr int kNumTracks = isa::kNumResources + 2;

    /** Drop all recorded slices and reset the phase stack. */
    void
    clear()
    {
        slices_.clear();
        phaseStack_.clear();
    }

    /** Record a completed slice on a resource or HBM track. */
    void
    addSlice(int track, const char *name, double beginCycle,
             double endCycle, double bytes = 0.0)
    {
        slices_.push_back(
            TimelineSlice{track, 0, name, beginCycle, endCycle, bytes});
    }

    /** Open a phase region at `cycle` (regions nest by stack order). */
    void
    beginPhase(const char *name, double cycle)
    {
        phaseStack_.push_back(OpenPhase{name, cycle});
    }

    /** Close the innermost open phase at `cycle`; no-op when empty. */
    void
    endPhase(double cycle)
    {
        if (phaseStack_.empty())
            return;
        OpenPhase top = std::move(phaseStack_.back());
        phaseStack_.pop_back();
        slices_.push_back(TimelineSlice{
            kPhaseTrack, static_cast<int>(phaseStack_.size()),
            std::move(top.name), top.beginCycle, cycle, 0.0});
    }

    /** Close any phases left open (engine finish with unbalanced marks). */
    void
    closeOpenPhases(double cycle)
    {
        while (!phaseStack_.empty())
            endPhase(cycle);
    }

    const std::vector<TimelineSlice> &slices() const { return slices_; }
    bool empty() const { return slices_.empty(); }
    size_t openPhaseDepth() const { return phaseStack_.size(); }

    /** Emit the recorded slices as Chrome trace-event JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() to a file; throws ufc::ConfigError on I/O
     *  error. */
    void saveChromeTrace(const std::string &path) const;

    /** Human-readable track name ("butterfly", "hbm", "phase", ...). */
    static const char *trackName(int track);

  private:
    struct OpenPhase
    {
        std::string name;
        double beginCycle;
    };

    std::vector<TimelineSlice> slices_;
    std::vector<OpenPhase> phaseStack_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_TIMELINE_H
