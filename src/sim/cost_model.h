/**
 * @file
 * Area, power and energy models.
 *
 * The paper synthesizes the UFC components on a commercial node and scales
 * results to 7 nm (Section VI-A); this reproduction uses an analytical
 * component model with per-unit constants calibrated so that the Table II
 * configuration lands on the published totals (197.7 mm^2 / 76.9 W at
 * 1 GHz).  Because the model is per-component, the design-space
 * explorations (lane count, scratchpad size, CG-network count) move area
 * and power the way the paper's Figures 13/14 require.
 */

#ifndef UFC_SIM_COST_MODEL_H
#define UFC_SIM_COST_MODEL_H

#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace ufc {
namespace sim {

/** One row of the Figure 9 style area breakdown. */
struct AreaItem
{
    std::string component;
    double mm2 = 0.0;
};

/** Analytical area/power model for a UFC configuration. */
class UfcCostModel
{
  public:
    explicit UfcCostModel(const UfcConfig &cfg) : cfg_(cfg) {}

    /** Component-level area breakdown (Figure 9). */
    std::vector<AreaItem> areaBreakdown() const;
    /** Total chip area in mm^2. */
    double areaMm2() const;

    /** Average power given a run's resource utilizations. */
    double averagePowerW(const RunStats &stats) const;
    /** Energy for a finished run. */
    double energyJ(const RunStats &stats) const;
    /** Leakage/clock-tree component of energyJ (per-opcode attribution
     *  splits the remainder by compute-cycle and byte shares). */
    double staticEnergyJ(const RunStats &stats) const;
    /** HBM-interface component of energyJ. */
    double hbmEnergyJ(const RunStats &stats) const;
    /** Wall-clock seconds for a finished run. */
    double seconds(const RunStats &stats) const;

  private:
    UfcConfig cfg_;

    // 7 nm component constants (calibrated, see file comment).
    static constexpr double kButterflyMm2 = 0.00155;
    static constexpr double kLaneMm2 = 0.00052;
    static constexpr double kRegFileMm2PerKb = 0.0022;
    static constexpr double kSpadMm2PerMb = 0.245;
    static constexpr double kNocMm2PerLane = 0.0026;
    static constexpr double kHbmPhyMm2 = 14.9;
    static constexpr double kLweuMm2 = 0.9;

    static constexpr double kStaticW = 13.0;
    static constexpr double kButterflyPw = 2.8e-3; // W per busy unit
    static constexpr double kLanePw = 1.0e-3;
    static constexpr double kNocPw = 6.5;          // W at full activity
    static constexpr double kLweuPw = 0.8;
    static constexpr double kSpadPwPerMb = 0.024;  // active banks
    static constexpr double kHbmPjPerByte = 30.0;
};

/**
 * Simple calibrated cost models for the baselines: published area and a
 * static + utilization-scaled dynamic power (both scaled to 7 nm with the
 * methodology the paper cites).
 */
struct BaselineCost
{
    double areaMm2 = 0.0;
    double staticW = 0.0;
    double peakDynamicW = 0.0;
    double hbmPjPerByte = 30.0;
    double freqGHz = 1.0;

    double averagePowerW(const RunStats &stats) const;
    double energyJ(const RunStats &stats) const;
    double staticEnergyJ(const RunStats &stats) const;
    double hbmEnergyJ(const RunStats &stats) const;
    double seconds(const RunStats &stats) const;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_COST_MODEL_H
