#include "sim/phase_cache.h"

#include "metrics/metrics.h"

namespace ufc {
namespace sim {

namespace {

/// Process-wide registry view of every PhaseCache instance combined.
struct PhaseCacheMetrics
{
    metrics::Counter &hits = metrics::counter(
        "ufc_phase_cache_hits_total", "Phase-cache segment lookups that hit");
    metrics::Counter &misses = metrics::counter(
        "ufc_phase_cache_misses_total",
        "Phase-cache segment lookups that missed");
    metrics::Counter &inserts = metrics::counter(
        "ufc_phase_cache_inserts_total", "Phase-cache entries inserted");
    metrics::Gauge &entries = metrics::gauge(
        "ufc_phase_cache_entries",
        "Entries in the most recently touched phase cache");
};

PhaseCacheMetrics &
phaseCacheMetrics()
{
    static PhaseCacheMetrics *m = new PhaseCacheMetrics(); // never freed
    return *m;
}

} // namespace

PhaseCache::ExitPtr
PhaseCache::find(u64 key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (metrics::enabled())
            phaseCacheMetrics().misses.inc();
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metrics::enabled())
        phaseCacheMetrics().hits.inc();
    return it->second;
}

void
PhaseCache::insert(u64 key, ExitPtr state)
{
    std::lock_guard<std::mutex> lock(mu_);
    const bool inserted =
        map_.emplace(key, std::move(state)).second; // first insert wins
    if (inserted && metrics::enabled()) {
        PhaseCacheMetrics &m = phaseCacheMetrics();
        m.inserts.inc();
        m.entries.set(static_cast<i64>(map_.size()));
    }
}

std::size_t
PhaseCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

} // namespace sim
} // namespace ufc
