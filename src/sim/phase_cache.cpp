#include "sim/phase_cache.h"

namespace ufc {
namespace sim {

PhaseCache::ExitPtr
PhaseCache::find(u64 key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
PhaseCache::insert(u64 key, ExitPtr state)
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(key, std::move(state)); // first insert wins
}

std::size_t
PhaseCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

} // namespace sim
} // namespace ufc
