/**
 * @file
 * Chrome trace-event JSON export of the simulated timeline.
 *
 * Uses the legacy JSON trace format ("traceEvents" array of "X" complete
 * events plus "M" thread-name metadata), which both chrome://tracing and
 * ui.perfetto.dev ingest.  All events share pid 1; each track is a tid.
 * Durations are simulated cycles written into the microsecond fields, so
 * the viewer's time axis reads directly in cycles.
 */

#include "sim/timeline.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"

namespace ufc {
namespace sim {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char *
Timeline::trackName(int track)
{
    if (track >= 0 && track < isa::kNumResources)
        return isa::resourceName(static_cast<isa::Resource>(track));
    if (track == kHbmTrack)
        return "hbm";
    if (track == kPhaseTrack)
        return "phase";
    return "unknown";
}

void
Timeline::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    // Thread-name metadata first so every track is labelled even when it
    // carries no slices.
    for (int t = 0; t < kNumTracks; ++t) {
        if (t)
            os << ",";
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << trackName(t) << "\"}}";
    }
    for (const auto &s : slices_) {
        os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.track
           << ",\"name\":\"" << s.name << "\",\"ts\":"
           << num(s.beginCycle)
           << ",\"dur\":" << num(s.endCycle - s.beginCycle)
           << ",\"args\":{";
        if (s.bytes > 0)
            os << "\"bytes\":" << num(s.bytes) << ",";
        os << "\"depth\":" << s.depth << "}}";
    }
    os << "]}\n";
}

void
Timeline::saveChromeTrace(const std::string &path) const
{
    std::ofstream os(path);
    UFC_EXPECT(os.good(), ConfigError,
               "cannot open " << path << " for writing");
    writeChromeTrace(os);
    UFC_EXPECT(os.good(), ConfigError, "write failed: " << path);
}

} // namespace sim
} // namespace ufc
