/**
 * @file
 * Accelerator model implementations.
 *
 * Re-entrancy audit (relied on by src/runner/): every compile()/execute()
 * /run() builds its engine, scratchpad and lowering state on the stack,
 * the MachinePerf implementations are stateless over const configs, and
 * no function-local statics exist anywhere on this path — so concurrent
 * calls on the same model instance are safe and bit-deterministic.
 *
 * Bit-exactness: the bytecode path (compile + execute) and the legacy IR
 * path (runTraceIr) must produce identical RunResults.  Shared helpers
 * keep them aligned: the cost-model attach functions take a RunStats
 * regardless of which engine produced it, and ComposedModel routes both
 * paths through the same partition() and combine() arithmetic.
 */

#include "sim/accelerator.h"

#include "common/error.h"
#include "sim/bc_engine.h"
#include "sim/timeline.h"

namespace ufc {
namespace sim {

namespace {

/** Run one trace through a lowering + engine pair (legacy IR path). */
RunStats
lowerAndRun(const trace::Trace &tr, const compiler::LoweringOptions &opts,
            const MachinePerf &perf, const RunOptions &runOpts)
{
    validateRunOptions(runOpts);
    // -1 is the "model default" sentinel; 0 is an explicit request for a
    // no-lookahead memory engine.
    const int window = runOpts.prefetchWindow >= 0
                           ? runOpts.prefetchWindow
                           : CycleEngine::kDefaultPrefetchWindow;
    CycleEngine engine(&perf, window);
    engine.setMaxCycles(runOpts.maxCycles);
    engine.setHostDeadline(runOpts.hostDeadline);
    if (runOpts.timeline) {
        runOpts.timeline->clear();
        engine.setTimeline(runOpts.timeline);
    }
    compiler::Lowering lowering(&tr, opts, &engine);
    lowering.run();
    return engine.finish();
}

/**
 * Execute a compiled single-chip Program.  Applies RunOptions exactly as
 * lowerAndRun() does — same validation, same window resolution, same
 * watchdog/deadline arming, same timeline clearing — so a given options
 * value behaves identically on either path (including the TimeoutError
 * diagnostics, which both engines emit through sim::detail helpers).
 */
/// Host-side phase-cache lookup outcomes of one executeProgram() call;
/// surfaced on RunResult (never serialized — see stats.h).
struct ExecCacheCounts
{
    u64 hits = 0;
    u64 misses = 0;
};

RunStats
executeProgram(const compiler::Program &program,
               const std::string &machine, const RunOptions &runOpts,
               ExecCacheCounts *cacheCounts = nullptr)
{
    validateRunOptions(runOpts);
    UFC_EXPECT(!program.composed(), ConfigError,
               "composed Program '" << program.workload
                   << "' executed on single-chip model '" << machine
                   << "'");
    UFC_EXPECT(program.machine == machine, ConfigError,
               "Program '" << program.workload << "' compiled for '"
                   << program.machine << "' executed on '" << machine
                   << "'");
    const int window = runOpts.prefetchWindow >= 0
                           ? runOpts.prefetchWindow
                           : CycleEngine::kDefaultPrefetchWindow;
    BytecodeEngine engine(&program, window);
    engine.setMaxCycles(runOpts.maxCycles);
    engine.setHostDeadline(runOpts.hostDeadline);
    engine.setPhaseCache(runOpts.phaseCache);
    if (runOpts.timeline) {
        runOpts.timeline->clear();
        engine.setTimeline(runOpts.timeline);
    }
    RunStats stats = engine.run();
    if (cacheCounts) {
        cacheCounts->hits = engine.runCacheHits();
        cacheCounts->misses = engine.runCacheMisses();
    }
    return stats;
}

/** Fill the non-stats fields common to every model's result. */
void
stamp(RunResult &r, const RunOptions &opts, const std::string &machine,
      const std::string &workload)
{
    r.label = opts.label;
    r.verbosity = opts.verbosity;
    r.machine = machine;
    r.workload = workload;
}

/** Cost-model attach shared by the two baseline chips. */
RunResult
attachBaseline(const BaselineCost &cost, double areaMm2,
               const RunStats &stats, const RunOptions &opts,
               const std::string &machine, const std::string &workload)
{
    RunResult r;
    stamp(r, opts, machine, workload);
    r.stats = stats;
    r.seconds = cost.seconds(stats);
    r.powerW = cost.averagePowerW(stats);
    r.energyJ = cost.energyJ(stats);
    r.energyStaticJ = cost.staticEnergyJ(stats);
    r.energyHbmJ = cost.hbmEnergyJ(stats);
    r.areaMm2 = areaMm2;
    return r;
}

} // namespace

RunResult
AcceleratorModel::run(const trace::Trace &tr, const RunOptions &opts) const
{
    if (opts.execMode == ExecMode::TraceIr)
        return runTraceIr(tr, opts);
    // Fail fast on bad options before paying for the compile; execute()
    // re-validates for direct callers.
    validateRunOptions(opts);
    return execute(compile(tr), opts);
}

compiler::Program
AcceleratorModel::compileStream(std::istream &is,
                                std::size_t chunkBytes) const
{
    // Whole-trace fallback for models that need a global view
    // (ComposedModel's scheme partition).  The shim readTrace() already
    // reads in chunks; the caller's chunkBytes only bounds streaming
    // overrides, so it is unused here.
    (void)chunkBytes;
    return compile(trace::readTrace(is));
}

UfcModel::UfcModel(const UfcConfig &cfg, compiler::Parallelism par)
    : cfg_(cfg), parallelism_(par)
{}

compiler::LoweringOptions
UfcModel::loweringOptions() const
{
    compiler::LoweringOptions opts;
    opts.wordBits = cfg_.wordBits;
    opts.totalButterflies = cfg_.totalButterflies();
    opts.totalVectorLanes = cfg_.totalLanes();
    opts.autoViaNtt = true;
    opts.rotateAsMonomialMul = true;
    opts.smallPolyPacking = cfg_.smallPolyPacking;
    opts.parallelism = parallelism_;
    opts.onTheFlyKeyGen = cfg_.onTheFlyKeyGen;
    return opts;
}

double
UfcModel::areaMm2() const
{
    return UfcCostModel(cfg_).areaMm2();
}

RunResult
UfcModel::attach(const RunStats &stats, const RunOptions &opts,
                 const std::string &workload) const
{
    UfcCostModel cost(cfg_);
    RunResult r;
    stamp(r, opts, name(), workload);
    r.stats = stats;
    r.seconds = cost.seconds(stats);
    r.powerW = cost.averagePowerW(stats);
    r.energyJ = cost.energyJ(stats);
    r.energyStaticJ = cost.staticEnergyJ(stats);
    r.energyHbmJ = cost.hbmEnergyJ(stats);
    r.areaMm2 = cost.areaMm2();
    return r;
}

compiler::Program
UfcModel::compile(const trace::Trace &tr) const
{
    UfcPerf perf(cfg_);
    return compiler::compileTrace(tr, loweringOptions(), perf, name());
}

compiler::Program
UfcModel::compileStream(std::istream &is, std::size_t chunkBytes) const
{
    UfcPerf perf(cfg_);
    return compiler::compileTraceStream(is, loweringOptions(), perf,
                                        name(), nullptr, {}, chunkBytes);
}

RunResult
UfcModel::execute(const compiler::Program &program,
                  const RunOptions &opts) const
{
    ExecCacheCounts cc;
    RunResult r = attach(executeProgram(program, name(), opts, &cc), opts,
                         program.workload);
    r.phaseCacheHits = cc.hits;
    r.phaseCacheMisses = cc.misses;
    return r;
}

RunResult
UfcModel::runTraceIr(const trace::Trace &tr, const RunOptions &opts) const
{
    UfcPerf perf(cfg_);
    return attach(lowerAndRun(tr, loweringOptions(), perf, opts), opts,
                  tr.name);
}

SharpModel::SharpModel(const baselines::SharpConfig &cfg) : cfg_(cfg) {}

void
SharpModel::rejectUnsupported(const trace::Trace &tr) const
{
    for (const auto &op : tr.ops) {
        // Ring-side scheme-switching ops (extract/repack) are CKKS-style
        // polynomial work; only logic-scheme ops are unsupported.  A
        // trace/machine mismatch is a job-configuration fault, not an
        // internal bug — recoverable, so a sweep survives it.
        UFC_EXPECT(op.scheme() != trace::Scheme::Tfhe, ConfigError,
                   "SHARP only supports SIMD-scheme (CKKS) operations; "
                   "trace '" << tr.name << "' contains TFHE ops");
    }
}

compiler::LoweringOptions
SharpModel::loweringOptions() const
{
    compiler::LoweringOptions lopts;
    lopts.wordBits = cfg_.wordBits;
    lopts.totalButterflies = 1024; // pipelined NTTU width
    lopts.totalVectorLanes = 2048;
    lopts.autoViaNtt = false;       // all-to-all NoC automorphism
    lopts.rotateAsMonomialMul = false;
    lopts.smallPolyPacking = false;
    lopts.onTheFlyKeyGen = true;    // SHARP also generates keys on die
    return lopts;
}

RunResult
SharpModel::attach(const RunStats &stats, const RunOptions &opts,
                   const std::string &workload) const
{
    const BaselineCost cost{cfg_.areaMm2, cfg_.staticW,
                            cfg_.peakDynamicW, 30.0, cfg_.freqGHz};
    return attachBaseline(cost, cfg_.areaMm2, stats, opts, name(),
                          workload);
}

compiler::Program
SharpModel::compile(const trace::Trace &tr) const
{
    rejectUnsupported(tr);
    baselines::SharpPerf perf(cfg_);
    return compiler::compileTrace(tr, loweringOptions(), perf, name());
}

compiler::Program
SharpModel::compileStream(std::istream &is, std::size_t chunkBytes) const
{
    baselines::SharpPerf perf(cfg_);
    // Per-op admission check in place of rejectUnsupported(): same typed
    // error and message, raised as soon as the foreign op streams in.
    const compiler::StreamOpCheck check = [](const trace::Trace &header,
                                             const trace::TraceOp &op) {
        UFC_EXPECT(op.scheme() != trace::Scheme::Tfhe, ConfigError,
                   "SHARP only supports SIMD-scheme (CKKS) operations; "
                   "trace '" << header.name << "' contains TFHE ops");
    };
    return compiler::compileTraceStream(is, loweringOptions(), perf,
                                        name(), nullptr, check,
                                        chunkBytes);
}

RunResult
SharpModel::execute(const compiler::Program &program,
                    const RunOptions &opts) const
{
    ExecCacheCounts cc;
    RunResult r = attach(executeProgram(program, name(), opts, &cc), opts,
                         program.workload);
    r.phaseCacheHits = cc.hits;
    r.phaseCacheMisses = cc.misses;
    return r;
}

RunResult
SharpModel::runTraceIr(const trace::Trace &tr,
                       const RunOptions &opts) const
{
    rejectUnsupported(tr);
    baselines::SharpPerf perf(cfg_);
    return attach(lowerAndRun(tr, loweringOptions(), perf, opts), opts,
                  tr.name);
}

StrixModel::StrixModel(const baselines::StrixConfig &cfg) : cfg_(cfg) {}

void
StrixModel::rejectUnsupported(const trace::Trace &tr) const
{
    for (const auto &op : tr.ops) {
        UFC_EXPECT(op.scheme() == trace::Scheme::Tfhe, ConfigError,
                   "Strix only supports logic-scheme (TFHE) operations; "
                   "trace '" << tr.name << "' contains non-TFHE ops");
    }
}

compiler::LoweringOptions
StrixModel::loweringOptions() const
{
    compiler::LoweringOptions lopts;
    lopts.wordBits = cfg_.wordBits;
    lopts.totalButterflies = cfg_.butterflies;
    lopts.totalVectorLanes = static_cast<int>(cfg_.macWordsPerCycle);
    lopts.autoViaNtt = false;
    lopts.rotateAsMonomialMul = false;
    // Strix batches bootstraps through its streaming pipeline; modeled as
    // packing over its (narrower) datapath.
    lopts.smallPolyPacking = true;
    lopts.parallelism = compiler::Parallelism::TvLP;
    lopts.onTheFlyKeyGen = false;
    return lopts;
}

RunResult
StrixModel::attach(const RunStats &stats, const RunOptions &opts,
                   const std::string &workload) const
{
    const BaselineCost cost{cfg_.areaMm2, cfg_.staticW,
                            cfg_.peakDynamicW, 30.0, cfg_.freqGHz};
    return attachBaseline(cost, cfg_.areaMm2, stats, opts, name(),
                          workload);
}

compiler::Program
StrixModel::compile(const trace::Trace &tr) const
{
    rejectUnsupported(tr);
    baselines::StrixPerf perf(cfg_);
    return compiler::compileTrace(tr, loweringOptions(), perf, name());
}

compiler::Program
StrixModel::compileStream(std::istream &is, std::size_t chunkBytes) const
{
    baselines::StrixPerf perf(cfg_);
    const compiler::StreamOpCheck check = [](const trace::Trace &header,
                                             const trace::TraceOp &op) {
        UFC_EXPECT(op.scheme() == trace::Scheme::Tfhe, ConfigError,
                   "Strix only supports logic-scheme (TFHE) operations; "
                   "trace '" << header.name << "' contains non-TFHE ops");
    };
    return compiler::compileTraceStream(is, loweringOptions(), perf,
                                        name(), nullptr, check,
                                        chunkBytes);
}

RunResult
StrixModel::execute(const compiler::Program &program,
                    const RunOptions &opts) const
{
    ExecCacheCounts cc;
    RunResult r = attach(executeProgram(program, name(), opts, &cc), opts,
                         program.workload);
    r.phaseCacheHits = cc.hits;
    r.phaseCacheMisses = cc.misses;
    return r;
}

RunResult
StrixModel::runTraceIr(const trace::Trace &tr,
                       const RunOptions &opts) const
{
    rejectUnsupported(tr);
    baselines::StrixPerf perf(cfg_);
    return attach(lowerAndRun(tr, loweringOptions(), perf, opts), opts,
                  tr.name);
}

ComposedModel::ComposedModel(const baselines::SharpConfig &sharp,
                             const baselines::StrixConfig &strix,
                             double pcieGBs, double pcieLatencyUs)
    : sharp_(sharp), strix_(strix), pcieGBs_(pcieGBs),
      pcieLatencyUs_(pcieLatencyUs)
{}

void
ComposedModel::partition(const trace::Trace &tr, trace::Trace &ckksPart,
                         trace::Trace &tfhePart, double &pcieBytes,
                         u64 &pcieTransfers) const
{
    // Partition the trace by scheme.  Scheme-switching ops run on the
    // SIMD chip (extraction/repacking are ring operations) but their LWE
    // payloads cross PCIe to reach the logic chip.
    ckksPart = tr;
    ckksPart.ops.clear();
    tfhePart = tr;
    tfhePart.ops.clear();
    pcieBytes = 0.0;
    pcieTransfers = 0;
    for (const auto &op : tr.ops) {
        switch (op.scheme()) {
          case trace::Scheme::Ckks:
            ckksPart.ops.push_back(op);
            break;
          case trace::Scheme::Tfhe:
            tfhePart.ops.push_back(op);
            break;
          case trace::Scheme::Switch: {
            // Ring-side work stays on SHARP as CKKS-equivalent ops; the
            // resulting LWE vectors cross the link.
            if (op.kind == trace::OpKind::SwitchExtract) {
                // Extraction itself is cheap; LWEs move to the TFHE chip.
                pcieBytes += static_cast<double>(op.count) *
                             (tr.tfheLweDim + 1) * 4.0;
                ++pcieTransfers;
                // The parameter-normalizing key switch runs on Strix.
                tfhePart.push(trace::OpKind::TfheKeySwitch, 0, op.count);
            } else { // SwitchRepack
                pcieBytes += static_cast<double>(op.count) *
                             (tr.tfheLweDim + 1) * 4.0;
                ++pcieTransfers;
                ckksPart.ops.push_back(op);
            }
            break;
          }
        }
    }
}

RunResult
ComposedModel::combine(const RunResult &sharpRes,
                       const RunResult &strixRes, double pcieBytes,
                       u64 pcieTransfers, const RunOptions &opts,
                       const std::string &workload) const
{
    const double pcieSeconds =
        pcieBytes / (pcieGBs_ * 1e9) + pcieTransfers * pcieLatencyUs_ * 1e-6;

    RunResult r;
    stamp(r, opts, name(), workload);
    r.stats = sharpRes.stats;
    r.stats.merge(strixRes.stats);
    // The two chips pipeline independent queries/batches, so steady-state
    // time is the slower side plus the link time; energy still sums.
    r.seconds = std::max(sharpRes.seconds, strixRes.seconds) + pcieSeconds;
    const double pcieEnergyJ = pcieBytes * 10.0e-12; // ~10 pJ/byte link
    r.energyJ = sharpRes.energyJ + strixRes.energyJ + pcieEnergyJ;
    // Idle chip burns static power while the other one works.
    const double idleStaticJ = sharp_.staticW * strixRes.seconds +
                               strix_.staticW * sharpRes.seconds;
    r.energyJ += idleStaticJ;
    r.energyStaticJ =
        sharpRes.energyStaticJ + strixRes.energyStaticJ + idleStaticJ;
    // Off-chip component: both chips' HBM plus the PCIe link.
    r.energyHbmJ = sharpRes.energyHbmJ + strixRes.energyHbmJ + pcieEnergyJ;
    r.areaMm2 = areaMm2();
    r.powerW = r.seconds > 0 ? r.energyJ / r.seconds : 0.0;
    // Host-side observability carry-through (not a simulated observable).
    r.phaseCacheHits = sharpRes.phaseCacheHits + strixRes.phaseCacheHits;
    r.phaseCacheMisses =
        sharpRes.phaseCacheMisses + strixRes.phaseCacheMisses;
    return r;
}

compiler::Program
ComposedModel::compile(const trace::Trace &tr) const
{
    trace::Trace ckksPart;
    trace::Trace tfhePart;
    compiler::Program p;
    p.workload = tr.name;
    p.machine = name();
    p.traceHash = trace::contentHash(tr);
    partition(tr, ckksPart, tfhePart, p.pcieBytes, p.pcieTransfers);
    // parts[0] = SHARP, parts[1] = Strix; an untouched (default) part
    // marks a chip with no work, mirroring the IR path's skipped
    // sub-run.
    p.parts.resize(2);
    if (!ckksPart.ops.empty())
        p.parts[0] = SharpModel(sharp_).compile(ckksPart);
    if (!tfhePart.ops.empty())
        p.parts[1] = StrixModel(strix_).compile(tfhePart);
    return p;
}

RunResult
ComposedModel::execute(const compiler::Program &program,
                       const RunOptions &opts) const
{
    validateRunOptions(opts);
    UFC_EXPECT(program.machine == name() && program.parts.size() == 2,
               ConfigError,
               "Program '" << program.workload << "' compiled for '"
                   << program.machine
                   << "' executed on composed model '" << name() << "'");

    // Sub-runs inherit the engine knobs but not the label (the composed
    // result is the one the caller asked for) and not the timeline (the
    // two chips run in independent clock domains, so interleaving their
    // slices on one time axis would be misleading).
    RunOptions subOpts = opts;
    subOpts.label.clear();
    subOpts.timeline = nullptr;

    RunResult sharpRes;
    if (!program.parts[0].machine.empty())
        sharpRes = SharpModel(sharp_).execute(program.parts[0], subOpts);
    RunResult strixRes;
    if (!program.parts[1].machine.empty())
        strixRes = StrixModel(strix_).execute(program.parts[1], subOpts);

    return combine(sharpRes, strixRes, program.pcieBytes,
                   program.pcieTransfers, opts, program.workload);
}

RunResult
ComposedModel::runTraceIr(const trace::Trace &tr,
                          const RunOptions &opts) const
{
    validateRunOptions(opts);
    trace::Trace ckksPart;
    trace::Trace tfhePart;
    double pcieBytes = 0.0;
    u64 pcieTransfers = 0;
    partition(tr, ckksPart, tfhePart, pcieBytes, pcieTransfers);

    // See execute() for why sub-runs drop the label and timeline.  The
    // sub-calls go through run(), which dispatches on opts.execMode —
    // TraceIr here, since runTraceIr is only reached through it.
    RunOptions subOpts = opts;
    subOpts.label.clear();
    subOpts.timeline = nullptr;

    RunResult sharpRes;
    if (!ckksPart.ops.empty())
        sharpRes = SharpModel(sharp_).run(ckksPart, subOpts);
    RunResult strixRes;
    if (!tfhePart.ops.empty())
        strixRes = StrixModel(strix_).run(tfhePart, subOpts);

    return combine(sharpRes, strixRes, pcieBytes, pcieTransfers, opts,
                   tr.name);
}

} // namespace sim
} // namespace ufc
