/**
 * @file
 * Accelerator model implementations.
 *
 * Re-entrancy audit (relied on by src/runner/): every run() builds its
 * engine, scratchpad and lowering state on the stack, the MachinePerf
 * implementations are stateless over const configs, and no function-local
 * statics exist anywhere on this path — so concurrent run() calls on the
 * same model instance are safe and bit-deterministic.
 */

#include "sim/accelerator.h"

#include "common/error.h"
#include "sim/timeline.h"

namespace ufc {
namespace sim {

namespace {

/** Run one trace through a lowering + engine pair. */
RunStats
lowerAndRun(const trace::Trace &tr, const compiler::LoweringOptions &opts,
            const MachinePerf &perf, const RunOptions &runOpts)
{
    validateRunOptions(runOpts);
    // -1 is the "model default" sentinel; 0 is an explicit request for a
    // no-lookahead memory engine.
    const int window = runOpts.prefetchWindow >= 0
                           ? runOpts.prefetchWindow
                           : CycleEngine::kDefaultPrefetchWindow;
    CycleEngine engine(&perf, window);
    engine.setMaxCycles(runOpts.maxCycles);
    engine.setHostDeadline(runOpts.hostDeadline);
    if (runOpts.timeline) {
        runOpts.timeline->clear();
        engine.setTimeline(runOpts.timeline);
    }
    compiler::Lowering lowering(&tr, opts, &engine);
    lowering.run();
    return engine.finish();
}

/** Fill the non-stats fields common to every model's result. */
void
stamp(RunResult &r, const RunOptions &opts, const std::string &machine,
      const std::string &workload)
{
    r.label = opts.label;
    r.verbosity = opts.verbosity;
    r.machine = machine;
    r.workload = workload;
}

} // namespace

UfcModel::UfcModel(const UfcConfig &cfg, compiler::Parallelism par)
    : cfg_(cfg), parallelism_(par)
{}

compiler::LoweringOptions
UfcModel::loweringOptions() const
{
    compiler::LoweringOptions opts;
    opts.wordBits = cfg_.wordBits;
    opts.totalButterflies = cfg_.totalButterflies();
    opts.totalVectorLanes = cfg_.totalLanes();
    opts.autoViaNtt = true;
    opts.rotateAsMonomialMul = true;
    opts.smallPolyPacking = cfg_.smallPolyPacking;
    opts.parallelism = parallelism_;
    opts.onTheFlyKeyGen = cfg_.onTheFlyKeyGen;
    return opts;
}

double
UfcModel::areaMm2() const
{
    return UfcCostModel(cfg_).areaMm2();
}

RunResult
UfcModel::run(const trace::Trace &tr, const RunOptions &opts) const
{
    UfcPerf perf(cfg_);
    const RunStats stats = lowerAndRun(tr, loweringOptions(), perf, opts);

    UfcCostModel cost(cfg_);
    RunResult r;
    stamp(r, opts, name(), tr.name);
    r.stats = stats;
    r.seconds = cost.seconds(stats);
    r.powerW = cost.averagePowerW(stats);
    r.energyJ = cost.energyJ(stats);
    r.energyStaticJ = cost.staticEnergyJ(stats);
    r.energyHbmJ = cost.hbmEnergyJ(stats);
    r.areaMm2 = cost.areaMm2();
    return r;
}

SharpModel::SharpModel(const baselines::SharpConfig &cfg) : cfg_(cfg) {}

RunResult
SharpModel::run(const trace::Trace &tr, const RunOptions &opts) const
{
    for (const auto &op : tr.ops) {
        // Ring-side scheme-switching ops (extract/repack) are CKKS-style
        // polynomial work; only logic-scheme ops are unsupported.  A
        // trace/machine mismatch is a job-configuration fault, not an
        // internal bug — recoverable, so a sweep survives it.
        UFC_EXPECT(op.scheme() != trace::Scheme::Tfhe, ConfigError,
                   "SHARP only supports SIMD-scheme (CKKS) operations; "
                   "trace '" << tr.name << "' contains TFHE ops");
    }
    baselines::SharpPerf perf(cfg_);
    compiler::LoweringOptions lopts;
    lopts.wordBits = cfg_.wordBits;
    lopts.totalButterflies = 1024; // pipelined NTTU width
    lopts.totalVectorLanes = 2048;
    lopts.autoViaNtt = false;       // all-to-all NoC automorphism
    lopts.rotateAsMonomialMul = false;
    lopts.smallPolyPacking = false;
    lopts.onTheFlyKeyGen = true;    // SHARP also generates keys on die
    const RunStats stats = lowerAndRun(tr, lopts, perf, opts);

    BaselineCost cost{cfg_.areaMm2, cfg_.staticW, cfg_.peakDynamicW,
                      30.0, cfg_.freqGHz};
    RunResult r;
    stamp(r, opts, name(), tr.name);
    r.stats = stats;
    r.seconds = cost.seconds(stats);
    r.powerW = cost.averagePowerW(stats);
    r.energyJ = cost.energyJ(stats);
    r.energyStaticJ = cost.staticEnergyJ(stats);
    r.energyHbmJ = cost.hbmEnergyJ(stats);
    r.areaMm2 = cfg_.areaMm2;
    return r;
}

StrixModel::StrixModel(const baselines::StrixConfig &cfg) : cfg_(cfg) {}

RunResult
StrixModel::run(const trace::Trace &tr, const RunOptions &opts) const
{
    for (const auto &op : tr.ops) {
        UFC_EXPECT(op.scheme() == trace::Scheme::Tfhe, ConfigError,
                   "Strix only supports logic-scheme (TFHE) operations; "
                   "trace '" << tr.name << "' contains non-TFHE ops");
    }
    baselines::StrixPerf perf(cfg_);
    compiler::LoweringOptions lopts;
    lopts.wordBits = cfg_.wordBits;
    lopts.totalButterflies = cfg_.butterflies;
    lopts.totalVectorLanes = static_cast<int>(cfg_.macWordsPerCycle);
    lopts.autoViaNtt = false;
    lopts.rotateAsMonomialMul = false;
    // Strix batches bootstraps through its streaming pipeline; modeled as
    // packing over its (narrower) datapath.
    lopts.smallPolyPacking = true;
    lopts.parallelism = compiler::Parallelism::TvLP;
    lopts.onTheFlyKeyGen = false;
    const RunStats stats = lowerAndRun(tr, lopts, perf, opts);

    BaselineCost cost{cfg_.areaMm2, cfg_.staticW, cfg_.peakDynamicW,
                      30.0, cfg_.freqGHz};
    RunResult r;
    stamp(r, opts, name(), tr.name);
    r.stats = stats;
    r.seconds = cost.seconds(stats);
    r.powerW = cost.averagePowerW(stats);
    r.energyJ = cost.energyJ(stats);
    r.energyStaticJ = cost.staticEnergyJ(stats);
    r.energyHbmJ = cost.hbmEnergyJ(stats);
    r.areaMm2 = cfg_.areaMm2;
    return r;
}

ComposedModel::ComposedModel(const baselines::SharpConfig &sharp,
                             const baselines::StrixConfig &strix,
                             double pcieGBs, double pcieLatencyUs)
    : sharp_(sharp), strix_(strix), pcieGBs_(pcieGBs),
      pcieLatencyUs_(pcieLatencyUs)
{}

RunResult
ComposedModel::run(const trace::Trace &tr, const RunOptions &opts) const
{
    validateRunOptions(opts);
    // Partition the trace by scheme.  Scheme-switching ops run on the
    // SIMD chip (extraction/repacking are ring operations) but their LWE
    // payloads cross PCIe to reach the logic chip.
    trace::Trace ckksPart = tr;
    ckksPart.ops.clear();
    trace::Trace tfhePart = tr;
    tfhePart.ops.clear();

    double pcieBytes = 0.0;
    u64 pcieTransfers = 0;
    for (const auto &op : tr.ops) {
        switch (op.scheme()) {
          case trace::Scheme::Ckks:
            ckksPart.ops.push_back(op);
            break;
          case trace::Scheme::Tfhe:
            tfhePart.ops.push_back(op);
            break;
          case trace::Scheme::Switch: {
            // Ring-side work stays on SHARP as CKKS-equivalent ops; the
            // resulting LWE vectors cross the link.
            if (op.kind == trace::OpKind::SwitchExtract) {
                // Extraction itself is cheap; LWEs move to the TFHE chip.
                pcieBytes += static_cast<double>(op.count) *
                             (tr.tfheLweDim + 1) * 4.0;
                ++pcieTransfers;
                // The parameter-normalizing key switch runs on Strix.
                tfhePart.push(trace::OpKind::TfheKeySwitch, 0, op.count);
            } else { // SwitchRepack
                pcieBytes += static_cast<double>(op.count) *
                             (tr.tfheLweDim + 1) * 4.0;
                ++pcieTransfers;
                ckksPart.ops.push_back(op);
            }
            break;
          }
        }
    }

    // Sub-runs inherit the engine knobs but not the label (the composed
    // result is the one the caller asked for) and not the timeline (the
    // two chips run in independent clock domains, so interleaving their
    // slices on one time axis would be misleading).
    RunOptions subOpts = opts;
    subOpts.label.clear();
    subOpts.timeline = nullptr;

    RunResult sharpRes;
    if (!ckksPart.ops.empty())
        sharpRes = SharpModel(sharp_).run(ckksPart, subOpts);
    RunResult strixRes;
    if (!tfhePart.ops.empty())
        strixRes = StrixModel(strix_).run(tfhePart, subOpts);

    const double pcieSeconds =
        pcieBytes / (pcieGBs_ * 1e9) + pcieTransfers * pcieLatencyUs_ * 1e-6;

    RunResult r;
    stamp(r, opts, name(), tr.name);
    r.stats = sharpRes.stats;
    r.stats.merge(strixRes.stats);
    // The two chips pipeline independent queries/batches, so steady-state
    // time is the slower side plus the link time; energy still sums.
    r.seconds = std::max(sharpRes.seconds, strixRes.seconds) + pcieSeconds;
    const double pcieEnergyJ = pcieBytes * 10.0e-12; // ~10 pJ/byte link
    r.energyJ = sharpRes.energyJ + strixRes.energyJ + pcieEnergyJ;
    // Idle chip burns static power while the other one works.
    const double idleStaticJ = sharp_.staticW * strixRes.seconds +
                               strix_.staticW * sharpRes.seconds;
    r.energyJ += idleStaticJ;
    r.energyStaticJ =
        sharpRes.energyStaticJ + strixRes.energyStaticJ + idleStaticJ;
    // Off-chip component: both chips' HBM plus the PCIe link.
    r.energyHbmJ = sharpRes.energyHbmJ + strixRes.energyHbmJ + pcieEnergyJ;
    r.areaMm2 = areaMm2();
    r.powerW = r.seconds > 0 ? r.energyJ / r.seconds : 0.0;
    return r;
}

} // namespace sim
} // namespace ufc
