/**
 * @file
 * Accelerator models: the top-level objects that take a workload trace,
 * lower it with their compiler options, run the cycle engine, and attach
 * physical units (seconds, joules, mm^2).
 */

#ifndef UFC_SIM_ACCELERATOR_H
#define UFC_SIM_ACCELERATOR_H

#include <memory>

#include "baselines/sharp_perf.h"
#include "baselines/strix_perf.h"
#include "compiler/lowering.h"
#include "sim/cost_model.h"
#include "sim/ufc_perf.h"

namespace ufc {
namespace sim {

/**
 * Common interface for all simulated accelerators.
 *
 * Thread safety: run() is const and re-entrant.  Every implementation
 * builds its per-run state (CycleEngine, SpadModel, compiler::Lowering)
 * on the stack and only reads its configuration, so one model instance
 * may simulate many traces concurrently — the batch experiment runner
 * (src/runner/) relies on this contract.
 */
class AcceleratorModel
{
  public:
    virtual ~AcceleratorModel() = default;

    /** Simulate a trace under the given per-run options. */
    virtual RunResult run(const trace::Trace &tr,
                          const RunOptions &opts) const = 0;

    /** Convenience overload with default options. */
    RunResult run(const trace::Trace &tr) const
    {
        return run(tr, RunOptions{});
    }

    virtual std::string name() const = 0;
    virtual double areaMm2() const = 0;
};

/** The proposed unified accelerator. */
class UfcModel : public AcceleratorModel
{
  public:
    explicit UfcModel(const UfcConfig &cfg = UfcConfig::tableII(),
                      compiler::Parallelism par =
                          compiler::Parallelism::TvLP);

    using AcceleratorModel::run;
    RunResult run(const trace::Trace &tr,
                  const RunOptions &opts) const override;
    std::string name() const override { return cfg_.name; }
    double areaMm2() const override;

    const UfcConfig &config() const { return cfg_; }
    compiler::LoweringOptions loweringOptions() const;

  private:
    UfcConfig cfg_;
    compiler::Parallelism parallelism_;
};

/** SHARP baseline (CKKS-only). */
class SharpModel : public AcceleratorModel
{
  public:
    explicit SharpModel(
        const baselines::SharpConfig &cfg = baselines::SharpConfig{});

    using AcceleratorModel::run;
    RunResult run(const trace::Trace &tr,
                  const RunOptions &opts) const override;
    std::string name() const override { return "SHARP"; }
    double areaMm2() const override { return cfg_.areaMm2; }

  private:
    baselines::SharpConfig cfg_;
};

/** Strix baseline (TFHE-only). */
class StrixModel : public AcceleratorModel
{
  public:
    explicit StrixModel(
        const baselines::StrixConfig &cfg = baselines::StrixConfig{});

    using AcceleratorModel::run;
    RunResult run(const trace::Trace &tr,
                  const RunOptions &opts) const override;
    std::string name() const override { return "Strix"; }
    double areaMm2() const override { return cfg_.areaMm2; }

  private:
    baselines::StrixConfig cfg_;
};

/**
 * The composed SHARP + Strix system used as the hybrid-workload baseline
 * (Section VI-D): CKKS ops dispatch to SHARP, TFHE ops to Strix, and
 * scheme-switching data crosses a PCIe 5.0 x16 link.
 */
class ComposedModel : public AcceleratorModel
{
  public:
    ComposedModel(const baselines::SharpConfig &sharp =
                      baselines::SharpConfig{},
                  const baselines::StrixConfig &strix =
                      baselines::StrixConfig{},
                  double pcieGBs = 63.0, double pcieLatencyUs = 2.0);

    using AcceleratorModel::run;
    RunResult run(const trace::Trace &tr,
                  const RunOptions &opts) const override;
    std::string name() const override { return "SHARP+Strix"; }
    double areaMm2() const override
    {
        return sharp_.areaMm2 + strix_.areaMm2;
    }

  private:
    baselines::SharpConfig sharp_;
    baselines::StrixConfig strix_;
    double pcieGBs_;
    double pcieLatencyUs_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_ACCELERATOR_H
