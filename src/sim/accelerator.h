/**
 * @file
 * Accelerator models: the top-level objects that take a workload trace,
 * compile it to a bytecode Program with their compiler options, execute
 * it on the cycle engine, and attach physical units (seconds, joules,
 * mm^2).
 *
 * ## Execution API (compile / execute)
 *
 * The primary entry points are the two-phase pair
 *
 *     compiler::Program p = model->compile(trace);   // once
 *     sim::RunResult    r = model->execute(p, opts); // many times
 *
 * so callers that run one trace under many options (DSE sweeps, the
 * batch runner via its ProgramCache, watchdog bisection) pay the
 * lowering cost once.  `run(trace, opts)` remains as a convenience shim
 * over compile+execute — kept deprecated-but-tested for the figure
 * benches and external callers; new code should prefer the split API.
 * With RunOptions::execMode == ExecMode::TraceIr, run() instead takes
 * the legacy IR-interpreter path; both paths produce bit-identical
 * results (enforced by the bytecode differential test gate).
 */

#ifndef UFC_SIM_ACCELERATOR_H
#define UFC_SIM_ACCELERATOR_H

#include <cstddef>
#include <memory>

#include "baselines/sharp_perf.h"
#include "baselines/strix_perf.h"
#include "compiler/bytecode.h"
#include "compiler/lowering.h"
#include "sim/cost_model.h"
#include "sim/ufc_perf.h"
#include "trace/serialize.h"

namespace ufc {
namespace sim {

/**
 * Common interface for all simulated accelerators.
 *
 * Thread safety: compile(), execute() and run() are const and
 * re-entrant.  Every implementation builds its per-run state
 * (CycleEngine/BytecodeEngine, SpadModel, compiler::Lowering) on the
 * stack and only reads its configuration, so one model instance may
 * simulate many traces concurrently — the batch experiment runner
 * (src/runner/) relies on this contract.  A compiled Program is
 * immutable and may be executed by any number of threads at once.
 */
class AcceleratorModel
{
  public:
    virtual ~AcceleratorModel() = default;

    /**
     * Lower `tr` once into an executable bytecode Program for this
     * machine.  Throws the same typed errors (ConfigError for an
     * unsupported scheme, TraceError from a malformed trace) the
     * corresponding run() would.
     */
    virtual compiler::Program compile(const trace::Trace &tr) const = 0;

    /**
     * Streaming variant of compile(): parse, validate and lower the
     * trace text chunk-by-chunk from `is` (see
     * compiler::compileTraceStream for the chunk-protocol contract).
     * Single-chip models override this to never materialize the op
     * vector, so traces larger than host memory compile in bounded
     * space; the base implementation falls back to
     * trace::readTrace + compile() for models that need a whole-trace
     * view (ComposedModel's scheme partition).  Throws the same typed
     * errors as compile() on the same inputs.
     */
    virtual compiler::Program
    compileStream(std::istream &is,
                  std::size_t chunkBytes = trace::kTraceReadChunk) const;

    /**
     * Execute a Program previously produced by this model's compile()
     * under the given per-run options.  Throws ConfigError when the
     * Program was compiled for a different machine.
     */
    virtual RunResult execute(const compiler::Program &program,
                              const RunOptions &opts) const = 0;

    /** Convenience overload with default options. */
    RunResult
    execute(const compiler::Program &program) const
    {
        return execute(program, RunOptions{});
    }

    /**
     * One-shot convenience (deprecated shim): compile(tr) + execute()
     * under the default ExecMode::Bytecode, or the legacy IR
     * interpreter when opts.execMode == ExecMode::TraceIr.  Callers
     * that execute a trace more than once should compile() it
     * themselves (or go through the runner, which caches Programs).
     */
    RunResult run(const trace::Trace &tr, const RunOptions &opts) const;

    /** Convenience overload with default options. */
    RunResult run(const trace::Trace &tr) const
    {
        return run(tr, RunOptions{});
    }

    virtual std::string name() const = 0;
    virtual double areaMm2() const = 0;

  protected:
    /** Legacy IR-interpreter path behind run(); bit-identical to the
     *  bytecode path by construction and by test. */
    virtual RunResult runTraceIr(const trace::Trace &tr,
                                 const RunOptions &opts) const = 0;
};

/** The proposed unified accelerator. */
class UfcModel : public AcceleratorModel
{
  public:
    explicit UfcModel(const UfcConfig &cfg = UfcConfig::tableII(),
                      compiler::Parallelism par =
                          compiler::Parallelism::TvLP);

    compiler::Program compile(const trace::Trace &tr) const override;
    compiler::Program compileStream(
        std::istream &is,
        std::size_t chunkBytes = trace::kTraceReadChunk) const override;
    using AcceleratorModel::execute;
    RunResult execute(const compiler::Program &program,
                      const RunOptions &opts) const override;
    std::string name() const override { return cfg_.name; }
    double areaMm2() const override;

    const UfcConfig &config() const { return cfg_; }
    compiler::LoweringOptions loweringOptions() const;

  protected:
    RunResult runTraceIr(const trace::Trace &tr,
                         const RunOptions &opts) const override;

  private:
    RunResult attach(const RunStats &stats, const RunOptions &opts,
                     const std::string &workload) const;

    UfcConfig cfg_;
    compiler::Parallelism parallelism_;
};

/** SHARP baseline (CKKS-only). */
class SharpModel : public AcceleratorModel
{
  public:
    explicit SharpModel(
        const baselines::SharpConfig &cfg = baselines::SharpConfig{});

    compiler::Program compile(const trace::Trace &tr) const override;
    compiler::Program compileStream(
        std::istream &is,
        std::size_t chunkBytes = trace::kTraceReadChunk) const override;
    using AcceleratorModel::execute;
    RunResult execute(const compiler::Program &program,
                      const RunOptions &opts) const override;
    std::string name() const override { return "SHARP"; }
    double areaMm2() const override { return cfg_.areaMm2; }

  protected:
    RunResult runTraceIr(const trace::Trace &tr,
                         const RunOptions &opts) const override;

  private:
    void rejectUnsupported(const trace::Trace &tr) const;
    compiler::LoweringOptions loweringOptions() const;
    RunResult attach(const RunStats &stats, const RunOptions &opts,
                     const std::string &workload) const;

    baselines::SharpConfig cfg_;
};

/** Strix baseline (TFHE-only). */
class StrixModel : public AcceleratorModel
{
  public:
    explicit StrixModel(
        const baselines::StrixConfig &cfg = baselines::StrixConfig{});

    compiler::Program compile(const trace::Trace &tr) const override;
    compiler::Program compileStream(
        std::istream &is,
        std::size_t chunkBytes = trace::kTraceReadChunk) const override;
    using AcceleratorModel::execute;
    RunResult execute(const compiler::Program &program,
                      const RunOptions &opts) const override;
    std::string name() const override { return "Strix"; }
    double areaMm2() const override { return cfg_.areaMm2; }

  protected:
    RunResult runTraceIr(const trace::Trace &tr,
                         const RunOptions &opts) const override;

  private:
    void rejectUnsupported(const trace::Trace &tr) const;
    compiler::LoweringOptions loweringOptions() const;
    RunResult attach(const RunStats &stats, const RunOptions &opts,
                     const std::string &workload) const;

    baselines::StrixConfig cfg_;
};

/**
 * The composed SHARP + Strix system used as the hybrid-workload baseline
 * (Section VI-D): CKKS ops dispatch to SHARP, TFHE ops to Strix, and
 * scheme-switching data crosses a PCIe 5.0 x16 link.  compile()
 * partitions the trace and compiles one sub-Program per chip
 * (Program::parts); execute() runs the parts on the sub-models and
 * combines time/energy with the PCIe link terms.
 */
class ComposedModel : public AcceleratorModel
{
  public:
    ComposedModel(const baselines::SharpConfig &sharp =
                      baselines::SharpConfig{},
                  const baselines::StrixConfig &strix =
                      baselines::StrixConfig{},
                  double pcieGBs = 63.0, double pcieLatencyUs = 2.0);

    compiler::Program compile(const trace::Trace &tr) const override;
    using AcceleratorModel::execute;
    RunResult execute(const compiler::Program &program,
                      const RunOptions &opts) const override;
    std::string name() const override { return "SHARP+Strix"; }
    double areaMm2() const override
    {
        return sharp_.areaMm2 + strix_.areaMm2;
    }

  protected:
    RunResult runTraceIr(const trace::Trace &tr,
                         const RunOptions &opts) const override;

  private:
    /** Scheme partition shared by compile() and runTraceIr() so the
     *  PCIe accounting is computed identically on both paths. */
    void partition(const trace::Trace &tr, trace::Trace &ckksPart,
                   trace::Trace &tfhePart, double &pcieBytes,
                   u64 &pcieTransfers) const;
    RunResult combine(const RunResult &sharpRes,
                      const RunResult &strixRes, double pcieBytes,
                      u64 pcieTransfers, const RunOptions &opts,
                      const std::string &workload) const;

    baselines::SharpConfig sharp_;
    baselines::StrixConfig strix_;
    double pcieGBs_;
    double pcieLatencyUs_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_ACCELERATOR_H
